/**
 * @file
 * Minimal JSON utilities for the report writers.
 *
 * The bench drivers hand-write their JSON for stable key order, which
 * is fine until a string needs escaping: the original escaper missed
 * control characters, so an error message containing a tab or carriage
 * return produced an unparseable report. jsonEscape() here implements
 * the full RFC 8259 string escaping rules, and validate() is a small
 * syntax checker used by the tests (and the mpos_trace tool) to assert
 * that everything the writers emit actually parses. It is not a
 * general-purpose parser: it validates structure and returns the
 * position of the first error, nothing more.
 */

#ifndef MPOS_UTIL_JSON_HH
#define MPOS_UTIL_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mpos::util
{

/**
 * Escape s for inclusion inside a JSON string literal (quotes not
 * included): ", \, and all control characters below 0x20.
 */
std::string jsonEscape(const std::string &s);

/** Convenience: "..." with the contents escaped. */
std::string jsonString(const std::string &s);

/**
 * Validate that text is one well-formed JSON value (object, array,
 * string, number, true/false/null) with nothing but whitespace after
 * it. On failure returns false and sets *error_pos (when non-null) to
 * the byte offset of the first offending character and *error (when
 * non-null) to a short description.
 */
bool jsonValidate(const std::string &text, size_t *error_pos = nullptr,
                  std::string *error = nullptr);

/**
 * A decoded JSON value. The sweep service parses untrusted request
 * lines into this before touching any field, so the DOM keeps the
 * validator's strictness (same grammar, same depth cap) and adds
 * escape decoding. Object member order is preserved; duplicate keys
 * are kept and find() returns the first.
 */
struct JsonValue
{
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text; ///< String payload (escapes decoded).
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    bool isObject() const { return kind == Kind::Object; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** First member named key, or null (objects only). */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse text as one well-formed JSON value (the jsonValidate grammar).
 * On failure returns false and sets *error (when non-null) to a short
 * description; out is left in an unspecified state.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace mpos::util

#endif // MPOS_UTIL_JSON_HH
