/**
 * @file
 * Minimal JSON utilities for the report writers.
 *
 * The bench drivers hand-write their JSON for stable key order, which
 * is fine until a string needs escaping: the original escaper missed
 * control characters, so an error message containing a tab or carriage
 * return produced an unparseable report. jsonEscape() here implements
 * the full RFC 8259 string escaping rules, and validate() is a small
 * syntax checker used by the tests (and the mpos_trace tool) to assert
 * that everything the writers emit actually parses. It is not a
 * general-purpose parser: it validates structure and returns the
 * position of the first error, nothing more.
 */

#ifndef MPOS_UTIL_JSON_HH
#define MPOS_UTIL_JSON_HH

#include <cstddef>
#include <string>

namespace mpos::util
{

/**
 * Escape s for inclusion inside a JSON string literal (quotes not
 * included): ", \, and all control characters below 0x20.
 */
std::string jsonEscape(const std::string &s);

/** Convenience: "..." with the contents escaped. */
std::string jsonString(const std::string &s);

/**
 * Validate that text is one well-formed JSON value (object, array,
 * string, number, true/false/null) with nothing but whitespace after
 * it. On failure returns false and sets *error_pos (when non-null) to
 * the byte offset of the first offending character and *error (when
 * non-null) to a short description.
 */
bool jsonValidate(const std::string &text, size_t *error_pos = nullptr,
                  std::string *error = nullptr);

} // namespace mpos::util

#endif // MPOS_UTIL_JSON_HH
