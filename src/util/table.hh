/**
 * @file
 * ASCII table and bar-chart rendering for bench output.
 *
 * Every bench binary prints "paper vs measured" rows through TextTable so
 * that all experiments share one visual format.
 */

#ifndef MPOS_UTIL_TABLE_HH
#define MPOS_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mpos::util
{

/** Column-aligned ASCII table with an optional title and header rule. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : heading(std::move(title)) {}

    /** Set the header row (printed above a rule). */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator between data rows. */
    void rule();

    /** Render the whole table. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string heading;
    std::vector<std::string> head;
    std::vector<Row> rows;
};

/**
 * Render a horizontal bar chart: one line per (label, value) pair, bars
 * scaled so the maximum value spans width characters.
 */
std::string barChart(const std::string &title,
                     const std::vector<std::pair<std::string, double>>
                         &data,
                     uint32_t width = 50, const std::string &unit = "");

} // namespace mpos::util

#endif // MPOS_UTIL_TABLE_HH
