#include "util/threadpool.hh"

#include <cstdlib>

namespace mpos::util
{

unsigned
ThreadPool::defaultThreads()
{
    if (const char *v = std::getenv("MPOS_JOBS")) {
        const long n = std::strtol(v, nullptr, 10);
        return n >= 1 ? unsigned(n) : 1u;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned nthreads)
{
    if (nthreads == 0)
        nthreads = defaultThreads();
    workers.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock,
                    [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to drain
            task = std::move(queue.front());
            queue.pop_front();
        }
        // submit() routes the callable through a packaged_task, which
        // captures anything it throws into the future -- but a worker
        // must survive even a task that escapes that net (e.g. a bare
        // callable queued by a future extension, or a throwing task
        // destructor). A dead worker would silently shrink the pool
        // and strand queued jobs.
        try {
            task();
        } catch (...) {
            // Swallow: the submitter's future already holds the
            // exception if one was deliverable; there is nobody else
            // to hand it to from a detached worker.
        }
    }
}

} // namespace mpos::util
