/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator draws from a seeded Rng so
 * that runs are exactly reproducible; tests depend on this. The generator
 * is xoshiro256** seeded through SplitMix64, which is both fast and of
 * adequate statistical quality for workload synthesis.
 */

#ifndef MPOS_UTIL_RNG_HH
#define MPOS_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace mpos::util
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload synthesis; modulo bias at these bounds is
        // negligible, but we use 128-bit multiply anyway.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return real() < p; }

    /**
     * Precomputed form of chance(): chance(p) compares
     * u * 2^-53 < p with u = next() >> 11, and since scaling by a
     * power of two is exact that is u < ceil(p * 2^53) over the
     * integers. Callers that test the same probability millions of
     * times can hoist the threshold and skip the int-to-double
     * conversion per draw; the draw itself, its order, and the
     * outcome are identical to chance(p).
     */
    static uint64_t
    chanceThreshold(double p)
    {
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return uint64_t(1) << 53;
        const double scaled = p * 0x1.0p53; // exact for p in (0, 1)
        const uint64_t floor_ = uint64_t(scaled);
        return floor_ + (double(floor_) < scaled);
    }

    /** chance(p) for a threshold from chanceThreshold(p). */
    bool
    chanceBelow(uint64_t threshold)
    {
        return (next() >> 11) < threshold;
    }

    /**
     * Geometric-ish burst length in [1, max]: each extra unit continues
     * with probability cont.
     */
    uint32_t
    burst(double cont, uint32_t max)
    {
        uint32_t n = 1;
        while (n < max && chance(cont))
            ++n;
        return n;
    }

    /// @name Explicit state save/restore
    /// The snapshot layer checkpoints every stream mid-run; a restored
    /// generator continues the exact draw sequence of the original.
    /// @{
    std::array<uint64_t, 4>
    saveState() const
    {
        return {state[0], state[1], state[2], state[3]};
    }

    void
    restoreState(const std::array<uint64_t, 4> &s)
    {
        state[0] = s[0];
        state[1] = s[1];
        state[2] = s[2];
        state[3] = s[3];
    }
    /// @}

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace mpos::util

#endif // MPOS_UTIL_RNG_HH
