/**
 * @file
 * Recoverable error channel for library paths.
 *
 * The logging layer (util/logging.hh) draws the gem5 line between
 * panic() -- an internal invariant broke, abort() -- and fatal() -- the
 * user asked for something impossible, exit(1). Both kill the process,
 * which is the wrong failure mode for a 20-analysis sweep: one
 * exhausted process table or one bad histogram geometry must not take
 * the other nineteen analyses with it.
 *
 * SimError is the recoverable third tier: a typed exception that
 * propagates out of Machine::run / core::Experiment so the runner can
 * record the failure (status/error/attempts), retry with a reseed, or
 * keep going. The division of labor after this file:
 *
 *  - panic()   : internal invariant violated -> abort (unchanged).
 *  - fatal()   : unrecoverable CLI misuse in main() paths -> exit(1).
 *  - SimError  : anything a batch driver can usefully survive --
 *                resource exhaustion, bad MachineConfig, watchdog
 *                trips, per-job timeouts, injected faults.
 */

#ifndef MPOS_UTIL_ERROR_HH
#define MPOS_UTIL_ERROR_HH

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace mpos::util
{

/** Coarse failure taxonomy; see DESIGN.md §9. */
enum class ErrCode : uint8_t
{
    BadConfig,         ///< Impossible MachineConfig/geometry/argument.
    ResourceExhausted, ///< Simulated resource ran out (slots, pages).
    WatchdogTrip,      ///< Forward-progress watchdog fired (livelock).
    Timeout,           ///< Per-job host wall-clock budget exceeded.
    JobFailed,         ///< A runner job has no result to hand out.
    FaultInjected,     ///< A FaultPlan fault fired (campaign runs).
    SnapshotCorrupt,   ///< A machine snapshot failed validation.
    TraceCorrupt,      ///< An MPOSTRC1 trace file failed validation.
};

inline const char *
errCodeName(ErrCode code)
{
    switch (code) {
    case ErrCode::BadConfig: return "bad-config";
    case ErrCode::ResourceExhausted: return "resource-exhausted";
    case ErrCode::WatchdogTrip: return "watchdog-trip";
    case ErrCode::Timeout: return "timeout";
    case ErrCode::JobFailed: return "job-failed";
    case ErrCode::FaultInjected: return "fault-injected";
    case ErrCode::SnapshotCorrupt: return "snapshot-corrupt";
    case ErrCode::TraceCorrupt: return "trace-corrupt";
    }
    return "unknown";
}

/** Typed recoverable simulator error. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrCode code, const std::string &what)
        : std::runtime_error(std::string(errCodeName(code)) + ": " +
                             what),
          code_(code)
    {
    }

    ErrCode code() const { return code_; }
    const char *codeName() const { return errCodeName(code_); }

  private:
    ErrCode code_;
};

/** Throw a SimError with a printf-formatted description. */
template <typename... Args>
[[noreturn]] void
raise(ErrCode code, const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0) {
        throw SimError(code, fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt, args...);
        std::string text(n > 0 ? size_t(n) : size_t(0), '\0');
        if (n > 0)
            std::snprintf(text.data(), text.size() + 1, fmt, args...);
        throw SimError(code, text);
    }
}

} // namespace mpos::util

#endif // MPOS_UTIL_ERROR_HH
