#include "util/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::util
{

namespace
{

/**
 * Cumulative-count rank of the frac percentile over total samples:
 * the smallest k such that k/total >= frac, i.e. ceil(frac * total).
 * The plain cast used here before truncated instead (0.7 * 10 is
 * 6.999... in binary, so uint64_t(...) gave rank 6, one sample early);
 * the epsilon keeps exactly-representable products like 0.5 * 100 from
 * rounding *up* a rank. Clamped to [1, total] so frac = 0 still names
 * the first sample and frac = 1 the last.
 */
uint64_t
percentileRank(double frac, uint64_t total)
{
    const double k = std::ceil(frac * double(total) - 1e-9);
    if (k <= 1.0)
        return 1;
    if (k >= double(total))
        return total;
    return uint64_t(k);
}

} // namespace

LinearHistogram::LinearHistogram(uint64_t bucket_width, uint32_t num_buckets)
    : width(bucket_width), counts(num_buckets + 1, 0)
{
    if (bucket_width == 0 || num_buckets == 0)
        raise(ErrCode::BadConfig,
              "LinearHistogram: degenerate geometry (width %llu x %u "
              "buckets)",
              (unsigned long long)bucket_width, num_buckets);
}

void
LinearHistogram::add(uint64_t value)
{
    uint64_t i = value / width;
    if (i >= counts.size() - 1)
        i = counts.size() - 1;
    ++counts[i];
    ++total;
    sum += double(value);
}

double
LinearHistogram::mean() const
{
    return total ? sum / double(total) : 0.0;
}

uint64_t
LinearHistogram::percentile(double frac) const
{
    if (!total)
        return 0;
    const uint64_t target = percentileRank(frac, total);
    uint64_t running = 0;
    for (uint32_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        if (running >= target)
            return bucketLo(i);
    }
    return bucketLo(uint32_t(counts.size() - 1));
}

double
LinearHistogram::fraction(uint32_t i) const
{
    if (!total || i >= counts.size())
        return 0.0;
    return double(counts[i]) / double(total);
}

void
LinearHistogram::merge(const LinearHistogram &other)
{
    if (other.width != width || other.counts.size() != counts.size())
        raise(ErrCode::BadConfig,
              "LinearHistogram::merge: geometry mismatch");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sum += other.sum;
}

Log2Histogram::Log2Histogram(uint32_t num_buckets)
    : counts(num_buckets, 0)
{
    if (num_buckets < 2)
        raise(ErrCode::BadConfig,
              "Log2Histogram: need at least two buckets (got %u)",
              num_buckets);
}

void
Log2Histogram::add(uint64_t value)
{
    uint32_t i = value < 2 ? 0 : uint32_t(std::bit_width(value) - 1);
    if (i >= counts.size())
        i = uint32_t(counts.size() - 1);
    ++counts[i];
    ++total;
    sum += double(value);
}

double
Log2Histogram::mean() const
{
    return total ? sum / double(total) : 0.0;
}

uint64_t
Log2Histogram::percentile(double frac) const
{
    if (!total)
        return 0;
    const uint64_t target = percentileRank(frac, total);
    uint64_t running = 0;
    for (uint32_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        if (running >= target)
            return bucketLo(i);
    }
    return bucketLo(uint32_t(counts.size() - 1));
}

double
Log2Histogram::fraction(uint32_t i) const
{
    if (!total || i >= counts.size())
        return 0.0;
    return double(counts[i]) / double(total);
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.counts.size() != counts.size())
        raise(ErrCode::BadConfig,
              "Log2Histogram::merge: geometry mismatch");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sum += other.sum;
}

std::string
Log2Histogram::render(const std::string &label, uint32_t bar_width) const
{
    std::string out = label + " (n=" + std::to_string(total) +
                      ", mean=" + std::to_string(mean()) + ")\n";
    // Trim trailing empty buckets for readability.
    uint32_t last = 0;
    for (uint32_t i = 0; i < counts.size(); ++i)
        if (counts[i])
            last = i;
    for (uint32_t i = 0; i <= last; ++i) {
        const double f = fraction(i);
        char head[64];
        std::snprintf(head, sizeof(head), "  >=%10llu %6.2f%% |",
                      static_cast<unsigned long long>(bucketLo(i)),
                      100.0 * f);
        out += head;
        out.append(uint32_t(f * bar_width + 0.5), '#');
        out += '\n';
    }
    return out;
}

} // namespace mpos::util
