#include "util/json.hh"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace mpos::util
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

namespace
{

/** Recursive-descent structural validator over a byte range. */
struct Validator
{
    const std::string &t;
    size_t pos = 0;
    size_t errPos = 0;
    std::string err;

    bool
    fail(size_t at, const char *what)
    {
        if (err.empty()) {
            errPos = at;
            err = what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < t.size() &&
               (t[pos] == ' ' || t[pos] == '\t' || t[pos] == '\n' ||
                t[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const size_t at = pos;
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= t.size() || t[pos] != *p)
                return fail(at, "bad literal");
        return true;
    }

    bool
    string()
    {
        if (pos >= t.size() || t[pos] != '"')
            return fail(pos, "expected string");
        ++pos;
        while (pos < t.size()) {
            const unsigned char c = (unsigned char)t[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail(pos, "raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= t.size())
                    break;
                const char e = t[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= t.size() ||
                            !std::isxdigit((unsigned char)t[pos]))
                            return fail(pos, "bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail(pos, "bad escape character");
                }
            }
            ++pos;
        }
        return fail(pos, "unterminated string");
    }

    bool
    number()
    {
        const size_t at = pos;
        if (pos < t.size() && t[pos] == '-')
            ++pos;
        if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
            return fail(at, "bad number");
        if (t[pos] == '0' && pos + 1 < t.size() &&
            std::isdigit((unsigned char)t[pos + 1]))
            return fail(at, "leading zero in number");
        while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
            ++pos;
        if (pos < t.size() && t[pos] == '.') {
            ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail(at, "bad number fraction");
            while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        if (pos < t.size() && (t[pos] == 'e' || t[pos] == 'E')) {
            ++pos;
            if (pos < t.size() && (t[pos] == '+' || t[pos] == '-'))
                ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail(at, "bad number exponent");
            while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        return true;
    }

    bool
    value(uint32_t depth)
    {
        if (depth > 256)
            return fail(pos, "nesting too deep");
        skipWs();
        if (pos >= t.size())
            return fail(pos, "expected value");
        switch (t[pos]) {
          case '{': {
            ++pos;
            skipWs();
            if (pos < t.size() && t[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= t.size() || t[pos] != ':')
                    return fail(pos, "expected ':'");
                ++pos;
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail(pos, "expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            skipWs();
            if (pos < t.size() && t[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail(pos, "expected ',' or ']'");
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }
};

} // namespace

bool
jsonValidate(const std::string &text, size_t *error_pos,
             std::string *error)
{
    Validator v{text, 0, 0, {}};
    bool ok = v.value(0);
    if (ok) {
        v.skipWs();
        if (v.pos != text.size())
            ok = v.fail(v.pos, "trailing characters after value");
    }
    if (!ok) {
        if (error_pos)
            *error_pos = v.errPos;
        if (error)
            *error = v.err;
    }
    return ok;
}

} // namespace mpos::util
