#include "util/json.hh"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mpos::util
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

namespace
{

/** Recursive-descent structural validator over a byte range. */
struct Validator
{
    const std::string &t;
    size_t pos = 0;
    size_t errPos = 0;
    std::string err;

    bool
    fail(size_t at, const char *what)
    {
        if (err.empty()) {
            errPos = at;
            err = what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < t.size() &&
               (t[pos] == ' ' || t[pos] == '\t' || t[pos] == '\n' ||
                t[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const size_t at = pos;
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= t.size() || t[pos] != *p)
                return fail(at, "bad literal");
        return true;
    }

    bool
    string()
    {
        if (pos >= t.size() || t[pos] != '"')
            return fail(pos, "expected string");
        ++pos;
        while (pos < t.size()) {
            const unsigned char c = (unsigned char)t[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail(pos, "raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= t.size())
                    break;
                const char e = t[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= t.size() ||
                            !std::isxdigit((unsigned char)t[pos]))
                            return fail(pos, "bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail(pos, "bad escape character");
                }
            }
            ++pos;
        }
        return fail(pos, "unterminated string");
    }

    bool
    number()
    {
        const size_t at = pos;
        if (pos < t.size() && t[pos] == '-')
            ++pos;
        if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
            return fail(at, "bad number");
        if (t[pos] == '0' && pos + 1 < t.size() &&
            std::isdigit((unsigned char)t[pos + 1]))
            return fail(at, "leading zero in number");
        while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
            ++pos;
        if (pos < t.size() && t[pos] == '.') {
            ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail(at, "bad number fraction");
            while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        if (pos < t.size() && (t[pos] == 'e' || t[pos] == 'E')) {
            ++pos;
            if (pos < t.size() && (t[pos] == '+' || t[pos] == '-'))
                ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail(at, "bad number exponent");
            while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        return true;
    }

    bool
    value(uint32_t depth)
    {
        if (depth > 256)
            return fail(pos, "nesting too deep");
        skipWs();
        if (pos >= t.size())
            return fail(pos, "expected value");
        switch (t[pos]) {
          case '{': {
            ++pos;
            skipWs();
            if (pos < t.size() && t[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (pos >= t.size() || t[pos] != ':')
                    return fail(pos, "expected ':'");
                ++pos;
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail(pos, "expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            skipWs();
            if (pos < t.size() && t[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail(pos, "expected ',' or ']'");
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }
};

} // namespace

bool
jsonValidate(const std::string &text, size_t *error_pos,
             std::string *error)
{
    Validator v{text, 0, 0, {}};
    bool ok = v.value(0);
    if (ok) {
        v.skipWs();
        if (v.pos != text.size())
            ok = v.fail(v.pos, "trailing characters after value");
    }
    if (!ok) {
        if (error_pos)
            *error_pos = v.errPos;
        if (error)
            *error = v.err;
    }
    return ok;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

namespace
{

/**
 * Recursive-descent parser sharing the Validator's grammar. The
 * validator stays the cheap structural check for text we *produced*;
 * this decodes text we *received* -- same strictness, same depth cap,
 * plus escape decoding into UTF-8.
 */
struct Parser
{
    const std::string &t;
    size_t pos = 0;
    std::string err;

    bool
    fail(const char *what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    void
    skipWs()
    {
        while (pos < t.size() &&
               (t[pos] == ' ' || t[pos] == '\t' || t[pos] == '\n' ||
                t[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= t.size() || t[pos] != *p)
                return fail("bad literal");
        return true;
    }

    void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xf0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3f));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
    }

    bool
    hex4(uint32_t &out)
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos >= t.size() ||
                !std::isxdigit((unsigned char)t[pos]))
                return fail("bad \\u escape");
            const char c = t[pos++];
            v = (v << 4) |
                uint32_t(c <= '9' ? c - '0'
                                  : (c | 0x20) - 'a' + 10);
        }
        out = v;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos >= t.size() || t[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < t.size()) {
            const unsigned char c = (unsigned char)t[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += char(c);
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= t.size())
                break;
            const char e = t[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                uint32_t cp = 0;
                if (!hex4(cp))
                    return false;
                // Surrogate pair: a high surrogate must be followed
                // by \u + low surrogate; anything else is corrupt.
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    if (pos + 1 >= t.size() || t[pos] != '\\' ||
                        t[pos + 1] != 'u')
                        return fail("unpaired surrogate");
                    pos += 2;
                    uint32_t lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const size_t at = pos;
        if (pos < t.size() && t[pos] == '-')
            ++pos;
        if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
            return fail("bad number");
        if (t[pos] == '0' && pos + 1 < t.size() &&
            std::isdigit((unsigned char)t[pos + 1]))
            return fail("leading zero in number");
        while (pos < t.size() && std::isdigit((unsigned char)t[pos]))
            ++pos;
        if (pos < t.size() && t[pos] == '.') {
            ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail("bad number fraction");
            while (pos < t.size() &&
                   std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        if (pos < t.size() && (t[pos] == 'e' || t[pos] == 'E')) {
            ++pos;
            if (pos < t.size() && (t[pos] == '+' || t[pos] == '-'))
                ++pos;
            if (pos >= t.size() || !std::isdigit((unsigned char)t[pos]))
                return fail("bad number exponent");
            while (pos < t.size() &&
                   std::isdigit((unsigned char)t[pos]))
                ++pos;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(t.substr(at, pos - at).c_str(),
                                 nullptr);
        return true;
    }

    bool
    value(JsonValue &out, uint32_t depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (pos >= t.size())
            return fail("expected value");
        switch (t[pos]) {
          case '{': {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < t.size() && t[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos >= t.size() || t[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < t.size() && t[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!value(item, depth + 1))
                    return false;
                out.items.push_back(std::move(item));
                skipWs();
                if (pos < t.size() && t[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < t.size() && t[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    Parser p{text, 0, {}};
    bool ok = p.value(out, 0);
    if (ok) {
        p.skipWs();
        if (p.pos != text.size())
            ok = p.fail("trailing characters after value");
    }
    if (!ok && error)
        *error = p.err;
    return ok;
}

} // namespace mpos::util
