/**
 * @file
 * Small named-counter registry used by the analysis layer.
 *
 * CounterSet keeps insertion order so reports print in a stable,
 * author-chosen sequence.
 */

#ifndef MPOS_UTIL_STATS_HH
#define MPOS_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mpos::util
{

/** An ordered set of named uint64 counters. */
class CounterSet
{
  public:
    /** Add delta to counter name, creating it at zero if absent. */
    void add(const std::string &name, uint64_t delta = 1);

    /** Current value (0 if the counter was never touched). */
    uint64_t get(const std::string &name) const;

    /** Sum over all counters. */
    uint64_t total() const;

    /** value(name) / total(), or 0 when empty. */
    double fractionOfTotal(const std::string &name) const;

    /** All (name, value) pairs in insertion order. */
    const std::vector<std::pair<std::string, uint64_t>> &
    entries() const
    {
        return items;
    }

    /** Reset every counter to zero (names retained). */
    void clear();

  private:
    std::vector<std::pair<std::string, uint64_t>> items;
    int find(const std::string &name) const;
};

/** Format helper: percentage with one decimal. */
std::string pct(double fraction);

/** Format helper: ratio a/b as a percentage string, "-" when b == 0. */
std::string pctOf(uint64_t a, uint64_t b);

} // namespace mpos::util

#endif // MPOS_UTIL_STATS_HH
