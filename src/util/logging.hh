/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant of the simulator is broken; aborts.
 * fatal()  -- the user asked for something impossible; exits cleanly.
 * warn()   -- something is modeled approximately; simulation continues.
 * inform() -- plain status output.
 */

#ifndef MPOS_UTIL_LOGGING_HH
#define MPOS_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mpos::util
{

/** Print a formatted message with a severity prefix. */
template <typename... Args>
void
message(const char *prefix, const char *fmt, Args... args)
{
    std::fprintf(stderr, "%s: ", prefix);
    if constexpr (sizeof...(Args) == 0)
        std::fputs(fmt, stderr);
    else
        std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
}

/** Abort: a simulator bug (broken invariant), never a user error. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    message("panic", fmt, args...);
    std::abort();
}

/** Exit: the user's configuration cannot be simulated. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    message("fatal", fmt, args...);
    std::exit(1);
}

/** Non-fatal warning about approximate modeling. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    message("warn", fmt, args...);
}

/** Informational status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    message("info", fmt, args...);
}

} // namespace mpos::util

#endif // MPOS_UTIL_LOGGING_HH
