/**
 * @file
 * Fixed-size host thread pool with futures.
 *
 * This is host-side orchestration machinery, not part of the simulated
 * machine: the pool lets several independent simulations run
 * concurrently, each remaining deterministic. (A single simulation
 * can additionally spread its simulated CPUs over host threads via
 * the epoch/barrier parallel core, sim/parallel.hh, which owns its
 * own gang rather than using this pool; mpos_bench clamps the
 * product of the two knobs to the host.) Sizing follows the
 * MPOS_JOBS environment knob (default: all hardware threads).
 */

#ifndef MPOS_UTIL_THREADPOOL_HH
#define MPOS_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mpos::util
{

/**
 * A classic fixed-size worker pool. Tasks are queued FIFO and their
 * results (or exceptions) delivered through std::future. Destruction
 * drains the queue: every submitted task still runs.
 */
class ThreadPool
{
  public:
    /** @param nthreads Worker count; 0 means defaultThreads(). */
    explicit ThreadPool(unsigned nthreads = 0);

    /** Finishes all queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue a callable; its return value or thrown exception is
     * delivered through the returned future.
     */
    template <typename F, typename R = std::invoke_result_t<F>>
    std::future<R>
    submit(F f)
    {
        // packaged_task is move-only; std::function needs copyable,
        // so the task rides in a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(m);
            queue.emplace_back([task] { (*task)(); });
        }
        cv.notify_one();
        return fut;
    }

    unsigned threads() const { return unsigned(workers.size()); }

    /** MPOS_JOBS if set (clamped to >= 1), else all hardware threads. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex m;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace mpos::util

#endif // MPOS_UTIL_THREADPOOL_HH
