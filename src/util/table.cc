#include "util/table.hh"

#include <algorithm>
#include <cstdio>

namespace mpos::util
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back({std::move(cells), false});
}

void
TextTable::rule()
{
    rows.push_back({{}, true});
}

std::string
TextTable::render() const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : rows)
        grow(r.cells);

    size_t line_len = 2;
    for (size_t w : widths)
        line_len += w + 3;

    auto fmt_row = [&](const std::vector<std::string> &cells) {
        std::string line = "| ";
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string c = i < cells.size() ? cells[i] : "";
            c.resize(widths[i], ' ');
            line += c + " | ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string sep(line_len, '-');
    sep += "\n";

    std::string out;
    if (!heading.empty())
        out += heading + "\n";
    out += sep;
    if (!head.empty()) {
        out += fmt_row(head);
        out += sep;
    }
    for (const auto &r : rows)
        out += r.separator ? sep : fmt_row(r.cells);
    out += sep;
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
barChart(const std::string &title,
         const std::vector<std::pair<std::string, double>> &data,
         uint32_t width, const std::string &unit)
{
    double max_v = 0.0;
    size_t max_label = 0;
    for (const auto &kv : data) {
        max_v = std::max(max_v, kv.second);
        max_label = std::max(max_label, kv.first.size());
    }
    std::string out = title + "\n";
    for (const auto &kv : data) {
        std::string label = kv.first;
        label.resize(max_label, ' ');
        char val[64];
        std::snprintf(val, sizeof(val), "%10.2f%s", kv.second,
                      unit.c_str());
        out += "  " + label + " " + val + " |";
        const uint32_t bar = max_v > 0.0
            ? uint32_t(kv.second / max_v * width + 0.5) : 0;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace mpos::util
