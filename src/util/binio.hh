/**
 * @file
 * Bounded little-endian binary serialization primitives.
 *
 * The snapshot container serializes full machine state as a flat byte
 * stream; these are the two halves of that contract. ByteWriter
 * appends fixed-width little-endian words (host endianness never
 * leaks into a snapshot file), and ByteReader decodes them with an
 * explicit bound on every access: a truncated or corrupted stream
 * raises util::SimError(SnapshotCorrupt) instead of reading past the
 * buffer. Doubles travel as their IEEE-754 bit patterns so workload
 * probability knobs round-trip bit-exactly.
 */

#ifndef MPOS_UTIL_BINIO_HH
#define MPOS_UTIL_BINIO_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.hh"

namespace mpos::util
{

/** Append-only little-endian encoder over a growable byte buffer. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(uint16_t(v));
        u16(uint16_t(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }

    void i64(int64_t v) { u64(uint64_t(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u32(uint32_t(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    /** Raw bytes, no length prefix (caller frames them). */
    void
    raw(const void *p, size_t n)
    {
        const uint8_t *b8 = static_cast<const uint8_t *>(p);
        buf.insert(buf.end(), b8, b8 + n);
    }

    size_t size() const { return buf.size(); }
    const std::vector<uint8_t> &bytes() const { return buf; }
    std::vector<uint8_t> take() { return std::move(buf); }

    /** Overwrite a previously written u32 (for back-patched lengths). */
    void
    patchU32(size_t at, uint32_t v)
    {
        if (at + 4 > buf.size())
            raise(ErrCode::SnapshotCorrupt,
                  "binio: patch at %zu past end %zu", at, buf.size());
        buf[at] = uint8_t(v);
        buf[at + 1] = uint8_t(v >> 8);
        buf[at + 2] = uint8_t(v >> 16);
        buf[at + 3] = uint8_t(v >> 24);
    }

  private:
    std::vector<uint8_t> buf;
};

/** Bounds-checked little-endian decoder over a fixed byte span. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : p(data), end_(data + size), begin_(data)
    {
    }

    explicit ByteReader(const std::vector<uint8_t> &v)
        : ByteReader(v.data(), v.size())
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        return uint16_t(lo | (uint16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }

    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }

    int64_t i64() { return int64_t(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    bool
    b()
    {
        const uint8_t v = u8();
        if (v > 1)
            raise(ErrCode::SnapshotCorrupt,
                  "binio: bool byte 0x%02x at offset %zu", v,
                  offset() - 1);
        return v != 0;
    }

    std::string
    str()
    {
        const uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }

    void
    raw(void *out, size_t n)
    {
        need(n);
        std::memcpy(out, p, n);
        p += n;
    }

    /** Skip n bytes (bounds-checked). */
    void
    skip(size_t n)
    {
        need(n);
        p += n;
    }

    /**
     * Read a u32 element count whose elements occupy at least
     * min_bytes_per_elem each. A count that promises more elements
     * than the remaining bytes could possibly hold is corruption;
     * rejecting it here keeps a hostile count from driving a
     * multi-gigabyte reserve() before the per-element reads would
     * have tripped the bound anyway.
     */
    uint32_t
    countU32(size_t min_bytes_per_elem)
    {
        const uint32_t n = u32();
        checkCount(n, min_bytes_per_elem);
        return n;
    }

    /** u64 variant of countU32 for 64-bit-counted arrays. */
    uint64_t
    countU64(size_t min_bytes_per_elem)
    {
        const uint64_t n = u64();
        checkCount(n, min_bytes_per_elem);
        return n;
    }

    size_t remaining() const { return size_t(end_ - p); }
    size_t offset() const { return size_t(p - begin_); }
    bool atEnd() const { return p == end_; }

    /** Sub-reader over the next n bytes, consuming them. */
    ByteReader
    sub(size_t n)
    {
        need(n);
        ByteReader r(p, n);
        p += n;
        return r;
    }

  private:
    void
    checkCount(uint64_t n, size_t min_bytes_per_elem)
    {
        const size_t per = min_bytes_per_elem ? min_bytes_per_elem : 1;
        if (n > remaining() / per)
            raise(ErrCode::SnapshotCorrupt,
                  "binio: count %llu at offset %zu needs %llu+ bytes, "
                  "have %zu",
                  (unsigned long long)n, offset(),
                  (unsigned long long)(n * per), remaining());
    }

    void
    need(size_t n)
    {
        if (size_t(end_ - p) < n)
            raise(ErrCode::SnapshotCorrupt,
                  "binio: need %zu bytes at offset %zu, have %zu", n,
                  offset(), remaining());
    }

    const uint8_t *p;
    const uint8_t *end_;
    const uint8_t *begin_;
};

} // namespace mpos::util

#endif // MPOS_UTIL_BINIO_HH
