/**
 * @file
 * Chunked bump-pointer arena for transient hot-path records.
 *
 * The simulation core allocates short-lived per-miss records (window
 * capture buffers, probe scratch) at reference rate; a general-purpose
 * allocator call per record would dominate the hot path. The arena
 * hands out raw storage by bumping a pointer through geometrically
 * growing chunks and recycles everything at once with reset() -- chunks
 * are kept, so a steady-state window allocates nothing.
 *
 * Not thread-safe by design: each worker owns its own arena.
 * Trivially-destructible payloads only (reset() runs no destructors).
 */

#ifndef MPOS_UTIL_ARENA_HH
#define MPOS_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace mpos::util
{

class Arena
{
  public:
    explicit Arena(size_t first_chunk_bytes = 16 * 1024)
        : firstChunkBytes(roundUp(first_chunk_bytes ? first_chunk_bytes
                                                    : 64))
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate n bytes aligned to align (a power of two). */
    void *
    allocate(size_t n, size_t align = alignof(std::max_align_t))
    {
        uintptr_t p = (cur + (align - 1)) & ~uintptr_t(align - 1);
        if (p + n > end) {
            refill(n + align);
            p = (cur + (align - 1)) & ~uintptr_t(align - 1);
        }
        cur = p + n;
        live += n;
        return reinterpret_cast<void *>(p);
    }

    /** Construct a T in arena storage. T must be trivially destructible. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena reset() runs no destructors");
        return ::new (allocate(sizeof(T), alignof(T)))
            T(std::forward<Args>(args)...);
    }

    /** Allocate an uninitialized array of n Ts. */
    template <typename T>
    T *
    makeArray(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena reset() runs no destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Recycle every allocation at once. Chunks are retained, so after
     * warm-up reset() is two pointer stores and no allocator traffic.
     */
    void
    reset()
    {
        live = 0;
        if (chunks.empty()) {
            cur = end = 0;
            return;
        }
        activeChunk = 0;
        cur = reinterpret_cast<uintptr_t>(chunks[0].data.get());
        end = cur + chunks[0].bytes;
    }

    /** Bytes currently handed out (since the last reset). */
    size_t allocatedBytes() const { return live; }

    /** Total bytes held in chunks (capacity, survives reset). */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.bytes;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        size_t bytes = 0;
    };

    static size_t
    roundUp(size_t n)
    {
        size_t cap = 64;
        while (cap < n)
            cap *= 2;
        return cap;
    }

    void
    refill(size_t need)
    {
        // Advance through retained chunks first; allocate a new,
        // geometrically larger one only when they are all exhausted.
        while (activeChunk + 1 < chunks.size()) {
            ++activeChunk;
            const Chunk &c = chunks[activeChunk];
            if (c.bytes >= need) {
                cur = reinterpret_cast<uintptr_t>(c.data.get());
                end = cur + c.bytes;
                return;
            }
        }
        const size_t grown =
            chunks.empty() ? firstChunkBytes : chunks.back().bytes * 2;
        const size_t bytes = roundUp(grown < need ? need : grown);
        chunks.push_back({std::make_unique<std::byte[]>(bytes), bytes});
        activeChunk = chunks.size() - 1;
        cur = reinterpret_cast<uintptr_t>(chunks.back().data.get());
        end = cur + bytes;
    }

    std::vector<Chunk> chunks;
    size_t activeChunk = 0;
    size_t firstChunkBytes;
    uintptr_t cur = 0;
    uintptr_t end = 0;
    size_t live = 0;
};

/**
 * Arena-backed growable array: push_back without per-element allocator
 * calls, reallocating (copy into a doubled arena block) as it grows.
 * The window-capture hot path appends one record per bus event.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit ArenaVector(Arena &arena) : ar(&arena) {}

    void
    push_back(const T &v)
    {
        if (n == cap)
            grow();
        data_[n++] = v;
    }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + n; }
    const T &operator[](size_t i) const { return data_[i]; }
    size_t size() const { return n; }
    bool empty() const { return n == 0; }

    /** Forget the contents (storage stays in the arena until reset). */
    void
    clear()
    {
        n = 0;
    }

  private:
    void
    grow()
    {
        const size_t ncap = cap ? cap * 2 : 64;
        T *nd = ar->makeArray<T>(ncap);
        for (size_t i = 0; i < n; ++i)
            nd[i] = data_[i];
        data_ = nd;
        cap = ncap;
    }

    Arena *ar;
    T *data_ = nullptr;
    size_t n = 0;
    size_t cap = 0;
};

} // namespace mpos::util

#endif // MPOS_UTIL_ARENA_HH
