/**
 * @file
 * Histogram utilities for per-invocation distributions (Figures 1 and 3).
 *
 * Two shapes are provided: a linear histogram with fixed-width buckets and
 * a base-2 logarithmic histogram for long-tailed quantities (misses or
 * cycles per OS invocation). Both support mean, percentile and rendering
 * queries used by the bench harnesses.
 */

#ifndef MPOS_UTIL_HISTOGRAM_HH
#define MPOS_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mpos::util
{

/** Fixed-width-bucket histogram over [0, bucketWidth * numBuckets). */
class LinearHistogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (> 0).
     * @param num_buckets  Number of regular buckets; larger samples go to
     *                     an overflow bucket.
     */
    LinearHistogram(uint64_t bucket_width, uint32_t num_buckets);

    /** Record one sample. */
    void add(uint64_t value);

    /** Number of samples recorded. */
    uint64_t count() const { return total; }

    /** Arithmetic mean of samples (0 if empty). */
    double mean() const;

    /** Smallest value v such that at least frac of samples are <= v. */
    uint64_t percentile(double frac) const;

    /** Fraction of samples falling in bucket i (overflow = last). */
    double fraction(uint32_t i) const;

    /** Lower bound of bucket i. */
    uint64_t bucketLo(uint32_t i) const { return i * width; }

    uint32_t numBuckets() const { return uint32_t(counts.size()); }

    /** Merge another histogram with identical geometry. */
    void merge(const LinearHistogram &other);

  private:
    uint64_t width;
    std::vector<uint64_t> counts; // last slot is overflow
    uint64_t total = 0;
    double sum = 0.0;
};

/** Base-2 logarithmic histogram: bucket i covers [2^i, 2^(i+1)). */
class Log2Histogram
{
  public:
    explicit Log2Histogram(uint32_t num_buckets = 32);

    void add(uint64_t value);

    uint64_t count() const { return total; }
    double mean() const;
    uint64_t percentile(double frac) const;
    double fraction(uint32_t i) const;

    /** Lower bound of bucket i (bucket 0 holds value 0 and 1). */
    uint64_t bucketLo(uint32_t i) const { return i == 0 ? 0 : (1ULL << i); }

    uint32_t numBuckets() const { return uint32_t(counts.size()); }

    void merge(const Log2Histogram &other);

    /** Render as an ASCII bar chart, one bucket per line. */
    std::string render(const std::string &label, uint32_t bar_width = 40)
        const;

  private:
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0.0;
};

} // namespace mpos::util

#endif // MPOS_UTIL_HISTOGRAM_HH
