#include "util/stats.hh"

#include <cstdio>

namespace mpos::util
{

int
CounterSet::find(const std::string &name) const
{
    for (size_t i = 0; i < items.size(); ++i)
        if (items[i].first == name)
            return int(i);
    return -1;
}

void
CounterSet::add(const std::string &name, uint64_t delta)
{
    const int i = find(name);
    if (i >= 0)
        items[size_t(i)].second += delta;
    else
        items.emplace_back(name, delta);
}

uint64_t
CounterSet::get(const std::string &name) const
{
    const int i = find(name);
    return i >= 0 ? items[size_t(i)].second : 0;
}

uint64_t
CounterSet::total() const
{
    uint64_t sum = 0;
    for (const auto &kv : items)
        sum += kv.second;
    return sum;
}

double
CounterSet::fractionOfTotal(const std::string &name) const
{
    const uint64_t t = total();
    return t ? double(get(name)) / double(t) : 0.0;
}

void
CounterSet::clear()
{
    for (auto &kv : items)
        kv.second = 0;
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", 100.0 * fraction);
    return buf;
}

std::string
pctOf(uint64_t a, uint64_t b)
{
    if (!b)
        return "-";
    return pct(double(a) / double(b));
}

} // namespace mpos::util
