/**
 * @file
 * Workload-side snapshot serializer: the BehaviorCodec the kernel
 * calls to save and reconstruct concrete AppBehavior objects, plus
 * the Workload shared-structure save/restore it depends on.
 *
 * Every behavior serializes as a one-byte class tag, its full
 * SyntheticApp base (params, RNG, cursors, and the derived spans and
 * probability thresholds -- verbatim, because after an exec
 * transition they derive from a superseded params draw), then its
 * class-specific fields. load() reconstructs the object wired to the
 * owning Workload's shared structures, so Workload::restoreState must
 * run before Kernel::restoreState.
 */

#ifndef MPOS_WORKLOAD_WSTATE_HH
#define MPOS_WORKLOAD_WSTATE_HH

#include "workload/workload.hh"

namespace mpos::workload
{

/** Serializes the workload's concrete behavior classes. */
class StateCodec : public kernel::BehaviorCodec
{
  public:
    explicit StateCodec(Workload &workload) : wl(workload) {}

    void save(util::ByteWriter &w,
              const kernel::AppBehavior &b) const override;
    std::unique_ptr<kernel::AppBehavior>
    load(util::ByteReader &r) const override;

  private:
    Workload &wl;
};

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_WSTATE_HH
