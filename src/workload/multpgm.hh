/**
 * @file
 * Multpgm: the paper's timesharing workload -- Mp3d (four processes,
 * 50,000 particles) running concurrently with a full Pmake and five
 * screen-edit sessions, all started together. Composition happens in
 * Workload::create; this header only exposes the sub-builders for
 * tests.
 */

#ifndef MPOS_WORKLOAD_MULTPGM_HH
#define MPOS_WORKLOAD_MULTPGM_HH

#include "workload/workload.hh"

#endif // MPOS_WORKLOAD_MULTPGM_HH
