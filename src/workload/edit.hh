/**
 * @file
 * One ed screen-edit session driven by the kernel's simulated typist
 * (bursts of 1-15 characters, as in the paper). The session blocks
 * reading its terminal, then performs character searches over its
 * text buffer and occasionally writes the file back.
 */

#ifndef MPOS_WORKLOAD_EDIT_HH
#define MPOS_WORKLOAD_EDIT_HH

#include "workload/app_model.hh"
#include "workload/workload.hh"

namespace mpos::workload
{

/** An interactive ed process. */
class EdSession : public SyntheticApp
{
  public:
    EdSession(uint32_t tty_session, uint32_t save_file, uint64_t seed);

    void chunk(Process &p, UserScript &s) override;

  private:
    uint32_t tty;
    uint32_t saveFile;
    uint32_t inputs = 0;

    friend class StateCodec;
};

AppParams edParams(uint64_t seed);

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_EDIT_HH
