#include "workload/app_model.hh"

namespace mpos::workload
{

namespace
{
constexpr Addr lineBytes = 16;
constexpr uint32_t instrPerLine = 4;
} // namespace

SyntheticApp::SyntheticApp(const AppParams &params)
    : prm(params), rng(params.seed)
{
}

void
SyntheticApp::resetCursors()
{
    codePos = 0;
    loopActive = false;
    sweepPos = 0;
}

Addr
SyntheticApp::pickDataAddr()
{
    if (prm.sharedBytes && rng.chance(prm.sharedRefProb)) {
        if (rng.chance(prm.sharedSweepProb)) {
            const Addr a = prm.sharedBase + sweepPos;
            sweepPos = (sweepPos + lineBytes) % prm.sharedBytes;
            return a;
        }
        uint64_t span = prm.sharedBytes;
        if (prm.sharedHotProb > 0.0 && rng.chance(prm.sharedHotProb))
            span = uint64_t(prm.sharedHotFrac *
                            double(prm.sharedBytes));
        if (!span)
            span = lineBytes;
        return prm.sharedBase + (rng.below(span) & ~(lineBytes - 1));
    }
    const uint64_t hot =
        uint64_t(prm.hotDataFrac * double(prm.dataBytes));
    uint64_t off;
    if (hot && rng.chance(prm.hotDataProb))
        off = rng.below(hot);
    else
        off = rng.below(prm.dataBytes);
    return VaMap::dataBase + (off & ~(lineBytes - 1));
}

void
SyntheticApp::maybeJump()
{
    if (!rng.chance(prm.jumpProb * instrPerLine))
        return;
    const uint64_t hot =
        uint64_t(prm.hotCodeFrac * double(prm.codeBytes));
    uint64_t target;
    if (hot && rng.chance(prm.hotCodeProb))
        target = rng.below(hot);
    else
        target = rng.below(prm.codeBytes);
    codePos = target & ~(lineBytes - 1);
    loopActive = false;
}

void
SyntheticApp::emitWork(UserScript &s, uint32_t instrs)
{
    uint32_t emitted = 0;
    const bool shared_write_ok = prm.sharedBytes > 0;
    while (emitted < instrs) {
        if (!loopActive && rng.chance(prm.loopStartProb)) {
            loopActive = true;
            loopStart = codePos;
            loopLines = 2 + uint32_t(rng.below(prm.maxLoopLines));
            loopRepsLeft = 2 + uint32_t(rng.below(prm.maxLoopReps));
        }

        s.ifetch(VaMap::textBase + codePos);
        for (uint32_t i = 0; i < instrPerLine; ++i) {
            if (!rng.chance(prm.dataRefProb))
                continue;
            const Addr a = pickDataAddr();
            const bool is_shared =
                shared_write_ok && a >= prm.sharedBase &&
                a < prm.sharedBase + prm.sharedBytes;
            const double sf =
                is_shared ? prm.sharedStoreFrac : prm.storeFrac;
            if (rng.chance(sf))
                s.store(a);
            else
                s.load(a);
        }
        emitted += instrPerLine;

        codePos += lineBytes;
        if (loopActive) {
            if (codePos >= loopStart + Addr(loopLines) * lineBytes) {
                if (--loopRepsLeft == 0)
                    loopActive = false;
                else
                    codePos = loopStart;
            }
        } else {
            maybeJump();
        }
        if (codePos >= prm.codeBytes)
            codePos = 0;
    }
}

void
SyntheticApp::chunk(Process &p, UserScript &s)
{
    (void)p;
    emitWork(s, prm.chunkInstrs);
}

} // namespace mpos::workload
