#include "workload/app_model.hh"

namespace mpos::workload
{

namespace
{
constexpr Addr lineBytes = 16;
constexpr uint32_t instrPerLine = 4;
} // namespace

SyntheticApp::SyntheticApp(const AppParams &params)
    : prm(params), rng(params.seed),
      hotDataSpan(uint64_t(params.hotDataFrac *
                           double(params.dataBytes))),
      hotCodeSpan(uint64_t(params.hotCodeFrac *
                           double(params.codeBytes))),
      sharedHotSpan(uint64_t(params.sharedHotFrac *
                             double(params.sharedBytes))),
      thDataRef(util::Rng::chanceThreshold(params.dataRefProb)),
      thStore(util::Rng::chanceThreshold(params.storeFrac)),
      thJumpLine(
          util::Rng::chanceThreshold(params.jumpProb * instrPerLine)),
      thLoopStart(util::Rng::chanceThreshold(params.loopStartProb)),
      thHotCode(util::Rng::chanceThreshold(params.hotCodeProb)),
      thHotData(util::Rng::chanceThreshold(params.hotDataProb)),
      thSharedRef(util::Rng::chanceThreshold(params.sharedRefProb)),
      thSharedSweep(util::Rng::chanceThreshold(params.sharedSweepProb)),
      thSharedStore(util::Rng::chanceThreshold(params.sharedStoreFrac)),
      thSharedHot(util::Rng::chanceThreshold(params.sharedHotProb))
{
}

void
SyntheticApp::resetCursors()
{
    codePos = 0;
    loopActive = false;
    sweepPos = 0;
}

Addr
SyntheticApp::pickDataAddr()
{
    if (prm.sharedBytes && rng.chanceBelow(thSharedRef)) {
        if (rng.chanceBelow(thSharedSweep)) {
            const Addr a = prm.sharedBase + sweepPos;
            // Equivalent to % sharedBytes; loops at most once for any
            // shared region at least a line long.
            sweepPos += lineBytes;
            while (sweepPos >= prm.sharedBytes)
                sweepPos -= prm.sharedBytes;
            return a;
        }
        uint64_t span = prm.sharedBytes;
        if (prm.sharedHotProb > 0.0 && rng.chanceBelow(thSharedHot))
            span = sharedHotSpan;
        if (!span)
            span = lineBytes;
        return prm.sharedBase + (rng.below(span) & ~(lineBytes - 1));
    }
    uint64_t off;
    if (hotDataSpan && rng.chanceBelow(thHotData))
        off = rng.below(hotDataSpan);
    else
        off = rng.below(prm.dataBytes);
    return VaMap::dataBase + (off & ~(lineBytes - 1));
}

void
SyntheticApp::maybeJump()
{
    if (!rng.chanceBelow(thJumpLine))
        return;
    uint64_t target;
    if (hotCodeSpan && rng.chanceBelow(thHotCode))
        target = rng.below(hotCodeSpan);
    else
        target = rng.below(prm.codeBytes);
    codePos = target & ~(lineBytes - 1);
    loopActive = false;
}

void
SyntheticApp::emitWork(UserScript &s, uint32_t instrs)
{
    // The whole chunk stages into the SoA batch and lands in the
    // script with one flush; the item order is exactly what the
    // per-item calls produced.
    uint32_t emitted = 0;
    const bool shared_write_ok = prm.sharedBytes > 0;
    while (emitted < instrs) {
        if (!loopActive && rng.chanceBelow(thLoopStart)) {
            loopActive = true;
            loopStart = codePos;
            loopLines = 2 + uint32_t(rng.below(prm.maxLoopLines));
            loopRepsLeft = 2 + uint32_t(rng.below(prm.maxLoopReps));
        }

        batch.ifetch(VaMap::textBase + codePos);
        for (uint32_t i = 0; i < instrPerLine; ++i) {
            if (!rng.chanceBelow(thDataRef))
                continue;
            const Addr a = pickDataAddr();
            const bool is_shared =
                shared_write_ok && a >= prm.sharedBase &&
                a < prm.sharedBase + prm.sharedBytes;
            if (rng.chanceBelow(is_shared ? thSharedStore
                                          : thStore))
                batch.store(a);
            else
                batch.load(a);
        }
        emitted += instrPerLine;

        codePos += lineBytes;
        if (loopActive) {
            if (codePos >= loopStart + Addr(loopLines) * lineBytes) {
                if (--loopRepsLeft == 0)
                    loopActive = false;
                else
                    codePos = loopStart;
            }
        } else {
            maybeJump();
        }
        if (codePos >= prm.codeBytes)
            codePos = 0;
    }
    batch.flush(s);
}

void
SyntheticApp::chunk(Process &p, UserScript &s)
{
    (void)p;
    emitWork(s, prm.chunkInstrs);
}

} // namespace mpos::workload
