/**
 * @file
 * Pmake: a parallel make of 56 C files with at most 8 concurrent jobs
 * (the paper's -J 8). The make driver forks compile jobs; each job
 * runs a cpp -> cc1 -> as pipeline with exec transitions, file reads
 * and writes, and an eventual exit. File ids advance monotonically so
 * source reads keep missing the buffer cache, as a fresh make does.
 */

#ifndef MPOS_WORKLOAD_PMAKE_HH
#define MPOS_WORKLOAD_PMAKE_HH

#include "workload/app_model.hh"
#include "workload/workload.hh"

namespace mpos::workload
{

/** The make process: forks jobs, waits for them, loops forever. */
class MakeDriver : public SyntheticApp, public ForkableBehavior
{
  public:
    MakeDriver(PmakeShared *state, uint64_t seed);

    void chunk(Process &p, UserScript &s) override;
    std::unique_ptr<AppBehavior> makeChildBehavior() override;

  private:
    PmakeShared *st;

    friend class StateCodec;
};

/** One compile job: cpp, cc1, as phases. */
class CompileJob : public SyntheticApp
{
  public:
    CompileJob(PmakeShared *state, uint64_t seed);

    void chunk(Process &p, UserScript &s) override;

  private:
    /**
     * Snapshot-restore constructor: unlike the public one, draws no
     * file ids from the shared state (the codec overwrites them with
     * the serialized values, and PmakeShared::nextFile was restored
     * separately).
     */
    CompileJob(PmakeShared *state, const AppParams &params);

    PmakeShared *st;
    uint32_t srcFile, tmpFile, asmFile, objFile;
    int phase = 0;
    uint64_t done = 0;
    int ioStep = 0;

    friend class StateCodec;
};

/** Parameter sets for the pipeline stages. */
AppParams makeDriverParams(uint64_t seed);
AppParams cppParams(uint64_t seed);
AppParams cc1Params(uint64_t seed);
AppParams asParams(uint64_t seed);

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_PMAKE_HH
