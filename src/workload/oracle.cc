#include "workload/oracle.hh"

namespace mpos::workload
{

AppParams
oracleParams(OracleShared *state, uint64_t seed)
{
    AppParams a;
    a.codeBytes = 1024 * 1024; // the RDBMS engine is huge
    a.dataBytes = 128 * 1024;  // per-server private state
    a.hotCodeFrac = 0.3;
    a.hotCodeProb = 0.7;       // wide instruction working set
    a.jumpProb = 0.05;
    a.sharedBytes = state->sgaBytes;
    a.sharedBase = state->sgaBase;
    a.sharedRefProb = 0.25;    // SGA buffer pool accesses
    a.sharedSweepProb = 0.65;  // mostly scans within pinned blocks
    a.sharedStoreFrac = 0.25;
    a.sharedHotFrac = 0.15;    // hot tables/indexes
    a.sharedHotProb = 0.8;
    a.chunkInstrs = 640;
    a.seed = seed;
    return a;
}

OracleServer::OracleServer(OracleShared *state, uint64_t seed)
    : SyntheticApp(oracleParams(state, seed)), st(state)
{
}

void
OracleServer::chunk(Process &p, UserScript &s)
{
    (void)p;
    switch (txPhase) {
      case 0: {
        // Begin transaction: grab a cache-buffer latch, pin the
        // branch/teller/account blocks in the SGA.
        const uint32_t latch =
            st->latches[st->rng.below(st->latches.size())];
        s.userLock(latch);
        emitWork(s, 128);
        s.userUnlock(latch);
        txPhase = 1;
        done = 0;
        return;
      }
      case 1:
        // Transaction body: SQL execution over the SGA.
        if (done < 30000) {
            emitWork(s, 2500);
            done += 2500;
            if (rng.chance(0.06))
                s.syscall(Sys::Other); // lseek/times/semop chatter
            return;
        }
        emitWork(s, 200);
        if (rng.chance(0.45)) {
            // SGA miss: read a database block from disk.
            s.syscall(Sys::Read,
                      kernel::ioPayload(
                          st->dbFileBase + uint32_t(rng.below(32)),
                          8192, uint32_t(rng.below(512))));
        }
        txPhase = 2;
        return;
      case 2:
        // Commit: serialize on the redo latch and force the log.
        s.userLock(st->logLatch);
        emitWork(s, 64);
        s.userUnlock(st->logLatch);
        s.syscall(Sys::Write,
                  kernel::ioPayload(st->logFile, 2048,
                                    st->logBlock++ & 0xffff, true));
        ++st->transactions;
        txPhase = 0;
        return;
    }
}

} // namespace mpos::workload
