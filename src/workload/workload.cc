#include "workload/workload.hh"

#include <algorithm>

#include "util/logging.hh"
#include "workload/edit.hh"
#include "workload/mp3d.hh"
#include "workload/oracle.hh"
#include "workload/pmake.hh"

namespace mpos::workload
{

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Pmake: return "Pmake";
      case WorkloadKind::Multpgm: return "Multpgm";
      case WorkloadKind::Oracle: return "Oracle";
    }
    return "?";
}

WorkloadOptions
scaledOptions(WorkloadOptions base, uint32_t num_cpus)
{
    if (num_cpus <= 4)
        return base;
    // Grow linearly from the paper's 4-CPU sizing: more make jobs
    // (and files to keep them coming), more typists, more servers,
    // and one Mp3d particle process per CPU.
    const uint32_t f = num_cpus / 4;
    base.pmakeFiles *= f;
    // Process-level knobs are capped so a fully loaded Multpgm mix
    // (make + jobs + mp3d + editors) stays inside the kernel's
    // widest process table (256 slots, see kernel::LayoutConfig).
    base.pmakeMaxJobs = std::max(base.pmakeMaxJobs, num_cpus);
    base.editSessions = std::min(base.editSessions * f, 40u);
    base.oracleServers = std::min(base.oracleServers * f, 48u);
    base.mp3dProcs = num_cpus;
    return base;
}

Workload::Workload(WorkloadKind kind, kernel::Kernel &k)
    : kindTag(kind), label(workloadName(kind)), kern(k)
{
}

uint64_t
Workload::recommendedPoolPages(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Pmake: return 285;
      case WorkloadKind::Multpgm: return 1150;
      case WorkloadKind::Oracle: return 2200;
    }
    return 2000;
}

std::unique_ptr<Workload>
Workload::create(WorkloadKind kind, kernel::Kernel &k,
                 const WorkloadOptions &opts)
{
    std::unique_ptr<Workload> w(new Workload(kind, k));
    w->seed = opts.seed;
    k.setClient(w.get());
    switch (kind) {
      case WorkloadKind::Pmake:
        w->buildPmake(opts);
        break;
      case WorkloadKind::Multpgm:
        w->buildPmake(opts);
        w->buildMp3d(opts);
        w->buildEdits(opts);
        break;
      case WorkloadKind::Oracle:
        w->buildOracle(opts);
        break;
    }
    return w;
}

void
Workload::buildPmake(const WorkloadOptions &opts)
{
    pmake = std::make_unique<PmakeShared>();
    pmake->files = opts.pmakeFiles;
    pmake->jobsRemaining = opts.pmakeFiles;
    pmake->maxJobs = opts.pmakeMaxJobs;
    pmake->rng = util::Rng(seed ^ 0x9a4e);
    pmake->imgCpp = kern.registerImage("cpp", 80 * 1024);
    pmake->imgCc1 = kern.registerImage("cc1", 256 * 1024);
    pmake->imgAs = kern.registerImage("as", 96 * 1024);

    const uint32_t img = kern.registerImage("make", 48 * 1024);
    kern.spawn(std::make_unique<MakeDriver>(pmake.get(),
                                            pmake->rng.next()),
               img, "make");
}

void
Workload::buildOracle(const WorkloadOptions &opts)
{
    oracle = std::make_unique<OracleShared>();
    oracle->rng = util::Rng(seed ^ 0x0acULL);
    oracle->sgaBytes = 4 * 1024 * 1024; // in-memory TP1 database
    oracle->sgaBase = kern.shmAlloc(oracle->sgaBytes);
    for (uint32_t i = 0; i < 4; ++i)
        oracle->latches.push_back(kern.allocUserLock());
    oracle->logLatch = kern.allocUserLock();
    oracle->logFile = 0x200000;
    oracle->dbFileBase = 0x100000;

    const uint32_t img = kern.registerImage("oracle", 1024 * 1024);
    util::Rng r(seed ^ 0xdb);
    for (uint32_t i = 0; i < opts.oracleServers; ++i) {
        kern.spawn(std::make_unique<OracleServer>(oracle.get(),
                                                  r.next()),
                   img, "oracle" + std::to_string(i));
    }
}

void
Workload::onFork(kernel::Process &parent, kernel::Process &child)
{
    auto *fk = dynamic_cast<ForkableBehavior *>(parent.behavior.get());
    if (!fk)
        util::panic("process %s forked but its behavior cannot "
                    "produce children", parent.name.c_str());
    child.behavior = fk->makeChildBehavior();
}

void
Workload::onProcExit(kernel::Process &p)
{
    if (pmake && dynamic_cast<CompileJob *>(p.behavior.get())) {
        if (pmake->running > 0)
            --pmake->running;
        ++pmake->jobsCompleted;
    }
}

} // namespace mpos::workload
