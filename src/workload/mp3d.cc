#include "workload/mp3d.hh"

namespace mpos::workload
{

AppParams
mp3dParams(Mp3dShared *state, uint64_t seed)
{
    AppParams a;
    a.codeBytes = 64 * 1024; // tight numeric loops
    a.dataBytes = 64 * 1024;
    a.hotCodeFrac = 0.15;
    a.hotCodeProb = 0.95;
    a.loopStartProb = 0.12;
    a.sharedBytes = state->particleBytes;
    a.sharedBase = state->particleBase;
    a.sharedRefProb = 0.5;   // the particle arrays are the data
    a.sharedSweepProb = 0.7; // swept mostly sequentially
    a.sharedStoreFrac = 0.4;
    a.chunkInstrs = 512;
    a.seed = seed;
    return a;
}

Mp3dProc::Mp3dProc(Mp3dShared *state, uint64_t seed)
    : SyntheticApp(mp3dParams(state, seed)), st(state)
{
}

void
Mp3dProc::chunk(Process &p, UserScript &s)
{
    (void)p;
    if (atBarrier) {
        if (st->generation == myGeneration) {
            // Peers have not arrived (typically because they are
            // descheduled): poll the barrier flag, spin briefly, and
            // yield -- the library's spin-20-then-sginap discipline.
            // This is the source of Multpgm's sginap storms.
            s.load(st->particleBase); // the barrier/flag line
            s.think(20 * 30);
            s.syscall(Sys::Sginap);
            return;
        }
        atBarrier = false; // released; fall through to real work
    }

    // Move several particle groups, each under its cell lock.
    for (uint32_t g = 0; g < 3; ++g) {
        const uint32_t lk =
            st->cellLocks[rng.below(st->cellLocks.size())];
        s.userLock(lk);
        emitWork(s, 40);
        s.userUnlock(lk);
        emitWork(s, 88);
    }

    if (++stepPhase % 28 == 0) {
        // End of timestep: arrive at the global barrier.
        s.userLock(st->barrierLock);
        s.store(st->particleBase);
        s.userUnlock(st->barrierLock);
        myGeneration = st->generation;
        if (++st->arrived >= st->nprocs) {
            st->arrived = 0;
            ++st->generation;
            ++st->steps;
        } else {
            atBarrier = true;
        }
        if (stepPhase % 192 == 0)
            s.syscall(Sys::Other); // occasional gettimeofday etc.
    }
}

} // namespace mpos::workload
