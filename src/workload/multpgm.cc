/**
 * @file
 * Builders for the Multpgm components (Mp3d and the edit sessions).
 */

#include "workload/edit.hh"
#include "workload/mp3d.hh"
#include "workload/multpgm.hh"

namespace mpos::workload
{

void
Workload::buildMp3d(const WorkloadOptions &opts)
{
    mp3d = std::make_unique<Mp3dShared>();
    // 50,000 particles at ~28 bytes each ~= 1.4 MB of shared arrays.
    mp3d->particleBytes = 1408 * 1024;
    mp3d->particleBase = kern.shmAlloc(mp3d->particleBytes);
    for (uint32_t i = 0; i < 4; ++i)
        mp3d->cellLocks.push_back(kern.allocUserLock());
    mp3d->barrierLock = kern.allocUserLock();
    mp3d->nprocs = opts.mp3dProcs;

    const uint32_t img = kern.registerImage("mp3d", 64 * 1024);
    util::Rng r(seed ^ 0x5d3d);
    for (uint32_t i = 0; i < opts.mp3dProcs; ++i) {
        kern.spawn(std::make_unique<Mp3dProc>(mp3d.get(), r.next()),
                   img, "mp3d" + std::to_string(i));
    }
}

void
Workload::buildEdits(const WorkloadOptions &opts)
{
    const uint32_t img = kern.registerImage("ed", 96 * 1024);
    util::Rng r(seed ^ 0xed17);
    for (uint32_t i = 0; i < opts.editSessions; ++i) {
        const uint32_t tty = kern.registerTty(opts.editMeanGap);
        const uint32_t save_file = 0x300000 + i;
        kern.spawn(std::make_unique<EdSession>(tty, save_file,
                                               r.next()),
                   img, "ed" + std::to_string(i));
    }
}

} // namespace mpos::workload
