/**
 * @file
 * Factory for the paper's three measured workloads.
 *
 * - Pmake: a parallel make of 56 C files, at most 8 jobs at once.
 * - Multpgm: Mp3d (4 processes) + Pmake + five ed sessions.
 * - Oracle: a scaled-down TP1 transaction mix (10 branches, 100
 *   tellers, 10,000 accounts) served by a pool of server processes.
 *
 * The Workload object owns all behavior-shared state and implements
 * the kernel's lifecycle hooks (fork, exit).
 */

#ifndef MPOS_WORKLOAD_WORKLOAD_HH
#define MPOS_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.hh"
#include "util/rng.hh"
#include "workload/app_model.hh"

namespace mpos::workload
{

enum class WorkloadKind : uint8_t { Pmake, Multpgm, Oracle };

/** Name for reports. */
const char *workloadName(WorkloadKind kind);

/** Scale knobs (defaults follow the paper where sizes are given). */
struct WorkloadOptions
{
    uint64_t seed = 7;
    uint32_t pmakeFiles = 56;      ///< Paper: 56 C files.
    uint32_t pmakeMaxJobs = 8;     ///< Paper: -J 8.
    uint32_t editSessions = 5;     ///< Paper: five ed sessions.
    /**
     * Typist inter-burst gap. The paper's 25 chars / 5 s is scaled to
     * simulated-run length (documented in DESIGN.md).
     */
    sim::Cycle editMeanGap = 2000000;
    uint32_t oracleServers = 6;
    uint32_t mp3dProcs = 4;        ///< Paper: 4 processes.
};

/**
 * Scale a workload's process-level parallelism to an N-CPU machine.
 * The paper's sizes assume the 4-CPU 4D/340; re-running the
 * characterization at 8-64 CPUs with 4-CPU process counts would idle
 * the extra processors and understate every contention effect. At or
 * below 4 CPUs the options are returned untouched, so the default
 * configurations (and their goldens) are unaffected.
 */
WorkloadOptions scaledOptions(WorkloadOptions base, uint32_t num_cpus);

/** Shared state of a Pmake run. */
struct PmakeShared
{
    uint32_t jobsRemaining = 0;
    uint32_t maxJobs = 8;
    uint32_t files = 56;
    uint32_t running = 0;
    uint64_t jobsCompleted = 0;
    uint32_t nextFile = 1;
    uint32_t imgCpp = 0;
    uint32_t imgCc1 = 0;
    uint32_t imgAs = 0;
    util::Rng rng{99};
};

/** Shared state of the Mp3d particle simulator. */
struct Mp3dShared
{
    std::vector<uint32_t> cellLocks;
    uint32_t barrierLock = 0;
    sim::Addr particleBase = 0;
    uint64_t particleBytes = 0;
    uint64_t steps = 0;
    /** BSP barrier state: generation counter and arrival count. */
    uint32_t generation = 0;
    uint32_t arrived = 0;
    uint32_t nprocs = 4;
};

/** Shared state of the Oracle TP1 instance. */
struct OracleShared
{
    std::vector<uint32_t> latches;
    uint32_t logLatch = 0;
    uint32_t logFile = 0;
    uint32_t dbFileBase = 0;
    uint32_t logBlock = 0;
    sim::Addr sgaBase = 0;
    uint64_t sgaBytes = 0;
    uint64_t transactions = 0;
    util::Rng rng{123};
};

/** A constructed workload, attached to a kernel. */
class Workload : public kernel::KernelClient
{
  public:
    static std::unique_ptr<Workload> create(WorkloadKind kind,
                                            kernel::Kernel &k,
                                            const WorkloadOptions &opts
                                            = {});

    /** Suggested kernel user page pool for this workload. */
    static uint64_t recommendedPoolPages(WorkloadKind kind);

    const std::string &name() const { return label; }
    WorkloadKind kind() const { return kindTag; }

    /// @name kernel::KernelClient
    /// @{
    void onFork(kernel::Process &parent, kernel::Process &child)
        override;
    void onProcExit(kernel::Process &p) override;
    /// @}

    /// @name Progress counters
    /// @{
    uint64_t pmakeJobsCompleted() const
    {
        return pmake ? pmake->jobsCompleted : 0;
    }
    uint64_t oracleTransactions() const
    {
        return oracle ? oracle->transactions : 0;
    }
    uint64_t mp3dSteps() const { return mp3d ? mp3d->steps : 0; }
    /// @}

    /// @name Snapshot save/restore
    /// Serializes the behavior-shared structures (Pmake job pool,
    /// Mp3d barrier, Oracle SGA bookkeeping). Must run BEFORE
    /// Kernel::restoreState on restore: behaviors reconstructed by the
    /// codec point into these structures and must not see pre-restore
    /// values. The workload must have been built with the same kind
    /// and options (the caller guards this with the config hash).
    /// @{
    void saveState(util::ByteWriter &w) const;
    void restoreState(util::ByteReader &r);
    /// @}

  private:
    Workload(WorkloadKind kind, kernel::Kernel &k);

    void buildPmake(const WorkloadOptions &opts);
    void buildMp3d(const WorkloadOptions &opts);
    void buildEdits(const WorkloadOptions &opts);
    void buildOracle(const WorkloadOptions &opts);

    WorkloadKind kindTag;
    std::string label;
    kernel::Kernel &kern;
    std::unique_ptr<PmakeShared> pmake;
    std::unique_ptr<Mp3dShared> mp3d;
    std::unique_ptr<OracleShared> oracle;
    uint64_t seed = 7;

    /** Snapshot serializer: wires restored behaviors to the shared
     *  structures above. */
    friend class StateCodec;
};

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_WORKLOAD_HH
