/**
 * @file
 * Mp3d: the 3-D particle simulator of the paper's Multpgm workload,
 * run with four processes over a shared particle array. Fine-grain
 * user locks protect cell groups; when a holder is preempted the
 * other processes spin 20 times and fall into sginap -- the source of
 * Multpgm's sginap-dominated OS operation mix (Figure 2).
 */

#ifndef MPOS_WORKLOAD_MP3D_HH
#define MPOS_WORKLOAD_MP3D_HH

#include "workload/app_model.hh"
#include "workload/workload.hh"

namespace mpos::workload
{

/** One Mp3d worker process. */
class Mp3dProc : public SyntheticApp
{
  public:
    Mp3dProc(Mp3dShared *state, uint64_t seed);

    void chunk(Process &p, UserScript &s) override;

  private:
    Mp3dShared *st;
    uint32_t stepPhase = 0;
    uint32_t myGeneration = 0;
    bool atBarrier = false;

    friend class StateCodec;
};

AppParams mp3dParams(Mp3dShared *state, uint64_t seed);

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_MP3D_HH
