#include "workload/wstate.hh"

#include "util/binio.hh"
#include "util/error.hh"
#include "workload/edit.hh"
#include "workload/mp3d.hh"
#include "workload/oracle.hh"
#include "workload/pmake.hh"

namespace mpos::workload
{

using util::ByteReader;
using util::ByteWriter;
using util::ErrCode;

namespace
{

/** One-byte class tags; the on-disk format depends on these values. */
enum class Tag : uint8_t
{
    MakeDriver = 0,
    CompileJob = 1,
    Mp3dProc = 2,
    EdSession = 3,
    OracleServer = 4,
};

void
saveRng(ByteWriter &w, const util::Rng &rng)
{
    for (uint64_t word : rng.saveState())
        w.u64(word);
}

void
loadRng(ByteReader &r, util::Rng &rng)
{
    std::array<uint64_t, 4> st;
    for (uint64_t &word : st)
        word = r.u64();
    rng.restoreState(st);
}

void
saveParams(ByteWriter &w, const AppParams &p)
{
    w.u64(p.codeBytes);
    w.u64(p.dataBytes);
    w.f64(p.dataRefProb);
    w.f64(p.storeFrac);
    w.f64(p.hotCodeFrac);
    w.f64(p.hotCodeProb);
    w.f64(p.jumpProb);
    w.f64(p.loopStartProb);
    w.u32(p.maxLoopLines);
    w.u32(p.maxLoopReps);
    w.f64(p.hotDataFrac);
    w.f64(p.hotDataProb);
    w.u64(p.sharedBytes);
    w.u64(p.sharedBase);
    w.f64(p.sharedRefProb);
    w.f64(p.sharedSweepProb);
    w.f64(p.sharedStoreFrac);
    w.f64(p.sharedHotFrac);
    w.f64(p.sharedHotProb);
    w.u32(p.chunkInstrs);
    w.u64(p.seed);
}

AppParams
loadParams(ByteReader &r)
{
    AppParams p;
    p.codeBytes = r.u64();
    p.dataBytes = r.u64();
    p.dataRefProb = r.f64();
    p.storeFrac = r.f64();
    p.hotCodeFrac = r.f64();
    p.hotCodeProb = r.f64();
    p.jumpProb = r.f64();
    p.loopStartProb = r.f64();
    p.maxLoopLines = r.u32();
    p.maxLoopReps = r.u32();
    p.hotDataFrac = r.f64();
    p.hotDataProb = r.f64();
    p.sharedBytes = r.u64();
    p.sharedBase = r.u64();
    p.sharedRefProb = r.f64();
    p.sharedSweepProb = r.f64();
    p.sharedStoreFrac = r.f64();
    p.sharedHotFrac = r.f64();
    p.sharedHotProb = r.f64();
    p.chunkInstrs = r.u32();
    p.seed = r.u64();
    return p;
}

void
requireShared(const void *p, const char *what)
{
    if (!p)
        util::raise(ErrCode::SnapshotCorrupt,
                    "behavior snapshot references the %s shared state, "
                    "which this workload does not have",
                    what);
}

} // namespace

void
StateCodec::save(ByteWriter &w, const kernel::AppBehavior &b) const
{
    const auto *app = dynamic_cast<const SyntheticApp *>(&b);
    if (!app)
        util::raise(ErrCode::SnapshotCorrupt,
                    "cannot snapshot a non-SyntheticApp behavior");

    if (dynamic_cast<const MakeDriver *>(app))
        w.u8(uint8_t(Tag::MakeDriver));
    else if (dynamic_cast<const CompileJob *>(app))
        w.u8(uint8_t(Tag::CompileJob));
    else if (dynamic_cast<const Mp3dProc *>(app))
        w.u8(uint8_t(Tag::Mp3dProc));
    else if (dynamic_cast<const EdSession *>(app))
        w.u8(uint8_t(Tag::EdSession));
    else if (dynamic_cast<const OracleServer *>(app))
        w.u8(uint8_t(Tag::OracleServer));
    else
        util::raise(ErrCode::SnapshotCorrupt,
                    "cannot snapshot unknown SyntheticApp subclass");

    // Base state.
    const SyntheticApp &a = *app;
    saveParams(w, a.prm);
    saveRng(w, a.rng);
    w.u64(a.codePos);
    w.b(a.loopActive);
    w.u64(a.loopStart);
    w.u32(a.loopLines);
    w.u32(a.loopRepsLeft);
    w.u64(a.sweepPos);
    w.u64(a.hotDataSpan);
    w.u64(a.hotCodeSpan);
    w.u64(a.sharedHotSpan);
    w.u64(a.thDataRef);
    w.u64(a.thStore);
    w.u64(a.thJumpLine);
    w.u64(a.thLoopStart);
    w.u64(a.thHotCode);
    w.u64(a.thHotData);
    w.u64(a.thSharedRef);
    w.u64(a.thSharedSweep);
    w.u64(a.thSharedStore);
    w.u64(a.thSharedHot);

    // Class-specific state.
    if (const auto *cj = dynamic_cast<const CompileJob *>(app)) {
        w.u32(cj->srcFile);
        w.u32(cj->tmpFile);
        w.u32(cj->asmFile);
        w.u32(cj->objFile);
        w.i64(cj->phase);
        w.u64(cj->done);
        w.i64(cj->ioStep);
    } else if (const auto *mp = dynamic_cast<const Mp3dProc *>(app)) {
        w.u32(mp->stepPhase);
        w.u32(mp->myGeneration);
        w.b(mp->atBarrier);
    } else if (const auto *ed = dynamic_cast<const EdSession *>(app)) {
        w.u32(ed->tty);
        w.u32(ed->saveFile);
        w.u32(ed->inputs);
    } else if (const auto *os = dynamic_cast<const OracleServer *>(app)) {
        w.i64(os->txPhase);
        w.u64(os->done);
    }
    // MakeDriver carries no state beyond the base.
}

std::unique_ptr<kernel::AppBehavior>
StateCodec::load(ByteReader &r) const
{
    const Tag tag = Tag(r.u8());
    const AppParams prm = loadParams(r);

    // Construct the right class wired to the owning workload's shared
    // structures. Every constructor here is side-effect-free with
    // respect to that shared state (CompileJob uses its dedicated
    // restore constructor); the base members the constructors derive
    // are overwritten verbatim below.
    std::unique_ptr<SyntheticApp> app;
    switch (tag) {
      case Tag::MakeDriver:
        requireShared(wl.pmake.get(), "pmake");
        app = std::make_unique<MakeDriver>(wl.pmake.get(), prm.seed);
        break;
      case Tag::CompileJob:
        requireShared(wl.pmake.get(), "pmake");
        app.reset(new CompileJob(wl.pmake.get(), prm));
        break;
      case Tag::Mp3dProc:
        requireShared(wl.mp3d.get(), "mp3d");
        app = std::make_unique<Mp3dProc>(wl.mp3d.get(), prm.seed);
        break;
      case Tag::EdSession:
        app = std::make_unique<EdSession>(0, 0, prm.seed);
        break;
      case Tag::OracleServer:
        requireShared(wl.oracle.get(), "oracle");
        app = std::make_unique<OracleServer>(wl.oracle.get(), prm.seed);
        break;
      default:
        util::raise(ErrCode::SnapshotCorrupt,
                    "unknown behavior tag %u", unsigned(tag));
    }

    // Base state.
    SyntheticApp &a = *app;
    a.prm = prm;
    loadRng(r, a.rng);
    a.codePos = r.u64();
    a.loopActive = r.b();
    a.loopStart = r.u64();
    a.loopLines = r.u32();
    a.loopRepsLeft = r.u32();
    a.sweepPos = r.u64();
    a.hotDataSpan = r.u64();
    a.hotCodeSpan = r.u64();
    a.sharedHotSpan = r.u64();
    a.thDataRef = r.u64();
    a.thStore = r.u64();
    a.thJumpLine = r.u64();
    a.thLoopStart = r.u64();
    a.thHotCode = r.u64();
    a.thHotData = r.u64();
    a.thSharedRef = r.u64();
    a.thSharedSweep = r.u64();
    a.thSharedStore = r.u64();
    a.thSharedHot = r.u64();

    // Class-specific state.
    switch (tag) {
      case Tag::CompileJob: {
        auto &cj = static_cast<CompileJob &>(a);
        cj.srcFile = r.u32();
        cj.tmpFile = r.u32();
        cj.asmFile = r.u32();
        cj.objFile = r.u32();
        cj.phase = int(r.i64());
        cj.done = r.u64();
        cj.ioStep = int(r.i64());
        break;
      }
      case Tag::Mp3dProc: {
        auto &mp = static_cast<Mp3dProc &>(a);
        mp.stepPhase = r.u32();
        mp.myGeneration = r.u32();
        mp.atBarrier = r.b();
        break;
      }
      case Tag::EdSession: {
        auto &ed = static_cast<EdSession &>(a);
        ed.tty = r.u32();
        ed.saveFile = r.u32();
        ed.inputs = r.u32();
        break;
      }
      case Tag::OracleServer: {
        auto &os = static_cast<OracleServer &>(a);
        os.txPhase = int(r.i64());
        os.done = r.u64();
        break;
      }
      default:
        break;
    }
    return app;
}

// ---------------------------------------------------------------------
// Workload shared structures
// ---------------------------------------------------------------------

void
Workload::saveState(ByteWriter &w) const
{
    w.b(pmake != nullptr);
    if (pmake) {
        const PmakeShared &s = *pmake;
        w.u32(s.jobsRemaining);
        w.u32(s.maxJobs);
        w.u32(s.files);
        w.u32(s.running);
        w.u64(s.jobsCompleted);
        w.u32(s.nextFile);
        w.u32(s.imgCpp);
        w.u32(s.imgCc1);
        w.u32(s.imgAs);
        saveRng(w, s.rng);
    }
    w.b(mp3d != nullptr);
    if (mp3d) {
        const Mp3dShared &s = *mp3d;
        w.u32(uint32_t(s.cellLocks.size()));
        for (uint32_t id : s.cellLocks)
            w.u32(id);
        w.u32(s.barrierLock);
        w.u64(s.particleBase);
        w.u64(s.particleBytes);
        w.u64(s.steps);
        w.u32(s.generation);
        w.u32(s.arrived);
        w.u32(s.nprocs);
    }
    w.b(oracle != nullptr);
    if (oracle) {
        const OracleShared &s = *oracle;
        w.u32(uint32_t(s.latches.size()));
        for (uint32_t id : s.latches)
            w.u32(id);
        w.u32(s.logLatch);
        w.u32(s.logFile);
        w.u32(s.dbFileBase);
        w.u32(s.logBlock);
        w.u64(s.sgaBase);
        w.u64(s.sgaBytes);
        w.u64(s.transactions);
        saveRng(w, s.rng);
    }
}

void
Workload::restoreState(ByteReader &r)
{
    if (r.b() != (pmake != nullptr))
        util::raise(ErrCode::SnapshotCorrupt,
                    "workload snapshot pmake presence mismatch");
    if (pmake) {
        PmakeShared &s = *pmake;
        s.jobsRemaining = r.u32();
        s.maxJobs = r.u32();
        s.files = r.u32();
        s.running = r.u32();
        s.jobsCompleted = r.u64();
        s.nextFile = r.u32();
        s.imgCpp = r.u32();
        s.imgCc1 = r.u32();
        s.imgAs = r.u32();
        loadRng(r, s.rng);
    }
    if (r.b() != (mp3d != nullptr))
        util::raise(ErrCode::SnapshotCorrupt,
                    "workload snapshot mp3d presence mismatch");
    if (mp3d) {
        Mp3dShared &s = *mp3d;
        s.cellLocks.clear();
        const uint32_t n = r.countU32(4);
        s.cellLocks.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
            s.cellLocks.push_back(r.u32());
        s.barrierLock = r.u32();
        s.particleBase = r.u64();
        s.particleBytes = r.u64();
        s.steps = r.u64();
        s.generation = r.u32();
        s.arrived = r.u32();
        s.nprocs = r.u32();
    }
    if (r.b() != (oracle != nullptr))
        util::raise(ErrCode::SnapshotCorrupt,
                    "workload snapshot oracle presence mismatch");
    if (oracle) {
        OracleShared &s = *oracle;
        s.latches.clear();
        const uint32_t n = r.countU32(4);
        s.latches.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
            s.latches.push_back(r.u32());
        s.logLatch = r.u32();
        s.logFile = r.u32();
        s.dbFileBase = r.u32();
        s.logBlock = r.u32();
        s.sgaBase = r.u64();
        s.sgaBytes = r.u64();
        s.transactions = r.u64();
        loadRng(r, s.rng);
    }
}

} // namespace mpos::workload
