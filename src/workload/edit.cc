#include "workload/edit.hh"

#include "kernel/kernel.hh"

namespace mpos::workload
{

AppParams
edParams(uint64_t seed)
{
    AppParams a;
    a.codeBytes = 96 * 1024;
    a.dataBytes = 128 * 1024; // the text being edited
    a.hotDataFrac = 0.5;      // searches sweep widely
    a.hotDataProb = 0.5;
    a.loopStartProb = 0.1;    // search loops
    a.chunkInstrs = 512;
    a.seed = seed;
    return a;
}

EdSession::EdSession(uint32_t tty_session, uint32_t save_file,
                     uint64_t seed)
    : SyntheticApp(edParams(seed)), tty(tty_session),
      saveFile(save_file)
{
}

void
EdSession::chunk(Process &p, UserScript &s)
{
    (void)p;
    // Block for the next typed burst.
    s.syscall(Sys::Read,
              kernel::ioPayload(kernel::Kernel::ttyFileId(tty), 64, 1));
    // Process the command: character searches and editing.
    emitWork(s, 2600);
    if (++inputs % 24 == 0) {
        // Periodic write of the edited file.
        s.syscall(Sys::Write, kernel::ioPayload(saveFile, 4096, 0));
    }
}

} // namespace mpos::workload
