#include "workload/pmake.hh"

namespace mpos::workload
{

AppParams
makeDriverParams(uint64_t seed)
{
    AppParams a;
    a.codeBytes = 40 * 1024;
    a.dataBytes = 24 * 1024;
    a.chunkInstrs = 384;
    a.seed = seed;
    return a;
}

AppParams
cppParams(uint64_t seed)
{
    AppParams a;
    a.codeBytes = 64 * 1024;
    a.dataBytes = 28 * 1024;
    a.chunkInstrs = 512;
    a.seed = seed;
    return a;
}

AppParams
cc1Params(uint64_t seed)
{
    AppParams a;
    a.codeBytes = 160 * 1024; // the optimizer is big
    a.dataBytes = 56 * 1024;
    a.hotCodeFrac = 0.2;
    a.hotCodeProb = 0.8;
    a.chunkInstrs = 640;
    a.seed = seed;
    return a;
}

AppParams
asParams(uint64_t seed)
{
    AppParams a;
    a.codeBytes = 64 * 1024;
    a.dataBytes = 24 * 1024;
    a.chunkInstrs = 512;
    a.seed = seed;
    return a;
}

MakeDriver::MakeDriver(PmakeShared *state, uint64_t seed)
    : SyntheticApp(makeDriverParams(seed)), st(state)
{
}

std::unique_ptr<AppBehavior>
MakeDriver::makeChildBehavior()
{
    return std::make_unique<CompileJob>(st, st->rng.next());
}

void
MakeDriver::chunk(Process &p, UserScript &s)
{
    (void)p;
    emitWork(s, 256);
    if (rng.chance(0.12)) {
        // Re-scan the makefile / directory (buffer-cache hits).
        s.syscall(Sys::Read, kernel::ioPayload(0x380000, 4096, 1));
    }
    if (st->running < st->maxJobs && st->jobsRemaining > 0) {
        --st->jobsRemaining;
        ++st->running;
        s.syscall(Sys::Other); // stat() the target
        s.syscall(Sys::Fork);
        return;
    }
    if (st->running > 0) {
        s.syscall(Sys::Wait);
        return;
    }
    // The make finished all 56 files; for steady-state tracing, start
    // the next (identical) make immediately.
    st->jobsRemaining = st->files;
}

CompileJob::CompileJob(PmakeShared *state, uint64_t seed)
    : SyntheticApp(makeDriverParams(seed)), st(state)
{
    srcFile = st->nextFile;
    tmpFile = st->nextFile + 1;
    asmFile = st->nextFile + 2;
    objFile = st->nextFile + 3;
    st->nextFile += 4;
}

CompileJob::CompileJob(PmakeShared *state, const AppParams &params)
    : SyntheticApp(params), st(state), srcFile(0), tmpFile(0),
      asmFile(0), objFile(0)
{
}

void
CompileJob::chunk(Process &p, UserScript &s)
{
    (void)p;
    switch (phase) {
      case 0:
        // Freshly forked copy of make: exec the preprocessor.
        emitWork(s, 64);
        s.syscall(Sys::Exec, st->imgCpp);
        prm = cppParams(rng.next());
        resetCursors();
        phase = 1;
        done = 0;
        ioStep = 0;
        return;

      case 1: // cpp: read the source, macro-expand, write a temp file
        if (ioStep < 6) {
            s.syscall(Sys::Read,
                      kernel::ioPayload(srcFile, 4096,
                                        uint32_t(ioStep)));
            ++ioStep;
            emitWork(s, 900);
            return;
        }
        if (done < 40000) {
            emitWork(s, 1500);
            done += 1500;
            if (rng.chance(0.08))
                s.syscall(Sys::Other);
            return;
        }
        s.syscall(Sys::Write, kernel::ioPayload(tmpFile, 8192, 0));
        emitWork(s, 400);
        s.syscall(Sys::Exec, st->imgCc1);
        prm = cc1Params(rng.next());
        resetCursors();
        phase = 2;
        done = 0;
        ioStep = 0;
        return;

      case 2: // cc1: the compute-heavy optimizer
        if (ioStep < 2) {
            s.syscall(Sys::Read,
                      kernel::ioPayload(tmpFile, 4096,
                                        uint32_t(ioStep)));
            ++ioStep;
            emitWork(s, 1000);
            return;
        }
        if (done < 260000) {
            emitWork(s, 2200);
            done += 2200;
            if (rng.chance(0.05))
                s.syscall(Sys::Brk, 2);
            if (rng.chance(0.04))
                s.syscall(Sys::Other);
            if (rng.chance(0.02)) {
                // Re-read an include file (usually a cache hit).
                s.syscall(Sys::Read,
                          kernel::ioPayload(tmpFile, 4096, 0));
            }
            return;
        }
        s.syscall(Sys::Write, kernel::ioPayload(asmFile, 8192, 0));
        s.syscall(Sys::Write, kernel::ioPayload(asmFile, 8192, 2));
        emitWork(s, 400);
        s.syscall(Sys::Exec, st->imgAs);
        prm = asParams(rng.next());
        resetCursors();
        phase = 3;
        done = 0;
        ioStep = 0;
        return;

      case 3: // as: assemble and write the object file
        if (ioStep < 4) {
            s.syscall(Sys::Read,
                      kernel::ioPayload(asmFile, 4096,
                                        uint32_t(ioStep)));
            ++ioStep;
            emitWork(s, 900);
            return;
        }
        if (done < 34000) {
            emitWork(s, 1500);
            done += 1500;
            return;
        }
        s.syscall(Sys::Write, kernel::ioPayload(objFile, 4096, 0));
        s.syscall(Sys::Write, kernel::ioPayload(objFile, 4096, 1));
        s.syscall(Sys::Exit);
        return;
    }
}

} // namespace mpos::workload
