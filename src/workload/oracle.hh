/**
 * @file
 * Oracle: a scaled-down TP1 (debit-credit) instance, as in the paper:
 * 10 branches, 100 tellers, 10,000 accounts, resident in memory. A
 * pool of server processes executes transactions against a large
 * shared SGA buffer pool, protected by user-level latches; each
 * commit performs a synchronous redo-log write, and a fraction of
 * transactions read database blocks from disk. The servers' large
 * shared code footprint is what makes OS instruction misses in Oracle
 * dominated by application displacement (Dispap, Figure 4).
 */

#ifndef MPOS_WORKLOAD_ORACLE_HH
#define MPOS_WORKLOAD_ORACLE_HH

#include "workload/app_model.hh"
#include "workload/workload.hh"

namespace mpos::workload
{

/** TP1 scale parameters (paper Section 3). */
struct Tp1Scale
{
    uint32_t branches = 10;
    uint32_t tellers = 100;
    uint32_t accounts = 10000;
};

/** One Oracle server (shadow) process. */
class OracleServer : public SyntheticApp
{
  public:
    OracleServer(OracleShared *state, uint64_t seed);

    void chunk(Process &p, UserScript &s) override;

  private:
    OracleShared *st;
    int txPhase = 0;
    uint64_t done = 0;

    friend class StateCodec;
};

AppParams oracleParams(OracleShared *state, uint64_t seed);

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_ORACLE_HH
