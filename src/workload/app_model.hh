/**
 * @file
 * Generic synthetic application model.
 *
 * A SyntheticApp produces a user-mode reference stream with the knobs
 * that matter for cache behavior: instruction footprint with loops and
 * hot/cold regions, a private data working set, optional shared-memory
 * accesses (sweeps or random), and a configurable store fraction. The
 * workloads (Pmake jobs, Mp3d, ed, Oracle servers) subclass it and
 * inject system calls, forks, and user-lock activity between work
 * chunks.
 */

#ifndef MPOS_WORKLOAD_APP_MODEL_HH
#define MPOS_WORKLOAD_APP_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/process.hh"
#include "util/rng.hh"

namespace mpos::workload
{

class StateCodec;

using kernel::AppBehavior;
using kernel::Process;
using kernel::Sys;
using kernel::UserScript;
using kernel::VaMap;
using sim::Addr;
using sim::Cycle;

/** Knobs of the synthetic reference stream. */
struct AppParams
{
    uint64_t codeBytes = 64 * 1024;  ///< Instruction footprint.
    uint64_t dataBytes = 64 * 1024;  ///< Private data working set.

    double dataRefProb = 0.35; ///< Data references per instruction.
    double storeFrac = 0.3;    ///< Fraction of data refs that write.

    double hotCodeFrac = 0.25; ///< Leading fraction of code that is hot.
    double hotCodeProb = 0.85; ///< Jump lands in the hot region.
    double jumpProb = 0.04;    ///< Per-instruction taken-branch-away.
    double loopStartProb = 0.05; ///< Begin a loop at a line boundary.
    uint32_t maxLoopLines = 16;
    uint32_t maxLoopReps = 12;

    double hotDataFrac = 0.25;
    double hotDataProb = 0.8;

    /** Shared-region accesses (0 disables). */
    uint64_t sharedBytes = 0;
    Addr sharedBase = VaMap::sharedBase;
    double sharedRefProb = 0.0; ///< Data ref goes to shared memory.
    double sharedSweepProb = 0.0; ///< Shared ref continues a sweep.
    double sharedStoreFrac = 0.3;
    double sharedHotFrac = 1.0;  ///< Leading hot fraction of shared.
    double sharedHotProb = 0.0;  ///< Random shared ref lands hot.

    uint32_t chunkInstrs = 512; ///< Instructions per chunk() call.
    uint64_t seed = 1;
};

/**
 * Staging buffer for reference generation. References accumulate as
 * parallel flat arrays (structure of arrays: one for the item kind,
 * one for the address) and flush to the UserScript in a single bulk
 * append. The emit loop therefore writes one byte and one word per
 * reference into dense retained storage instead of constructing a
 * five-field ScriptItem per call, and the script vector reserves the
 * whole batch at once.
 */
class ReferenceBatch
{
  public:
    void ifetch(Addr a) { push(sim::ItemKind::IFetchLine, a); }
    void load(Addr a) { push(sim::ItemKind::Load, a); }
    void store(Addr a) { push(sim::ItemKind::Store, a); }

    size_t size() const { return kinds.size(); }
    bool empty() const { return kinds.empty(); }

    /** Append everything staged to s (in order) and clear; capacity
     *  is retained for the next batch. */
    void
    flush(UserScript &s)
    {
        if (kinds.empty())
            return;
        s.appendRefs(kinds.data(), addrs.data(), kinds.size());
        kinds.clear();
        addrs.clear();
    }

  private:
    void
    push(sim::ItemKind k, Addr a)
    {
        kinds.push_back(k);
        addrs.push_back(a);
    }

    std::vector<sim::ItemKind> kinds;
    std::vector<Addr> addrs;
};

/**
 * Base behavior: emits synthetic user work. Subclasses override
 * chunk() and call emitWork() around their system-call logic.
 */
class SyntheticApp : public AppBehavior
{
  public:
    explicit SyntheticApp(const AppParams &params);

    void chunk(Process &p, UserScript &s) override;

    /** Emit roughly instrs instructions of user execution. */
    void emitWork(UserScript &s, uint32_t instrs);

    /** Reset code/data cursors (e.g. after exec). */
    void resetCursors();

    const AppParams &params() const { return prm; }

  protected:
    AppParams prm;
    util::Rng rng;

  private:
    /** SoA staging for emitWork; member so capacity persists across
     *  chunks (steady state: zero allocations per chunk). */
    ReferenceBatch batch;

    Addr codePos = 0;      ///< Byte offset into the code footprint.
    bool loopActive = false;
    Addr loopStart = 0;
    uint32_t loopLines = 0;
    uint32_t loopRepsLeft = 0;
    Addr sweepPos = 0;

    /** Hot-region spans precomputed from prm (prm never changes after
     *  construction); pickDataAddr/maybeJump draw these per reference. */
    uint64_t hotDataSpan = 0;
    uint64_t hotCodeSpan = 0;
    uint64_t sharedHotSpan = 0;

    /** Rng::chanceThreshold of every fixed probability in prm; the
     *  emit loop tests them millions of times per run (equivalent
     *  draws, see chanceBelow). */
    uint64_t thDataRef = 0;
    uint64_t thStore = 0;
    uint64_t thJumpLine = 0; ///< jumpProb * instrPerLine
    uint64_t thLoopStart = 0;
    uint64_t thHotCode = 0;
    uint64_t thHotData = 0;
    uint64_t thSharedRef = 0;
    uint64_t thSharedSweep = 0;
    uint64_t thSharedStore = 0;
    uint64_t thSharedHot = 0;

    Addr pickDataAddr();
    void maybeJump();

    /** Snapshot serializer: reads/writes the cursors, spans and
     *  thresholds verbatim (after an exec transition they derive from
     *  a superseded params draw, so recomputation would diverge). */
    friend class StateCodec;
};

/**
 * Behaviors whose processes fork: the workload's onFork hook asks the
 * parent behavior to build the child's.
 */
class ForkableBehavior
{
  public:
    virtual ~ForkableBehavior() = default;
    virtual std::unique_ptr<AppBehavior> makeChildBehavior() = 0;
};

} // namespace mpos::workload

#endif // MPOS_WORKLOAD_APP_MODEL_HH
