#include "kernel/fs.hh"

namespace mpos::kernel
{

BufferCache::BufferCache(uint32_t num_buffers)
    : bufs(num_buffers)
{
}

int32_t
BufferCache::lookup(int64_t blkno) const
{
    auto it = map.find(blkno);
    return it == map.end() ? -1 : int32_t(it->second);
}

BufferCache::GetResult
BufferCache::getVictim(int64_t blkno)
{
    // LRU over all buffers; the array is small (256).
    uint32_t victim = 0;
    for (uint32_t i = 1; i < bufs.size(); ++i)
        if (bufs[i].lastUse < bufs[victim].lastUse)
            victim = i;

    GetResult r{victim, bufs[victim].dirty, bufs[victim].blkno};
    if (bufs[victim].blkno >= 0)
        map.erase(bufs[victim].blkno);
    bufs[victim].blkno = blkno;
    bufs[victim].dirty = false;
    bufs[victim].lastUse = ++useClock;
    map[blkno] = victim;
    return r;
}

uint32_t
BufferCache::chainLength(int64_t blkno) const
{
    // Model a hash table of 64 chains: chain walk length is the number
    // of resident buffers sharing the low hash bits, capped small.
    uint32_t n = 0;
    for (const auto &b : bufs)
        if (b.blkno >= 0 && (b.blkno & 63) == (blkno & 63))
            ++n;
    return n > 4 ? 4 : (n == 0 ? 1 : n);
}

} // namespace mpos::kernel
