/**
 * @file
 * Named kernel spinlocks (Table 11 of the paper) and the lock event
 * listener interface used by the lock-statistics analysis.
 *
 * Kernel locks are spinlocks acquired by CPUs inside kernel paths;
 * user-library locks live in the same id space (above the kernel ids)
 * and follow the spin-20-then-sginap discipline described in the
 * paper. All lock traffic flows through sim::SyncTransport, which
 * accounts bus operations under both synchronization protocols.
 */

#ifndef MPOS_KERNEL_LOCKS_HH
#define MPOS_KERNEL_LOCKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/syncbus.hh"
#include "sim/types.hh"

namespace mpos::kernel
{

/** Kernel lock ids (Table 11). The *_x names are arrays of locks. */
enum KLock : uint32_t
{
    Memlock = 0, ///< Physical memory allocation structures.
    Runqlk,      ///< Scheduler run queue.
    Ifree,       ///< List of free inodes.
    Dfbmaplk,    ///< Free disk block table.
    Bfreelock,   ///< Buffer-cache free list.
    Calock,      ///< Callout (alarm/timeout) table.
    Semlock,     ///< User-visible semaphore array.
    ShrBase,     ///< Shr_0..Shr_7: per-process page table locks.
    StreamsBase = ShrBase + 8, ///< Streams_0..3: character devices.
    InoBase = StreamsBase + 4, ///< Ino_0..7: per-inode operations.
    numKernelLocks = InoBase + 8,
};

/** Pick the Shr_x lock protecting process slot's page tables. */
inline uint32_t shrLock(uint32_t slot) { return ShrBase + slot % 8; }
/** Pick the Streams_x lock for a tty session. */
inline uint32_t streamsLock(uint32_t s) { return StreamsBase + s % 4; }
/** Pick the Ino_x lock for an inode. */
inline uint32_t inoLock(uint32_t ino) { return InoBase + ino % 8; }

/**
 * Human-readable lock name ("Memlock", "Shr_3", "UserLock_2", ...).
 *
 * Callers must pass the kernel's real user-lock count: diagnostic
 * paths that guessed 0 used to misname user-library locks as plain
 * "Lock_N", which is why the parameter has no default.
 */
std::string lockName(uint32_t lock_id, uint32_t num_user_locks);

/** Ids whose read-mostly accesses get the RCU read path when the
 *  machine's lock policy is LockPolicy::Rcu: the free-inode list and
 *  the Ino_x per-inode locks, the paper's hottest read-mostly tables. */
inline bool
rcuManaged(uint32_t lock_id)
{
    return lock_id == Ifree ||
           (lock_id >= InoBase && lock_id < numKernelLocks);
}

/**
 * Runtime state of one lock. The first three fields are the paper's
 * test-and-set machine; the rest exist for the modern lock policies
 * (DESIGN.md section 14) and stay at their defaults under the default
 * primitive.
 */
struct LockState
{
    int32_t heldByCpu = -1;   ///< CPU currently holding (kernel view).
    uint64_t spinMask = 0;    ///< CPUs actively spinning on it.
    uint32_t napWaiters = 0;  ///< Processes that sginapped on it.

    uint32_t nextTicket = 0;  ///< Ticket: next ticket to hand out.
    uint32_t nowServing = 0;  ///< Ticket: ticket currently served.
    /** MCS/futex direct hand-off: the CPU (kernel locks) or pid (user
     *  locks) the releaser granted the lock to, not yet observed by
     *  the grantee; -1 when no hand-off is pending. */
    int32_t grantedTo = -1;
    /** FIFO of waiters: CPU ids for MCS kernel locks, pids for futex
     *  user locks. */
    std::vector<uint32_t> waitQueue;
    uint32_t rcuReaders = 0;  ///< Active read-side sections (RCU).
};

/**
 * Observer of lock activity. Implemented by core::LockStats; the
 * kernel reports every acquire attempt and release.
 */
class LockListener
{
  public:
    virtual ~LockListener() = default;

    /**
     * @param waiters Number of waiters observed (for Release events,
     *                the waiter count at release time).
     */
    virtual void lockEvent(sim::Cycle cycle, sim::CpuId cpu,
                           uint32_t lock_id, sim::LockEvent ev,
                           uint32_t waiters) = 0;
};

} // namespace mpos::kernel

#endif // MPOS_KERNEL_LOCKS_HH
