#include "kernel/locks.hh"

namespace mpos::kernel
{

std::string
lockName(uint32_t lock_id, uint32_t num_user_locks)
{
    switch (lock_id) {
      case Memlock: return "Memlock";
      case Runqlk: return "Runqlk";
      case Ifree: return "Ifree";
      case Dfbmaplk: return "Dfbmaplk";
      case Bfreelock: return "Bfreelock";
      case Calock: return "Calock";
      case Semlock: return "Semlock";
      default: break;
    }
    if (lock_id >= ShrBase && lock_id < StreamsBase)
        return "Shr_" + std::to_string(lock_id - ShrBase);
    if (lock_id >= StreamsBase && lock_id < InoBase)
        return "Streams_" + std::to_string(lock_id - StreamsBase);
    if (lock_id >= InoBase && lock_id < numKernelLocks)
        return "Ino_" + std::to_string(lock_id - InoBase);
    if (lock_id < numKernelLocks + num_user_locks)
        return "UserLock_" + std::to_string(lock_id - numKernelLocks);
    return "Lock_" + std::to_string(lock_id);
}

} // namespace mpos::kernel
