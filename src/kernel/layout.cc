#include "kernel/layout.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::kernel
{

namespace
{

/** Round x up to a multiple of a (a power of two). */
Addr
roundUp(Addr x, Addr a)
{
    return (x + a - 1) & ~(a - 1);
}

} // namespace

const char *
kstructName(KStruct s)
{
    switch (s) {
      case KStruct::KernelStack: return "Kernel Stack";
      case KStruct::Pcb: return "PCB (User Structure)";
      case KStruct::Eframe: return "Eframe (User Structure)";
      case KStruct::URest: return "Rest of User Structure";
      case KStruct::ProcTable: return "Process Table";
      case KStruct::Pfdat: return "Pfdat";
      case KStruct::Buffer: return "Buffer";
      case KStruct::Inode: return "Inode";
      case KStruct::RunQueue: return "Run Queue";
      case KStruct::FreePgBuck: return "FreePgBuck";
      case KStruct::HiNdproc: return "Hi_ndproc";
      case KStruct::Callout: return "Callout";
      case KStruct::PageTableHeap: return "Page Tables";
      case KStruct::BufData: return "Buffer Data";
      case KStruct::KernelText: return "Kernel Text";
      case KStruct::UserPage: return "User Page";
      case KStruct::Other: return "Other";
    }
    return "?";
}

KernelLayout::KernelLayout(const LayoutConfig &config)
    : cfg(config)
{
    if (cfg.maxProcs > 256)
        util::raise(util::ErrCode::BadConfig,
                    "layout supports at most 256 process slots (got %u)",
                    cfg.maxProcs);
    buildText();
    buildData();
}

RoutineId
KernelLayout::addRoutine(const std::string &name, uint32_t bytes,
                         RoutineGroup group)
{
    if (bytes % cfg.lineBytes != 0)
        util::panic("routine %s size %u not line-aligned", name.c_str(),
                    bytes);
    Routine r;
    r.name = name;
    r.textBase = textLimit;
    r.textBytes = bytes;
    r.group = group;
    routines.push_back(r);
    byName.emplace(name, RoutineId(routines.size() - 1));
    textLimit += bytes;
    return RoutineId(routines.size() - 1);
}

void
KernelLayout::buildText()
{
    using G = RoutineGroup;
    if (cfg.optimizedTextLayout) {
        buildTextOptimized();
        return;
    }
    // The order below fixes the physical layout of kernel text. It
    // mimics an unoptimized link order: low-level assembly first, then
    // the scheduler, system-call, file-system, VM and interrupt code,
    // then the large drivers whose cache shadow overlaps everything
    // before them (the source of Figure 5's self-interference spikes).
    addRoutine("locore_except", 2048, G::LowLevelExc);
    addRoutine("utlbmiss", 128, G::LowLevelExc);
    addRoutine("locore_rfe", 1536, G::LowLevelExc);
    addRoutine("idleloop", 128, G::Idle);
    addRoutine("spinlock_acquire", 96, G::Synchronization);
    addRoutine("spinlock_release", 64, G::Synchronization);

    // Run-queue management: the "seven routines that form the core of
    // the run queue management" (Table 5).
    addRoutine("swtch", 1280, G::RunQueueMgmt);
    addRoutine("resched", 1024, G::RunQueueMgmt);
    addRoutine("setrq", 640, G::RunQueueMgmt);
    addRoutine("remrq", 640, G::RunQueueMgmt);
    addRoutine("pickproc", 1024, G::RunQueueMgmt);
    addRoutine("schedcpu", 1280, G::RunQueueMgmt);
    addRoutine("qswtch", 768, G::RunQueueMgmt);

    addRoutine("syscall_entry", 2048, G::RdWrSetup);
    addRoutine("rdwr_setup", 1536, G::RdWrSetup);
    addRoutine("read_sys", 3072, G::Syscall);
    addRoutine("write_sys", 3072, G::Syscall);
    addRoutine("sginap_sys", 1024, G::Syscall);
    addRoutine("fork_sys", 4096, G::Syscall);
    addRoutine("exec_sys", 6144, G::Syscall);
    addRoutine("exit_sys", 3072, G::Syscall);
    addRoutine("wait_sys", 1536, G::Syscall);
    addRoutine("brk_sys", 1024, G::Syscall);
    addRoutine("misc_sys", 5120, G::Syscall);

    addRoutine("namei", 5120, G::FileSystem);
    addRoutine("iget", 2048, G::FileSystem);
    addRoutine("iput", 1536, G::FileSystem);
    addRoutine("bmap", 2560, G::FileSystem);
    addRoutine("getblk", 3072, G::FileSystem);
    addRoutine("brelse", 1024, G::FileSystem);
    addRoutine("bread", 2048, G::FileSystem);
    addRoutine("bwrite", 2048, G::FileSystem);
    addRoutine("dfbmap", 1536, G::FileSystem);
    addRoutine("ino_rw", 2560, G::FileSystem);
    addRoutine("fs_misc", 16384, G::FileSystem);

    addRoutine("vfault", 3072, G::VirtualMemory);
    addRoutine("tfault", 2048, G::VirtualMemory);
    addRoutine("pagealloc", 1536, G::VirtualMemory);
    addRoutine("pagefree", 1280, G::VirtualMemory);
    addRoutine("pfdat_scan", 1024, G::BlockOp);
    addRoutine("cow_break", 1536, G::VirtualMemory);
    addRoutine("zfod", 1024, G::VirtualMemory);
    addRoutine("bcopy", 320, G::BlockOp);
    addRoutine("bclear", 192, G::BlockOp);
    addRoutine("ptesync", 768, G::VirtualMemory);

    addRoutine("clock_intr", 2560, G::Interrupt);
    addRoutine("callout_svc", 1024, G::Interrupt);
    addRoutine("disk_intr", 3072, G::Interrupt);
    addRoutine("tty_intr", 1536, G::Interrupt);
    addRoutine("stream_svc", 2048, G::Interrupt);
    addRoutine("softint", 768, G::Interrupt);
    addRoutine("cpu_intr", 512, G::Interrupt);

    addRoutine("disk_strategy", 2048, G::Driver);
    addRoutine("scsi_driver", 49152, G::Driver);
    addRoutine("tty_driver", 16384, G::Driver);
    addRoutine("streams_core", 24576, G::Driver);
    addRoutine("net_driver", 49152, G::Driver);
    addRoutine("gfx_driver", 65536, G::Driver);

    addRoutine("kern_misc", 8192, G::Other);
    addRoutine("alloc_kmem", 1024, G::Other);
    addRoutine("timeout", 512, G::Other);
    addRoutine("copyio", 512, G::Other);
}

void
KernelLayout::buildTextOptimized()
{
    using G = RoutineGroup;
    // Frequency-ordered placement (the paper's Section 4.2.1
    // optimization, applied at routine granularity): the hottest
    // ~60 KB of kernel text packs conflict-free into the bottom
    // I-cache image; never-executed driver bulk follows immediately so
    // the "warm" overflow (exec/namei/inode code) wraps onto the
    // middle of the hot image instead of onto the exception vectors.
    addRoutine("locore_except", 2048, G::LowLevelExc);
    addRoutine("utlbmiss", 128, G::LowLevelExc);
    addRoutine("locore_rfe", 1536, G::LowLevelExc);
    addRoutine("idleloop", 128, G::Idle);
    addRoutine("spinlock_acquire", 96, G::Synchronization);
    addRoutine("spinlock_release", 64, G::Synchronization);
    addRoutine("syscall_entry", 2048, G::RdWrSetup);
    addRoutine("rdwr_setup", 1536, G::RdWrSetup);
    addRoutine("read_sys", 3072, G::Syscall);
    addRoutine("write_sys", 3072, G::Syscall);
    addRoutine("bmap", 2560, G::FileSystem);
    addRoutine("getblk", 3072, G::FileSystem);
    addRoutine("brelse", 1024, G::FileSystem);
    addRoutine("bread", 2048, G::FileSystem);
    addRoutine("bwrite", 2048, G::FileSystem);
    addRoutine("vfault", 3072, G::VirtualMemory);
    addRoutine("tfault", 2048, G::VirtualMemory);
    addRoutine("pagealloc", 1536, G::VirtualMemory);
    addRoutine("pagefree", 1280, G::VirtualMemory);
    addRoutine("zfod", 1024, G::VirtualMemory);
    addRoutine("cow_break", 1536, G::VirtualMemory);
    addRoutine("bcopy", 320, G::BlockOp);
    addRoutine("bclear", 192, G::BlockOp);
    addRoutine("pfdat_scan", 1024, G::BlockOp);
    addRoutine("swtch", 1280, G::RunQueueMgmt);
    addRoutine("resched", 1024, G::RunQueueMgmt);
    addRoutine("setrq", 640, G::RunQueueMgmt);
    addRoutine("remrq", 640, G::RunQueueMgmt);
    addRoutine("pickproc", 1024, G::RunQueueMgmt);
    addRoutine("schedcpu", 1280, G::RunQueueMgmt);
    addRoutine("qswtch", 768, G::RunQueueMgmt);
    addRoutine("clock_intr", 2560, G::Interrupt);
    addRoutine("callout_svc", 1024, G::Interrupt);
    addRoutine("disk_intr", 3072, G::Interrupt);
    addRoutine("disk_strategy", 2048, G::Driver);
    addRoutine("sginap_sys", 1024, G::Syscall);
    addRoutine("fork_sys", 4096, G::Syscall);
    addRoutine("exit_sys", 3072, G::Syscall);
    addRoutine("wait_sys", 1536, G::Syscall);
    addRoutine("brk_sys", 1024, G::Syscall);
    // ---- never-executed bulk pads the image so warm code below
    //      wraps onto mid-image offsets, not the vectors ----
    addRoutine("gfx_driver", 65536, G::Driver);
    addRoutine("net_driver", 49152, G::Driver);
    // ---- warm section ----
    addRoutine("exec_sys", 6144, G::Syscall);
    addRoutine("namei", 5120, G::FileSystem);
    addRoutine("iget", 2048, G::FileSystem);
    addRoutine("iput", 1536, G::FileSystem);
    addRoutine("misc_sys", 5120, G::Syscall);
    addRoutine("dfbmap", 1536, G::FileSystem);
    addRoutine("ino_rw", 2560, G::FileSystem);
    addRoutine("tty_intr", 1536, G::Interrupt);
    addRoutine("stream_svc", 2048, G::Interrupt);
    // ---- cold section ----
    addRoutine("fs_misc", 16384, G::FileSystem);
    addRoutine("ptesync", 768, G::VirtualMemory);
    addRoutine("softint", 768, G::Interrupt);
    addRoutine("cpu_intr", 512, G::Interrupt);
    addRoutine("scsi_driver", 49152, G::Driver);
    addRoutine("tty_driver", 16384, G::Driver);
    addRoutine("streams_core", 24576, G::Driver);
    addRoutine("kern_misc", 8192, G::Other);
    addRoutine("alloc_kmem", 1024, G::Other);
    addRoutine("timeout", 512, G::Other);
    addRoutine("copyio", 512, G::Other);
}

void
KernelLayout::buildData()
{
    Addr p = roundUp(textLimit, cfg.pageBytes);

    runQueueBase = p;
    p += 24;
    hiNdprocBase = p;
    p += 8;
    p = roundUp(p, cfg.lineBytes);

    freePgBuckBase = p;
    p += 3072;

    // Process table: 256 entries of 180 bytes = 46080 bytes (Table 3),
    // independent of how many slots the kernel actually uses.
    procEntrySize = 180;
    procTableBase = p;
    p += 256 * uint64_t(procEntrySize);
    p = roundUp(p, cfg.lineBytes);

    // Pfdat: one descriptor per physical page. The paper's 210944-byte
    // array over 8192 pages gives 25.75 B per descriptor; we use 26.
    pfdatEntrySize = 26;
    pfdatEntries = cfg.memBytes / cfg.pageBytes;
    pfdatBase = p;
    p += pfdatEntries * pfdatEntrySize;
    p = roundUp(p, cfg.lineBytes);

    // Buffer headers: 68 B each; 256 buffers = 17408 B (Table 3).
    bufHeaderSize = 68;
    bufHeaderBase = p;
    p += uint64_t(cfg.numBuffers) * bufHeaderSize;
    p = roundUp(p, cfg.lineBytes);

    // In-core inodes: 268 B each; 256 = 68608 B (Table 3).
    inodeSize = 268;
    inodeBase = p;
    p += uint64_t(cfg.numInodes) * inodeSize;
    p = roundUp(p, cfg.lineBytes);

    calloutBase = p;
    p += 2048;

    // Per-process block: 4096 B kernel stack, then the user structure
    // (240 B PCB + 172 B Eframe + 3684 B rest = 4096 B).
    p = roundUp(p, cfg.pageBytes);
    perProcBase = p;
    p += uint64_t(cfg.maxProcs) * 8192;

    // Per-process page tables in the kernel heap (4 KB each).
    pageTableBase = p;
    p += uint64_t(cfg.maxProcs) * cfg.pageBytes;

    // Buffer-cache data pages.
    p = roundUp(p, cfg.pageBytes);
    bufDataBase = p;
    p += uint64_t(cfg.numBuffers) * cfg.pageBytes;

    dataLimit = roundUp(p, cfg.pageBytes);
    userPoolFirst = dataLimit / cfg.pageBytes;
    userPoolCount = cfg.memBytes / cfg.pageBytes - userPoolFirst;

    if (dataLimit >= cfg.memBytes)
        util::raise(util::ErrCode::BadConfig,
                    "kernel image does not fit in physical memory "
                    "(%llu of %llu bytes)",
                    (unsigned long long)dataLimit,
                    (unsigned long long)cfg.memBytes);
}

RoutineId
KernelLayout::routine(const std::string &name) const
{
    const auto it = byName.find(name);
    if (it == byName.end())
        util::raise(util::ErrCode::BadConfig,
                    "unknown kernel routine '%s'", name.c_str());
    return it->second;
}

const Routine &
KernelLayout::routineInfo(RoutineId id) const
{
    if (id >= routines.size())
        util::panic("routine id %u out of range", unsigned(id));
    return routines[id];
}

RoutineId
KernelLayout::routineAt(Addr addr) const
{
    if (addr >= textLimit)
        return invalidRoutine;
    // Text is laid out in address order; binary search.
    uint32_t lo = 0, hi = uint32_t(routines.size());
    while (lo + 1 < hi) {
        const uint32_t mid = (lo + hi) / 2;
        if (routines[mid].textBase <= addr)
            lo = mid;
        else
            hi = mid;
    }
    const Routine &r = routines[lo];
    return addr < r.textBase + r.textBytes ? RoutineId(lo)
                                           : invalidRoutine;
}

Addr
KernelLayout::freePgBuckAddr(uint32_t bucket) const
{
    return freePgBuckBase + (bucket % 384) * 8;
}

Addr
KernelLayout::procTableAddr(uint32_t slot) const
{
    return procTableBase + uint64_t(slot % 256) * procEntrySize;
}

Addr
KernelLayout::pfdatAddr(uint64_t page) const
{
    return pfdatBase + (page % pfdatEntries) * pfdatEntrySize;
}

Addr
KernelLayout::bufHeaderAddr(uint32_t buf) const
{
    return bufHeaderBase + uint64_t(buf % cfg.numBuffers) * bufHeaderSize;
}

Addr
KernelLayout::bufDataAddr(uint32_t buf) const
{
    return bufDataBase + uint64_t(buf % cfg.numBuffers) * cfg.pageBytes;
}

Addr
KernelLayout::inodeAddr(uint32_t ino) const
{
    return inodeBase + uint64_t(ino % cfg.numInodes) * inodeSize;
}

Addr
KernelLayout::calloutAddr(uint32_t slot) const
{
    return calloutBase + (slot % 64) * 32;
}

Addr
KernelLayout::kernelStackAddr(uint32_t slot) const
{
    return perProcBase + uint64_t(slot % cfg.maxProcs) * 8192;
}

Addr
KernelLayout::pcbAddr(uint32_t slot) const
{
    return kernelStackAddr(slot) + 4096;
}

Addr
KernelLayout::eframeAddr(uint32_t slot) const
{
    return pcbAddr(slot) + 240;
}

Addr
KernelLayout::uRestAddr(uint32_t slot) const
{
    return eframeAddr(slot) + 172;
}

Addr
KernelLayout::pageTableAddr(uint32_t slot) const
{
    return pageTableBase + uint64_t(slot % cfg.maxProcs) * cfg.pageBytes;
}

uint64_t KernelLayout::procTableBytes() const { return 256 * 180; }
uint64_t
KernelLayout::pfdatBytes() const
{
    return pfdatEntries * pfdatEntrySize;
}
uint64_t
KernelLayout::bufHeadersBytes() const
{
    return uint64_t(cfg.numBuffers) * bufHeaderSize;
}
uint64_t
KernelLayout::inodeTableBytes() const
{
    return uint64_t(cfg.numInodes) * inodeSize;
}

KStruct
KernelLayout::structAt(Addr addr) const
{
    if (addr < textLimit)
        return KStruct::KernelText;
    if (addr >= runQueueBase && addr < runQueueBase + 24)
        return KStruct::RunQueue;
    if (addr >= hiNdprocBase && addr < hiNdprocBase + 8)
        return KStruct::HiNdproc;
    if (addr >= freePgBuckBase && addr < freePgBuckBase + 3072)
        return KStruct::FreePgBuck;
    if (addr >= procTableBase && addr < procTableBase + procTableBytes())
        return KStruct::ProcTable;
    if (addr >= pfdatBase && addr < pfdatBase + pfdatBytes())
        return KStruct::Pfdat;
    if (addr >= bufHeaderBase &&
        addr < bufHeaderBase + bufHeadersBytes()) {
        return KStruct::Buffer;
    }
    if (addr >= inodeBase && addr < inodeBase + inodeTableBytes())
        return KStruct::Inode;
    if (addr >= calloutBase && addr < calloutBase + 2048)
        return KStruct::Callout;
    if (addr >= perProcBase && addr < pageTableBase) {
        const uint64_t off = (addr - perProcBase) % 8192;
        if (off < 4096)
            return KStruct::KernelStack;
        if (off < 4096 + 240)
            return KStruct::Pcb;
        if (off < 4096 + 240 + 172)
            return KStruct::Eframe;
        return KStruct::URest;
    }
    if (addr >= pageTableBase && addr < bufDataBase)
        return KStruct::PageTableHeap;
    if (addr >= bufDataBase && addr < dataLimit)
        return KStruct::BufData;
    if (addr >= dataLimit && addr < cfg.memBytes)
        return KStruct::UserPage;
    return KStruct::Other;
}

} // namespace mpos::kernel
