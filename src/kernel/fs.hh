/**
 * @file
 * File-system substrate: synthetic files, the buffer cache, a
 * single-spindle disk model, and tty sessions.
 *
 * Files are identified by small integer ids; file block b of file f
 * lives at synthetic disk block f * 4096 + b. The buffer cache is a
 * hash of 4 KB buffers with LRU replacement, matching the paper's
 * 17408-byte header array (Table 3). The disk is a FIFO single server
 * whose service time produces the workloads' idle time.
 */

#ifndef MPOS_KERNEL_FS_HH
#define MPOS_KERNEL_FS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::kernel
{

using sim::Cycle;

/** One buffer-cache slot. */
struct Buf
{
    int64_t blkno = -1;  ///< Disk block cached, -1 = free.
    bool dirty = false;
    uint64_t lastUse = 0;
};

/** LRU-hash buffer cache over numBuffers 4 KB buffers. */
class BufferCache
{
  public:
    explicit BufferCache(uint32_t num_buffers);

    /** Buffer index holding blkno, or -1. */
    int32_t lookup(int64_t blkno) const;

    /**
     * Choose a victim buffer for blkno (LRU), rebind it and return its
     * index. The caller inspects wasDirty/oldBlkno to schedule a
     * write-back.
     */
    struct GetResult
    {
        uint32_t index;
        bool wasDirty;
        int64_t oldBlkno;
    };
    GetResult getVictim(int64_t blkno);

    void touchUse(uint32_t index) { bufs[index].lastUse = ++useClock; }
    void markDirty(uint32_t index) { bufs[index].dirty = true; }
    void clean(uint32_t index) { bufs[index].dirty = false; }

    /** Number of buffers whose hash chain lookup(blkno) walks. */
    uint32_t chainLength(int64_t blkno) const;

    uint32_t size() const { return uint32_t(bufs.size()); }
    const Buf &buf(uint32_t i) const { return bufs[i]; }

    /// @name Snapshot save/restore
    /// The hash index is derived state: restore rebuilds it from the
    /// buffer array, so lookups behave identically however the map
    /// ended up bucketed before the save.
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        w.u32(uint32_t(bufs.size()));
        for (const Buf &b : bufs) {
            w.i64(b.blkno);
            w.b(b.dirty);
            w.u64(b.lastUse);
        }
        w.u64(useClock);
    }

    void
    restoreState(util::ByteReader &r)
    {
        const uint32_t n = r.u32();
        if (n != bufs.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "buffer cache size mismatch (%u vs %zu)", n,
                        bufs.size());
        map.clear();
        for (uint32_t i = 0; i < n; ++i) {
            Buf &b = bufs[i];
            b.blkno = r.i64();
            b.dirty = r.b();
            b.lastUse = r.u64();
            if (b.blkno >= 0)
                map[b.blkno] = i;
        }
        useClock = r.u64();
    }
    /// @}

  private:
    std::vector<Buf> bufs;
    std::unordered_map<int64_t, uint32_t> map;
    uint64_t useClock = 0;
};

/** FIFO single-server disk. */
class Disk
{
  public:
    Disk(Cycle access_latency, Cycle per_block)
        : latency(access_latency), perBlock(per_block)
    {
    }

    /**
     * Enqueue a transfer of blocks starting at cycle now; returns the
     * completion cycle.
     */
    Cycle
    schedule(Cycle now, uint32_t blocks)
    {
        const Cycle start = busyUntil > now ? busyUntil : now;
        busyUntil = start + latency + Cycle(blocks) * perBlock;
        ++requests;
        return busyUntil;
    }

    Cycle busyUntil = 0;
    Cycle latency;
    Cycle perBlock;
    uint64_t requests = 0;
};

/** A terminal line fed by the simulated typist. */
struct TtySession
{
    uint32_t id = 0;
    uint32_t pendingChars = 0;   ///< Typed but not yet read.
    sim::Pid reader = sim::invalidPid; ///< Blocked reader, if any.
    Cycle meanGap = 0;           ///< Mean cycles between bursts.
};

} // namespace mpos::kernel

#endif // MPOS_KERNEL_FS_HH
