#include "kernel/kernel.hh"

#include <bit>
#include <cstdio>

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::kernel
{

using sim::ExecMode;
using sim::LockEvent;
using sim::MarkerOp;
using sim::OsOp;

Kernel::Kernel(sim::Machine &machine, const KernelConfig &config)
    : m(machine), cfg(config), map(cfg.layout), rng(cfg.rngSeed),
      bufcache(cfg.layout.numBuffers),
      disk(cfg.diskLatency, cfg.diskPerBlock)
{
    const uint32_t ncpu = m.numCpus();
    if (m.sync().numLocks() < numKernelLocks + cfg.maxUserLocks)
        util::raise(util::ErrCode::BadConfig,
                    "machine sync transport has too few lock slots "
                    "(%u needed, %u present)",
                    numKernelLocks + cfg.maxUserLocks,
                    m.sync().numLocks());

    procs.reserve(cfg.layout.maxProcs);
    for (uint32_t i = 0; i < cfg.layout.maxProcs; ++i) {
        auto p = std::make_unique<Process>();
        p->slot = i;
        p->pid = Pid(i);
        procs.push_back(std::move(p));
    }

    curProc.assign(ncpu, sim::invalidPid);
    locks.assign(numKernelLocks + cfg.maxUserLocks, LockState{});

    // Application page pool (optionally capped to create pressure).
    uint64_t pool = map.userPoolPages();
    if (cfg.userPoolPages && cfg.userPoolPages < pool)
        pool = cfg.userPoolPages;
    const uint64_t first = map.firstUserPage();
    for (uint64_t i = 0; i < pool; ++i)
        freePages.push_back(first + pool - 1 - i);
    pageHeldCode.assign(cfg.layout.memBytes / cfg.layout.pageBytes, 0);
    pageRefs.assign(cfg.layout.memBytes / cfg.layout.pageBytes, 0);

    nextClockAt.assign(ncpu, 0);
    for (uint32_t c = 0; c < ncpu; ++c)
        nextClockAt[c] = m.config().clockTickCycles + c * 997;

    m.setExecutor(this);
    fp = m.faults();
    if (sim::Watchdog *w = m.watchdog()) {
        // The sim layer has no lock vocabulary; the kernel supplies
        // the lock-table half of the watchdog's diagnostic dump.
        w->setDiagnosticProvider([this] { return describeSyncState(); });
    }

    // Observability hooks: the kernel owns the routine symbol table
    // and reports routine boundaries and lock events. All null-gated.
    mx = m.metrics();
    pf = m.profiler();
    if (m.tracer() || pf) {
        std::vector<std::string> names(map.numRoutines());
        for (uint32_t r = 0; r < map.numRoutines(); ++r)
            names[r] = map.routineInfo(RoutineId(r)).name;
        if (sim::trace::Tracer *t = m.tracer())
            t->setRoutineNames(names);
        if (pf)
            pf->setRoutineNames(std::move(names));
    }

    for (uint32_t c = 0; c < ncpu; ++c)
        enterIdle(c);
}

std::string
Kernel::describeSyncState() const
{
    char buf[224];
    std::string out = "  locks:\n";
    for (uint32_t id = 0; id < locks.size(); ++id) {
        const LockState &l = locks[id];
        if (l.heldByCpu < 0 && !l.spinMask && !l.napWaiters &&
            l.grantedTo < 0 && l.waitQueue.empty() && !l.rcuReaders)
            continue;
        // Kernel locks are held by CPUs, user locks by processes.
        std::snprintf(buf, sizeof buf,
                      "    %s: held_by=%s%d spinners=0x%llx nap=%u\n",
                      lockName(id, nUserLocks).c_str(),
                      id < numKernelLocks ? "cpu" : "pid",
                      int(l.heldByCpu),
                      (unsigned long long)l.spinMask, l.napWaiters);
        out += buf;
        // Policy-layer state (all zero under the default primitive).
        if (l.nextTicket || l.nowServing || l.grantedTo >= 0 ||
            !l.waitQueue.empty() || l.rcuReaders) {
            std::snprintf(buf, sizeof buf,
                          "      ticket=%u/%u granted_to=%d queue=%u "
                          "rcu_readers=%u\n",
                          l.nowServing, l.nextTicket, l.grantedTo,
                          uint32_t(l.waitQueue.size()), l.rcuReaders);
            out += buf;
        }
    }
    for (uint32_t c = 0; c < m.numCpus(); ++c) {
        const Pid pid = curProc[c];
        std::snprintf(buf, sizeof buf, "    cpu%u: pid=%d%s%s\n", c,
                      int(pid), pid != sim::invalidPid ? " name=" : "",
                      pid != sim::invalidPid
                          ? procs[uint32_t(pid)]->name.c_str()
                          : "");
        out += buf;
    }
    return out;
}

uint32_t
Kernel::registerImage(const std::string &name, uint64_t text_bytes)
{
    Image img;
    img.id = uint32_t(images.size());
    img.name = name;
    img.textPages = uint32_t((text_bytes + cfg.layout.pageBytes - 1) /
                             cfg.layout.pageBytes);
    images.push_back(img);
    return img.id;
}

Pid
Kernel::spawn(std::unique_ptr<AppBehavior> behavior, uint32_t image_id,
              const std::string &name)
{
    if (fp && fp->fireSlotAlloc())
        util::raise(util::ErrCode::ResourceExhausted,
                    "fault injection: forced process-slot exhaustion "
                    "at spawn('%s')", name.c_str());
    for (auto &pp : procs) {
        if (pp->state != ProcState::Free)
            continue;
        Process &p = *pp;
        p.resetForReuse();
        p.name = name;
        p.imageId = image_id;
        p.behavior = std::move(behavior);
        p.state = ProcState::Ready;
        p.ticksLeft = cfg.quantumTicks;
        p.ioBufVaddr = VaMap::dataBase;
        runQueue.push_back(p.pid);
        rqSkips.push_back(0);
        return p.pid;
    }
    util::raise(util::ErrCode::ResourceExhausted,
                "no free process slots for spawn('%s') (maxProcs %u)",
                name.c_str(), uint32_t(procs.size()));
}

Addr
Kernel::shmAlloc(uint64_t bytes)
{
    if (fp && fp->fireShmAlloc())
        util::raise(util::ErrCode::ResourceExhausted,
                    "fault injection: forced shmAlloc exhaustion "
                    "(%llu bytes requested)",
                    (unsigned long long)bytes);
    const Addr base = sharedBrk;
    const uint64_t pages =
        (bytes + cfg.layout.pageBytes - 1) / cfg.layout.pageBytes;
    for (uint64_t i = 0; i < pages; ++i) {
        if (freePages.empty())
            util::raise(util::ErrCode::ResourceExhausted,
                        "out of physical memory in shmAlloc "
                        "(%llu bytes requested)",
                        (unsigned long long)bytes);
        const Addr vpage = sharedBrk / cfg.layout.pageBytes;
        sharedMap[vpage] = freePages.back();
        freePages.pop_back();
        sharedBrk += cfg.layout.pageBytes;
    }
    return base;
}

uint32_t
Kernel::allocUserLock()
{
    if (fp && fp->fireUserLockAlloc())
        util::raise(util::ErrCode::ResourceExhausted,
                    "fault injection: forced user-lock-slot "
                    "exhaustion");
    if (nUserLocks >= cfg.maxUserLocks)
        util::raise(util::ErrCode::ResourceExhausted,
                    "out of user lock slots (max %u)",
                    cfg.maxUserLocks);
    return numKernelLocks + nUserLocks++;
}

uint32_t
Kernel::registerTty(Cycle mean_gap_cycles)
{
    TtySession s;
    s.id = uint32_t(ttys.size());
    s.meanGap = mean_gap_cycles;
    ttys.push_back(s);
    events.push({m.now() + mean_gap_cycles + rng.below(mean_gap_cycles),
                 Event::Kind::TtyInput, s.id});
    return s.id;
}

// ---------------------------------------------------------------------
// Executor interface
// ---------------------------------------------------------------------

namespace
{

/**
 * Largest cut <= target at which the kept prefix holds no user locks:
 * injected truncation must perturb behavior without breaking the
 * acquire/release pairing invariants the kernel panics on. Falls back
 * to the full length when no safe cut exists.
 */
size_t
safeTruncatePoint(const std::vector<ScriptItem> &s, size_t target)
{
    size_t cut = 0;
    int held = 0;
    for (size_t i = 0; i < s.size() && i < target; ++i) {
        const ScriptItem &it = s[i];
        if (it.kind == sim::ItemKind::Marker) {
            if (it.marker == MarkerOp::UserLockAcquire)
                ++held;
            else if (it.marker == MarkerOp::UserLockRelease)
                --held;
        }
        if (held == 0)
            cut = i + 1;
    }
    return cut ? cut : s.size();
}

} // namespace

void
Kernel::refill(CpuId cpu)
{
    sim::Cpu &c = m.cpu(cpu);
    const Pid pid = curProc[cpu];

    if (pid != sim::invalidPid) {
        Process &p = *procs[uint32_t(pid)];
        if (!p.savedScript.empty()) {
            // Resume exactly where the process was preempted/blocked.
            c.script = std::move(p.savedScript);
            p.savedScript.clear();
            return;
        }
        chunkBuf.clear(); // reused across refills to avoid reallocating
        UserScript us(chunkBuf);
        p.behavior->chunk(p, us);
        ++p.userChunks;
        if (chunkBuf.empty())
            util::panic("behavior of %s produced an empty chunk",
                        p.name.c_str());
        if (fp) {
            // Injected workload truncation: only user chunks are cut
            // (kernel paths carry lock/OS markers whose balance the
            // machine depends on), and only at lock-balanced points.
            const auto keep = size_t(fp->truncatedLen(chunkBuf.size()));
            if (keep < chunkBuf.size())
                chunkBuf.resize(safeTruncatePoint(chunkBuf, keep));
        }
        c.pushSeq(chunkBuf);
        return;
    }

    // Nothing to run: idle loop.
    if (c.ctx.mode != ExecMode::Idle)
        enterIdle(cpu);
    if (!runQueue.empty()) {
        // Dispatch from the idle loop.
        Script s;
        emitLock(s, Runqlk);
        emitTextByName(s, "pickproc");
        emitTouch(s, map.runQueueAddr(), 24, false);
        emitTouch(s, map.hiNdprocAddr(), 8, false);
        emitUnlock(s, Runqlk);
        s.push_back(ScriptItem::mark(MarkerOp::Resched));
        c.pushSeq(s);
        return;
    }
    // The idle chunk is the same every time (the layout is fixed after
    // construction), so build it once and replay it; an idle machine
    // otherwise spends most of its kernel time re-emitting this script.
    if (idleChunk.empty()) {
        Script &s = idleChunk;
        const RoutineId idle = map.routine("idleloop");
        const Routine &r = map.routineInfo(idle);
        s.push_back(ScriptItem::mark(MarkerOp::RoutineEnter, idle));
        const uint32_t lines = r.textBytes / cfg.layout.lineBytes;
        for (uint32_t rep = 0; rep < 4; ++rep) {
            for (uint32_t l = 0; l < lines; ++l)
                s.push_back(ScriptItem::ifetch(r.textBase +
                                               l * cfg.layout.lineBytes));
            // The idle loop polls the run queue header without the lock.
            s.push_back(ScriptItem::load(map.runQueueAddr()));
        }
        s.push_back(ScriptItem::mark(MarkerOp::IdlePoll));
    }
    c.pushSeq(idleChunk);
}

void
Kernel::marker(CpuId cpu, const ScriptItem &item)
{
    switch (item.marker) {
      case MarkerOp::OsEnter:
        onOsEnter(cpu, OsOp(item.addr));
        return;
      case MarkerOp::OsExit:
        onOsExit(cpu);
        return;
      case MarkerOp::RoutineEnter:
        m.cpu(cpu).ctx.routine = uint16_t(item.addr);
        if (pf)
            pf->routineSwitch(m.now(), cpu, uint16_t(item.addr));
        return;
      case MarkerOp::RoutineExit:
        m.cpu(cpu).ctx.routine = invalidRoutine;
        if (pf)
            pf->routineSwitch(m.now(), cpu, invalidRoutine);
        return;
      case MarkerOp::LockAcquire:
        onLockAcquire(cpu, uint32_t(item.addr), item.arg2);
        return;
      case MarkerOp::LockRelease:
        onLockRelease(cpu, uint32_t(item.addr));
        return;
      case MarkerOp::LockAcquireShared:
        onLockAcquireShared(cpu, uint32_t(item.addr));
        return;
      case MarkerOp::LockReleaseShared:
        onLockReleaseShared(cpu, uint32_t(item.addr));
        return;
      case MarkerOp::UserLockAcquire:
        onUserLockAcquire(cpu, uint32_t(item.addr),
                          uint32_t(item.arg2));
        return;
      case MarkerOp::UserLockRelease:
        onUserLockRelease(cpu, uint32_t(item.addr));
        return;
      case MarkerOp::Syscall:
        onSyscall(cpu, Sys(item.addr), item.arg2);
        return;
      case MarkerOp::SleepDisk:
        onSleepDisk(cpu, item.addr);
        return;
      case MarkerOp::Resched:
        onResched(cpu);
        return;
      case MarkerOp::IdlePoll:
        onIdlePoll(cpu);
        return;
      case MarkerOp::InvalICache:
        m.memory().flushICachesForPage(item.addr);
        return;
      case MarkerOp::PathDone:
        return;
      case MarkerOp::Custom:
        if (item.addr == customBlockWait)
            onBlockWait(cpu);
        else if (item.addr == customBlockTty)
            onBlockTty(cpu, uint32_t(item.arg2));
        else if (item.addr == customFutexWait)
            onFutexWait(cpu, uint32_t(item.arg2));
        else
            util::panic("unknown custom marker %llu",
                        static_cast<unsigned long long>(item.addr));
        return;
    }
    util::panic("unhandled marker");
}

void
Kernel::fault(CpuId cpu, Addr vaddr, bool is_store, bool is_prot)
{
    const Pid pid = curProc[cpu];
    if (pid == sim::invalidPid)
        util::panic("virtual fault with no current process on cpu %u",
                    cpu);
    Process &p = *procs[uint32_t(pid)];
    const Addr vpage = vaddr / cfg.layout.pageBytes;
    Pte *pte = p.findPte(vpage);

    const bool needs_vm =
        !pte || !pte->present || (is_store && (pte->cow ||
                                               !pte->writable));
    if (!needs_vm) {
        // Pure TLB refill: the UTLB fast path.
        ++nUtlbFaults;
        m.cpu(cpu).tlb.insert(pid, vpage, pte->ppage,
                              pte->writable && !pte->cow);
        Script s = pathUtlbFault(p, vpage, *pte);
        m.cpu(cpu).pushFrontSeq(s);
        return;
    }
    Script s = pathVmFault(cpu, p, vaddr, is_store, is_prot);
    m.cpu(cpu).pushFrontSeq(s);
}

bool
Kernel::deliverGlobalEvent(CpuId cpu, Cycle now)
{
    if (events.empty() || events.top().when > now)
        return false;
    const Event ev = events.top();
    events.pop();
    switch (ev.kind) {
      case Event::Kind::DiskDone: {
        Script s = pathDiskInterrupt(cpu, Pid(ev.payload));
        m.cpu(cpu).pushFrontSeq(s);
        return true;
      }
      case Event::Kind::TtyInput: {
        const uint32_t sid = uint32_t(ev.payload);
        TtySession &t = ttys[sid];
        // The typist sends a burst of 1-15 characters (paper Sec. 3).
        t.pendingChars += uint32_t(rng.range(1, 15));
        events.push({now + t.meanGap / 2 + rng.below(t.meanGap),
                     Event::Kind::TtyInput, sid});
        Script s = pathTtyInterrupt(cpu, sid);
        m.cpu(cpu).pushFrontSeq(s);
        return true;
      }
    }
    return false;
}

void
Kernel::pollEvents(CpuId cpu, Cycle now)
{
    if (now >= nextClockAt[cpu]) {
        nextClockAt[cpu] += m.config().clockTickCycles;
        Script s = pathClockInterrupt(cpu);
        m.cpu(cpu).pushFrontSeq(s);
        return;
    }
    deliverGlobalEvent(cpu, now);
}

sim::Cycle
Kernel::nextEventAt(CpuId cpu) const
{
    // pollEvents(cpu, t) is a complete no-op for every t below both
    // the CPU's next clock tick and the earliest queued global event:
    // it neither pops, pushes, nor touches any CPU. The parallel core
    // caps its speculation windows here so skipping the poll inside a
    // window is provably equivalent to making it.
    const sim::Cycle clock = nextClockAt[cpu];
    if (events.empty())
        return clock;
    return std::min(clock, events.top().when);
}

// ---------------------------------------------------------------------
// Marker handlers
// ---------------------------------------------------------------------

void
Kernel::onOsEnter(CpuId cpu, OsOp op)
{
    sim::Cpu &c = m.cpu(cpu);
    ++opCounts.count[unsigned(op)];
    if (c.ctx.mode == ExecMode::Idle)
        m.monitor().osExit(m.now(), cpu, OsOp::IdleLoop);
    c.ctx.mode = ExecMode::Kernel;
    c.ctx.op = op;
    m.monitor().osEnter(m.now(), cpu, op);
}

void
Kernel::onOsExit(CpuId cpu)
{
    sim::Cpu &c = m.cpu(cpu);
    m.monitor().osExit(m.now(), cpu, c.ctx.op);
    if (curProc[cpu] != sim::invalidPid) {
        c.ctx.mode = ExecMode::User;
        c.ctx.op = OsOp::None;
        c.ctx.routine = invalidRoutine;
        c.ctx.pid = curProc[cpu];
    } else {
        enterIdle(cpu);
    }
}

void
Kernel::wonKernelLock(CpuId cpu, uint32_t lock_id, uint32_t waiters,
                      LockEvent transport_ev)
{
    LockState &l = locks[lock_id];
    const Cycle now = m.now();
    l.heldByCpu = int32_t(cpu);
    l.spinMask &= ~(uint64_t(1) << cpu);
    // Holding a spinlock raises the interrupt level (spl): defer
    // external interrupts until release, as IRIX does.
    ++m.cpu(cpu).intrDisable;
    const Cycle cost = m.sync().access(cpu, lock_id, transport_ev);
    m.charge(cpu, cost, true);
    // Injected hold-time perturbation: stretch the critical
    // section of the targeted locks.
    if (fp) {
        if (const Cycle extra = fp->holdExtra(lock_id))
            m.charge(cpu, extra, true);
    }
    // Statistics always see the logical event, whatever the primitive.
    if (lockListener)
        lockListener->lockEvent(now, cpu, lock_id,
                                LockEvent::AcquireSuccess, waiters);
    if (mx)
        mx->lockEvent(now, cpu, lock_id, LockEvent::AcquireSuccess);
}

void
Kernel::onLockAcquire(CpuId cpu, uint32_t lock_id, uint64_t state)
{
    LockState &l = locks[lock_id];
    const Cycle now = m.now();
    const uint32_t waiters =
        uint32_t(std::popcount(l.spinMask)) + l.napWaiters;
    if (l.heldByCpu == int32_t(cpu))
        util::panic("cpu %u re-acquiring kernel lock %u", cpu, lock_id);
    sim::Cpu &c = m.cpu(cpu);

    // The retry marker a spinning CPU executes after spinGap cycles.
    const auto spinRetry = [&](LockEvent ev, uint64_t next_state) {
        l.spinMask |= uint64_t(1) << cpu;
        const Cycle cost = m.sync().access(cpu, lock_id, ev);
        m.charge(cpu, cost, true);
        if (lockListener)
            lockListener->lockEvent(now, cpu, lock_id,
                                    LockEvent::AcquireFail, waiters);
        if (mx)
            mx->lockEvent(now, cpu, lock_id, LockEvent::AcquireFail);
        c.pushFront(ScriptItem::mark(MarkerOp::LockAcquire, lock_id,
                                     next_state));
        c.pushFront(ScriptItem::think(cfg.spinGap));
    };

    switch (m.config().lockPolicy) {
      case sim::LockPolicy::Ticket: {
        // state carries ticket+1 once one was taken (0 = no ticket).
        uint32_t ticket;
        LockEvent ev;
        if (state == 0) {
            ticket = l.nextTicket++;
            ev = LockEvent::TicketTake; // the fetch-and-add
        } else {
            ticket = uint32_t(state - 1);
            ev = LockEvent::TicketPoll; // re-read of now-serving
        }
        if (ticket == l.nowServing && l.heldByCpu < 0) {
            wonKernelLock(cpu, lock_id, waiters, ev);
            return;
        }
        spinRetry(ev, uint64_t(ticket) + 1);
        return;
      }
      case sim::LockPolicy::Mcs: {
        if (state == 0) {
            if (l.heldByCpu < 0 && l.grantedTo < 0 &&
                l.waitQueue.empty()) {
                // Tail swap found the queue empty: uncontended.
                wonKernelLock(cpu, lock_id, waiters,
                              LockEvent::McsSwap);
                return;
            }
            // Swap found a predecessor: link in and spin on our node.
            l.waitQueue.push_back(cpu);
            spinRetry(LockEvent::McsEnqueue, 1);
            return;
        }
        if (l.grantedTo == int32_t(cpu)) {
            // The predecessor's hand-off write flipped our node flag;
            // this poll refetches the invalidated node and wins.
            l.grantedTo = -1;
            wonKernelLock(cpu, lock_id, waiters,
                          LockEvent::McsLocalPoll);
            return;
        }
        spinRetry(LockEvent::McsLocalPoll, 1);
        return;
      }
      case sim::LockPolicy::TestAndSet:
      case sim::LockPolicy::Futex: // kernel locks cannot sleep: TAS
      case sim::LockPolicy::Rcu:   // writers take the plain spinlock
      default:
        if (l.heldByCpu < 0) {
            wonKernelLock(cpu, lock_id, waiters,
                          LockEvent::AcquireSuccess);
            return;
        }
        spinRetry(LockEvent::AcquireFail, 0);
        return;
    }
}

void
Kernel::onLockRelease(CpuId cpu, uint32_t lock_id)
{
    LockState &l = locks[lock_id];
    if (l.heldByCpu != int32_t(cpu))
        util::panic("cpu %u releasing kernel lock %u it does not hold",
                    cpu, lock_id);
    l.heldByCpu = -1;
    if (m.cpu(cpu).intrDisable == 0)
        util::panic("interrupt level underflow on lock release");
    --m.cpu(cpu).intrDisable;
    const uint32_t waiters =
        uint32_t(std::popcount(l.spinMask)) + l.napWaiters;

    Cycle cost = 0;
    switch (m.config().lockPolicy) {
      case sim::LockPolicy::Ticket:
        ++l.nowServing; // the write every poller's next read observes
        cost = m.sync().access(cpu, lock_id, LockEvent::TicketRelease);
        break;
      case sim::LockPolicy::Mcs:
        if (l.waitQueue.empty()) {
            // Tail compare-and-swap back to empty.
            cost = m.sync().access(cpu, lock_id,
                                   LockEvent::McsReleaseFree);
        } else {
            // Write exactly the successor's node flag; only its spin
            // copy is invalidated, everyone further back spins on.
            const uint32_t succ = l.waitQueue.front();
            l.waitQueue.erase(l.waitQueue.begin());
            l.grantedTo = int32_t(succ);
            cost = m.sync().access(cpu, lock_id, LockEvent::McsHandoff,
                                   int(succ));
        }
        break;
      case sim::LockPolicy::Rcu:
        cost = m.sync().access(cpu, lock_id, LockEvent::Release);
        if (rcuManaged(lock_id)) {
            // The writer published a new version: wait out a grace
            // period so pre-existing readers drain (one quiescence
            // round-trip per other CPU).
            cost += m.sync().access(cpu, lock_id, LockEvent::RcuSync);
        }
        break;
      default:
        cost = m.sync().access(cpu, lock_id, LockEvent::Release);
        break;
    }
    m.charge(cpu, cost, true);
    if (lockListener)
        lockListener->lockEvent(m.now(), cpu, lock_id,
                                LockEvent::Release, waiters);
    if (mx)
        mx->lockEvent(m.now(), cpu, lock_id, LockEvent::Release);
}

void
Kernel::onLockAcquireShared(CpuId cpu, uint32_t lock_id)
{
    if (m.config().lockPolicy == sim::LockPolicy::Rcu &&
        rcuManaged(lock_id)) {
        // RCU read side: no shared line is written, no bus operation
        // is made, nothing can spin. Readers are only counted.
        LockState &l = locks[lock_id];
        ++l.rcuReaders;
        m.sync().access(cpu, lock_id, LockEvent::RcuReadEnter);
        if (lockListener)
            lockListener->lockEvent(m.now(), cpu, lock_id,
                                    LockEvent::AcquireSuccess, 0);
        if (mx)
            mx->lockEvent(m.now(), cpu, lock_id,
                          LockEvent::AcquireSuccess);
        return;
    }
    onLockAcquire(cpu, lock_id, 0);
}

void
Kernel::onLockReleaseShared(CpuId cpu, uint32_t lock_id)
{
    if (m.config().lockPolicy == sim::LockPolicy::Rcu &&
        rcuManaged(lock_id)) {
        LockState &l = locks[lock_id];
        if (l.rcuReaders == 0)
            util::panic("cpu %u leaving rcu read section of lock %u "
                        "with no readers", cpu, lock_id);
        --l.rcuReaders;
        m.sync().access(cpu, lock_id, LockEvent::RcuReadExit);
        if (lockListener)
            lockListener->lockEvent(m.now(), cpu, lock_id,
                                    LockEvent::Release, 0);
        if (mx)
            mx->lockEvent(m.now(), cpu, lock_id, LockEvent::Release);
        return;
    }
    onLockRelease(cpu, lock_id);
}

void
Kernel::onFutexWait(CpuId cpu, uint32_t lock_id)
{
    LockState &l = locks[lock_id];
    const Pid pid = curProc[cpu];
    // The kernel re-checks the lock word before sleeping: a release
    // between the user-level CAS and this point must not be lost.
    if (l.heldByCpu < 0 &&
        (l.grantedTo < 0 || l.grantedTo == int32_t(pid)))
        return; // fall through to the epilogue; the retry marker wins
    Process &p = *procs[uint32_t(pid)];
    ++l.napWaiters; // blocked waiters ride the nap count (Table 12)
    l.waitQueue.push_back(uint32_t(pid));
    p.state = ProcState::Blocked;
    sim::Cpu &c = m.cpu(cpu);
    p.savedScript = c.drainScript();
    Script s;
    emitReschedSeq(s);
    c.pushFrontSeq(s);
}

void
Kernel::onUserLockAcquire(CpuId cpu, uint32_t lock_id, uint32_t spins)
{
    LockState &l = locks[lock_id];
    const Pid pid = curProc[cpu];
    const Cycle now = m.now();
    const uint32_t waiters =
        uint32_t(std::popcount(l.spinMask)) + l.napWaiters;
    const bool futex =
        m.config().lockPolicy == sim::LockPolicy::Futex;

    // A futex release may have granted the lock directly to a woken
    // waiter; nobody else may barge in ahead of it.
    const bool free = l.heldByCpu < 0 &&
        (!futex || l.grantedTo < 0 || l.grantedTo == int32_t(pid));
    if (free) {
        l.heldByCpu = int32_t(pid); // user locks are held by processes
        l.spinMask &= ~(uint64_t(1) << cpu);
        if (futex && l.grantedTo == int32_t(pid)) {
            l.grantedTo = -1;
            --l.napWaiters; // the woken waiter stops waiting here
        } else if (!futex && l.napWaiters > 0 && spins == 0) {
            --l.napWaiters;
        }
        const Cycle cost = m.sync().access(
            cpu, lock_id,
            futex ? LockEvent::FutexAcquire : LockEvent::AcquireSuccess);
        m.charge(cpu, cost, true);
        if (fp) {
            if (const Cycle extra = fp->holdExtra(lock_id))
                m.charge(cpu, extra, true);
        }
        if (lockListener)
            lockListener->lockEvent(now, cpu, lock_id,
                                    LockEvent::AcquireSuccess, waiters);
        if (mx)
            mx->lockEvent(now, cpu, lock_id, LockEvent::AcquireSuccess);
        return;
    }

    const Cycle cost = m.sync().access(
        cpu, lock_id,
        futex ? LockEvent::FutexWait : LockEvent::AcquireFail);
    m.charge(cpu, cost, true);
    if (lockListener)
        lockListener->lockEvent(now, cpu, lock_id,
                                LockEvent::AcquireFail, waiters);
    if (mx)
        mx->lockEvent(now, cpu, lock_id, LockEvent::AcquireFail);

    if (futex) {
        // One losing CAS, then a FUTEX_WAIT-style syscall: the waiter
        // blocks in the kernel, so a held futex generates no
        // steady-state bus traffic at all. The retry marker goes back
        // first: the continuation saved by the wait re-attempts the
        // acquire when the wake reschedules this process.
        sim::Cpu &cf = m.cpu(cpu);
        cf.pushFront(ScriptItem::mark(MarkerOp::UserLockAcquire,
                                      lock_id, 0));
        Process &pf = *procs[uint32_t(pid)];
        Script sf = pathFutexWait(pf, lock_id);
        cf.pushFrontSeq(sf);
        return;
    }

    sim::Cpu &c = m.cpu(cpu);
    if (spins + 1 < cfg.userLockSpins) {
        l.spinMask |= uint64_t(1) << cpu;
        c.pushFront(ScriptItem::mark(MarkerOp::UserLockAcquire, lock_id,
                                     spins + 1));
        c.pushFront(ScriptItem::think(cfg.spinGap));
        return;
    }

    // After 20 unsuccessful spins the library calls sginap (paper
    // Sec. 4.1): reschedule, then retry from zero.
    l.spinMask &= ~(uint64_t(1) << cpu);
    ++l.napWaiters;
    c.pushFront(ScriptItem::mark(MarkerOp::UserLockAcquire, lock_id, 0));
    Process &p = *procs[uint32_t(pid)];
    Script s = pathSyscall(cpu, p, Sys::Sginap, 0);
    c.pushFrontSeq(s);
}

void
Kernel::onUserLockRelease(CpuId cpu, uint32_t lock_id)
{
    LockState &l = locks[lock_id];
    const Pid pid = curProc[cpu];
    if (l.heldByCpu != int32_t(pid))
        util::panic("pid %d releasing user lock %u it does not hold",
                    int(pid), lock_id);
    l.heldByCpu = -1;
    const uint32_t waiters =
        uint32_t(std::popcount(l.spinMask)) + l.napWaiters;

    LockEvent ev = LockEvent::Release;
    if (m.config().lockPolicy == sim::LockPolicy::Futex &&
        !l.waitQueue.empty()) {
        // Wake-one: grant the lock to the FIFO head and make it
        // runnable; napWaiters drops when the grantee takes the lock.
        const Pid w = Pid(l.waitQueue.front());
        l.waitQueue.erase(l.waitQueue.begin());
        l.grantedTo = int32_t(w);
        makeReady(w);
        ev = LockEvent::FutexWake;
    }
    const Cycle cost = m.sync().access(cpu, lock_id, ev);
    m.charge(cpu, cost, true);
    if (lockListener)
        lockListener->lockEvent(m.now(), cpu, lock_id,
                                LockEvent::Release, waiters);
    if (mx)
        mx->lockEvent(m.now(), cpu, lock_id, LockEvent::Release);
}

void
Kernel::onSyscall(CpuId cpu, Sys n, uint64_t payload)
{
    const Pid pid = curProc[cpu];
    if (pid == sim::invalidPid)
        util::panic("syscall with no current process");
    Process &p = *procs[uint32_t(pid)];
    Script s = pathSyscall(cpu, p, n, payload);
    m.cpu(cpu).pushFrontSeq(s);
}

void
Kernel::onSleepDisk(CpuId cpu, Cycle wake_at)
{
    (void)wake_at; // completion event was scheduled at build time
    const Pid pid = curProc[cpu];
    Process &p = *procs[uint32_t(pid)];
    p.cpuShare = p.cpuShare / 2 + (m.now() - p.runStart);
    p.totalRan += m.now() - p.runStart;
    p.runStart = m.now();
    if (p.wakePending > 0) {
        --p.wakePending;
        return; // I/O already finished; fall through to the post-work
    }
    p.state = ProcState::Blocked;
    sim::Cpu &c = m.cpu(cpu);
    p.savedScript = c.drainScript();
    Script s;
    emitReschedSeq(s);
    c.pushFrontSeq(s);
}

void
Kernel::onBlockWait(CpuId cpu)
{
    const Pid pid = curProc[cpu];
    Process &p = *procs[uint32_t(pid)];
    if (p.pendingChildExits > 0) {
        --p.pendingChildExits;
        return;
    }
    p.waitingForChild = true;
    p.state = ProcState::Blocked;
    sim::Cpu &c = m.cpu(cpu);
    p.savedScript = c.drainScript();
    Script s;
    emitReschedSeq(s);
    c.pushFrontSeq(s);
}

void
Kernel::onBlockTty(CpuId cpu, uint32_t session)
{
    const Pid pid = curProc[cpu];
    Process &p = *procs[uint32_t(pid)];
    TtySession &t = ttys[session];
    if (t.pendingChars > 0) {
        t.pendingChars = 0; // consume the whole burst
        return;
    }
    t.reader = pid;
    p.blockedOnTty = int32_t(session);
    p.state = ProcState::Blocked;
    sim::Cpu &c = m.cpu(cpu);
    p.savedScript = c.drainScript();
    Script s;
    emitReschedSeq(s);
    c.pushFrontSeq(s);
}

void
Kernel::onIdlePoll(CpuId cpu)
{
    if (runQueue.empty())
        return; // refill() will push another idle chunk
    sim::Cpu &c = m.cpu(cpu);
    Script s;
    emitLock(s, Runqlk);
    emitTextByName(s, "pickproc");
    emitTouch(s, map.runQueueAddr(), 24, false);
    emitUnlock(s, Runqlk);
    s.push_back(ScriptItem::mark(MarkerOp::Resched));
    c.pushSeq(s);
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

void
Kernel::enterIdle(CpuId cpu)
{
    sim::Cpu &c = m.cpu(cpu);
    c.ctx.mode = ExecMode::Idle;
    c.ctx.op = OsOp::IdleLoop;
    c.ctx.routine = invalidRoutine;
    c.ctx.pid = sim::invalidPid;
    m.monitor().osEnter(m.now(), cpu, OsOp::IdleLoop);
}

void
Kernel::enqueueReady(Pid pid)
{
    // SysV-style priority placement: interactive (low recent CPU)
    // processes queue ahead of CPU hogs; FIFO within each class.
    Process &p = *procs[uint32_t(pid)];
    if (p.cpuShare < cfg.interactiveShare) {
        for (uint32_t i = 0; i < runQueue.size(); ++i) {
            if (procs[uint32_t(runQueue[i])]->cpuShare >=
                cfg.interactiveShare) {
                runQueue.insert(runQueue.begin() + i, pid);
                rqSkips.insert(rqSkips.begin() + i, 0);
                return;
            }
        }
    }
    runQueue.push_back(pid);
    rqSkips.push_back(0);
}

void
Kernel::makeReady(Pid pid)
{
    Process &p = *procs[uint32_t(pid)];
    if (p.state == ProcState::Ready || p.state == ProcState::Running)
        return;
    p.state = ProcState::Ready;
    enqueueReady(pid);
}

Pid
Kernel::pickNext(CpuId cpu)
{
    if (runQueue.empty())
        return sim::invalidPid;

    if (!cfg.affinitySched) {
        // The queue is priority-ordered (enqueueReady): interactive
        // processes dispatch first. CPU hogs are not starved because
        // interactive processes, by construction, yield or block
        // almost immediately and cannot hold every CPU for long.
        ++pickCount;
        const Pid pid = runQueue.front();
        runQueue.pop_front();
        rqSkips.erase(rqSkips.begin());
        return pid;
    }

    // Cache-affinity scheduling (Squillante/Lazowska style): prefer a
    // process that last ran here, but age skipped processes so nothing
    // starves.
    if (rqSkips.front() >= 3) {
        const Pid pid = runQueue.front();
        runQueue.pop_front();
        rqSkips.erase(rqSkips.begin());
        return pid;
    }
    const uint32_t depth =
        std::min<uint32_t>(cfg.affinityScanDepth,
                           uint32_t(runQueue.size()));
    for (uint32_t i = 0; i < depth; ++i) {
        Process &p = *procs[uint32_t(runQueue[i])];
        if (!p.everRan || p.lastCpu == cpu) {
            const Pid pid = runQueue[i];
            runQueue.erase(runQueue.begin() + i);
            rqSkips.erase(rqSkips.begin() + i);
            for (uint32_t j = 0; j < i && j < rqSkips.size(); ++j)
                ++rqSkips[j];
            return pid;
        }
    }
    for (uint32_t j = 0; j < depth; ++j)
        ++rqSkips[j];
    const Pid pid = runQueue.front();
    runQueue.pop_front();
    rqSkips.erase(rqSkips.begin());
    return pid;
}

void
Kernel::onResched(CpuId cpu)
{
    sim::Cpu &c = m.cpu(cpu);
    const Pid oldPid = curProc[cpu];

    if (oldPid != sim::invalidPid) {
        Process &old = *procs[uint32_t(oldPid)];
        auto rest = c.drainScript();
        if (old.state == ProcState::Running) {
            for (uint32_t l = numKernelLocks; l < locks.size(); ++l)
                if (locks[l].heldByCpu == int32_t(oldPid))
                    ++nStrands;
            old.state = ProcState::Ready;
            old.savedScript = std::move(rest);
            old.lastCpu = cpu;
            old.cpuShare = old.cpuShare / 2 +
                           (m.now() - old.runStart);
            old.totalRan += m.now() - old.runStart;
            enqueueReady(oldPid);
        } else if (old.state == ProcState::Zombie) {
            // The zombie is leaving its CPU for good: recycle the
            // slot (the parent already collected the exit status).
            for (uint32_t c = 0; c < m.numCpus(); ++c)
                m.cpu(c).tlb.invalidatePid(oldPid);
            old.resetForReuse();
        }
        // Blocked processes saved their continuation at the sleep
        // marker.
    } else {
        c.drainScript();
    }

    const Pid next = pickNext(cpu);
    Script s;
    if (next == sim::invalidPid) {
        curProc[cpu] = sim::invalidPid;
        s.push_back(ScriptItem::mark(MarkerOp::OsExit));
        c.pushFrontSeq(s);
        return;
    }

    Process &np = *procs[uint32_t(next)];
    if (np.everRan && np.lastCpu != cpu)
        ++nMigrations;

    if (next != oldPid) {
        ++nCtxSwitches;
        emitTextByName(s, "swtch");
        if (oldPid != sim::invalidPid) {
            // Save the outgoing registers into the old PCB.
            emitTouch(s, map.pcbAddr(procs[uint32_t(oldPid)]->slot),
                      240, true);
        }
        // Restore the incoming context.
        emitTouch(s, map.pcbAddr(np.slot), 240, false);
        emitTouch(s, map.kernelStackAddr(np.slot) + 4096 - 128, 128,
                  false);
        emitTouch(s, map.procTableAddr(np.slot), 48, true);
        m.monitor().contextSwitch(m.now(), cpu, oldPid, next);
    }

    np.state = ProcState::Running;
    np.everRan = true;
    np.lastCpu = cpu;
    np.ticksLeft = cfg.quantumTicks;
    np.runStart = m.now();
    ++np.dispatches;
    curProc[cpu] = next;
    c.ctx.pid = next;

    emitEpilogue(s, np);
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    c.pushFrontSeq(s);
}

void
Kernel::switchTo(CpuId cpu, Pid next)
{
    // Test hook: force a process onto a CPU outside the normal flow.
    curProc[cpu] = next;
    Process &np = *procs[uint32_t(next)];
    np.state = ProcState::Running;
    np.everRan = true;
    np.lastCpu = cpu;
    m.cpu(cpu).ctx.pid = next;
    m.cpu(cpu).ctx.mode = ExecMode::User;
    m.cpu(cpu).ctx.op = OsOp::None;
}

} // namespace mpos::kernel
