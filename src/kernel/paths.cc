/**
 * @file
 * Kernel path builders: every OS operation rendered as a script of
 * text fetches, data touches, lock operations and sleep/resched
 * markers. This file also contains the VM (page allocation, reclaim,
 * copy-on-write, demand zero) and the file-system read/write bodies.
 */

#include "kernel/kernel.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::kernel
{

using sim::MarkerOp;
using sim::OsOp;

// ---------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------

void
Kernel::emitText(Script &s, RoutineId r, double f0, double f1)
{
    const Routine &info = map.routineInfo(r);
    const uint32_t lines = info.textBytes / cfg.layout.lineBytes;
    uint32_t lo = uint32_t(f0 * lines);
    uint32_t hi = uint32_t(f1 * lines);
    if (hi > lines)
        hi = lines;
    if (lo >= hi)
        hi = lo + 1 <= lines ? lo + 1 : lines;
    s.push_back(ScriptItem::mark(MarkerOp::RoutineEnter, r));
    for (uint32_t l = lo; l < hi; ++l) {
        s.push_back(ScriptItem::ifetch(info.textBase +
                                       Addr(l) * cfg.layout.lineBytes));
    }
}

void
Kernel::emitTextByName(Script &s, const char *name, double f0, double f1)
{
    emitText(s, map.routine(name), f0, f1);
}

void
Kernel::emitTouch(Script &s, Addr addr, uint32_t bytes, bool write)
{
    const Addr line = Addr(cfg.layout.lineBytes);
    for (Addr a = addr & ~(line - 1); a < addr + bytes; a += line) {
        s.push_back(write ? ScriptItem::store(a) : ScriptItem::load(a));
    }
}

void
Kernel::emitLock(Script &s, uint32_t lock_id)
{
    emitTextByName(s, "spinlock_acquire");
    s.push_back(ScriptItem::mark(MarkerOp::LockAcquire, lock_id));
}

void
Kernel::emitUnlock(Script &s, uint32_t lock_id)
{
    emitTextByName(s, "spinlock_release");
    s.push_back(ScriptItem::mark(MarkerOp::LockRelease, lock_id));
}

void
Kernel::emitLockShared(Script &s, uint32_t lock_id)
{
    emitTextByName(s, "spinlock_acquire");
    s.push_back(ScriptItem::mark(MarkerOp::LockAcquireShared, lock_id));
}

void
Kernel::emitUnlockShared(Script &s, uint32_t lock_id)
{
    emitTextByName(s, "spinlock_release");
    s.push_back(ScriptItem::mark(MarkerOp::LockReleaseShared, lock_id));
}

void
Kernel::emitPrologue(Script &s, Process &p)
{
    // Low-level exception entry: save registers into the Eframe and
    // set up the kernel stack (the assembly stages of Table 5).
    emitTextByName(s, "locore_except");
    emitTouch(s, map.eframeAddr(p.slot), 172, true);
    emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 192, 192, true);
    emitTouch(s, map.procTableAddr(p.slot), 32, false);
}

void
Kernel::emitEpilogue(Script &s, Process &p)
{
    emitTextByName(s, "locore_rfe");
    emitTouch(s, map.eframeAddr(p.slot), 172, false);
    emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 96, 96, false);
}

void
Kernel::emitBlockRef(Script &s, Addr addr, bool write)
{
    using sim::ItemKind;
    ScriptItem it = write ? ScriptItem::store(addr)
                          : ScriptItem::load(addr);
    switch (cfg.blockOpMode) {
      case BlockOpMode::Normal:
        break;
      case BlockOpMode::Bypass:
        it.kind = write ? ItemKind::BypassStore : ItemKind::BypassLoad;
        break;
      case BlockOpMode::Prefetch:
        it.kind = write ? ItemKind::PrefetchStore
                        : ItemKind::PrefetchLoad;
        break;
    }
    s.push_back(it);
}

void
Kernel::emitBcopy(Script &s, Addr src, Addr dst, uint32_t bytes,
                  BlockClass cls)
{
    blockStats.record(BlockKind::Copy, cls, bytes);
    emitTextByName(s, "bcopy");
    const uint32_t line = cfg.layout.lineBytes;
    const uint32_t lines = (bytes + line - 1) / line;
    for (uint32_t i = 0; i < lines; ++i) {
        emitBlockRef(s, src + Addr(i) * line, false);
        emitBlockRef(s, dst + Addr(i) * line, true);
    }
    // Word-granularity work not represented by per-line references.
    s.push_back(ScriptItem::think(lines * 6));
}

void
Kernel::emitBclear(Script &s, Addr dst, uint32_t bytes, BlockClass cls)
{
    blockStats.record(BlockKind::Clear, cls, bytes);
    emitTextByName(s, "bclear");
    const uint32_t line = cfg.layout.lineBytes;
    const uint32_t lines = (bytes + line - 1) / line;
    for (uint32_t i = 0; i < lines; ++i)
        emitBlockRef(s, dst + Addr(i) * line, true);
    s.push_back(ScriptItem::think(lines * 3));
}

// ---------------------------------------------------------------------
// Virtual memory
// ---------------------------------------------------------------------

void
Kernel::reclaimPages(Script &s, CpuId cpu)
{
    (void)cpu;
    ++nReclaims;
    // Sweep the pfdat array looking for pages to steal (Sec. 4.2.2:
    // "a traversal of the array of page descriptors occurs when free
    // memory is needed").
    emitTextByName(s, "pfdat_scan");
    const uint32_t entries = cfg.reclaimScanEntries;
    const uint64_t bytes = uint64_t(entries) * map.pfdatEntryBytes();
    blockStats.record(BlockKind::Traverse, BlockClass::IrregularChunk,
                      bytes);
    emitTouch(s, map.pfdatAddr(pfdatCursor), uint32_t(bytes), false);
    pfdatCursor = (pfdatCursor + entries) %
                  (cfg.layout.memBytes / cfg.layout.pageBytes);

    // Steal resident text pages, oldest first.
    uint32_t stolen = 0;
    uint32_t scanned = 0;
    const uint32_t scan_cap = uint32_t(textLru.size()) * 2;
    while (stolen < cfg.reclaimBatch && !textLru.empty() &&
           scanned++ < scan_cap) {
        const uint64_t key = textLru.front();
        textLru.pop_front();
        auto it = pageCache.find(key);
        if (it == pageCache.end())
            continue;
        // Second chance: recently-mapped text survives one sweep.
        auto rit = textRef.find(key);
        if (rit != textRef.end() && rit->second) {
            rit->second = false;
            textLru.push_back(key);
            continue;
        }
        const uint64_t ppage = it->second;
        pageCache.erase(it);
        textRef.erase(key);
        ++nCodeRecycles;

        // Unmap every process still holding the page.
        auto mit = textMappers.find(key);
        if (mit != textMappers.end()) {
            for (const auto &[pid, vpage] : mit->second) {
                Process &p = *procs[uint32_t(pid)];
                if (p.state == ProcState::Free)
                    continue;
                Pte *pte = p.findPte(vpage);
                if (pte && pte->present && pte->ppage == ppage) {
                    pte->present = false;
                    for (uint32_t c = 0; c < m.numCpus(); ++c)
                        m.cpu(c).tlb.invalidate(pid, vpage);
                }
            }
            textMappers.erase(mit);
        }
        emitTouch(s, map.pfdatAddr(ppage), map.pfdatEntryBytes(), true);
        pageRefs[ppage] = 0;
        pageHeldCode[ppage] = 0;
        freePages.push_back(ppage);
        ++stolen;
    }
    if (stolen > 0) {
        // One I-cache flush covers the whole reallocated batch (the
        // kernel flushes when the pages change identity, not per use).
        m.memory().flushICachesForPage(0);
    }
}

uint64_t
Kernel::allocPage(Script &s, CpuId cpu)
{
    if (freePages.size() < cfg.freeLowWater)
        reclaimPages(s, cpu);
    if (freePages.empty())
        util::raise(util::ErrCode::ResourceExhausted,
                    "out of physical memory: workload exceeds the "
                    "configured user page pool");
    const uint64_t ppage = freePages.back();
    freePages.pop_back();
    pageRefs[ppage] = 1;

    emitTextByName(s, "pagealloc");
    emitLock(s, Memlock);
    emitTouch(s, map.freePgBuckAddr(uint32_t(rng.below(384))), 8, true);
    emitTouch(s, map.pfdatAddr(ppage), map.pfdatEntryBytes(), true);
    emitUnlock(s, Memlock);

    return ppage;
}

void
Kernel::freePage(Script &s, uint64_t ppage)
{
    emitTouch(s, map.pfdatAddr(ppage), map.pfdatEntryBytes(), true);
    emitTouch(s, map.freePgBuckAddr(uint32_t(ppage % 384)), 8, true);
    pageRefs[ppage] = 0;
    freePages.push_back(ppage);
}

void
Kernel::releasePage(Script &s, uint64_t ppage)
{
    if (pageRefs[ppage] == 0)
        util::panic("releasing page %llu with zero refcount",
                    static_cast<unsigned long long>(ppage));
    if (--pageRefs[ppage] == 0)
        freePage(s, ppage);
}

void
Kernel::releasePrivatePages(Script &s, Process &p)
{
    // Release in vpage order: the page table is an unordered map, and
    // the order this walk frees pages determines the free-list order,
    // which feeds every later allocation (and hence the reference
    // stream). A sorted walk keeps the stream independent of hash
    // layout -- in particular across a snapshot restore, which rebuilds
    // the map with a different insertion history.
    auto &victims = reclaimScratch;
    victims.clear();
    victims.reserve(p.pageTable.size());
    for (const auto &[vp, pte] : p.pageTable) {
        if (pte.present && !pte.shared && !pte.text)
            victims.emplace_back(vp, pte.ppage);
    }
    if (victims.size() > 1)
        std::sort(victims.begin(), victims.end());
    for (const auto &[vp, pp] : victims)
        releasePage(s, pp);
}

uint64_t
Kernel::ensureResident(Script &s, CpuId cpu, Process &p, Addr vaddr,
                       bool for_write)
{
    const Addr vpage = vaddr / cfg.layout.pageBytes;
    Pte *pte = p.findPte(vpage);
    if (pte && pte->present) {
        if (for_write && pte->cow) {
            // Break copy-on-write inline.
            emitTextByName(s, "cow_break");
            const uint64_t old = pte->ppage;
            const uint64_t np = allocPage(s, cpu);
            emitBcopy(s, old * cfg.layout.pageBytes,
                      np * cfg.layout.pageBytes, cfg.layout.pageBytes,
                      BlockClass::FullPage);
            pte->ppage = uint32_t(np);
            pte->cow = false;
            pte->writable = true;
            releasePage(s, old);
            m.cpu(cpu).tlb.insert(p.pid, vpage, np, true);
        }
        return pte->ppage;
    }
    if (vaddr >= VaMap::sharedBase && vaddr < VaMap::stackBase) {
        auto it = sharedMap.find(vpage);
        if (it != sharedMap.end()) {
            p.pageTable[vpage] =
                Pte{uint32_t(it->second), true, true, false, false,
                    true};
            m.cpu(cpu).tlb.insert(p.pid, vpage, it->second, true);
            return it->second;
        }
    }
    const uint64_t np = allocPage(s, cpu);
    if (!for_write) {
        emitTextByName(s, "zfod");
        emitBclear(s, np * cfg.layout.pageBytes, cfg.layout.pageBytes,
                   BlockClass::FullPage);
    }
    p.pageTable[vpage] = Pte{uint32_t(np), true, true, false, false,
                             vaddr >= VaMap::sharedBase &&
                                 vaddr < VaMap::stackBase};
    if (vaddr >= VaMap::sharedBase && vaddr < VaMap::stackBase)
        sharedMap[vpage] = np;
    m.cpu(cpu).tlb.insert(p.pid, vpage, np, true);
    return np;
}

Kernel::Script
Kernel::pathUtlbFault(Process &p, Addr vpage, const Pte &pte)
{
    (void)pte;
    // The nine-instruction UTLB refill vector: near miss-free and very
    // fast (Figure 1).
    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                 uint64_t(OsOp::UtlbFault)));
    emitTextByName(s, "utlbmiss");
    const Addr pt = map.pageTableAddr(p.slot) +
                    (vpage % 1024) * 4;
    s.push_back(ScriptItem::load(pt));
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    return s;
}

Kernel::Script
Kernel::pathVmFault(CpuId cpu, Process &p, Addr vaddr, bool is_store,
                    bool is_prot)
{
    const Addr vpage = vaddr / cfg.layout.pageBytes;
    const Image &img = images.at(p.imageId);
    const Addr textVp0 = VaMap::textBase / cfg.layout.pageBytes;
    const bool isText =
        vpage >= textVp0 && vpage < textVp0 + img.textPages;
    const bool isShared =
        vaddr >= VaMap::sharedBase && vaddr < VaMap::stackBase;
    const uint64_t cacheKey =
        (uint64_t(p.imageId) << 32) | (vpage - textVp0);

    // Decide how expensive this fault is (Table 8 classes).
    bool expensive = true;
    if (is_prot) {
        expensive = true; // COW break
    } else if (isShared && sharedMap.count(vpage)) {
        expensive = false;
    } else if (isText && pageCache.count(cacheKey)) {
        expensive = false;
    }

    Script s;
    s.push_back(ScriptItem::mark(
        MarkerOp::OsEnter, uint64_t(expensive ? OsOp::ExpensiveTlbFault
                                              : OsOp::CheapTlbFault)));
    emitPrologue(s, p);
    emitTextByName(s, isText ? "tfault" : "vfault");
    emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 768, 384, true);
    emitTouch(s, map.uRestAddr(p.slot) + 1024, 64, true);

    // Region lookup under the per-process page table lock.
    emitLock(s, shrLock(p.slot));
    const Addr ptAddr = map.pageTableAddr(p.slot) + (vpage % 1024) * 4;
    emitTouch(s, ptAddr, 16, false);
    emitUnlock(s, shrLock(p.slot));

    if (is_prot) {
        // Copy-on-write break.
        Pte *pte = p.findPte(vpage);
        if (!pte || !pte->present)
            util::panic("protection fault on non-resident page");
        emitTextByName(s, "cow_break");
        const uint64_t old = pte->ppage;
        const uint64_t np = allocPage(s, cpu);
        emitBcopy(s, old * cfg.layout.pageBytes,
                  np * cfg.layout.pageBytes, cfg.layout.pageBytes,
                  BlockClass::FullPage);
        pte->ppage = uint32_t(np);
        pte->cow = false;
        pte->writable = true;
        releasePage(s, old);
        m.cpu(cpu).tlb.insert(p.pid, vpage, np, true);
    } else if (isShared) {
        auto it = sharedMap.find(vpage);
        uint64_t pp;
        if (it != sharedMap.end()) {
            pp = it->second;
            emitTouch(s, map.pfdatAddr(pp), map.pfdatEntryBytes(),
                      false);
        } else {
            pp = allocPage(s, cpu);
            emitTextByName(s, "zfod");
            emitBclear(s, pp * cfg.layout.pageBytes,
                       cfg.layout.pageBytes, BlockClass::FullPage);
            sharedMap[vpage] = pp;
        }
        p.pageTable[vpage] = Pte{uint32_t(pp), true, true, false, false,
                                 true};
        m.cpu(cpu).tlb.insert(p.pid, vpage, pp, true);
    } else if (isText) {
        auto it = pageCache.find(cacheKey);
        uint64_t pp;
        if (it != pageCache.end()) {
            // Resident in the page cache: just map it.
            pp = it->second;
            textRef[cacheKey] = true;
            emitTouch(s, map.pfdatAddr(pp), map.pfdatEntryBytes(),
                      false);
        } else {
            // Page it in from the image file, klustering the faulted
            // page with its following neighbours into one transfer.
            pp = allocPage(s, cpu);
            const uint32_t ino = 1000 + p.imageId;
            emitTextByName(s, "iget", 0.0, 0.5);
            emitLockShared(s, inoLock(ino));
            emitTouch(s, map.inodeAddr(ino), 64, false);
            emitUnlockShared(s, inoLock(ino));
            emitTextByName(s, "bmap", 0.0, 0.8);
            emitTextByName(s, "disk_strategy");
            const double off = rng.real() * 0.9;
            emitTextByName(s, "scsi_driver", off, off + 0.08);
            s.push_back(ScriptItem::uncachedStore(0x40000000));
            s.push_back(ScriptItem::uncachedStore(0x40000010));

            pageCache[cacheKey] = pp;
            textLru.push_back(cacheKey);
            pageHeldCode[pp] = 1;
            uint32_t kluster = 1;
            const Addr imgIdx = vpage - textVp0;
            for (uint32_t n = 1; n < 8; ++n) {
                const Addr nIdx = imgIdx + n;
                if (nIdx >= img.textPages)
                    break;
                const uint64_t nKey =
                    (uint64_t(p.imageId) << 32) | nIdx;
                if (pageCache.count(nKey))
                    break;
                const uint64_t np = allocPage(s, cpu);
                pageCache[nKey] = np;
                textLru.push_back(nKey);
                pageHeldCode[np] = 1;
                ++kluster;
            }

            const Cycle wake = disk.schedule(m.now(), kluster);
            events.push({wake, Event::Kind::DiskDone,
                         uint64_t(p.pid)});
            s.push_back(ScriptItem::mark(MarkerOp::SleepDisk, wake));
            // DMA fills the pages; update the descriptors afterwards.
            emitTouch(s, map.pfdatAddr(pp), map.pfdatEntryBytes(),
                      true);
        }
        textMappers[cacheKey].emplace_back(p.pid, vpage);
        p.pageTable[vpage] = Pte{uint32_t(pp), true, false, false, true,
                                 false};
        m.cpu(cpu).tlb.insert(p.pid, vpage, pp, false);
    } else {
        // Demand-zero data or stack page.
        const uint64_t pp = allocPage(s, cpu);
        emitTextByName(s, "zfod");
        emitBclear(s, pp * cfg.layout.pageBytes, cfg.layout.pageBytes,
                   BlockClass::FullPage);
        p.pageTable[vpage] =
            Pte{uint32_t(pp), true, true, false, false, false};
        m.cpu(cpu).tlb.insert(p.pid, vpage, pp, true);
        (void)is_store;
    }

    // Record the new translation in the page table.
    emitLock(s, shrLock(p.slot));
    emitTouch(s, ptAddr, 4, true);
    emitUnlock(s, shrLock(p.slot));

    emitEpilogue(s, p);
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    return s;
}

// ---------------------------------------------------------------------
// System calls
// ---------------------------------------------------------------------

Kernel::Script
Kernel::pathSyscall(CpuId cpu, Process &p, Sys n, uint64_t payload)
{
    OsOp op;
    switch (n) {
      case Sys::Read:
      case Sys::Write:
        op = OsOp::IoSyscall;
        break;
      case Sys::Sginap:
        op = OsOp::Sginap;
        break;
      default:
        op = OsOp::OtherSyscall;
        break;
    }

    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter, uint64_t(op)));
    emitPrologue(s, p);
    emitTextByName(s, "syscall_entry");
    emitTouch(s, map.uRestAddr(p.slot) + 16, 96, false);
    emitTouch(s, map.procTableAddr(p.slot), 32, false);

    bool ends_with_resched = false;
    switch (n) {
      case Sys::Read:
        emitTextByName(s, "rdwr_setup");
        emitTouch(s, map.uRestAddr(p.slot) + 128, 64, true);
        bodyRead(s, cpu, p, payload);
        break;
      case Sys::Write:
        emitTextByName(s, "rdwr_setup");
        emitTouch(s, map.uRestAddr(p.slot) + 128, 64, true);
        bodyWrite(s, cpu, p, payload);
        break;
      case Sys::Sginap:
        bodySginap(s, p);
        ends_with_resched = true;
        break;
      case Sys::Fork:
        bodyFork(s, cpu, p);
        break;
      case Sys::Exec:
        bodyExec(s, cpu, p, uint32_t(payload));
        break;
      case Sys::Exit:
        bodyExit(s, cpu, p);
        ends_with_resched = true;
        break;
      case Sys::Wait:
        bodyWait(s, p);
        break;
      case Sys::Brk:
        bodyBrk(s, cpu, p, uint32_t(payload));
        break;
      case Sys::Other:
        bodyOther(s, cpu, p);
        break;
    }

    if (!ends_with_resched) {
        emitEpilogue(s, p);
        s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    }
    return s;
}

Kernel::Script
Kernel::pathFutexWait(Process &p, uint32_t lock_id)
{
    // FUTEX_WAIT: full syscall entry, the in-kernel re-check/sleep
    // marker, then a normal return path (executed on wake, or
    // immediately when the re-check finds the lock already free).
    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                 uint64_t(OsOp::OtherSyscall)));
    emitPrologue(s, p);
    emitTextByName(s, "syscall_entry");
    emitTouch(s, map.uRestAddr(p.slot) + 16, 96, false);
    emitTouch(s, map.procTableAddr(p.slot), 32, false);
    emitTextByName(s, "sginap_sys"); // sleep/wakeup plumbing
    s.push_back(ScriptItem::mark(MarkerOp::Custom, customFutexWait,
                                 lock_id));
    emitEpilogue(s, p);
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    return s;
}

void
Kernel::bodyTtyRead(Script &s, Process &p, uint32_t session,
                    uint32_t bytes)
{
    emitTextByName(s, "read_sys", 0.0, 0.4);
    const uint32_t slock = streamsLock(session);
    // The per-session stream buffer lives in the tail of buffer data.
    const Addr qaddr =
        map.bufDataAddr(cfg.layout.numBuffers - 1 - session % 8);

    emitLock(s, slock);
    emitTextByName(s, "streams_core", 0.0, 0.03);
    emitTouch(s, qaddr, 64, false);
    emitUnlock(s, slock);

    s.push_back(ScriptItem::mark(MarkerOp::Custom, customBlockTty,
                                 session));

    // After input is available: pull the characters to the user.
    emitLock(s, slock);
    emitTextByName(s, "tty_driver", 0.0, 0.02);
    const uint64_t dst =
        ensureResident(s, 0, p, p.ioBufVaddr, true);
    emitBcopy(s, qaddr, dst * cfg.layout.pageBytes,
              std::min(bytes, 64u), BlockClass::IrregularChunk);
    emitTouch(s, qaddr, 32, true);
    emitUnlock(s, slock);
}

void
Kernel::bodyRead(Script &s, CpuId cpu, Process &p, uint64_t payload)
{
    const uint32_t file = ioFile(payload);
    const uint32_t bytes = ioBytes(payload);
    const uint32_t start = ioStartBlock(payload);

    if (file >= 0x400000) {
        bodyTtyRead(s, p, file - 0x400000, bytes);
        return;
    }

    const uint32_t ino = file;
    if (start == 0) {
        // First read = open: pathname lookup and inode grab, with the
        // path string copied in (an irregular block copy).
        emitTextByName(s, "namei", 0.0, 0.9);
        const uint64_t sp = ensureResident(
            s, cpu, p, VaMap::stackBase + 0x100, false);
        emitBcopy(s, sp * cfg.layout.pageBytes,
                  map.kernelStackAddr(p.slot) + 2048,
                  32 + uint32_t(rng.below(96)),
                  BlockClass::IrregularChunk);
        emitLockShared(s, Ifree);
        emitTouch(s, map.inodeAddr(ino), 64, false);
        emitUnlockShared(s, Ifree);
    }

    emitTextByName(s, "read_sys");
    emitLockShared(s, inoLock(ino));
    emitTouch(s, map.inodeAddr(ino), 64, false);
    emitUnlockShared(s, inoLock(ino));

    const Addr dstVaddr =
        p.ioBufVaddr +
        Addr(p.ioRotor++ % 8) * cfg.layout.pageBytes;
    const uint64_t dstPage = ensureResident(s, cpu, p, dstVaddr, true);
    // Deep call chain: a real read path builds several stack frames.
    emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 1024, 512, true);
    const uint32_t nblocks =
        std::max(1u, (bytes + cfg.layout.pageBytes - 1) /
                         cfg.layout.pageBytes);

    uint32_t left = bytes;
    for (uint32_t b = 0; b < nblocks; ++b) {
        const int64_t blkno = int64_t(file) * 4096 + start + b;
        const uint32_t chunk =
            std::min(left, cfg.layout.pageBytes);
        left -= chunk;

        emitTextByName(s, "bmap", 0.0, 0.8);
        emitTouch(s, map.uRestAddr(p.slot) + 512, 48, true);
        emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 1536, 256,
                  true);
        emitLock(s, Bfreelock);
        emitTextByName(s, "getblk", 0.0, 0.9);
        const uint32_t chain = bufcache.chainLength(blkno);
        for (uint32_t i = 0; i < chain; ++i) {
            emitTouch(s,
                      map.bufHeaderAddr(uint32_t(blkno + i * 7)), 32,
                      false);
        }

        int32_t idx = bufcache.lookup(blkno);
        if (idx >= 0) {
            bufcache.touchUse(uint32_t(idx));
            emitTouch(s, map.bufHeaderAddr(uint32_t(idx)), 32, false);
            emitUnlock(s, Bfreelock);
        } else {
            const auto g = bufcache.getVictim(blkno);
            idx = int32_t(g.index);
            emitTouch(s, map.bufHeaderAddr(g.index), 68, true);
            emitUnlock(s, Bfreelock);
            if (g.wasDirty) {
                // Asynchronous write-back of the victim.
                emitTextByName(s, "bwrite", 0.0, 0.4);
                disk.schedule(m.now(), 1);
            }
            emitTextByName(s, "bread");
            emitTextByName(s, "disk_strategy");
            const double off = rng.real() * 0.85;
            emitTextByName(s, "scsi_driver", off, off + 0.12);
            s.push_back(ScriptItem::uncachedStore(0x40000000));
            s.push_back(ScriptItem::uncachedStore(0x40000010));
            const Cycle wake = disk.schedule(m.now(), 1);
            events.push({wake, Event::Kind::DiskDone,
                         uint64_t(p.pid)});
            s.push_back(ScriptItem::mark(MarkerOp::SleepDisk, wake));
            // Return path: back up through bread/read_sys frames.
            emitTextByName(s, "bread", 0.5, 1.0);
            emitTextByName(s, "read_sys", 0.4, 1.0);
            emitTouch(s, map.bufHeaderAddr(g.index), 68, true);
        }
        // Copy the block to the user's buffer.
        emitBcopy(s, map.bufDataAddr(uint32_t(idx)),
                  dstPage * cfg.layout.pageBytes, chunk,
                  BlockClass::RegularFragment);
    }

    // Update the inode (access time, file position).
    emitLock(s, inoLock(ino));
    emitTouch(s, map.inodeAddr(ino), 32, true);
    emitUnlock(s, inoLock(ino));
}

void
Kernel::bodyWrite(Script &s, CpuId cpu, Process &p, uint64_t payload)
{
    const uint32_t file = ioFile(payload);
    const uint32_t bytes = ioBytes(payload);
    const uint32_t start = ioStartBlock(payload);
    const bool sync = ioSync(payload);
    const uint32_t ino = file;

    emitTextByName(s, "write_sys");
    emitLockShared(s, inoLock(ino));
    emitTouch(s, map.inodeAddr(ino), 64, false);
    emitUnlockShared(s, inoLock(ino));

    const Addr srcVaddr =
        p.ioBufVaddr +
        Addr(p.ioRotor++ % 8) * cfg.layout.pageBytes;
    const uint64_t srcPage = ensureResident(s, cpu, p, srcVaddr, false);
    emitTouch(s, map.kernelStackAddr(p.slot) + 4096 - 1024, 512, true);
    const uint32_t nblocks =
        std::max(1u, (bytes + cfg.layout.pageBytes - 1) /
                         cfg.layout.pageBytes);

    uint32_t left = bytes;
    for (uint32_t b = 0; b < nblocks; ++b) {
        const int64_t blkno = int64_t(file) * 4096 + start + b;
        const uint32_t chunk = std::min(left, cfg.layout.pageBytes);
        left -= chunk;

        // Allocate the disk block for file growth.
        emitTextByName(s, "dfbmap", 0.0, 0.5);
        emitLock(s, Dfbmaplk);
        emitTouch(s, map.inodeAddr(ino) + 128, 16, true);
        emitUnlock(s, Dfbmaplk);

        emitLock(s, Bfreelock);
        emitTextByName(s, "getblk", 0.0, 0.9);
        int32_t idx = bufcache.lookup(blkno);
        if (idx >= 0) {
            bufcache.touchUse(uint32_t(idx));
            emitTouch(s, map.bufHeaderAddr(uint32_t(idx)), 32, false);
        } else {
            const auto g = bufcache.getVictim(blkno);
            idx = int32_t(g.index);
            emitTouch(s, map.bufHeaderAddr(g.index), 68, true);
            if (g.wasDirty) {
                emitTextByName(s, "bwrite", 0.0, 0.4);
                disk.schedule(m.now(), 1);
            }
        }
        emitUnlock(s, Bfreelock);

        emitBcopy(s, srcPage * cfg.layout.pageBytes,
                  map.bufDataAddr(uint32_t(idx)), chunk,
                  BlockClass::RegularFragment);
        bufcache.markDirty(uint32_t(idx));

        if (sync) {
            // Synchronous write (e.g. a database log): wait for it.
            emitTextByName(s, "bwrite");
            emitTextByName(s, "disk_strategy");
            const double off = rng.real() * 0.9;
            emitTextByName(s, "scsi_driver", off, off + 0.08);
            s.push_back(ScriptItem::uncachedStore(0x40000000));
            const Cycle wake = disk.schedule(m.now(), 1);
            events.push({wake, Event::Kind::DiskDone,
                         uint64_t(p.pid)});
            s.push_back(ScriptItem::mark(MarkerOp::SleepDisk, wake));
            bufcache.clean(uint32_t(idx));
        }
    }

    emitLock(s, inoLock(ino));
    emitTouch(s, map.inodeAddr(ino), 48, true);
    emitUnlock(s, inoLock(ino));
}

void
Kernel::bodySginap(Script &s, Process &p)
{
    (void)p;
    emitTextByName(s, "sginap_sys");
    emitLock(s, Semlock);
    emitTouch(s, map.calloutAddr(32), 16, false);
    emitUnlock(s, Semlock);
    emitReschedSeq(s);
}

void
Kernel::bodyFork(Script &s, CpuId cpu, Process &parent)
{
    Process *childp = nullptr;
    if (fp && fp->fireSlotAlloc())
        util::raise(util::ErrCode::ResourceExhausted,
                    "fault injection: forced process-slot exhaustion "
                    "at fork of pid %d", int(parent.pid));
    for (auto &pp : procs) {
        if (pp->state == ProcState::Free) {
            childp = pp.get();
            break;
        }
    }
    if (!childp)
        util::raise(util::ErrCode::ResourceExhausted,
                    "fork: out of process slots (maxProcs %u)",
                    uint32_t(procs.size()));
    Process &child = *childp;
    child.resetForReuse();
    // Stale translations from the slot's previous occupant.
    for (uint32_t c = 0; c < m.numCpus(); ++c)
        m.cpu(c).tlb.invalidatePid(child.pid);

    ++nForks;
    emitTextByName(s, "fork_sys");
    // Scan the process table for a free slot, then fill it in.
    emitTouch(s, map.procTableAddr(0), 8 * map.procEntryBytes(), false);
    emitTouch(s, map.procTableAddr(child.slot), map.procEntryBytes(),
              true);

    // Duplicate the user structure (kernel-internal full-page copy).
    emitBcopy(s, map.kernelStackAddr(parent.slot) + 4096,
              map.kernelStackAddr(child.slot) + 4096, 4096,
              BlockClass::FullPage);

    // Copy the address space, marking private writable pages COW in
    // both parent and child.
    const uint32_t shrParent = shrLock(parent.slot);
    const uint32_t shrChild = shrLock(child.slot);
    emitLock(s, shrParent);
    if (shrChild != shrParent)
        emitLock(s, shrChild);
    const uint32_t npte = uint32_t(parent.pageTable.size());
    emitTouch(s, map.pageTableAddr(parent.slot),
              std::min<uint32_t>(npte * 4, 4096), false);
    emitTouch(s, map.pageTableAddr(child.slot),
              std::min<uint32_t>(npte * 4, 4096), true);
    child.pageTable = parent.pageTable;
    for (auto &[vp, pte] : parent.pageTable) {
        if (pte.present && !pte.shared && !pte.text) {
            if (pte.writable) {
                pte.cow = true;
                child.pageTable[vp].cow = true;
            }
            ++pageRefs[pte.ppage]; // the child shares the frame
        }
    }
    if (shrChild != shrParent)
        emitUnlock(s, shrChild);
    emitUnlock(s, shrParent);
    // The parent's now-COW mappings must fault on the next store.
    for (uint32_t c = 0; c < m.numCpus(); ++c)
        m.cpu(c).tlb.invalidatePid(parent.pid);

    // Small kernel-heap initialization for the new process.
    emitBclear(s, map.pageTableAddr(child.slot) + 2048,
               64 + uint32_t(rng.below(192)),
               BlockClass::IrregularChunk);

    child.name = parent.name + "+";
    child.imageId = parent.imageId;
    child.parent = parent.pid;
    child.ticksLeft = cfg.quantumTicks;
    child.state = ProcState::Blocked; // makeReady flips it below

    if (!client)
        util::raise(util::ErrCode::BadConfig,
                    "fork with no kernel client installed");
    client->onFork(parent, child);
    if (!child.behavior)
        util::raise(util::ErrCode::BadConfig,
                    "kernel client did not install a child behavior");

    emitLock(s, Runqlk);
    emitTextByName(s, "setrq");
    emitTouch(s, map.runQueueAddr(), 24, true);
    emitUnlock(s, Runqlk);
    makeReady(child.pid);
    (void)cpu;
}

void
Kernel::bodyExec(Script &s, CpuId cpu, Process &p, uint32_t image_id)
{
    if (image_id >= images.size())
        util::raise(util::ErrCode::BadConfig,
                    "exec: unknown image %u (have %u)", image_id,
                    uint32_t(images.size()));
    emitTextByName(s, "exec_sys");

    // Pathname lookup + argv copy-in.
    emitTextByName(s, "namei", 0.0, 0.8);
    const uint64_t sp =
        ensureResident(s, cpu, p, VaMap::stackBase + 0x200, false);
    emitBcopy(s, sp * cfg.layout.pageBytes,
              map.kernelStackAddr(p.slot) + 1024,
              64 + uint32_t(rng.below(160)), BlockClass::IrregularChunk);
    const uint32_t ino = 1000 + image_id;
    emitLockShared(s, Ifree);
    emitTouch(s, map.inodeAddr(ino), 64, false);
    emitUnlockShared(s, Ifree);

    // Release the old address space.
    emitLock(s, shrLock(p.slot));
    emitTextByName(s, "pagefree");
    emitLock(s, Memlock);
    releasePrivatePages(s, p);
    emitUnlock(s, Memlock);
    p.pageTable.clear();
    emitTouch(s, map.pageTableAddr(p.slot), 1024, true);
    emitUnlock(s, shrLock(p.slot));

    for (uint32_t c = 0; c < m.numCpus(); ++c)
        m.cpu(c).tlb.invalidatePid(p.pid);

    p.imageId = image_id;
    emitTouch(s, map.procTableAddr(p.slot), map.procEntryBytes(), true);
}

void
Kernel::bodyExit(Script &s, CpuId cpu, Process &p)
{
    (void)cpu;
    ++nExits;
    emitTextByName(s, "exit_sys");

    // Release the address space.
    emitLock(s, shrLock(p.slot));
    emitTextByName(s, "pagefree");
    emitLock(s, Memlock);
    releasePrivatePages(s, p);
    emitUnlock(s, Memlock);
    p.pageTable.clear();
    emitUnlock(s, shrLock(p.slot));

    // Close files.
    emitTextByName(s, "iput");
    emitLock(s, Ifree);
    emitTouch(s, map.inodeAddr(uint32_t(p.pid) * 7), 32, true);
    emitUnlock(s, Ifree);

    emitTouch(s, map.procTableAddr(p.slot), map.procEntryBytes(), true);
    p.state = ProcState::Zombie;

    // Notify the parent.
    if (p.parent != sim::invalidPid) {
        Process &par = *procs[uint32_t(p.parent)];
        if (par.state != ProcState::Free) {
            ++par.pendingChildExits;
            if (par.waitingForChild) {
                par.waitingForChild = false;
                --par.pendingChildExits;
                emitLock(s, Runqlk);
                emitTextByName(s, "setrq");
                emitTouch(s, map.runQueueAddr(), 24, true);
                emitTouch(s, map.procTableAddr(par.slot), 48, true);
                emitUnlock(s, Runqlk);
                makeReady(par.pid);
            }
        }
    }
    if (client)
        client->onProcExit(p);

    emitReschedSeq(s);
}

void
Kernel::bodyWait(Script &s, Process &p)
{
    emitTextByName(s, "wait_sys");
    emitTouch(s, map.procTableAddr(0), 8 * map.procEntryBytes(), false);
    if (p.pendingChildExits > 0) {
        // Reap one exited child immediately (the zombie's slot is
        // recycled when it leaves its CPU).
        --p.pendingChildExits;
        emitTouch(s, map.procTableAddr(p.slot), 48, true);
        return;
    }
    s.push_back(ScriptItem::mark(MarkerOp::Custom, customBlockWait, 0));
    // If the marker blocks, the epilogue that follows resumes when a
    // child exits (the exiting child reaps itself into our slot
    // bookkeeping via bodyExit).
}

void
Kernel::bodyBrk(Script &s, CpuId cpu, Process &p, uint32_t pages)
{
    (void)cpu;
    (void)pages;
    emitTextByName(s, "brk_sys");
    emitLock(s, shrLock(p.slot));
    emitTouch(s, map.pageTableAddr(p.slot), 64, true);
    emitUnlock(s, shrLock(p.slot));
}

void
Kernel::bodyOther(Script &s, CpuId cpu, Process &p)
{
    const double hi = 0.3 + rng.real() * 0.7;
    emitTextByName(s, "misc_sys", hi - 0.3, hi);
    emitTouch(s, map.uRestAddr(p.slot) + 256, 64, true);
    if (rng.chance(0.5)) {
        // Parameter copy-in/out: an irregular block copy.
        const uint64_t sp = ensureResident(
            s, cpu, p, VaMap::stackBase + 0x300, false);
        emitBcopy(s, sp * cfg.layout.pageBytes,
                  map.kernelStackAddr(p.slot) + 3072,
                  32 + uint32_t(rng.below(96)),
                  BlockClass::IrregularChunk);
    }
    if (rng.chance(0.15)) {
        emitTextByName(s, "alloc_kmem");
        emitBclear(s, map.pageTableAddr(p.slot) + 3584,
                   48 + uint32_t(rng.below(128)),
                   BlockClass::IrregularChunk);
    }
}

// ---------------------------------------------------------------------
// Interrupts and rescheduling
// ---------------------------------------------------------------------

void
Kernel::emitReschedSeq(Script &s)
{
    emitTextByName(s, "resched");
    emitLock(s, Runqlk);
    emitTextByName(s, "setrq");
    emitTouch(s, map.runQueueAddr(), 24, true);
    emitTextByName(s, "pickproc");
    emitTouch(s, map.hiNdprocAddr(), 8, false);
    // Peek at the head of the queue (what pickproc will look at).
    const uint32_t peek = std::min<uint32_t>(3,
                                             uint32_t(runQueue.size()));
    for (uint32_t i = 0; i < peek; ++i) {
        emitTouch(s,
                  map.procTableAddr(
                      procs[uint32_t(runQueue[i])]->slot),
                  32, false);
    }
    emitUnlock(s, Runqlk);
    s.push_back(ScriptItem::mark(MarkerOp::Resched));
}

Kernel::Script
Kernel::pathClockInterrupt(CpuId cpu)
{
    ++clockCount;
    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                 uint64_t(OsOp::Interrupt)));
    const Pid pid = curProc[cpu];
    Process *p =
        pid != sim::invalidPid ? procs[uint32_t(pid)].get() : nullptr;
    if (p)
        emitPrologue(s, *p);

    emitTextByName(s, "clock_intr");
    emitTouch(s, map.kernelStackAddr(p ? p->slot : 0) + 4096 - 512,
              128, true);
    emitLock(s, Calock);
    emitTextByName(s, "callout_svc", 0.0, 0.5);
    emitTouch(s, map.calloutAddr(uint32_t(clockCount % 64)), 32, false);
    if (rng.chance(0.25))
        emitTouch(s, map.calloutAddr(uint32_t(clockCount % 64)), 16,
                  true);
    emitUnlock(s, Calock);

    if (p) {
        // CPU time accounting for the running process.
        emitTouch(s, map.procTableAddr(p->slot), 32, true);
    }

    if (clockCount % 4 == 0) {
        // Periodic priority recomputation sweeps the process table.
        emitTextByName(s, "schedcpu");
        for (uint32_t i = 0; i < 8; ++i) {
            emitTouch(s, map.procTableAddr((uint32_t(clockCount) + i) %
                                           cfg.layout.maxProcs),
                      32, true);
        }
    }

    bool resched = false;
    if (p) {
        if (--p->ticksLeft <= 0 && !runQueue.empty())
            resched = true;
    }
    if (resched) {
        emitReschedSeq(s);
    } else {
        if (p)
            emitEpilogue(s, *p);
        s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    }
    return s;
}

Kernel::Script
Kernel::pathDiskInterrupt(CpuId cpu, Pid sleeper)
{
    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                 uint64_t(OsOp::Interrupt)));
    const Pid pid = curProc[cpu];
    Process *p =
        pid != sim::invalidPid ? procs[uint32_t(pid)].get() : nullptr;
    if (p)
        emitPrologue(s, *p);

    emitTextByName(s, "disk_intr");
    const double off = rng.real() * 0.9;
    emitTextByName(s, "scsi_driver", off, off + 0.06);
    s.push_back(ScriptItem::uncachedLoad(0x40000000));
    s.push_back(ScriptItem::uncachedLoad(0x40000020));
    s.push_back(ScriptItem::uncachedStore(0x40000010));

    // Wake the sleeping process.
    Process &sp = *procs[uint32_t(sleeper)];
    if (sp.state == ProcState::Blocked && !sp.waitingForChild &&
        sp.blockedOnTty < 0) {
        emitLock(s, Runqlk);
        emitTextByName(s, "setrq");
        emitTouch(s, map.runQueueAddr(), 24, true);
        emitTouch(s, map.procTableAddr(sp.slot), 48, true);
        emitUnlock(s, Runqlk);
        makeReady(sleeper);
    } else {
        ++sp.wakePending;
    }

    if (p)
        emitEpilogue(s, *p);
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    return s;
}

Kernel::Script
Kernel::pathTtyInterrupt(CpuId cpu, uint32_t session)
{
    Script s;
    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                 uint64_t(OsOp::Interrupt)));
    const Pid pid = curProc[cpu];
    Process *p =
        pid != sim::invalidPid ? procs[uint32_t(pid)].get() : nullptr;
    if (p)
        emitPrologue(s, *p);

    emitTextByName(s, "tty_intr");
    const uint32_t slock = streamsLock(session);
    emitLock(s, slock);
    emitTextByName(s, "stream_svc", 0.0, 0.4);
    const Addr qaddr =
        map.bufDataAddr(cfg.layout.numBuffers - 1 - session % 8);
    emitTouch(s, qaddr, 48, true);
    emitUnlock(s, slock);

    TtySession &t = ttys[session];
    if (t.reader != sim::invalidPid) {
        Process &rp = *procs[uint32_t(t.reader)];
        if (rp.state == ProcState::Blocked &&
            rp.blockedOnTty == int32_t(session)) {
            rp.blockedOnTty = -1;
            emitLock(s, Runqlk);
            emitTextByName(s, "setrq");
            emitTouch(s, map.runQueueAddr(), 24, true);
            emitTouch(s, map.procTableAddr(rp.slot), 48, true);
            emitUnlock(s, Runqlk);
            makeReady(t.reader);
        }
        t.reader = sim::invalidPid;
    }

    if (p)
        emitEpilogue(s, *p);
    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
    return s;
}

} // namespace mpos::kernel
