/**
 * @file
 * Kernel snapshot save/restore: a flat, versioned walk over every
 * piece of kernel state that can influence future events.
 *
 * Unordered maps are dumped sorted by key so that identical logical
 * state always serializes to identical bytes (the warm-start cache
 * keys images by content-independent config hashes, but byte-stable
 * images make the differential tests exact). Restore rebuilds each
 * map from the sorted dump; the kernel never iterates these maps in
 * an order-sensitive way (releasePrivatePages sorts), so the changed
 * insertion history is unobservable.
 */

#include "kernel/kernel.hh"

#include <algorithm>
#include <utility>

#include "util/binio.hh"
#include "util/error.hh"

namespace mpos::kernel
{

using util::ByteReader;
using util::ByteWriter;
using util::ErrCode;

namespace
{

/** Expose the protected underlying container of a std::priority_queue
 *  (the heap array round-trips verbatim, preserving exact pop order). */
template <class Q>
struct QueueOpener : Q
{
    static const typename Q::container_type &
    open(const Q &q)
    {
        return q.*(&QueueOpener::c);
    }

    static typename Q::container_type &
    open(Q &q)
    {
        return q.*(&QueueOpener::c);
    }
};

template <class Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
expect(uint64_t got, uint64_t want, const char *what)
{
    if (got != want)
        util::raise(ErrCode::SnapshotCorrupt,
                    "kernel snapshot: %s mismatch (snapshot %llu, "
                    "machine %llu)",
                    what, (unsigned long long)got,
                    (unsigned long long)want);
}

void
saveContext(ByteWriter &w, const sim::MonitorContext &c)
{
    w.u8(uint8_t(c.mode));
    w.u8(uint8_t(c.op));
    w.u16(c.routine);
    w.i64(int64_t(c.pid));
}

void
loadContext(ByteReader &r, sim::MonitorContext &c)
{
    c.mode = sim::ExecMode(r.u8());
    c.op = sim::OsOp(r.u8());
    c.routine = r.u16();
    c.pid = Pid(int32_t(r.i64()));
}

} // namespace

void
Kernel::saveState(ByteWriter &w, const BehaviorCodec &codec) const
{
    for (uint64_t word : rng.saveState())
        w.u64(word);

    // Process table.
    w.u32(uint32_t(procs.size()));
    for (const auto &pp : procs) {
        const Process &p = *pp;
        w.u8(uint8_t(p.state));
        w.str(p.name);
        w.u32(p.lastCpu);
        w.b(p.everRan);
        w.i64(p.ticksLeft);
        w.i64(int64_t(p.parent));
        w.u64(p.cpuShare);
        w.u64(p.runStart);
        w.u64(p.totalRan);
        w.u64(p.dispatches);
        w.b(p.behavior != nullptr);
        if (p.behavior)
            codec.save(w, *p.behavior);
        p.savedScript.saveState(w);
        w.u64(p.pageTable.size());
        for (Addr vp : sortedKeys(p.pageTable)) {
            const Pte &pte = p.pageTable.at(vp);
            w.u64(vp);
            w.u32(pte.ppage);
            w.b(pte.present);
            w.b(pte.writable);
            w.b(pte.cow);
            w.b(pte.text);
            w.b(pte.shared);
        }
        w.u32(p.imageId);
        w.u64(p.ioBufVaddr);
        w.u32(p.ioRotor);
        w.b(p.waitingForChild);
        w.u32(p.pendingChildExits);
        w.i64(p.blockedOnTty);
        w.u32(p.wakePending);
        w.u64(p.userChunks);
    }

    // Scheduler.
    w.u32(uint32_t(curProc.size()));
    for (Pid pid : curProc)
        w.i64(int64_t(pid));
    w.u64(runQueue.size());
    for (Pid pid : runQueue)
        w.i64(int64_t(pid));
    w.u64(rqSkips.size());
    for (uint32_t sk : rqSkips)
        w.u32(sk);

    // Locks.
    w.u32(uint32_t(locks.size()));
    for (const LockState &l : locks) {
        w.i64(l.heldByCpu);
        w.u64(l.spinMask);
        w.u32(l.napWaiters);
        w.u32(l.nextTicket);
        w.u32(l.nowServing);
        w.i64(l.grantedTo);
        w.u32(uint32_t(l.waitQueue.size()));
        for (uint32_t q : l.waitQueue)
            w.u32(q);
        w.u32(l.rcuReaders);
    }
    w.u32(nUserLocks);

    // Images.
    w.u32(uint32_t(images.size()));
    for (const Image &img : images) {
        w.u32(img.id);
        w.str(img.name);
        w.u32(img.textPages);
    }

    // Text page cache.
    w.u64(pageCache.size());
    for (uint64_t key : sortedKeys(pageCache)) {
        w.u64(key);
        w.u64(pageCache.at(key));
    }
    w.u64(textLru.size());
    for (uint64_t key : textLru)
        w.u64(key);
    w.u64(textRef.size());
    for (uint64_t key : sortedKeys(textRef)) {
        w.u64(key);
        w.b(textRef.at(key));
    }
    w.u64(textMappers.size());
    for (uint64_t key : sortedKeys(textMappers)) {
        const auto &mappers = textMappers.at(key);
        w.u64(key);
        w.u64(mappers.size());
        for (const auto &[pid, vpage] : mappers) {
            w.i64(int64_t(pid));
            w.u64(vpage);
        }
    }
    w.u64(pfdatCursor);
    w.u64(clockCount);
    w.u64(pickCount);

    // Physical memory.
    w.u64(freePages.size());
    for (uint64_t pg : freePages)
        w.u64(pg);
    w.u64(pageHeldCode.size());
    w.raw(pageHeldCode.data(), pageHeldCode.size());
    w.u64(pageRefs.size());
    for (uint16_t refs : pageRefs)
        w.u16(refs);

    // Shared memory.
    w.u64(sharedMap.size());
    for (Addr vp : sortedKeys(sharedMap)) {
        w.u64(vp);
        w.u64(sharedMap.at(vp));
    }
    w.u64(sharedBrk);

    // File system.
    bufcache.saveState(w);
    w.u64(disk.busyUntil);
    w.u64(disk.requests);
    w.u32(uint32_t(ttys.size()));
    for (const TtySession &t : ttys) {
        w.u32(t.id);
        w.u32(t.pendingChars);
        w.i64(int64_t(t.reader));
        w.u64(t.meanGap);
    }

    // Timed events (raw heap array of the priority queue).
    const auto &eq = QueueOpener<std::decay_t<decltype(events)>>::open(events);
    w.u64(eq.size());
    for (const Event &e : eq) {
        w.u64(e.when);
        w.u8(uint8_t(e.kind));
        w.u64(e.payload);
    }

    // Per-CPU clock and OS-nesting context.
    w.u32(uint32_t(nextClockAt.size()));
    for (Cycle at : nextClockAt)
        w.u64(at);
    w.u32(uint32_t(prevCtx.size()));
    for (const sim::MonitorContext &c : prevCtx)
        saveContext(w, c);
    w.raw(prevCtxValid.data(), prevCtxValid.size());

    // Counters.
    w.u64(nCtxSwitches);
    w.u64(nMigrations);
    w.u64(nForks);
    w.u64(nExits);
    w.u64(nUtlbFaults);
    w.u64(nReclaims);
    w.u64(nStrands);
    w.u64(nCodeRecycles);
    for (const auto &row : blockStats.invocations)
        for (uint64_t v : row)
            w.u64(v);
    for (uint64_t v : blockStats.bytes)
        w.u64(v);
    for (uint64_t v : opCounts.count)
        w.u64(v);
}

void
Kernel::restoreState(ByteReader &r, const BehaviorCodec &codec)
{
    std::array<uint64_t, 4> rngState;
    for (uint64_t &word : rngState)
        word = r.u64();
    rng.restoreState(rngState);

    // Process table.
    expect(r.u32(), procs.size(), "process table size");
    for (auto &pp : procs) {
        Process &p = *pp;
        p.state = ProcState(r.u8());
        p.name = r.str();
        p.lastCpu = r.u32();
        p.everRan = r.b();
        p.ticksLeft = int32_t(r.i64());
        p.parent = Pid(int32_t(r.i64()));
        p.cpuShare = r.u64();
        p.runStart = r.u64();
        p.totalRan = r.u64();
        p.dispatches = r.u64();
        p.behavior = r.b() ? codec.load(r) : nullptr;
        p.savedScript.restoreState(r);
        p.pageTable.clear();
        const uint64_t npte = r.u64();
        for (uint64_t i = 0; i < npte; ++i) {
            const Addr vp = r.u64();
            Pte pte;
            pte.ppage = r.u32();
            pte.present = r.b();
            pte.writable = r.b();
            pte.cow = r.b();
            pte.text = r.b();
            pte.shared = r.b();
            p.pageTable.emplace(vp, pte);
        }
        p.imageId = r.u32();
        p.ioBufVaddr = r.u64();
        p.ioRotor = r.u32();
        p.waitingForChild = r.b();
        p.pendingChildExits = r.u32();
        p.blockedOnTty = int32_t(r.i64());
        p.wakePending = r.u32();
        p.userChunks = r.u64();
    }

    // Scheduler.
    expect(r.u32(), curProc.size(), "cpu count");
    for (Pid &pid : curProc)
        pid = Pid(int32_t(r.i64()));
    runQueue.clear();
    const uint64_t nrq = r.u64();
    for (uint64_t i = 0; i < nrq; ++i)
        runQueue.push_back(Pid(int32_t(r.i64())));
    rqSkips.clear();
    const uint64_t nsk = r.u64();
    for (uint64_t i = 0; i < nsk; ++i)
        rqSkips.push_back(r.u32());

    // Locks.
    expect(r.u32(), locks.size(), "lock table size");
    for (LockState &l : locks) {
        l.heldByCpu = int32_t(r.i64());
        l.spinMask = r.u64();
        l.napWaiters = r.u32();
        l.nextTicket = r.u32();
        l.nowServing = r.u32();
        l.grantedTo = int32_t(r.i64());
        l.waitQueue.clear();
        const uint32_t nq = r.u32();
        if (nq > locks.size() + procs.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "lock wait queue implausibly long (%u)", nq);
        for (uint32_t i = 0; i < nq; ++i)
            l.waitQueue.push_back(r.u32());
        l.rcuReaders = r.u32();
    }
    nUserLocks = r.u32();

    // Images (registered at construction; contents must agree).
    expect(r.u32(), images.size(), "image count");
    for (Image &img : images) {
        img.id = r.u32();
        img.name = r.str();
        img.textPages = r.u32();
    }

    // Text page cache.
    pageCache.clear();
    const uint64_t npc = r.u64();
    for (uint64_t i = 0; i < npc; ++i) {
        const uint64_t key = r.u64();
        pageCache[key] = r.u64();
    }
    textLru.clear();
    const uint64_t nlru = r.u64();
    for (uint64_t i = 0; i < nlru; ++i)
        textLru.push_back(r.u64());
    textRef.clear();
    const uint64_t nref = r.u64();
    for (uint64_t i = 0; i < nref; ++i) {
        const uint64_t key = r.u64();
        textRef[key] = r.b();
    }
    textMappers.clear();
    const uint64_t nmap = r.u64();
    for (uint64_t i = 0; i < nmap; ++i) {
        const uint64_t key = r.u64();
        // Guarded counts: a corrupt stream must not drive a huge
        // reserve() before the element reads would trip the bound.
        const uint64_t cnt = r.countU64(16);
        auto &mappers = textMappers[key];
        mappers.reserve(cnt);
        for (uint64_t j = 0; j < cnt; ++j) {
            const Pid pid = Pid(int32_t(r.i64()));
            mappers.emplace_back(pid, r.u64());
        }
    }
    pfdatCursor = r.u64();
    clockCount = r.u64();
    pickCount = r.u64();

    // Physical memory.
    freePages.clear();
    const uint64_t nfree = r.countU64(8);
    freePages.reserve(nfree);
    for (uint64_t i = 0; i < nfree; ++i)
        freePages.push_back(r.u64());
    expect(r.u64(), pageHeldCode.size(), "pfdat array size");
    r.raw(pageHeldCode.data(), pageHeldCode.size());
    expect(r.u64(), pageRefs.size(), "page refcount array size");
    for (uint16_t &refs : pageRefs)
        refs = r.u16();

    // Shared memory.
    sharedMap.clear();
    const uint64_t nshm = r.u64();
    for (uint64_t i = 0; i < nshm; ++i) {
        const Addr vp = r.u64();
        sharedMap[vp] = r.u64();
    }
    sharedBrk = r.u64();

    // File system.
    bufcache.restoreState(r);
    disk.busyUntil = r.u64();
    disk.requests = r.u64();
    expect(r.u32(), ttys.size(), "tty session count");
    for (TtySession &t : ttys) {
        t.id = r.u32();
        t.pendingChars = r.u32();
        t.reader = Pid(int32_t(r.i64()));
        t.meanGap = r.u64();
    }

    // Timed events.
    auto &eq = QueueOpener<std::decay_t<decltype(events)>>::open(events);
    eq.clear();
    const uint64_t nev = r.countU64(17);
    eq.reserve(nev);
    for (uint64_t i = 0; i < nev; ++i) {
        Event e;
        e.when = r.u64();
        e.kind = Event::Kind(r.u8());
        e.payload = r.u64();
        eq.push_back(e);
    }

    // Per-CPU clock and OS-nesting context.
    expect(r.u32(), nextClockAt.size(), "clock schedule size");
    for (Cycle &at : nextClockAt)
        at = r.u64();
    expect(r.u32(), prevCtx.size(), "context stack size");
    for (sim::MonitorContext &c : prevCtx)
        loadContext(r, c);
    r.raw(prevCtxValid.data(), prevCtxValid.size());

    // Counters.
    nCtxSwitches = r.u64();
    nMigrations = r.u64();
    nForks = r.u64();
    nExits = r.u64();
    nUtlbFaults = r.u64();
    nReclaims = r.u64();
    nStrands = r.u64();
    nCodeRecycles = r.u64();
    for (auto &row : blockStats.invocations)
        for (uint64_t &v : row)
            v = r.u64();
    for (uint64_t &v : blockStats.bytes)
        v = r.u64();
    for (uint64_t &v : opCounts.count)
        v = r.u64();
}

} // namespace mpos::kernel
