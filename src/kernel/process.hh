/**
 * @file
 * Processes, page tables, and the application-behavior interface.
 *
 * A Process is a kernel object: state, scheduling fields, page table,
 * and the fixed per-slot kernel stack / user structure defined by the
 * layout. What the process *does* in user mode is supplied by an
 * AppBehavior (implemented in the workload library), which appends
 * virtual references and system-call markers to a UserScript whenever
 * the CPU runs dry.
 */

#ifndef MPOS_KERNEL_PROCESS_HH
#define MPOS_KERNEL_PROCESS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cpu.hh"
#include "sim/types.hh"

namespace mpos::util
{
class ByteWriter;
class ByteReader;
} // namespace mpos::util

namespace mpos::kernel
{

using sim::Addr;
using sim::Cycle;
using sim::CpuId;
using sim::Pid;
using sim::ScriptItem;

/** System calls of the synthetic kernel. */
enum class Sys : uint8_t
{
    Read,   ///< payload: file/tty id + byte count (+ block offset).
    Write,  ///< payload: file id + byte count (+ sync flag).
    Sginap, ///< Yield after failed user-lock spinning.
    Fork,
    Exec,   ///< payload: image id.
    Exit,
    Wait,
    Brk,    ///< payload: pages to grow.
    Other,  ///< Generic cheap system call.
};

/** Pack a file I/O syscall payload. */
inline uint64_t
ioPayload(uint32_t file_id, uint32_t bytes, uint32_t start_block = 0,
          bool sync = false)
{
    return (uint64_t(file_id) << 40) | (uint64_t(start_block) << 20) |
           (uint64_t(bytes) & 0xfffff) | (sync ? 1ULL << 63 : 0);
}

inline uint32_t ioFile(uint64_t p) { return uint32_t((p >> 40) & 0x7fffff); }
inline uint32_t ioStartBlock(uint64_t p) { return uint32_t((p >> 20) & 0xfffff); }
inline uint32_t ioBytes(uint64_t p) { return uint32_t(p & 0xfffff); }
inline bool ioSync(uint64_t p) { return (p >> 63) & 1; }

/** Virtual address map every process shares. */
struct VaMap
{
    static constexpr Addr textBase = 0x00400000;
    static constexpr Addr dataBase = 0x10000000;
    static constexpr Addr sharedBase = 0x50000000;
    static constexpr Addr stackBase = 0x7fff0000;
};

/** A page-table entry of the synthetic VM. */
struct Pte
{
    uint32_t ppage = 0;
    bool present = false;
    bool writable = false;
    bool cow = false;     ///< Copy-on-write: fault on store.
    bool text = false;    ///< Backed by an executable image page.
    bool shared = false;  ///< Shared-memory region page.
};

/** Process scheduling states. */
enum class ProcState : uint8_t
{
    Free,
    Ready,
    Running,
    Blocked,
    Zombie,
};

class Process;

/**
 * Builder the kernel hands to an AppBehavior to collect the next chunk
 * of user execution. All addresses are virtual.
 */
class UserScript
{
  public:
    explicit UserScript(std::vector<ScriptItem> &sink) : out(sink) {}

    /** Fetch the instruction line containing vaddr. */
    void
    ifetch(Addr vaddr)
    {
        ScriptItem it = ScriptItem::ifetch(vaddr, sim::AddrSpace::Virtual);
        out.push_back(it);
    }

    void
    load(Addr vaddr)
    {
        out.push_back(ScriptItem::load(vaddr, sim::AddrSpace::Virtual));
    }

    void
    store(Addr vaddr)
    {
        out.push_back(ScriptItem::store(vaddr, sim::AddrSpace::Virtual));
    }

    void think(Cycle cycles) { out.push_back(ScriptItem::think(cycles)); }

    void
    syscall(Sys n, uint64_t payload = 0)
    {
        out.push_back(ScriptItem::mark(sim::MarkerOp::Syscall,
                                       uint64_t(n), payload));
    }

    void
    userLock(uint32_t lock_id)
    {
        out.push_back(ScriptItem::mark(sim::MarkerOp::UserLockAcquire,
                                       lock_id, 0));
    }

    void
    userUnlock(uint32_t lock_id)
    {
        out.push_back(ScriptItem::mark(sim::MarkerOp::UserLockRelease,
                                       lock_id, 0));
    }

    /**
     * Bulk append n virtual user references staged as parallel flat
     * arrays (structure of arrays): kinds[i] one of IFetchLine /
     * Load / Store, addrs[i] its virtual address. One reserve plus a
     * tight expansion loop replaces n calls through the per-item
     * builders; the workload generators stage into a ReferenceBatch
     * and flush through here.
     */
    void
    appendRefs(const sim::ItemKind *kinds, const Addr *addrs, size_t n)
    {
        out.reserve(out.size() + n);
        for (size_t i = 0; i < n; ++i)
            out.push_back({kinds[i], sim::AddrSpace::Virtual,
                           sim::MarkerOp::PathDone, addrs[i], 0});
    }

    size_t size() const { return out.size(); }

  private:
    std::vector<ScriptItem> &out;
};

/**
 * User-mode behavior of one process. Implementations live in the
 * workload library; the kernel only calls chunk() when it needs more
 * user work for the process.
 */
class AppBehavior
{
  public:
    virtual ~AppBehavior() = default;

    /**
     * Append the next stretch of user execution (typically a few
     * hundred instructions). Must append at least one item.
     */
    virtual void chunk(Process &p, UserScript &s) = 0;
};

/**
 * Serializer for AppBehavior objects, supplied by the workload layer
 * (which knows the concrete behavior types) to Kernel::saveState /
 * restoreState. save() must emit a leading type tag that load() uses
 * to reconstruct the right class wired to the right shared workload
 * structures.
 */
class BehaviorCodec
{
  public:
    virtual ~BehaviorCodec() = default;

    virtual void save(util::ByteWriter &w, const AppBehavior &b) const = 0;
    virtual std::unique_ptr<AppBehavior> load(util::ByteReader &r) const = 0;
};

/** A process control block. */
class Process
{
  public:
    Pid pid = sim::invalidPid;
    uint32_t slot = 0;
    std::string name;
    ProcState state = ProcState::Free;

    CpuId lastCpu = 0;
    bool everRan = false;
    int32_t ticksLeft = 0;     ///< Clock ticks until preemption.
    Pid parent = sim::invalidPid;
    /** Decayed recent CPU consumption (SysV priority decay): low
     *  values mean interactive/yielding, high values mean CPU hogs. */
    uint64_t cpuShare = 0;
    Cycle runStart = 0;
    /** Total cycles this process has occupied a CPU. */
    uint64_t totalRan = 0;
    /** Times this process was dispatched. */
    uint64_t dispatches = 0;

    std::unique_ptr<AppBehavior> behavior;

    /** Work saved when the process was preempted or blocked. */
    sim::ScriptQueue savedScript;

    /** vpage -> pte. */
    std::unordered_map<Addr, Pte> pageTable;

    uint32_t imageId = 0xffffffff;

    /** Base of the I/O copy buffers in the data region. */
    Addr ioBufVaddr = VaMap::dataBase;
    /** Rotates read/write targets across a few buffer pages. */
    uint32_t ioRotor = 0;

    bool waitingForChild = false;
    uint32_t pendingChildExits = 0;
    /** Tty session this process is blocked reading from, or -1. */
    int32_t blockedOnTty = -1;
    /** Wakeups that arrived before the matching sleep marker ran. */
    uint32_t wakePending = 0;

    /** Behavior-visible progress counter. */
    uint64_t userChunks = 0;

    Pte *
    findPte(Addr vpage)
    {
        auto it = pageTable.find(vpage);
        return it == pageTable.end() ? nullptr : &it->second;
    }

    void
    resetForReuse()
    {
        state = ProcState::Free;
        behavior.reset();
        savedScript.clear();
        pageTable.clear();
        waitingForChild = false;
        pendingChildExits = 0;
        blockedOnTty = -1;
        wakePending = 0;
        everRan = false;
        userChunks = 0;
        parent = sim::invalidPid;
        cpuShare = 0;
        runStart = 0;
    }
};

/**
 * Hooks the workload installs to react to process lifecycle events.
 */
class KernelClient
{
  public:
    virtual ~KernelClient() = default;

    /** A fork created child; install child.behavior here. */
    virtual void onFork(Process &parent, Process &child) = 0;

    /** A process finished (entered Zombie state). */
    virtual void onProcExit(Process &p) { (void)p; }
};

} // namespace mpos::kernel

#endif // MPOS_KERNEL_PROCESS_HH
