/**
 * @file
 * Physical image of the synthetic kernel: the text segment (a registry
 * of named routines at fixed physical addresses) and the static data
 * segment holding every structure of the paper's Table 3 at the
 * paper's sizes.
 *
 * The text map doubles as the symbol table used for attribution
 * (Figure 5 plots Dispos misses against these addresses) and the data
 * map as the structure map behind Figure 8.
 */

#ifndef MPOS_KERNEL_LAYOUT_HH
#define MPOS_KERNEL_LAYOUT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace mpos::kernel
{

using sim::Addr;

using RoutineId = uint16_t;
constexpr RoutineId invalidRoutine = 0xffff;

/** Functional group a routine belongs to (Table 5 categories). */
enum class RoutineGroup : uint8_t
{
    RunQueueMgmt,   ///< The seven run-queue management routines.
    LowLevelExc,    ///< Assembly exception prologue/epilogue stages.
    RdWrSetup,      ///< Recognition/setup of read and write syscalls.
    BlockOp,        ///< bcopy / bclear / pfdat traversal kernels.
    FileSystem,
    VirtualMemory,
    Driver,
    Syscall,
    Interrupt,
    Synchronization,
    Idle,
    Other,
};

/** One kernel routine: a named, fixed range of kernel text. */
struct Routine
{
    std::string name;
    Addr textBase = 0;
    uint32_t textBytes = 0;
    RoutineGroup group = RoutineGroup::Other;
};

/** Kernel data structures distinguished by the analysis (Table 3). */
enum class KStruct : uint8_t
{
    KernelStack,   ///< 4096 B per process.
    Pcb,           ///< 240 B register-save area of the user structure.
    Eframe,        ///< 172 B exception frame of the user structure.
    URest,         ///< 3684 B rest of the user structure.
    ProcTable,     ///< 46080 B process table.
    Pfdat,         ///< 210944 B physical page descriptors.
    Buffer,        ///< 17408 B buffer-cache headers.
    Inode,         ///< 68608 B in-core inode table.
    RunQueue,      ///< 24 B run queue header.
    FreePgBuck,    ///< 3072 B free-page hash buckets.
    HiNdproc,      ///< Scheduler decision flag.
    Callout,       ///< Alarm/timeout table (protected by Calock).
    PageTableHeap, ///< Per-process page tables in the kernel heap.
    BufData,       ///< Buffer-cache data pages.
    KernelText,
    UserPage,      ///< Physical pages belonging to applications.
    Other,
};

constexpr uint32_t numKStructs = 17;

/** Name of a KStruct for reports. */
const char *kstructName(KStruct s);

/** Configuration of the synthetic kernel image. */
struct LayoutConfig
{
    uint32_t maxProcs = 64;
    /**
     * Lay out the hottest kernel routines contiguously from address 0
     * so they pack into the bottom I-cache image with minimal mutual
     * conflict -- the basic-block placement optimization the paper
     * proposes in Section 4.2.1 (we apply it at routine granularity).
     */
    bool optimizedTextLayout = false;
    uint32_t numBuffers = 256;   ///< 68 B header + 4 KB data each.
    uint32_t numInodes = 256;    ///< 268 B each => 68608 B.
    uint32_t pageBytes = 4096;
    uint64_t memBytes = 32ULL * 1024 * 1024;
    uint32_t lineBytes = 16;
};

/**
 * The assembled physical image. All addresses are physical; the kernel
 * runs unmapped (MIPS kseg0 style).
 */
class KernelLayout
{
  public:
    explicit KernelLayout(const LayoutConfig &cfg);

    /// @name Text segment
    /// @{
    /** Look up a routine id by name; fatal if unknown. */
    RoutineId routine(const std::string &name) const;
    const Routine &routineInfo(RoutineId id) const;
    uint32_t numRoutines() const { return uint32_t(routines.size()); }
    Addr textBase() const { return 0; }
    Addr textEnd() const { return textLimit; }
    /** Routine containing a text address, or invalidRoutine. */
    RoutineId routineAt(Addr addr) const;
    /// @}

    /// @name Data segment: Table 3 structures
    /// @{
    Addr runQueueAddr() const { return runQueueBase; }
    Addr hiNdprocAddr() const { return hiNdprocBase; }
    Addr freePgBuckAddr(uint32_t bucket) const;
    Addr procTableAddr(uint32_t slot) const;
    Addr pfdatAddr(uint64_t page) const;
    Addr bufHeaderAddr(uint32_t buf) const;
    Addr bufDataAddr(uint32_t buf) const;
    Addr inodeAddr(uint32_t ino) const;
    Addr calloutAddr(uint32_t slot) const;
    Addr kernelStackAddr(uint32_t slot) const;  ///< Per-process.
    Addr pcbAddr(uint32_t slot) const;          ///< Per-process.
    Addr eframeAddr(uint32_t slot) const;       ///< Per-process.
    Addr uRestAddr(uint32_t slot) const;        ///< Per-process.
    Addr pageTableAddr(uint32_t slot) const;    ///< Per-process.
    /// @}

    /** Size in bytes of one process-table entry. */
    uint32_t procEntryBytes() const { return procEntrySize; }
    /** Size in bytes of one pfdat descriptor. */
    uint32_t pfdatEntryBytes() const { return pfdatEntrySize; }
    /** Size in bytes of one buffer header. */
    uint32_t bufHeaderBytes() const { return bufHeaderSize; }
    /** Size in bytes of one in-core inode. */
    uint32_t inodeBytes() const { return inodeSize; }

    /** First physical page available for application memory. */
    uint64_t firstUserPage() const { return userPoolFirst; }
    /** Number of physical pages in the application pool. */
    uint64_t userPoolPages() const { return userPoolCount; }

    /** Classify a physical address (Figure 8 structure map). */
    KStruct structAt(Addr addr) const;

    const LayoutConfig &config() const { return cfg; }

    /** Total bytes of each aggregate structure (Table 3 check). */
    uint64_t procTableBytes() const;
    uint64_t pfdatBytes() const;
    uint64_t bufHeadersBytes() const;
    uint64_t inodeTableBytes() const;

  private:
    RoutineId addRoutine(const std::string &name, uint32_t bytes,
                         RoutineGroup group);
    void buildText();
    void buildTextOptimized();
    void buildData();

    LayoutConfig cfg;
    std::vector<Routine> routines;
    /** name -> id index for routine(); built by addRoutine(). */
    std::unordered_map<std::string, RoutineId> byName;
    Addr textLimit = 0;

    // Data segment bases.
    Addr runQueueBase = 0;
    Addr hiNdprocBase = 0;
    Addr freePgBuckBase = 0;
    Addr procTableBase = 0;
    Addr pfdatBase = 0;
    Addr bufHeaderBase = 0;
    Addr inodeBase = 0;
    Addr calloutBase = 0;
    Addr perProcBase = 0;   // kernel stack + ustruct, per slot
    Addr pageTableBase = 0;
    Addr bufDataBase = 0;
    Addr dataLimit = 0;

    uint32_t procEntrySize = 0;
    uint32_t pfdatEntrySize = 0;
    uint32_t bufHeaderSize = 0;
    uint32_t inodeSize = 0;
    uint64_t pfdatEntries = 0;

    uint64_t userPoolFirst = 0;
    uint64_t userPoolCount = 0;
};

} // namespace mpos::kernel

#endif // MPOS_KERNEL_LAYOUT_HH
