/**
 * @file
 * The synthetic multiprocessor kernel: an sim::Executor that schedules
 * processes, services system calls, TLB faults and interrupts, and
 * produces the exact kernel reference streams the paper measures.
 *
 * Every kernel operation is rendered as a script of instruction-line
 * fetches through the kernel text map and data touches on the Table 3
 * structures, so the machine's caches see the same kind of address
 * stream IRIX generated on the 4D/340. Dynamic decisions (scheduling,
 * lock spins, blocking) happen at marker execution time; everything
 * else is laid down when a path is built.
 */

#ifndef MPOS_KERNEL_KERNEL_HH
#define MPOS_KERNEL_KERNEL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "kernel/fs.hh"
#include "kernel/layout.hh"
#include "kernel/locks.hh"
#include "kernel/process.hh"
#include "sim/machine.hh"
#include "util/rng.hh"

namespace mpos::kernel
{

/** How block operations access memory (Section 4.2.2 optimizations). */
enum class BlockOpMode : uint8_t
{
    Normal,   ///< Through the caches (the measured machine).
    Bypass,   ///< Cache-bypassing block transfers.
    Prefetch, ///< Latency hidden by prefetching; caches still filled.
};

/** Size classes of block operations (Table 7). */
enum class BlockClass : uint8_t
{
    FullPage,
    RegularFragment,
    IrregularChunk,
};

/** Kinds of block operations (Table 6). */
enum class BlockKind : uint8_t { Copy, Clear, Traverse };

/** Aggregated block-operation bookkeeping for Tables 6 and 7. */
struct BlockOpStats
{
    /** invocations[kind][class] */
    uint64_t invocations[3][3] = {};
    uint64_t bytes[3] = {};

    void
    record(BlockKind k, BlockClass c, uint64_t n)
    {
        ++invocations[unsigned(k)][unsigned(c)];
        bytes[unsigned(k)] += n;
    }

    uint64_t
    totalInvocations(BlockKind k) const
    {
        const auto &row = invocations[unsigned(k)];
        return row[0] + row[1] + row[2];
    }
};

/** An executable image (shared text). */
struct Image
{
    uint32_t id = 0;
    std::string name;
    uint32_t textPages = 0;
};

/** Kernel tuning knobs. */
struct KernelConfig
{
    LayoutConfig layout;
    uint32_t maxUserLocks = 32;

    Cycle diskLatency = 70000;    ///< ~2 ms at 33 MHz (scaled).
    Cycle diskPerBlock = 5000;    ///< Transfer time per 4 KB block.

    Cycle spinGap = 30;           ///< Cycles between spin polls.
    uint32_t userLockSpins = 20;  ///< Polls before sginap (paper).

    bool affinitySched = false;   ///< Cache-affinity scheduling ablation.
    uint32_t affinityScanDepth = 4;
    BlockOpMode blockOpMode = BlockOpMode::Normal;

    /**
     * Physical pages usable by applications; 0 = the whole pool. A
     * smaller pool creates the memory pressure that drives page
     * reclaim and code-page reallocation (Inval misses).
     */
    uint64_t userPoolPages = 1600;
    uint32_t reclaimBatch = 12;      ///< Pages stolen per reclaim.
    uint32_t reclaimScanEntries = 384; ///< Pfdat descriptors swept.
    uint32_t freeLowWater = 40;

    int32_t quantumTicks = 2;     ///< Scheduler quantum in clock ticks.
    /** cpuShare below this counts as interactive (priority decay). */
    uint64_t interactiveShare = 200000;
    uint64_t rngSeed = 12345;
};

/** Per-OsOp invocation counters (Figure 2). */
struct OsOpCounts
{
    uint64_t count[sim::numOsOps] = {};
};

/** The kernel. */
class Kernel : public sim::Executor
{
  public:
    Kernel(sim::Machine &machine, const KernelConfig &cfg);

    /// @name Workload-facing configuration API
    /// @{
    /** Register an executable image of text_bytes of code. */
    uint32_t registerImage(const std::string &name, uint64_t text_bytes);

    /** Create a runnable process executing behavior. */
    Pid spawn(std::unique_ptr<AppBehavior> behavior, uint32_t image_id,
              const std::string &name);

    /** Allocate bytes of shared memory; returns its virtual base. */
    Addr shmAlloc(uint64_t bytes);

    /** Allocate a user-library lock id. */
    uint32_t allocUserLock();

    /** Register a tty session with a typist of the given mean gap. */
    uint32_t registerTty(Cycle mean_gap_cycles);

    /** File id a behavior can read from a tty session. */
    static uint32_t ttyFileId(uint32_t session) { return 0x400000 + session; }

    void setClient(KernelClient *c) { client = c; }
    void setLockListener(LockListener *l) { lockListener = l; }
    /// @}

    /// @name sim::Executor
    /// @{
    void refill(CpuId cpu) override;
    void marker(CpuId cpu, const ScriptItem &item) override;
    void fault(CpuId cpu, Addr vaddr, bool is_store,
               bool is_prot) override;
    void pollEvents(CpuId cpu, Cycle now) override;
    sim::Cycle nextEventAt(CpuId cpu) const override;
    /// @}

    /// @name Introspection for analysis and tests
    /// @{
    const KernelLayout &layout() const { return map; }
    const KernelConfig &config() const { return cfg; }
    Process &process(Pid pid) { return *procs[uint32_t(pid)]; }
    const Process &process(Pid pid) const { return *procs[uint32_t(pid)]; }
    uint32_t maxProcs() const { return uint32_t(procs.size()); }
    Pid runningOn(CpuId cpu) const { return curProc[cpu]; }
    uint32_t runQueueLength() const { return uint32_t(runQueue.size()); }
    uint64_t contextSwitches() const { return nCtxSwitches; }
    uint64_t migrations() const { return nMigrations; }
    uint64_t forks() const { return nForks; }
    uint64_t exits() const { return nExits; }
    uint64_t utlbFaults() const { return nUtlbFaults; }
    uint64_t pageReclaims() const { return nReclaims; }
    uint64_t codePageRecycles() const { return nCodeRecycles; }
    /** Times a process was descheduled while holding a user lock. */
    uint64_t lockHolderPreemptions() const { return nStrands; }
    const BlockOpStats &blockOps() const { return blockStats; }
    const OsOpCounts &osOpCounts() const { return opCounts; }
    const LockState &lockState(uint32_t id) const { return locks[id]; }
    uint32_t numLocks() const { return uint32_t(locks.size()); }
    /**
     * Human-readable lock table and per-CPU process state, for the
     * watchdog's diagnostic dump (installed as its provider at
     * construction when the machine has a watchdog).
     */
    std::string describeSyncState() const;
    uint32_t numUserLocks() const { return nUserLocks; }
    uint64_t freePageCount() const { return freePages.size(); }
    uint64_t diskRequests() const { return disk.requests; }
    /// @}

    /// @name Snapshot save/restore
    /// Serializes the whole kernel object graph: process table (with
    /// behaviors, via the workload-supplied codec), scheduler queues,
    /// lock table, VM (page tables, free list, text page cache,
    /// shared map), file system (buffer cache, disk, ttys), the timed
    /// event queue, per-CPU clock/context nesting state, the RNG, and
    /// every counter. Scratch buffers (chunkBuf, the lazily built
    /// idle chunk) are rebuilt on demand and deliberately excluded.
    /// The target kernel must have been built from the same config;
    /// structural mismatches raise util::SimError(SnapshotCorrupt).
    /// @{
    void saveState(util::ByteWriter &w, const BehaviorCodec &codec) const;
    void restoreState(util::ByteReader &r, const BehaviorCodec &codec);
    /// @}

  private:
    using Script = std::vector<ScriptItem>;

    /// @name Script emission helpers
    /// @{
    void emitText(Script &s, RoutineId r, double f0 = 0.0,
                  double f1 = 1.0);
    void emitTextByName(Script &s, const char *name, double f0 = 0.0,
                        double f1 = 1.0);
    void emitTouch(Script &s, Addr addr, uint32_t bytes, bool write);
    void emitLock(Script &s, uint32_t lock_id);
    void emitUnlock(Script &s, uint32_t lock_id);
    /** Read-mostly acquire/release: the RCU read path on managed locks
     *  under LockPolicy::Rcu, a plain exclusive lock otherwise. */
    void emitLockShared(Script &s, uint32_t lock_id);
    void emitUnlockShared(Script &s, uint32_t lock_id);
    void emitPrologue(Script &s, Process &p);
    void emitEpilogue(Script &s, Process &p);
    void emitBcopy(Script &s, Addr src, Addr dst, uint32_t bytes,
                   BlockClass cls);
    void emitBclear(Script &s, Addr dst, uint32_t bytes, BlockClass cls);
    void emitBlockRef(Script &s, Addr addr, bool write);
    /// @}

    /// @name Path builders
    /// @{
    Script pathUtlbFault(Process &p, Addr vpage, const Pte &pte);
    Script pathVmFault(CpuId cpu, Process &p, Addr vaddr, bool is_store,
                       bool is_prot);
    Script pathSyscall(CpuId cpu, Process &p, Sys n, uint64_t payload);
    void bodyRead(Script &s, CpuId cpu, Process &p, uint64_t payload);
    void bodyWrite(Script &s, CpuId cpu, Process &p, uint64_t payload);
    void bodyTtyRead(Script &s, Process &p, uint32_t session,
                     uint32_t bytes);
    void bodyFork(Script &s, CpuId cpu, Process &p);
    void bodyExec(Script &s, CpuId cpu, Process &p, uint32_t image_id);
    void bodyExit(Script &s, CpuId cpu, Process &p);
    void bodyWait(Script &s, Process &p);
    void bodyBrk(Script &s, CpuId cpu, Process &p, uint32_t pages);
    void bodySginap(Script &s, Process &p);
    void bodyOther(Script &s, CpuId cpu, Process &p);
    /** Kernel entry of a futex wait: syscall overhead ending in the
     *  customFutexWait marker that blocks (or returns if raced). */
    Script pathFutexWait(Process &p, uint32_t lock_id);
    Script pathClockInterrupt(CpuId cpu);
    Script pathDiskInterrupt(CpuId cpu, Pid sleeper);
    Script pathTtyInterrupt(CpuId cpu, uint32_t session);
    /** Run-queue requeue + pick sequence ending in a Resched marker. */
    void emitReschedSeq(Script &s);
    /// @}

    /// @name VM
    /// @{
    /**
     * Allocate a physical page, emitting allocation references (and a
     * reclaim sweep under memory pressure) into s.
     */
    uint64_t allocPage(Script &s, CpuId cpu);
    void freePage(Script &s, uint64_t ppage);
    /** Drop one reference; frees the page when the count hits zero. */
    void releasePage(Script &s, uint64_t ppage);
    /** Release all private resident pages of p, sorted by vpage so the
     *  resulting free-list order is hash-layout independent. */
    void releasePrivatePages(Script &s, Process &p);
    void reclaimPages(Script &s, CpuId cpu);
    /**
     * Make vaddr resident for process p, emitting any allocation or
     * copy work into s; returns the physical page.
     */
    uint64_t ensureResident(Script &s, CpuId cpu, Process &p, Addr vaddr,
                            bool for_write);
    /// @}

    /// @name Marker handlers
    /// @{
    void onOsEnter(CpuId cpu, sim::OsOp op);
    void onOsExit(CpuId cpu);
    /**
     * Kernel spinlock acquire under the machine's lock policy. `state`
     * is the policy's resume argument carried in the marker's arg2:
     * 0 on the first attempt always; Ticket re-polls carry ticket+1,
     * MCS re-polls carry 1 (enqueued). TestAndSet ignores it.
     */
    void onLockAcquire(CpuId cpu, uint32_t lock_id, uint64_t state);
    void onLockRelease(CpuId cpu, uint32_t lock_id);
    void onLockAcquireShared(CpuId cpu, uint32_t lock_id);
    void onLockReleaseShared(CpuId cpu, uint32_t lock_id);
    void onUserLockAcquire(CpuId cpu, uint32_t lock_id, uint32_t spins);
    void onUserLockRelease(CpuId cpu, uint32_t lock_id);
    /** Common success bookkeeping of a kernel-lock acquire; charges
     *  the policy's transport event, reports logical AcquireSuccess. */
    void wonKernelLock(CpuId cpu, uint32_t lock_id, uint32_t waiters,
                       sim::LockEvent transport_ev);
    /** Futex-style user lock: block the caller until release wakes it
     *  (re-checks the lock word first, closing the lost-wakeup race). */
    void onFutexWait(CpuId cpu, uint32_t lock_id);
    void onSyscall(CpuId cpu, Sys n, uint64_t payload);
    void onSleepDisk(CpuId cpu, Cycle wake_at);
    void onBlockWait(CpuId cpu);
    void onBlockTty(CpuId cpu, uint32_t session);
    void onResched(CpuId cpu);
    void onIdlePoll(CpuId cpu);
    /// @}

    /// @name Scheduling
    /// @{
    Pid pickNext(CpuId cpu);
    void makeReady(Pid pid);
    void enqueueReady(Pid pid);
    void enterIdle(CpuId cpu);
    void switchTo(CpuId cpu, Pid next);
    /// @}

    /** Deliver a due global event to cpu. Returns true if one fired. */
    bool deliverGlobalEvent(CpuId cpu, Cycle now);

    sim::Machine &m;
    KernelConfig cfg;
    KernelLayout map;
    KernelClient *client = nullptr;
    LockListener *lockListener = nullptr;
    /** Fault-injection plan; null unless the machine has one. */
    sim::FaultPlan *fp = nullptr;
    /** Metrics engine; null unless the machine has one (null gate). */
    sim::trace::Metrics *mx = nullptr;
    /** Routine profiler; null unless the machine has one (null gate). */
    sim::trace::Profiler *pf = nullptr;
    util::Rng rng;

    /** Scratch buffer reused by refill() for user chunk generation. */
    Script chunkBuf;
    /** The (constant) idle-loop chunk, built once on first idle. */
    Script idleChunk;

    std::vector<std::unique_ptr<Process>> procs;
    std::vector<Pid> curProc;          ///< Per CPU; invalidPid = idle.
    std::deque<Pid> runQueue;
    std::vector<uint32_t> rqSkips;     ///< Affinity aging per queue slot.

    std::vector<LockState> locks;
    uint32_t nUserLocks = 0;

    std::vector<Image> images;
    /** (imageId << 32 | image vpage index) -> resident ppage. */
    std::unordered_map<uint64_t, uint64_t> pageCache;
    /** FIFO of reclaimable text pages (key into pageCache). */
    std::deque<uint64_t> textLru;
    /** Second-chance (clock) reference bits for cached text pages. */
    std::unordered_map<uint64_t, bool> textRef;
    /** Which (pid, vpage) map each cached text page (for steal). */
    std::unordered_map<uint64_t, std::vector<std::pair<Pid, Addr>>>
        textMappers;
    /** Round-robin cursor of the pfdat reclaim sweep. */
    uint64_t pfdatCursor = 0;
    /** Clock ticks serviced (for periodic schedcpu work). */
    uint64_t clockCount = 0;
    /** Dispatch counter for the anti-starvation rule. */
    uint64_t pickCount = 0;
    std::vector<uint64_t> freePages;
    /** Per physical page: 1 if it last held code. */
    std::vector<uint8_t> pageHeldCode;
    /** Per physical page reference counts (COW sharing). */
    std::vector<uint16_t> pageRefs;
    /** Reusable victim buffer for releasePrivatePages (not state). */
    std::vector<std::pair<Addr, uint64_t>> reclaimScratch;

    /** Shared-memory region: vpage -> ppage (eager allocation). */
    std::unordered_map<Addr, uint64_t> sharedMap;
    Addr sharedBrk = VaMap::sharedBase;

    BufferCache bufcache;
    Disk disk;
    std::vector<TtySession> ttys;

    /** Global timed events. */
    struct Event
    {
        Cycle when;
        enum class Kind : uint8_t { DiskDone, TtyInput } kind;
        uint64_t payload; ///< pid or session id.
        bool operator>(const Event &o) const { return when > o.when; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;

    std::vector<Cycle> nextClockAt;    ///< Per CPU.
    std::vector<sim::MonitorContext> prevCtx; ///< OsEnter/Exit nesting.
    std::vector<uint8_t> prevCtxValid;

    // Statistics.
    uint64_t nCtxSwitches = 0;
    uint64_t nMigrations = 0;
    uint64_t nForks = 0;
    uint64_t nExits = 0;
    uint64_t nUtlbFaults = 0;
    uint64_t nReclaims = 0;
    uint64_t nStrands = 0;
    uint64_t nCodeRecycles = 0;
    BlockOpStats blockStats;
    OsOpCounts opCounts;

    static constexpr uint64_t customBlockWait = 1;
    static constexpr uint64_t customBlockTty = 2;
    static constexpr uint64_t customFutexWait = 3;
};

} // namespace mpos::kernel

#endif // MPOS_KERNEL_KERNEL_HH
