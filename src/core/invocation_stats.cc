#include "core/invocation_stats.hh"

namespace mpos::core
{

using sim::BusOp;
using sim::CacheKind;

InvocationStats::InvocationStats(uint32_t num_cpus)
    : cpus(num_cpus), nCpus(num_cpus)
{
}

void
InvocationStats::busTransaction(const BusRecord &rec)
{
    if (rec.op != BusOp::Read && rec.op != BusOp::ReadEx &&
        rec.op != BusOp::Upgrade) {
        return;
    }
    CpuTrack &t = cpus[rec.cpu];
    if (rec.cache == CacheKind::Instr)
        ++t.segI;
    else
        ++t.segD;
}

void
InvocationStats::closeAppInvocation(CpuTrack &t, Cycle cycle)
{
    (void)cycle;
    if (t.appCycles == 0 && t.appI == 0 && t.appD == 0 &&
        t.appUtlb == 0) {
        return;
    }
    ++app.count;
    app.cycles += t.appCycles;
    app.imisses += t.appI;
    app.dmisses += t.appD;
    utlbTotalInApp += t.appUtlb;
    t.appCycles = 0;
    t.appI = 0;
    t.appD = 0;
    t.appUtlb = 0;
}

void
InvocationStats::osEnter(Cycle cycle, CpuId cpu, OsOp op)
{
    CpuTrack &t = cpus[cpu];

    if (t.cur == Seg::App) {
        // Fold the partial application stretch into the accumulator.
        t.appCycles += cycle - t.segStart;
        t.appI += t.segI;
        t.appD += t.segD;
    } else if (t.cur == Seg::Idle) {
        ++idle.count;
        idle.cycles += cycle - t.segStart;
        idle.imisses += t.segI;
        idle.dmisses += t.segD;
    }

    if (op == OsOp::UtlbFault) {
        t.cur = Seg::Utlb;
    } else {
        // A full OS invocation (or the idle loop) ends the current
        // application invocation.
        closeAppInvocation(t, cycle);
        t.cur = op == OsOp::IdleLoop ? Seg::Idle : Seg::OsInv;
    }
    t.segStart = cycle;
    t.segI = 0;
    t.segD = 0;
}

void
InvocationStats::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    (void)op;
    CpuTrack &t = cpus[cpu];
    const Cycle dur = cycle - t.segStart;

    switch (t.cur) {
      case Seg::Utlb:
        ++utlb.count;
        utlb.cycles += dur;
        utlb.imisses += t.segI;
        utlb.dmisses += t.segD;
        ++t.appUtlb;
        break;
      case Seg::OsInv:
        ++osInv.count;
        osInv.cycles += dur;
        osInv.imisses += t.segI;
        osInv.dmisses += t.segD;
        histI.add(t.segI);
        histD.add(t.segD);
        histCycles.add(dur);
        break;
      case Seg::Idle:
        ++idle.count;
        idle.cycles += dur;
        idle.imisses += t.segI;
        idle.dmisses += t.segD;
        break;
      case Seg::App:
        // Unbalanced exit; ignore (can happen at trace start).
        break;
    }
    t.cur = Seg::App;
    t.segStart = cycle;
    t.segI = 0;
    t.segD = 0;
}

double
InvocationStats::utlbPerAppInvocation() const
{
    return app.count ? double(utlbTotalInApp) / double(app.count) : 0.0;
}

double
InvocationStats::cyclesBetweenOsInvocations(Cycle elapsed) const
{
    if (!osInv.count)
        return 0.0;
    return double(elapsed) * double(nCpus) / double(osInv.count);
}

} // namespace mpos::core
