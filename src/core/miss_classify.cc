#include "core/miss_classify.hh"

#include "util/logging.hh"

namespace mpos::core
{

using sim::BusOp;
using sim::OsOp;

const char *
missClassName(MissClass c)
{
    switch (c) {
      case MissClass::Cold: return "Cold";
      case MissClass::Dispos: return "Dispos";
      case MissClass::Dispap: return "Dispap";
      case MissClass::Sharing: return "Sharing";
      case MissClass::Inval: return "Inval";
      case MissClass::Uncached: return "Uncached";
      case MissClass::Unknown: return "Unknown";
    }
    return "?";
}

uint64_t
MissCounts::osITotal() const
{
    uint64_t n = 0;
    for (auto v : osI)
        n += v;
    return n;
}

uint64_t
MissCounts::osDTotal() const
{
    uint64_t n = 0;
    for (auto v : osD)
        n += v;
    return n;
}

uint64_t
MissCounts::osTotal() const
{
    return osITotal() + osDTotal();
}

uint64_t
MissCounts::appTotal() const
{
    uint64_t n = 0;
    for (uint32_t i = 0; i < numMissClasses; ++i)
        n += appI[i] + appD[i];
    return n;
}

uint64_t
MissCounts::total() const
{
    uint64_t n = osTotal() + appTotal();
    for (uint32_t i = 0; i < numMissClasses; ++i)
        n += idleI[i] + idleD[i];
    return n;
}

MissClassifier::MissClassifier(uint32_t num_cpus, uint64_t mem_bytes,
                               uint32_t line_bytes)
    : nCpus(num_cpus), nLines(mem_bytes / line_bytes),
      lineBytes(line_bytes), appEpoch(num_cpus, 1)
{
    state.resize(size_t(num_cpus) * 2);
    for (auto &v : state)
        v.assign(nLines, 0);
}

uint32_t &
MissClassifier::slot(CpuId cpu, CacheKind kind, Addr line)
{
    const uint64_t idx = line / lineBytes;
    if (idx >= nLines)
        util::panic("classifier: line %llx beyond physical memory",
                    static_cast<unsigned long long>(line));
    return state[size_t(cpu) * 2 + (kind == CacheKind::Instr ? 0 : 1)]
                [idx];
}

void
MissClassifier::bump(const BusRecord &rec, MissClass cls, bool same)
{
    const unsigned c = unsigned(cls);
    const bool instr = rec.cache == CacheKind::Instr;
    switch (rec.ctx.mode) {
      case ExecMode::Kernel:
        (instr ? tally.osI : tally.osD)[c] += 1;
        if (same) {
            if (instr)
                ++tally.osDispossameI;
            else
                ++tally.osDispossameD;
        }
        break;
      case ExecMode::User:
        (instr ? tally.appI : tally.appD)[c] += 1;
        break;
      case ExecMode::Idle:
        (instr ? tally.idleI : tally.idleD)[c] += 1;
        break;
    }
}

void
MissClassifier::deliver(const BusRecord &rec, MissClass cls, bool same)
{
    bump(rec, cls, same);
    if (!sinks.empty()) {
        const ClassifiedMiss cm{rec, cls, same};
        for (auto *s : sinks)
            s->onMiss(cm);
    }
}

void
MissClassifier::classify(const BusRecord &rec)
{
    uint32_t &w = slot(rec.cpu, rec.cache, rec.lineAddr);
    MissClass cls;
    bool same = false;

    if (!(w & loadedBit)) {
        cls = MissClass::Cold;
    } else {
        switch (w & statusMask) {
          case stEvictedOs:
            cls = MissClass::Dispos;
            same = (w >> epochShift) ==
                   (appEpoch[rec.cpu] & 0x0fffffff);
            break;
          case stEvictedApp:
            cls = MissClass::Dispap;
            break;
          case stInvalSharing:
            cls = MissClass::Sharing;
            break;
          case stInvalRealloc:
            cls = MissClass::Inval;
            break;
          default:
            cls = MissClass::Unknown;
            break;
        }
    }
    w = loadedBit | stPresent;
    deliver(rec, cls, same);
}

void
MissClassifier::busTransaction(const BusRecord &rec)
{
    switch (rec.op) {
      case BusOp::Writeback:
        ++nWritebacks;
        return;
      case BusOp::UncachedRead:
      case BusOp::UncachedWrite:
        deliver(rec, MissClass::Uncached, false);
        return;
      case BusOp::Upgrade:
        // A write hit on a Shared line: the bus access exists because
        // the data is actively shared.
        deliver(rec, MissClass::Sharing, false);
        return;
      case BusOp::Read:
      case BusOp::ReadEx:
        classify(rec);
        return;
    }
}

void
MissClassifier::evict(CpuId cpu, CacheKind kind, Addr line,
                      const sim::MonitorContext &by)
{
    uint32_t &w = slot(cpu, kind, line);
    const uint32_t loaded = w & loadedBit;
    const uint32_t status = by.isOs() ? stEvictedOs : stEvictedApp;
    w = loaded | status |
        ((appEpoch[cpu] & 0x0fffffff) << epochShift);
}

void
MissClassifier::invalSharing(CpuId cpu, CacheKind kind, Addr line)
{
    uint32_t &w = slot(cpu, kind, line);
    w = (w & loadedBit) | stInvalSharing;
}

void
MissClassifier::invalPageRealloc(CpuId cpu, Addr line)
{
    uint32_t &w = slot(cpu, CacheKind::Instr, line);
    w = (w & loadedBit) | stInvalRealloc;
}

void
MissClassifier::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    (void)cycle;
    (void)op;
    // Returning toward the application starts a new epoch: any block
    // the OS displaced before this point can no longer be Dispossame.
    ++appEpoch[cpu];
}

} // namespace mpos::core
