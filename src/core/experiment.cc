#include "core/experiment.hh"

#include <chrono>

#include "core/warmcache.hh"
#include "sim/phase.hh"
#include "sim/snapshot/container.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "workload/wstate.hh"

namespace mpos::core
{

ExperimentConfig
Experiment::resolvedConfig(const ExperimentConfig &config)
{
    ExperimentConfig cfg = config;
    // The kernel layout must describe the same machine.
    cfg.kernelCfg.layout.memBytes = cfg.machine.memBytes;
    cfg.kernelCfg.layout.pageBytes = cfg.machine.pageBytes;
    cfg.kernelCfg.layout.lineBytes = cfg.machine.lineBytes;
    if (cfg.useRecommendedPool) {
        cfg.kernelCfg.userPoolPages =
            workload::Workload::recommendedPoolPages(cfg.kind);
    }
    return cfg;
}

Experiment::Experiment(const ExperimentConfig &config)
    : cfg(resolvedConfig(config))
{
    const uint32_t nlocks =
        kernel::numKernelLocks + cfg.kernelCfg.maxUserLocks;
    mach = std::make_unique<sim::Machine>(cfg.machine, nlocks);
    k = std::make_unique<kernel::Kernel>(*mach, cfg.kernelCfg);
    wl = workload::Workload::create(cfg.kind, *k, cfg.options);

    if (sim::Checker *chk = mach->checker()) {
        // The checker's TLB oracle: every entry used for translation
        // must agree with the kernel's page tables, and TLB-writable
        // implies PTE-writable and not pending a COW break.
        kernel::Kernel *kp = k.get();
        chk->setMappingValidator(
            [kp](sim::Pid pid, sim::Addr vpage, sim::Addr ppage,
                 bool writable) -> const char * {
                if (pid < 0 || uint32_t(pid) >= kp->maxProcs())
                    return "pid names no process slot";
                const kernel::Pte *pte =
                    kp->process(pid).findPte(vpage);
                if (!pte)
                    return "no page-table entry for the vpage";
                if (!pte->present)
                    return "page-table entry is not present";
                if (pte->ppage != ppage)
                    return "maps a different physical page";
                if (writable && !(pte->writable && !pte->cow))
                    return "writable in the TLB but read-only or COW "
                           "in the page table";
                return nullptr;
            });
    }

    classifier = std::make_unique<MissClassifier>(
        cfg.machine.numCpus, cfg.machine.memBytes,
        cfg.machine.lineBytes);
    attr = std::make_unique<Attribution>(k->layout());
    func = std::make_unique<FunctionalClass>();
    inv = std::make_unique<InvocationStats>(cfg.machine.numCpus);
    locks = std::make_unique<LockStats>(k->numLocks());
    resimRec = std::make_unique<ICacheResim>(cfg.machine.numCpus,
                                             cfg.machine.lineBytes);
}

Experiment::~Experiment() = default;

uint64_t
Experiment::warmKey() const
{
    return warmConfigHash(cfg); // cfg was resolved by the constructor
}

std::vector<uint8_t>
Experiment::saveSnapshot() const
{
    using sim::snapshot::Section;
    const workload::StateCodec codec(*wl);
    util::ByteWriter mw, kw, ww;
    mach->saveState(mw);
    k->saveState(kw, codec);
    wl->saveState(ww);
    std::vector<std::pair<Section, std::vector<uint8_t>>> sections;
    sections.emplace_back(Section::Machine, mw.take());
    sections.emplace_back(Section::Kernel, kw.take());
    sections.emplace_back(Section::Workload, ww.take());
    return sim::snapshot::pack(warmKey(), std::move(sections));
}

void
Experiment::restoreSnapshot(const std::vector<uint8_t> &image)
{
    using sim::snapshot::Section;
    const auto parsed = sim::snapshot::parse(image);
    if (parsed.configHash() != warmKey())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot config hash %016llx does not match this "
                    "experiment's %016llx",
                    static_cast<unsigned long long>(parsed.configHash()),
                    static_cast<unsigned long long>(warmKey()));

    // Order matters: behaviors reconstructed during the kernel
    // restore point into the workload's shared structures, which must
    // already hold their restored values.
    {
        util::ByteReader r(parsed.section(Section::Workload));
        wl->restoreState(r);
    }
    {
        const workload::StateCodec codec(*wl);
        util::ByteReader r(parsed.section(Section::Kernel));
        k->restoreState(r, codec);
    }
    {
        util::ByteReader r(parsed.section(Section::Machine));
        mach->restoreState(r);
    }
}

void
Experiment::run()
{
    if (ran)
        util::panic("Experiment::run called twice");
    ran = true;

    sim::PhaseDeadline dl;
    dl.budgetSeconds = cfg.timeoutSeconds;
    dl.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cfg.timeoutSeconds));
    dl.totalCycles = cfg.warmupCycles + cfg.measureCycles;

    if (sim::trace::Metrics *mx = mach->metrics())
        mx->markPhase(mach->now(), "warmup");

    // Warm start: restore a memoized end-of-warmup image when one
    // exists, otherwise simulate the warmup and memoize it. Observers
    // attach only after this point, so the restored machine is
    // indistinguishable from one that simulated its own warmup.
    bool warmed = false;
    if (cfg.warmCache && cfg.warmupCycles) {
        const uint64_t key = warmKey();
        if (WarmStartCache::Image img = cfg.warmCache->lookup(key)) {
            restoreSnapshot(*img);
            warmed = true;
        }
    }
    if (!warmed) {
        dl.doneBefore = 0;
        sim::runPhase(*mach, cfg.warmupCycles, dl);
        if (cfg.warmCache && cfg.warmupCycles)
            cfg.warmCache->store(warmKey(), saveSnapshot());
    }

    // Snapshot warm state, then attach the measurement apparatus.
    baseAccount = mach->totalAccount();
    baseBlockOps = k->blockOps();
    for (uint32_t i = 0; i < sim::numOsOps; ++i)
        baseOsOps[i] = k->osOpCounts().count[i];
    baseKernelSyncOps = mach->sync().sumOps(kernel::numKernelLocks);

    if (cfg.collectMisses) {
        classifier->addSink(attr.get());
        classifier->addSink(func.get());
        if (cfg.collectResim) {
            classifier->addSink(resimRec.get());
            mach->monitor().attach(resimRec.get());
        }
        if (sim::trace::Profiler *pf = mach->profiler()) {
            profSink.pf = pf;
            classifier->addSink(&profSink);
        }
        mach->monitor().attach(classifier.get());
        mach->monitor().attach(inv.get());
    }
    k->setLockListener(locks.get());

    // The observability layer measures the measurement phase: the
    // profiler's cycle attribution restarts here (its miss feed only
    // starts now anyway), and the metrics timeline gets the boundary.
    if (sim::trace::Metrics *mx = mach->metrics())
        mx->markPhase(mach->now(), "measure");
    if (sim::trace::Profiler *pf = mach->profiler())
        pf->resetCycles(mach->now());

    const sim::Cycle start = mach->now();
    dl.doneBefore = cfg.warmupCycles;
    sim::runPhase(*mach, cfg.measureCycles, dl);
    measuredCycles = mach->now() - start;

    // Close the observability outputs at the measurement edge so
    // window arrays, profile spans and the trace file are complete.
    if (sim::trace::Metrics *mx = mach->metrics())
        mx->finish(mach->now());
    if (sim::trace::Profiler *pf = mach->profiler())
        pf->finish(mach->now());
    if (sim::trace::Tracer *tr = mach->tracer())
        tr->finish();

    // Final whole-machine sweep: every resident line, every cache's
    // packed-tag integrity, every TLB entry against the page tables.
    if (sim::Checker *chk = mach->checker())
        chk->checkAll(*mach);
}

sim::CycleAccount
Experiment::account() const
{
    sim::CycleAccount d = mach->totalAccount();
    for (unsigned m = 0; m < 3; ++m) {
        d.total[m] -= baseAccount.total[m];
        d.stall[m] -= baseAccount.stall[m];
    }
    return d;
}

kernel::BlockOpStats
Experiment::blockOps() const
{
    return blockOpDelta(k->blockOps(), baseBlockOps);
}

uint64_t
Experiment::osOpCount(sim::OsOp op) const
{
    return k->osOpCounts().count[unsigned(op)] -
           baseOsOps[unsigned(op)];
}

Table1Row
Experiment::table1() const
{
    return computeTable1(account(), classifier->counts(),
                         cfg.machine.busMissStall);
}

Table9Row
Experiment::table9() const
{
    return computeTable9(account(), classifier->counts(),
                         attr->migrationTotal(),
                         attr->blockOpMissesOf("bcopy") +
                             attr->blockOpMissesOf("bclear") +
                             attr->blockOpMissesOf("pfdat_scan"),
                         cfg.machine.busMissStall);
}

BlockOpReport
Experiment::blockOpReport() const
{
    return computeBlockOps(*attr, classifier->counts(), account(),
                           cfg.machine.busMissStall);
}

ApDisposReport
Experiment::apDispos() const
{
    return computeApDispos(classifier->counts());
}

SyncStallReport
Experiment::syncStallReport() const
{
    // The paper's Table 10 covers OS synchronization only, so the
    // user-library lock traffic is excluded here.
    const auto now = mach->sync().sumOps(kernel::numKernelLocks);
    SyncStallReport r;
    const sim::Cycle non_idle = account().nonIdle();
    if (!non_idle)
        return r;
    const uint64_t unc = now.uncachedOps -
                         baseKernelSyncOps.uncachedOps;
    const uint64_t cac = now.cachedOps - baseKernelSyncOps.cachedOps;
    r.uncachedPct = 100.0 *
                    double(unc * mach->sync().uncachedCyclesPerOp()) /
                    double(non_idle);
    r.cachedPct = 100.0 *
                  double(cac * mach->sync().cachedCyclesPerOp()) /
                  double(non_idle);
    return r;
}

} // namespace mpos::core
