#include "core/experiment.hh"

#include <algorithm>
#include <chrono>

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::core
{

namespace
{

/**
 * Run the machine for @a cycles with an optional host wall-clock
 * deadline. Machine::run(a); run(b) is equivalent to run(a + b), so
 * slicing never perturbs simulated events -- the timeout is pure
 * host-side policy, checked between slices (overshoot is bounded by
 * one slice).
 */
void
runWithDeadline(sim::Machine &m, sim::Cycle cycles, double budget_s,
                std::chrono::steady_clock::time_point deadline,
                sim::Cycle done_before, sim::Cycle total_cycles)
{
    if (budget_s <= 0) {
        m.run(cycles);
        return;
    }
    const sim::Cycle slice = std::max<sim::Cycle>(cycles / 64, 1);
    sim::Cycle left = cycles;
    while (left) {
        const sim::Cycle step = std::min(slice, left);
        m.run(step);
        left -= step;
        if (left && std::chrono::steady_clock::now() >= deadline) {
            util::raise(util::ErrCode::Timeout,
                        "experiment timed out after %.3f s "
                        "(%llu of %llu cycles)",
                        budget_s,
                        static_cast<unsigned long long>(
                            done_before + cycles - left),
                        static_cast<unsigned long long>(total_cycles));
        }
    }
}

} // namespace

Experiment::Experiment(const ExperimentConfig &config)
    : cfg(config)
{
    // The kernel layout must describe the same machine.
    cfg.kernelCfg.layout.memBytes = cfg.machine.memBytes;
    cfg.kernelCfg.layout.pageBytes = cfg.machine.pageBytes;
    cfg.kernelCfg.layout.lineBytes = cfg.machine.lineBytes;
    if (cfg.useRecommendedPool) {
        cfg.kernelCfg.userPoolPages =
            workload::Workload::recommendedPoolPages(cfg.kind);
    }

    const uint32_t nlocks =
        kernel::numKernelLocks + cfg.kernelCfg.maxUserLocks;
    mach = std::make_unique<sim::Machine>(cfg.machine, nlocks);
    k = std::make_unique<kernel::Kernel>(*mach, cfg.kernelCfg);
    wl = workload::Workload::create(cfg.kind, *k, cfg.options);

    if (sim::Checker *chk = mach->checker()) {
        // The checker's TLB oracle: every entry used for translation
        // must agree with the kernel's page tables, and TLB-writable
        // implies PTE-writable and not pending a COW break.
        kernel::Kernel *kp = k.get();
        chk->setMappingValidator(
            [kp](sim::Pid pid, sim::Addr vpage, sim::Addr ppage,
                 bool writable) -> const char * {
                if (pid < 0 || uint32_t(pid) >= kp->maxProcs())
                    return "pid names no process slot";
                const kernel::Pte *pte =
                    kp->process(pid).findPte(vpage);
                if (!pte)
                    return "no page-table entry for the vpage";
                if (!pte->present)
                    return "page-table entry is not present";
                if (pte->ppage != ppage)
                    return "maps a different physical page";
                if (writable && !(pte->writable && !pte->cow))
                    return "writable in the TLB but read-only or COW "
                           "in the page table";
                return nullptr;
            });
    }

    classifier = std::make_unique<MissClassifier>(
        cfg.machine.numCpus, cfg.machine.memBytes,
        cfg.machine.lineBytes);
    attr = std::make_unique<Attribution>(k->layout());
    func = std::make_unique<FunctionalClass>();
    inv = std::make_unique<InvocationStats>(cfg.machine.numCpus);
    locks = std::make_unique<LockStats>(k->numLocks());
    resimRec = std::make_unique<ICacheResim>(cfg.machine.numCpus,
                                             cfg.machine.lineBytes);
}

Experiment::~Experiment() = default;

void
Experiment::run()
{
    if (ran)
        util::panic("Experiment::run called twice");
    ran = true;

    const sim::Cycle total = cfg.warmupCycles + cfg.measureCycles;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cfg.timeoutSeconds));

    if (sim::trace::Metrics *mx = mach->metrics())
        mx->markPhase(mach->now(), "warmup");

    runWithDeadline(*mach, cfg.warmupCycles, cfg.timeoutSeconds,
                    deadline, 0, total);

    // Snapshot warm state, then attach the measurement apparatus.
    baseAccount = mach->totalAccount();
    baseBlockOps = k->blockOps();
    for (uint32_t i = 0; i < sim::numOsOps; ++i)
        baseOsOps[i] = k->osOpCounts().count[i];
    baseKernelSyncOps = mach->sync().sumOps(kernel::numKernelLocks);

    if (cfg.collectMisses) {
        classifier->addSink(attr.get());
        classifier->addSink(func.get());
        if (cfg.collectResim) {
            classifier->addSink(resimRec.get());
            mach->monitor().attach(resimRec.get());
        }
        if (sim::trace::Profiler *pf = mach->profiler()) {
            profSink.pf = pf;
            classifier->addSink(&profSink);
        }
        mach->monitor().attach(classifier.get());
        mach->monitor().attach(inv.get());
    }
    k->setLockListener(locks.get());

    // The observability layer measures the measurement phase: the
    // profiler's cycle attribution restarts here (its miss feed only
    // starts now anyway), and the metrics timeline gets the boundary.
    if (sim::trace::Metrics *mx = mach->metrics())
        mx->markPhase(mach->now(), "measure");
    if (sim::trace::Profiler *pf = mach->profiler())
        pf->resetCycles(mach->now());

    const sim::Cycle start = mach->now();
    runWithDeadline(*mach, cfg.measureCycles, cfg.timeoutSeconds,
                    deadline, cfg.warmupCycles, total);
    measuredCycles = mach->now() - start;

    // Close the observability outputs at the measurement edge so
    // window arrays, profile spans and the trace file are complete.
    if (sim::trace::Metrics *mx = mach->metrics())
        mx->finish(mach->now());
    if (sim::trace::Profiler *pf = mach->profiler())
        pf->finish(mach->now());
    if (sim::trace::Tracer *tr = mach->tracer())
        tr->finish();

    // Final whole-machine sweep: every resident line, every cache's
    // packed-tag integrity, every TLB entry against the page tables.
    if (sim::Checker *chk = mach->checker())
        chk->checkAll(*mach);
}

sim::CycleAccount
Experiment::account() const
{
    sim::CycleAccount d = mach->totalAccount();
    for (unsigned m = 0; m < 3; ++m) {
        d.total[m] -= baseAccount.total[m];
        d.stall[m] -= baseAccount.stall[m];
    }
    return d;
}

kernel::BlockOpStats
Experiment::blockOps() const
{
    return blockOpDelta(k->blockOps(), baseBlockOps);
}

uint64_t
Experiment::osOpCount(sim::OsOp op) const
{
    return k->osOpCounts().count[unsigned(op)] -
           baseOsOps[unsigned(op)];
}

Table1Row
Experiment::table1() const
{
    return computeTable1(account(), classifier->counts(),
                         cfg.machine.busMissStall);
}

Table9Row
Experiment::table9() const
{
    return computeTable9(account(), classifier->counts(),
                         attr->migrationTotal(),
                         attr->blockOpMissesOf("bcopy") +
                             attr->blockOpMissesOf("bclear") +
                             attr->blockOpMissesOf("pfdat_scan"),
                         cfg.machine.busMissStall);
}

BlockOpReport
Experiment::blockOpReport() const
{
    return computeBlockOps(*attr, classifier->counts(), account(),
                           cfg.machine.busMissStall);
}

ApDisposReport
Experiment::apDispos() const
{
    return computeApDispos(classifier->counts());
}

SyncStallReport
Experiment::syncStallReport() const
{
    // The paper's Table 10 covers OS synchronization only, so the
    // user-library lock traffic is excluded here.
    const auto now = mach->sync().sumOps(kernel::numKernelLocks);
    SyncStallReport r;
    const sim::Cycle non_idle = account().nonIdle();
    if (!non_idle)
        return r;
    const uint64_t unc = now.uncachedOps -
                         baseKernelSyncOps.uncachedOps;
    const uint64_t cac = now.cachedOps - baseKernelSyncOps.cachedOps;
    r.uncachedPct = 100.0 *
                    double(unc * mach->sync().uncachedCyclesPerOp()) /
                    double(non_idle);
    r.cachedPct = 100.0 *
                  double(cac * mach->sync().cachedCyclesPerOp()) /
                  double(non_idle);
    return r;
}

} // namespace mpos::core
