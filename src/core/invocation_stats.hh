/**
 * @file
 * Per-invocation statistics: the repeating execution pattern of
 * Figure 1 (application stretches interrupted by near-free UTLB
 * spikes and by full OS invocations) and the per-invocation miss and
 * cycle distributions of Figure 3.
 */

#ifndef MPOS_CORE_INVOCATION_STATS_HH
#define MPOS_CORE_INVOCATION_STATS_HH

#include <cstdint>
#include <vector>

#include "sim/monitor.hh"
#include "util/histogram.hh"

namespace mpos::core
{

using sim::BusRecord;
using sim::CpuId;
using sim::Cycle;
using sim::OsOp;

/** Mean cycles/misses of one segment kind. */
struct SegmentStats
{
    uint64_t count = 0;
    uint64_t cycles = 0;
    uint64_t imisses = 0;
    uint64_t dmisses = 0;

    double meanCycles() const
    {
        return count ? double(cycles) / double(count) : 0.0;
    }
    double meanI() const
    {
        return count ? double(imisses) / double(count) : 0.0;
    }
    double meanD() const
    {
        return count ? double(dmisses) / double(count) : 0.0;
    }
};

/** Observer producing Figures 1 and 3. */
class InvocationStats : public sim::MonitorObserver
{
  public:
    explicit InvocationStats(uint32_t num_cpus);

    /// @name MonitorObserver
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    void osExit(Cycle cycle, CpuId cpu, OsOp op) override;
    /// @}

    /** Full OS invocations (system calls, interrupts, non-UTLB TLB
     *  faults). */
    const SegmentStats &osInvocations() const { return osInv; }
    /** UTLB refill spikes. */
    const SegmentStats &utlbFaults() const { return utlb; }
    /** Application stretches between OS invocations. */
    const SegmentStats &appInvocations() const { return app; }
    /** Idle-loop stretches. */
    const SegmentStats &idleSegments() const { return idle; }

    /** Mean UTLB faults within one application invocation. */
    double utlbPerAppInvocation() const;

    /** Mean cycles between consecutive OS invocations on one CPU. */
    double cyclesBetweenOsInvocations(Cycle elapsed) const;

    const util::Log2Histogram &osInvIMissHist() const { return histI; }
    const util::Log2Histogram &osInvDMissHist() const { return histD; }
    const util::Log2Histogram &osInvCycleHist() const
    {
        return histCycles;
    }

  private:
    enum class Seg : uint8_t { App, Utlb, OsInv, Idle };

    struct CpuTrack
    {
        Seg cur = Seg::App;
        Cycle segStart = 0;
        uint64_t segI = 0;
        uint64_t segD = 0;
        // Accumulated application invocation (spans UTLB spikes).
        Cycle appCycles = 0;
        uint64_t appI = 0;
        uint64_t appD = 0;
        uint32_t appUtlb = 0;
    };

    void closeAppInvocation(CpuTrack &t, Cycle cycle);

    std::vector<CpuTrack> cpus;
    uint32_t nCpus;

    SegmentStats osInv, utlb, app, idle;
    uint64_t utlbTotalInApp = 0;

    util::Log2Histogram histI{24};
    util::Log2Histogram histD{24};
    util::Log2Histogram histCycles{30};
};

} // namespace mpos::core

#endif // MPOS_CORE_INVOCATION_STATS_HH
