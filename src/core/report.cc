#include "core/report.hh"

#include <cstdio>

namespace mpos::core
{

std::string
fmt1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

std::string
fmt2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

std::string
fmtCount(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    const size_t n = raw.size();
    for (size_t i = 0; i < n; ++i) {
        if (i && (n - i) % 3 == 0)
            out += ',';
        out += raw[i];
    }
    return out;
}

void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title.c_str());
}

void
shapeNote()
{
    std::printf("(Absolute numbers depend on the synthetic substrate; "
                "the paper's\n *shape* -- who wins, rough magnitudes, "
                "orderings -- is the target.)\n\n");
}

} // namespace mpos::core
