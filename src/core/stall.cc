#include "core/stall.hh"

namespace mpos::core
{

double
stallPct(uint64_t misses, sim::Cycle non_idle, sim::Cycle miss_stall)
{
    if (!non_idle)
        return 0.0;
    return 100.0 * double(misses) * double(miss_stall) /
           double(non_idle);
}

Table1Row
computeTable1(const sim::CycleAccount &acct, const MissCounts &mc,
              sim::Cycle miss_stall)
{
    Table1Row r;
    const double total = double(acct.all());
    const sim::Cycle non_idle = acct.nonIdle();
    if (total > 0) {
        r.userPct = 100.0 * double(acct.user()) / total;
        r.sysPct = 100.0 * double(acct.kernel()) / total;
        r.idlePct = 100.0 * double(acct.idle()) / total;
    }
    const uint64_t os = mc.osTotal();
    const uint64_t ap = mc.appTotal();
    if (os + ap)
        r.osMissFracPct = 100.0 * double(os) / double(os + ap);
    r.allMissStallPct = stallPct(os + ap, non_idle, miss_stall);
    r.osMissStallPct = stallPct(os, non_idle, miss_stall);
    const uint64_t induced =
        mc.appI[unsigned(MissClass::Dispos)] +
        mc.appD[unsigned(MissClass::Dispos)];
    r.osPlusInducedStallPct =
        stallPct(os + induced, non_idle, miss_stall);
    return r;
}

Table9Row
computeTable9(const sim::CycleAccount &acct, const MissCounts &mc,
              uint64_t migration_misses, uint64_t blockop_misses,
              sim::Cycle miss_stall)
{
    Table9Row r;
    const sim::Cycle non_idle = acct.nonIdle();
    const uint64_t os = mc.osTotal();
    const uint64_t instr = mc.osITotal();
    r.totalPct = stallPct(os, non_idle, miss_stall);
    r.instrPct = stallPct(instr, non_idle, miss_stall);
    r.migrationPct = stallPct(migration_misses, non_idle, miss_stall);
    r.blockOpPct = stallPct(blockop_misses, non_idle, miss_stall);
    r.restPct =
        r.totalPct - r.instrPct - r.migrationPct - r.blockOpPct;
    return r;
}

} // namespace mpos::core
