/**
 * @file
 * The paper's stall-time model: every bus access stalls the issuing
 * CPU for 35 cycles (a little over the zero-contention memory
 * latency), normalized to non-idle execution time. Produces the
 * percentage columns of Tables 1 and 9.
 */

#ifndef MPOS_CORE_STALL_HH
#define MPOS_CORE_STALL_HH

#include <cstdint>

#include "core/miss_classify.hh"
#include "sim/cpu.hh"

namespace mpos::core
{

/** Percentage of non-idle time spent stalled on the given misses. */
double stallPct(uint64_t misses, sim::Cycle non_idle,
                sim::Cycle miss_stall = 35);

/** Table 1 row. */
struct Table1Row
{
    double userPct = 0;
    double sysPct = 0;
    double idlePct = 0;
    double osMissFracPct = 0;       ///< OS misses / total misses.
    double allMissStallPct = 0;     ///< App + OS stall / non-idle.
    double osMissStallPct = 0;      ///< OS stall / non-idle.
    double osPlusInducedStallPct = 0; ///< + OS-induced app misses.
};

Table1Row computeTable1(const sim::CycleAccount &acct,
                        const MissCounts &mc,
                        sim::Cycle miss_stall = 35);

/** Table 9 row: decomposition of the OS miss stall. */
struct Table9Row
{
    double totalPct = 0;
    double instrPct = 0;
    double migrationPct = 0;
    double blockOpPct = 0;
    double restPct = 0;
};

Table9Row computeTable9(const sim::CycleAccount &acct,
                        const MissCounts &mc, uint64_t migration_misses,
                        uint64_t blockop_misses,
                        sim::Cycle miss_stall = 35);

} // namespace mpos::core

#endif // MPOS_CORE_STALL_HH
