#include "core/functional_class.hh"

namespace mpos::core
{

void
FunctionalClass::onMiss(const ClassifiedMiss &miss)
{
    const auto &rec = miss.rec;
    if (rec.ctx.mode != ExecMode::Kernel)
        return;
    if (rec.cache == CacheKind::Instr)
        ++imiss[unsigned(rec.ctx.op)];
    else
        ++dmiss[unsigned(rec.ctx.op)];
}

uint64_t
FunctionalClass::totalI() const
{
    uint64_t n = 0;
    for (auto v : imiss)
        n += v;
    return n;
}

uint64_t
FunctionalClass::totalD() const
{
    uint64_t n = 0;
    for (auto v : dmiss)
        n += v;
    return n;
}

} // namespace mpos::core
