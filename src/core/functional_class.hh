/**
 * @file
 * Functional classification of OS misses by the high-level operation
 * in progress (Table 8 / Figure 9) and the operation frequency mix
 * (Figure 2).
 */

#ifndef MPOS_CORE_FUNCTIONAL_CLASS_HH
#define MPOS_CORE_FUNCTIONAL_CLASS_HH

#include <cstdint>

#include "core/miss_classify.hh"

namespace mpos::core
{

using sim::numOsOps;
using sim::OsOp;

/** Misses per high-level OS operation. */
class FunctionalClass : public MissSink
{
  public:
    void onMiss(const ClassifiedMiss &miss) override;

    uint64_t iMisses(OsOp op) const { return imiss[unsigned(op)]; }
    uint64_t dMisses(OsOp op) const { return dmiss[unsigned(op)]; }

    /** Table 8 folds UTLB faults into the cheap TLB fault class. */
    uint64_t
    cheapTlbI() const
    {
        return imiss[unsigned(OsOp::UtlbFault)] +
               imiss[unsigned(OsOp::CheapTlbFault)];
    }
    uint64_t
    cheapTlbD() const
    {
        return dmiss[unsigned(OsOp::UtlbFault)] +
               dmiss[unsigned(OsOp::CheapTlbFault)];
    }

    uint64_t totalI() const;
    uint64_t totalD() const;

  private:
    uint64_t imiss[numOsOps] = {};
    uint64_t dmiss[numOsOps] = {};
};

} // namespace mpos::core

#endif // MPOS_CORE_FUNCTIONAL_CLASS_HH
