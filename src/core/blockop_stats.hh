/**
 * @file
 * Block-operation reports: Table 6 (misses and stall caused by block
 * copy, block clear, and pfdat traversal) and Table 7 (distribution of
 * block sizes by operation). Miss attribution comes from Attribution
 * (via the executing routine); invocation counts come straight from
 * the kernel's block-operation log.
 */

#ifndef MPOS_CORE_BLOCKOP_STATS_HH
#define MPOS_CORE_BLOCKOP_STATS_HH

#include "core/attribution.hh"
#include "core/stall.hh"
#include "kernel/kernel.hh"

namespace mpos::core
{

/** Table 6 row. */
struct BlockOpReport
{
    uint64_t copyMisses = 0;
    uint64_t clearMisses = 0;
    uint64_t traverseMisses = 0;
    double copyPctOfOsD = 0;
    double clearPctOfOsD = 0;
    double traversePctOfOsD = 0;
    double totalPctOfOsD = 0;
    double stallPctNonIdle = 0;
};

BlockOpReport computeBlockOps(const Attribution &attr,
                              const MissCounts &mc,
                              const sim::CycleAccount &acct,
                              sim::Cycle miss_stall = 35);

/** Table 7: size-class fractions for one operation kind. */
struct BlockSizeRow
{
    double fullPagePct = 0;
    double regularFragmentPct = 0;
    double irregularPct = 0;
    uint64_t invocations = 0;
};

BlockSizeRow blockSizes(const kernel::BlockOpStats &ops,
                        kernel::BlockKind kind);

/** Delta of two block-op stats snapshots (measurement - warmup). */
kernel::BlockOpStats blockOpDelta(const kernel::BlockOpStats &after,
                                  const kernel::BlockOpStats &before);

} // namespace mpos::core

#endif // MPOS_CORE_BLOCKOP_STATS_HH
