#include "core/resim.hh"

#include "sim/cache.hh"

namespace mpos::core
{

namespace
{

/** Per-CPU caches built by value: one allocation each (the ways),
 *  no unique_ptr indirection in the replay loop. */
std::vector<sim::Cache>
buildCaches(uint32_t n_cpus, uint64_t cache_bytes, uint32_t assoc,
            uint32_t line_bytes)
{
    std::vector<sim::Cache> caches;
    caches.reserve(n_cpus);
    for (uint32_t c = 0; c < n_cpus; ++c) {
        caches.emplace_back("resim" + std::to_string(c), cache_bytes,
                            assoc, line_bytes);
    }
    return caches;
}

} // namespace

ICacheResim::ICacheResim(uint32_t num_cpus, uint32_t line_bytes)
    : nCpus(num_cpus), lineBytes(line_bytes)
{
}

void
ICacheResim::onMiss(const ClassifiedMiss &miss)
{
    const auto &rec = miss.rec;
    if (rec.cache != CacheKind::Instr)
        return;
    // Reserve a large block on first use: the measured runs record
    // hundreds of thousands of events, and doubling through that
    // range copies the vector ~20 times.
    if (events.capacity() == 0)
        events.reserve(1u << 20);
    const bool os = rec.ctx.mode == ExecMode::Kernel;
    if (os)
        ++baseOs;
    events.push_back({uint32_t(rec.lineAddr / lineBytes),
                      uint8_t(rec.cpu), uint8_t(os ? 2 : 0), 0});
}

void
ICacheResim::flushPage(CpuId cpu, Addr page_addr, uint32_t page_bytes)
{
    if (events.capacity() == 0)
        events.reserve(1u << 20);
    // page_bytes == 0 encodes a full-cache flush.
    events.push_back({uint32_t(page_addr / lineBytes), uint8_t(cpu), 1,
                      uint16_t(page_bytes / lineBytes)});
}

ResimResult
ICacheResim::simulate(uint64_t cache_bytes, uint32_t assoc,
                      bool apply_invals) const
{
    auto caches = buildCaches(nCpus, cache_bytes, assoc, lineBytes);

    ResimResult r;
    for (const Ev &e : events) {
        const Addr line = Addr(e.lineIdx) * lineBytes;
        sim::Cache &c = caches[e.cpu];
        if (e.flags & 1) {
            if (apply_invals) {
                if (e.lines == 0) {
                    c.reset(); // full-cache flush, at any size
                } else {
                    for (uint32_t i = 0; i < e.lines; ++i)
                        c.invalidate(line + Addr(i) * lineBytes);
                }
            }
            continue;
        }
        if (!c.touch(line)) {
            c.fill(line);
            if (e.flags & 2)
                ++r.osMisses;
            else
                ++r.appMisses;
        }
    }
    if (baseOs)
        r.relativeOsMissRate = double(r.osMisses) / double(baseOs);
    return r;
}

ResimPairResult
ICacheResim::simulateDirectPair(uint64_t cache_bytes) const
{
    auto withInval = buildCaches(nCpus, cache_bytes, 1, lineBytes);
    auto noInval = buildCaches(nCpus, cache_bytes, 1, lineBytes);

    ResimPairResult r;
    for (const Ev &e : events) {
        const Addr line = Addr(e.lineIdx) * lineBytes;
        if (e.flags & 1) {
            // Flushes touch only the with-invalidation bank.
            sim::Cache &c = withInval[e.cpu];
            if (e.lines == 0) {
                c.reset();
            } else {
                for (uint32_t i = 0; i < e.lines; ++i)
                    c.invalidate(line + Addr(i) * lineBytes);
            }
            continue;
        }
        const bool os = e.flags & 2;
        sim::Cache &cw = withInval[e.cpu];
        if (!cw.touch(line)) {
            cw.fill(line);
            if (os)
                ++r.withInval.osMisses;
            else
                ++r.withInval.appMisses;
        }
        sim::Cache &cn = noInval[e.cpu];
        if (!cn.touch(line)) {
            cn.fill(line);
            if (os)
                ++r.noInval.osMisses;
            else
                ++r.noInval.appMisses;
        }
    }
    if (baseOs) {
        r.withInval.relativeOsMissRate =
            double(r.withInval.osMisses) / double(baseOs);
        r.noInval.relativeOsMissRate =
            double(r.noInval.osMisses) / double(baseOs);
    }
    return r;
}

void
ICacheResim::clear()
{
    events.clear();
    baseOs = 0;
}

} // namespace mpos::core
