#include "core/resim.hh"

#include <memory>

#include "sim/cache.hh"

namespace mpos::core
{

ICacheResim::ICacheResim(uint32_t num_cpus, uint32_t line_bytes)
    : nCpus(num_cpus), lineBytes(line_bytes)
{
}

void
ICacheResim::onMiss(const ClassifiedMiss &miss)
{
    const auto &rec = miss.rec;
    if (rec.cache != CacheKind::Instr)
        return;
    const bool os = rec.ctx.mode == ExecMode::Kernel;
    if (os)
        ++baseOs;
    events.push_back({uint32_t(rec.lineAddr / lineBytes),
                      uint8_t(rec.cpu), uint8_t(os ? 2 : 0), 0});
}

void
ICacheResim::flushPage(CpuId cpu, Addr page_addr, uint32_t page_bytes)
{
    // page_bytes == 0 encodes a full-cache flush.
    events.push_back({uint32_t(page_addr / lineBytes), uint8_t(cpu), 1,
                      uint16_t(page_bytes / lineBytes)});
}

ResimResult
ICacheResim::simulate(uint64_t cache_bytes, uint32_t assoc,
                      bool apply_invals) const
{
    std::vector<std::unique_ptr<sim::Cache>> caches;
    for (uint32_t c = 0; c < nCpus; ++c) {
        caches.push_back(std::make_unique<sim::Cache>(
            "resim" + std::to_string(c), cache_bytes, assoc,
            lineBytes));
    }

    ResimResult r;
    for (const Ev &e : events) {
        const Addr line = Addr(e.lineIdx) * lineBytes;
        sim::Cache &c = *caches[e.cpu];
        if (e.flags & 1) {
            if (apply_invals) {
                if (e.lines == 0) {
                    c.reset(); // full-cache flush, at any size
                } else {
                    for (uint32_t i = 0; i < e.lines; ++i)
                        c.invalidate(line + Addr(i) * lineBytes);
                }
            }
            continue;
        }
        if (!c.touch(line)) {
            c.fill(line);
            if (e.flags & 2)
                ++r.osMisses;
            else
                ++r.appMisses;
        }
    }
    if (baseOs)
        r.relativeOsMissRate = double(r.osMisses) / double(baseOs);

    // Estimate the Inval floor: difference against an inval-free run.
    if (apply_invals) {
        // (computed lazily by callers when needed; avoid double work)
    }
    return r;
}

void
ICacheResim::clear()
{
    events.clear();
    baseOs = 0;
}

} // namespace mpos::core
