#include "core/runner.hh"

#include <chrono>
#include <thread>

#include "core/journal.hh"
#include "core/warmcache.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::core
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Run one attempt of a job into its slot. Returns true on success;
 * on failure records status + error text and returns false.
 */
bool
runAttempt(ExperimentResult *slot, const ExperimentConfig &cfg)
{
    try {
        auto exp = std::make_unique<Experiment>(cfg);
        exp->run();
        if (const sim::Checker *chk = exp->machine().checker())
            slot->invariantChecks = chk->stats().total();
        slot->monitorTransactions = exp->machine().monitor().transactions();
        slot->exp = std::move(exp);
        slot->status = JobStatus::Ok;
        slot->error.clear();
        return true;
    } catch (const util::SimError &e) {
        slot->status = e.code() == util::ErrCode::Timeout
                           ? JobStatus::TimedOut
                           : JobStatus::Failed;
        slot->error = e.what();
    } catch (const std::exception &e) {
        slot->status = JobStatus::Failed;
        slot->error = e.what();
    }
    return false;
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : ExperimentRunner(RunnerOptions{jobs, 1, 0, 25})
{
}

ExperimentRunner::ExperimentRunner(const RunnerOptions &opt)
    : opts(opt), pool(opt.jobs)
{
}

ExperimentRunner::~ExperimentRunner()
{
    // Don't let worker threads touch slots after the runner dies.
    for (auto &f : pending) {
        if (f.valid())
            f.wait();
    }
}

size_t
ExperimentRunner::submit(std::string name,
                         const ExperimentConfig &cfg)
{
    if (find(name) != npos)
        util::raise(util::ErrCode::BadConfig,
                    "duplicate experiment job '%s'", name.c_str());
    const size_t idx = slots.size();
    ExperimentResult fresh;
    fresh.name = std::move(name);
    fresh.cfg = cfg;
    slots.push_back(std::move(fresh));
    ExperimentResult *slot = &slots.back();
    const RunnerOptions opt = opts;
    pending.push_back(pool.submit([slot, opt] {
        const auto t0 = std::chrono::steady_clock::now();
        std::fprintf(stderr, "[runner] %s: start\n",
                     slot->name.c_str());
        const uint32_t tries = opt.maxAttempts ? opt.maxAttempts : 1;
        const uint64_t jhash =
            opt.journal ? SweepJournal::jobConfigHash(slot->cfg) : 0;
        for (uint32_t attempt = 1; attempt <= tries; ++attempt) {
            ExperimentConfig cfg = slot->cfg;
            // A per-job budget set on the config (e.g. by a service
            // request) wins over the runner-wide default.
            if (cfg.timeoutSeconds <= 0)
                cfg.timeoutSeconds = opt.jobTimeoutSec;
            cfg.warmCache = opt.warmCache;
            if (attempt > 1) {
                if (opt.retryBackoffMs) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(opt.retryBackoffMs));
                }
                // Deterministic reseed: bump the workload seed (and
                // the fault seed, when a campaign is active) so the
                // retry explores a different schedule instead of
                // replaying the same failure.
                cfg.options.seed += attempt - 1;
                if (cfg.machine.faultSeed)
                    cfg.machine.faultSeed += attempt - 1;
                std::fprintf(stderr,
                             "[runner] %s: retry %u/%u "
                             "(seed %llu)\n",
                             slot->name.c_str(), attempt, tries,
                             static_cast<unsigned long long>(
                                 cfg.options.seed));
            }
            slot->attempts = attempt;
            if (opt.journal) {
                opt.journal->appendJobStart(slot->name, jhash,
                                            cfg.options.seed, attempt,
                                            cfg.requestTag);
            }
            if (runAttempt(slot, cfg))
                break;
            if (opt.warmCache) {
                // Quarantine the failed attempt's warm image: it may
                // have been produced (or consumed) on the path to
                // this failure, and a retry or a resumed sweep must
                // warm up from scratch instead of trusting it.
                const uint64_t wkey = warmConfigHash(
                    Experiment::resolvedConfig(cfg));
                opt.warmCache->poison(wkey);
                if (opt.journal)
                    opt.journal->appendPoison(wkey);
            }
            std::fprintf(stderr,
                         "[runner] %s: attempt %u/%u %s: %s\n",
                         slot->name.c_str(), attempt, tries,
                         jobStatusName(slot->status),
                         slot->error.c_str());
        }
        slot->wallSeconds = secondsSince(t0);
        if (opt.journal) {
            JournalJobRow row;
            row.name = slot->name;
            row.configHash = jhash;
            row.status = uint8_t(slot->status);
            row.attempts = slot->attempts;
            row.error = slot->error;
            row.monitorTransactions = slot->monitorTransactions;
            row.invariantChecks = slot->invariantChecks;
            row.kind = uint8_t(slot->cfg.kind);
            row.cpus = slot->cfg.machine.numCpus;
            row.measureCycles = slot->cfg.measureCycles;
            opt.journal->appendJobEnd(row);
        }
        if (!slot->ok()) {
            std::fprintf(stderr,
                         "[runner] %s: gave up after %u attempt(s) "
                         "in %.1fs\n",
                         slot->name.c_str(), slot->attempts,
                         slot->wallSeconds);
            return;
        }
        if (slot->invariantChecks) {
            std::fprintf(stderr,
                         "[runner] %s: done in %.1fs (%llu invariant "
                         "checks, 0 violations)\n",
                         slot->name.c_str(), slot->wallSeconds,
                         static_cast<unsigned long long>(
                             slot->invariantChecks));
        } else {
            std::fprintf(stderr, "[runner] %s: done in %.1fs\n",
                         slot->name.c_str(), slot->wallSeconds);
        }
    }));
    return idx;
}

size_t
ExperimentRunner::find(std::string_view name) const
{
    for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].name == name)
            return i;
    }
    return npos;
}

Experiment &
ExperimentRunner::get(size_t idx)
{
    const ExperimentResult &r = result(idx);
    if (!r.exp)
        util::raise(util::ErrCode::JobFailed,
                    "experiment job '%s' %s after %u attempt(s): %s",
                    r.name.c_str(), jobStatusName(r.status),
                    r.attempts, r.error.c_str());
    return *r.exp;
}

Experiment &
ExperimentRunner::get(std::string_view name)
{
    const size_t idx = find(name);
    if (idx == npos)
        util::raise(util::ErrCode::BadConfig,
                    "unknown experiment job '%.*s'",
                    int(name.size()), name.data());
    return get(idx);
}

const ExperimentResult &
ExperimentRunner::result(size_t idx)
{
    if (idx >= slots.size())
        util::raise(util::ErrCode::BadConfig,
                    "experiment slot %zu out of range", idx);
    if (pending[idx].valid())
        pending[idx].get(); // worker never throws; this only waits
    return slots[idx];
}

void
ExperimentRunner::waitAll()
{
    for (size_t i = 0; i < pending.size(); ++i)
        result(i);
}

const std::deque<ExperimentResult> &
ExperimentRunner::results()
{
    waitAll();
    return slots;
}

size_t
ExperimentRunner::failedCount()
{
    size_t n = 0;
    for (const ExperimentResult &r : results())
        if (!r.ok())
            ++n;
    return n;
}

} // namespace mpos::core
