#include "core/runner.hh"

#include <chrono>

#include "util/logging.hh"

namespace mpos::core
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : pool(jobs)
{
}

ExperimentRunner::~ExperimentRunner()
{
    // Don't let worker threads touch slots after the runner dies.
    for (auto &f : pending) {
        if (f.valid())
            f.wait();
    }
}

size_t
ExperimentRunner::submit(std::string name,
                         const ExperimentConfig &cfg)
{
    if (find(name) != npos)
        util::panic("duplicate experiment job '%s'", name.c_str());
    const size_t idx = slots.size();
    slots.push_back(ExperimentResult{std::move(name), cfg, nullptr, 0});
    ExperimentResult *slot = &slots.back();
    pending.push_back(pool.submit([slot] {
        const auto t0 = std::chrono::steady_clock::now();
        std::fprintf(stderr, "[runner] %s: start\n",
                     slot->name.c_str());
        auto exp = std::make_unique<Experiment>(slot->cfg);
        exp->run();
        if (const sim::Checker *chk = exp->machine().checker())
            slot->invariantChecks = chk->stats().total();
        slot->exp = std::move(exp);
        slot->wallSeconds = secondsSince(t0);
        if (slot->invariantChecks) {
            std::fprintf(stderr,
                         "[runner] %s: done in %.1fs (%llu invariant "
                         "checks, 0 violations)\n",
                         slot->name.c_str(), slot->wallSeconds,
                         static_cast<unsigned long long>(
                             slot->invariantChecks));
        } else {
            std::fprintf(stderr, "[runner] %s: done in %.1fs\n",
                         slot->name.c_str(), slot->wallSeconds);
        }
    }));
    return idx;
}

size_t
ExperimentRunner::find(std::string_view name) const
{
    for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].name == name)
            return i;
    }
    return npos;
}

Experiment &
ExperimentRunner::get(size_t idx)
{
    const ExperimentResult &r = result(idx);
    if (!r.exp)
        util::panic("experiment job '%s' failed", r.name.c_str());
    return *r.exp;
}

Experiment &
ExperimentRunner::get(std::string_view name)
{
    const size_t idx = find(name);
    if (idx == npos)
        util::panic("unknown experiment job '%.*s'",
                    int(name.size()), name.data());
    return get(idx);
}

const ExperimentResult &
ExperimentRunner::result(size_t idx)
{
    if (idx >= slots.size())
        util::panic("experiment slot %zu out of range", idx);
    if (pending[idx].valid())
        pending[idx].get(); // rethrows if the job failed
    return slots[idx];
}

void
ExperimentRunner::waitAll()
{
    for (size_t i = 0; i < pending.size(); ++i)
        result(i);
}

const std::deque<ExperimentResult> &
ExperimentRunner::results()
{
    waitAll();
    return slots;
}

} // namespace mpos::core
