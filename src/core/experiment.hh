/**
 * @file
 * The top-level experiment harness: build machine + kernel + workload,
 * warm up, attach the measurement apparatus (the "hardware monitor"),
 * run, and expose every statistic the paper reports.
 *
 * This is the primary public API of the library: benches, examples
 * and integration tests all drive experiments through it.
 */

#ifndef MPOS_CORE_EXPERIMENT_HH
#define MPOS_CORE_EXPERIMENT_HH

#include <memory>

#include "core/ap_dispos.hh"
#include "core/attribution.hh"
#include "core/blockop_stats.hh"
#include "core/functional_class.hh"
#include "core/invocation_stats.hh"
#include "core/lock_stats.hh"
#include "core/miss_classify.hh"
#include "core/resim.hh"
#include "core/stall.hh"
#include "kernel/kernel.hh"
#include "sim/machine.hh"
#include "workload/workload.hh"

namespace mpos::core
{

class WarmStartCache;

/** Everything needed to run one measured workload. */
struct ExperimentConfig
{
    workload::WorkloadKind kind = workload::WorkloadKind::Pmake;
    sim::MachineConfig machine{};
    kernel::KernelConfig kernelCfg{};
    workload::WorkloadOptions options{};

    sim::Cycle warmupCycles = 8000000;
    sim::Cycle measureCycles = 20000000;

    bool collectMisses = true; ///< Classifier + sinks.
    bool collectResim = false; ///< Record the Figure 6 replay stream.

    /**
     * Host wall-clock budget for run() in seconds; 0 disables. The
     * budget is checked between simulation slices (never inside the
     * deterministic core), and exceeding it raises
     * util::SimError(Timeout) so a batch runner can record the loss
     * and move on.
     */
    double timeoutSeconds = 0;

    /**
     * When true (default), kernelCfg.userPoolPages is replaced by the
     * workload's recommended pool size.
     */
    bool useRecommendedPool = true;

    /**
     * Warm-start cache; null disables (the default, zero overhead).
     * When set, run() asks the cache for a warm image keyed by
     * warmConfigHash(resolved config) and restores it instead of
     * simulating the warmup; on a miss it simulates the warmup and
     * stores the image. Host-side policy only: measured events and
     * statistics are identical either way (the differential fuzzer
     * and the golden corpus assert this).
     */
    WarmStartCache *warmCache = nullptr;

    /**
     * Opaque caller tag (e.g. a service request id). Journaled with
     * the job so a restarted daemon can reassociate recovered work
     * with its request; never hashed, never event-affecting.
     */
    std::string requestTag;
};

/** A configured, runnable experiment. */
class Experiment
{
  public:
    explicit Experiment(const ExperimentConfig &cfg);
    ~Experiment();

    /**
     * The configuration as the constructor would normalize it: kernel
     * layout geometry copied from the machine, the workload's
     * recommended page pool applied. Pure; lets callers compute
     * warmConfigHash() / journal identity without building a machine.
     */
    static ExperimentConfig resolvedConfig(const ExperimentConfig &cfg);

    /** Warm up, then measure. May be called exactly once. */
    void run();

    /// @name Raw components
    /// @{
    sim::Machine &machine() { return *mach; }
    kernel::Kernel &kern() { return *k; }
    workload::Workload &load() { return *wl; }
    /// @}

    /// @name Measured statistics (deltas over the measurement phase)
    /// @{
    const MissCounts &misses() const { return classifier->counts(); }
    const MissClassifier &classifier_() const { return *classifier; }
    const Attribution &attribution() const { return *attr; }
    const FunctionalClass &functional() const { return *func; }
    const InvocationStats &invocations() const { return *inv; }
    const LockStats &lockStats() const { return *locks; }
    ICacheResim &resim() { return *resimRec; }

    sim::CycleAccount account() const;
    sim::Cycle elapsed() const { return measuredCycles; }
    kernel::BlockOpStats blockOps() const;
    /** OS operation invocation counts (Figure 2). */
    uint64_t osOpCount(sim::OsOp op) const;

    Table1Row table1() const;
    Table9Row table9() const;
    BlockOpReport blockOpReport() const;
    ApDisposReport apDispos() const;
    SyncStallReport syncStallReport() const;
    /// @}

    const ExperimentConfig &config() const { return cfg; }

    /// @name Snapshot / warm start
    /// @{
    /** Warm-image cache key of the *resolved* configuration. */
    uint64_t warmKey() const;

    /**
     * Full machine+kernel+workload state as a snapshot container
     * image (may be taken at any point between run slices).
     */
    std::vector<uint8_t> saveSnapshot() const;

    /**
     * Restore a snapshot image into this (not-yet-run) experiment.
     * The image's config hash must equal warmKey(); structural
     * mismatches raise util::SimError(SnapshotCorrupt).
     */
    void restoreSnapshot(const std::vector<uint8_t> &image);
    /// @}

  private:
    ExperimentConfig cfg;
    std::unique_ptr<sim::Machine> mach;
    std::unique_ptr<kernel::Kernel> k;
    std::unique_ptr<workload::Workload> wl;

    std::unique_ptr<MissClassifier> classifier;
    std::unique_ptr<Attribution> attr;
    std::unique_ptr<FunctionalClass> func;
    std::unique_ptr<InvocationStats> inv;
    std::unique_ptr<LockStats> locks;
    std::unique_ptr<ICacheResim> resimRec;

    /** Forwards classified misses to the machine's routine profiler,
     *  keyed by each miss's own context snapshot, so the profiler's
     *  per-routine totals reconcile exactly with core/attribution. */
    struct ProfilerSink : MissSink
    {
        sim::trace::Profiler *pf = nullptr;
        void
        onMiss(const ClassifiedMiss &m) override
        {
            pf->recordMiss(m.rec.ctx, m.rec.cache, uint8_t(m.cls));
        }
    };
    ProfilerSink profSink;

    // Snapshots at measurement start.
    sim::CycleAccount baseAccount;
    kernel::BlockOpStats baseBlockOps;
    uint64_t baseOsOps[sim::numOsOps] = {};
    sim::SyncOpCounts baseKernelSyncOps;

    sim::Cycle measuredCycles = 0;
    bool ran = false;
};

} // namespace mpos::core

#endif // MPOS_CORE_EXPERIMENT_HH
