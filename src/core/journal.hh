/**
 * @file
 * Write-ahead sweep journal: crash-recoverable experiment batches.
 *
 * A sweep that may be killed (power loss, OOM kill, an injected
 * MPOS_CRASH point) records its intent and its outcomes in an
 * append-only, CRC-framed journal. On restart with --resume the
 * journal is replayed: completed analyses re-emit their journaled
 * output byte-identically, completed jobs contribute their journaled
 * result rows, and only incomplete or failed work is re-executed --
 * which, because every experiment is deterministic, reproduces
 * exactly the events the killed run would have produced.
 *
 * File format (`sweep.mpj`, all integers little-endian via binio):
 *
 *   header   "MPOSJRN1" (8)  version u32
 *   record*  u32 payload_len, payload bytes, u64 fnv1a(payload)
 *
 * Each payload starts with a u8 record type:
 *
 *   0x01 Plan        str name, u64 config_hash
 *   0x02 JobStart    str name, u64 config_hash, u64 seed,
 *                    u32 attempt, str request_tag
 *   0x03 JobEnd      str name, u64 config_hash, u8 status,
 *                    u32 attempts, str error, u64 monitor_tx,
 *                    u64 invariant_checks, u8 kind, u32 cpus,
 *                    u64 measure_cycles
 *   0x04 AnalysisEnd str name, b ok, str error, str output
 *   0x05 PoisonKey   u64 warm_key
 *
 * Recovery invariants:
 *  - A torn tail (truncated or checksum-failing final record: the
 *    kill landed mid-append) is expected, not an error; replay stops
 *    at the last intact record and the file is truncated there before
 *    new appends.
 *  - Plan records are written on the submission thread, in submission
 *    order, before the job can run: they are the deterministic
 *    ordering skeleton the resumed report is rebuilt on, independent
 *    of which worker finished (or died) when.
 *  - A JobStart without a matching JobEnd marks in-flight work: the
 *    process died mid-job, so the job re-runs. Its request_tag (the
 *    service's original request line) lets a restarted daemon
 *    reassociate the rerun with its request.
 *  - PoisonKey records persist the warm-cache quarantine: a resumed
 *    sweep never warm-starts from an image a failed attempt touched,
 *    even across process restarts.
 */

#ifndef MPOS_CORE_JOURNAL_HH
#define MPOS_CORE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mpos::core
{

struct ExperimentConfig;

/// @name Journal record types (the u8 leading each payload)
/// @{
inline constexpr uint8_t journalPlan = 0x01;
inline constexpr uint8_t journalJobStart = 0x02;
inline constexpr uint8_t journalJobEnd = 0x03;
inline constexpr uint8_t journalAnalysisEnd = 0x04;
inline constexpr uint8_t journalPoisonKey = 0x05;
/// @}

/** A replayed JobEnd: everything the resumed report row needs. */
struct JournalJobRow
{
    std::string name;
    uint64_t configHash = 0;
    uint8_t status = 0; ///< core::JobStatus as u8.
    uint32_t attempts = 0;
    std::string error;
    uint64_t monitorTransactions = 0;
    uint64_t invariantChecks = 0;
    uint8_t kind = 0; ///< workload::WorkloadKind as u8.
    uint32_t cpus = 0;
    uint64_t measureCycles = 0;
};

/** A replayed JobStart (the latest one per job name). */
struct JournalJobStart
{
    std::string name;
    uint64_t configHash = 0;
    uint64_t seed = 0;
    uint32_t attempt = 0;
    std::string requestTag;
};

/** A replayed AnalysisEnd. */
struct JournalAnalysis
{
    std::string name;
    bool ok = false;
    std::string error;
    std::string output; ///< Exact captured stdout of the analysis.
};

/** Everything replay() recovered from an existing journal. */
struct JournalState
{
    /** (name, config hash) in first-appearance submission order. */
    std::vector<std::pair<std::string, uint64_t>> plan;
    /** Settled jobs, keyed by name (last JobEnd wins). */
    std::unordered_map<std::string, JournalJobRow> jobs;
    /** Latest JobStart per name (matched or not). */
    std::unordered_map<std::string, JournalJobStart> started;
    /** Completed analyses, keyed by name (last record wins). */
    std::unordered_map<std::string, JournalAnalysis> analyses;
    /** Warm-cache keys quarantined by failed attempts. */
    std::vector<uint64_t> poisonedKeys;
    /** True if a torn tail was dropped during replay. */
    bool truncatedTail = false;
    /** Intact records replayed. */
    size_t records = 0;

    /** True if name has a JobStart but no JobEnd (died mid-job). */
    bool
    inFlight(const std::string &name) const
    {
        return started.count(name) && !jobs.count(name);
    }
};

/**
 * Append-side and replay-side of one journal file. Appends are
 * serialized by an internal mutex and flushed per record, so the
 * on-disk prefix is always a valid journal no matter where a kill
 * lands. Thread-safe; one instance is shared by the submission
 * thread, every runner worker, and the analysis loop.
 */
class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Identity of a job for journaling: the warm-config hash of the
     * resolved configuration (machine + kernel + workload + seed +
     * warmup) extended with the measurement-phase knobs the warm key
     * deliberately excludes. Two jobs with equal hashes produce equal
     * measured results; a journaled row whose hash no longer matches
     * the resubmitted config is stale and is re-run.
     */
    static uint64_t jobConfigHash(const ExperimentConfig &cfg);

    /**
     * Open `<dir>/sweep.mpj`. With resume=false any existing journal
     * is discarded and a fresh one started. With resume=true an
     * existing file is replayed into state() first (a torn tail is
     * truncated away); a missing file starts fresh. Raises
     * util::SimError(BadConfig) for an unwritable path or a file that
     * is not a sweep journal.
     */
    void open(const std::string &dir, bool resume);

    bool isOpen() const { return f != nullptr; }

    /** Replayed state (empty unless open(dir, true) found records). */
    const JournalState &state() const { return st; }

    /// @name Appends (each one durable before the call returns)
    /// @{
    void appendPlan(const std::string &name, uint64_t config_hash);
    void appendJobStart(const std::string &name, uint64_t config_hash,
                        uint64_t seed, uint32_t attempt,
                        const std::string &request_tag);
    void appendJobEnd(const JournalJobRow &row);
    void appendAnalysisEnd(const std::string &name, bool ok,
                           const std::string &error,
                           const std::string &output);
    void appendPoison(uint64_t key);
    /// @}

  private:
    void append(const std::vector<uint8_t> &payload);
    void replay(const std::string &path);

    std::mutex mu;
    std::FILE *f = nullptr;
    JournalState st;
};

} // namespace mpos::core

#endif // MPOS_CORE_JOURNAL_HH
