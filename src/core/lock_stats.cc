#include "core/lock_stats.hh"

namespace mpos::core
{

void
LockStats::lockEvent(Cycle cycle, sim::CpuId cpu, uint32_t lock_id,
                     LockEvent ev, uint32_t waiters)
{
    if (lock_id >= profiles.size())
        return;
    LockProfile &p = profiles[lock_id];

    switch (ev) {
      case LockEvent::AcquireSuccess:
        if (p.acquires == 0)
            p.firstAcquire = cycle;
        else if (p.lastAcquirer == int32_t(cpu) && !p.disturbed)
            ++p.sameCpuRuns;
        ++p.acquires;
        p.lastAcquire = cycle;
        p.lastAcquirer = int32_t(cpu);
        p.disturbed = false;
        p.inFailEpisode[cpu & 63] = false;
        break;

      case LockEvent::AcquireFail:
        // Count one episode per spinning CPU, not every poll.
        if (!p.inFailEpisode[cpu & 63]) {
            p.inFailEpisode[cpu & 63] = true;
            ++p.failEpisodes;
        }
        if (p.lastAcquirer != int32_t(cpu))
            p.disturbed = true;
        break;

      case LockEvent::Release:
        ++p.releases;
        if (waiters > 0) {
            ++p.releasesWithWaiters;
            p.waitersSum += waiters;
        }
        break;
    }
}

double
LockStats::failsPerMs(uint32_t lock_id, Cycle elapsed) const
{
    if (lock_id >= profiles.size() || elapsed == 0)
        return 0.0;
    const double ms = double(elapsed) / 33000.0;
    return double(profiles[lock_id].failEpisodes) / ms;
}

void
LockStats::clear()
{
    const auto n = profiles.size();
    profiles.assign(n, LockProfile{});
}

SyncStallReport
syncStall(const sim::SyncTransport &st, Cycle uncached_base,
          Cycle cached_base, Cycle non_idle)
{
    SyncStallReport r;
    if (!non_idle)
        return r;
    const Cycle unc = st.uncachedStallTotal() - uncached_base;
    const Cycle cac = st.cachedStallTotal() - cached_base;
    r.uncachedPct = 100.0 * double(unc) / double(non_idle);
    r.cachedPct = 100.0 * double(cac) / double(non_idle);
    return r;
}

} // namespace mpos::core
