#include "core/lock_stats.hh"

#include <bit>

namespace mpos::core
{

void
LockStats::lockEvent(Cycle cycle, sim::CpuId cpu, uint32_t lock_id,
                     LockEvent ev, uint32_t waiters)
{
    if (lock_id >= profiles.size())
        return;
    LockProfile &p = profiles[lock_id];

    switch (ev) {
      case LockEvent::AcquireSuccess:
        if (p.acquires == 0)
            p.firstAcquire = cycle;
        else if (p.lastAcquirer == int32_t(cpu) && !p.disturbed)
            ++p.sameCpuRuns;
        ++p.acquires;
        p.lastAcquire = cycle;
        p.lastAcquirer = int32_t(cpu);
        p.disturbed = false;
        if (p.inFailEpisode[cpu & 63]) {
            // This CPU waited since its first failed poll: one sample
            // of the wait-time distribution.
            const Cycle w = cycle - p.episodeStart[cpu & 63];
            ++p.waitCount;
            p.waitCyclesSum += w;
            if (w > p.waitMax)
                p.waitMax = w;
            const unsigned b = w ? unsigned(std::bit_width(w)) - 1 : 0;
            ++p.waitHist[b < 32 ? b : 31];
        }
        p.inFailEpisode[cpu & 63] = false;
        if (p.handoffPending) {
            // Gap between a contended release and this acquire: the
            // hand-off latency of the primitive in force.
            ++p.handoffCount;
            p.handoffCyclesSum += cycle - p.lastContendedRelease;
            p.handoffPending = false;
        }
        break;

      case LockEvent::AcquireFail:
        // Count one episode per spinning CPU, not every poll.
        if (!p.inFailEpisode[cpu & 63]) {
            p.inFailEpisode[cpu & 63] = true;
            p.episodeStart[cpu & 63] = cycle;
            ++p.failEpisodes;
        }
        if (p.lastAcquirer != int32_t(cpu))
            p.disturbed = true;
        break;

      case LockEvent::Release:
        ++p.releases;
        if (waiters > 0) {
            ++p.releasesWithWaiters;
            p.waitersSum += waiters;
            p.lastContendedRelease = cycle;
            p.handoffPending = true;
        }
        break;

      default:
        break; // the kernel reports only the three logical events
    }
}

double
LockStats::failsPerMs(uint32_t lock_id, Cycle elapsed) const
{
    if (lock_id >= profiles.size() || elapsed == 0)
        return 0.0;
    const double ms = double(elapsed) / 33000.0;
    return double(profiles[lock_id].failEpisodes) / ms;
}

void
LockStats::clear()
{
    const auto n = profiles.size();
    profiles.assign(n, LockProfile{});
}

SyncStallReport
syncStall(const sim::SyncTransport &st, Cycle uncached_base,
          Cycle cached_base, Cycle non_idle)
{
    SyncStallReport r;
    if (!non_idle)
        return r;
    const Cycle unc = st.uncachedStallTotal() - uncached_base;
    const Cycle cac = st.cachedStallTotal() - cached_base;
    r.uncachedPct = 100.0 * double(unc) / double(non_idle);
    r.cachedPct = 100.0 * double(cac) / double(non_idle);
    return r;
}

} // namespace mpos::core
