/**
 * @file
 * I-cache re-simulation (Figure 6): the paper feeds the references
 * that missed in the real machine's caches through larger and
 * set-associative caches to bound the benefit of cache changes, and
 * separately shows the floor imposed by invalidation (Inval) misses.
 *
 * We record every bus-level instruction miss (application and OS, as
 * the paper does) plus every I-cache invalidation event, then replay
 * the stream through arbitrary cache geometries.
 */

#ifndef MPOS_CORE_RESIM_HH
#define MPOS_CORE_RESIM_HH

#include <cstdint>
#include <vector>

#include "core/miss_classify.hh"
#include "sim/monitor.hh"

namespace mpos::core
{

/** Result of one re-simulation. */
struct ResimResult
{
    uint64_t osMisses = 0;
    uint64_t appMisses = 0;
    uint64_t invalMisses = 0; ///< OS misses attributable to flushes.
    /** OS misses relative to the measured machine (1.0 = measured). */
    double relativeOsMissRate = 0.0;
};

/** The solid and dashed Figure 6 curves from one replay. */
struct ResimPairResult
{
    ResimResult withInval; ///< Flushes applied (solid curve).
    ResimResult noInval;   ///< Flushes ignored (dashed Inval floor).
};

/** Recorder + replayer. */
class ICacheResim : public MissSink, public sim::MonitorObserver
{
  public:
    explicit ICacheResim(uint32_t num_cpus, uint32_t line_bytes = 16);

    /// @name Recording
    /// @{
    void onMiss(const ClassifiedMiss &miss) override; // I-misses only
    void flushPage(CpuId cpu, Addr page_addr,
                   uint32_t page_bytes) override;
    /// @}

    /** OS I-misses recorded from the measured machine. */
    uint64_t baselineOsMisses() const { return baseOs; }
    uint64_t recordedEvents() const { return uint64_t(events.size()); }

    /**
     * Replay the recorded stream through caches of the given
     * geometry.
     * @param apply_invals If false, code-page-reallocation flushes
     *        are ignored (the dashed "no Inval" curve of Figure 6).
     */
    ResimResult simulate(uint64_t cache_bytes, uint32_t assoc,
                         bool apply_invals = true) const;

    /**
     * Replay once, simulating the direct-mapped cache with and
     * without invalidations side by side. Equivalent to two
     * simulate(cache_bytes, 1, ...) calls at half the replay cost --
     * the Figure 6 sweep walks the recorded stream per size, so the
     * single pass matters.
     */
    ResimPairResult simulateDirectPair(uint64_t cache_bytes) const;

    void clear();

  private:
    struct Ev
    {
        uint32_t lineIdx;
        uint8_t cpu;
        uint8_t flags; // bit0 = page flush, bit1 = OS context
        uint16_t lines; // flush extent in lines (page flushes)
    };

    uint32_t nCpus;
    uint32_t lineBytes;
    std::vector<Ev> events;
    uint64_t baseOs = 0;
};

} // namespace mpos::core

#endif // MPOS_CORE_RESIM_HH
