/**
 * @file
 * Attribution of classified misses to kernel data structures and
 * kernel routines.
 *
 * This mirrors the paper's two-level method: static structures are
 * found through the kernel symbol map (KernelLayout::structAt);
 * dynamically-reached data (block-operation targets) is attributed
 * through the routine executing at miss time, which the kernel
 * reports in-band exactly like the paper's subroutine-entry
 * instrumentation. Feeds Figures 5 and 8 and Tables 4 and 5.
 */

#ifndef MPOS_CORE_ATTRIBUTION_HH
#define MPOS_CORE_ATTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "core/miss_classify.hh"
#include "kernel/layout.hh"

namespace mpos::core
{

using kernel::KernelLayout;
using kernel::KStruct;
using kernel::RoutineGroup;

/** Per-data-structure Sharing-miss attribution (Figure 8). */
struct SharingByStruct
{
    uint64_t count[kernel::numKStructs] = {};
    /** Dynamically-reached pages attributed via the executing routine
     *  (the paper's Bcopy / Bclear categories). */
    uint64_t bcopyPages = 0;
    uint64_t bclearPages = 0;
    uint64_t total = 0;
};

/** Attribution observer. */
class Attribution : public MissSink
{
  public:
    explicit Attribution(const KernelLayout &layout);

    void onMiss(const ClassifiedMiss &miss) override;

    /// @name Figure 8: OS Sharing D-misses by data structure
    /// @{
    const SharingByStruct &sharing() const { return sharingTally; }
    /// @}

    /// @name Figure 5: OS Dispos I-misses per routine
    /// @{
    uint64_t disposMissesOfRoutine(kernel::RoutineId r) const;
    const std::vector<uint64_t> &disposByRoutine() const
    {
        return disposIByRoutine;
    }
    /// @}

    /// @name Table 4: migration misses
    /// @{
    /** Sharing D-misses on the three per-process structures. */
    uint64_t migrationKernelStack() const { return migKStack; }
    uint64_t migrationUserStruct() const { return migUStruct; }
    uint64_t migrationProcTable() const { return migProcTab; }
    uint64_t migrationTotal() const
    {
        return migKStack + migUStruct + migProcTab;
    }
    /// @}

    /// @name Table 5: migration misses by operation group
    /// @{
    uint64_t migrationByGroup(RoutineGroup g) const
    {
        return migGroup[unsigned(g)];
    }
    /// @}

    /** All OS D-misses attributed to block-op routines (Table 6). */
    uint64_t blockOpMissesOf(const char *routine_name) const;
    uint64_t blockOpDMissesTotal() const { return blockOpD; }

    /** OS data misses per structure regardless of class. */
    uint64_t osDMissesOn(KStruct s) const
    {
        return osDByStruct[unsigned(s)];
    }

  private:
    const KernelLayout &map;
    SharingByStruct sharingTally;
    std::vector<uint64_t> disposIByRoutine;
    std::vector<uint64_t> dMissByRoutine;
    uint64_t osDByStruct[kernel::numKStructs] = {};
    uint64_t migKStack = 0;
    uint64_t migUStruct = 0;
    uint64_t migProcTab = 0;
    uint64_t migGroup[12] = {};
    uint64_t blockOpD = 0;
};

} // namespace mpos::core

#endif // MPOS_CORE_ATTRIBUTION_HH
