/**
 * @file
 * Persistent sweep service: a daemon that owns the warm-start cache,
 * the experiment thread pool and the sweep journal, and answers
 * newline-delimited JSON requests on a Unix-domain socket.
 *
 * `mpos_bench --serve <socket>` constructs one SweepService and
 * blocks in serve(). Clients connect, send one JSON object per line,
 * and read JSON event lines back:
 *
 *   {"op":"run","workload":"Pmake","cpus":4,"measure_cycles":300000,
 *    "warmup_cycles":150000,"seed":7}
 *     -> {"event":"accepted","id":"req-1","job":"req-1/Pmake"}
 *        ... simulation runs on the shared pool ...
 *        {"event":"done","id":"req-1","status":"ok",...}
 *   {"op":"status"}   -> {"event":"status","inflight":N,...}
 *   {"op":"result","id":"req-1"} -> the done row, "pending", or error
 *   {"op":"shutdown"} -> {"event":"bye"} and the daemon exits
 *
 * Robustness properties (the reason this exists):
 *  - Admission control: at most maxQueue run requests may be admitted
 *    (queued or running) at once; an overfull daemon answers with a
 *    structured {"event":"rejected","reason":"queue-full"} line
 *    instead of buffering without bound or blocking the connection.
 *  - Untrusted input: request lines are length-capped, validated and
 *    parsed with util/json; anything malformed gets a structured
 *    error event, never a crash.
 *  - Crash recovery: every request's original JSON line rides in the
 *    job's journal JobStart record (ExperimentConfig::requestTag), so
 *    a daemon restarted on the same journal re-submits work that was
 *    in flight when it died and serves already-settled results from
 *    the journal.
 */

#ifndef MPOS_CORE_SERVICE_HH
#define MPOS_CORE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"

namespace mpos::core
{

class SweepJournal;

/** Configuration of one SweepService. */
struct ServiceOptions
{
    std::string socketPath;  ///< Unix-domain socket to listen on.
    /**
     * Maximum run requests admitted (queued + running) at once;
     * further requests are rejected with a structured event. 0 is
     * legal and rejects every run request (used by the backpressure
     * tests).
     */
    unsigned maxQueue = 8;
    /** Pool size, retries, timeout, warm cache, journal. */
    RunnerOptions runner;
};

/** One completed request, queryable via the "result" op. */
struct ServiceResult
{
    std::string id;    ///< "req-N".
    std::string job;   ///< Runner job name ("req-N/<workload>").
    JobStatus status = JobStatus::Pending;
    uint32_t attempts = 0;
    std::string error;
    uint64_t monitorTransactions = 0;
    uint64_t invariantChecks = 0;
    bool recovered = false; ///< Served from the journal, not this run.
};

/** The daemon behind `mpos_bench --serve`. */
class SweepService
{
  public:
    explicit SweepService(const ServiceOptions &opt);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Bind the socket and serve until stop() (or a client shutdown
     * op, or SIGINT/SIGTERM). Returns 0 on clean exit, non-zero if
     * the socket could not be set up.
     */
    int serve();

    /** Ask serve() to return; safe from any thread. */
    void stop() { stopping.store(true); }

    /** Requests admitted but not yet settled. */
    unsigned inflight() const;

  private:
    void recoverFromJournal();
    void handleConnection(int fd);
    void handleLine(int fd, const std::string &line);
    bool admit();
    void release();
    void settle(const std::string &id, const std::string &job,
                size_t slot, bool recovered);

    ServiceOptions opt;
    ExperimentRunner runner;
    std::atomic<bool> stopping{false};

    mutable std::mutex mu;
    unsigned inflight_ = 0;
    uint64_t nextId = 1;
    std::map<std::string, ServiceResult> results; ///< keyed by id.
    std::vector<std::string> pendingIds;

    std::vector<std::thread> conns;
    /** Open connection fds (guarded by mu); serve()'s shutdown path
     *  half-closes them so blocked handlers see EOF and exit. */
    std::vector<int> connFds;
    std::thread reaper; ///< Awaits journal-recovered jobs.
};

} // namespace mpos::core

#endif // MPOS_CORE_SERVICE_HH
