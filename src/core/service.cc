#include "core/service.hh"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/journal.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace mpos::core
{

namespace
{

/** A request line larger than this is rejected before parsing. */
constexpr size_t maxLineBytes = 1u << 20;

/** stop() target for the SIGINT/SIGTERM handlers. */
std::atomic<SweepService *> signalTarget{nullptr};

void
onStopSignal(int)
{
    if (SweepService *s = signalTarget.load())
        s->stop();
}

/** Full-buffer send; returns false once the peer is gone. */
bool
sendAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::send(fd, text.data() + off,
                                 text.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += size_t(n);
    }
    return true;
}

bool
sendLine(int fd, const std::string &json)
{
    return sendAll(fd, json + "\n");
}

std::string
errorEvent(const std::string &what)
{
    return "{\"event\":\"error\",\"error\":" + util::jsonString(what) +
           "}";
}

bool
parseWorkload(const std::string &name, workload::WorkloadKind &kind)
{
    for (uint8_t k = 0; k < 3; ++k) {
        if (name == workload::workloadName(workload::WorkloadKind(k))) {
            kind = workload::WorkloadKind(k);
            return true;
        }
    }
    return false;
}

/** Integer field with a default; false on a non-numeric value. */
bool
numField(const util::JsonValue &obj, const char *key, uint64_t &out)
{
    const util::JsonValue *v = obj.find(key);
    if (!v)
        return true;
    if (!v->isNumber() || v->number < 0)
        return false;
    out = uint64_t(v->number);
    return true;
}

/**
 * Decode a run request into an ExperimentConfig. Returns empty on
 * success, else the complaint for the error event. Every field is
 * optional except "workload"; unknown fields are ignored.
 */
std::string
decodeRunRequest(const util::JsonValue &obj, ExperimentConfig &cfg)
{
    const util::JsonValue *wl = obj.find("workload");
    if (!wl || !wl->isString())
        return "run request needs a \"workload\" string";
    if (!parseWorkload(wl->text, cfg.kind))
        return "unknown workload '" + wl->text + "'";
    uint64_t cpus = cfg.machine.numCpus;
    uint64_t measure = 300000;
    uint64_t warmup = 150000;
    uint64_t seed = cfg.options.seed;
    uint64_t timeoutSec = 0;
    if (!numField(obj, "cpus", cpus) ||
        !numField(obj, "measure_cycles", measure) ||
        !numField(obj, "warmup_cycles", warmup) ||
        !numField(obj, "seed", seed) ||
        !numField(obj, "timeout_sec", timeoutSec))
        return "numeric request field has a non-numeric value";
    if (cpus < 1 || cpus > 64)
        return "cpus must be between 1 and 64";
    cfg.machine.numCpus = uint32_t(cpus);
    cfg.measureCycles = measure;
    cfg.warmupCycles = warmup;
    cfg.options.seed = seed;
    cfg.timeoutSeconds = double(timeoutSec);
    return "";
}

std::string
resultEvent(const char *event, const ServiceResult &r)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ",\"status\":\"%s\",\"attempts\":%u,"
                  "\"monitor_events\":%llu,\"invariant_checks\":%llu,"
                  "\"recovered\":%s",
                  jobStatusName(r.status), r.attempts,
                  (unsigned long long)r.monitorTransactions,
                  (unsigned long long)r.invariantChecks,
                  r.recovered ? "true" : "false");
    return std::string("{\"event\":\"") + event +
           "\",\"id\":" + util::jsonString(r.id) +
           ",\"job\":" + util::jsonString(r.job) + buf +
           ",\"error\":" + util::jsonString(r.error) + "}";
}

} // namespace

SweepService::SweepService(const ServiceOptions &options)
    : opt(options), runner(options.runner)
{
    recoverFromJournal();
}

SweepService::~SweepService()
{
    stop();
    if (reaper.joinable())
        reaper.join();
    for (auto &t : conns)
        if (t.joinable())
            t.join();
}

unsigned
SweepService::inflight() const
{
    std::lock_guard<std::mutex> lock(mu);
    return inflight_;
}

bool
SweepService::admit()
{
    std::lock_guard<std::mutex> lock(mu);
    if (inflight_ >= opt.maxQueue)
        return false;
    ++inflight_;
    return true;
}

void
SweepService::release()
{
    std::lock_guard<std::mutex> lock(mu);
    --inflight_;
}

void
SweepService::settle(const std::string &id, const std::string &job,
                     size_t slot, bool recovered)
{
    const ExperimentResult &r = runner.result(slot); // waits
    ServiceResult sr;
    sr.id = id;
    sr.job = job;
    sr.status = r.status;
    sr.attempts = r.attempts;
    sr.error = r.error;
    sr.monitorTransactions = r.monitorTransactions;
    sr.invariantChecks = r.invariantChecks;
    sr.recovered = recovered;
    {
        std::lock_guard<std::mutex> lock(mu);
        results[id] = std::move(sr);
        for (auto it = pendingIds.begin(); it != pendingIds.end(); ++it) {
            if (*it == id) {
                pendingIds.erase(it);
                break;
            }
        }
    }
    release();
}

void
SweepService::recoverFromJournal()
{
    SweepJournal *j = opt.runner.journal;
    if (!j || !j->isOpen())
        return;
    const JournalState &st = j->state();

    // Settled jobs with a request tag: serve their rows from the
    // journal without re-running anything.
    for (const auto &[name, row] : st.jobs) {
        const size_t slash = name.find('/');
        if (slash == std::string::npos || name.compare(0, 4, "req-"))
            continue;
        ServiceResult sr;
        sr.id = name.substr(0, slash);
        sr.job = name;
        sr.status = JobStatus(row.status);
        sr.attempts = row.attempts;
        sr.error = row.error;
        sr.monitorTransactions = row.monitorTransactions;
        sr.invariantChecks = row.invariantChecks;
        sr.recovered = true;
        const uint64_t n = std::strtoull(sr.id.c_str() + 4, nullptr, 10);
        if (n >= nextId)
            nextId = n + 1;
        results[sr.id] = std::move(sr);
    }

    // In-flight jobs (JobStart without JobEnd): the previous daemon
    // died mid-run. Their request tag holds the original request
    // line; decode it and resubmit under the same name.
    std::vector<std::pair<std::string, size_t>> recovered;
    for (const auto &[name, start] : st.started) {
        if (!st.inFlight(name) || start.requestTag.empty())
            continue;
        const size_t slash = name.find('/');
        if (slash == std::string::npos || name.compare(0, 4, "req-"))
            continue;
        util::JsonValue req;
        std::string perr;
        ExperimentConfig cfg;
        if (!util::jsonParse(start.requestTag, req, &perr) ||
            !decodeRunRequest(req, cfg).empty()) {
            util::warn("service: dropping unrecoverable in-flight "
                       "job %s", name.c_str());
            continue;
        }
        const uint64_t n =
            std::strtoull(name.c_str() + 4, nullptr, 10);
        if (n >= nextId)
            nextId = n + 1;
        cfg.requestTag = start.requestTag;
        const size_t slot = runner.submit(name, cfg);
        util::warn("service: recovered in-flight job %s from journal",
                   name.c_str());
        {
            std::lock_guard<std::mutex> lock(mu);
            ++inflight_;
            pendingIds.push_back(name.substr(0, slash));
        }
        recovered.emplace_back(name, slot);
    }
    if (!recovered.empty()) {
        reaper = std::thread([this, recovered] {
            for (const auto &[name, slot] : recovered)
                settle(name.substr(0, name.find('/')), name, slot,
                       true);
        });
    }
}

void
SweepService::handleLine(int fd, const std::string &line)
{
    std::string perr;
    util::JsonValue req;
    if (!util::jsonValidate(line, nullptr, &perr) ||
        !util::jsonParse(line, req, &perr)) {
        sendLine(fd, errorEvent("bad request: " + perr));
        return;
    }
    if (!req.isObject()) {
        sendLine(fd, errorEvent("request must be a JSON object"));
        return;
    }
    const util::JsonValue *op = req.find("op");
    if (!op || !op->isString()) {
        sendLine(fd, errorEvent("request needs an \"op\" string"));
        return;
    }

    if (op->text == "run") {
        ExperimentConfig cfg;
        const std::string complaint = decodeRunRequest(req, cfg);
        if (!complaint.empty()) {
            sendLine(fd, errorEvent(complaint));
            return;
        }
        if (!admit()) {
            // Backpressure, not buffering: the client hears a
            // structured reject immediately and may retry later.
            sendLine(fd, "{\"event\":\"rejected\","
                         "\"reason\":\"queue-full\"}");
            return;
        }
        std::string id, job;
        {
            std::lock_guard<std::mutex> lock(mu);
            id = "req-" + std::to_string(nextId++);
            job = id + "/" + workload::workloadName(cfg.kind);
            pendingIds.push_back(id);
        }
        cfg.requestTag = line;
        size_t slot;
        try {
            slot = runner.submit(job, cfg);
        } catch (const std::exception &e) {
            {
                std::lock_guard<std::mutex> lock(mu);
                for (auto it = pendingIds.begin();
                     it != pendingIds.end(); ++it) {
                    if (*it == id) {
                        pendingIds.erase(it);
                        break;
                    }
                }
                --inflight_;
            }
            sendLine(fd, errorEvent(e.what()));
            return;
        }
        sendLine(fd, "{\"event\":\"accepted\",\"id\":" +
                         util::jsonString(id) +
                         ",\"job\":" + util::jsonString(job) + "}");
        settle(id, job, slot, false);
        std::lock_guard<std::mutex> lock(mu);
        sendLine(fd, resultEvent("done", results[id]));
        return;
    }

    if (op->text == "status") {
        std::lock_guard<std::mutex> lock(mu);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "{\"event\":\"status\",\"inflight\":%u,"
                      "\"completed\":%zu,\"jobs\":%zu,"
                      "\"max_queue\":%u}",
                      inflight_, results.size(), runner.size(),
                      opt.maxQueue);
        sendLine(fd, buf);
        return;
    }

    if (op->text == "result") {
        const util::JsonValue *id = req.find("id");
        if (!id || !id->isString()) {
            sendLine(fd, errorEvent("result needs an \"id\" string"));
            return;
        }
        std::lock_guard<std::mutex> lock(mu);
        auto it = results.find(id->text);
        if (it != results.end()) {
            sendLine(fd, resultEvent("result", it->second));
            return;
        }
        for (const auto &p : pendingIds) {
            if (p == id->text) {
                sendLine(fd, "{\"event\":\"pending\",\"id\":" +
                                 util::jsonString(id->text) + "}");
                return;
            }
        }
        sendLine(fd, errorEvent("unknown id '" + id->text + "'"));
        return;
    }

    if (op->text == "shutdown") {
        sendLine(fd, "{\"event\":\"bye\"}");
        stop();
        return;
    }

    sendLine(fd, errorEvent("unknown op '" + op->text + "'"));
}

void
SweepService::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;
        buf.append(chunk, size_t(n));
        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            handleLine(fd, line);
            if (stopping.load())
                goto out;
        }
        if (buf.size() > maxLineBytes) {
            // A line this long is hostile or broken either way;
            // answer once and drop the connection.
            sendLine(fd, errorEvent("request line exceeds 1 MiB"));
            break;
        }
    }
out:
    std::lock_guard<std::mutex> lock(mu);
    ::close(fd);
    for (auto it = connFds.begin(); it != connFds.end(); ++it) {
        if (*it == fd) {
            connFds.erase(it);
            break;
        }
    }
}

int
SweepService::serve()
{
    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        std::perror("mpos service: socket");
        return 1;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (opt.socketPath.size() >= sizeof addr.sun_path) {
        std::fprintf(stderr, "mpos service: socket path too long\n");
        ::close(listenFd);
        return 1;
    }
    std::strncpy(addr.sun_path, opt.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(opt.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd, 16) != 0) {
        std::perror("mpos service: bind/listen");
        ::close(listenFd);
        return 1;
    }

    signalTarget.store(this);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onStopSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    std::fprintf(stderr,
                 "[service] listening on %s (max queue %u, %u "
                 "worker(s))\n",
                 opt.socketPath.c_str(), opt.maxQueue,
                 runner.jobs());

    while (!stopping.load()) {
        struct pollfd pfd = {listenFd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        {
            std::lock_guard<std::mutex> lock(mu);
            connFds.push_back(fd);
        }
        conns.emplace_back(
            [this, fd] { handleConnection(fd); });
    }

    ::close(listenFd);
    ::unlink(opt.socketPath.c_str());
    signalTarget.store(nullptr);
    {
        // Connections still open (an idle client holding its socket)
        // would keep their handler blocked in recv forever; half-close
        // them so every handler sees EOF and exits. The fds stay in
        // connFds until their handler closes them under mu, so a
        // shutdown here can never hit a recycled descriptor.
        std::lock_guard<std::mutex> lock(mu);
        for (const int cfd : connFds)
            ::shutdown(cfd, SHUT_RDWR);
    }
    for (auto &t : conns)
        if (t.joinable())
            t.join();
    conns.clear();
    std::fprintf(stderr, "[service] stopped\n");
    return 0;
}

} // namespace mpos::core
