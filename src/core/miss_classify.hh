/**
 * @file
 * Online implementation of the paper's Table 2 miss taxonomy.
 *
 * Every bus-level miss is assigned exactly one class by tracking, per
 * (CPU, cache, 16-byte physical block): whether the CPU ever loaded
 * the block (Cold), who displaced it (Dispos / Dispap), whether
 * coherence invalidated it (Sharing), or whether an I-cache flush on
 * code-page reallocation removed it (Inval). Dispossame -- the subset
 * of Dispos misses with no intervening application invocation -- is
 * tracked with a per-CPU application epoch. Cache-bypassing accesses
 * are the Uncached class.
 *
 * Downstream analyses (attribution, functional classification,
 * re-simulation, ...) subscribe as MissSink and receive each miss
 * already classified.
 */

#ifndef MPOS_CORE_MISS_CLASSIFY_HH
#define MPOS_CORE_MISS_CLASSIFY_HH

#include <cstdint>
#include <vector>

#include "sim/monitor.hh"
#include "sim/types.hh"

namespace mpos::core
{

using sim::Addr;
using sim::BusRecord;
using sim::CacheKind;
using sim::CpuId;
using sim::Cycle;
using sim::ExecMode;

/** Architectural miss classes (Table 2). */
enum class MissClass : uint8_t
{
    Cold,     ///< First access by this processor.
    Dispos,   ///< Displaced by an intervening OS reference.
    Dispap,   ///< Displaced by an intervening application reference.
    Sharing,  ///< Invalidated by another CPU's write (or an upgrade).
    Inval,    ///< I-cache flushed when a code page was reallocated.
    Uncached, ///< Cache-bypassing access.
    Unknown,  ///< Tracking anomaly; tests assert this stays at zero.
};

constexpr uint32_t numMissClasses = 7;

/** Name for reports. */
const char *missClassName(MissClass c);

/** One classified bus-level miss. */
struct ClassifiedMiss
{
    BusRecord rec;
    MissClass cls;
    bool dispossame = false; ///< Dispos with no app invocation between.
};

/** Consumer of classified misses. */
class MissSink
{
  public:
    virtual ~MissSink() = default;
    virtual void onMiss(const ClassifiedMiss &miss) = 0;
};

/** Aggregate counters per execution context. */
struct MissCounts
{
    /** [class] for each of OS/app/idle x I/D. */
    uint64_t osI[numMissClasses] = {};
    uint64_t osD[numMissClasses] = {};
    uint64_t appI[numMissClasses] = {};
    uint64_t appD[numMissClasses] = {};
    uint64_t idleI[numMissClasses] = {};
    uint64_t idleD[numMissClasses] = {};
    uint64_t osDispossameI = 0;
    uint64_t osDispossameD = 0;

    uint64_t osTotal() const;
    uint64_t appTotal() const;
    uint64_t total() const;
    uint64_t osITotal() const;
    uint64_t osDTotal() const;
};

/** The classifier; attach to the machine's Monitor. */
class MissClassifier : public sim::MonitorObserver
{
  public:
    /**
     * @param num_cpus   CPUs in the machine.
     * @param mem_bytes  Physical memory size.
     * @param line_bytes Cache line size.
     */
    MissClassifier(uint32_t num_cpus, uint64_t mem_bytes,
                   uint32_t line_bytes);

    void addSink(MissSink *sink) { sinks.push_back(sink); }

    /// @name MonitorObserver
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void evict(CpuId cpu, CacheKind kind, Addr line,
               const sim::MonitorContext &by) override;
    void invalSharing(CpuId cpu, CacheKind kind, Addr line) override;
    void invalPageRealloc(CpuId cpu, Addr line) override;
    void osExit(Cycle cycle, CpuId cpu, sim::OsOp op) override;
    /// @}

    const MissCounts &counts() const { return tally; }

    uint64_t writebacks() const { return nWritebacks; }

  private:
    // Per-block tracking word: low 3 bits = status, bit 3 = ever
    // loaded, high 28 bits = app epoch at eviction.
    enum Status : uint32_t
    {
        stInvalid = 0,
        stPresent = 1,
        stEvictedOs = 2,
        stEvictedApp = 3,
        stInvalSharing = 4,
        stInvalRealloc = 5,
    };
    static constexpr uint32_t statusMask = 0x7;
    static constexpr uint32_t loadedBit = 0x8;
    static constexpr uint32_t epochShift = 4;

    uint32_t &slot(CpuId cpu, CacheKind kind, Addr line);

    void classify(const BusRecord &rec);
    void deliver(const BusRecord &rec, MissClass cls, bool same);
    void bump(const BusRecord &rec, MissClass cls, bool same);

    uint32_t nCpus;
    uint64_t nLines;
    uint32_t lineBytes;
    /** [cpu][kind] flat arrays of tracking words. */
    std::vector<std::vector<uint32_t>> state;
    /** Application-invocation epoch per CPU. */
    std::vector<uint32_t> appEpoch;

    MissCounts tally;
    uint64_t nWritebacks = 0;
    std::vector<MissSink *> sinks;
};

} // namespace mpos::core

#endif // MPOS_CORE_MISS_CLASSIFY_HH
