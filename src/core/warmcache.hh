/**
 * @file
 * Cross-process warm-start cache for experiment sweeps.
 *
 * "Warm up then measure" means every job spends its first
 * warmupCycles reaching steady state before any observer attaches.
 * That prefix is fully determined by the event-affecting slice of the
 * configuration (machine geometry and timing, kernel tuning, workload
 * kind/options/seed, warmup length) -- so jobs sharing that slice can
 * fork from one memoized warm image instead of each re-simulating the
 * warmup. warmConfigHash() fingerprints exactly that slice;
 * measurement-phase-only knobs (measure length, observer and checker
 * selection, host scheduling policy) are deliberately excluded, which
 * is what lets analysis jobs of different measure lengths share the
 * standard runs' images.
 *
 * WarmStartCache memoizes images in-process (shared read-only
 * buffers; concurrent runner jobs restore from the same bytes) and,
 * when given a directory, persists them as one file per key so later
 * process invocations warm-start too. Corrupt or version-mismatched
 * files are treated as misses (the container checksum guards them),
 * and a hash collision across genuinely different configs is guarded
 * by the restore-side structural validation.
 */

#ifndef MPOS_CORE_WARMCACHE_HH
#define MPOS_CORE_WARMCACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mpos::core
{

struct ExperimentConfig;

/**
 * Fingerprint of the event-affecting configuration slice that
 * determines the warm state. Callers must pass the *resolved* config
 * (after Experiment's constructor normalization: layout geometry
 * copied from the machine, the recommended page pool applied);
 * Experiment::warmKey() does this for you.
 */
uint64_t warmConfigHash(const ExperimentConfig &cfg);

/** Cache hit/miss accounting, for the bench self-profile. */
struct WarmCacheStats
{
    uint64_t hits = 0;        ///< In-memory or on-disk image reused.
    uint64_t misses = 0;      ///< Warmup simulated from scratch.
    uint64_t stores = 0;      ///< Images saved after a cold warmup.
    uint64_t bytesRead = 0;   ///< Snapshot bytes loaded from disk.
    uint64_t bytesWritten = 0; ///< Snapshot bytes written to disk.
};

/** Keyed store of warm machine images; safe for concurrent jobs. */
class WarmStartCache
{
  public:
    /** Read-only shared image bytes (a full snapshot container). */
    using Image = std::shared_ptr<const std::vector<uint8_t>>;

    /** @param directory On-disk cache dir; empty = in-memory only.
     *  The directory must already exist (the bench creates it). */
    explicit WarmStartCache(std::string directory = "");

    /**
     * Image for key, or null. Checks the in-process map first, then
     * the directory; a disk hit is promoted into the map. Counts one
     * hit or miss.
     */
    Image lookup(uint64_t key);

    /**
     * Memoize (and, with a directory, persist) the image for key.
     * Racing stores of the same key are harmless: both attempts carry
     * identical bytes (same key => same warm prefix => same state).
     */
    Image store(uint64_t key, std::vector<uint8_t> bytes);

    /**
     * Quarantine a key: a job that warmed from (or produced) this
     * image failed, so drop the in-memory copy, delete the on-disk
     * file, and refuse to serve or store it again for the lifetime of
     * this cache. The journal persists poisoned keys, so a resumed
     * sweep repopulates the set before any job runs and a failed
     * seed's image is never reused across process restarts.
     */
    void poison(uint64_t key);

    /** True if key has been poisoned. */
    bool poisoned(uint64_t key) const;

    WarmCacheStats stats() const;
    const std::string &directory() const { return dir; }

  private:
    std::string filePath(uint64_t key) const;

    mutable std::mutex mu;
    std::string dir;
    std::unordered_map<uint64_t, Image> mem;
    std::unordered_set<uint64_t> bad;
    WarmCacheStats st;
};

} // namespace mpos::core

#endif // MPOS_CORE_WARMCACHE_HH
