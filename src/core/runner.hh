/**
 * @file
 * Concurrent execution of independent experiments.
 *
 * Every Experiment owns its whole simulated machine and is
 * deterministic for a given configuration, so unrelated experiments
 * can run on host threads without any possibility of changing
 * simulated events. The runner exploits that: jobs are submitted by
 * name, execute on a util::ThreadPool (sized by MPOS_JOBS), and
 * results are retrieved in submission order -- so everything built on
 * top produces byte-identical output no matter how many host threads
 * were used.
 *
 * Jobs are allowed to fail: a util::SimError (resource exhaustion,
 * watchdog trip, timeout) is caught in the worker and recorded in the
 * job's ExperimentResult (status/error/attempts) instead of tearing
 * down the sweep. RunnerOptions adds a per-attempt wall-clock budget
 * and bounded retry-with-reseed; surviving jobs are untouched, so
 * their output stays byte-identical whether or not a sibling failed.
 */

#ifndef MPOS_CORE_RUNNER_HH
#define MPOS_CORE_RUNNER_HH

#include <deque>
#include <future>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hh"
#include "util/threadpool.hh"

namespace mpos::core
{

class SweepJournal;

/** Final disposition of one runner job. */
enum class JobStatus : uint8_t
{
    Pending,  ///< Not finished yet (or never ran).
    Ok,       ///< Experiment completed; exp is set.
    Failed,   ///< Every attempt raised a non-timeout error.
    TimedOut, ///< Last attempt exceeded the per-job wall budget.
};

inline const char *
jobStatusName(JobStatus s)
{
    switch (s) {
    case JobStatus::Pending: return "pending";
    case JobStatus::Ok: return "ok";
    case JobStatus::Failed: return "failed";
    case JobStatus::TimedOut: return "timed-out";
    }
    return "unknown";
}

/** One completed (or in-flight) experiment job. */
struct ExperimentResult
{
    std::string name;
    ExperimentConfig cfg;
    std::unique_ptr<Experiment> exp; ///< Set once the job succeeds.
    double wallSeconds = 0;          ///< Host time across all attempts.
    /** Invariant checks performed (0 unless checking was enabled). */
    uint64_t invariantChecks = 0;
    /** Monitor bus transactions over the whole run (always counted);
     *  the host-side events/sec figure divides this by wallSeconds. */
    uint64_t monitorTransactions = 0;
    JobStatus status = JobStatus::Pending;
    std::string error;     ///< Last SimError/exception text if not Ok.
    uint32_t attempts = 0; ///< Attempts consumed (>= 1 once settled).

    bool ok() const { return status == JobStatus::Ok; }
};

/** Scheduling and resilience policy for a runner. */
struct RunnerOptions
{
    unsigned jobs = 0;        ///< Worker threads; 0 = MPOS_JOBS.
    uint32_t maxAttempts = 1; ///< Per-job tries; retries reseed.
    double jobTimeoutSec = 0; ///< Per-attempt wall budget; 0 = none.
    unsigned retryBackoffMs = 25; ///< Host sleep before each retry.
    /**
     * Warm-start cache shared by every job; null disables. The key is
     * computed from each attempt's *effective* config, so a reseeded
     * retry never reuses the failed seed's warm image.
     */
    WarmStartCache *warmCache = nullptr;
    /**
     * Sweep journal; null disables. Workers write a JobStart per
     * attempt and a JobEnd when the job settles, and a failed attempt
     * poisons its warm key both in the cache and in the journal -- so
     * a killed sweep can be resumed without re-running settled jobs
     * and without ever reusing a failed seed's warm image.
     */
    SweepJournal *journal = nullptr;
};

/** Schedules ExperimentConfig jobs over a host thread pool. */
class ExperimentRunner
{
  public:
    static constexpr size_t npos = size_t(-1);

    /** @param jobs Worker threads; 0 means MPOS_JOBS/default. */
    explicit ExperimentRunner(unsigned jobs = 0);

    explicit ExperimentRunner(const RunnerOptions &opt);

    /** Waits for all outstanding jobs. */
    ~ExperimentRunner();

    /**
     * Queue one experiment. Returns its slot index; slots are ordered
     * by submission and never move. Names must be unique.
     */
    size_t submit(std::string name, const ExperimentConfig &cfg);

    /** Slot of a previously submitted name, or npos. */
    size_t find(std::string_view name) const;

    /**
     * Wait for slot idx and return its experiment. Raises
     * util::SimError(JobFailed) if the job did not produce one.
     */
    Experiment &get(size_t idx);

    /** Wait for the named job and return its experiment. */
    Experiment &get(std::string_view name);

    /**
     * Wait for slot idx and return the full result record. Never
     * throws for a failed job: inspect status/error/attempts.
     */
    const ExperimentResult &result(size_t idx);

    /** Block until every submitted job has finished. */
    void waitAll();

    /**
     * All results, in submission order (waits for completion). The
     * ordering guarantee is what makes downstream output independent
     * of the thread count.
     */
    const std::deque<ExperimentResult> &results();

    size_t size() const { return slots.size(); }
    unsigned jobs() const { return pool.threads(); }

    /** Number of settled jobs that did not end Ok (waits for all). */
    size_t failedCount();

  private:
    RunnerOptions opts;
    util::ThreadPool pool;
    // deque: stable element addresses while workers fill slots.
    std::deque<ExperimentResult> slots;
    std::vector<std::future<void>> pending;
};

} // namespace mpos::core

#endif // MPOS_CORE_RUNNER_HH
