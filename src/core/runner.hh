/**
 * @file
 * Concurrent execution of independent experiments.
 *
 * Every Experiment owns its whole simulated machine and is
 * deterministic for a given configuration, so unrelated experiments
 * can run on host threads without any possibility of changing
 * simulated events. The runner exploits that: jobs are submitted by
 * name, execute on a util::ThreadPool (sized by MPOS_JOBS), and
 * results are retrieved in submission order -- so everything built on
 * top produces byte-identical output no matter how many host threads
 * were used.
 */

#ifndef MPOS_CORE_RUNNER_HH
#define MPOS_CORE_RUNNER_HH

#include <deque>
#include <future>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hh"
#include "util/threadpool.hh"

namespace mpos::core
{

/** One completed (or in-flight) experiment job. */
struct ExperimentResult
{
    std::string name;
    ExperimentConfig cfg;
    std::unique_ptr<Experiment> exp; ///< Set once the job finishes.
    double wallSeconds = 0;          ///< Host time: build + warm + run.
    /** Invariant checks performed (0 unless checking was enabled). */
    uint64_t invariantChecks = 0;
};

/** Schedules ExperimentConfig jobs over a host thread pool. */
class ExperimentRunner
{
  public:
    static constexpr size_t npos = size_t(-1);

    /** @param jobs Worker threads; 0 means MPOS_JOBS/default. */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Waits for all outstanding jobs. */
    ~ExperimentRunner();

    /**
     * Queue one experiment. Returns its slot index; slots are ordered
     * by submission and never move. Names must be unique.
     */
    size_t submit(std::string name, const ExperimentConfig &cfg);

    /** Slot of a previously submitted name, or npos. */
    size_t find(std::string_view name) const;

    /** Wait for slot idx and return its experiment. */
    Experiment &get(size_t idx);

    /** Wait for the named job and return its experiment. */
    Experiment &get(std::string_view name);

    /** Wait for slot idx and return the full result record. */
    const ExperimentResult &result(size_t idx);

    /** Block until every submitted job has finished. */
    void waitAll();

    /**
     * All results, in submission order (waits for completion). The
     * ordering guarantee is what makes downstream output independent
     * of the thread count.
     */
    const std::deque<ExperimentResult> &results();

    size_t size() const { return slots.size(); }
    unsigned jobs() const { return pool.threads(); }

  private:
    util::ThreadPool pool;
    // deque: stable element addresses while workers fill slots.
    std::deque<ExperimentResult> slots;
    std::vector<std::future<void>> pending;
};

} // namespace mpos::core

#endif // MPOS_CORE_RUNNER_HH
