#include "core/journal.hh"

#include <unistd.h>

#include <cstring>

#include "core/experiment.hh"
#include "core/warmcache.hh"
#include "sim/fault/plan.hh"
#include "sim/snapshot/container.hh"
#include "util/binio.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::core
{

namespace
{

constexpr char journalMagic[8] = {'M', 'P', 'O', 'S', 'J', 'R', 'N',
                                  '1'};
constexpr uint32_t journalVersion = 1;
constexpr size_t journalHeaderBytes = sizeof(journalMagic) + 4;

/** Largest payload replay will accept (journal files are small). */
constexpr uint32_t maxPayloadBytes = 16u << 20;

} // namespace

uint64_t
SweepJournal::jobConfigHash(const ExperimentConfig &cfg)
{
    // The warm key covers every event-affecting field of the resolved
    // config; extend it with the measurement-phase knobs it excludes
    // so jobs that warm identically but measure differently get
    // distinct journal identities.
    const ExperimentConfig res = Experiment::resolvedConfig(cfg);
    util::ByteWriter w;
    w.u64(warmConfigHash(res));
    w.u64(res.measureCycles);
    w.b(res.collectMisses);
    w.b(res.collectResim);
    return sim::snapshot::fnv1a(w.bytes().data(), w.size());
}

SweepJournal::~SweepJournal()
{
    if (f)
        std::fclose(f);
}

void
SweepJournal::open(const std::string &dir, bool resume)
{
    const std::string path = dir + "/sweep.mpj";
    if (f)
        util::raise(util::ErrCode::BadConfig,
                    "journal already open");
    bool fresh = true;
    if (resume) {
        std::FILE *probe = std::fopen(path.c_str(), "rb");
        if (probe) {
            std::fclose(probe);
            replay(path);
            fresh = false;
        }
    }
    if (fresh) {
        f = std::fopen(path.c_str(), "wb");
        if (!f)
            util::raise(util::ErrCode::BadConfig,
                        "cannot create journal '%s'", path.c_str());
        util::ByteWriter w;
        w.raw(journalMagic, sizeof(journalMagic));
        w.u32(journalVersion);
        std::fwrite(w.bytes().data(), 1, w.size(), f);
        std::fflush(f);
        return;
    }
    // Resume: drop any torn tail before appending, so a new record
    // never lands after garbage.
    f = std::fopen(path.c_str(), "ab");
    if (!f)
        util::raise(util::ErrCode::BadConfig,
                    "cannot reopen journal '%s'", path.c_str());
}

void
SweepJournal::replay(const std::string &path)
{
    std::vector<uint8_t> bytes;
    if (!sim::snapshot::readFile(path, bytes))
        util::raise(util::ErrCode::BadConfig,
                    "cannot read journal '%s'", path.c_str());
    if (bytes.size() < journalHeaderBytes ||
        std::memcmp(bytes.data(), journalMagic, sizeof(journalMagic)) !=
            0)
        util::raise(util::ErrCode::BadConfig,
                    "'%s' is not a sweep journal", path.c_str());
    {
        util::ByteReader hr(bytes.data() + sizeof(journalMagic), 4);
        const uint32_t version = hr.u32();
        if (version != journalVersion)
            util::raise(util::ErrCode::BadConfig,
                        "journal '%s' has version %u, this build "
                        "reads %u",
                        path.c_str(), version, journalVersion);
    }

    size_t good = journalHeaderBytes;
    size_t off = journalHeaderBytes;
    while (off < bytes.size()) {
        // Frame: u32 len, payload, u64 checksum. Anything that does
        // not parse cleanly from here on is the torn tail of the
        // record the kill interrupted: stop, do not raise.
        if (bytes.size() - off < 4)
            break;
        util::ByteReader lr(bytes.data() + off, 4);
        const uint32_t len = lr.u32();
        if (len > maxPayloadBytes || bytes.size() - off - 4 < len ||
            bytes.size() - off - 4 - len < 8)
            break;
        const uint8_t *payload = bytes.data() + off + 4;
        util::ByteReader sr(payload + len, 8);
        const uint64_t want = sr.u64();
        if (sim::snapshot::fnv1a(payload, len) != want)
            break;
        bool parsed = true;
        try {
            util::ByteReader r(payload, len);
            const uint8_t type = r.u8();
            switch (type) {
            case journalPlan: {
                std::string name = r.str();
                const uint64_t hash = r.u64();
                bool seen = false;
                for (const auto &[n, h] : st.plan)
                    if (n == name)
                        seen = true;
                if (!seen)
                    st.plan.emplace_back(std::move(name), hash);
                break;
            }
            case journalJobStart: {
                JournalJobStart s;
                s.name = r.str();
                s.configHash = r.u64();
                s.seed = r.u64();
                s.attempt = r.u32();
                s.requestTag = r.str();
                st.started[s.name] = std::move(s);
                break;
            }
            case journalJobEnd: {
                JournalJobRow row;
                row.name = r.str();
                row.configHash = r.u64();
                row.status = r.u8();
                row.attempts = r.u32();
                row.error = r.str();
                row.monitorTransactions = r.u64();
                row.invariantChecks = r.u64();
                row.kind = r.u8();
                row.cpus = r.u32();
                row.measureCycles = r.u64();
                st.jobs[row.name] = std::move(row);
                break;
            }
            case journalAnalysisEnd: {
                JournalAnalysis a;
                a.name = r.str();
                a.ok = r.b();
                a.error = r.str();
                a.output = r.str();
                st.analyses[a.name] = std::move(a);
                break;
            }
            case journalPoisonKey:
                st.poisonedKeys.push_back(r.u64());
                break;
            default:
                parsed = false;
                break;
            }
            if (parsed && !r.atEnd())
                parsed = false;
        } catch (const util::SimError &) {
            parsed = false;
        }
        if (!parsed)
            break;
        off += 4 + size_t(len) + 8;
        good = off;
        ++st.records;
    }
    if (good < bytes.size()) {
        st.truncatedTail = true;
        util::warn("journal: dropping %zu torn byte(s) at end of %s",
                   bytes.size() - good, path.c_str());
        if (::truncate(path.c_str(), off_t(good)) != 0)
            util::raise(util::ErrCode::BadConfig,
                        "cannot truncate torn journal '%s'",
                        path.c_str());
    }
}

void
SweepJournal::append(const std::vector<uint8_t> &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    if (!f)
        return;
    util::ByteWriter w;
    w.u32(uint32_t(payload.size()));
    w.raw(payload.data(), payload.size());
    w.u64(sim::snapshot::fnv1a(payload.data(), payload.size()));
    if (sim::crashPointArmed("journal.mid-append")) {
        // Torn-frame fault: commit half the frame and die. Replay
        // must drop exactly this record and resume cleanly.
        std::fwrite(w.bytes().data(), 1, w.size() / 2, f);
        std::fflush(f);
        sim::crashNow("journal.mid-append");
    }
    std::fwrite(w.bytes().data(), 1, w.size(), f);
    std::fflush(f);
}

void
SweepJournal::appendPlan(const std::string &name, uint64_t config_hash)
{
    util::ByteWriter w;
    w.u8(journalPlan);
    w.str(name);
    w.u64(config_hash);
    append(w.bytes());
}

void
SweepJournal::appendJobStart(const std::string &name,
                             uint64_t config_hash, uint64_t seed,
                             uint32_t attempt,
                             const std::string &request_tag)
{
    util::ByteWriter w;
    w.u8(journalJobStart);
    w.str(name);
    w.u64(config_hash);
    w.u64(seed);
    w.u32(attempt);
    w.str(request_tag);
    append(w.bytes());
}

void
SweepJournal::appendJobEnd(const JournalJobRow &row)
{
    // The two bracketing crash points model the classic write-ahead
    // hazard windows: die before the outcome is durable (the job
    // re-runs on resume) and die after it is durable but before the
    // caller consumed it (resume serves the journaled row).
    sim::crashPoint("journal.pre-append");
    util::ByteWriter w;
    w.u8(journalJobEnd);
    w.str(row.name);
    w.u64(row.configHash);
    w.u8(row.status);
    w.u32(row.attempts);
    w.str(row.error);
    w.u64(row.monitorTransactions);
    w.u64(row.invariantChecks);
    w.u8(row.kind);
    w.u32(row.cpus);
    w.u64(row.measureCycles);
    append(w.bytes());
    sim::crashPoint("journal.post-append");
}

void
SweepJournal::appendAnalysisEnd(const std::string &name, bool ok,
                                const std::string &error,
                                const std::string &output)
{
    sim::crashPoint("analysis.pre-record");
    util::ByteWriter w;
    w.u8(journalAnalysisEnd);
    w.str(name);
    w.b(ok);
    w.str(error);
    w.str(output);
    append(w.bytes());
    sim::crashPoint("analysis.post-record");
}

void
SweepJournal::appendPoison(uint64_t key)
{
    util::ByteWriter w;
    w.u8(journalPoisonKey);
    w.u64(key);
    append(w.bytes());
}

} // namespace mpos::core
