/**
 * @file
 * OS-induced application misses (Figure 10): application misses whose
 * cache block was displaced by an intervening OS reference, split
 * into instruction and data components.
 */

#ifndef MPOS_CORE_AP_DISPOS_HH
#define MPOS_CORE_AP_DISPOS_HH

#include "core/miss_classify.hh"

namespace mpos::core
{

/** Figure 10 quantities. */
struct ApDisposReport
{
    uint64_t apDisposI = 0;
    uint64_t apDisposD = 0;
    uint64_t appMissesI = 0;
    uint64_t appMissesD = 0;
    double fracOfAppPct = 0;  ///< Ap_dispos / all application misses.
    double iShareOfAppPct = 0; ///< I component, normalized to 100.
    double dShareOfAppPct = 0;
};

ApDisposReport computeApDispos(const MissCounts &mc);

} // namespace mpos::core

#endif // MPOS_CORE_AP_DISPOS_HH
