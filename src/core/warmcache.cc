#include "core/warmcache.hh"

#include <cstdio>

#include "core/experiment.hh"
#include "sim/snapshot/container.hh"
#include "util/binio.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::core
{

uint64_t
warmConfigHash(const ExperimentConfig &cfg)
{
    // Serialize every event-affecting field into a flat buffer and
    // FNV-1a it. Field order is part of the key format; bumping the
    // snapshot formatVersion (mixed in below) invalidates all cached
    // images whenever either this list or the serialized state layout
    // changes.
    util::ByteWriter w;
    w.u32(sim::snapshot::formatVersion);
    w.u8(uint8_t(cfg.kind));
    w.u64(cfg.warmupCycles);

    const sim::MachineConfig &m = cfg.machine;
    w.u32(m.numCpus);
    w.u8(uint8_t(m.protocol));
    w.u8(uint8_t(m.lockPolicy));
    w.u32(m.lineBytes);
    w.u32(m.icacheBytes);
    w.u32(m.icacheAssoc);
    w.u32(m.l1dBytes);
    w.u32(m.l1dAssoc);
    w.u32(m.l2dBytes);
    w.u32(m.l2dAssoc);
    w.u64(m.memBytes);
    w.u32(m.pageBytes);
    w.u32(m.tlbEntries);
    w.u64(m.busMissStall);
    w.u64(m.l2HitStall);
    w.u64(m.busOccupancy);
    w.u64(m.cyclesPerInstr);
    w.u32(m.instrPerLine);
    w.b(m.cachedLockRmw);
    w.u64(m.syncBusOpCycles);
    w.u32(m.syncOpsPerAcquire);
    w.u64(m.uncachedAccessCycles);
    w.u64(m.clockTickCycles);
    w.u64(m.faultSeed);
    w.u64(m.faultHorizon);
    // Excluded on purpose (event-neutral by construction, so a warm
    // image is shareable across them): slowSim, check, watchdogCycles,
    // trace/metrics/profile, simThreads -- and every measurement-phase
    // knob (measureCycles, collectMisses, collectResim,
    // timeoutSeconds, useRecommendedPool, the cache pointer itself).

    const kernel::KernelConfig &k = cfg.kernelCfg;
    w.u32(k.layout.maxProcs);
    w.b(k.layout.optimizedTextLayout);
    w.u32(k.layout.numBuffers);
    w.u32(k.layout.numInodes);
    w.u32(k.layout.pageBytes);
    w.u64(k.layout.memBytes);
    w.u32(k.layout.lineBytes);
    w.u32(k.maxUserLocks);
    w.u64(k.diskLatency);
    w.u64(k.diskPerBlock);
    w.u64(k.spinGap);
    w.u32(k.userLockSpins);
    w.b(k.affinitySched);
    w.u32(k.affinityScanDepth);
    w.u8(uint8_t(k.blockOpMode));
    w.u64(k.userPoolPages);
    w.u32(k.reclaimBatch);
    w.u32(k.reclaimScanEntries);
    w.u32(k.freeLowWater);
    w.i64(k.quantumTicks);
    w.u64(k.interactiveShare);
    w.u64(k.rngSeed);

    const workload::WorkloadOptions &o = cfg.options;
    w.u64(o.seed);
    w.u32(o.pmakeFiles);
    w.u32(o.pmakeMaxJobs);
    w.u32(o.editSessions);
    w.u64(o.editMeanGap);
    w.u32(o.oracleServers);
    w.u32(o.mp3dProcs);

    return sim::snapshot::fnv1a(w.bytes().data(), w.size());
}

WarmStartCache::WarmStartCache(std::string directory)
    : dir(std::move(directory))
{
}

std::string
WarmStartCache::filePath(uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "warm-%016llx",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

void
WarmStartCache::poison(uint64_t key)
{
    bool unlink = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        bad.insert(key);
        mem.erase(key);
        unlink = !dir.empty();
    }
    if (unlink)
        std::remove(filePath(key).c_str());
}

bool
WarmStartCache::poisoned(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mu);
    return bad.count(key) != 0;
}

WarmStartCache::Image
WarmStartCache::lookup(uint64_t key)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (bad.count(key)) {
            ++st.misses;
            return nullptr;
        }
        auto it = mem.find(key);
        if (it != mem.end()) {
            ++st.hits;
            return it->second;
        }
    }
    if (!dir.empty()) {
        std::vector<uint8_t> bytes;
        if (sim::snapshot::readFile(filePath(key), bytes)) {
            // Validate before promoting: a truncated or stale file is
            // a miss, not an error.
            try {
                const auto parsed = sim::snapshot::parse(bytes);
                if (parsed.configHash() == key) {
                    auto img = std::make_shared<
                        const std::vector<uint8_t>>(std::move(bytes));
                    std::lock_guard<std::mutex> lock(mu);
                    ++st.hits;
                    st.bytesRead += img->size();
                    mem.emplace(key, img);
                    return img;
                }
            } catch (const util::SimError &e) {
                util::warn("warm cache: discarding %s (%s)",
                           filePath(key).c_str(), e.what());
            }
        }
    }
    std::lock_guard<std::mutex> lock(mu);
    ++st.misses;
    return nullptr;
}

WarmStartCache::Image
WarmStartCache::store(uint64_t key, std::vector<uint8_t> bytes)
{
    auto img =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    bool writeDisk = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (bad.count(key))
            return img; // quarantined: keep it out of the cache
        ++st.stores;
        auto [it, inserted] = mem.emplace(key, img);
        if (!inserted)
            img = it->second; // first store wins; bytes are identical
        else
            writeDisk = !dir.empty();
    }
    if (writeDisk) {
        if (sim::snapshot::writeFileAtomic(filePath(key), *img)) {
            std::lock_guard<std::mutex> lock(mu);
            st.bytesWritten += img->size();
        }
    }
    return img;
}

WarmCacheStats
WarmStartCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

} // namespace mpos::core
