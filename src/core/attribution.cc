#include "core/attribution.hh"

namespace mpos::core
{

Attribution::Attribution(const KernelLayout &layout)
    : map(layout), disposIByRoutine(layout.numRoutines(), 0),
      dMissByRoutine(layout.numRoutines(), 0)
{
}

uint64_t
Attribution::disposMissesOfRoutine(kernel::RoutineId r) const
{
    return r < disposIByRoutine.size() ? disposIByRoutine[r] : 0;
}

uint64_t
Attribution::blockOpMissesOf(const char *routine_name) const
{
    const kernel::RoutineId r = map.routine(routine_name);
    return dMissByRoutine[r];
}

void
Attribution::onMiss(const ClassifiedMiss &miss)
{
    const auto &rec = miss.rec;
    if (rec.ctx.mode != ExecMode::Kernel)
        return; // attribution concerns OS misses only

    if (rec.cache == CacheKind::Instr) {
        // Figure 5: where does the OS interfere with itself?
        if (miss.cls == MissClass::Dispos) {
            const kernel::RoutineId r = map.routineAt(rec.lineAddr);
            if (r != kernel::invalidRoutine)
                ++disposIByRoutine[r];
        }
        return;
    }

    // Data miss: attribute to structure and to executing routine.
    const KStruct st = map.structAt(rec.lineAddr);
    ++osDByStruct[unsigned(st)];

    const kernel::RoutineId rid = rec.ctx.routine;
    RoutineGroup group = RoutineGroup::Other;
    if (rid != kernel::invalidRoutine && rid < map.numRoutines()) {
        ++dMissByRoutine[rid];
        group = map.routineInfo(rid).group;
        if (group == RoutineGroup::BlockOp)
            ++blockOpD;
    }

    if (miss.cls != MissClass::Sharing)
        return;

    ++sharingTally.total;
    // Pages reached through block operations have no static symbol;
    // attribute them through the executing routine, as the paper's
    // subroutine instrumentation does (the Bcopy/Bclear categories).
    if ((st == KStruct::UserPage || st == KStruct::BufData) &&
        rid != kernel::invalidRoutine) {
        const std::string &rn = map.routineInfo(rid).name;
        if (rn == "bcopy") {
            ++sharingTally.bcopyPages;
            return;
        }
        if (rn == "bclear") {
            ++sharingTally.bclearPages;
            return;
        }
    }
    ++sharingTally.count[unsigned(st)];

    // Migration misses: Sharing misses on the per-process structures
    // (kernel stack, the three user-structure sections, and the
    // process table) -- the paper's conservative definition.
    switch (st) {
      case KStruct::KernelStack:
        ++migKStack;
        ++migGroup[unsigned(group)];
        break;
      case KStruct::Pcb:
      case KStruct::Eframe:
      case KStruct::URest:
        ++migUStruct;
        ++migGroup[unsigned(group)];
        break;
      case KStruct::ProcTable:
        ++migProcTab;
        ++migGroup[unsigned(group)];
        break;
      default:
        break;
    }
}

} // namespace mpos::core
