/**
 * @file
 * Lock statistics: the paper's Section 5 measurements. Produces the
 * per-lock profile of Table 12 (acquire interval, failed-acquire
 * fraction, waiters at release, same-CPU locality, cached/uncached
 * bus operations), the contention scaling of Figure 11, and the sync
 * stall comparison of Table 10 (together with sim::SyncTransport).
 */

#ifndef MPOS_CORE_LOCK_STATS_HH
#define MPOS_CORE_LOCK_STATS_HH

#include <cstdint>
#include <vector>

#include "kernel/locks.hh"
#include "sim/syncbus.hh"

namespace mpos::core
{

using sim::Cycle;
using sim::LockEvent;

/** Accumulated statistics of one lock. */
struct LockProfile
{
    uint64_t acquires = 0;
    uint64_t fails = 0;
    uint64_t releases = 0;
    Cycle firstAcquire = 0;
    Cycle lastAcquire = 0;
    /** Consecutive acquires by the same CPU with no intervening
     *  access by anyone else. */
    uint64_t sameCpuRuns = 0;
    uint64_t releasesWithWaiters = 0;
    uint64_t waitersSum = 0;

    int32_t lastAcquirer = -1;
    bool disturbed = false;

    /** Mean cycles between consecutive successful acquires. */
    double
    acquireInterval() const
    {
        return acquires > 1 ? double(lastAcquire - firstAcquire) /
                                  double(acquires - 1)
                            : 0.0;
    }

    /** Fraction of acquire attempts that found the lock taken. The
     *  paper counts attempts, not individual spin polls, so a spin
     *  episode counts once. */
    double
    failedFraction() const
    {
        return acquires + failEpisodes
                   ? double(failEpisodes) /
                         double(acquires + failEpisodes)
                   : 0.0;
    }

    /** Mean number of waiters when released with >= 1 waiter. */
    double
    waitersIfAny() const
    {
        return releasesWithWaiters
                   ? double(waitersSum) / double(releasesWithWaiters)
                   : 0.0;
    }

    double
    sameCpuFraction() const
    {
        return acquires > 1 ? double(sameCpuRuns) / double(acquires - 1)
                            : 0.0;
    }

    uint64_t failEpisodes = 0; ///< Spin episodes (not single polls).
    bool inFailEpisode[64] = {};

    /// @name Wait-time distribution and hand-off latency
    /// Per-primitive lock figures: how long an attempt that found the
    /// lock taken waited before winning it, and how long a contended
    /// lock sat released before the next holder picked it up.
    /// @{
    Cycle episodeStart[64] = {};  ///< First failed poll of each CPU.
    uint64_t waitCount = 0;       ///< Contended acquires.
    Cycle waitCyclesSum = 0;      ///< Total cycles spent waiting.
    Cycle waitMax = 0;
    uint64_t waitHist[32] = {};   ///< log2-bucketed wait times.
    uint64_t handoffCount = 0;    ///< Acquires after a contended release.
    Cycle handoffCyclesSum = 0;   ///< Release-to-next-acquire gaps.
    Cycle lastContendedRelease = 0;
    bool handoffPending = false;

    double
    meanWait() const
    {
        return waitCount ? double(waitCyclesSum) / double(waitCount)
                         : 0.0;
    }

    double
    meanHandoff() const
    {
        return handoffCount
                   ? double(handoffCyclesSum) / double(handoffCount)
                   : 0.0;
    }
    /// @}
};

/** Listener aggregating kernel lock events. */
class LockStats : public kernel::LockListener
{
  public:
    explicit LockStats(uint32_t num_locks) : profiles(num_locks) {}

    void lockEvent(Cycle cycle, sim::CpuId cpu, uint32_t lock_id,
                   LockEvent ev, uint32_t waiters) override;

    const LockProfile &profile(uint32_t lock_id) const
    {
        return profiles[lock_id];
    }
    uint32_t numLocks() const { return uint32_t(profiles.size()); }

    /** Failed acquire episodes per millisecond of wall time
     *  (Figure 11; 1 ms = 33,000 cycles at 33 MHz). */
    double failsPerMs(uint32_t lock_id, Cycle elapsed) const;

    /** Reset (e.g. after warmup). */
    void clear();

  private:
    std::vector<LockProfile> profiles;
};

/** Table 10: sync stall under both protocols, from the transport. */
struct SyncStallReport
{
    double uncachedPct = 0.0; ///< "Current machine" column.
    double cachedPct = 0.0;   ///< "Atomic RMW + caches" column.
};

SyncStallReport syncStall(const sim::SyncTransport &st,
                          Cycle uncached_base, Cycle cached_base,
                          Cycle non_idle);

} // namespace mpos::core

#endif // MPOS_CORE_LOCK_STATS_HH
