#include "core/blockop_stats.hh"

namespace mpos::core
{

BlockOpReport
computeBlockOps(const Attribution &attr, const MissCounts &mc,
                const sim::CycleAccount &acct, sim::Cycle miss_stall)
{
    BlockOpReport r;
    r.copyMisses = attr.blockOpMissesOf("bcopy");
    r.clearMisses = attr.blockOpMissesOf("bclear");
    r.traverseMisses = attr.blockOpMissesOf("pfdat_scan");
    const uint64_t osd = mc.osDTotal();
    if (osd) {
        r.copyPctOfOsD = 100.0 * double(r.copyMisses) / double(osd);
        r.clearPctOfOsD = 100.0 * double(r.clearMisses) / double(osd);
        r.traversePctOfOsD =
            100.0 * double(r.traverseMisses) / double(osd);
        r.totalPctOfOsD =
            r.copyPctOfOsD + r.clearPctOfOsD + r.traversePctOfOsD;
    }
    r.stallPctNonIdle =
        stallPct(r.copyMisses + r.clearMisses + r.traverseMisses,
                 acct.nonIdle(), miss_stall);
    return r;
}

BlockSizeRow
blockSizes(const kernel::BlockOpStats &ops, kernel::BlockKind kind)
{
    BlockSizeRow r;
    const auto k = unsigned(kind);
    const uint64_t full =
        ops.invocations[k][unsigned(kernel::BlockClass::FullPage)];
    const uint64_t reg =
        ops.invocations[k]
                       [unsigned(kernel::BlockClass::RegularFragment)];
    const uint64_t irr =
        ops.invocations[k]
                       [unsigned(kernel::BlockClass::IrregularChunk)];
    r.invocations = full + reg + irr;
    if (r.invocations) {
        r.fullPagePct = 100.0 * double(full) / double(r.invocations);
        r.regularFragmentPct =
            100.0 * double(reg) / double(r.invocations);
        r.irregularPct = 100.0 * double(irr) / double(r.invocations);
    }
    return r;
}

kernel::BlockOpStats
blockOpDelta(const kernel::BlockOpStats &after,
             const kernel::BlockOpStats &before)
{
    kernel::BlockOpStats d;
    for (unsigned k = 0; k < 3; ++k) {
        for (unsigned c = 0; c < 3; ++c) {
            d.invocations[k][c] =
                after.invocations[k][c] - before.invocations[k][c];
        }
        d.bytes[k] = after.bytes[k] - before.bytes[k];
    }
    return d;
}

} // namespace mpos::core
