/**
 * @file
 * Process-migration miss reports: Table 4 (migration misses as a
 * fraction of OS data misses, and their stall cost) and Table 5 (the
 * share of migration misses incurred in run-queue management,
 * low-level exception handling, and read/write syscall setup).
 */

#ifndef MPOS_CORE_MIGRATION_HH
#define MPOS_CORE_MIGRATION_HH

#include "core/attribution.hh"
#include "core/stall.hh"

namespace mpos::core
{

/** Table 4 row. */
struct MigrationReport
{
    double kernelStackPctOfOsD = 0;
    double userStructPctOfOsD = 0;
    double procTablePctOfOsD = 0;
    double totalPctOfOsD = 0;
    double stallPctNonIdle = 0;
    uint64_t totalMisses = 0;
};

MigrationReport computeMigration(const Attribution &attr,
                                 const MissCounts &mc,
                                 const sim::CycleAccount &acct,
                                 sim::Cycle miss_stall = 35);

/** Table 5 row. */
struct MigrationOpsReport
{
    double runQueuePct = 0;   ///< Management of the run queue.
    double lowLevelPct = 0;   ///< Low-level exception handling.
    double rdwrSetupPct = 0;  ///< Read/write syscall recognition.
    double totalPct = 0;
};

MigrationOpsReport computeMigrationOps(const Attribution &attr);

} // namespace mpos::core

#endif // MPOS_CORE_MIGRATION_HH
