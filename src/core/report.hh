/**
 * @file
 * Formatting helpers shared by the bench binaries: number formatting
 * and the standard "paper vs measured" presentation.
 */

#ifndef MPOS_CORE_REPORT_HH
#define MPOS_CORE_REPORT_HH

#include <cstdint>
#include <string>

namespace mpos::core
{

/** Fixed-point with one decimal ("12.3"). */
std::string fmt1(double v);

/** Fixed-point with two decimals. */
std::string fmt2(double v);

/** Thousands-grouped integer ("1,234,567"). */
std::string fmtCount(uint64_t v);

/** Section banner for bench output. */
void banner(const std::string &title);

/** Note line explaining the paper-vs-measured convention. */
void shapeNote();

} // namespace mpos::core

#endif // MPOS_CORE_REPORT_HH
