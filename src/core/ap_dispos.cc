#include "core/ap_dispos.hh"

namespace mpos::core
{

ApDisposReport
computeApDispos(const MissCounts &mc)
{
    ApDisposReport r;
    r.apDisposI = mc.appI[unsigned(MissClass::Dispos)];
    r.apDisposD = mc.appD[unsigned(MissClass::Dispos)];
    for (uint32_t i = 0; i < numMissClasses; ++i) {
        r.appMissesI += mc.appI[i];
        r.appMissesD += mc.appD[i];
    }
    const uint64_t all = r.appMissesI + r.appMissesD;
    if (all) {
        r.fracOfAppPct =
            100.0 * double(r.apDisposI + r.apDisposD) / double(all);
        r.iShareOfAppPct = 100.0 * double(r.apDisposI) / double(all);
        r.dShareOfAppPct = 100.0 * double(r.apDisposD) / double(all);
    }
    return r;
}

} // namespace mpos::core
