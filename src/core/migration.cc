#include "core/migration.hh"

namespace mpos::core
{

MigrationReport
computeMigration(const Attribution &attr, const MissCounts &mc,
                 const sim::CycleAccount &acct, sim::Cycle miss_stall)
{
    MigrationReport r;
    const uint64_t osd = mc.osDTotal();
    r.totalMisses = attr.migrationTotal();
    if (osd) {
        r.kernelStackPctOfOsD =
            100.0 * double(attr.migrationKernelStack()) / double(osd);
        r.userStructPctOfOsD =
            100.0 * double(attr.migrationUserStruct()) / double(osd);
        r.procTablePctOfOsD =
            100.0 * double(attr.migrationProcTable()) / double(osd);
        r.totalPctOfOsD = r.kernelStackPctOfOsD +
                          r.userStructPctOfOsD + r.procTablePctOfOsD;
    }
    r.stallPctNonIdle =
        stallPct(r.totalMisses, acct.nonIdle(), miss_stall);
    return r;
}

MigrationOpsReport
computeMigrationOps(const Attribution &attr)
{
    MigrationOpsReport r;
    const uint64_t total = attr.migrationTotal();
    if (!total)
        return r;
    r.runQueuePct =
        100.0 *
        double(attr.migrationByGroup(RoutineGroup::RunQueueMgmt)) /
        double(total);
    r.lowLevelPct =
        100.0 *
        double(attr.migrationByGroup(RoutineGroup::LowLevelExc)) /
        double(total);
    r.rdwrSetupPct =
        100.0 *
        double(attr.migrationByGroup(RoutineGroup::RdWrSetup)) /
        double(total);
    r.totalPct = r.runQueuePct + r.lowLevelPct + r.rdwrSetupPct;
    return r;
}

} // namespace mpos::core
