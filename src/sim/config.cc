/**
 * @file
 * The single machine-geometry validator.
 *
 * Historically each component policed its own corner: Machine rejected
 * non-power-of-two pages, CpuCaches rejected bad line sizes, and
 * MemorySystem rejected CPU counts the snoop filter cannot mask. A
 * config that failed one check could already have built (and sized)
 * everything that preceded it. All geometry now funnels through
 * validateConfig(), called from the constructors' initializer lists so
 * nothing is allocated for an impossible machine.
 */

#include <bit>

#include "sim/types.hh"
#include "util/error.hh"

namespace mpos::sim
{

namespace
{

/** One cache shape: the checks Cache's constructor would fail later,
 *  raised here with the machine-level parameter name attached. */
void
validateCache(const char *name, uint64_t bytes, uint32_t assoc,
              uint32_t line_bytes)
{
    using util::ErrCode;
    if (assoc == 0)
        util::raise(ErrCode::BadConfig, "%s associativity is zero",
                    name);
    if (bytes == 0 || bytes % (uint64_t(assoc) * line_bytes) != 0)
        util::raise(ErrCode::BadConfig,
                    "%s capacity %llu not a nonzero multiple of "
                    "assoc %u x line %u bytes", name,
                    static_cast<unsigned long long>(bytes), assoc,
                    line_bytes);
    if (!std::has_single_bit(bytes / (uint64_t(assoc) * line_bytes)))
        util::raise(ErrCode::BadConfig,
                    "%s set count %llu not a power of two", name,
                    static_cast<unsigned long long>(
                        bytes / (uint64_t(assoc) * line_bytes)));
}

} // namespace

const MachineConfig &
validateConfig(const MachineConfig &cfg)
{
    using util::ErrCode;

    if (cfg.numCpus == 0)
        util::raise(ErrCode::BadConfig, "numCpus is zero");
    if (cfg.numCpus > 64)
        util::raise(ErrCode::BadConfig,
                    "the per-line sharer bitmasks (snoop filter, sync "
                    "transport, lock spin masks) hold at most 64 CPUs, "
                    "got %u",
                    cfg.numCpus);

    if (uint8_t(cfg.protocol) >= numProtocols)
        util::raise(ErrCode::BadConfig,
                    "unknown coherence protocol %u",
                    unsigned(cfg.protocol));

    if (uint8_t(cfg.lockPolicy) >= numLockPolicies)
        util::raise(ErrCode::BadConfig, "unknown lock policy %u",
                    unsigned(cfg.lockPolicy));

    if (!std::has_single_bit(cfg.lineBytes))
        util::raise(ErrCode::BadConfig,
                    "line size %u not a power of two", cfg.lineBytes);
    if (cfg.lineBytes < 4)
        util::raise(ErrCode::BadConfig,
                    "line size %u leaves no room for the packed "
                    "valid/dirty tag bits", cfg.lineBytes);

    if (!std::has_single_bit(cfg.pageBytes))
        util::raise(ErrCode::BadConfig,
                    "page size %u not a power of two", cfg.pageBytes);
    if (cfg.pageBytes < cfg.lineBytes)
        util::raise(ErrCode::BadConfig,
                    "page size %u smaller than the %u-byte line",
                    cfg.pageBytes, cfg.lineBytes);

    if (cfg.memBytes == 0 || cfg.memBytes % cfg.pageBytes != 0)
        util::raise(ErrCode::BadConfig,
                    "memory size %llu not a nonzero multiple of the "
                    "%u-byte page",
                    static_cast<unsigned long long>(cfg.memBytes),
                    cfg.pageBytes);

    validateCache("icache", cfg.icacheBytes, cfg.icacheAssoc,
                  cfg.lineBytes);
    validateCache("l1d", cfg.l1dBytes, cfg.l1dAssoc, cfg.lineBytes);
    validateCache("l2d", cfg.l2dBytes, cfg.l2dAssoc, cfg.lineBytes);

    if (cfg.tlbEntries == 0)
        util::raise(ErrCode::BadConfig, "tlbEntries is zero");

    if (cfg.instrPerLine == 0 || cfg.cyclesPerInstr == 0)
        util::raise(ErrCode::BadConfig,
                    "instrPerLine %u / cyclesPerInstr %llu must be "
                    "nonzero", cfg.instrPerLine,
                    static_cast<unsigned long long>(cfg.cyclesPerInstr));

    if (cfg.effectiveSimThreads() > 64)
        util::raise(ErrCode::BadConfig,
                    "simThreads %u exceeds the 64-thread cap",
                    cfg.effectiveSimThreads());

    return cfg;
}

} // namespace mpos::sim
