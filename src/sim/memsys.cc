#include "sim/memsys.hh"

#include <bit>

#include "sim/check/checker.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::sim
{

CpuCaches::CpuCaches(CpuId id, const MachineConfig &cfg)
    : cpu(id),
      icache("icache" + std::to_string(id), cfg.icacheBytes,
             cfg.icacheAssoc, cfg.lineBytes),
      l1d("l1d" + std::to_string(id), cfg.l1dBytes, cfg.l1dAssoc,
          cfg.lineBytes),
      l2d("l2d" + std::to_string(id), cfg.l2dBytes, cfg.l2dAssoc,
          cfg.lineBytes),
      l2state(cfg.numLines(), Coh::Invalid),
      lineShift(uint32_t(std::countr_zero(cfg.lineBytes))),
      memBytes(cfg.memBytes)
{
    // Geometry is validated centrally (validateConfig) before any
    // hierarchy is built; the Cache constructors re-check their own
    // shapes for direct (non-MemorySystem) users.
}

void
CpuCaches::rangePanic(Addr line) const
{
    util::panic("coherence state for line %llx outside the "
                "%llu-byte configured memory",
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(memBytes));
}

MemorySystem::MemorySystem(const MachineConfig &config, Monitor &monitor)
    : cfg(validateConfig(config)), mon(monitor),
      sharers(cfg.numLines(), 0),
      lineShift(uint32_t(std::countr_zero(cfg.lineBytes))),
      lineMask(~Addr(cfg.lineBytes - 1)),
      lineExecCycles(Cycle(cfg.instrPerLine) * cfg.cyclesPerInstr),
      slowSim(cfg.slowSim || slowSimForced())
{
    hier.reserve(cfg.numCpus);
    for (CpuId c = 0; c < cfg.numCpus; ++c)
        hier.emplace_back(c, cfg);
}

void
MemorySystem::checkLineEvent(Addr line)
{
    checker->onLineEvent(line);
}

thread_local WindowCapture *MemorySystem::winCap = nullptr;

Cycle
MemorySystem::acquireBus(Cycle now)
{
    // With zero occupancy the bus never back-pressures: activation
    // times are monotonic, so busBusyUntil (= some earlier now) can
    // never exceed the current now and the delay is provably zero.
    // Skipping the update also removes the one shared-bus write from
    // the parallel core's speculative windows, which require
    // busOccupancy == 0 for exactly this reason.
    if (cfg.busOccupancy == 0)
        return 0;
    const Cycle delay = busBusyUntil > now ? busBusyUntil - now : 0;
    busBusyUntil = now + delay + cfg.busOccupancy;
    return delay;
}

void
MemorySystem::record(Cycle now, CpuId cpu, Addr line, BusOp op,
                     CacheKind kind, const MonitorContext &ctx)
{
    // Speculative window: buffer the event for ordered replay; the
    // transaction counter is deferred to replayBus so mid-window
    // observers (there are none) and counters stay serial-identical.
    if (winCap) {
        winCap->events.push_back({{now, cpu, line, op, kind, ctx},
                                  false});
        return;
    }
    ++txTotal;
    // Skip constructing the BusRecord when nobody is subscribed (the
    // collectMisses=false warmup mode); the always-on counters still
    // advance.
    if (mon.listening())
        mon.busTransaction({now, cpu, line, op, kind, ctx});
    else
        mon.countTransaction(ctx.mode);
}

bool
MemorySystem::snoopRead(CpuId requester, Addr line)
{
    // Snoop filter: a walk over caches whose state is Invalid has no
    // effect, so the fast mode visits only the CPUs whose sharers bit
    // is set (ascending id, the same order as the full walk). The
    // reference mode always walks everything to double-check the
    // filter.
    if (!slowSim) {
        uint64_t m = sharers[line >> lineShift] &
                     ~(uint64_t(1) << requester);
        const bool shared = m != 0;
        // The parallel probe cuts every window before a miss with
        // remote sharers, so a capturing thread can never reach a
        // remote downgrade (a write to another CPU's state).
        if (winCap && shared)
            util::panic("speculative window snooped a shared line");
        while (m) {
            CpuCaches &h = hier[uint32_t(std::countr_zero(m))];
            m &= m - 1;
            const Coh st = h.getState(line);
            if (st == Coh::Modified || st == Coh::Exclusive) {
                // Dirty copy flushes; both downgrade to Shared.
                h.setState(line, Coh::Shared);
            }
        }
        return shared;
    }

    bool shared = false;
    for (CpuCaches &h : hier) {
        if (h.cpu == requester)
            continue;
        const Coh st = h.getState(line);
        if (st == Coh::Invalid)
            continue;
        shared = true;
        if (st == Coh::Modified || st == Coh::Exclusive)
            h.setState(line, Coh::Shared);
    }
    return shared;
}

void
MemorySystem::snoopInvalidate(CpuId requester, Addr line)
{
    if (!slowSim) {
        uint64_t m = sharers[line >> lineShift] &
                     ~(uint64_t(1) << requester);
        // See snoopRead: stores with remote sharers cut the window.
        if (winCap && m)
            util::panic("speculative window invalidated a shared line");
        while (m) {
            CpuCaches &h = hier[uint32_t(std::countr_zero(m))];
            m &= m - 1;
            setCohState(h, line, Coh::Invalid);
            h.l2d.invalidate(line);
            h.l1d.invalidate(line);
            mon.invalSharing(h.cpu, CacheKind::Data, line);
        }
        return;
    }

    for (CpuCaches &h : hier) {
        if (h.cpu == requester)
            continue;
        if (h.getState(line) == Coh::Invalid)
            continue;
        setCohState(h, line, Coh::Invalid);
        h.l2d.invalidate(line);
        h.l1d.invalidate(line);
        mon.invalSharing(h.cpu, CacheKind::Data, line);
    }
}

void
MemorySystem::l2Fill(CpuId cpu, Addr line, Coh st, Cycle now,
                     const MonitorContext &ctx)
{
    CpuCaches &h = hier[cpu];
    const Victim v = h.l2d.fill(line);
    if (v.valid) {
        const Coh vst = h.getState(v.lineAddr);
        if (vst == Coh::Modified) {
            // Dirty writeback; buffered, so the CPU is not charged.
            record(now, cpu, v.lineAddr, BusOp::Writeback,
                   CacheKind::Data, ctx);
        }
        setCohState(h, v.lineAddr, Coh::Invalid);
        // Inclusion: the L1 may not keep a line the L2 dropped.
        h.l1d.invalidate(v.lineAddr);
        if (winCap)
            winCap->events.push_back(
                {{now, cpu, v.lineAddr, BusOp::Read, CacheKind::Data,
                  ctx},
                 true});
        else if (mon.listening())
            mon.evict(cpu, CacheKind::Data, v.lineAddr, ctx);
        if (checker)
            checker->onLineEvent(v.lineAddr);
    }
    setCohState(h, line, st);
}

AccessResult
MemorySystem::dataAccessSlow(CpuId cpu, Addr addr, bool is_write,
                             Cycle now, const MonitorContext &ctx)
{
    CpuCaches &h = hier[cpu];
    const Addr line = addr & ~Addr(cfg.lineBytes - 1);
    AccessResult res;
    res.cycles = 1; // base execution cost of the reference

    const bool l1hit = h.l1d.touch(line);
    const bool l2hit = l1hit || h.l2d.touch(line);

    if (l2hit) {
        if (!l1hit) {
            res.cycles += cfg.l2HitStall;
            h.l1d.fill(line); // L1 victim still resides in L2: silent
        }
        if (is_write) {
            const Coh st = h.getState(line);
            if (st == Coh::Shared) {
                // Upgrade: invalidate the other copies.
                const Cycle delay = acquireBus(now);
                snoopInvalidate(cpu, line);
                record(now + delay, cpu, line, BusOp::Upgrade,
                       CacheKind::Data, ctx);
                res.cycles += cfg.busMissStall + delay;
                res.busAccess = true;
            }
            setCohState(h, line, Coh::Modified);
        }
        if (checker)
            checker->onLineEvent(line);
        return res;
    }

    // L2 miss: full bus transaction.
    const Cycle delay = acquireBus(now);
    Coh newState;
    if (is_write || cfg.protocol == Protocol::Mi) {
        // MI has no shared states: even a read miss must steal the
        // line outright, invalidating every remote copy. The read
        // still appears on the bus as a plain Read.
        snoopInvalidate(cpu, line);
        newState = Coh::Modified;
        record(now + delay, cpu, line,
               is_write ? BusOp::ReadEx : BusOp::Read, CacheKind::Data,
               ctx);
    } else {
        const bool shared = snoopRead(cpu, line);
        // MESI fills Exclusive when no other cache answered; MSI has
        // no E state, so every read miss fills Shared and the first
        // write pays an Upgrade even on a private line.
        newState = (cfg.protocol == Protocol::Mesi && !shared)
                       ? Coh::Exclusive
                       : Coh::Shared;
        record(now + delay, cpu, line, BusOp::Read, CacheKind::Data,
               ctx);
    }
    // now + delay: the victim writeback drains from the buffer after
    // the fill transaction holds the bus, so its record must not
    // claim an earlier bus slot than the fill's.
    l2Fill(cpu, line, newState, now + delay, ctx);
    h.l1d.fill(line);
    res.cycles += cfg.busMissStall + delay;
    res.busAccess = true;
    if (checker)
        checker->onLineEvent(line);
    return res;
}

AccessResult
MemorySystem::ifetchMiss(CpuId cpu, Addr line, Cycle now,
                         const MonitorContext &ctx)
{
    CpuCaches &h = hier[cpu];
    AccessResult res;
    // Executing the instructions in the line.
    res.cycles = lineExecCycles;

    const Cycle delay = acquireBus(now);
    // A dirty data copy in any D-cache must be flushed before the
    // fetch; downgrading through snoopRead models that. MI has no
    // Shared state to downgrade into, so it invalidates instead.
    if (cfg.protocol == Protocol::Mi)
        snoopInvalidate(cpu, line);
    else
        snoopRead(cpu, line);
    record(now + delay, cpu, line, BusOp::Read, CacheKind::Instr, ctx);
    const Victim v = h.icache.fill(line);
    if (v.valid) {
        if (winCap)
            winCap->events.push_back(
                {{now, cpu, v.lineAddr, BusOp::Read, CacheKind::Instr,
                  ctx},
                 true});
        else if (mon.listening())
            mon.evict(cpu, CacheKind::Instr, v.lineAddr, ctx);
    }
    res.cycles += cfg.busMissStall + delay;
    res.busAccess = true;
    if (checker)
        checker->onLineEvent(line); // fetch may have downgraded D-copies
    return res;
}

AccessResult
MemorySystem::uncachedAccess(CpuId cpu, Addr addr, bool is_write,
                             Cycle now, const MonitorContext &ctx)
{
    const Addr line = addr & ~Addr(cfg.lineBytes - 1);
    const Cycle delay = acquireBus(now);
    record(now + delay, cpu, line,
           is_write ? BusOp::UncachedWrite : BusOp::UncachedRead,
           CacheKind::Data, ctx);
    return {cfg.uncachedAccessCycles + delay, true};
}

AccessResult
MemorySystem::bypassAccess(CpuId cpu, Addr addr, bool is_write,
                           Cycle now, const MonitorContext &ctx)
{
    // Block-operation cache bypass: the line is transferred over the
    // bus (and other caches are kept coherent) but is NOT installed in
    // the requester's cache, so no displacement occurs.
    const Addr line = addr & ~Addr(cfg.lineBytes - 1);
    const Cycle delay = acquireBus(now);
    // MI: even the non-caching read must invalidate (a remote M copy
    // cannot legally downgrade to S under MI).
    if (is_write || cfg.protocol == Protocol::Mi)
        snoopInvalidate(cpu, line);
    else
        snoopRead(cpu, line);
    record(now + delay, cpu, line,
           is_write ? BusOp::ReadEx : BusOp::Read, CacheKind::Data, ctx);
    if (checker)
        checker->onLineEvent(line);
    return {1 + cfg.busMissStall + delay, true};
}

void
MemorySystem::flushICachesForPage(Addr ppage)
{
    // As on the measured machine, reallocating a physical page that
    // held code flushes the WHOLE instruction cache of every CPU (the
    // R3000 kernel had no cheap selective flush); the paper's Figure 6
    // notes that this algorithm does not scale down with larger
    // caches, which is what creates the Inval saturation floor.
    (void)ppage;
    // Page reallocation happens only inside kernel paths, which the
    // parallel probe never speculates past (markers cut the window).
    if (winCap)
        util::panic("speculative window reached an I-cache page flush");
    for (CpuCaches &h : hier) {
        mon.flushPage(h.cpu, 0, 0); // 0 bytes = full-cache flush
        h.icache.invalidateRange(0, ~Addr(0), [&](Addr line) {
            mon.invalPageRealloc(h.cpu, line);
        });
    }
}

void
MemorySystem::saveState(util::ByteWriter &w) const
{
    w.u32(uint32_t(hier.size()));
    for (const CpuCaches &h : hier) {
        h.icache.saveState(w);
        h.l1d.saveState(w);
        h.l2d.saveState(w);
        w.u64(uint64_t(h.l2state.size()));
        w.raw(h.l2state.data(), h.l2state.size());
    }
    w.u64(uint64_t(sharers.size()));
    for (uint64_t m : sharers)
        w.u64(m);
    w.u64(busBusyUntil);
    w.u64(txTotal);
}

void
MemorySystem::restoreState(util::ByteReader &r)
{
    const uint32_t ncpus = r.u32();
    if (ncpus != hier.size())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "memsys: snapshot has %u cpus, machine has %zu",
                    ncpus, hier.size());
    for (CpuCaches &h : hier) {
        h.icache.restoreState(r);
        h.l1d.restoreState(r);
        h.l2d.restoreState(r);
        const uint64_t ns = r.u64();
        if (ns != h.l2state.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "memsys: l2state size %llu vs %zu",
                        (unsigned long long)ns, h.l2state.size());
        r.raw(h.l2state.data(), h.l2state.size());
        for (Coh s : h.l2state) {
            if (uint8_t(s) > uint8_t(Coh::Modified))
                util::raise(util::ErrCode::SnapshotCorrupt,
                            "memsys: invalid coherence state byte %u",
                            unsigned(s));
            // A snapshot may only contain states its protocol can
            // produce (MSI never E; MI never S or E).
            if ((s == Coh::Exclusive &&
                 cfg.protocol != Protocol::Mesi) ||
                (s == Coh::Shared && cfg.protocol == Protocol::Mi))
                util::raise(util::ErrCode::SnapshotCorrupt,
                            "memsys: state %u illegal under protocol "
                            "%s", unsigned(s),
                            protocolName(cfg.protocol));
        }
    }
    const uint64_t nf = r.u64();
    if (nf != sharers.size())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "memsys: snoop filter size %llu vs %zu",
                    (unsigned long long)nf, sharers.size());
    for (uint64_t &m : sharers)
        m = r.u64();
    busBusyUntil = r.u64();
    txTotal = r.u64();
}

} // namespace mpos::sim
