#include "sim/machine.hh"

#include "util/logging.hh"

namespace mpos::sim
{

Machine::Machine(const MachineConfig &config, uint32_t num_locks)
    : cfg(config), mem(cfg, mon), syncTransport(cfg, num_locks)
{
    for (CpuId c = 0; c < cfg.numCpus; ++c)
        cpus.push_back(std::make_unique<Cpu>(c, cfg));
}

CycleAccount
Machine::totalAccount() const
{
    CycleAccount sum;
    for (const auto &c : cpus) {
        for (unsigned m = 0; m < 3; ++m) {
            sum.total[m] += c->account.total[m];
            sum.stall[m] += c->account.stall[m];
        }
    }
    return sum;
}

bool
Machine::translate(Cpu &c, ScriptItem &item, bool is_store, Addr &pa)
{
    const Addr vpage = item.addr / cfg.pageBytes;
    const TlbEntry *e = c.tlb.translate(c.ctx.pid, vpage);
    if (!e) {
        c.pushFront(item);
        exec->fault(c.id, item.addr, is_store, false);
        return false;
    }
    if (is_store && !e->writable) {
        c.pushFront(item);
        exec->fault(c.id, item.addr, is_store, true);
        return false;
    }
    pa = e->ppage * cfg.pageBytes + item.addr % cfg.pageBytes;
    return true;
}

bool
Machine::step(Cpu &c, Cycle now)
{
    ScriptItem item = c.script.front();
    c.script.pop_front();

    switch (item.kind) {
      case ItemKind::Marker:
        exec->marker(c.id, item);
        return false;

      case ItemKind::Think:
        c.charge(item.addr, 0);
        return true;

      case ItemKind::IFetchLine: {
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item, false, pa)) {
            return false;
        }
        const AccessResult r = mem.ifetchAccess(c.id, pa, now, c.ctx);
        const Cycle execution =
            Cycle(cfg.instrPerLine) * cfg.cyclesPerInstr;
        c.charge(execution, r.cycles - execution);
        return true;
      }

      case ItemKind::Load:
      case ItemKind::Store: {
        const bool is_store = item.kind == ItemKind::Store;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item, is_store, pa)) {
            return false;
        }
        const AccessResult r =
            mem.dataAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        return true;
      }

      case ItemKind::BypassLoad:
      case ItemKind::BypassStore: {
        const bool is_store = item.kind == ItemKind::BypassStore;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item, is_store, pa)) {
            return false;
        }
        const AccessResult r =
            mem.bypassAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        return true;
      }

      case ItemKind::PrefetchLoad:
      case ItemKind::PrefetchStore: {
        // The reference behaves normally in the caches and on the bus,
        // but a prefetch engine issued it early, so the CPU does not
        // stall on it.
        const bool is_store = item.kind == ItemKind::PrefetchStore;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item, is_store, pa)) {
            return false;
        }
        mem.dataAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, 0);
        return true;
      }

      case ItemKind::UncachedLoad:
      case ItemKind::UncachedStore: {
        const bool is_store = item.kind == ItemKind::UncachedStore;
        const AccessResult r =
            mem.uncachedAccess(c.id, item.addr, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        return true;
      }
    }
    util::panic("unhandled script item kind");
}

void
Machine::run(Cycle cycles)
{
    if (!exec)
        util::fatal("Machine::run called with no executor installed");

    const Cycle target = currentCycle + cycles;
    while (currentCycle < target) {
        for (auto &cp : cpus) {
            Cpu &c = *cp;
            if (c.busyUntil > currentCycle)
                continue;

            if (currentCycle >= c.nextPollAt) {
                c.nextPollAt = currentCycle + pollPeriod;
                if (c.intrDisable == 0 && c.ctx.mode != ExecMode::Kernel)
                    exec->pollEvents(c.id, currentCycle);
            }

            uint32_t markers = 0;
            // Execute until the CPU has consumed this cycle.
            while (c.busyUntil <= currentCycle) {
                if (c.script.empty()) {
                    exec->refill(c.id);
                    if (c.script.empty())
                        util::panic("executor refill pushed no work "
                                    "for cpu %u", c.id);
                }
                if (!step(c, currentCycle)) {
                    if (++markers > markerBudget) {
                        // Runaway marker chain; let time advance.
                        c.charge(1, 0);
                        break;
                    }
                }
            }
        }
        ++currentCycle;
    }
}

} // namespace mpos::sim
