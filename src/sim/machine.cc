#include "sim/machine.hh"

#include <algorithm>
#include <bit>

#include "sim/parallel.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::sim
{

Machine::Machine(const MachineConfig &config, uint32_t num_locks)
    : cfg(validateConfig(config)), mem(cfg, mon),
      syncTransport(cfg, num_locks),
      pageShift(uint32_t(std::countr_zero(cfg.pageBytes))),
      pageMask(Addr(cfg.pageBytes) - 1),
      lineExecCycles(Cycle(cfg.instrPerLine) * cfg.cyclesPerInstr),
      slowSim(cfg.slowSim || slowSimForced())
{
    cpus.reserve(cfg.numCpus);
    for (CpuId c = 0; c < cfg.numCpus; ++c)
        cpus.emplace_back(c, cfg);

    if (cfg.check || checkForced()) {
        chk = std::make_unique<Checker>(cfg);
        chk->attachMemory(&mem);
        mem.setChecker(chk.get());
        syncTransport.setChecker(chk.get());
        // As a monitor observer the checker sees the full event stream
        // (and keeps listening() true, so records are always built).
        mon.attach(chk.get());
    }

    const uint64_t fault_seed =
        cfg.faultSeed ? cfg.faultSeed : faultForcedSeed();
    Cycle wd_cycles =
        cfg.watchdogCycles ? cfg.watchdogCycles : watchdogForcedCycles();
    if (fault_seed) {
        plan = std::make_unique<FaultPlan>(fault_seed, cfg.faultHorizon);
        // Faulted runs want their hangs diagnosed, not waited out: a
        // default budget far above any legitimate reference-free
        // stretch (Think bursts are tens to hundreds of cycles).
        if (!wd_cycles)
            wd_cycles = 1000000;
    }
    if (wd_cycles) {
        wd = std::make_unique<Watchdog>(cfg, wd_cycles);
        wdp = wd.get();
        syncTransport.setWatchdog(wdp);
        // Observer role: bus settles count as progress. Event history
        // for the dump comes from the shared trace ring (below).
        mon.attach(wdp);
        if (plan && plan->syntheticTripAt)
            wd->forceTripAt(plan->syntheticTripAt);
    }

    // Observability layer: trace exporter, metrics engine, profiler.
    // Each follows the checker discipline -- allocated only when
    // enabled, raw alias pointer as the hot-path null gate.
    if (cfg.trace || traceForced()) {
        const uint64_t forced_ring = traceRingForcedEntries();
        tr = std::make_unique<trace::Tracer>(
            forced_ring ? forced_ring : cfg.traceRingEntries,
            cfg.traceFile, cfg.traceRingMode);
        trp = tr.get();
        mon.attach(trp);
    } else if (wdp) {
        // The watchdog's dump renders the last monitor events; without
        // a full tracer, keep a small ring-only tracer so the dump and
        // any future trace read the same buffer.
        tr = std::make_unique<trace::Tracer>(32, "", false);
        trp = tr.get();
        mon.attach(trp);
    }
    if (wdp && trp)
        wdp->setEventRing(&trp->ring());

    const Cycle mx_window = metricsForcedWindow();
    if (cfg.metrics || mx_window) {
        mx = std::make_unique<trace::Metrics>(
            mx_window > 1 ? mx_window : cfg.metricsWindowCycles);
        mxp = mx.get();
        mon.attach(mxp);
    }

    if (cfg.profile || profileForced()) {
        pf = std::make_unique<trace::Profiler>(cfg.numCpus,
                                               cfg.busMissStall);
        pfp = pf.get();
        mon.attach(pfp);
    }

    // Parallel epoch/barrier core. Engages only when speculative
    // windows can be proven serial-identical: the fast path (windows
    // fall back to runFast), a bus with zero occupancy (the one
    // shared-bus write the windows would race on), and none of the
    // layers that observe mid-window state (checker, watchdog, fault
    // plan). More host threads than simulated CPUs cannot help.
    const uint32_t sim_threads =
        std::min(cfg.effectiveSimThreads(), cfg.numCpus);
    if (sim_threads > 1 && !slowSim && cfg.busOccupancy == 0 && !chk &&
        !wdp && !plan)
        par = std::make_unique<ParallelCore>(*this, sim_threads);
}

Machine::~Machine() = default;

CycleAccount
Machine::totalAccount() const
{
    CycleAccount sum;
    for (const auto &c : cpus) {
        for (unsigned m = 0; m < 3; ++m) {
            sum.total[m] += c.account.total[m];
            sum.stall[m] += c.account.stall[m];
        }
    }
    return sum;
}

bool
Machine::step(Cpu &c, Cycle now)
{
    // The item is only popped once it is consumed: a faulting reference
    // stays at its queue position and the fault handler's script is
    // prepended in front of it, which is what the old pop + re-push
    // produced. A reference is safe here: pop_front only advances the
    // head index, and nothing below pushes to this queue -- except the
    // marker and fault callbacks, which get a copy / never reread it.
    const ScriptItem &item = c.script.front();

    switch (item.kind) {
      case ItemKind::Marker: {
        const ScriptItem m = item;
        c.script.pop_front();
        exec->marker(c.id, m);
        return false;
      }

      case ItemKind::Think:
        c.script.pop_front();
        c.charge(item.addr, 0);
        return true;

      case ItemKind::IFetchLine: {
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item.addr, false, pa)) {
            return false;
        }
        c.script.pop_front();
        const AccessResult r = mem.ifetchAccess(c.id, pa, now, c.ctx);
        c.charge(lineExecCycles, r.cycles - lineExecCycles);
        if (wdp)
            wdp->noteProgress();
        return true;
      }

      case ItemKind::Load:
      case ItemKind::Store: {
        const bool is_store = item.kind == ItemKind::Store;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item.addr, is_store, pa)) {
            return false;
        }
        c.script.pop_front();
        const AccessResult r =
            mem.dataAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        if (wdp)
            wdp->noteProgress();
        return true;
      }

      case ItemKind::BypassLoad:
      case ItemKind::BypassStore: {
        const bool is_store = item.kind == ItemKind::BypassStore;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item.addr, is_store, pa)) {
            return false;
        }
        c.script.pop_front();
        const AccessResult r =
            mem.bypassAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        if (wdp)
            wdp->noteProgress();
        return true;
      }

      case ItemKind::PrefetchLoad:
      case ItemKind::PrefetchStore: {
        // The reference behaves normally in the caches and on the bus,
        // but a prefetch engine issued it early, so the CPU does not
        // stall on it.
        const bool is_store = item.kind == ItemKind::PrefetchStore;
        Addr pa = item.addr;
        if (item.space == AddrSpace::Virtual &&
            !translate(c, item.addr, is_store, pa)) {
            return false;
        }
        c.script.pop_front();
        mem.dataAccess(c.id, pa, is_store, now, c.ctx);
        c.charge(1, 0);
        if (wdp)
            wdp->noteProgress();
        return true;
      }

      case ItemKind::UncachedLoad:
      case ItemKind::UncachedStore: {
        const bool is_store = item.kind == ItemKind::UncachedStore;
        c.script.pop_front();
        const AccessResult r =
            mem.uncachedAccess(c.id, item.addr, is_store, now, c.ctx);
        c.charge(1, r.cycles - 1);
        if (wdp)
            wdp->noteProgress();
        return true;
      }
    }
    util::panic("unhandled script item kind");
}

void
Machine::activate(Cpu &c)
{
    if (currentCycle >= c.nextPollAt) {
        c.nextPollAt = currentCycle + pollPeriod;
        if (c.intrDisable == 0 && c.ctx.mode != ExecMode::Kernel)
            exec->pollEvents(c.id, currentCycle);
    }

    uint32_t markers = 0;
    // Execute until the CPU has consumed this cycle.
    while (c.busyUntil <= currentCycle) {
        if (c.script.empty()) {
            exec->refill(c.id);
            if (c.script.empty())
                util::panic("executor refill pushed no work for cpu %u",
                            c.id);
        }
        if (!step(c, currentCycle)) {
            if (++markers > markerBudget) {
                // Runaway marker chain; let time advance.
                c.charge(1, 0);
                break;
            }
        }
    }
}

void
Machine::runFast(Cycle target)
{
    while (currentCycle < target) {
        // The same pass that executes free CPUs also collects the
        // minimum busyUntil for the cycle skip below. A CPU's busyUntil
        // can still rise after being sampled (a later CPU's kernel work
        // may charge it), which only makes the sampled minimum too
        // small: jumping to a cycle where nothing is ready is a no-op
        // pass, never a semantic difference.
        Cycle next = target;
        for (Cpu &c : cpus) {
            if (c.busyUntil <= currentCycle)
                activate(c);
            if (c.busyUntil < next)
                next = c.busyUntil;
        }

        // Cycle skip: a CPU only acts at cycles where busyUntil <= now,
        // and busyUntil never decreases, so the next cycle at which
        // anything can happen is the minimum busyUntil. Polling cannot
        // wake a CPU early: pollEvents only fires when the CPU is
        // already free. Jump straight there (clamped so a runaway
        // marker chain that left busyUntil behind still advances one
        // tick at a time, exactly as the reference loop does).
        currentCycle = next > currentCycle ? next : currentCycle + 1;

        if (wdp)
            wdp->poll(*this, currentCycle);
    }
}

void
Machine::runReference(Cycle target)
{
    // The original algorithm, kept byte-for-byte as the golden
    // reference: tick one cycle at a time and rescan every CPU.
    while (currentCycle < target) {
        for (Cpu &c : cpus) {
            if (c.busyUntil > currentCycle)
                continue;
            activate(c);
        }
        ++currentCycle;

        if (wdp)
            wdp->poll(*this, currentCycle);
    }
}

void
Machine::run(Cycle cycles)
{
    if (!exec)
        util::raise(util::ErrCode::BadConfig,
                    "Machine::run called with no executor installed");

    const Cycle target = currentCycle + cycles;
    if (slowSim)
        runReference(target);
    else if (par)
        par->run(target);
    else
        runFast(target);
}

void
Machine::saveState(util::ByteWriter &w) const
{
    w.u64(currentCycle);
    w.u32(uint32_t(cpus.size()));
    for (const Cpu &c : cpus) {
        w.u8(uint8_t(c.ctx.mode));
        w.u8(uint8_t(c.ctx.op));
        w.u16(c.ctx.routine);
        w.i64(c.ctx.pid);
        w.u64(c.busyUntil);
        w.u64(c.nextPollAt);
        w.u32(c.intrDisable);
        for (unsigned m = 0; m < 3; ++m) {
            w.u64(c.account.total[m]);
            w.u64(c.account.stall[m]);
        }
        c.tlb.saveState(w);
        c.script.saveState(w);
    }
    mem.saveState(w);
    syncTransport.saveState(w);
    w.u64(mon.transactions());
    w.u64(mon.osTransactions());
    w.b(plan != nullptr);
    if (plan)
        plan->saveState(w);
}

void
Machine::restoreState(util::ByteReader &r)
{
    currentCycle = r.u64();
    const uint32_t n = r.u32();
    if (n != cpus.size())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "machine: snapshot has %u cpus, machine has %zu",
                    n, cpus.size());
    for (Cpu &c : cpus) {
        c.ctx.mode = ExecMode(r.u8());
        c.ctx.op = OsOp(r.u8());
        c.ctx.routine = r.u16();
        c.ctx.pid = Pid(r.i64());
        c.busyUntil = r.u64();
        c.nextPollAt = r.u64();
        c.intrDisable = r.u32();
        for (unsigned m = 0; m < 3; ++m) {
            c.account.total[m] = r.u64();
            c.account.stall[m] = r.u64();
        }
        c.tlb.restoreState(r);
        c.script.restoreState(r);
    }
    mem.restoreState(r);
    syncTransport.restoreState(r);
    const uint64_t tx = r.u64();
    const uint64_t txos = r.u64();
    mon.restoreCounters(tx, txos);
    const bool had_plan = r.b();
    if (had_plan != (plan != nullptr))
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "machine: snapshot %s a fault plan, machine %s",
                    had_plan ? "has" : "lacks",
                    plan ? "has one" : "has none");
    if (plan)
        plan->restoreState(r);
    // Anything the checker inferred from events preceding the restore
    // (notably the kernel-boot idle enters emitted before observers
    // could see them) describes a history this machine never lived.
    if (chk)
        chk->onRestore();
}

} // namespace mpos::sim
