/**
 * @file
 * 64-entry fully-associative TLB, one per CPU, as on the R3000.
 *
 * Entries are tagged with the owning process id (the R3000 PID field),
 * so context switches do not flush the TLB; UTLB refill faults emerge
 * from capacity and footprint exactly as in the measured machine.
 * Replacement is FIFO, a deterministic stand-in for the R3000's
 * random-register replacement.
 */

#ifndef MPOS_SIM_TLB_HH
#define MPOS_SIM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

/** Result of a successful TLB translation. */
struct TlbEntry
{
    Pid pid = invalidPid;
    Addr vpage = 0;   ///< Virtual page number.
    Addr ppage = 0;   ///< Physical page number.
    bool writable = false;
    bool valid = false;
};

/** Fully-associative, PID-tagged TLB with FIFO replacement. */
class Tlb
{
  public:
    explicit Tlb(uint32_t num_entries = 64);

    /**
     * Look up (pid, vpage); updates no architectural state.
     *
     * A way-prediction hint table short-circuits the associative scan:
     * the hint is only ever a guess verified against the real entry,
     * so a stale hint falls back to the scan and can never change the
     * result ((pid, vpage) pairs are unique in the TLB).
     */
    const TlbEntry *
    lookup(Pid pid, Addr vpage) const
    {
        const uint32_t h = hintSlot(pid, vpage);
        const TlbEntry &e = entries[hint[h]];
        if (e.valid && e.pid == pid && e.vpage == vpage)
            return &e;
        return lookupScan(pid, vpage, h);
    }

    /**
     * Install a mapping, replacing any existing entry for (pid, vpage)
     * first, otherwise the FIFO victim. Returns the entry index used.
     */
    uint32_t insert(Pid pid, Addr vpage, Addr ppage, bool writable);

    /** Drop one mapping if present (e.g. on COW break or unmap). */
    void invalidate(Pid pid, Addr vpage);

    /** Drop every mapping belonging to pid (process exit / exec). */
    void invalidatePid(Pid pid);

    /** Drop every mapping of a physical page (page stolen). */
    void invalidatePhys(Addr ppage);

    /** Drop everything. */
    void flush();

    uint32_t size() const { return uint32_t(entries.size()); }
    uint32_t residentEntries() const;

    /** Raw entry slot (valid or not), for the invariant checker. */
    const TlbEntry &entryAt(uint32_t i) const { return entries[i]; }

    uint64_t hits = 0;
    uint64_t misses = 0;

    /** Record-keeping wrappers used by the CPU. */
    const TlbEntry *
    translate(Pid pid, Addr vpage)
    {
        const TlbEntry *e = lookup(pid, vpage);
        if (e)
            ++hits;
        else
            ++misses;
        return e;
    }

    /// @name Snapshot save/restore
    /// Entries, FIFO cursor, hit/miss counters, and the hint table.
    /// The hints are guesses that cannot change results, but restoring
    /// them keeps the restored machine byte-for-byte in step with the
    /// original on internal probes too.
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        w.u32(uint32_t(entries.size()));
        for (const TlbEntry &e : entries) {
            w.i64(e.pid);
            w.u64(e.vpage);
            w.u64(e.ppage);
            w.b(e.writable);
            w.b(e.valid);
        }
        w.u32(fifoNext);
        w.u64(hits);
        w.u64(misses);
        w.raw(hint, sizeof(hint));
    }

    void
    restoreState(util::ByteReader &r)
    {
        const uint32_t n = r.u32();
        if (n != entries.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "tlb: snapshot has %u entries, machine has %zu",
                        n, entries.size());
        for (TlbEntry &e : entries) {
            e.pid = Pid(r.i64());
            e.vpage = r.u64();
            e.ppage = r.u64();
            e.writable = r.b();
            e.valid = r.b();
        }
        fifoNext = r.u32();
        hits = r.u64();
        misses = r.u64();
        r.raw(hint, sizeof(hint));
    }
    /// @}

  private:
    /** Associative scan fallback; refreshes the hint slot on a hit. */
    const TlbEntry *lookupScan(Pid pid, Addr vpage, uint32_t h) const;

    static uint32_t
    hintSlot(Pid pid, Addr vpage)
    {
        // Cheap mix of pid and page number; collisions only cost a scan.
        const uint64_t x =
            (vpage ^ (uint64_t(uint32_t(pid)) << 20)) *
            0x9e3779b97f4a7c15ULL;
        return uint32_t(x >> 56) & (numHints - 1);
    }

    static constexpr uint32_t numHints = 256;

    std::vector<TlbEntry> entries;
    uint32_t fifoNext = 0;
    /** Way predictor: likely entry index per hash slot (guess only). */
    mutable uint8_t hint[numHints] = {};
};

} // namespace mpos::sim

#endif // MPOS_SIM_TLB_HH
