/**
 * @file
 * Shared simulation-phase driver: advance a machine by a cycle count
 * under an optional host wall-clock deadline.
 *
 * Machine::run(a); run(b) is equivalent to run(a + b), so slicing a
 * phase never perturbs simulated events -- the timeout is pure
 * host-side policy, checked between slices (overshoot is bounded by
 * one slice). core::Experiment uses it for both the warmup and
 * measurement phases, and the differential fuzzer's runs go through
 * the same helper so every caller slices identically.
 */

#ifndef MPOS_SIM_PHASE_HH
#define MPOS_SIM_PHASE_HH

#include <chrono>

#include "sim/types.hh"

namespace mpos::sim
{

class Machine;

/** Host-side deadline context for runPhase; default = no deadline. */
struct PhaseDeadline
{
    /** Wall-clock budget in seconds; <= 0 disables the deadline. */
    double budgetSeconds = 0;
    /** Absolute deadline (caller-computed once per whole run). */
    std::chrono::steady_clock::time_point deadline{};
    /** Cycles already completed before this phase (for the message). */
    Cycle doneBefore = 0;
    /** Total cycles of the whole run (for the message). */
    Cycle totalCycles = 0;
};

/**
 * Advance m by cycles. With a positive budget the phase runs in
 * cycles/64 slices and raises util::SimError(Timeout) once the
 * deadline passes between slices; otherwise it is one plain run().
 */
void runPhase(Machine &m, Cycle cycles, const PhaseDeadline &dl = {});

} // namespace mpos::sim

#endif // MPOS_SIM_PHASE_HH
