/**
 * @file
 * Versioned on-disk/in-memory container for machine snapshots.
 *
 * A snapshot is a flat byte image: a fixed header (magic, format
 * version, the producer's config-prefix hash), a sequence of tagged
 * length-prefixed sections (machine, kernel, workload), and a trailing
 * FNV-1a checksum over everything before it. Every field is
 * little-endian via util::ByteWriter/ByteReader, so images are
 * host-independent; parse() validates magic, version, checksum and
 * framing up front and raises util::SimError(SnapshotCorrupt) on any
 * mismatch -- a stale or truncated cache file is a typed, recoverable
 * error, never undefined behavior.
 *
 * The config hash in the header is the warm-start cache key (see
 * core/warmcache.hh): restore paths re-check it against the key they
 * looked up, so a renamed or hash-colliding file cannot restore into
 * an incompatible machine.
 */

#ifndef MPOS_SIM_SNAPSHOT_CONTAINER_HH
#define MPOS_SIM_SNAPSHOT_CONTAINER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/binio.hh"

namespace mpos::sim::snapshot
{

/** Bumped whenever the serialized state layout changes.
 *  v2: sharer/spin/cached-at bitmasks widened to 64 bits for N-CPU
 *  machines. */
constexpr uint32_t formatVersion = 3;

/** Section tags (stable 32-bit constants, not an index). */
enum class Section : uint32_t
{
    Machine = 0x4843414d,  ///< "MACH": caches/TLBs/CPUs/clock.
    Kernel = 0x4e52454b,   ///< "KERN": process/lock/fs tables.
    Workload = 0x4b524f57, ///< "WORK": shared structs + cursors.
};

/** 64-bit FNV-1a over a byte span (checksums and config hashing). */
uint64_t fnv1a(const uint8_t *data, size_t size,
               uint64_t seed = 0xcbf29ce484222325ULL);

/** A parsed, validated snapshot image. */
class Parsed
{
  public:
    uint64_t configHash() const { return hash; }

    /** The named section's bytes; raises SnapshotCorrupt if absent. */
    const std::vector<uint8_t> &section(Section tag) const;

  private:
    friend Parsed parse(const uint8_t *data, size_t size);
    uint64_t hash = 0;
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections;
};

/** Assemble a container image from finished section payloads. */
std::vector<uint8_t>
pack(uint64_t config_hash,
     std::vector<std::pair<Section, std::vector<uint8_t>>> sections);

/** Validate and decode an image (magic/version/framing/checksum). */
Parsed parse(const uint8_t *data, size_t size);

inline Parsed
parse(const std::vector<uint8_t> &image)
{
    return parse(image.data(), image.size());
}

/**
 * Write bytes to path atomically (temp file + rename) so a crashed or
 * concurrent writer can never leave a torn snapshot behind. Returns
 * false (no throw) on I/O failure -- a cache store is best-effort.
 */
bool writeFileAtomic(const std::string &path,
                     const std::vector<uint8_t> &bytes);

/** Read a whole file; false if it does not exist or is unreadable. */
bool readFile(const std::string &path, std::vector<uint8_t> &out);

} // namespace mpos::sim::snapshot

#endif // MPOS_SIM_SNAPSHOT_CONTAINER_HH
