#include "sim/snapshot/container.hh"

#include <cstdio>

#include "sim/fault/plan.hh"
#include "util/error.hh"

namespace mpos::sim::snapshot
{

namespace
{
/** 8-byte magic at offset 0 of every snapshot image. */
constexpr char magic[8] = {'M', 'P', 'O', 'S', 'S', 'N', 'P', '1'};
} // namespace

uint64_t
fnv1a(const uint8_t *data, size_t size, uint64_t seed)
{
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

const std::vector<uint8_t> &
Parsed::section(Section tag) const
{
    for (const auto &[t, bytes] : sections)
        if (t == uint32_t(tag))
            return bytes;
    util::raise(util::ErrCode::SnapshotCorrupt,
                "snapshot: missing section 0x%08x", uint32_t(tag));
}

std::vector<uint8_t>
pack(uint64_t config_hash,
     std::vector<std::pair<Section, std::vector<uint8_t>>> sections)
{
    util::ByteWriter w;
    w.raw(magic, sizeof(magic));
    w.u32(formatVersion);
    w.u64(config_hash);
    w.u32(uint32_t(sections.size()));
    for (const auto &[tag, bytes] : sections) {
        w.u32(uint32_t(tag));
        w.u32(uint32_t(bytes.size()));
        w.raw(bytes.data(), bytes.size());
    }
    const uint64_t sum = fnv1a(w.bytes().data(), w.size());
    w.u64(sum);
    return w.take();
}

Parsed
parse(const uint8_t *data, size_t size)
{
    if (size < sizeof(magic) + 4 + 8 + 4 + 8)
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot: %zu bytes is shorter than a header",
                    size);
    // The checksum covers everything before its own 8 bytes.
    util::ByteReader tail(data + size - 8, 8);
    const uint64_t want = tail.u64();
    const uint64_t got = fnv1a(data, size - 8);
    if (want != got)
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot: checksum mismatch (stored %016llx, "
                    "computed %016llx)",
                    (unsigned long long)want, (unsigned long long)got);

    util::ByteReader r(data, size - 8);
    char m[8];
    r.raw(m, sizeof(m));
    for (size_t i = 0; i < sizeof(magic); ++i)
        if (m[i] != magic[i])
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "snapshot: bad magic");
    const uint32_t version = r.u32();
    if (version != formatVersion)
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot: format version %u, this build reads %u",
                    version, formatVersion);

    Parsed p;
    p.hash = r.u64();
    // The section table is untrusted even after the checksum passes
    // (an attacker can recompute it): every count and length is
    // checked against the bytes actually present before any
    // allocation, tags must be known, and a tag may appear only once.
    const uint32_t n = r.u32();
    constexpr uint32_t maxSections = 16;
    if (n > maxSections)
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot: %u sections (limit %u)", n,
                    maxSections);
    for (uint32_t i = 0; i < n; ++i) {
        const uint32_t tag = r.u32();
        if (tag != uint32_t(Section::Machine) &&
            tag != uint32_t(Section::Kernel) &&
            tag != uint32_t(Section::Workload))
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "snapshot: unknown section tag 0x%08x", tag);
        for (const auto &[seen, bytes] : p.sections)
            if (seen == tag)
                util::raise(util::ErrCode::SnapshotCorrupt,
                            "snapshot: duplicate section 0x%08x", tag);
        const uint32_t len = r.u32();
        if (len > r.remaining())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "snapshot: section 0x%08x claims %u bytes, "
                        "%zu remain",
                        tag, len, r.remaining());
        std::vector<uint8_t> bytes(len);
        r.raw(bytes.data(), len);
        p.sections.emplace_back(tag, std::move(bytes));
    }
    if (!r.atEnd())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "snapshot: %zu trailing bytes after last section",
                    r.remaining());
    return p;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    if (crashPointArmed("snapshot.mid-write")) {
        // Torn-write fault: commit half the image to the temp file and
        // die before the rename. The recovery invariant under test:
        // the final path never exists torn (rename is the commit
        // point), so a restarted sweep falls back cold, never corrupt.
        std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
        std::fflush(f);
        crashNow("snapshot.mid-write");
    }
    const size_t n =
        bytes.empty() ? 0
                      : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool wrote = std::fclose(f) == 0 && n == bytes.size();
    if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace mpos::sim::snapshot
