#include "sim/tlb.hh"

namespace mpos::sim
{

Tlb::Tlb(uint32_t num_entries)
    : entries(num_entries)
{
}

const TlbEntry *
Tlb::lookupScan(Pid pid, Addr vpage, uint32_t h) const
{
    for (uint32_t i = 0; i < uint32_t(entries.size()); ++i) {
        const auto &e = entries[i];
        if (e.valid && e.pid == pid && e.vpage == vpage) {
            if (i < 256)
                hint[h] = uint8_t(i);
            return &e;
        }
    }
    return nullptr;
}

uint32_t
Tlb::insert(Pid pid, Addr vpage, Addr ppage, bool writable)
{
    // Refresh in place if already mapped.
    for (uint32_t i = 0; i < entries.size(); ++i) {
        auto &e = entries[i];
        if (e.valid && e.pid == pid && e.vpage == vpage) {
            e.ppage = ppage;
            e.writable = writable;
            return i;
        }
    }
    const uint32_t slot = fifoNext;
    fifoNext = (fifoNext + 1) % uint32_t(entries.size());
    entries[slot] = {pid, vpage, ppage, writable, true};
    if (slot < 256)
        hint[hintSlot(pid, vpage)] = uint8_t(slot);
    return slot;
}

void
Tlb::invalidate(Pid pid, Addr vpage)
{
    for (auto &e : entries)
        if (e.valid && e.pid == pid && e.vpage == vpage)
            e.valid = false;
}

void
Tlb::invalidatePid(Pid pid)
{
    for (auto &e : entries)
        if (e.valid && e.pid == pid)
            e.valid = false;
}

void
Tlb::invalidatePhys(Addr ppage)
{
    for (auto &e : entries)
        if (e.valid && e.ppage == ppage)
            e.valid = false;
}

void
Tlb::flush()
{
    for (auto &e : entries)
        e.valid = false;
}

uint32_t
Tlb::residentEntries() const
{
    uint32_t n = 0;
    for (const auto &e : entries)
        n += e.valid;
    return n;
}

} // namespace mpos::sim
