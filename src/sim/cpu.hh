/**
 * @file
 * One simulated CPU: a script-driven reference engine.
 *
 * A CPU executes a queue of ScriptItems (instruction-line fetches, data
 * references, markers). The kernel -- through the Executor interface --
 * refills the queue, handles markers and TLB faults, and manipulates
 * the monitor context. All time accounting (per-mode execution and
 * stall cycles) lives here.
 */

#ifndef MPOS_SIM_CPU_HH
#define MPOS_SIM_CPU_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/tlb.hh"
#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

/**
 * FIFO of pending script items: a power-of-two ring buffer indexed by
 * monotonically increasing head/tail counters (modular arithmetic keeps
 * the masked indices valid even after head is decremented below zero by
 * a prepend). The front pop / back push pair runs once per simulated
 * reference, which is why this is not a std::deque.
 */
class ScriptQueue
{
  public:
    ScriptQueue() = default;

    ScriptQueue(ScriptQueue &&o) noexcept
        : buf(std::move(o.buf)), mask(o.mask), head(o.head), tail(o.tail)
    {
        o.mask = 0;
        o.head = o.tail = 0;
    }

    ScriptQueue &
    operator=(ScriptQueue &&o) noexcept
    {
        buf = std::move(o.buf);
        mask = o.mask;
        head = o.head;
        tail = o.tail;
        o.mask = 0;
        o.head = o.tail = 0;
        return *this;
    }

    bool empty() const { return head == tail; }
    uint64_t size() const { return tail - head; }

    const ScriptItem &front() const { return buf[head & mask]; }

    /** Peek the i-th queued item (0 = front) without popping. */
    const ScriptItem &at(uint64_t i) const { return buf[(head + i) & mask]; }

    void pop_front() { ++head; }

    void
    push_back(const ScriptItem &item)
    {
        if (size() == buf.size())
            grow(size() + 1);
        buf[tail++ & mask] = item;
    }

    /** Append items in order after everything currently queued. */
    void
    append(const ScriptItem *items, uint64_t n)
    {
        if (size() + n > buf.size())
            grow(size() + n);
        // At most two contiguous spans (the copy may wrap the ring);
        // bulk copies beat a per-item masked-index loop for the
        // hundreds-of-items chunks the kernel pushes per refill.
        const uint64_t start = tail & mask;
        const uint64_t first = std::min(n, buf.size() - start);
        std::copy_n(items, first, buf.data() + start);
        std::copy_n(items + first, n - first, buf.data());
        tail += n;
    }

    /** Insert items in order before everything currently queued. */
    void
    prepend(const ScriptItem *items, uint64_t n)
    {
        if (size() + n > buf.size())
            grow(size() + n);
        head -= n;
        const uint64_t start = head & mask;
        const uint64_t first = std::min(n, buf.size() - start);
        std::copy_n(items, first, buf.data() + start);
        std::copy_n(items + first, n - first, buf.data());
    }

    void clear() { head = tail = 0; }

    /// @name Snapshot save/restore
    /// Only the logical contents travel: items are written front to
    /// back and re-appended into a cleared queue, so the ring's
    /// physical layout (capacity, head offset) never leaks into a
    /// snapshot image.
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        const uint64_t n = size();
        w.u64(n);
        for (uint64_t i = 0; i < n; ++i) {
            const ScriptItem &it = at(i);
            w.u8(uint8_t(it.kind));
            w.u8(uint8_t(it.space));
            w.u8(uint8_t(it.marker));
            w.u64(it.addr);
            w.u64(it.arg2);
        }
    }

    void
    restoreState(util::ByteReader &r)
    {
        clear();
        const uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            ScriptItem it;
            it.kind = ItemKind(r.u8());
            it.space = AddrSpace(r.u8());
            it.marker = MarkerOp(r.u8());
            it.addr = r.u64();
            it.arg2 = r.u64();
            push_back(it);
        }
    }
    /// @}

  private:
    void
    grow(uint64_t need)
    {
        uint64_t cap = buf.empty() ? 64 : buf.size();
        while (cap < need)
            cap *= 2;
        std::vector<ScriptItem> nb(cap);
        const uint64_t n = size();
        for (uint64_t i = 0; i < n; ++i)
            nb[i] = buf[(head + i) & mask];
        buf = std::move(nb);
        mask = cap - 1;
        head = 0;
        tail = n;
    }

    std::vector<ScriptItem> buf;
    uint64_t mask = 0; ///< buf.size() - 1 (0 while unallocated).
    uint64_t head = 0;
    uint64_t tail = 0;
};

/** Per-mode cycle accounting (indexed by ExecMode). */
struct CycleAccount
{
    Cycle total[3] = {0, 0, 0};
    Cycle stall[3] = {0, 0, 0};

    Cycle user() const { return total[unsigned(ExecMode::User)]; }
    Cycle kernel() const { return total[unsigned(ExecMode::Kernel)]; }
    Cycle idle() const { return total[unsigned(ExecMode::Idle)]; }
    Cycle nonIdle() const { return user() + kernel(); }
    Cycle
    all() const
    {
        return total[0] + total[1] + total[2];
    }
};

/** A simulated processor. */
class Cpu
{
  public:
    Cpu(CpuId cpu_id, const MachineConfig &cfg)
        : id(cpu_id), tlb(cfg.tlbEntries)
    {
    }

    CpuId id;
    Tlb tlb;
    MonitorContext ctx;

    /** Cycle up to which this CPU is occupied. */
    Cycle busyUntil = 0;
    /** Next cycle at which external events are polled. */
    Cycle nextPollAt = 0;
    /** When > 0, external interrupts are deferred. */
    uint32_t intrDisable = 0;

    CycleAccount account;

    /** Pending work, front = next to execute. */
    ScriptQueue script;

    void push(const ScriptItem &item) { script.push_back(item); }

    void
    pushSeq(const std::vector<ScriptItem> &items)
    {
        script.append(items.data(), items.size());
    }

    /** Insert items so they run before everything currently queued. */
    void
    pushFrontSeq(const std::vector<ScriptItem> &items)
    {
        script.prepend(items.data(), items.size());
    }

    void pushFront(const ScriptItem &item) { script.prepend(&item, 1); }

    /** Move the entire remaining script out (context switch / block). */
    ScriptQueue
    drainScript()
    {
        ScriptQueue out = std::move(script);
        return out;
    }

    /** Charge cycles to the current mode. */
    void
    charge(Cycle exec, Cycle stall)
    {
        const auto m = unsigned(ctx.mode);
        account.total[m] += exec + stall;
        account.stall[m] += stall;
        busyUntil += exec + stall;
    }
};

/**
 * The interface through which the machine asks the OS model for work.
 * Implemented by kernel::Kernel; the sim layer has no other knowledge
 * of the kernel.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** The CPU's script ran dry: push at least one item. */
    virtual void refill(CpuId cpu) = 0;

    /** Handle a marker item (zero-cost control operation). */
    virtual void marker(CpuId cpu, const ScriptItem &item) = 0;

    /**
     * A virtual reference could not be translated. The faulting item
     * is still at the front of the queue; the executor must push a
     * handling path in front of it.
     * @param is_prot True for a write to a read-only mapping (COW).
     */
    virtual void fault(CpuId cpu, Addr vaddr, bool is_store,
                       bool is_prot) = 0;

    /** Deliver any pending external events (interrupts) to cpu. */
    virtual void pollEvents(CpuId cpu, Cycle now) = 0;

    /**
     * Earliest cycle at which pollEvents(cpu, t) could do anything
     * for any t below the returned value. The parallel core caps its
     * speculation windows here so every poll inside a window is a
     * provable no-op. The conservative default (0) disables window
     * speculation entirely for executors that do not implement it.
     */
    virtual Cycle nextEventAt(CpuId cpu) const
    {
        (void)cpu;
        return 0;
    }
};

} // namespace mpos::sim

#endif // MPOS_SIM_CPU_HH
