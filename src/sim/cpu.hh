/**
 * @file
 * One simulated CPU: a script-driven reference engine.
 *
 * A CPU executes a queue of ScriptItems (instruction-line fetches, data
 * references, markers). The kernel -- through the Executor interface --
 * refills the queue, handles markers and TLB faults, and manipulates
 * the monitor context. All time accounting (per-mode execution and
 * stall cycles) lives here.
 */

#ifndef MPOS_SIM_CPU_HH
#define MPOS_SIM_CPU_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/tlb.hh"
#include "sim/types.hh"

namespace mpos::sim
{

/** Per-mode cycle accounting (indexed by ExecMode). */
struct CycleAccount
{
    Cycle total[3] = {0, 0, 0};
    Cycle stall[3] = {0, 0, 0};

    Cycle user() const { return total[unsigned(ExecMode::User)]; }
    Cycle kernel() const { return total[unsigned(ExecMode::Kernel)]; }
    Cycle idle() const { return total[unsigned(ExecMode::Idle)]; }
    Cycle nonIdle() const { return user() + kernel(); }
    Cycle
    all() const
    {
        return total[0] + total[1] + total[2];
    }
};

/** A simulated processor. */
class Cpu
{
  public:
    Cpu(CpuId cpu_id, const MachineConfig &cfg)
        : id(cpu_id), tlb(cfg.tlbEntries)
    {
    }

    CpuId id;
    Tlb tlb;
    MonitorContext ctx;

    /** Cycle up to which this CPU is occupied. */
    Cycle busyUntil = 0;
    /** Next cycle at which external events are polled. */
    Cycle nextPollAt = 0;
    /** When > 0, external interrupts are deferred. */
    uint32_t intrDisable = 0;

    CycleAccount account;

    /** Pending work, front = next to execute. */
    std::deque<ScriptItem> script;

    void push(const ScriptItem &item) { script.push_back(item); }

    void
    pushSeq(const std::vector<ScriptItem> &items)
    {
        script.insert(script.end(), items.begin(), items.end());
    }

    /** Insert items so they run before everything currently queued. */
    void
    pushFrontSeq(const std::vector<ScriptItem> &items)
    {
        script.insert(script.begin(), items.begin(), items.end());
    }

    void pushFront(const ScriptItem &item) { script.push_front(item); }

    /** Move the entire remaining script out (context switch / block). */
    std::deque<ScriptItem>
    drainScript()
    {
        std::deque<ScriptItem> out;
        out.swap(script);
        return out;
    }

    /** Charge cycles to the current mode. */
    void
    charge(Cycle exec, Cycle stall)
    {
        const auto m = unsigned(ctx.mode);
        account.total[m] += exec + stall;
        account.stall[m] += stall;
        busyUntil += exec + stall;
    }
};

/**
 * The interface through which the machine asks the OS model for work.
 * Implemented by kernel::Kernel; the sim layer has no other knowledge
 * of the kernel.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** The CPU's script ran dry: push at least one item. */
    virtual void refill(CpuId cpu) = 0;

    /** Handle a marker item (zero-cost control operation). */
    virtual void marker(CpuId cpu, const ScriptItem &item) = 0;

    /**
     * A virtual reference could not be translated. The faulting item
     * has already been re-pushed; the executor must push a handling
     * path in front of it.
     * @param is_prot True for a write to a read-only mapping (COW).
     */
    virtual void fault(CpuId cpu, Addr vaddr, bool is_store,
                       bool is_prot) = 0;

    /** Deliver any pending external events (interrupts) to cpu. */
    virtual void pollEvents(CpuId cpu, Cycle now) = 0;
};

} // namespace mpos::sim

#endif // MPOS_SIM_CPU_HH
