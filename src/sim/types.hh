/**
 * @file
 * Core vocabulary of the machine model: addresses, cycles, machine
 * configuration, reference/script items, and monitor context.
 *
 * The modeled machine is the SGI POWER Station 4D/340 of the paper:
 * four 33 MHz MIPS R3000 CPUs, each with a 64 KB direct-mapped I-cache
 * and a two-level data cache (64 KB L1, 256 KB L2), 16-byte lines,
 * physically addressed, on a snooping write-invalidate bus, plus a
 * separate synchronization bus for lock traffic.
 */

#ifndef MPOS_SIM_TYPES_HH
#define MPOS_SIM_TYPES_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mpos::sim
{

using Addr = uint64_t;
using Cycle = uint64_t;
using CpuId = uint32_t;
using Pid = int32_t;

constexpr Pid invalidPid = -1;

/** Identifies which cache a bus-level event belongs to. */
enum class CacheKind : uint8_t { Instr, Data };

/** What the CPU is executing, from the monitor's point of view. */
enum class ExecMode : uint8_t { User, Kernel, Idle };

/**
 * High-level OS operation in progress (Table 8 of the paper). UtlbFault
 * is kept distinct from CheapTlbFault so Figure 1's near-free UTLB
 * spikes can be separated from full OS invocations; functional
 * classification folds it into the cheap class.
 */
enum class OsOp : uint8_t
{
    None,              ///< Not in the OS.
    UtlbFault,         ///< TLB refill from a valid page-table entry.
    CheapTlbFault,     ///< Other TLB faults with no allocation or I/O.
    ExpensiveTlbFault, ///< Faults that allocate memory or do I/O.
    IoSyscall,         ///< read/write file system system calls.
    Sginap,            ///< Yield system call from the user lock library.
    OtherSyscall,      ///< All remaining system calls.
    Interrupt,         ///< Clock, disk, terminal, cross-CPU interrupts.
    IdleLoop,          ///< The OS idle loop.
};

/** Number of distinct OsOp values (for flat arrays). */
constexpr uint32_t numOsOps = 9;

/** Name of an OsOp for reports. */
const char *osOpName(OsOp op);

/** Name of an ExecMode for reports. */
const char *execModeName(ExecMode mode);

/** True if MPOS_SLOW_SIM is set: force the reference simulation core. */
inline bool
slowSimForced()
{
    static const bool forced = std::getenv("MPOS_SLOW_SIM") != nullptr;
    return forced;
}

/** True if MPOS_CHECK is set: force the invariant checkers on. */
inline bool
checkForced()
{
    static const bool forced = std::getenv("MPOS_CHECK") != nullptr;
    return forced;
}

/** MPOS_WATCHDOG: forced forward-progress budget in cycles (0 = off). */
inline Cycle
watchdogForcedCycles()
{
    static const Cycle cycles = [] {
        const char *v = std::getenv("MPOS_WATCHDOG");
        return v ? Cycle(std::strtoull(v, nullptr, 10)) : Cycle(0);
    }();
    return cycles;
}

/** MPOS_FAULTS: forced fault-injection seed (0 = off). */
inline uint64_t
faultForcedSeed()
{
    static const uint64_t seed = [] {
        const char *v = std::getenv("MPOS_FAULTS");
        return v ? std::strtoull(v, nullptr, 10) : uint64_t(0);
    }();
    return seed;
}

/** True if MPOS_TRACE is set: force the trace exporter on. */
inline bool
traceForced()
{
    static const bool forced = std::getenv("MPOS_TRACE") != nullptr;
    return forced;
}

/** MPOS_TRACE_RING: forced trace ring capacity in events (0 = default). */
inline uint64_t
traceRingForcedEntries()
{
    static const uint64_t entries = [] {
        const char *v = std::getenv("MPOS_TRACE_RING");
        return v ? std::strtoull(v, nullptr, 10) : uint64_t(0);
    }();
    return entries;
}

/**
 * MPOS_METRICS: force the time-sliced metrics engine on. A value > 1
 * is the window width in cycles; any other value selects the default.
 */
inline Cycle
metricsForcedWindow()
{
    static const Cycle window = [] {
        const char *v = std::getenv("MPOS_METRICS");
        if (!v)
            return Cycle(0);
        const Cycle w = Cycle(std::strtoull(v, nullptr, 10));
        return w > 1 ? w : Cycle(1); // 1 = on with the default width
    }();
    return window;
}

/** True if MPOS_PROFILE is set: force the routine profiler on. */
inline bool
profileForced()
{
    static const bool forced = std::getenv("MPOS_PROFILE") != nullptr;
    return forced;
}

/** MPOS_SIM_THREADS: forced host sim-thread count (0 = not set). */
inline uint32_t
simThreadsForced()
{
    static const uint32_t threads = [] {
        const char *v = std::getenv("MPOS_SIM_THREADS");
        return v ? uint32_t(std::strtoul(v, nullptr, 10)) : 0u;
    }();
    return threads;
}

/**
 * Coherence protocol policy for the data caches.
 *
 * Mesi is the machine the paper measured: the Illinois write-invalidate
 * protocol of the 4D/340, where a read miss with no other cached copy
 * fills Exclusive and the first write to an E line upgrades to M
 * silently (no bus transaction).
 *
 * Msi drops the Exclusive state: every read miss fills Shared, so the
 * first write to any previously read line costs an Upgrade bus
 * transaction even when no other cache holds it.
 *
 * Mi is the trivial ownership-only protocol: every fill installs the
 * line Modified, so even read misses invalidate all remote copies and
 * no line is ever shared between caches.
 */
enum class Protocol : uint8_t { Mesi, Msi, Mi };

/** Number of distinct Protocol values (for validation/sweeps). */
constexpr uint32_t numProtocols = 3;

/** Name of a Protocol for reports/flags ("mesi", "msi", "mi"). */
const char *protocolName(Protocol p);

/** Parse a protocol name; returns false if unknown. */
bool parseProtocol(const char *name, Protocol &out);

/**
 * Kernel lock primitive (DESIGN.md section 14). TestAndSet is the
 * machine the paper measured: kernel spinlocks poll a test-and-set
 * word and the user library spins 20 times before sginap. The
 * alternatives replace the acquire/release state machines wholesale;
 * the SyncTransport charges each primitive's distinct bus-operation
 * pattern under both the uncached sync bus and cached-RMW transports.
 */
enum class LockPolicy : uint8_t
{
    TestAndSet, ///< Paper's spinlock + spin-then-sginap user library.
    Ticket,     ///< FIFO ticket lock: fetch-and-add, poll now-serving.
    Mcs,        ///< MCS queue lock: local spin, direct hand-off.
    Futex,      ///< User locks block in-kernel; wake-one on release.
    Rcu,        ///< Read-mostly tables get a zero-cost read path.
};

/** Number of distinct LockPolicy values (for validation/sweeps). */
constexpr uint32_t numLockPolicies = 5;

/** Name of a LockPolicy for reports/flags ("tas", "ticket", ...). */
const char *lockPolicyName(LockPolicy p);

/** Parse a lock policy name; returns false if unknown. */
bool parseLockPolicy(const char *name, LockPolicy &out);

/** Bus transaction kinds. */
enum class BusOp : uint8_t
{
    Read,          ///< Line fill for a read or instruction fetch.
    ReadEx,        ///< Line fill with ownership for a write miss.
    Upgrade,       ///< Ownership upgrade for a write hit on Shared.
    Writeback,     ///< Dirty eviction.
    UncachedRead,  ///< Cache-bypassing read (device registers).
    UncachedWrite, ///< Cache-bypassing write.
};

/** Name of a BusOp for reports. */
const char *busOpName(BusOp op);

/** Machine configuration. Defaults model the SGI 4D/340. */
struct MachineConfig
{
    uint32_t numCpus = 4;
    /** Data-cache coherence protocol (Mesi = the measured machine). */
    Protocol protocol = Protocol::Mesi;
    /**
     * Kernel lock primitive. TestAndSet reproduces the measured
     * machine exactly (goldens are pinned under it); the alternatives
     * swap in the modern acquire/release state machines and their
     * per-primitive sync-transport accounting. Also forced globally
     * by MPOS_LOCK_PROTO=<name>.
     */
    LockPolicy lockPolicy = LockPolicy::TestAndSet;
    uint32_t lineBytes = 16;
    uint32_t icacheBytes = 64 * 1024;
    uint32_t icacheAssoc = 1;
    uint32_t l1dBytes = 64 * 1024;
    uint32_t l1dAssoc = 1;
    uint32_t l2dBytes = 256 * 1024;
    uint32_t l2dAssoc = 1;
    uint64_t memBytes = 32ULL * 1024 * 1024;
    uint32_t pageBytes = 4096;
    uint32_t tlbEntries = 64;

    /** Paper's per-bus-access CPU stall estimate (35 cycles). */
    Cycle busMissStall = 35;
    /** Stall for an L1 D-miss that hits in the L2 (about 15 cycles). */
    Cycle l2HitStall = 15;
    /**
     * Extra queueing realism: cycles the bus stays busy per transaction.
     * Zero by default so measured stall time matches the paper's
     * 35-cycles-per-access estimator exactly.
     */
    Cycle busOccupancy = 0;
    /** Cycles per instruction when not stalled (R3000 ~ 1). */
    Cycle cyclesPerInstr = 1;
    /** Instructions per 16-byte I-line (4-byte MIPS instructions). */
    uint32_t instrPerLine = 4;

    /** Sync transport: see SyncBus. */
    bool cachedLockRmw = false;   ///< Table 10 "Atomic RMW" scenario.
    Cycle syncBusOpCycles = 55;   ///< One sync-bus transaction.
    uint32_t syncOpsPerAcquire = 4; ///< No atomic RMW: ops per acquire.
    Cycle uncachedAccessCycles = 20; ///< Uncached device access stall.

    /** 33 MHz clock: cycles in one 10 ms scheduler tick. */
    Cycle clockTickCycles = 330000;

    /**
     * Force the reference (non-fast-path) simulation core: the
     * one-tick-at-a-time scheduler and full snoop walks. Slower but
     * byte-for-byte the original algorithms; the golden-counters
     * regression test runs both modes and asserts identical results.
     * Also forced globally by the MPOS_SLOW_SIM environment variable.
     */
    bool slowSim = false;

    /**
     * Compile the runtime invariant checkers in (SWMR, snoop-filter
     * soundness, tag/state consistency, TLB/page-table agreement,
     * monitor stream well-formedness). Zero-cost when false: every
     * hook is a single null-pointer test. Also forced globally by the
     * MPOS_CHECK environment variable.
     */
    bool check = false;

    /**
     * Forward-progress watchdog budget: if no CPU retires a memory
     * reference and no sync-transport acquire/release settles for this
     * many cycles, the run throws util::SimError(WatchdogTrip) with a
     * structured diagnostic dump (per-CPU context, lock table, last
     * monitor events) instead of spinning forever. Zero-cost when 0
     * (every hook is one null-pointer test, the checker discipline).
     * Also forced globally by MPOS_WATCHDOG=<cycles>. The budget must
     * exceed the longest legitimate reference-free stretch (Think
     * bursts, spin backoff); the idle loop fetches instructions and
     * so never trips it.
     */
    Cycle watchdogCycles = 0;

    /**
     * Deterministic fault-injection seed: nonzero builds a FaultPlan
     * whose whole schedule (forced slot exhaustion, script truncation,
     * lock-hold perturbation, synthetic watchdog trips) derives from
     * this seed alone -- no wall clock -- so the same seed reproduces
     * the same faults and the same diagnostics. Zero disables
     * injection. Also forced globally by MPOS_FAULTS=<seed>. Enabling
     * faults auto-enables the watchdog if watchdogCycles is 0.
     */
    uint64_t faultSeed = 0;
    /** Cycle window within which a planned synthetic trip lands. */
    Cycle faultHorizon = 400000;

    /**
     * Structured trace exporter: record every monitor event (bus
     * records with in-band OS context plus OS entry/exit, context
     * switches, invalidations) into the shared event ring and, when
     * traceFile is set, a binary trace file. Zero-cost when off
     * (null-pointer gate). Also forced globally by MPOS_TRACE.
     */
    bool trace = false;
    /** Binary trace output path; empty = in-memory ring only. */
    std::string traceFile;
    /**
     * Trace ring capacity in events: the paper's monitor kept the
     * last two million records. Also forced by MPOS_TRACE_RING.
     */
    uint64_t traceRingEntries = 2 * 1024 * 1024;
    /**
     * Ring mode: instead of streaming every event to traceFile, write
     * only the ring's final contents at finish() -- emulating the
     * paper's read-the-buffer-after-the-run methodology.
     */
    bool traceRingMode = false;

    /**
     * Time-sliced metrics engine: window bus traffic, miss fills,
     * invalidations and lock hand-offs over simulated cycles.
     * Zero-cost when off. Also forced globally by MPOS_METRICS.
     */
    bool metrics = false;
    /** Metrics window width in simulated cycles. */
    Cycle metricsWindowCycles = 100000;

    /**
     * Simulated-kernel routine profiler: attribute cycles, misses and
     * estimated stall to the executing (mode, OS op, routine) with
     * flame-style collapsed-stack output. Zero-cost when off. Also
     * forced globally by MPOS_PROFILE.
     */
    bool profile = false;

    /**
     * Host threads for the parallel epoch/barrier core: partition the
     * simulated CPUs across this many host threads and run them
     * speculatively through conflict-free cycle windows, falling back
     * to the lockstep fast path whenever the snoop filter reports
     * potential cross-CPU interaction. Event-identical to the serial
     * fast path by construction; zero-cost when 1 (the core is a null
     * pointer). Engages only when the machine qualifies: !slowSim,
     * busOccupancy == 0, and no checker/watchdog/fault plan attached
     * (those layers observe mid-window state and force serial).
     * Also forced globally by MPOS_SIM_THREADS=<n>.
     */
    uint32_t simThreads = 1;

    /** simThreads merged with the MPOS_SIM_THREADS override. */
    uint32_t
    effectiveSimThreads() const
    {
        const uint32_t forced = simThreadsForced();
        const uint32_t n = forced ? forced : simThreads;
        return n ? n : 1;
    }

    uint64_t numLines() const { return memBytes / lineBytes; }
    uint64_t numPages() const { return memBytes / pageBytes; }
};

/**
 * Validate every machine-level geometry invariant in one place (CPU
 * count vs the snoop filter, line/page/memory alignment, cache shapes,
 * TLB size, sim-thread cap), raising util::SimError(BadConfig) with
 * the offending parameter named. Returns cfg so constructors can run
 * it from their initializer lists, before any member is built.
 */
const MachineConfig &validateConfig(const MachineConfig &cfg);

/** Kinds of items in a CPU's execution script. */
enum class ItemKind : uint8_t
{
    IFetchLine,    ///< Fetch one instruction line; runs instrPerLine
                   ///< instructions.
    Load,          ///< One data read.
    Store,         ///< One data write.
    UncachedLoad,  ///< Cache-bypassing read (device register).
    UncachedStore, ///< Cache-bypassing write.
    BypassLoad,    ///< Block-op read that skips cache installation.
    BypassStore,   ///< Block-op write that skips cache installation.
    PrefetchLoad,  ///< Read whose miss latency a prefetcher hides.
    PrefetchStore, ///< Write whose miss latency a prefetcher hides.
    Think,         ///< Burn addr cycles with no memory reference.
    Marker,        ///< Control callback into the executor (the kernel).
};

/** Address space of a script reference. */
enum class AddrSpace : uint8_t { Physical, Virtual };

/**
 * Marker opcodes. The sim layer defines the transport; all semantics
 * live in the Executor implementation (the kernel).
 */
enum class MarkerOp : uint8_t
{
    OsEnter,        ///< arg = OsOp
    OsExit,
    RoutineEnter,   ///< arg = routine id
    RoutineExit,
    LockAcquire,    ///< arg = lock id (kernel spinlock)
    LockRelease,    ///< arg = lock id
    UserLockAcquire,///< arg = user lock id
    UserLockRelease,///< arg = user lock id
    Syscall,        ///< arg = syscall number, arg2 = payload
    SleepDisk,      ///< arg = request latency in cycles
    Resched,        ///< pick the next process to run
    PathDone,       ///< end of a kernel path; return to user or idle
    IdlePoll,       ///< idle loop checks the run queue
    InvalICache,    ///< arg = first line, arg2 = line count
    Custom,         ///< workload-defined
    /// Read-mostly kernel lock access (Ifree/Ino_x lookup paths).
    /// Routed to the plain exclusive acquire under every policy except
    /// Rcu, where managed locks take the zero-cost read path. Appended
    /// after Custom so existing marker encodings are untouched.
    LockAcquireShared, ///< arg = lock id
    LockReleaseShared, ///< arg = lock id
};

/** One element of a CPU execution script. */
struct ScriptItem
{
    ItemKind kind;
    AddrSpace space = AddrSpace::Physical;
    MarkerOp marker = MarkerOp::PathDone;
    Addr addr = 0;   ///< Address, Think cycles, or marker arg.
    uint64_t arg2 = 0; ///< Secondary marker argument.

    static ScriptItem
    ifetch(Addr line, AddrSpace s = AddrSpace::Physical)
    {
        return {ItemKind::IFetchLine, s, MarkerOp::PathDone, line, 0};
    }

    static ScriptItem
    load(Addr a, AddrSpace s = AddrSpace::Physical)
    {
        return {ItemKind::Load, s, MarkerOp::PathDone, a, 0};
    }

    static ScriptItem
    store(Addr a, AddrSpace s = AddrSpace::Physical)
    {
        return {ItemKind::Store, s, MarkerOp::PathDone, a, 0};
    }

    static ScriptItem
    think(Cycle cycles)
    {
        return {ItemKind::Think, AddrSpace::Physical, MarkerOp::PathDone,
                cycles, 0};
    }

    static ScriptItem
    uncachedLoad(Addr a)
    {
        return {ItemKind::UncachedLoad, AddrSpace::Physical,
                MarkerOp::PathDone, a, 0};
    }

    static ScriptItem
    uncachedStore(Addr a)
    {
        return {ItemKind::UncachedStore, AddrSpace::Physical,
                MarkerOp::PathDone, a, 0};
    }

    static ScriptItem
    mark(MarkerOp op, uint64_t arg = 0, uint64_t arg2 = 0)
    {
        return {ItemKind::Marker, AddrSpace::Physical, op, arg, arg2};
    }
};

/** Snapshot of what a CPU was doing when a monitor event fired. */
struct MonitorContext
{
    ExecMode mode = ExecMode::Idle;
    OsOp op = OsOp::IdleLoop;
    uint16_t routine = 0xffff; ///< Kernel routine id, 0xffff = none.
    Pid pid = invalidPid;

    bool isOs() const { return mode != ExecMode::User; }
};

} // namespace mpos::sim

#endif // MPOS_SIM_TYPES_HH
