#include "sim/cache.hh"

#include <bit>

#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::sim
{

Cache::Cache(std::string name, uint64_t bytes, uint32_t assoc,
             uint32_t line_bytes)
    : label(std::move(name)), assoc_(assoc), lineBytes_(line_bytes)
{
    using util::ErrCode;
    if (assoc == 0 || line_bytes == 0 ||
        bytes % (uint64_t(assoc) * line_bytes) != 0) {
        util::raise(ErrCode::BadConfig,
                    "cache %s: capacity %llu not divisible by assoc %u "
                    "x line %u", label.c_str(),
                    static_cast<unsigned long long>(bytes), assoc,
                    line_bytes);
    }
    if (!std::has_single_bit(line_bytes))
        util::raise(ErrCode::BadConfig,
                    "cache %s: line size %u not a power of two",
                    label.c_str(), line_bytes);
    if (line_bytes < 4)
        util::raise(ErrCode::BadConfig,
                    "cache %s: line size %u leaves no room for the "
                    "packed valid/dirty tag bits", label.c_str(),
                    line_bytes);
    lineShift_ = uint32_t(std::countr_zero(line_bytes));
    numSets = bytes / (uint64_t(assoc) * line_bytes);
    if (!std::has_single_bit(numSets))
        util::raise(ErrCode::BadConfig,
                    "cache %s: number of sets %llu not a power of two",
                    label.c_str(),
                    static_cast<unsigned long long>(numSets));
    ways.resize(numSets * assoc_);
}

Cache::Way *
Cache::findWay(Addr line)
{
    const uint64_t set = setIndex(line);
    Way *base = &ways[set * assoc_];
    for (uint32_t i = 0; i < assoc_; ++i)
        if ((base[i].tv & ~uint64_t(2)) == (line | 1))
            return &base[i];
    return nullptr;
}

const Cache::Way *
Cache::findWay(Addr line) const
{
    return const_cast<Cache *>(this)->findWay(line);
}

void
Cache::promote(uint64_t set, Way &way)
{
    Way *base = &ways[set * assoc_];
    const uint32_t old = way.lru;
    for (uint32_t i = 0; i < assoc_; ++i)
        if (base[i].valid() && base[i].lru < old)
            ++base[i].lru;
    way.lru = 0;
}

bool
Cache::contains(Addr addr) const
{
    return findWay(lineAddr(addr)) != nullptr;
}

bool
Cache::touchAssoc(Addr line)
{
    Way *w = findWay(line);
    if (!w)
        return false;
    promote(setIndex(line), *w);
    return true;
}

Victim
Cache::fill(Addr addr, bool dirty)
{
    const Addr line = lineAddr(addr);
    const uint64_t set = setIndex(line);

    if (assoc_ == 1) {
        // Direct-mapped: the single way is replaced outright; no LRU
        // bookkeeping, no empty-way scan.
        Way &w = ways[set];
        if ((w.tv & ~uint64_t(2)) == (line | 1)) {
            w.tv |= uint64_t(dirty) << 1;
            return {};
        }
        Victim victim;
        if (w.valid())
            victim = {w.tag(), true, w.dirty()};
        w.set(line, true, dirty);
        w.lru = 0;
        return victim;
    }

    Way *base = &ways[set * assoc_];

    if (Way *w = findWay(line)) {
        promote(set, *w);
        w->tv |= uint64_t(dirty) << 1;
        return {};
    }

    // Prefer an invalid way; otherwise evict the LRU one.
    Way *slot = nullptr;
    for (uint32_t i = 0; i < assoc_; ++i) {
        if (!base[i].valid()) {
            slot = &base[i];
            break;
        }
    }
    Victim victim;
    if (!slot) {
        uint32_t worst = 0;
        for (uint32_t i = 1; i < assoc_; ++i)
            if (base[i].lru > base[worst].lru)
                worst = i;
        slot = &base[worst];
        victim = {slot->tag(), true, slot->dirty()};
    }
    slot->set(line, true, dirty);
    slot->lru = assoc_; // promote() pulls it to 0
    promote(set, *slot);
    return victim;
}

bool
Cache::markDirty(Addr addr)
{
    Way *w = findWay(lineAddr(addr));
    if (!w)
        return false;
    w->tv |= 2;
    return true;
}

bool
Cache::isDirty(Addr addr) const
{
    const Way *w = findWay(lineAddr(addr));
    return w && w->dirty();
}

bool
Cache::invalidateAssoc(Addr line)
{
    Way *w = findWay(line);
    if (!w)
        return false;
    compactRanks(setIndex(line), w->lru);
    w->tv = 0;
    w->lru = 0;
    return true;
}

void
Cache::compactRanks(uint64_t set, uint32_t removed)
{
    // Keep the set's valid LRU ranks a dense 0..k-1 permutation when
    // a way vanishes. promote() and the eviction scan both assume
    // density; leaving the freed rank as a hole lets a later
    // fill+promote push two ways onto the same rank, after which the
    // victim choice is arbitrary instead of least-recently-used.
    Way *base = &ways[set * assoc_];
    for (uint32_t i = 0; i < assoc_; ++i)
        if (base[i].valid() && base[i].lru > removed)
            --base[i].lru;
}

void
Cache::reset()
{
    for (auto &w : ways)
        w = Way{};
}

uint64_t
Cache::residentLines() const
{
    uint64_t n = 0;
    for (const auto &w : ways)
        n += w.tv & 1;
    return n;
}

uint32_t
Cache::checkIntegrity(
    const std::function<void(const std::string &)> &report) const
{
    uint32_t bad = 0;
    auto fail = [&](uint64_t set, uint32_t way, const std::string &what) {
        ++bad;
        report(label + ": set " + std::to_string(set) + " way " +
               std::to_string(way) + ": " + what);
    };

    for (uint64_t set = 0; set < numSets; ++set) {
        const Way *base = &ways[set * assoc_];
        for (uint32_t i = 0; i < assoc_; ++i) {
            const Way &w = base[i];
            if (!w.valid()) {
                // invalidate()/reset() clear the whole packed word; a
                // surviving dirty bit or tag means a stray write.
                if (w.tv != 0)
                    fail(set, i, "invalid way with non-zero packed word");
                continue;
            }
            if ((w.tv & (lineBytes_ - 1) & ~uint64_t(3)) != 0)
                fail(set, i, "tag not line-aligned");
            if (setIndex(w.tag()) != set)
                fail(set, i, "resident line maps to a different set");
            if (w.lru >= assoc_)
                fail(set, i, "LRU rank out of range");
            for (uint32_t j = i + 1; j < assoc_; ++j) {
                if (!base[j].valid())
                    continue;
                if (base[j].tag() == w.tag())
                    fail(set, j, "line resident in two ways");
                if (base[j].lru == w.lru)
                    fail(set, j, "duplicate LRU rank");
            }
        }
    }
    return bad;
}

} // namespace mpos::sim
