/**
 * @file
 * Lock-access transport modeling the 4D/340's dedicated synchronization
 * bus and the paper's simulated alternative.
 *
 * The real machine diverts all lock accesses to a separate
 * synchronization bus whose protocol, lacking an atomic
 * read-modify-write, needs several uncached transactions per acquire
 * (Table 10 "Current Machine"). Section 5.1 simulates the alternative:
 * locks held in the coherent caches with LL/SC-style atomic RMW, where
 * re-acquiring an undisturbed lock costs no bus access at all
 * (Table 10 "Atomic RMW + Caches", Table 12 last column).
 *
 * SyncTransport charges timing under the *active* protocol and counts
 * bus operations under *both*, so one run produces both columns.
 */

#ifndef MPOS_SIM_SYNCBUS_HH
#define MPOS_SIM_SYNCBUS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

class Checker;
class Watchdog;

/**
 * What happened at a lock, as reported by the kernel lock layer.
 *
 * The first three events are the paper's test-and-set machine and the
 * only ones the statistics layer ever sees; the rest are the
 * per-primitive transport events of the modern lock policies
 * (DESIGN.md section 14). The kernel translates each policy's
 * acquire/release state machine into these so SyncTransport can charge
 * the primitive's distinct bus-operation pattern under both the
 * uncached sync bus and the cached-RMW transport.
 */
enum class LockEvent : uint8_t
{
    AcquireSuccess, ///< Test-and-set won the lock.
    AcquireFail,    ///< Poll found the lock held (one spin iteration).
    Release,

    // Ticket lock: one fetch-and-add takes a ticket, then the waiter
    // polls the now-serving word (a plain read, so pollers share the
    // line instead of fighting over it exclusively).
    TicketTake,    ///< Fetch-and-add on the ticket counter.
    TicketPoll,    ///< Read of now-serving found another ticket active.
    TicketRelease, ///< Increment of now-serving (wakes next ticket).

    // MCS queue lock: waiters spin on a flag in their *own* queue node,
    // so steady-state polling is cache-local; the releaser hands off by
    // writing exactly one successor's node.
    McsSwap,        ///< Tail swap found the lock free (uncontended).
    McsEnqueue,     ///< Tail swap found a predecessor; linked behind it.
    McsLocalPoll,   ///< Spin read of the waiter's own queue node.
    McsHandoff,     ///< Releaser wrote the successor's node flag.
    McsReleaseFree, ///< Tail compare-and-swap back to empty (no waiter).

    // Futex-style blocking lock: an uncontended CAS fast path, and
    // contended waiters block in the kernel instead of spinning, so a
    // held lock generates *no* steady-state bus traffic.
    FutexAcquire, ///< Uncontended CAS won the lock.
    FutexWait,    ///< CAS lost; waiter blocks (last access pre-sleep).
    FutexWake,    ///< Release with waiters: unlock write + wake.

    // RCU-like read path for read-mostly tables: readers publish
    // nothing and cost zero bus operations; writers still take the
    // exclusive lock and then wait out a grace period on release.
    RcuReadEnter, ///< Reader entered a read-side section (free).
    RcuReadExit,  ///< Reader left a read-side section (free).
    RcuSync,      ///< Writer grace period: one op per other CPU.
};

/** Events that are a spin poll: no forward progress, so the watchdog
 *  must keep counting them against its no-progress budget. */
constexpr bool
lockEventIsPoll(LockEvent ev)
{
    return ev == LockEvent::AcquireFail || ev == LockEvent::TicketPoll
        || ev == LockEvent::McsLocalPoll || ev == LockEvent::FutexWait;
}

/** Per-lock operation counters under both protocols. */
struct SyncOpCounts
{
    uint64_t uncachedOps = 0; ///< Sync-bus transactions.
    uint64_t cachedOps = 0;   ///< Main-bus accesses under cached RMW.
};

/** Dual-protocol lock transport. */
class SyncTransport
{
  public:
    SyncTransport(const MachineConfig &cfg, uint32_t num_locks);

    /**
     * Account one lock event; returns the CPU stall cycles under the
     * active protocol (cfg.cachedLockRmw selects it).
     *
     * `peer` names the other CPU involved in a hand-off
     * (LockEvent::McsHandoff: the successor whose queue node the
     * releaser writes, invalidating the successor's locally cached
     * copy); pass -1 when the event has no peer.
     *
     * Raises SimError(BadConfig) on an out-of-range lock id — ids
     * arrive from snapshots and --serve requests, so a malformed one
     * must travel the typed error channel, not abort the process.
     */
    Cycle access(CpuId cpu, uint32_t lock_id, LockEvent ev,
                 int peer = -1);

    /**
     * Per-lock op counts under both protocols. Raises
     * SimError(BadConfig) on an out-of-range lock id.
     */
    const SyncOpCounts &counts(uint32_t lock_id) const;

    /** Sum of op counts over lock ids [0, id_limit). */
    SyncOpCounts sumOps(uint32_t id_limit) const;

    Cycle uncachedCyclesPerOp() const { return cfg.syncBusOpCycles; }
    Cycle cachedCyclesPerOp() const { return cfg.busMissStall; }

    /** Stall cycles charged so far to cpu by the active protocol. */
    Cycle stallCycles(CpuId cpu) const { return stall[cpu]; }

    /** Hypothetical total stall if the *other* protocol had been on. */
    Cycle uncachedStallTotal() const;
    Cycle cachedStallTotal() const;

    uint32_t numLocks() const { return uint32_t(perLock.size()); }

    /** Attach the invariant checker (null = disabled). */
    void setChecker(Checker *c) { checker = c; }

    /** Attach the forward-progress watchdog (null = disabled). */
    void setWatchdog(Watchdog *w) { wd = w; }

    /** Bitmask of CPUs caching lock_id's line (for the checker). */
    uint64_t cachedAtMask(uint32_t lock_id) const
    {
        return cachedAt[lock_id];
    }

    /** Bitmask of CPUs with a valid cached copy of their own MCS queue
     *  node for lock_id (for tests; empty unless the MCS policy ran). */
    uint64_t qnodeAtMask(uint32_t lock_id) const
    {
        return qnodeAt[lock_id];
    }

    /// @name Snapshot save/restore
    /// Restore validates every sharer mask against numCpus: a corrupt
    /// image with phantom sharers (bits >= numCpus) raises
    /// SnapshotCorrupt here instead of tripping the coherence checker
    /// later with a misleading diagnostic.
    /// @{
    void saveState(util::ByteWriter &w) const;
    void restoreState(util::ByteReader &r);
    /// @}

  private:
    /** Bus ops this event needs under the uncached sync-bus protocol. */
    uint32_t uncachedOpsFor(LockEvent ev) const;

    /** Bus ops under cached LL/SC, tracking the line's location. */
    uint32_t cachedOpsFor(CpuId cpu, uint32_t lock_id, LockEvent ev,
                          int peer);

    MachineConfig cfg;
    std::vector<SyncOpCounts> perLock;
    /** Bitmask of CPUs whose cache currently holds each lock's line. */
    std::vector<uint64_t> cachedAt;
    /** Per-lock bitmask of CPUs whose *own* MCS queue-node line is
     *  validly cached (the local-spin advantage: polls of a cached
     *  node are free until the predecessor's hand-off write
     *  invalidates it). */
    std::vector<uint64_t> qnodeAt;
    std::vector<Cycle> stall;
    uint64_t uncachedOpsTotal = 0;
    uint64_t cachedOpsTotal = 0;
    /** Invariant checker; null unless checking is enabled. */
    Checker *checker = nullptr;
    /** Forward-progress watchdog; null unless enabled. */
    Watchdog *wd = nullptr;
};

} // namespace mpos::sim

#endif // MPOS_SIM_SYNCBUS_HH
