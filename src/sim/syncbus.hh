/**
 * @file
 * Lock-access transport modeling the 4D/340's dedicated synchronization
 * bus and the paper's simulated alternative.
 *
 * The real machine diverts all lock accesses to a separate
 * synchronization bus whose protocol, lacking an atomic
 * read-modify-write, needs several uncached transactions per acquire
 * (Table 10 "Current Machine"). Section 5.1 simulates the alternative:
 * locks held in the coherent caches with LL/SC-style atomic RMW, where
 * re-acquiring an undisturbed lock costs no bus access at all
 * (Table 10 "Atomic RMW + Caches", Table 12 last column).
 *
 * SyncTransport charges timing under the *active* protocol and counts
 * bus operations under *both*, so one run produces both columns.
 */

#ifndef MPOS_SIM_SYNCBUS_HH
#define MPOS_SIM_SYNCBUS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

class Checker;
class Watchdog;

/** What happened at a lock, as reported by the kernel lock layer. */
enum class LockEvent : uint8_t
{
    AcquireSuccess, ///< Test-and-set won the lock.
    AcquireFail,    ///< Poll found the lock held (one spin iteration).
    Release,
};

/** Per-lock operation counters under both protocols. */
struct SyncOpCounts
{
    uint64_t uncachedOps = 0; ///< Sync-bus transactions.
    uint64_t cachedOps = 0;   ///< Main-bus accesses under cached RMW.
};

/** Dual-protocol lock transport. */
class SyncTransport
{
  public:
    SyncTransport(const MachineConfig &cfg, uint32_t num_locks);

    /**
     * Account one lock event; returns the CPU stall cycles under the
     * active protocol (cfg.cachedLockRmw selects it).
     */
    Cycle access(CpuId cpu, uint32_t lock_id, LockEvent ev);

    /** Per-lock op counts under both protocols. */
    const SyncOpCounts &counts(uint32_t lock_id) const;

    /** Sum of op counts over lock ids [0, id_limit). */
    SyncOpCounts sumOps(uint32_t id_limit) const;

    Cycle uncachedCyclesPerOp() const { return cfg.syncBusOpCycles; }
    Cycle cachedCyclesPerOp() const { return cfg.busMissStall; }

    /** Stall cycles charged so far to cpu by the active protocol. */
    Cycle stallCycles(CpuId cpu) const { return stall[cpu]; }

    /** Hypothetical total stall if the *other* protocol had been on. */
    Cycle uncachedStallTotal() const;
    Cycle cachedStallTotal() const;

    uint32_t numLocks() const { return uint32_t(perLock.size()); }

    /** Attach the invariant checker (null = disabled). */
    void setChecker(Checker *c) { checker = c; }

    /** Attach the forward-progress watchdog (null = disabled). */
    void setWatchdog(Watchdog *w) { wd = w; }

    /** Bitmask of CPUs caching lock_id's line (for the checker). */
    uint64_t cachedAtMask(uint32_t lock_id) const
    {
        return cachedAt[lock_id];
    }

    /// @name Snapshot save/restore
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        w.u32(uint32_t(perLock.size()));
        for (const SyncOpCounts &c : perLock) {
            w.u64(c.uncachedOps);
            w.u64(c.cachedOps);
        }
        for (uint64_t m : cachedAt)
            w.u64(m);
        w.u32(uint32_t(stall.size()));
        for (Cycle s : stall)
            w.u64(s);
        w.u64(uncachedOpsTotal);
        w.u64(cachedOpsTotal);
    }

    void
    restoreState(util::ByteReader &r)
    {
        const uint32_t nl = r.u32();
        if (nl != perLock.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "syncbus: snapshot has %u locks, machine has "
                        "%zu",
                        nl, perLock.size());
        for (SyncOpCounts &c : perLock) {
            c.uncachedOps = r.u64();
            c.cachedOps = r.u64();
        }
        for (uint64_t &m : cachedAt)
            m = r.u64();
        const uint32_t nc = r.u32();
        if (nc != stall.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "syncbus: snapshot has %u cpus, machine has "
                        "%zu",
                        nc, stall.size());
        for (Cycle &s : stall)
            s = r.u64();
        uncachedOpsTotal = r.u64();
        cachedOpsTotal = r.u64();
    }
    /// @}

  private:
    /** Bus ops this event needs under the uncached sync-bus protocol. */
    uint32_t uncachedOpsFor(LockEvent ev) const;

    /** Bus ops under cached LL/SC, tracking the line's location. */
    uint32_t cachedOpsFor(CpuId cpu, uint32_t lock_id, LockEvent ev);

    MachineConfig cfg;
    std::vector<SyncOpCounts> perLock;
    /** Bitmask of CPUs whose cache currently holds each lock's line. */
    std::vector<uint64_t> cachedAt;
    std::vector<Cycle> stall;
    uint64_t uncachedOpsTotal = 0;
    uint64_t cachedOpsTotal = 0;
    /** Invariant checker; null unless checking is enabled. */
    Checker *checker = nullptr;
    /** Forward-progress watchdog; null unless enabled. */
    Watchdog *wd = nullptr;
};

} // namespace mpos::sim

#endif // MPOS_SIM_SYNCBUS_HH
