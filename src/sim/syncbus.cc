#include "sim/syncbus.hh"

#include <algorithm>

#include "sim/check/checker.hh"
#include "sim/fault/watchdog.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::sim
{

SyncTransport::SyncTransport(const MachineConfig &config,
                             uint32_t num_locks)
    : cfg(config), perLock(num_locks), cachedAt(num_locks, 0),
      stall(cfg.numCpus, 0)
{
    // The 64-CPU cap of the cachedAt bitmasks is enforced centrally
    // by validateConfig before any transport is built.
}

uint32_t
SyncTransport::uncachedOpsFor(LockEvent ev) const
{
    switch (ev) {
      case LockEvent::AcquireSuccess:
        // No atomic RMW on the sync bus: read, set, verify.
        return cfg.syncOpsPerAcquire;
      case LockEvent::AcquireFail:
        return 1; // every poll of a held lock crosses the sync bus
      case LockEvent::Release:
        return 1;
    }
    return 0;
}

uint32_t
SyncTransport::cachedOpsFor(CpuId cpu, uint32_t lock_id, LockEvent ev)
{
    const uint64_t me = uint64_t(1) << cpu;
    uint64_t &mask = cachedAt[lock_id];
    switch (ev) {
      case LockEvent::AcquireSuccess:
      case LockEvent::Release:
        // LL/SC write: needs the line exclusive. Free when this CPU
        // already holds the only copy.
        if (mask == me)
            return 0;
        mask = me;
        return 1;
      case LockEvent::AcquireFail:
        // Spin read: first poll fetches the line, later polls hit.
        if (mask & me)
            return 0;
        mask |= me;
        return 1;
    }
    return 0;
}

Cycle
SyncTransport::access(CpuId cpu, uint32_t lock_id, LockEvent ev)
{
    if (lock_id >= perLock.size())
        util::panic("lock id %u out of range", lock_id);

    const uint32_t uops = uncachedOpsFor(ev);
    const uint32_t cops = cachedOpsFor(cpu, lock_id, ev);
    perLock[lock_id].uncachedOps += uops;
    perLock[lock_id].cachedOps += cops;
    uncachedOpsTotal += uops;
    cachedOpsTotal += cops;

    const Cycle cost = cfg.cachedLockRmw
        ? Cycle(cops) * cfg.busMissStall
        : Cycle(uops) * cfg.syncBusOpCycles;
    stall[cpu] += cost;
    // A successful hand-off is forward progress; a failed poll is the
    // very spinning the watchdog exists to catch.
    if (wd && ev != LockEvent::AcquireFail)
        wd->noteProgress();
    if (checker)
        checker->onSyncEvent(cpu, lock_id, numLocks(),
                             cachedAt[lock_id]);
    return cost;
}

const SyncOpCounts &
SyncTransport::counts(uint32_t lock_id) const
{
    if (lock_id >= perLock.size())
        util::panic("lock id %u out of range", lock_id);
    return perLock[lock_id];
}

SyncOpCounts
SyncTransport::sumOps(uint32_t id_limit) const
{
    SyncOpCounts total;
    const uint32_t n = std::min<uint32_t>(id_limit,
                                          uint32_t(perLock.size()));
    for (uint32_t i = 0; i < n; ++i) {
        total.uncachedOps += perLock[i].uncachedOps;
        total.cachedOps += perLock[i].cachedOps;
    }
    return total;
}

Cycle
SyncTransport::uncachedStallTotal() const
{
    return uncachedOpsTotal * cfg.syncBusOpCycles;
}

Cycle
SyncTransport::cachedStallTotal() const
{
    return cachedOpsTotal * cfg.busMissStall;
}

} // namespace mpos::sim
