#include "sim/syncbus.hh"

#include <algorithm>

#include "sim/check/checker.hh"
#include "sim/fault/watchdog.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace mpos::sim
{

SyncTransport::SyncTransport(const MachineConfig &config,
                             uint32_t num_locks)
    : cfg(config), perLock(num_locks), cachedAt(num_locks, 0),
      qnodeAt(num_locks, 0), stall(cfg.numCpus, 0)
{
    // The 64-CPU cap of the cachedAt bitmasks is enforced centrally
    // by validateConfig before any transport is built.
}

uint32_t
SyncTransport::uncachedOpsFor(LockEvent ev) const
{
    switch (ev) {
      case LockEvent::AcquireSuccess:
        // No atomic RMW on the sync bus: read, set, verify.
        return cfg.syncOpsPerAcquire;
      case LockEvent::AcquireFail:
        return 1; // every poll of a held lock crosses the sync bus
      case LockEvent::Release:
        return 1;

      case LockEvent::TicketTake:
        // Fetch-and-add emulated with the same read/modify/verify
        // sequence an acquire needs on the RMW-less sync bus.
        return cfg.syncOpsPerAcquire;
      case LockEvent::TicketPoll:
        return 1; // read of now-serving
      case LockEvent::TicketRelease:
        return 1; // write of now-serving

      case LockEvent::McsSwap:
        return cfg.syncOpsPerAcquire; // emulated tail swap
      case LockEvent::McsEnqueue:
        // Emulated tail swap plus the write linking into the
        // predecessor's node.
        return cfg.syncOpsPerAcquire + 1;
      case LockEvent::McsLocalPoll:
        // Sync RAM is never cached: on the Current Machine the "local"
        // spin degenerates to a bus crossing per poll, which is
        // exactly why MCS only pays off with cached locks.
        return 1;
      case LockEvent::McsHandoff:
        return 1; // write the successor's node flag
      case LockEvent::McsReleaseFree:
        return cfg.syncOpsPerAcquire; // emulated tail compare-and-swap

      case LockEvent::FutexAcquire:
        return cfg.syncOpsPerAcquire; // emulated CAS
      case LockEvent::FutexWait:
        return 1; // the losing poll before the waiter blocks
      case LockEvent::FutexWake:
        return 2; // unlock write + waiter-count check

      case LockEvent::RcuReadEnter:
      case LockEvent::RcuReadExit:
        return 0; // readers publish nothing
      case LockEvent::RcuSync:
        // Grace period: the writer waits for every other CPU to pass a
        // quiescent state, one sync-bus transaction apiece.
        return cfg.numCpus - 1;
    }
    return 0;
}

uint32_t
SyncTransport::cachedOpsFor(CpuId cpu, uint32_t lock_id, LockEvent ev,
                            int peer)
{
    const uint64_t me = uint64_t(1) << cpu;
    uint64_t &mask = cachedAt[lock_id];
    switch (ev) {
      case LockEvent::AcquireSuccess:
      case LockEvent::Release:
      case LockEvent::TicketTake:
      case LockEvent::TicketRelease:
      case LockEvent::McsSwap:
      case LockEvent::McsReleaseFree:
      case LockEvent::FutexAcquire:
      case LockEvent::FutexWake:
        // LL/SC write: needs the line exclusive. Free when this CPU
        // already holds the only copy.
        if (mask == me)
            return 0;
        mask = me;
        return 1;
      case LockEvent::AcquireFail:
      case LockEvent::TicketPoll:
      case LockEvent::FutexWait:
        // Spin read: first poll fetches the line, later polls hit.
        if (mask & me)
            return 0;
        mask |= me;
        return 1;
      case LockEvent::McsEnqueue:
        // Exclusive tail swap plus a write into the predecessor's
        // queue node (a second line, always remote on first contact).
        if (mask == me)
            return 1;
        mask = me;
        return 2;
      case LockEvent::McsLocalPoll: {
        // The waiter spins on its *own* queue node: one fetch, then
        // every poll hits locally until a hand-off invalidates it.
        uint64_t &qmask = qnodeAt[lock_id];
        if (qmask & me)
            return 0;
        qmask |= me;
        return 1;
      }
      case LockEvent::McsHandoff:
        // The releaser writes the successor's node flag, taking that
        // line exclusive and invalidating the successor's spin copy.
        if (peer >= 0)
            qnodeAt[lock_id] &= ~(uint64_t(1) << unsigned(peer));
        return 1;
      case LockEvent::RcuReadEnter:
      case LockEvent::RcuReadExit:
        return 0; // the read path touches no shared line
      case LockEvent::RcuSync:
        // One invalidation round-trip per other CPU; the lock line
        // ends up exclusive at the writer.
        mask = me;
        return cfg.numCpus - 1;
    }
    return 0;
}

Cycle
SyncTransport::access(CpuId cpu, uint32_t lock_id, LockEvent ev,
                      int peer)
{
    if (lock_id >= perLock.size())
        util::raise(util::ErrCode::BadConfig,
                    "syncbus: lock id %u out of range (machine has %zu "
                    "locks)",
                    lock_id, perLock.size());

    const uint32_t uops = uncachedOpsFor(ev);
    const uint32_t cops = cachedOpsFor(cpu, lock_id, ev, peer);
    perLock[lock_id].uncachedOps += uops;
    perLock[lock_id].cachedOps += cops;
    uncachedOpsTotal += uops;
    cachedOpsTotal += cops;

    const Cycle cost = cfg.cachedLockRmw
        ? Cycle(cops) * cfg.busMissStall
        : Cycle(uops) * cfg.syncBusOpCycles;
    stall[cpu] += cost;
    // A successful hand-off is forward progress; a failed poll (under
    // any primitive) is the very spinning the watchdog exists to
    // catch.
    if (wd && !lockEventIsPoll(ev))
        wd->noteProgress();
    if (checker)
        checker->onSyncEvent(cpu, lock_id, numLocks(),
                             cachedAt[lock_id]);
    return cost;
}

const SyncOpCounts &
SyncTransport::counts(uint32_t lock_id) const
{
    if (lock_id >= perLock.size())
        util::raise(util::ErrCode::BadConfig,
                    "syncbus: lock id %u out of range (machine has %zu "
                    "locks)",
                    lock_id, perLock.size());
    return perLock[lock_id];
}

SyncOpCounts
SyncTransport::sumOps(uint32_t id_limit) const
{
    SyncOpCounts total;
    const uint32_t n = std::min<uint32_t>(id_limit,
                                          uint32_t(perLock.size()));
    for (uint32_t i = 0; i < n; ++i) {
        total.uncachedOps += perLock[i].uncachedOps;
        total.cachedOps += perLock[i].cachedOps;
    }
    return total;
}

Cycle
SyncTransport::uncachedStallTotal() const
{
    return uncachedOpsTotal * cfg.syncBusOpCycles;
}

Cycle
SyncTransport::cachedStallTotal() const
{
    return cachedOpsTotal * cfg.busMissStall;
}

void
SyncTransport::saveState(util::ByteWriter &w) const
{
    w.u32(uint32_t(perLock.size()));
    for (const SyncOpCounts &c : perLock) {
        w.u64(c.uncachedOps);
        w.u64(c.cachedOps);
    }
    for (uint64_t m : cachedAt)
        w.u64(m);
    for (uint64_t m : qnodeAt)
        w.u64(m);
    w.u32(uint32_t(stall.size()));
    for (Cycle s : stall)
        w.u64(s);
    w.u64(uncachedOpsTotal);
    w.u64(cachedOpsTotal);
}

void
SyncTransport::restoreState(util::ByteReader &r)
{
    const uint32_t nl = r.u32();
    if (nl != perLock.size())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "syncbus: snapshot has %u locks, machine has %zu",
                    nl, perLock.size());
    for (SyncOpCounts &c : perLock) {
        c.uncachedOps = r.u64();
        c.cachedOps = r.u64();
    }
    // Only bits [0, numCpus) may be set in a sharer mask; phantom
    // sharers from a corrupt image would otherwise surface much later
    // as a baffling coherence-checker trip.
    const uint64_t legal = cfg.numCpus >= 64
        ? ~uint64_t(0)
        : (uint64_t(1) << cfg.numCpus) - 1;
    for (size_t i = 0; i < cachedAt.size(); ++i) {
        const uint64_t m = r.u64();
        if (m & ~legal)
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "syncbus: lock %zu cachedAt mask %llx has "
                        "sharers beyond cpu %u",
                        i, static_cast<unsigned long long>(m),
                        cfg.numCpus - 1);
        cachedAt[i] = m;
    }
    for (size_t i = 0; i < qnodeAt.size(); ++i) {
        const uint64_t m = r.u64();
        if (m & ~legal)
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "syncbus: lock %zu qnodeAt mask %llx has "
                        "sharers beyond cpu %u",
                        i, static_cast<unsigned long long>(m),
                        cfg.numCpus - 1);
        qnodeAt[i] = m;
    }
    const uint32_t nc = r.u32();
    if (nc != stall.size())
        util::raise(util::ErrCode::SnapshotCorrupt,
                    "syncbus: snapshot has %u cpus, machine has %zu",
                    nc, stall.size());
    for (Cycle &s : stall)
        s = r.u64();
    uncachedOpsTotal = r.u64();
    cachedOpsTotal = r.u64();
}

} // namespace mpos::sim
