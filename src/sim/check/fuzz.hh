/**
 * @file
 * Differential fuzz harness for the simulation core.
 *
 * PR 1 replaced the one-tick-at-a-time scheduler and full snoop walks
 * with a cycle-skipping scheduler and a snoop filter, arguing the fast
 * paths are observably identical. The fuzzer turns that argument into
 * an executable property: seeded random scripts -- shared-pool data
 * references, instruction fetches overlapping the data pool, lock
 * contention, OS enter/exit markers, uncached and cache-bypassing
 * traffic, TLB faults and I-cache flushes -- run through BOTH cores
 * with the invariant checkers on, and the harness asserts bit-identical
 * monitor event streams and final machine state (cycle accounts, cache
 * contents, coherence states, TLB counters, sync stalls).
 *
 * A failing seed is automatically minimized by binary-searching the
 * shortest failing script prefix, so a regression lands as a short
 * reproducible trace instead of a 4000-item haystack.
 */

#ifndef MPOS_SIM_CHECK_FUZZ_HH
#define MPOS_SIM_CHECK_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mpos::sim
{

/** Shape of one fuzz run. Defaults give dense coherence churn. */
struct FuzzOptions
{
    uint32_t numCpus = 4;
    uint32_t scriptLen = 4000; ///< Script items generated per CPU.
    Cycle runCycles = 60000;   ///< Cycles each machine is advanced.
    uint32_t numLocks = 8;
    uint32_t poolLines = 96;   ///< Hot shared pool of line addresses.
    /** Coherence protocol both machines run under. */
    Protocol protocol = Protocol::Mesi;

    /**
     * Lock primitive both machines run under. The generic scripted
     * lock markers (a few failed polls, then success) are translated
     * by the executor into the primitive's transport event sequence
     * -- ticket take/poll, MCS swap/enqueue/local-poll/hand-off,
     * futex CAS/wait/wake, RCU read-side -- so the differential
     * property covers every primitive's accounting on both cores.
     */
    LockPolicy lockPolicy = LockPolicy::TestAndSet;

    /**
     * Host sim-threads for a third, parallel-core run (1 = off).
     * When > 1 the differential becomes three-way -- fast vs
     * reference vs parallel epoch/barrier core -- and every run
     * models a zero-occupancy bus so the streams stay comparable
     * (see machineConfig()).
     */
    uint32_t simThreads = 1;

    /**
     * Machine shrunk so the pool thrashes every structure: small
     * caches force evictions and inclusion churn, a small TLB forces
     * refill faults.
     */
    MachineConfig machineConfig() const;
};

/** Result of one differential run. */
struct FuzzOutcome
{
    bool ok = true;
    /** Human-readable description of the first divergence, if any. */
    std::string detail;
    /** Invariant violations recorded by either run's checker. */
    std::vector<std::string> violations;
    /** Monitor events compared (same in both runs when ok). */
    uint64_t eventsCompared = 0;
    /** Checker work performed across both runs (CheckStats::total). */
    uint64_t checksPerformed = 0;
};

/**
 * Generate the per-CPU scripts for a seed. Exposed so tests can assert
 * generator properties (marker pairing, address ranges) directly.
 */
std::vector<std::vector<ScriptItem>>
buildFuzzScripts(uint64_t seed, const FuzzOptions &opt);

/**
 * Run one seed through the fast and reference cores with checkers on
 * and compare everything. prefix_len > 0 truncates every CPU's script
 * to its first prefix_len items (the minimizer's knob); 0 = full.
 * opt.simThreads > 1 adds a third run under the parallel core (with
 * the checker off, since a checker forces the serial fallback) whose
 * event stream and final state must match the fast run bit for bit.
 */
FuzzOutcome runDifferential(uint64_t seed, const FuzzOptions &opt,
                            uint32_t prefix_len = 0);

/**
 * Smallest k in [1, n] with fails(k), assuming fails(n) holds, by
 * binary search (monotonicity is heuristic for script prefixes, but a
 * non-minimal answer is still a valid failing repro).
 */
uint64_t minimizeFailingPrefix(
    uint64_t n, const std::function<bool(uint64_t)> &fails);

/** One failure from a fuzz matrix, already minimized. */
struct FuzzFailure
{
    uint64_t seed = 0;
    uint32_t numCpus = 0;
    uint32_t minimalPrefix = 0; ///< Shortest failing script prefix.
    std::string detail;
};

/** Aggregate result of a seed x CPU-count sweep. */
struct FuzzMatrixResult
{
    uint32_t runs = 0;
    uint64_t eventsCompared = 0;
    uint64_t checksPerformed = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Sweep seeds [first_seed, first_seed + num_seeds) over the given CPU
 * counts; failing runs are minimized before being reported. progress,
 * if non-null, is called after every run.
 */
FuzzMatrixResult runFuzzMatrix(
    uint64_t first_seed, uint32_t num_seeds,
    const std::vector<uint32_t> &cpu_counts, const FuzzOptions &base,
    const std::function<void(uint64_t seed, uint32_t cpus,
                             const FuzzOutcome &)> &progress = nullptr);

/**
 * Snapshot differential: run a seed's scripts uninterrupted on the
 * fast core, then again with the run cut at snapshot_at cycles -- the
 * machine state is serialized through the snapshot container, restored
 * into a brand-new machine, and the run continued there. The property:
 * the interrupted run's concatenated monitor event stream and its
 * final machine state must be bit-identical to the uninterrupted
 * run's, and the coherence checker must stay clean across the restore
 * boundary. snapshot_at is clamped to [1, runCycles - 1].
 */
FuzzOutcome runSnapshotDifferential(uint64_t seed,
                                    const FuzzOptions &opt,
                                    Cycle snapshot_at);

/**
 * Sweep seeds [first_seed, first_seed + num_seeds) over the given CPU
 * counts through runSnapshotDifferential. Failures carry the detail
 * text directly (no prefix minimization: the repro is already just a
 * seed and a cut point).
 */
FuzzMatrixResult runSnapshotMatrix(
    uint64_t first_seed, uint32_t num_seeds,
    const std::vector<uint32_t> &cpu_counts, const FuzzOptions &base,
    Cycle snapshot_at,
    const std::function<void(uint64_t seed, uint32_t cpus,
                             const FuzzOutcome &)> &progress = nullptr);

/**
 * Aggregate result of a corrupt-input campaign (see
 * runCorruptCampaign). The contract under test: a mutated snapshot or
 * trace image either decodes cleanly or raises a typed
 * util::SimError -- it never crashes, never corrupts memory (the CI
 * job runs this under ASan+UBSan), and never escapes with an untyped
 * exception.
 */
struct CorruptCampaignResult
{
    uint32_t runs = 0;     ///< Mutated images decoded.
    uint32_t rejected = 0; ///< Raised a typed util::SimError.
    uint32_t accepted = 0; ///< Decoded cleanly despite the mutation.
    /** Inputs that escaped the typed-error contract. */
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * The pristine MPOSSNAP image the corrupt campaign mutates: a seeded
 * fuzz run cut midway, its Machine section packed exactly as the
 * warm-start cache packs snapshots. Exposed so the committed
 * corrupt-input corpus under tests/golden/corrupt/ can be
 * regenerated deterministically (mpos_fuzz --emit-corrupt-corpus).
 */
std::vector<uint8_t> buildCorruptBaseImage(uint64_t seed,
                                           const FuzzOptions &opt);

/**
 * Byte-mutation fuzz over the two untrusted binary decoders: the
 * MPOSSNAP snapshot container (through snapshot::parse *and* a full
 * Machine::restoreState of the Machine section) and the MPOSTRC1
 * trace reader (through trace::convertToJsonl). One pristine image of
 * each kind is built from a seeded fuzz run, then `mutations` seeded
 * variants -- bit flips, byte rewrites, truncations, spliced garbage
 * -- are decoded, alternating between the two kinds. For half of the
 * snapshot mutations the trailing FNV-1a is recomputed so the
 * mutation survives the outer checksum and reaches the section/state
 * decoders. tmp_dir holds the scratch trace files.
 */
CorruptCampaignResult runCorruptCampaign(
    uint64_t seed, uint32_t mutations, const FuzzOptions &base,
    const std::string &tmp_dir,
    const std::function<void(uint32_t done, uint32_t total)>
        &progress = nullptr);

/**
 * One fault-injection campaign run. The campaign's property is not
 * differential equivalence but *reproducibility of failure*: the same
 * seed must produce the same fault schedule, fire the same faults,
 * and -- when the run dies -- die with the same typed error and the
 * same structured diagnostic, byte for byte.
 */
struct FaultRunRecord
{
    uint64_t seed = 0;
    uint32_t numCpus = 0;
    std::string schedule;   ///< FaultPlan::describe() text.
    bool tripped = false;   ///< A util::SimError terminated the run.
    std::string errorCode;  ///< errCodeName of that error ("" if none).
    std::string diagnostic; ///< Error text (e.g. the watchdog dump).
    uint64_t faultsFired = 0;
    bool deterministic = true; ///< Re-run matched byte for byte.
};

/** Aggregate result of a fault-injection seed x CPU-count sweep. */
struct FaultCampaignResult
{
    uint32_t runs = 0;
    uint32_t tripped = 0;
    uint64_t faultsFired = 0;
    std::vector<FaultRunRecord> records;

    bool
    ok() const
    {
        for (const FaultRunRecord &r : records)
            if (!r.deterministic)
                return false;
        return true;
    }
};

/**
 * Run one fuzz script under a seeded FaultPlan with the watchdog
 * armed (budget = opt.runCycles): scripts may be truncated, lock
 * holds stretched, and a synthetic watchdog trip scheduled, all from
 * the plan. A SimError ends the run and is recorded, not rethrown.
 */
FaultRunRecord runFaulted(uint64_t seed, const FuzzOptions &opt);

/**
 * Sweep seeds over CPU counts, running every combination twice and
 * marking records whose two runs differ as non-deterministic.
 */
FaultCampaignResult runFaultCampaign(
    uint64_t first_seed, uint32_t num_seeds,
    const std::vector<uint32_t> &cpu_counts, const FuzzOptions &base,
    const std::function<void(const FaultRunRecord &)> &progress =
        nullptr);

} // namespace mpos::sim

#endif // MPOS_SIM_CHECK_FUZZ_HH
