#include "sim/check/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/check/checker.hh"
#include "sim/machine.hh"
#include "sim/phase.hh"
#include "sim/snapshot/container.hh"
#include "util/binio.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mpos::sim
{

namespace
{

/** Pids the generator draws from (validator rejects anything else). */
constexpr Pid maxFuzzPid = 8;

/** Device address base for uncached traffic (beyond memBytes). */
constexpr Addr deviceBase = 0x40000000;

/** One monitor event flattened for bit-exact comparison. */
struct Event
{
    enum Kind : uint8_t
    {
        Bus, Evict, InvalSharing, InvalRealloc, FlushPage, OsEnter,
        OsExit, CtxSwitch,
    };

    uint8_t kind = 0;
    Cycle cycle = 0;
    CpuId cpu = 0;
    Addr addr = 0;
    uint64_t a = 0; ///< op / kind / pid-from, per event kind
    uint64_t b = 0; ///< packed context / pid-to

    bool operator==(const Event &) const = default;
};

uint64_t
packCtx(const MonitorContext &ctx)
{
    return uint64_t(uint8_t(ctx.mode)) | (uint64_t(uint8_t(ctx.op)) << 8) |
           (uint64_t(ctx.routine) << 16) |
           (uint64_t(uint32_t(ctx.pid)) << 32);
}

std::string
describeEvent(const Event &e)
{
    std::ostringstream os;
    static const char *names[] = {"bus", "evict", "invalSharing",
                                  "invalRealloc", "flushPage", "osEnter",
                                  "osExit", "ctxSwitch"};
    os << names[e.kind] << " cycle=" << e.cycle << " cpu=" << e.cpu
       << " addr=0x" << std::hex << e.addr << std::dec << " a=" << e.a
       << " b=" << e.b;
    return os.str();
}

/** MonitorObserver that flattens the whole stream into a vector. */
class EventRecorder : public MonitorObserver
{
  public:
    std::vector<Event> events;

    void
    busTransaction(const BusRecord &r) override
    {
        events.push_back({Event::Bus, r.cycle, r.cpu, r.lineAddr,
                          uint64_t(uint8_t(r.op)) |
                              (uint64_t(uint8_t(r.cache)) << 8),
                          packCtx(r.ctx)});
    }

    void
    evict(CpuId cpu, CacheKind kind, Addr line,
          const MonitorContext &by) override
    {
        events.push_back({Event::Evict, 0, cpu, line,
                          uint64_t(uint8_t(kind)), packCtx(by)});
    }

    void
    invalSharing(CpuId cpu, CacheKind kind, Addr line) override
    {
        events.push_back({Event::InvalSharing, 0, cpu, line,
                          uint64_t(uint8_t(kind)), 0});
    }

    void
    invalPageRealloc(CpuId cpu, Addr line) override
    {
        events.push_back({Event::InvalRealloc, 0, cpu, line, 0, 0});
    }

    void
    flushPage(CpuId cpu, Addr page, uint32_t bytes) override
    {
        events.push_back({Event::FlushPage, 0, cpu, page, bytes, 0});
    }

    void
    osEnter(Cycle cycle, CpuId cpu, OsOp op) override
    {
        events.push_back({Event::OsEnter, cycle, cpu, 0,
                          uint64_t(uint8_t(op)), 0});
    }

    void
    osExit(Cycle cycle, CpuId cpu, OsOp op) override
    {
        events.push_back({Event::OsExit, cycle, cpu, 0,
                          uint64_t(uint8_t(op)), 0});
    }

    void
    contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to) override
    {
        events.push_back({Event::CtxSwitch, cycle, cpu, 0,
                          uint64_t(uint32_t(from)),
                          uint64_t(uint32_t(to))});
    }
};

/**
 * Executor interpreting the fuzz scripts: OS enter/exit markers drive
 * the monitor context, lock markers drive the sync transport, TLB
 * faults install the identity mapping, and a dry script idles with
 * Think items so time keeps advancing.
 */
class ScriptedExecutor : public Executor
{
  public:
    /**
     * Per-lock translation state for the non-TAS primitives: which
     * CPUs are mid-attempt (took a ticket / enqueued a queue node /
     * parked on the futex word) and, for MCS, the enqueue order the
     * releaser hands off along. This is the fuzz harness's stand-in
     * for the kernel's LockState; the snapshot differential carries
     * it across the cut the same way kstate.cc serializes the real
     * thing.
     */
    struct LockSim
    {
        std::vector<uint8_t> pending; ///< Per-CPU mid-attempt flag.
        std::vector<CpuId> queue;     ///< MCS waiters, enqueue order.
        uint32_t pendingCount = 0;
    };

    explicit ScriptedExecutor(Machine &machine,
                              FaultPlan *faults = nullptr)
        : m(machine), fp(faults),
          lsim(machine.sync().numLocks(),
               LockSim{std::vector<uint8_t>(machine.numCpus(), 0),
                       {}, 0})
    {
    }

    const std::vector<LockSim> &lockSimState() const { return lsim; }
    void
    setLockSimState(std::vector<LockSim> state)
    {
        lsim = std::move(state);
    }

    void
    refill(CpuId cpu) override
    {
        m.cpu(cpu).push(ScriptItem::think(64));
    }

    void
    marker(CpuId cpu, const ScriptItem &item) override
    {
        Cpu &c = m.cpu(cpu);
        switch (item.marker) {
          case MarkerOp::OsEnter:
            m.monitor().osEnter(m.now(), cpu, OsOp(item.addr));
            c.ctx.mode = ExecMode::Kernel;
            c.ctx.op = OsOp(item.addr);
            break;
          case MarkerOp::OsExit:
            m.monitor().osExit(m.now(), cpu, c.ctx.op);
            c.ctx.mode = ExecMode::User;
            c.ctx.op = OsOp::None;
            break;
          case MarkerOp::LockAcquire: {
            chargeAcquire(cpu, uint32_t(item.addr), item.arg2 != 0);
            if (fp && !item.arg2) {
                // Fault injection: stretch the hold of perturbed
                // locks (the extra cycles model a slow critical
                // section).
                if (const Cycle extra =
                        fp->holdExtra(uint32_t(item.addr)))
                    m.charge(cpu, extra, true);
            }
            break;
          }
          case MarkerOp::LockRelease: {
            chargeRelease(cpu, uint32_t(item.addr));
            break;
          }
          case MarkerOp::Resched:
            m.monitor().contextSwitch(m.now(), cpu, c.ctx.pid,
                                      Pid(item.addr));
            c.ctx.pid = Pid(item.addr);
            break;
          case MarkerOp::InvalICache:
            m.memory().flushICachesForPage(0);
            break;
          default:
            break;
        }
    }

    void
    fault(CpuId cpu, Addr vaddr, bool, bool) override
    {
        // Identity page table: vpage maps to the same-numbered ppage,
        // always writable. The faulting item retries and hits.
        Cpu &c = m.cpu(cpu);
        const Addr vpage = vaddr / m.config().pageBytes;
        c.tlb.insert(c.ctx.pid, vpage, vpage, true);
        m.charge(cpu, 20, false); // nominal refill cost
    }

    void pollEvents(CpuId, Cycle) override {}

    /** pollEvents is a no-op forever, so speculative windows never
     *  need to cut short for an external event. */
    Cycle nextEventAt(CpuId) const override { return ~Cycle(0); }

  private:
    /** Lower lock-id half plays the RCU-managed read-mostly tables. */
    bool
    rcuManagedFuzz(uint32_t id) const
    {
        return id < m.sync().numLocks() / 2;
    }

    void
    charge(CpuId cpu, uint32_t id, LockEvent ev, int peer = -1)
    {
        m.charge(cpu, m.sync().access(cpu, id, ev, peer), true);
    }

    /**
     * Translate a generic scripted acquire (fail = a losing poll)
     * into the active primitive's transport events. The translation
     * is a function of (policy, this CPU's pending flag, fail), so
     * every core replays the identical sequence.
     */
    void
    chargeAcquire(CpuId cpu, uint32_t id, bool fail)
    {
        LockSim &ls = lsim[id];
        switch (m.config().lockPolicy) {
          case LockPolicy::Ticket:
            if (!ls.pending[cpu]) {
                charge(cpu, id, LockEvent::TicketTake);
                if (fail) {
                    ls.pending[cpu] = 1;
                    ++ls.pendingCount;
                }
            } else {
                charge(cpu, id, LockEvent::TicketPoll);
                if (!fail) {
                    ls.pending[cpu] = 0;
                    --ls.pendingCount;
                }
            }
            break;
          case LockPolicy::Mcs:
            if (!ls.pending[cpu]) {
                if (fail) {
                    charge(cpu, id, LockEvent::McsEnqueue);
                    ls.pending[cpu] = 1;
                    ++ls.pendingCount;
                    ls.queue.push_back(cpu);
                } else {
                    charge(cpu, id, LockEvent::McsSwap);
                }
            } else {
                charge(cpu, id, LockEvent::McsLocalPoll);
                if (!fail) {
                    ls.pending[cpu] = 0;
                    --ls.pendingCount;
                    for (auto it = ls.queue.begin();
                         it != ls.queue.end(); ++it) {
                        if (*it == cpu) {
                            ls.queue.erase(it);
                            break;
                        }
                    }
                }
            }
            break;
          case LockPolicy::Futex:
            if (fail) {
                charge(cpu, id, LockEvent::FutexWait);
                if (!ls.pending[cpu]) {
                    ls.pending[cpu] = 1;
                    ++ls.pendingCount;
                }
            } else {
                charge(cpu, id, LockEvent::FutexAcquire);
                if (ls.pending[cpu]) {
                    ls.pending[cpu] = 0;
                    --ls.pendingCount;
                }
            }
            break;
          case LockPolicy::Rcu:
            if (rcuManagedFuzz(id)) {
                // Read path: readers never spin, so a scripted
                // losing poll melts away; entry is free of bus ops
                // but still flows through the transport counters.
                if (!fail)
                    charge(cpu, id, LockEvent::RcuReadEnter);
            } else {
                charge(cpu, id,
                       fail ? LockEvent::AcquireFail
                            : LockEvent::AcquireSuccess);
            }
            break;
          default:
            charge(cpu, id,
                   fail ? LockEvent::AcquireFail
                        : LockEvent::AcquireSuccess);
        }
    }

    void
    chargeRelease(CpuId cpu, uint32_t id)
    {
        LockSim &ls = lsim[id];
        switch (m.config().lockPolicy) {
          case LockPolicy::Ticket:
            charge(cpu, id, LockEvent::TicketRelease);
            break;
          case LockPolicy::Mcs:
            if (!ls.queue.empty())
                charge(cpu, id, LockEvent::McsHandoff,
                       int(ls.queue.front()));
            else
                charge(cpu, id, LockEvent::McsReleaseFree);
            break;
          case LockPolicy::Futex:
            charge(cpu, id,
                   ls.pendingCount ? LockEvent::FutexWake
                                   : LockEvent::Release);
            break;
          case LockPolicy::Rcu:
            if (rcuManagedFuzz(id)) {
                charge(cpu, id, LockEvent::RcuReadExit);
            } else {
                charge(cpu, id, LockEvent::Release);
                charge(cpu, id, LockEvent::RcuSync);
            }
            break;
          default:
            charge(cpu, id, LockEvent::Release);
        }
    }

    Machine &m;
    FaultPlan *fp; ///< Null outside fault-injection campaigns.
    std::vector<LockSim> lsim; ///< Per-lock translation state.
};

/** Final machine state flattened for bit-exact comparison. */
struct StateSnapshot
{
    Cycle now = 0;
    uint64_t busTx = 0;
    std::vector<uint64_t> perCpu;
    /** Per (pool line, cpu): coh state | L1 | L2 | I-cache bits. */
    std::vector<uint8_t> lines;

    bool operator==(const StateSnapshot &) const = default;
};

StateSnapshot
capture(const Machine &m, const std::vector<Addr> &pool)
{
    StateSnapshot s;
    s.now = m.now();
    s.busTx = m.memory().busTransactions();
    for (CpuId c = 0; c < m.numCpus(); ++c) {
        const Cpu &cpu = m.cpu(c);
        s.perCpu.push_back(cpu.busyUntil);
        for (unsigned mode = 0; mode < 3; ++mode) {
            s.perCpu.push_back(cpu.account.total[mode]);
            s.perCpu.push_back(cpu.account.stall[mode]);
        }
        s.perCpu.push_back(cpu.tlb.hits);
        s.perCpu.push_back(cpu.tlb.misses);
        s.perCpu.push_back(m.sync().stallCycles(c));
    }
    for (Addr line : pool) {
        for (CpuId c = 0; c < m.numCpus(); ++c) {
            const CpuCaches &h = m.memory().caches(c);
            s.lines.push_back(
                uint8_t(uint8_t(h.getState(line)) |
                        (uint8_t(h.l1d.contains(line)) << 2) |
                        (uint8_t(h.l2d.contains(line)) << 3) |
                        (uint8_t(h.icache.contains(line)) << 4)));
        }
    }
    return s;
}

std::vector<Addr>
buildPool(util::Rng &rng, const FuzzOptions &opt,
          const MachineConfig &cfg)
{
    std::vector<Addr> pool;
    pool.reserve(opt.poolLines);
    const uint64_t lines = cfg.memBytes / cfg.lineBytes;
    for (uint32_t i = 0; i < opt.poolLines; ++i)
        pool.push_back(rng.below(lines) * cfg.lineBytes);
    return pool;
}

/** The page-table oracle for the identity mapping the fuzzer uses. */
const char *
identityValidator(Pid pid, Addr vpage, Addr ppage, bool writable)
{
    if (pid < 0 || pid >= maxFuzzPid)
        return "pid outside the fuzz range";
    if (ppage != vpage)
        return "not the identity mapping";
    if (!writable)
        return "identity mappings are always writable";
    return nullptr;
}

} // namespace

MachineConfig
FuzzOptions::machineConfig() const
{
    MachineConfig cfg;
    cfg.numCpus = numCpus;
    cfg.protocol = protocol;
    cfg.lockPolicy = lockPolicy;
    cfg.icacheBytes = 4096;
    cfg.l1dBytes = 2048;
    cfg.l2dBytes = 4096;
    cfg.memBytes = 1ULL * 1024 * 1024;
    cfg.tlbEntries = 16;
    // Bus queueing is exercised in both serial cores; a parallel
    // sweep instead levels the field, since speculative windows
    // require an inert bus (the occupancy queue is the one shared
    // write they would race on) and the runs must stay comparable.
    cfg.busOccupancy = simThreads > 1 ? 0 : 2;
    cfg.check = true;
    return cfg;
}

std::vector<std::vector<ScriptItem>>
buildFuzzScripts(uint64_t seed, const FuzzOptions &opt)
{
    const MachineConfig cfg = opt.machineConfig();
    util::Rng rng(seed ^ 0xf02277a5f9a3e1cdULL);
    const std::vector<Addr> pool = buildPool(rng, opt, cfg);
    const uint64_t codeLines = cfg.memBytes / cfg.lineBytes / 2;

    std::vector<std::vector<ScriptItem>> scripts(opt.numCpus);
    for (uint32_t c = 0; c < opt.numCpus; ++c) {
        std::vector<ScriptItem> &s = scripts[c];
        s.reserve(opt.scriptLen);
        bool inOs = false;
        std::vector<uint32_t> held;
        while (s.size() < opt.scriptLen) {
            const uint64_t r = rng.below(100);
            if (r < 45) {
                // Shared-pool data reference; some through the TLB.
                const Addr a =
                    pool[rng.below(pool.size())] + rng.below(4) * 4;
                const bool store = rng.chance(0.4);
                const AddrSpace sp = rng.chance(0.3)
                                         ? AddrSpace::Virtual
                                         : AddrSpace::Physical;
                s.push_back(store ? ScriptItem::store(a, sp)
                                  : ScriptItem::load(a, sp));
            } else if (r < 60) {
                // Instruction fetch; 1 in 4 from the data pool so
                // fetches hit dirty data copies and downgrade them.
                const Addr line =
                    rng.chance(0.25)
                        ? pool[rng.below(pool.size())]
                        : (codeLines + rng.below(codeLines)) *
                              cfg.lineBytes;
                s.push_back(ScriptItem::ifetch(line));
            } else if (r < 68) {
                s.push_back(ScriptItem::think(rng.range(1, 30)));
            } else if (r < 74) {
                // Lock acquire: a few failed polls, then success.
                const uint32_t id = uint32_t(rng.below(opt.numLocks));
                const uint32_t polls = uint32_t(rng.below(3));
                for (uint32_t p = 0; p < polls; ++p)
                    s.push_back(
                        ScriptItem::mark(MarkerOp::LockAcquire, id, 1));
                s.push_back(
                    ScriptItem::mark(MarkerOp::LockAcquire, id, 0));
                held.push_back(id);
            } else if (r < 78) {
                if (held.empty())
                    continue;
                s.push_back(ScriptItem::mark(MarkerOp::LockRelease,
                                             held.back()));
                held.pop_back();
            } else if (r < 86) {
                // OS enter/exit, strictly alternating per CPU.
                if (inOs) {
                    s.push_back(ScriptItem::mark(MarkerOp::OsExit));
                } else {
                    const OsOp op =
                        OsOp(rng.range(uint64_t(OsOp::UtlbFault),
                                       uint64_t(OsOp::Interrupt)));
                    s.push_back(ScriptItem::mark(MarkerOp::OsEnter,
                                                 uint64_t(op)));
                }
                inOs = !inOs;
            } else if (r < 89) {
                const Addr a = deviceBase + rng.below(64) * 8;
                s.push_back(rng.chance(0.5)
                                ? ScriptItem::uncachedLoad(a)
                                : ScriptItem::uncachedStore(a));
            } else if (r < 92) {
                // Cache-bypassing block op on the shared pool.
                const Addr a = pool[rng.below(pool.size())];
                const bool store = rng.chance(0.5);
                s.push_back({store ? ItemKind::BypassStore
                                   : ItemKind::BypassLoad,
                             AddrSpace::Physical, MarkerOp::PathDone, a,
                             0});
            } else if (r < 94) {
                s.push_back(ScriptItem::mark(
                    MarkerOp::Resched, rng.below(uint64_t(maxFuzzPid))));
            } else if (r < 95) {
                s.push_back(ScriptItem::mark(MarkerOp::InvalICache));
            } else {
                // Prefetched reference: bus-visible, no CPU stall.
                const Addr a = pool[rng.below(pool.size())];
                s.push_back({rng.chance(0.5) ? ItemKind::PrefetchStore
                                             : ItemKind::PrefetchLoad,
                             AddrSpace::Physical, MarkerOp::PathDone, a,
                             0});
            }
        }
    }
    return scripts;
}

namespace
{

/** Which core one fuzz run exercises. */
enum class RunMode { Fast, Slow, Parallel };

/** One machine run; fills events/state/violations for comparison. */
void
runOne(uint64_t seed, const FuzzOptions &opt, uint32_t prefix_len,
       RunMode mode, std::vector<Event> &events, StateSnapshot &state,
       std::vector<std::string> &violations, uint64_t &checks)
{
    MachineConfig cfg = opt.machineConfig();
    cfg.slowSim = mode == RunMode::Slow;
    if (mode == RunMode::Parallel) {
        // A checker observes mid-window state and forces the serial
        // fallback, so the parallel run drops it; the fast and slow
        // runs keep theirs, so the same scripts are still invariant-
        // checked in full.
        cfg.check = false;
        cfg.simThreads = opt.simThreads;
    }

    std::vector<std::vector<ScriptItem>> scripts =
        buildFuzzScripts(seed, opt);
    if (prefix_len > 0) {
        for (auto &s : scripts)
            if (s.size() > prefix_len)
                s.resize(prefix_len);
    }

    // The pool is the generator's first draw; rebuild it the same way
    // for the state snapshot.
    util::Rng rng(seed ^ 0xf02277a5f9a3e1cdULL);
    const std::vector<Addr> pool = buildPool(rng, opt, cfg);

    Machine m(cfg, opt.numLocks);
    // Null only in parallel mode (unless MPOS_CHECK forces it back,
    // which also forces the serial fallback -- still a valid run).
    Checker *chk = m.checker();
    if (chk) {
        chk->setAbortOnViolation(false);
        chk->setMappingValidator(identityValidator);
    }

    ScriptedExecutor exec(m);
    m.setExecutor(&exec);

    EventRecorder rec;
    m.monitor().attach(&rec);

    for (CpuId c = 0; c < m.numCpus(); ++c) {
        Cpu &cpu = m.cpu(c);
        cpu.ctx.mode = ExecMode::User;
        cpu.ctx.op = OsOp::None;
        cpu.ctx.pid = Pid(c % maxFuzzPid);
        cpu.pushSeq(scripts[c]);
    }

    // The same phase driver the experiment harness uses (no deadline
    // here), so fuzzed runs and measured runs slice identically.
    runPhase(m, opt.runCycles);
    if (chk) {
        chk->checkAll(m);
        violations = chk->violations();
        checks = chk->stats().total();
    }

    events = std::move(rec.events);
    state = capture(m, pool);
}

/**
 * Common per-machine setup for the snapshot differential: checker in
 * collect mode with the identity oracle, scripted executor, recorder.
 * Wiring only -- none of this is snapshot state.
 */
struct FuzzRig
{
    Machine m;
    ScriptedExecutor exec;
    EventRecorder rec;

    FuzzRig(const MachineConfig &cfg, const FuzzOptions &opt)
        : m(cfg, opt.numLocks), exec(m)
    {
        if (Checker *chk = m.checker()) {
            chk->setAbortOnViolation(false);
            chk->setMappingValidator(identityValidator);
        }
        m.setExecutor(&exec);
        m.monitor().attach(&rec);
    }

    void
    finish(std::vector<std::string> &violations, uint64_t &checks)
    {
        if (Checker *chk = m.checker()) {
            chk->checkAll(m);
            const auto v = chk->violations();
            violations.insert(violations.end(), v.begin(), v.end());
            checks += chk->stats().total();
        }
    }
};

} // namespace

FuzzOutcome
runSnapshotDifferential(uint64_t seed, const FuzzOptions &opt,
                        Cycle snapshot_at)
{
    const MachineConfig cfg = opt.machineConfig();
    const Cycle cut = std::min(std::max<Cycle>(snapshot_at, 1),
                               opt.runCycles - 1);

    std::vector<std::vector<ScriptItem>> scripts =
        buildFuzzScripts(seed, opt);
    util::Rng rng(seed ^ 0xf02277a5f9a3e1cdULL);
    const std::vector<Addr> pool = buildPool(rng, opt, cfg);

    FuzzOutcome out;

    // Uninterrupted reference run.
    std::vector<Event> refEv;
    StateSnapshot refState;
    {
        FuzzRig rig(cfg, opt);
        for (CpuId c = 0; c < rig.m.numCpus(); ++c) {
            Cpu &cpu = rig.m.cpu(c);
            cpu.ctx.mode = ExecMode::User;
            cpu.ctx.op = OsOp::None;
            cpu.ctx.pid = Pid(c % maxFuzzPid);
            cpu.pushSeq(scripts[c]);
        }
        runPhase(rig.m, opt.runCycles);
        rig.finish(out.violations, out.checksPerformed);
        refEv = std::move(rig.rec.events);
        refState = capture(rig.m, pool);
    }

    // Interrupted run: cut at `cut`, serialize through the container,
    // restore into a brand-new machine, continue there.
    std::vector<Event> ev;
    StateSnapshot endState;
    {
        std::vector<uint8_t> image;
        // The executor's lock-translation state is the harness's
        // stand-in for the kernel's LockState (which kstate.cc
        // serializes for real runs); carry it across the cut so the
        // restored half translates mid-attempt polls identically.
        std::vector<ScriptedExecutor::LockSim> cutLockSim;
        {
            FuzzRig rig(cfg, opt);
            for (CpuId c = 0; c < rig.m.numCpus(); ++c) {
                Cpu &cpu = rig.m.cpu(c);
                cpu.ctx.mode = ExecMode::User;
                cpu.ctx.op = OsOp::None;
                cpu.ctx.pid = Pid(c % maxFuzzPid);
                cpu.pushSeq(scripts[c]);
            }
            runPhase(rig.m, cut);
            rig.finish(out.violations, out.checksPerformed);
            util::ByteWriter w;
            rig.m.saveState(w);
            std::vector<std::pair<snapshot::Section,
                                  std::vector<uint8_t>>> sections;
            sections.emplace_back(snapshot::Section::Machine, w.take());
            image = snapshot::pack(seed, std::move(sections));
            ev = std::move(rig.rec.events);
            cutLockSim = rig.exec.lockSimState();
        }
        {
            // The restored machine gets fresh wiring (executor,
            // recorder, checker); per-CPU contexts and script queues
            // come from the snapshot, so no re-initialization here.
            FuzzRig rig(cfg, opt);
            const auto parsed = snapshot::parse(image);
            util::ByteReader r(
                parsed.section(snapshot::Section::Machine));
            rig.m.restoreState(r);
            rig.exec.setLockSimState(std::move(cutLockSim));
            runPhase(rig.m, opt.runCycles - cut);
            rig.finish(out.violations, out.checksPerformed);
            ev.insert(ev.end(), rig.rec.events.begin(),
                      rig.rec.events.end());
            endState = capture(rig.m, pool);
        }
    }

    out.eventsCompared = refEv.size();
    std::ostringstream detail;
    if (!out.violations.empty()) {
        out.ok = false;
        detail << out.violations.size() << " invariant violation(s), "
               << "first: " << out.violations.front();
    } else if (ev != refEv) {
        out.ok = false;
        const size_t n = std::min(ev.size(), refEv.size());
        size_t i = 0;
        while (i < n && ev[i] == refEv[i])
            ++i;
        detail << "snapshot-at-" << cut
               << " event stream diverges at index " << i
               << " (snapshotted " << ev.size() << " events, reference "
               << refEv.size() << "): snapshotted="
               << (i < ev.size() ? describeEvent(ev[i])
                                 : std::string("<end>"))
               << " reference="
               << (i < refEv.size() ? describeEvent(refEv[i])
                                    : std::string("<end>"));
    } else if (!(endState == refState)) {
        out.ok = false;
        detail << "final machine state differs after a snapshot at "
               << cut << " cycles (identical event streams)";
    }
    out.detail = detail.str();
    return out;
}

FuzzMatrixResult
runSnapshotMatrix(uint64_t first_seed, uint32_t num_seeds,
                  const std::vector<uint32_t> &cpu_counts,
                  const FuzzOptions &base, Cycle snapshot_at,
                  const std::function<void(uint64_t, uint32_t,
                                           const FuzzOutcome &)>
                      &progress)
{
    FuzzMatrixResult result;
    for (uint32_t cpus : cpu_counts) {
        FuzzOptions opt = base;
        opt.numCpus = cpus;
        for (uint64_t s = first_seed; s < first_seed + num_seeds;
             ++s) {
            const FuzzOutcome out =
                runSnapshotDifferential(s, opt, snapshot_at);
            ++result.runs;
            result.eventsCompared += out.eventsCompared;
            result.checksPerformed += out.checksPerformed;
            if (!out.ok) {
                FuzzFailure f;
                f.seed = s;
                f.numCpus = cpus;
                f.minimalPrefix = 0; // repro = seed + cut point
                f.detail = out.detail;
                result.failures.push_back(std::move(f));
            }
            if (progress)
                progress(s, cpus, out);
        }
    }
    return result;
}

FuzzOutcome
runDifferential(uint64_t seed, const FuzzOptions &opt,
                uint32_t prefix_len)
{
    std::vector<Event> fastEv, slowEv, parEv;
    StateSnapshot fastState, slowState, parState;
    std::vector<std::string> fastViol, slowViol, parViol;
    uint64_t fastChecks = 0, slowChecks = 0, parChecks = 0;

    runOne(seed, opt, prefix_len, RunMode::Fast, fastEv, fastState,
           fastViol, fastChecks);
    runOne(seed, opt, prefix_len, RunMode::Slow, slowEv, slowState,
           slowViol, slowChecks);
    const bool par = opt.simThreads > 1;
    if (par)
        runOne(seed, opt, prefix_len, RunMode::Parallel, parEv,
               parState, parViol, parChecks);

    FuzzOutcome out;
    out.eventsCompared = fastEv.size() + (par ? parEv.size() : 0);
    out.checksPerformed = fastChecks + slowChecks + parChecks;
    out.violations = fastViol;
    out.violations.insert(out.violations.end(), slowViol.begin(),
                          slowViol.end());
    out.violations.insert(out.violations.end(), parViol.begin(),
                          parViol.end());

    std::ostringstream detail;
    if (!out.violations.empty()) {
        out.ok = false;
        detail << out.violations.size() << " invariant violation(s), "
               << "first: " << out.violations.front();
    } else if (fastEv != slowEv) {
        out.ok = false;
        const size_t n = std::min(fastEv.size(), slowEv.size());
        size_t i = 0;
        while (i < n && fastEv[i] == slowEv[i])
            ++i;
        detail << "event streams diverge at index " << i << " (fast "
               << fastEv.size() << " events, slow " << slowEv.size()
               << "): fast="
               << (i < fastEv.size() ? describeEvent(fastEv[i])
                                     : std::string("<end>"))
               << " slow="
               << (i < slowEv.size() ? describeEvent(slowEv[i])
                                     : std::string("<end>"));
    } else if (!(fastState == slowState)) {
        out.ok = false;
        detail << "final machine state differs between fast and "
                  "reference runs (identical event streams)";
    } else if (par && parEv != fastEv) {
        out.ok = false;
        const size_t n = std::min(parEv.size(), fastEv.size());
        size_t i = 0;
        while (i < n && parEv[i] == fastEv[i])
            ++i;
        detail << "parallel-core event stream diverges from fast at "
               << "index " << i << " (parallel " << parEv.size()
               << " events, fast " << fastEv.size() << "): parallel="
               << (i < parEv.size() ? describeEvent(parEv[i])
                                    : std::string("<end>"))
               << " fast="
               << (i < fastEv.size() ? describeEvent(fastEv[i])
                                     : std::string("<end>"));
    } else if (par && !(parState == fastState)) {
        out.ok = false;
        detail << "final machine state differs between parallel and "
                  "fast runs (identical event streams)";
    }
    out.detail = detail.str();
    return out;
}

uint64_t
minimizeFailingPrefix(uint64_t n,
                      const std::function<bool(uint64_t)> &fails)
{
    uint64_t lo = 1, hi = n;
    while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (fails(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

FaultRunRecord
runFaulted(uint64_t seed, const FuzzOptions &opt)
{
    MachineConfig cfg = opt.machineConfig();
    // The campaign exercises the failure paths, not the differential
    // property; the checkers stay out of the way (a forced MPOS_CHECK
    // still works, see below).
    cfg.check = false;
    cfg.faultSeed = seed ? seed : 1;
    cfg.faultHorizon = opt.runCycles;
    cfg.watchdogCycles = opt.runCycles;

    FaultRunRecord rec;
    rec.seed = cfg.faultSeed;
    rec.numCpus = opt.numCpus;

    std::vector<std::vector<ScriptItem>> scripts =
        buildFuzzScripts(seed, opt);

    Machine m(cfg, opt.numLocks);
    FaultPlan *fp = m.faults();
    rec.schedule = fp->describe();

    if (Checker *chk = m.checker()) {
        chk->setAbortOnViolation(false);
        chk->setMappingValidator(identityValidator);
    }

    ScriptedExecutor exec(m, fp);
    m.setExecutor(&exec);

    for (CpuId c = 0; c < m.numCpus(); ++c) {
        Cpu &cpu = m.cpu(c);
        cpu.ctx.mode = ExecMode::User;
        cpu.ctx.op = OsOp::None;
        cpu.ctx.pid = Pid(c % maxFuzzPid);
        std::vector<ScriptItem> &s = scripts[c];
        // Scripted truncation: only ever drops a suffix, so no
        // release-without-acquire can appear.
        const auto keep = size_t(fp->truncatedLen(s.size()));
        if (keep < s.size())
            s.resize(keep);
        cpu.pushSeq(s);
    }

    try {
        runPhase(m, opt.runCycles);
    } catch (const util::SimError &e) {
        rec.tripped = true;
        rec.errorCode = e.codeName();
        rec.diagnostic = e.what();
    }
    rec.faultsFired = fp->faultsFired();
    return rec;
}

FaultCampaignResult
runFaultCampaign(uint64_t first_seed, uint32_t num_seeds,
                 const std::vector<uint32_t> &cpu_counts,
                 const FuzzOptions &base,
                 const std::function<void(const FaultRunRecord &)>
                     &progress)
{
    FaultCampaignResult result;
    for (uint32_t cpus : cpu_counts) {
        FuzzOptions opt = base;
        opt.numCpus = cpus;
        for (uint64_t s = first_seed; s < first_seed + num_seeds;
             ++s) {
            FaultRunRecord a = runFaulted(s, opt);
            const FaultRunRecord b = runFaulted(s, opt);
            a.deterministic = a.schedule == b.schedule &&
                              a.tripped == b.tripped &&
                              a.errorCode == b.errorCode &&
                              a.diagnostic == b.diagnostic &&
                              a.faultsFired == b.faultsFired;
            ++result.runs;
            result.tripped += a.tripped ? 1 : 0;
            result.faultsFired += a.faultsFired;
            if (progress)
                progress(a);
            result.records.push_back(std::move(a));
        }
    }
    return result;
}

FuzzMatrixResult
runFuzzMatrix(uint64_t first_seed, uint32_t num_seeds,
              const std::vector<uint32_t> &cpu_counts,
              const FuzzOptions &base,
              const std::function<void(uint64_t, uint32_t,
                                       const FuzzOutcome &)> &progress)
{
    FuzzMatrixResult result;
    for (uint32_t cpus : cpu_counts) {
        FuzzOptions opt = base;
        opt.numCpus = cpus;
        for (uint64_t s = first_seed; s < first_seed + num_seeds; ++s) {
            const FuzzOutcome out = runDifferential(s, opt);
            ++result.runs;
            result.eventsCompared += out.eventsCompared;
            result.checksPerformed += out.checksPerformed;
            if (!out.ok) {
                FuzzFailure f;
                f.seed = s;
                f.numCpus = cpus;
                f.minimalPrefix = uint32_t(minimizeFailingPrefix(
                    opt.scriptLen, [&](uint64_t len) {
                        return !runDifferential(s, opt, uint32_t(len))
                                    .ok;
                    }));
                f.detail =
                    runDifferential(s, opt, f.minimalPrefix).detail;
                result.failures.push_back(std::move(f));
            }
            if (progress)
                progress(s, cpus, out);
        }
    }
    return result;
}

namespace
{

/**
 * 1-4 seeded edits: bit flip, byte rewrite, truncation, or spliced
 * garbage. Truncation may leave the image empty; decoders must cope.
 */
void
mutateImage(util::Rng &rng, std::vector<uint8_t> &img)
{
    const uint32_t edits = 1 + uint32_t(rng.below(4));
    for (uint32_t e = 0; e < edits && !img.empty(); ++e) {
        const size_t at = size_t(rng.below(img.size()));
        switch (rng.below(4)) {
        case 0:
            img[at] ^= uint8_t(1u << rng.below(8));
            break;
        case 1:
            img[at] = uint8_t(rng.next());
            break;
        case 2:
            img.resize(at);
            break;
        default: {
            const size_t n = 1 + size_t(rng.below(15));
            std::vector<uint8_t> junk(n);
            for (uint8_t &b : junk)
                b = uint8_t(rng.next());
            img.insert(img.begin() + ptrdiff_t(at), junk.begin(),
                       junk.end());
            break;
        }
        }
    }
}

/**
 * Recompute the container's trailing FNV-1a so the mutation survives
 * the outer checksum and reaches the section and state decoders.
 */
void
fixupTrailingChecksum(std::vector<uint8_t> &img)
{
    if (img.size() < 8)
        return;
    const uint64_t sum =
        snapshot::fnv1a(img.data(), img.size() - 8);
    for (unsigned i = 0; i < 8; ++i)
        img[img.size() - 8 + i] = uint8_t(sum >> (8 * i));
}

bool
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    return (std::fclose(f) == 0) && ok;
}

} // namespace

std::vector<uint8_t>
buildCorruptBaseImage(uint64_t seed, const FuzzOptions &opt)
{
    const MachineConfig cfg = opt.machineConfig();
    std::vector<std::vector<ScriptItem>> scripts =
        buildFuzzScripts(seed, opt);
    FuzzRig rig(cfg, opt);
    for (CpuId c = 0; c < rig.m.numCpus(); ++c) {
        Cpu &cpu = rig.m.cpu(c);
        cpu.ctx.mode = ExecMode::User;
        cpu.ctx.op = OsOp::None;
        cpu.ctx.pid = Pid(c % maxFuzzPid);
        cpu.pushSeq(scripts[c]);
    }
    runPhase(rig.m, opt.runCycles / 2);
    util::ByteWriter w;
    rig.m.saveState(w);
    std::vector<std::pair<snapshot::Section, std::vector<uint8_t>>>
        sections;
    sections.emplace_back(snapshot::Section::Machine, w.take());
    return snapshot::pack(seed, std::move(sections));
}

CorruptCampaignResult
runCorruptCampaign(uint64_t seed, uint32_t mutations,
                   const FuzzOptions &base, const std::string &tmp_dir,
                   const std::function<void(uint32_t, uint32_t)>
                       &progress)
{
    CorruptCampaignResult out;
    const FuzzOptions opt = base;
    const MachineConfig cfg = opt.machineConfig();

    const std::vector<uint8_t> snapBase =
        buildCorruptBaseImage(seed, opt);

    // Pristine binary trace: the same kind of run with the trace
    // exporter streaming to a file, symbol table included.
    const std::string traceBasePath = tmp_dir + "/corrupt-base.trc";
    std::vector<uint8_t> traceBase;
    {
        MachineConfig tcfg = cfg;
        tcfg.trace = true;
        tcfg.traceFile = traceBasePath;
        tcfg.traceRingEntries = 4096;
        std::vector<std::vector<ScriptItem>> scripts =
            buildFuzzScripts(seed ^ 1, opt);
        FuzzRig rig(tcfg, opt);
        for (CpuId c = 0; c < rig.m.numCpus(); ++c) {
            Cpu &cpu = rig.m.cpu(c);
            cpu.ctx.mode = ExecMode::User;
            cpu.ctx.op = OsOp::None;
            cpu.ctx.pid = Pid(c % maxFuzzPid);
            cpu.pushSeq(scripts[c]);
        }
        if (trace::Tracer *tr = rig.m.tracer())
            tr->setRoutineNames(
                {"idle", "fork", "exec", "page_fault", "sched"});
        runPhase(rig.m, opt.runCycles / 2);
        if (trace::Tracer *tr = rig.m.tracer())
            tr->finish();
        if (!snapshot::readFile(traceBasePath, traceBase) ||
            traceBase.empty())
            util::raise(util::ErrCode::BadConfig,
                        "corrupt campaign: cannot build the base "
                        "trace under %s", tmp_dir.c_str());
    }

    const std::string mutPath = tmp_dir + "/corrupt-mut.trc";
    const std::string outPath = tmp_dir + "/corrupt-mut.jsonl";
    for (uint32_t i = 0; i < mutations; ++i) {
        util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        const bool snap = (i % 2) == 0;
        std::vector<uint8_t> img = snap ? snapBase : traceBase;
        mutateImage(rng, img);
        if (snap && rng.below(2) == 0)
            fixupTrailingChecksum(img);
        ++out.runs;
        if (snap) {
            try {
                const snapshot::Parsed parsed = snapshot::parse(img);
                FuzzRig rig(cfg, opt);
                util::ByteReader r(
                    parsed.section(snapshot::Section::Machine));
                rig.m.restoreState(r);
                ++out.accepted;
            } catch (const util::SimError &) {
                ++out.rejected;
            } catch (const std::exception &e) {
                out.failures.push_back(
                    "snapshot mutation #" + std::to_string(i) +
                    " escaped the typed-error contract: " + e.what());
            } catch (...) {
                out.failures.push_back(
                    "snapshot mutation #" + std::to_string(i) +
                    " threw a non-standard exception");
            }
        } else {
            if (!writeBytes(mutPath, img)) {
                out.failures.push_back(
                    "trace mutation #" + std::to_string(i) +
                    ": cannot write scratch file " + mutPath);
                continue;
            }
            std::string err;
            try {
                if (trace::convertToJsonl(mutPath, outPath, &err))
                    ++out.accepted;
                else
                    ++out.rejected;
            } catch (const std::exception &e) {
                out.failures.push_back(
                    "trace mutation #" + std::to_string(i) +
                    " escaped the typed-error contract: " + e.what());
            } catch (...) {
                out.failures.push_back(
                    "trace mutation #" + std::to_string(i) +
                    " threw a non-standard exception");
            }
        }
        if (progress)
            progress(i + 1, mutations);
    }
    std::remove(traceBasePath.c_str());
    std::remove(mutPath.c_str());
    std::remove(outPath.c_str());
    return out;
}

} // namespace mpos::sim
