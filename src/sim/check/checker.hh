/**
 * @file
 * Runtime invariant checker for the simulated memory system.
 *
 * The paper's numbers are only as trustworthy as the coherence model
 * behind them: every miss class and sharing count assumes the snooping
 * write-invalidate protocol is implemented exactly. The checker
 * enforces, on every bus transaction and cache state change:
 *
 *  - SWMR: at most one Modified/Exclusive copy of a line machine-wide,
 *    and no other copy of any kind coexisting with it.
 *  - Protocol legality: no state a protocol cannot produce (Exclusive
 *    under MSI or MI, Shared under MI) ever appears in any L2.
 *  - Snoop-filter soundness: the per-line sharers bitmask is a
 *    superset of the true sharer set (a filter that under-reports
 *    would skip a required snoop and silently corrupt miss classes).
 *  - Tag/state consistency: a line's L2 coherence state is non-Invalid
 *    exactly when the packed L2 tag array holds it, and the inclusive
 *    L1 never keeps a line the L2 dropped.
 *  - TLB/page-table agreement: every TLB entry used for translation
 *    matches the OS page table (validator installed by the kernel
 *    layer; the sim layer knows no page-table format).
 *  - Monitor stream well-formedness: monotonic cycles, balanced OS
 *    entry/exit per CPU, valid CPU ids, line-aligned addresses.
 *    One producer artifact is allowed by contract: a resumed process
 *    replays its blocked OS path's trailing exit marker after the
 *    dispatcher already exited the OS, so a redundant osExit with op
 *    None while outside the OS is legal (consumers ignore it).
 *
 * The checker is compiled in but zero-cost when disabled: producers
 * hold a Checker pointer that is null unless MachineConfig::check (or
 * MPOS_CHECK) is set, so every hook is one predictable branch -- the
 * same fast-path discipline as the monitor's listening() test.
 *
 * On a violation the default is to abort with a full description
 * (util::panic); the fuzz harness switches to recording mode so a
 * failing seed can be minimized instead.
 */

#ifndef MPOS_SIM_CHECK_CHECKER_HH
#define MPOS_SIM_CHECK_CHECKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/monitor.hh"
#include "sim/tlb.hh"
#include "sim/types.hh"

namespace mpos::sim
{

class MemorySystem;
class Machine;

/** Always-on counters of work the checker performed. */
struct CheckStats
{
    uint64_t lineChecks = 0;    ///< Per-line coherence/filter sweeps.
    uint64_t busEvents = 0;     ///< Monitor bus records validated.
    uint64_t monitorEvents = 0; ///< OS/evict/inval events validated.
    uint64_t syncEvents = 0;    ///< Sync-transport events validated.
    uint64_t tlbChecks = 0;     ///< TLB entries checked vs page table.
    uint64_t fullSweeps = 0;    ///< Whole-machine checkAll() passes.
    uint64_t violations = 0;    ///< Invariant violations found.

    uint64_t
    total() const
    {
        return lineChecks + busEvents + monitorEvents + syncEvents +
               tlbChecks + fullSweeps;
    }
};

/** The invariant checker. One per Machine, owned by it. */
class Checker : public MonitorObserver
{
  public:
    /**
     * Page-table oracle: returns nullptr if the mapping agrees with
     * the OS page table, else a static description of the violation.
     * Installed by the layer that owns the page tables.
     */
    using MappingValidator = std::function<const char *(
        Pid pid, Addr vpage, Addr ppage, bool writable)>;

    explicit Checker(const MachineConfig &cfg);

    /** The memory system whose state the line checks sweep. */
    void attachMemory(const MemorySystem *m) { mem = m; }

    /// @name Hooks called by producers (only when enabled)
    /// @{
    /**
     * A bus transaction or coherence action settled the state of
     * line: verify SWMR, filter soundness and tag/state consistency
     * across every CPU for that line.
     */
    void onLineEvent(Addr line);

    /** One sync-transport lock event was accounted. */
    void onSyncEvent(CpuId cpu, uint32_t lock_id, uint32_t num_locks,
                     uint64_t cached_mask);

    /** A TLB entry was used for a successful translation. */
    void checkTlbEntry(CpuId cpu, const TlbEntry &e);
    /// @}

    void setMappingValidator(MappingValidator v)
    {
        validator = std::move(v);
    }
    bool hasMappingValidator() const { return bool(validator); }

    /**
     * Whole-machine sweep: every resident line's coherence state,
     * every cache's packed-tag/LRU integrity, every TLB entry.
     * Expensive; used at end of measured runs and by the fuzzer.
     */
    void checkAll(const Machine &m);

    /**
     * The machine was re-seeded from a snapshot: everything this
     * checker derived from the event stream so far (OS entry/exit
     * depth, cycle monotonicity watermarks) describes a history the
     * restored machine never lived. Reset it to the pre-first-event
     * state; the stateless sweeps keep validating the restored state
     * directly.
     */
    void onRestore();

    /// @name MonitorObserver (event-stream well-formedness)
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void evict(CpuId cpu, CacheKind kind, Addr line,
               const MonitorContext &by) override;
    void invalSharing(CpuId cpu, CacheKind kind, Addr line) override;
    void invalPageRealloc(CpuId cpu, Addr line) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    void osExit(Cycle cycle, CpuId cpu, OsOp op) override;
    void contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to) override;
    /// @}

    const CheckStats &stats() const { return stats_; }

    /**
     * When false, violations are recorded (retrievable through
     * violations()) instead of aborting. The fuzz harness uses this;
     * everything else wants the loud crash.
     */
    void setAbortOnViolation(bool a) { abortOnViolation = a; }
    const std::vector<std::string> &violations() const { return log; }

  private:
    /** Record or abort with a formatted violation description. */
    [[gnu::format(printf, 2, 3)]] void violation(const char *fmt, ...);

    /** Validate the context snapshot attached to a monitor event. */
    void checkContext(const MonitorContext &ctx);

    MachineConfig cfg;
    const MemorySystem *mem = nullptr;
    MappingValidator validator;
    CheckStats stats_;
    std::vector<std::string> log;
    bool abortOnViolation = true;

    /** log2(lineBytes), for line/index conversions. */
    uint32_t lineShift;

    // Monitor stream state.
    Cycle lastBusCycle = 0;
    /** Per CPU: -1 unknown (pre-first-event), 0 outside OS, 1 inside. */
    std::vector<int8_t> osDepth;
    /** Per CPU: cycle of the last OS enter/exit event. */
    std::vector<Cycle> lastOsCycle;
};

} // namespace mpos::sim

#endif // MPOS_SIM_CHECK_CHECKER_HH
