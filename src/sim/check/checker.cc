#include "sim/check/checker.hh"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>

#include "sim/machine.hh"
#include "sim/memsys.hh"
#include "util/logging.hh"

namespace mpos::sim
{

namespace
{

/** Cap on recorded violations in non-aborting mode: the first few
 *  are what a minimized repro needs; millions would just thrash. */
constexpr size_t maxRecordedViolations = 64;

} // namespace

Checker::Checker(const MachineConfig &config)
    : cfg(config),
      lineShift(uint32_t(std::countr_zero(cfg.lineBytes))),
      osDepth(cfg.numCpus, -1), lastOsCycle(cfg.numCpus, 0)
{
}

void
Checker::onRestore()
{
    lastBusCycle = 0;
    std::fill(osDepth.begin(), osDepth.end(), int8_t(-1));
    std::fill(lastOsCycle.begin(), lastOsCycle.end(), Cycle(0));
}

void
Checker::violation(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);

    ++stats_.violations;
    if (abortOnViolation)
        util::panic("invariant violation: %s", buf);
    if (log.size() < maxRecordedViolations)
        log.emplace_back(buf);
}

void
Checker::onLineEvent(Addr line)
{
    ++stats_.lineChecks;

    uint64_t trueMask = 0;
    uint32_t owners = 0; // CPUs holding the line Modified or Exclusive
    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        const CpuCaches &h = mem->caches(c);
        const Coh st = h.getState(line);
        const bool inL2 = h.l2d.contains(line);
        const bool inL1 = h.l1d.contains(line);

        if ((st == Coh::Exclusive && cfg.protocol != Protocol::Mesi) ||
            (st == Coh::Shared && cfg.protocol == Protocol::Mi)) {
            violation("protocol legality: cpu %u line %llx in state %u "
                      "which protocol %s cannot produce",
                      c, (unsigned long long)line, unsigned(st),
                      protocolName(cfg.protocol));
        }
        if ((st != Coh::Invalid) != inL2) {
            violation("tag/state mismatch: cpu %u line %llx state %u "
                      "but L2 tag array %s it",
                      c, (unsigned long long)line, unsigned(st),
                      inL2 ? "holds" : "lacks");
        }
        if (inL1 && !inL2) {
            violation("inclusion: cpu %u line %llx resident in L1 but "
                      "not in the inclusive L2",
                      c, (unsigned long long)line);
        }
        if (st != Coh::Invalid)
            trueMask |= uint64_t(1) << c;
        if (st == Coh::Modified || st == Coh::Exclusive)
            ++owners;
    }

    if (owners > 1) {
        violation("SWMR: line %llx owned (M/E) by %u CPUs at once",
                  (unsigned long long)line, owners);
    } else if (owners == 1 && std::popcount(trueMask) > 1) {
        violation("SWMR: line %llx has an exclusive/dirty owner but "
                  "%d copies machine-wide",
                  (unsigned long long)line, std::popcount(trueMask));
    }

    const uint64_t filter = mem->sharersMask(line);
    if ((filter & trueMask) != trueMask) {
        violation("snoop filter unsound: line %llx filter mask %llx "
                  "misses true sharers %llx",
                  (unsigned long long)line,
                  (unsigned long long)filter,
                  (unsigned long long)trueMask);
    }
}

void
Checker::onSyncEvent(CpuId cpu, uint32_t lock_id, uint32_t num_locks,
                     uint64_t cached_mask)
{
    ++stats_.syncEvents;
    if (cpu >= cfg.numCpus)
        violation("sync event from invalid cpu %u", cpu);
    if (lock_id >= num_locks)
        violation("sync event for lock %u of %u", lock_id, num_locks);
    if (cfg.numCpus < 64 && (cached_mask >> cfg.numCpus) != 0) {
        violation("lock %u cached-at mask %llx names a CPU beyond %u",
                  lock_id, (unsigned long long)cached_mask,
                  cfg.numCpus);
    }
}

void
Checker::checkTlbEntry(CpuId cpu, const TlbEntry &e)
{
    ++stats_.tlbChecks;
    if (!e.valid) {
        violation("cpu %u translated through an invalid TLB entry",
                  cpu);
        return;
    }
    if ((e.ppage << std::countr_zero(uint64_t(cfg.pageBytes))) >=
        cfg.memBytes) {
        violation("cpu %u TLB entry maps vpage %llx to ppage %llx "
                  "outside memory",
                  cpu, (unsigned long long)e.vpage,
                  (unsigned long long)e.ppage);
    }
    if (validator) {
        const char *err =
            validator(e.pid, e.vpage, e.ppage, e.writable);
        if (err) {
            violation("TLB/page-table disagreement: cpu %u pid %d "
                      "vpage %llx -> ppage %llx%s: %s",
                      cpu, e.pid, (unsigned long long)e.vpage,
                      (unsigned long long)e.ppage,
                      e.writable ? " (writable)" : "", err);
        }
    }
}

void
Checker::checkContext(const MonitorContext &ctx)
{
    if (unsigned(ctx.mode) > unsigned(ExecMode::Idle))
        violation("monitor context with invalid mode %u",
                  unsigned(ctx.mode));
    if (unsigned(ctx.op) >= numOsOps)
        violation("monitor context with invalid OS op %u",
                  unsigned(ctx.op));
    if (ctx.pid < invalidPid)
        violation("monitor context with pid %d", ctx.pid);
}

void
Checker::busTransaction(const BusRecord &rec)
{
    ++stats_.busEvents;
    if (rec.cycle < lastBusCycle) {
        violation("bus record cycle %llu after cycle %llu",
                  (unsigned long long)rec.cycle,
                  (unsigned long long)lastBusCycle);
    }
    lastBusCycle = rec.cycle;
    if (rec.cpu >= cfg.numCpus)
        violation("bus record from invalid cpu %u", rec.cpu);
    if (rec.lineAddr & (cfg.lineBytes - 1)) {
        violation("bus record address %llx not line-aligned",
                  (unsigned long long)rec.lineAddr);
    }
    const bool cached = rec.op == BusOp::Read ||
                        rec.op == BusOp::ReadEx ||
                        rec.op == BusOp::Upgrade ||
                        rec.op == BusOp::Writeback;
    if (cached && rec.lineAddr >= cfg.memBytes) {
        violation("cached bus op on line %llx outside the %llu-byte "
                  "memory",
                  (unsigned long long)rec.lineAddr,
                  (unsigned long long)cfg.memBytes);
    }
    checkContext(rec.ctx);
}

void
Checker::evict(CpuId cpu, CacheKind, Addr line, const MonitorContext &by)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus)
        violation("evict event on invalid cpu %u", cpu);
    if (line & (cfg.lineBytes - 1))
        violation("evict event for unaligned line %llx",
                  (unsigned long long)line);
    checkContext(by);
}

void
Checker::invalSharing(CpuId cpu, CacheKind, Addr line)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus)
        violation("invalidation event on invalid cpu %u", cpu);
    if (line & (cfg.lineBytes - 1))
        violation("invalidation event for unaligned line %llx",
                  (unsigned long long)line);
}

void
Checker::invalPageRealloc(CpuId cpu, Addr line)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus)
        violation("page-realloc flush event on invalid cpu %u", cpu);
    if (line & (cfg.lineBytes - 1))
        violation("page-realloc flush of unaligned line %llx",
                  (unsigned long long)line);
}

void
Checker::osEnter(Cycle cycle, CpuId cpu, OsOp op)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus) {
        violation("osEnter on invalid cpu %u", cpu);
        return;
    }
    if (unsigned(op) >= numOsOps)
        violation("osEnter with invalid op %u", unsigned(op));
    if (cycle < lastOsCycle[cpu]) {
        violation("cpu %u osEnter at cycle %llu after cycle %llu",
                  cpu, (unsigned long long)cycle,
                  (unsigned long long)lastOsCycle[cpu]);
    }
    lastOsCycle[cpu] = cycle;
    // The stream may begin mid-state (the idle loop a CPU boots in is
    // only reported on its first transition), so -1 accepts either.
    if (osDepth[cpu] == 1) {
        violation("cpu %u osEnter(%s) while already inside the OS",
                  cpu, osOpName(op));
    }
    osDepth[cpu] = 1;
}

void
Checker::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus) {
        violation("osExit on invalid cpu %u", cpu);
        return;
    }
    if (unsigned(op) >= numOsOps)
        violation("osExit with invalid op %u", unsigned(op));
    if (cycle < lastOsCycle[cpu]) {
        violation("cpu %u osExit at cycle %llu after cycle %llu",
                  cpu, (unsigned long long)cycle,
                  (unsigned long long)lastOsCycle[cpu]);
    }
    lastOsCycle[cpu] = cycle;
    // A resumed continuation replays the trailing exit marker of the
    // OS path it blocked in after the dispatch already returned the
    // CPU to user mode, so a redundant osExit(None) while outside the
    // OS is part of the producer contract (every analysis treats it
    // as a no-op). Any other op while outside is a real imbalance.
    if (osDepth[cpu] == 0 && op != OsOp::None) {
        violation("cpu %u osExit(%s) while not inside the OS", cpu,
                  osOpName(op));
    }
    osDepth[cpu] = 0;
}

void
Checker::contextSwitch(Cycle, CpuId cpu, Pid from, Pid to)
{
    ++stats_.monitorEvents;
    if (cpu >= cfg.numCpus)
        violation("context switch on invalid cpu %u", cpu);
    if (from < invalidPid || to < invalidPid)
        violation("context switch with pids %d -> %d", from, to);
}

void
Checker::checkAll(const Machine &m)
{
    ++stats_.fullSweeps;

    auto report = [this](const std::string &msg) {
        violation("cache integrity: %s", msg.c_str());
    };

    for (CpuId c = 0; c < cfg.numCpus; ++c) {
        const CpuCaches &h = mem->caches(c);
        h.icache.checkIntegrity(report);
        h.l1d.checkIntegrity(report);
        h.l2d.checkIntegrity(report);

        // Coherence sweep over this CPU's resident data lines (each
        // onLineEvent re-checks the line across every CPU, so lines
        // shared by several caches are just checked repeatedly).
        h.l2d.forEachResident(
            [this](Addr line, bool) { onLineEvent(line); });
        h.l1d.forEachResident(
            [this](Addr line, bool) { onLineEvent(line); });

        const Tlb &tlb = m.cpu(c).tlb;
        for (uint32_t i = 0; i < tlb.size(); ++i) {
            const TlbEntry &e = tlb.entryAt(i);
            if (e.valid)
                checkTlbEntry(c, e);
        }
    }

    const SyncTransport &sync = m.sync();
    for (uint32_t id = 0; id < sync.numLocks(); ++id) {
        const uint64_t mask = sync.cachedAtMask(id);
        if (cfg.numCpus < 64 && (mask >> cfg.numCpus) != 0) {
            violation("lock %u cached-at mask %llx names a CPU beyond "
                      "%u",
                      id, (unsigned long long)mask, cfg.numCpus);
        }
    }
}

} // namespace mpos::sim
