/**
 * @file
 * The coherent memory system: per-CPU cache hierarchies snooping a
 * shared bus, with the monitor observing every transaction.
 *
 * Data caches are kept coherent with a write-invalidate protocol at
 * the L2, selected by MachineConfig::protocol: MESI (the 4D/340's
 * Illinois protocol, the default), MSI (no Exclusive state: read
 * misses always fill Shared and the first write to any read line
 * costs an Upgrade), or MI (ownership only: every fill installs
 * Modified, so even read misses invalidate remote copies). The L1
 * D-cache is maintained strictly inclusive in the L2 so a single
 * snoop level suffices. Instruction caches are not snooped on writes
 * -- as on the R3000 -- and are flushed explicitly by the kernel when
 * a physical page that held code is reallocated (the source of the
 * paper's Inval misses).
 */

#ifndef MPOS_SIM_MEMSYS_HH
#define MPOS_SIM_MEMSYS_HH

#include <cstdint>
#include <vector>

#include "sim/cache.hh"
#include "sim/monitor.hh"
#include "sim/types.hh"
#include "util/arena.hh"
#include "util/binio.hh"

namespace mpos::sim
{

class Checker;

/**
 * Capture sink for the parallel core's speculative windows: while a
 * worker thread has one installed (setWindowCapture), monitor-visible
 * events are buffered here -- arena-backed, one record per bus event
 * or eviction -- instead of being delivered, and the bus-transaction
 * counter is deferred. The core merges all per-CPU buffers into the
 * serial event order and replays them through replayBus/replayEvict.
 */
struct WindowCapture
{
    /** Evictions reuse the BusRecord fields (cycle orders the merge;
     *  op is meaningless for them). */
    struct Event
    {
        BusRecord rec;
        bool isEvict;
    };

    explicit WindowCapture(util::Arena &arena) : events(arena) {}

    util::ArenaVector<Event> events;
};

/**
 * Coherence line states, tracked at the L2. All protocols share this
 * one state space; a protocol simply never produces the states it
 * lacks (MSI never fills Exclusive, MI never Shared or Exclusive),
 * and the checker enforces that per MachineConfig::protocol.
 */
enum class Coh : uint8_t { Invalid, Shared, Exclusive, Modified };

/** Outcome of one reference through the hierarchy. */
struct AccessResult
{
    Cycle cycles = 0;   ///< Total stall + execution charge for the ref.
    bool busAccess = false; ///< True if a bus transaction was needed.
};

/** The caches of one CPU: I-cache, L1 D and L2 D (inclusive). */
struct CpuCaches
{
    CpuCaches(CpuId id, const MachineConfig &cfg);

    CpuId cpu;
    Cache icache;
    Cache l1d;
    Cache l2d;
    /** Coherence state per resident L2 line, indexed by line. */
    std::vector<Coh> l2state;

    Coh
    getState(Addr line) const
    {
        const uint64_t idx = line >> lineShift;
        if (idx >= l2state.size())
            rangePanic(line);
        return l2state[idx];
    }

    void
    setState(Addr line, Coh s)
    {
        const uint64_t idx = line >> lineShift;
        if (idx >= l2state.size())
            rangePanic(line);
        l2state[idx] = s;
    }

  private:
    /** Line outside configured memory: report it and abort. */
    [[noreturn]] void rangePanic(Addr line) const;

    /** log2(lineBytes): line -> l2state index without dividing. */
    uint32_t lineShift;
    /** Configured memory size, for range-check diagnostics. */
    uint64_t memBytes;

    friend class MemorySystem;
};

/**
 * Snooping bus + all CPU hierarchies. All addresses are physical; the
 * caller is responsible for translation.
 */
class MemorySystem
{
  public:
    MemorySystem(const MachineConfig &cfg, Monitor &mon);

    /**
     * Perform a data reference. The L1 hit path (the overwhelmingly
     * common case) is inline: a read hit, or a write hit on a line
     * already owned, costs one probe and returns without touching the
     * bus -- exactly what the out-of-line path computes for it.
     * @param now Machine cycle at which the reference issues.
     * @param ctx Monitor context snapshot of the issuing CPU.
     */
    AccessResult
    dataAccess(CpuId cpu, Addr addr, bool is_write, Cycle now,
               const MonitorContext &ctx)
    {
        CpuCaches &h = hier[cpu];
        const Addr line = addr & lineMask;
        if (h.l1d.touch(line)) {
            if (!is_write)
                return {1, false};
            // An L1 hit implies the line is resident in the inclusive
            // L2, hence in range: skip getState's bounds check.
            const Coh st = h.l2state[line >> lineShift];
            if (st != Coh::Shared) {
                // Silent E -> M upgrade; M stays M. Shared needs the
                // bus and falls through to the slow path.
                if (st != Coh::Modified) {
                    setCohState(h, line, Coh::Modified);
                    if (checker)
                        checkLineEvent(line);
                }
                return {1, false};
            }
        }
        return dataAccessSlow(cpu, addr, is_write, now, ctx);
    }

    /** Perform an instruction-line fetch (hit path inline). */
    AccessResult
    ifetchAccess(CpuId cpu, Addr addr, Cycle now,
                 const MonitorContext &ctx)
    {
        CpuCaches &h = hier[cpu];
        const Addr line = addr & lineMask;
        if (h.icache.touch(line))
            return {lineExecCycles, false};
        return ifetchMiss(cpu, line, now, ctx);
    }

    /** Cache-bypassing device access. */
    AccessResult uncachedAccess(CpuId cpu, Addr addr, bool is_write,
                                Cycle now, const MonitorContext &ctx);

    /**
     * Flush all I-caches of every line in physical page ppage: the
     * kernel reallocated a code page. Generates Inval classification
     * events.
     */
    void flushICachesForPage(Addr ppage);

    /**
     * Data access that bypasses the caches but is still a bus
     * transaction (the block-operation bypass optimization of
     * Section 4.2.2).
     */
    AccessResult bypassAccess(CpuId cpu, Addr addr, bool is_write,
                              Cycle now, const MonitorContext &ctx);

    CpuCaches &caches(CpuId cpu) { return hier[cpu]; }
    const CpuCaches &caches(CpuId cpu) const { return hier[cpu]; }

    uint64_t busTransactions() const { return txTotal; }

    /**
     * Snoop-filter bitmask of CPUs whose L2 holds the line in a
     * non-Invalid state (bit c = CPU c). Maintained alongside the
     * per-CPU l2state arrays so bus transactions on unshared lines
     * skip the snoop walk entirely.
     */
    uint64_t sharersMask(Addr line) const
    {
        return sharers[line >> lineShift];
    }

    const MachineConfig &config() const { return cfg; }

    /** Attach the invariant checker (null = disabled). */
    void setChecker(Checker *c) { checker = c; }

    /**
     * Install (or, with null, remove) the calling thread's capture
     * sink. Thread-local so each parallel worker captures its own
     * CPUs' events without sharing; serial execution never sets it
     * and pays one thread-local null test per event.
     */
    static void setWindowCapture(WindowCapture *c) { winCap = c; }

    /** Re-deliver one captured bus transaction in merge order:
     *  exactly record()'s serial body, including the deferred
     *  transaction count and the listening() fast path. */
    void
    replayBus(const BusRecord &rec)
    {
        ++txTotal;
        if (mon.listening())
            mon.busTransaction(rec);
        else
            mon.countTransaction(rec.ctx.mode);
    }

    /** Re-deliver one captured eviction in merge order. */
    void
    replayEvict(const WindowCapture::Event &ev)
    {
        if (mon.listening())
            mon.evict(ev.rec.cpu, ev.rec.cache, ev.rec.lineAddr,
                      ev.rec.ctx);
    }

    /// @name Snapshot save/restore
    /// Every cache's packed tags, the per-CPU MESI arrays, the snoop
    /// filter, bus occupancy horizon and transaction counter; all
    /// geometry is reconstructed from config and validated.
    /// @{
    void saveState(util::ByteWriter &w) const;
    void restoreState(util::ByteReader &r);
    /// @}

  private:
    /** Out-of-line checker trampoline so the inline hit path only
     *  needs the forward-declared Checker and one null test. */
    void checkLineEvent(Addr line);

    /** dataAccess() when the L1 cannot satisfy the reference alone. */
    AccessResult dataAccessSlow(CpuId cpu, Addr addr, bool is_write,
                                Cycle now, const MonitorContext &ctx);

    /** ifetchAccess() miss path: bus fill + victim bookkeeping. */
    AccessResult ifetchMiss(CpuId cpu, Addr line, Cycle now,
                            const MonitorContext &ctx);

    /** Charge bus arbitration and occupancy; returns queueing delay. */
    Cycle acquireBus(Cycle now);

    /** Snoop others on a read; true if any other cache held the line. */
    bool snoopRead(CpuId requester, Addr line);

    /** Snoop others on ReadEx/Upgrade: invalidate all other copies. */
    void snoopInvalidate(CpuId requester, Addr line);

    void record(Cycle now, CpuId cpu, Addr line, BusOp op,
                CacheKind kind, const MonitorContext &ctx);

    /** L2 fill with inclusion bookkeeping and eviction events. */
    void l2Fill(CpuId cpu, Addr line, Coh st, Cycle now,
                const MonitorContext &ctx);

    /** Set/clear a line's coherence state and keep sharers in sync. */
    void
    setCohState(CpuCaches &h, Addr line, Coh st)
    {
        h.setState(line, st);
        const uint64_t idx = line >> lineShift;
        if (st == Coh::Invalid)
            sharers[idx] &= ~(uint64_t(1) << h.cpu);
        else
            sharers[idx] |= uint64_t(1) << h.cpu;
    }

    MachineConfig cfg;
    Monitor &mon;
    /** By value: every reference starts with a hier[cpu] lookup, so
     *  the extra pointer chase of unique_ptr would be on the hottest
     *  path in the simulator. */
    std::vector<CpuCaches> hier;
    /** Per-line snoop filter: bit c set iff CPU c holds the line. */
    std::vector<uint64_t> sharers;
    /** log2(lineBytes). */
    uint32_t lineShift = 0;
    /** ~(lineBytes - 1): address -> line address. */
    Addr lineMask = 0;
    /** Execution cycles for one full instruction line. */
    Cycle lineExecCycles = 0;
    Cycle busBusyUntil = 0;
    uint64_t txTotal = 0;
    /** Reference mode: full snoop walks, no filter shortcut. */
    bool slowSim = false;
    /** Invariant checker; null unless checking is enabled. */
    Checker *checker = nullptr;
    /** Per-thread capture sink; null outside speculative windows. */
    static thread_local WindowCapture *winCap;
};

} // namespace mpos::sim

#endif // MPOS_SIM_MEMSYS_HH
