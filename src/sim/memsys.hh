/**
 * @file
 * The coherent memory system: per-CPU cache hierarchies snooping a
 * shared bus, with the monitor observing every transaction.
 *
 * Data caches are kept coherent with a MESI write-invalidate protocol
 * at the L2 (the 4D/340 used the Illinois protocol); the L1 D-cache is
 * maintained strictly inclusive in the L2 so a single snoop level
 * suffices. Instruction caches are not snooped on writes -- as on the
 * R3000 -- and are flushed explicitly by the kernel when a physical
 * page that held code is reallocated (the source of the paper's Inval
 * misses).
 */

#ifndef MPOS_SIM_MEMSYS_HH
#define MPOS_SIM_MEMSYS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hh"
#include "sim/monitor.hh"
#include "sim/types.hh"

namespace mpos::sim
{

/** MESI line states, tracked at the L2. */
enum class Coh : uint8_t { Invalid, Shared, Exclusive, Modified };

/** Outcome of one reference through the hierarchy. */
struct AccessResult
{
    Cycle cycles = 0;   ///< Total stall + execution charge for the ref.
    bool busAccess = false; ///< True if a bus transaction was needed.
};

/** The caches of one CPU: I-cache, L1 D and L2 D (inclusive). */
struct CpuCaches
{
    CpuCaches(CpuId id, const MachineConfig &cfg);

    CpuId cpu;
    Cache icache;
    Cache l1d;
    Cache l2d;
    /** MESI state per resident L2 line, parallel array by set/way. */
    std::vector<Coh> l2state;

    Coh getState(Addr line) const;
    void setState(Addr line, Coh s);

  private:
    friend class MemorySystem;
};

/**
 * Snooping bus + all CPU hierarchies. All addresses are physical; the
 * caller is responsible for translation.
 */
class MemorySystem
{
  public:
    MemorySystem(const MachineConfig &cfg, Monitor &mon);

    /**
     * Perform a data reference.
     * @param now Machine cycle at which the reference issues.
     * @param ctx Monitor context snapshot of the issuing CPU.
     */
    AccessResult dataAccess(CpuId cpu, Addr addr, bool is_write,
                            Cycle now, const MonitorContext &ctx);

    /** Perform an instruction-line fetch. */
    AccessResult ifetchAccess(CpuId cpu, Addr addr, Cycle now,
                              const MonitorContext &ctx);

    /** Cache-bypassing device access. */
    AccessResult uncachedAccess(CpuId cpu, Addr addr, bool is_write,
                                Cycle now, const MonitorContext &ctx);

    /**
     * Flush all I-caches of every line in physical page ppage: the
     * kernel reallocated a code page. Generates Inval classification
     * events.
     */
    void flushICachesForPage(Addr ppage);

    /**
     * Data access that bypasses the caches but is still a bus
     * transaction (the block-operation bypass optimization of
     * Section 4.2.2).
     */
    AccessResult bypassAccess(CpuId cpu, Addr addr, bool is_write,
                              Cycle now, const MonitorContext &ctx);

    CpuCaches &caches(CpuId cpu) { return *hier[cpu]; }
    const CpuCaches &caches(CpuId cpu) const { return *hier[cpu]; }

    uint64_t busTransactions() const { return txTotal; }

    const MachineConfig &config() const { return cfg; }

  private:
    /** Charge bus arbitration and occupancy; returns queueing delay. */
    Cycle acquireBus(Cycle now);

    /** Snoop others on a read; true if any other cache held the line. */
    bool snoopRead(CpuId requester, Addr line);

    /** Snoop others on ReadEx/Upgrade: invalidate all other copies. */
    void snoopInvalidate(CpuId requester, Addr line);

    void record(Cycle now, CpuId cpu, Addr line, BusOp op,
                CacheKind kind, const MonitorContext &ctx);

    /** L2 fill with inclusion bookkeeping and eviction events. */
    void l2Fill(CpuId cpu, Addr line, Coh st, Cycle now,
                const MonitorContext &ctx);

    MachineConfig cfg;
    Monitor &mon;
    std::vector<std::unique_ptr<CpuCaches>> hier;
    Cycle busBusyUntil = 0;
    uint64_t txTotal = 0;
};

} // namespace mpos::sim

#endif // MPOS_SIM_MEMSYS_HH
