#include "sim/trace/trace.hh"

#include <cstring>

#include "util/error.hh"

namespace mpos::sim::trace
{

/*
 * Binary trace layout (all integers little-endian):
 *
 *   header   "MPOSTRC1" (8)  version u32  flags u32  ring u64
 *   record*  u8 tag, then:
 *     0x01 event   44 bytes: kind u8, cpu u8, mode u8, os_op u8,
 *                  routine u16, pad u16, pid i32, cycle u64,
 *                  addr u64, a u64, b u64
 *     0x02 symbol  routine id u16, name length u16, name bytes
 *     0xff end     total_events u64, written_events u64
 *
 * flags bit 0 = ring mode (the file holds only the final ring
 * contents, the paper's read-the-buffer-after-the-run methodology).
 */

namespace
{

constexpr char traceMagic[8] = {'M', 'P', 'O', 'S', 'T', 'R', 'C', '1'};
constexpr uint32_t traceVersion = 1;
constexpr uint32_t flagRingMode = 1;

constexpr uint8_t tagEvent = 0x01;
constexpr uint8_t tagSymbol = 0x02;
constexpr uint8_t tagEnd = 0xff;

constexpr size_t eventBytes = 44;

/**
 * Symbol ids below this are addressable; 0xffff is the in-band
 * "no routine" sentinel and must never appear as a symbol record id.
 */
constexpr uint16_t maxRoutineSymbols = 0xffff;

void
put16(uint8_t *p, uint16_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
}

void
put32(uint8_t *p, uint32_t v)
{
    put16(p, uint16_t(v));
    put16(p + 2, uint16_t(v >> 16));
}

void
put64(uint8_t *p, uint64_t v)
{
    put32(p, uint32_t(v));
    put32(p + 4, uint32_t(v >> 32));
}

uint16_t
get16(const uint8_t *p)
{
    return uint16_t(p[0] | (uint16_t(p[1]) << 8));
}

uint32_t
get32(const uint8_t *p)
{
    return uint32_t(get16(p)) | (uint32_t(get16(p + 2)) << 16);
}

uint64_t
get64(const uint8_t *p)
{
    return uint64_t(get32(p)) | (uint64_t(get32(p + 4)) << 32);
}

void
packEvent(const TraceEvent &ev, uint8_t *buf)
{
    buf[0] = uint8_t(ev.kind);
    buf[1] = uint8_t(ev.cpu);
    buf[2] = uint8_t(ev.ctx.mode);
    buf[3] = uint8_t(ev.ctx.op);
    put16(buf + 4, ev.ctx.routine);
    put16(buf + 6, 0);
    put32(buf + 8, uint32_t(ev.ctx.pid));
    put64(buf + 12, ev.cycle);
    put64(buf + 20, ev.addr);
    put64(buf + 28, ev.a);
    put64(buf + 36, ev.b);
}

TraceEvent
unpackEvent(const uint8_t *buf)
{
    TraceEvent ev;
    ev.kind = TraceEventKind(buf[0]);
    ev.cpu = buf[1];
    ev.ctx.mode = ExecMode(buf[2]);
    ev.ctx.op = OsOp(buf[3]);
    ev.ctx.routine = get16(buf + 4);
    ev.ctx.pid = Pid(int32_t(get32(buf + 8)));
    ev.cycle = get64(buf + 12);
    ev.addr = get64(buf + 20);
    ev.a = get64(buf + 28);
    ev.b = get64(buf + 36);
    return ev;
}

} // namespace

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Bus: return "bus";
      case TraceEventKind::Evict: return "evict";
      case TraceEventKind::InvalSharing: return "inval-sharing";
      case TraceEventKind::InvalPageRealloc: return "inval-realloc";
      case TraceEventKind::FlushPage: return "flush-page";
      case TraceEventKind::OsEnter: return "os-enter";
      case TraceEventKind::OsExit: return "os-exit";
      case TraceEventKind::ContextSwitch: return "context-switch";
    }
    return "?";
}

Tracer::Tracer(uint64_t ring_entries, const std::string &file_path,
               bool ring_mode)
    : events(ring_entries), path(file_path), ringMode(ring_mode)
{
    if (path.empty())
        return;
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        util::raise(util::ErrCode::BadConfig,
                    "cannot open trace file '%s' for writing",
                    path.c_str());
    uint8_t hdr[24];
    std::memcpy(hdr, traceMagic, 8);
    put32(hdr + 8, traceVersion);
    put32(hdr + 12, ringMode ? flagRingMode : 0);
    put64(hdr + 16, events.capacity());
    std::fwrite(hdr, 1, sizeof hdr, file);
}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::writeEvent(const TraceEvent &ev)
{
    uint8_t buf[1 + eventBytes];
    buf[0] = tagEvent;
    packEvent(ev, buf + 1);
    std::fwrite(buf, 1, sizeof buf, file);
}

void
Tracer::record(const TraceEvent &ev)
{
    events.push(ev);
    if (file && !ringMode)
        writeEvent(ev);
}

void
Tracer::finish()
{
    if (finished)
        return;
    finished = true;
    if (!file)
        return;
    if (ringMode) {
        for (uint64_t i = 0; i < events.size(); ++i)
            writeEvent(events.tail(i));
    }
    for (size_t r = 0; r < routineNames.size(); ++r) {
        const std::string &name = routineNames[r];
        const uint16_t len =
            uint16_t(name.size() < 0xffff ? name.size() : 0xffff);
        uint8_t buf[5];
        buf[0] = tagSymbol;
        put16(buf + 1, uint16_t(r));
        put16(buf + 3, len);
        std::fwrite(buf, 1, sizeof buf, file);
        std::fwrite(name.data(), 1, len, file);
    }
    uint8_t end[17];
    end[0] = tagEnd;
    put64(end + 1, events.total());
    put64(end + 9, ringMode ? events.size() : events.total());
    std::fwrite(end, 1, sizeof end, file);
    std::fclose(file);
    file = nullptr;
}

void
Tracer::busTransaction(const BusRecord &rec)
{
    lastCycle = rec.cycle;
    record({TraceEventKind::Bus, rec.cycle, rec.cpu, rec.lineAddr,
            uint64_t(rec.op), uint64_t(rec.cache), rec.ctx});
}

void
Tracer::evict(CpuId cpu, CacheKind kind, Addr line,
              const MonitorContext &by)
{
    record({TraceEventKind::Evict, lastCycle, cpu, line, uint64_t(kind),
            0, by});
}

void
Tracer::invalSharing(CpuId cpu, CacheKind kind, Addr line)
{
    record({TraceEventKind::InvalSharing, lastCycle, cpu, line,
            uint64_t(kind), 0, {}});
}

void
Tracer::invalPageRealloc(CpuId cpu, Addr line)
{
    record({TraceEventKind::InvalPageRealloc, lastCycle, cpu, line, 0,
            0, {}});
}

void
Tracer::flushPage(CpuId cpu, Addr page_addr, uint32_t page_bytes)
{
    record({TraceEventKind::FlushPage, lastCycle, cpu, page_addr,
            page_bytes, 0, {}});
}

void
Tracer::osEnter(Cycle cycle, CpuId cpu, OsOp op)
{
    lastCycle = cycle;
    record({TraceEventKind::OsEnter, cycle, cpu, 0, uint64_t(op), 0,
            {}});
}

void
Tracer::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    lastCycle = cycle;
    record({TraceEventKind::OsExit, cycle, cpu, 0, uint64_t(op), 0,
            {}});
}

void
Tracer::contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to)
{
    lastCycle = cycle;
    record({TraceEventKind::ContextSwitch, cycle, cpu, 0,
            uint64_t(int64_t(from)), uint64_t(int64_t(to)), {}});
}

// ------------------------------------------------------------------ //
// JSONL conversion                                                   //
// ------------------------------------------------------------------ //

namespace
{

/** JSON string escape for symbol names (plain ASCII expected). */
std::string
jsonString(const std::string &s)
{
    std::string out;
    for (char c : s) {
        const unsigned char u = (unsigned char)c;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", u);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/**
 * MPOSTRC1 stream reader. The file is untrusted input: every length
 * and id is validated against what the format can legally hold, and a
 * malformed stream raises a typed SimError(TraceCorrupt) -- never a
 * crash, never an unbounded allocation. Symbol ids are u16 on the
 * wire, so the symbol table is inherently capped at 65536 entries and
 * a hostile id cannot drive a large resize; the explicit check below
 * rejects ids the writer can never emit (it numbers routines densely
 * from zero) to keep the table proportional to real content.
 */
struct TraceReader
{
    FILE *f = nullptr;

    ~TraceReader()
    {
        if (f)
            std::fclose(f);
    }

    [[noreturn]] static void
    fail(const char *what)
    {
        util::raise(util::ErrCode::TraceCorrupt, "trace: %s", what);
    }

    void
    readHeader(const std::string &path, uint32_t &flags, uint64_t &ring)
    {
        f = std::fopen(path.c_str(), "rb");
        if (!f)
            util::raise(util::ErrCode::BadConfig,
                        "cannot open trace file '%s'", path.c_str());
        uint8_t hdr[24];
        if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr)
            fail("truncated trace header");
        if (std::memcmp(hdr, traceMagic, 8) != 0)
            fail("bad trace magic");
        if (get32(hdr + 8) != traceVersion)
            fail("unsupported trace version");
        flags = get32(hdr + 12);
        ring = get64(hdr + 16);
    }

    /**
     * Walk the record stream. Calls onEvent for each event, fills
     * symbols and end totals (either may be null to skip). Raises
     * TraceCorrupt on a malformed stream.
     */
    template <typename Fn>
    void
    scan(Fn &&onEvent, std::vector<std::string> *symbols,
         uint64_t *totalEvents)
    {
        uint64_t seenEvents = 0;
        for (;;) {
            int tag = std::fgetc(f);
            if (tag == EOF)
                fail("trace ends without end marker");
            if (tag == tagEvent) {
                uint8_t buf[eventBytes];
                if (std::fread(buf, 1, sizeof buf, f) != sizeof buf)
                    fail("truncated event record");
                ++seenEvents;
                onEvent(unpackEvent(buf));
            } else if (tag == tagSymbol) {
                uint8_t buf[4];
                if (std::fread(buf, 1, sizeof buf, f) != sizeof buf)
                    fail("truncated symbol record");
                const uint16_t id = get16(buf);
                const uint16_t len = get16(buf + 2);
                if (id >= maxRoutineSymbols)
                    fail("symbol id out of range");
                std::string name(len, '\0');
                if (len &&
                    std::fread(name.data(), 1, len, f) != len)
                    fail("truncated symbol name");
                if (symbols) {
                    if (symbols->size() <= id)
                        symbols->resize(size_t(id) + 1);
                    (*symbols)[id] = std::move(name);
                }
            } else if (tag == tagEnd) {
                uint8_t buf[16];
                if (std::fread(buf, 1, sizeof buf, f) != sizeof buf)
                    fail("truncated end marker");
                const uint64_t written = get64(buf + 8);
                if (written != seenEvents)
                    fail("end marker event count mismatch");
                if (totalEvents)
                    *totalEvents = get64(buf);
                if (std::fgetc(f) != EOF)
                    fail("trailing bytes after end marker");
                return;
            } else {
                fail("unknown record tag");
            }
        }
    }
};

void
emitEventJson(FILE *out, const TraceEvent &ev,
              const std::vector<std::string> &symbols)
{
    std::fprintf(out,
                 "{\"kind\":\"%s\",\"cycle\":%llu,\"cpu\":%u",
                 traceEventKindName(ev.kind),
                 (unsigned long long)ev.cycle, ev.cpu);
    switch (ev.kind) {
      case TraceEventKind::Bus:
        std::fprintf(out, ",\"line\":\"0x%llx\",\"op\":\"%s\","
                          "\"cache\":\"%s\"",
                     (unsigned long long)ev.addr, busOpName(BusOp(ev.a)),
                     CacheKind(ev.b) == CacheKind::Instr ? "I" : "D");
        break;
      case TraceEventKind::Evict:
      case TraceEventKind::InvalSharing:
        std::fprintf(out, ",\"line\":\"0x%llx\",\"cache\":\"%s\"",
                     (unsigned long long)ev.addr,
                     CacheKind(ev.a) == CacheKind::Instr ? "I" : "D");
        break;
      case TraceEventKind::InvalPageRealloc:
        std::fprintf(out, ",\"line\":\"0x%llx\"",
                     (unsigned long long)ev.addr);
        break;
      case TraceEventKind::FlushPage:
        std::fprintf(out, ",\"page\":\"0x%llx\",\"bytes\":%llu",
                     (unsigned long long)ev.addr,
                     (unsigned long long)ev.a);
        break;
      case TraceEventKind::OsEnter:
      case TraceEventKind::OsExit:
        std::fprintf(out, ",\"os_op\":\"%s\"", osOpName(OsOp(ev.a)));
        break;
      case TraceEventKind::ContextSwitch:
        std::fprintf(out, ",\"from\":%d,\"to\":%d",
                     int(int64_t(ev.a)), int(int64_t(ev.b)));
        break;
    }
    // The in-band context snapshot rides on bus records and evicts
    // (the kinds that carry one), mirroring the paper's per-record
    // CPU-state capture.
    if (ev.kind == TraceEventKind::Bus ||
        ev.kind == TraceEventKind::Evict) {
        std::fprintf(out, ",\"mode\":\"%s\",\"os_op\":\"%s\",\"pid\":%d",
                     execModeName(ev.ctx.mode), osOpName(ev.ctx.op),
                     int(ev.ctx.pid));
        if (ev.ctx.routine != 0xffff) {
            if (ev.ctx.routine < symbols.size() &&
                !symbols[ev.ctx.routine].empty()) {
                std::fprintf(
                    out, ",\"routine\":\"%s\"",
                    jsonString(symbols[ev.ctx.routine]).c_str());
            } else {
                std::fprintf(out, ",\"routine\":%u",
                             unsigned(ev.ctx.routine));
            }
        }
    }
    std::fputs("}\n", out);
}

} // namespace

bool
convertToJsonl(const std::string &trace_path,
               const std::string &jsonl_path, std::string *err)
{
    // Pass 1: collect the symbol table (it trails the events) and
    // validate the stream. Pass 2: emit one JSON object per event.
    // The reader raises typed SimErrors on hostile input; this
    // boundary keeps the historical bool+message interface for the
    // CLI wrapper.
    try {
        TraceReader reader;
        uint32_t flags = 0;
        uint64_t ring = 0;
        std::vector<std::string> symbols;
        uint64_t total = 0;
        reader.readHeader(trace_path, flags, ring);
        reader.scan([](const TraceEvent &) {}, &symbols, &total);

        TraceReader pass2;
        FILE *out = std::fopen(jsonl_path.c_str(), "w");
        if (!out) {
            if (err)
                *err = "cannot open JSONL output file";
            return false;
        }
        uint32_t f2 = 0;
        uint64_t r2 = 0;
        bool ok = false;
        try {
            pass2.readHeader(trace_path, f2, r2);
            pass2.scan(
                [&](const TraceEvent &ev) {
                    emitEventJson(out, ev, symbols);
                },
                nullptr, nullptr);
            ok = true;
        } catch (...) {
            std::fclose(out);
            throw;
        }
        std::fclose(out);
        return ok;
    } catch (const util::SimError &e) {
        if (err)
            *err = e.what();
        return false;
    }
}

} // namespace mpos::sim::trace
