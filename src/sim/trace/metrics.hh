/**
 * @file
 * Time-sliced metrics engine: the observability companion to the
 * paper's whole-run averages.
 *
 * The paper reports miss rates, bus utilization and lock behavior
 * aggregated over entire workload runs; figures like the repeating
 * OS/application pattern (Figure 1) only become visible when the same
 * quantities are windowed over time. Metrics does that windowing: the
 * run is divided into fixed-width slices of simulated cycles, and each
 * slice accumulates bus traffic by operation, I/D miss fills, the OS
 * share of traffic, invalidations, evictions, OS entries and lock
 * activity (acquires, contended hand-offs between CPUs, failed spin
 * polls). Bench emits the per-window arrays into the JSON report.
 *
 * Window boundaries advance with the cycle stamps of clocked events
 * (bus records, OS entry/exit); unclocked events (invalidations,
 * evictions) land in the window that is current when they arrive,
 * which is the window of the bus slot that caused them. Everything is
 * derived from simulated time only, so the arrays are byte-identical
 * across host thread counts.
 *
 * Zero-cost when off: the machine holds a null pointer unless
 * MachineConfig::metrics (or MPOS_METRICS) enables the engine.
 */

#ifndef MPOS_SIM_TRACE_METRICS_HH
#define MPOS_SIM_TRACE_METRICS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/monitor.hh"
#include "sim/syncbus.hh"
#include "sim/types.hh"

namespace mpos::sim::trace
{

/** One completed metrics window. */
struct MetricsWindow
{
    Cycle startCycle = 0;

    /** Bus transactions by BusOp (Read..UncachedWrite). */
    uint64_t busOps[6] = {};
    uint64_t osBusOps = 0; ///< Transactions with mode != User.
    uint64_t iFills = 0;   ///< Read fills into the I-cache.
    uint64_t dFills = 0;   ///< Read/ReadEx fills into the D-cache.

    uint64_t invalSharing = 0;
    uint64_t invalRealloc = 0;
    uint64_t evictions = 0;
    uint64_t osEnters = 0;

    uint64_t lockAcquires = 0;
    /** Acquires where the previous holder was a different CPU. */
    uint64_t lockHandoffs = 0;
    uint64_t lockFails = 0; ///< Failed acquire polls (spin pressure).

    uint64_t busTotal() const
    {
        uint64_t n = 0;
        for (uint64_t v : busOps)
            n += v;
        return n;
    }
};

/** A phase boundary (warmup -> measure) in window coordinates. */
struct MetricsPhase
{
    std::string name;
    Cycle startCycle = 0;
};

/** The windowing engine. One per Machine, owned by it. */
class Metrics : public MonitorObserver
{
  public:
    explicit Metrics(Cycle window_cycles);

    /** Mark a phase boundary (e.g. the start of measurement). */
    void markPhase(Cycle now, const std::string &name);

    /**
     * Lock activity, reported directly by the kernel (the sync
     * transport carries no cycle stamps). Null-gated at the call
     * site, the same discipline as every other hook.
     */
    void lockEvent(Cycle now, CpuId cpu, uint32_t lock_id,
                   LockEvent ev);

    /** Close the current window. Idempotent per cycle. */
    void finish(Cycle now);

    Cycle windowCycles() const { return windowWidth; }
    const std::vector<MetricsWindow> &windows() const { return done; }
    const std::vector<MetricsPhase> &phases() const { return marks; }

    /// @name MonitorObserver
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void invalSharing(CpuId cpu, CacheKind kind, Addr line) override;
    void invalPageRealloc(CpuId cpu, Addr line) override;
    void evict(CpuId cpu, CacheKind kind, Addr line,
               const MonitorContext &by) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    /// @}

  private:
    /** Close windows until cycle `now` falls inside the current one. */
    void
    advance(Cycle now)
    {
        while (now >= cur.startCycle + windowWidth) {
            done.push_back(cur);
            cur = MetricsWindow{};
            cur.startCycle = done.back().startCycle + windowWidth;
        }
    }

    Cycle windowWidth;
    MetricsWindow cur;
    std::vector<MetricsWindow> done;
    std::vector<MetricsPhase> marks;
    /** Last successful acquirer per lock id (hand-off detection). */
    std::unordered_map<uint32_t, CpuId> lastOwner;
    bool closed = false;
};

} // namespace mpos::sim::trace

#endif // MPOS_SIM_TRACE_METRICS_HH
