/**
 * @file
 * Simulated-kernel routine profiler.
 *
 * The paper attributes misses to kernel routines through in-band
 * subroutine-entry escape references; the profiler generalizes that
 * into a full profile of the *simulated* kernel: every cycle of
 * simulated time is attributed to the (execution mode, OS operation,
 * kernel routine) that was executing, every classified miss and an
 * estimated stall contribution are charged to the same key, and
 * per-process cycle totals ride along. Output is flame-style
 * collapsed stacks ("mode;os_op;routine cycles"), consumable by
 * standard flamegraph tooling.
 *
 * Cycle attribution is span-based: the profiler tracks each CPU's
 * current key and charges the elapsed simulated cycles to the old key
 * at every transition (OS entry/exit and context switches arrive via
 * the Monitor; routine changes are reported directly by the kernel at
 * RoutineEnter/Exit markers, null-gated like every other hook).
 * Between resetCycles(t0) and finish(t1), the attributed cycles sum
 * to exactly (t1 - t0) * numCpus -- nothing is lost or invented.
 *
 * Stall time is estimated as the paper does: busMissStall cycles per
 * bus transaction, charged to the transaction's own context snapshot.
 * Misses-by-class arrive from the core classifier through a sink
 * adapter, keyed by the miss record's context, which makes the
 * per-routine totals reconcile exactly with core/attribution.
 *
 * Zero-cost when off: null-pointer gate, the checker discipline.
 */

#ifndef MPOS_SIM_TRACE_PROFILE_HH
#define MPOS_SIM_TRACE_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/monitor.hh"
#include "sim/types.hh"

namespace mpos::sim::trace
{

/** Miss-class slots a profile key carries (superset of core's 7). */
constexpr uint32_t profileMissSlots = 8;

/** Aggregated profile of one (mode, OS op, routine) key. */
struct ProfileEntry
{
    ExecMode mode = ExecMode::User;
    OsOp op = OsOp::None;
    uint16_t routine = 0xffff;

    uint64_t cycles = 0;     ///< Simulated cycles attributed.
    uint64_t busTx = 0;      ///< Bus transactions in this context.
    uint64_t stallEst = 0;   ///< busTx * busMissStall estimate.
    uint64_t missesI[profileMissSlots] = {}; ///< I-misses by class.
    uint64_t missesD[profileMissSlots] = {}; ///< D-misses by class.
};

/** The profiler. One per Machine, owned by it. */
class Profiler : public MonitorObserver
{
  public:
    /**
     * @param num_cpus       CPUs in the machine.
     * @param bus_miss_stall Per-transaction stall estimate (the
     *                       paper's 35 cycles).
     */
    Profiler(uint32_t num_cpus, Cycle bus_miss_stall);

    /** Install the kernel routine symbol table (index = RoutineId). */
    void
    setRoutineNames(std::vector<std::string> names)
    {
        routineNames = std::move(names);
    }

    /**
     * The kernel's routine-boundary hook (RoutineEnter/Exit markers).
     * Null-gated at the call site.
     */
    void routineSwitch(Cycle now, CpuId cpu, uint16_t routine);

    /**
     * A classified miss, forwarded by the core classifier's sink
     * adapter. Keyed by the miss record's own context snapshot.
     */
    void recordMiss(const MonitorContext &ctx, CacheKind cache,
                    uint8_t miss_class);

    /** Zero all tallies and restart every CPU's span at `now`. */
    void resetCycles(Cycle now);

    /** Close all open spans at `now` (spans restart there). */
    void finish(Cycle now);

    /** All keys with nonzero activity, deterministically ordered. */
    std::vector<ProfileEntry> entries() const;

    /** Simulated cycles attributed across all keys. */
    uint64_t totalCycles() const;

    /**
     * Per-process attributed cycles (ordered by pid). Partitions the
     * same total as totalCycles(); the invalidPid slot collects
     * no-process time (the idle loop, early boot).
     */
    const std::map<Pid, uint64_t> &pidCycles() const { return byPid; }

    /**
     * Flame-style collapsed stacks: one "mode;os_op;routine cycles"
     * line per key, most cycles first (stable tie-break on the key),
     * ready for flamegraph.pl / inferno.
     */
    std::string collapsed() const;

    /** Human-readable name of a routine id ("-" when none). */
    std::string routineName(uint16_t routine) const;

    /// @name MonitorObserver
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    void osExit(Cycle cycle, CpuId cpu, OsOp op) override;
    void contextSwitch(Cycle cycle, CpuId cpu, Pid from,
                       Pid to) override;
    /// @}

  private:
    struct Tally
    {
        uint64_t cycles = 0;
        uint64_t busTx = 0;
        uint64_t missesI[profileMissSlots] = {};
        uint64_t missesD[profileMissSlots] = {};
    };

    /** Current attribution key of one CPU. */
    struct CpuKey
    {
        ExecMode mode = ExecMode::Idle;
        OsOp op = OsOp::IdleLoop;
        uint16_t routine = 0xffff;
        Cycle spanStart = 0;
        Pid pid = invalidPid;
    };

    static uint32_t
    pack(ExecMode mode, OsOp op, uint16_t routine)
    {
        return (uint32_t(mode) << 24) | (uint32_t(op) << 16) | routine;
    }

    Tally &
    tallyOf(ExecMode mode, OsOp op, uint16_t routine)
    {
        return tallies[pack(mode, op, routine)];
    }

    /** Charge the elapsed span of cpu to its current key. */
    void closeSpan(Cycle now, CpuId cpu);

    Cycle busMissStall;
    std::vector<CpuKey> cur;
    std::unordered_map<uint32_t, Tally> tallies;
    std::map<Pid, uint64_t> byPid;
    std::vector<std::string> routineNames;
};

} // namespace mpos::sim::trace

#endif // MPOS_SIM_TRACE_PROFILE_HH
