#include "sim/trace/metrics.hh"

#include "util/error.hh"

namespace mpos::sim::trace
{

Metrics::Metrics(Cycle window_cycles)
    : windowWidth(window_cycles)
{
    if (window_cycles == 0)
        util::raise(util::ErrCode::BadConfig,
                    "metrics window width must be nonzero");
}

void
Metrics::markPhase(Cycle now, const std::string &name)
{
    advance(now);
    marks.push_back({name, now});
}

void
Metrics::lockEvent(Cycle now, CpuId cpu, uint32_t lock_id, LockEvent ev)
{
    advance(now);
    switch (ev) {
      case LockEvent::AcquireSuccess: {
        ++cur.lockAcquires;
        const auto it = lastOwner.find(lock_id);
        if (it != lastOwner.end() && it->second != cpu)
            ++cur.lockHandoffs;
        lastOwner[lock_id] = cpu;
        break;
      }
      case LockEvent::AcquireFail:
        ++cur.lockFails;
        break;
      case LockEvent::Release:
        break;
      default:
        break; // only the three logical events are ever reported
    }
}

void
Metrics::finish(Cycle now)
{
    if (closed)
        return;
    closed = true;
    advance(now);
    done.push_back(cur);
    cur = MetricsWindow{};
}

void
Metrics::busTransaction(const BusRecord &rec)
{
    advance(rec.cycle);
    ++cur.busOps[unsigned(rec.op)];
    if (rec.ctx.mode != ExecMode::User)
        ++cur.osBusOps;
    if (rec.op == BusOp::Read || rec.op == BusOp::ReadEx) {
        if (rec.cache == CacheKind::Instr)
            ++cur.iFills;
        else
            ++cur.dFills;
    }
}

void
Metrics::invalSharing(CpuId, CacheKind, Addr)
{
    ++cur.invalSharing;
}

void
Metrics::invalPageRealloc(CpuId, Addr)
{
    ++cur.invalRealloc;
}

void
Metrics::evict(CpuId, CacheKind, Addr, const MonitorContext &)
{
    ++cur.evictions;
}

void
Metrics::osEnter(Cycle cycle, CpuId, OsOp)
{
    advance(cycle);
    ++cur.osEnters;
}

} // namespace mpos::sim::trace
