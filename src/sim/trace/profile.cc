#include "sim/trace/profile.hh"

#include <algorithm>

namespace mpos::sim::trace
{

Profiler::Profiler(uint32_t num_cpus, Cycle bus_miss_stall)
    : busMissStall(bus_miss_stall), cur(num_cpus)
{
}

void
Profiler::closeSpan(Cycle now, CpuId cpu)
{
    CpuKey &k = cur[cpu];
    if (now > k.spanStart) {
        const uint64_t span = now - k.spanStart;
        tallyOf(k.mode, k.op, k.routine).cycles += span;
        // invalidPid collects no-process time (idle loop, early
        // boot), so the per-pid view partitions the same total.
        byPid[k.pid] += span;
    }
    k.spanStart = now;
}

void
Profiler::routineSwitch(Cycle now, CpuId cpu, uint16_t routine)
{
    closeSpan(now, cpu);
    cur[cpu].routine = routine;
}

void
Profiler::recordMiss(const MonitorContext &ctx, CacheKind cache,
                     uint8_t miss_class)
{
    if (miss_class >= profileMissSlots)
        miss_class = profileMissSlots - 1;
    Tally &t = tallyOf(ctx.mode, ctx.op, ctx.routine);
    if (cache == CacheKind::Instr)
        ++t.missesI[miss_class];
    else
        ++t.missesD[miss_class];
}

void
Profiler::resetCycles(Cycle now)
{
    tallies.clear();
    byPid.clear();
    for (CpuKey &k : cur)
        k.spanStart = now;
}

void
Profiler::finish(Cycle now)
{
    for (CpuId cpu = 0; cpu < cur.size(); ++cpu)
        closeSpan(now, cpu);
}

std::vector<ProfileEntry>
Profiler::entries() const
{
    std::vector<std::pair<uint32_t, const Tally *>> keys;
    keys.reserve(tallies.size());
    for (const auto &kv : tallies)
        keys.push_back({kv.first, &kv.second});
    std::sort(keys.begin(), keys.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    std::vector<ProfileEntry> out;
    out.reserve(keys.size());
    for (const auto &[key, t] : keys) {
        ProfileEntry e;
        e.mode = ExecMode(key >> 24);
        e.op = OsOp((key >> 16) & 0xff);
        e.routine = uint16_t(key & 0xffff);
        e.cycles = t->cycles;
        e.busTx = t->busTx;
        e.stallEst = t->busTx * busMissStall;
        std::copy(std::begin(t->missesI), std::end(t->missesI),
                  std::begin(e.missesI));
        std::copy(std::begin(t->missesD), std::end(t->missesD),
                  std::begin(e.missesD));
        out.push_back(e);
    }
    return out;
}

uint64_t
Profiler::totalCycles() const
{
    uint64_t n = 0;
    for (const auto &kv : tallies)
        n += kv.second.cycles;
    return n;
}

std::string
Profiler::routineName(uint16_t routine) const
{
    if (routine < routineNames.size() && !routineNames[routine].empty())
        return routineNames[routine];
    if (routine == 0xffff)
        return "-";
    return "routine" + std::to_string(routine);
}

std::string
Profiler::collapsed() const
{
    auto all = entries();
    std::stable_sort(all.begin(), all.end(),
                     [](const ProfileEntry &a, const ProfileEntry &b) {
                         return a.cycles > b.cycles;
                     });
    std::string out;
    for (const ProfileEntry &e : all) {
        if (e.cycles == 0)
            continue;
        out += execModeName(e.mode);
        if (e.mode != ExecMode::User) {
            out += ';';
            out += osOpName(e.op);
            if (e.routine != 0xffff) {
                out += ';';
                out += routineName(e.routine);
            }
        }
        out += ' ';
        out += std::to_string(e.cycles);
        out += '\n';
    }
    return out;
}

void
Profiler::busTransaction(const BusRecord &rec)
{
    ++tallyOf(rec.ctx.mode, rec.ctx.op, rec.ctx.routine).busTx;
}

void
Profiler::osEnter(Cycle cycle, CpuId cpu, OsOp op)
{
    closeSpan(cycle, cpu);
    cur[cpu].mode = op == OsOp::IdleLoop ? ExecMode::Idle : ExecMode::Kernel;
    cur[cpu].op = op;
}

void
Profiler::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    (void)op;
    closeSpan(cycle, cpu);
    cur[cpu].mode = ExecMode::User;
    cur[cpu].op = OsOp::None;
    cur[cpu].routine = 0xffff;
}

void
Profiler::contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to)
{
    (void)from;
    closeSpan(cycle, cpu);
    cur[cpu].pid = to;
}

} // namespace mpos::sim::trace
