/**
 * @file
 * Structured trace exporter: the simulator's version of the paper's
 * two-million-entry hardware trace buffer.
 *
 * The Tracer subscribes to the Monitor and records every event -- bus
 * transactions with their in-band context snapshot (mode, OS
 * operation, kernel routine, pid: the paper's escape references),
 * evictions, invalidations, OS entry/exit and context switches --
 * into the shared EventRing, and optionally serializes them to a
 * compact binary file. Two file modes mirror the two ways the paper's
 * buffer could be used:
 *
 *  - streaming: every event is appended as it happens (unbounded);
 *  - ring mode: only the ring's final contents are written at
 *    finish(), i.e. the last traceRingEntries events of the run.
 *
 * The binary format is a tagged record stream (see trace.cc for the
 * exact byte layout): a fixed header, 44-byte little-endian event
 * records, a routine symbol table, and an end marker carrying totals.
 * convertToJsonl() turns a trace file into one JSON object per line
 * with routine ids resolved to names.
 *
 * Everything here is pure observation: the Tracer never perturbs
 * simulated events, and with tracing off the machine holds a null
 * pointer (the checker discipline), so the feature costs nothing.
 */

#ifndef MPOS_SIM_TRACE_TRACE_HH
#define MPOS_SIM_TRACE_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/monitor.hh"
#include "sim/trace/ring.hh"
#include "sim/types.hh"

namespace mpos::sim::trace
{

/** The trace exporter. One per Machine, owned by it. */
class Tracer : public MonitorObserver
{
  public:
    /**
     * @param ring_entries Ring capacity in events.
     * @param file_path    Binary trace output; empty = ring only.
     * @param ring_mode    Write only the final ring contents instead
     *                     of streaming every event.
     */
    Tracer(uint64_t ring_entries, const std::string &file_path,
           bool ring_mode);
    ~Tracer() override;

    /**
     * Install the kernel routine symbol table (index = RoutineId).
     * Embedded in the binary trace so offline conversion can resolve
     * routine ids without the kernel image.
     */
    void
    setRoutineNames(std::vector<std::string> names)
    {
        routineNames = std::move(names);
    }

    /**
     * Flush the symbol table and end marker and close the file (in
     * ring mode, first write the ring contents). Idempotent; called
     * by the destructor if nobody else does.
     */
    void finish();

    /** The shared event ring (also read by the watchdog's dump). */
    const EventRing &ring() const { return events; }

    /** Events observed over the whole run. */
    uint64_t totalEvents() const { return events.total(); }

    /// @name MonitorObserver
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void evict(CpuId cpu, CacheKind kind, Addr line,
               const MonitorContext &by) override;
    void invalSharing(CpuId cpu, CacheKind kind, Addr line) override;
    void invalPageRealloc(CpuId cpu, Addr line) override;
    void flushPage(CpuId cpu, Addr page_addr,
                   uint32_t page_bytes) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    void osExit(Cycle cycle, CpuId cpu, OsOp op) override;
    void contextSwitch(Cycle cycle, CpuId cpu, Pid from,
                       Pid to) override;
    /// @}

  private:
    void record(const TraceEvent &ev);
    void writeEvent(const TraceEvent &ev);

    EventRing events;
    std::vector<std::string> routineNames;
    std::string path;
    FILE *file = nullptr;
    bool ringMode = false;
    bool finished = false;
    /** Cycle stamp for events the monitor reports without one. */
    Cycle lastCycle = 0;
};

/**
 * Convert a binary trace file to JSONL (one event object per line).
 * Returns true on success; on failure *err describes the problem.
 */
bool convertToJsonl(const std::string &trace_path,
                    const std::string &jsonl_path, std::string *err);

} // namespace mpos::sim::trace

#endif // MPOS_SIM_TRACE_TRACE_HH
