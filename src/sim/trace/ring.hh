/**
 * @file
 * The shared monitor-event ring buffer.
 *
 * The paper's hardware monitor stored the last two million bus records
 * in a bounded buffer that was read out after the run. EventRing is
 * that buffer: a fixed-capacity circular store of TraceEvent records,
 * fed by the Tracer (a MonitorObserver) and read by everything that
 * wants "the last N events" -- the binary trace exporter's ring mode
 * and the watchdog's diagnostic dump. Both consumers read the same
 * object, so a dump and a trace of the same run can never disagree.
 */

#ifndef MPOS_SIM_TRACE_RING_HH
#define MPOS_SIM_TRACE_RING_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mpos::sim::trace
{

/** Kinds of monitor events a trace can carry. */
enum class TraceEventKind : uint8_t
{
    Bus,              ///< Bus transaction (fill/upgrade/wb/uncached).
    Evict,            ///< Line displaced by a conflicting fill.
    InvalSharing,     ///< Line invalidated by another CPU's write.
    InvalPageRealloc, ///< I-line flushed on code-page reallocation.
    FlushPage,        ///< I-cache flush for a reallocated code page.
    OsEnter,          ///< CPU entered the OS (or the idle loop).
    OsExit,           ///< CPU left the OS.
    ContextSwitch,    ///< A different process was switched on.
};

/** Number of distinct TraceEventKind values. */
constexpr uint32_t numTraceEventKinds = 8;

/** Name of a trace event kind for reports and JSONL. */
const char *traceEventKindName(TraceEventKind k);

/**
 * One monitor event, uniformly shaped. The per-kind payload mirrors
 * the MonitorObserver callbacks:
 *
 *   Bus              addr=line  a=BusOp        b=CacheKind  ctx valid
 *   Evict            addr=line  a=CacheKind    b=0          ctx=by
 *   InvalSharing     addr=line  a=CacheKind    b=0
 *   InvalPageRealloc addr=line  a=0            b=0
 *   FlushPage        addr=page  a=page_bytes   b=0
 *   OsEnter/OsExit   addr=0     a=OsOp         b=0
 *   ContextSwitch    addr=0     a=from pid     b=to pid
 *
 * Events without an explicit cycle in the monitor interface (evicts,
 * invalidations, flushes) are stamped with the cycle of the most
 * recent clocked event, which is the bus slot that caused them.
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Bus;
    Cycle cycle = 0;
    CpuId cpu = 0;
    Addr addr = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    MonitorContext ctx;
};

/** Bounded circular buffer of the most recent TraceEvents. */
class EventRing
{
  public:
    explicit EventRing(uint64_t capacity)
        : buf(capacity ? capacity : 1)
    {
    }

    void
    push(const TraceEvent &ev)
    {
        buf[next % buf.size()] = ev;
        ++next;
    }

    /** Ring capacity in events. */
    uint64_t capacity() const { return buf.size(); }

    /** Events pushed over the whole run (>= size()). */
    uint64_t total() const { return next; }

    /** Events currently held: min(total, capacity). */
    uint64_t
    size() const
    {
        return next < buf.size() ? next : buf.size();
    }

    /** Held event i, oldest first (i in [0, size())). */
    const TraceEvent &
    tail(uint64_t i) const
    {
        return buf[(next - size() + i) % buf.size()];
    }

  private:
    std::vector<TraceEvent> buf;
    uint64_t next = 0;
};

} // namespace mpos::sim::trace

#endif // MPOS_SIM_TRACE_RING_HH
