/**
 * @file
 * The complete modeled machine: CPUs, coherent memory system, sync
 * transport and monitor, plus the cycle-driven execution loop.
 *
 * Machine::run() advances global time; at each cycle every non-busy
 * CPU pops and executes script items. Virtual references translate
 * through the CPU's TLB and fault into the executor (the kernel) on a
 * miss; physical references go straight to the memory system.
 */

#ifndef MPOS_SIM_MACHINE_HH
#define MPOS_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cpu.hh"
#include "sim/memsys.hh"
#include "sim/monitor.hh"
#include "sim/syncbus.hh"
#include "sim/types.hh"

namespace mpos::sim
{

/** The simulated multiprocessor. */
class Machine
{
  public:
    /**
     * @param cfg        Machine parameters.
     * @param num_locks  Number of kernel/user lock ids for the sync
     *                   transport.
     */
    explicit Machine(const MachineConfig &cfg, uint32_t num_locks = 64);

    /** Install the OS model; must happen before run(). */
    void setExecutor(Executor *executor) { exec = executor; }

    /** Advance the machine by cycles. */
    void run(Cycle cycles);

    Cycle now() const { return currentCycle; }

    Cpu &cpu(CpuId c) { return *cpus[c]; }
    const Cpu &cpu(CpuId c) const { return *cpus[c]; }
    uint32_t numCpus() const { return uint32_t(cpus.size()); }

    Monitor &monitor() { return mon; }
    MemorySystem &memory() { return mem; }
    SyncTransport &sync() { return syncTransport; }
    const MachineConfig &config() const { return cfg; }

    /**
     * Charge extra cycles to a CPU's current mode (used by the kernel
     * for synchronization costs).
     */
    void
    charge(CpuId c, Cycle cycles, bool stall)
    {
        cpus[c]->charge(stall ? 0 : cycles, stall ? cycles : 0);
    }

    /** Aggregate cycle accounting over all CPUs. */
    CycleAccount totalAccount() const;

  private:
    /**
     * Execute one script item on a CPU at time now. Returns true if
     * the item consumed time (markers do not).
     */
    bool step(Cpu &c, Cycle now);

    /** Translate a virtual item address; false => fault pushed. */
    bool translate(Cpu &c, ScriptItem &item, bool is_store, Addr &pa);

    MachineConfig cfg;
    Monitor mon;
    MemorySystem mem;
    SyncTransport syncTransport;
    std::vector<std::unique_ptr<Cpu>> cpus;
    Executor *exec = nullptr;
    Cycle currentCycle = 0;

    /** External-event poll period in cycles. */
    static constexpr Cycle pollPeriod = 256;
    /** Safety cap on zero-cost markers executed per step. */
    static constexpr uint32_t markerBudget = 256;
};

} // namespace mpos::sim

#endif // MPOS_SIM_MACHINE_HH
