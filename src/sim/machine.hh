/**
 * @file
 * The complete modeled machine: CPUs, coherent memory system, sync
 * transport and monitor, plus the cycle-driven execution loop.
 *
 * Machine::run() advances global time; at each cycle every non-busy
 * CPU pops and executes script items. Virtual references translate
 * through the CPU's TLB and fault into the executor (the kernel) on a
 * miss; physical references go straight to the memory system.
 *
 * The scheduler is event-driven: between activations it jumps straight
 * to the smallest per-CPU busyUntil instead of ticking through dead
 * cycles, which is observably identical because CPUs only act when
 * busyUntil <= now (MachineConfig::slowSim or MPOS_SLOW_SIM selects
 * the one-tick-at-a-time reference loop).
 */

#ifndef MPOS_SIM_MACHINE_HH
#define MPOS_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/check/checker.hh"
#include "sim/cpu.hh"
#include "sim/fault/plan.hh"
#include "sim/fault/watchdog.hh"
#include "sim/memsys.hh"
#include "sim/monitor.hh"
#include "sim/syncbus.hh"
#include "sim/trace/metrics.hh"
#include "sim/trace/profile.hh"
#include "sim/trace/trace.hh"
#include "sim/types.hh"

namespace mpos::sim
{

class ParallelCore;

/** The simulated multiprocessor. */
class Machine
{
  public:
    /**
     * @param cfg        Machine parameters.
     * @param num_locks  Number of kernel/user lock ids for the sync
     *                   transport.
     */
    explicit Machine(const MachineConfig &cfg, uint32_t num_locks = 64);
    ~Machine(); ///< Out of line: joins the parallel core's workers.

    /** Install the OS model; must happen before run(). */
    void setExecutor(Executor *executor) { exec = executor; }

    /** Advance the machine by cycles. */
    void run(Cycle cycles);

    Cycle now() const { return currentCycle; }

    Cpu &cpu(CpuId c) { return cpus[c]; }
    const Cpu &cpu(CpuId c) const { return cpus[c]; }
    uint32_t numCpus() const { return uint32_t(cpus.size()); }

    Monitor &monitor() { return mon; }
    MemorySystem &memory() { return mem; }
    const MemorySystem &memory() const { return mem; }
    SyncTransport &sync() { return syncTransport; }
    const SyncTransport &sync() const { return syncTransport; }
    const MachineConfig &config() const { return cfg; }

    /**
     * The invariant checker, or null when checking is off
     * (MachineConfig::check / MPOS_CHECK select it at construction).
     */
    Checker *checker() { return chk.get(); }
    const Checker *checker() const { return chk.get(); }

    /**
     * The forward-progress watchdog, or null when off
     * (MachineConfig::watchdogCycles / MPOS_WATCHDOG select it, and
     * fault injection auto-enables it with a default budget).
     */
    Watchdog *watchdog() { return wdp; }
    const Watchdog *watchdog() const { return wdp; }

    /**
     * The fault-injection plan, or null when off
     * (MachineConfig::faultSeed / MPOS_FAULTS select it).
     */
    FaultPlan *faults() { return plan.get(); }
    const FaultPlan *faults() const { return plan.get(); }

    /**
     * The trace exporter, or null when off (MachineConfig::trace /
     * MPOS_TRACE select it). Also allocated ring-only, with a small
     * ring, when the watchdog is on: its dump reads the shared ring.
     */
    trace::Tracer *tracer() { return trp; }
    const trace::Tracer *tracer() const { return trp; }

    /**
     * The time-sliced metrics engine, or null when off
     * (MachineConfig::metrics / MPOS_METRICS select it).
     */
    trace::Metrics *metrics() { return mxp; }
    const trace::Metrics *metrics() const { return mxp; }

    /**
     * The routine profiler, or null when off (MachineConfig::profile /
     * MPOS_PROFILE select it).
     */
    trace::Profiler *profiler() { return pfp; }
    const trace::Profiler *profiler() const { return pfp; }

    /**
     * The parallel epoch/barrier core, or null when the machine runs
     * serially (MachineConfig::simThreads / MPOS_SIM_THREADS select
     * it; it only engages when the machine qualifies: fast path,
     * busOccupancy == 0, and no checker/watchdog/fault plan, all of
     * which observe mid-window state and force the serial core).
     */
    const ParallelCore *parallel() const { return par.get(); }

    /**
     * Charge extra cycles to a CPU's current mode (used by the kernel
     * for synchronization costs).
     */
    void
    charge(CpuId c, Cycle cycles, bool stall)
    {
        cpus[c].charge(stall ? 0 : cycles, stall ? cycles : 0);
    }

    /** Aggregate cycle accounting over all CPUs. */
    CycleAccount totalAccount() const;

    /// @name Snapshot save/restore
    /// Serializes every cycle-determining structure: the clock, each
    /// CPU's context/busy horizon/accounting/TLB/pending script, the
    /// coherent memory system, the sync transport, the monitor's
    /// always-on counters, and the fault plan's runtime counters.
    /// Observer layers (checker, watchdog, tracer, metrics, profiler)
    /// are wiring, not state: a restored machine reconstructs them
    /// fresh, exactly as an uninterrupted run would have them at the
    /// same point with no observers attached during the skipped span.
    /// Restoring requires a machine built from the same config (the
    /// caller guards this with the config hash); structural mismatches
    /// raise util::SimError(SnapshotCorrupt).
    /// @{
    void saveState(util::ByteWriter &w) const;
    void restoreState(util::ByteReader &r);
    /// @}

  private:
    /**
     * Execute one script item on a CPU at time now. Returns true if
     * the item consumed time (markers do not).
     */
    bool step(Cpu &c, Cycle now);

    /** Poll + execute a ready CPU until it has consumed currentCycle.
     *  Shared by the fast scheduler and the reference loop; forced
     *  inline so each loop keeps a specialized copy (it runs once per
     *  CPU activation, the hottest call edge in the simulator). */
    [[gnu::always_inline]] inline void activate(Cpu &c);

    /** Event-driven scheduler: scan, execute, jump to the next event.
     */
    void runFast(Cycle target);

    /** One-cycle-at-a-time reference scheduler (slowSim). */
    void runReference(Cycle target);

    /** Translate a virtual address; false => faulted into the exec.
     *  Inline: runs once per virtual script item. */
    bool
    translate(Cpu &c, Addr vaddr, bool is_store, Addr &pa)
    {
        const Addr vpage = vaddr >> pageShift;
        const TlbEntry *e = c.tlb.translate(c.ctx.pid, vpage);
        if (!e) {
            exec->fault(c.id, vaddr, is_store, false);
            return false;
        }
        if (is_store && !e->writable) {
            exec->fault(c.id, vaddr, is_store, true);
            return false;
        }
        if (chk)
            chk->checkTlbEntry(c.id, *e);
        pa = (e->ppage << pageShift) | (vaddr & pageMask);
        return true;
    }

    MachineConfig cfg;
    Monitor mon;
    MemorySystem mem;
    SyncTransport syncTransport;
    /** log2(pageBytes) / pageBytes-1: translation without dividing. */
    uint32_t pageShift = 0;
    Addr pageMask = 0;
    /** Execution cycles for one full instruction line. */
    Cycle lineExecCycles = 0;
    /** By value: the scheduler scans busyUntil every interesting
     *  cycle, so one less indirection matters. */
    std::vector<Cpu> cpus;
    Executor *exec = nullptr;
    /** Invariant checker; allocated only when checking is enabled. */
    std::unique_ptr<Checker> chk;
    /** Forward-progress watchdog; allocated only when enabled. */
    std::unique_ptr<Watchdog> wd;
    /** Raw alias of wd used as the hot-path null gate. */
    Watchdog *wdp = nullptr;
    /** Fault-injection schedule; allocated only when enabled. */
    std::unique_ptr<FaultPlan> plan;
    /** Trace exporter; allocated when tracing (or the watchdog, which
     *  borrows the ring for its dump) is enabled. */
    std::unique_ptr<trace::Tracer> tr;
    /** Raw alias of tr: the null gate. */
    trace::Tracer *trp = nullptr;
    /** Metrics engine; allocated only when enabled. */
    std::unique_ptr<trace::Metrics> mx;
    /** Raw alias of mx: the null gate. */
    trace::Metrics *mxp = nullptr;
    /** Routine profiler; allocated only when enabled. */
    std::unique_ptr<trace::Profiler> pf;
    /** Raw alias of pf: the null gate. */
    trace::Profiler *pfp = nullptr;
    /** Parallel epoch/barrier core; null when running serially. */
    std::unique_ptr<ParallelCore> par;
    Cycle currentCycle = 0;
    /** Reference mode: tick one cycle at a time (no cycle skipping). */
    bool slowSim = false;

    /** External-event poll period in cycles. */
    static constexpr Cycle pollPeriod = 256;
    /** Safety cap on zero-cost markers executed per step. */
    static constexpr uint32_t markerBudget = 256;

    /** The parallel core drives step()/runFast() and the CPU array
     *  directly; it is an extension of the scheduler, not a client. */
    friend class ParallelCore;
};

} // namespace mpos::sim

#endif // MPOS_SIM_MACHINE_HH
