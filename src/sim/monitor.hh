/**
 * @file
 * The "hardware monitor": a perturbation-free observer of all bus and
 * cache events plus the in-band OS event channel.
 *
 * The paper's monitor snooped the backplane and stored two million
 * {address, CPU} records, with OS events smuggled in as uncached
 * escape references. In the simulator, the monitor is an event hub:
 * the machine reports every bus transaction, eviction and invalidation
 * together with a context snapshot (mode, OS operation, kernel routine,
 * pid), and the kernel reports OS entry/exit and context-switch events.
 * Analysis components subscribe as MonitorObserver.
 */

#ifndef MPOS_SIM_MONITOR_HH
#define MPOS_SIM_MONITOR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mpos::sim
{

/** One bus transaction as seen by the monitor. */
struct BusRecord
{
    Cycle cycle = 0;
    CpuId cpu = 0;
    Addr lineAddr = 0;
    BusOp op = BusOp::Read;
    CacheKind cache = CacheKind::Data;
    MonitorContext ctx;
};

/** Interface for analysis components that consume monitor events. */
class MonitorObserver
{
  public:
    virtual ~MonitorObserver() = default;

    /** A bus transaction (miss fill, upgrade, writeback, uncached). */
    virtual void busTransaction(const BusRecord &rec) { (void)rec; }

    /**
     * A line was displaced from cpu's cache by a conflicting fill.
     * @param by Context of the reference that caused the displacement.
     */
    virtual void
    evict(CpuId cpu, CacheKind kind, Addr line, const MonitorContext &by)
    {
        (void)cpu; (void)kind; (void)line; (void)by;
    }

    /** A line was invalidated by another CPU's write (coherence). */
    virtual void
    invalSharing(CpuId cpu, CacheKind kind, Addr line)
    {
        (void)cpu; (void)kind; (void)line;
    }

    /** I-cache lines flushed because a code page was reallocated.
     *  Fired once per line that was actually resident. */
    virtual void
    invalPageRealloc(CpuId cpu, Addr line)
    {
        (void)cpu; (void)line;
    }

    /** Code-page reallocation flushed cpu's I-cache. page_bytes == 0
     *  denotes a full-cache flush (the measured machine's algorithm);
     *  otherwise the given range was flushed. Used by re-simulation. */
    virtual void
    flushPage(CpuId cpu, Addr page_addr, uint32_t page_bytes)
    {
        (void)cpu; (void)page_addr; (void)page_bytes;
    }

    /** CPU entered the OS (op != IdleLoop) or the idle loop. */
    virtual void
    osEnter(Cycle cycle, CpuId cpu, OsOp op)
    {
        (void)cycle; (void)cpu; (void)op;
    }

    /** CPU left the OS and resumed (or will resume) the application. */
    virtual void
    osExit(Cycle cycle, CpuId cpu, OsOp op)
    {
        (void)cycle; (void)cpu; (void)op;
    }

    /** A different process was switched onto the CPU. */
    virtual void
    contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to)
    {
        (void)cycle; (void)cpu; (void)from; (void)to;
    }
};

/** Event hub plus always-on transaction counters. */
class Monitor
{
  public:
    void attach(MonitorObserver *obs) { observers.push_back(obs); }
    void detach(MonitorObserver *obs);

    /**
     * True if any observer is attached. Producers may use this to
     * skip building event records entirely (the warmup fast path);
     * countTransaction() keeps the always-on counters advancing.
     */
    bool listening() const { return !observers.empty(); }

    /** Advance the transaction counters without building a record. */
    void
    countTransaction(ExecMode mode)
    {
        ++txCount;
        if (mode != ExecMode::User)
            ++txOs;
    }

    void
    busTransaction(const BusRecord &rec)
    {
        ++txCount;
        if (rec.ctx.mode != ExecMode::User)
            ++txOs;
        for (auto *o : observers)
            o->busTransaction(rec);
    }

    void
    evict(CpuId cpu, CacheKind kind, Addr line, const MonitorContext &by)
    {
        for (auto *o : observers)
            o->evict(cpu, kind, line, by);
    }

    void
    invalSharing(CpuId cpu, CacheKind kind, Addr line)
    {
        for (auto *o : observers)
            o->invalSharing(cpu, kind, line);
    }

    void
    invalPageRealloc(CpuId cpu, Addr line)
    {
        for (auto *o : observers)
            o->invalPageRealloc(cpu, line);
    }

    void
    flushPage(CpuId cpu, Addr page_addr, uint32_t page_bytes)
    {
        for (auto *o : observers)
            o->flushPage(cpu, page_addr, page_bytes);
    }

    void
    osEnter(Cycle cycle, CpuId cpu, OsOp op)
    {
        for (auto *o : observers)
            o->osEnter(cycle, cpu, op);
    }

    void
    osExit(Cycle cycle, CpuId cpu, OsOp op)
    {
        for (auto *o : observers)
            o->osExit(cycle, cpu, op);
    }

    void
    contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to)
    {
        for (auto *o : observers)
            o->contextSwitch(cycle, cpu, from, to);
    }

    uint64_t transactions() const { return txCount; }
    uint64_t osTransactions() const { return txOs; }

    /**
     * Restore the always-on transaction counters (snapshot restore).
     * Observers are wiring, not state: a restored machine re-attaches
     * them exactly as a cold run would after warmup.
     */
    void
    restoreCounters(uint64_t tx_count, uint64_t tx_os)
    {
        txCount = tx_count;
        txOs = tx_os;
    }

  private:
    std::vector<MonitorObserver *> observers;
    uint64_t txCount = 0;
    uint64_t txOs = 0;
};

} // namespace mpos::sim

#endif // MPOS_SIM_MONITOR_HH
