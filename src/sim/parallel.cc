#include "sim/parallel.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "util/logging.hh"

namespace mpos::sim
{

namespace
{

/** Probe keys for per-cache touched sets (cache id in the top bits). */
constexpr uint64_t kIc = uint64_t(1) << 60;
constexpr uint64_t kL1 = uint64_t(2) << 60;
constexpr uint64_t kL2 = uint64_t(3) << 60;

} // namespace

ParallelCore::ParallelCore(Machine &machine, uint32_t num_threads)
    : m(machine), nThreads(num_threads), serialChunk(minSerialChunk)
{
    const uint32_t ncpu = uint32_t(m.cpus.size());
    workers = std::vector<Worker>(nThreads);
    probes.resize(ncpu);
    for (uint32_t w = 0; w < nThreads; ++w) {
        for (CpuId c = w; c < ncpu; c += nThreads)
            workers[w].caps.emplace_back(workers[w].arena);
    }
    gang.reserve(nThreads - 1);
    for (uint32_t w = 1; w < nThreads; ++w)
        gang.emplace_back([this, w] { workerMain(w); });
}

ParallelCore::~ParallelCore()
{
    phase = Phase::Stop;
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
    for (std::thread &t : gang)
        t.join();
}

void
ParallelCore::workerMain(uint32_t w)
{
    uint64_t seen = 0;
    for (;;) {
        uint64_t e = epoch.load(std::memory_order_acquire);
        while (e == seen) {
            epoch.wait(e, std::memory_order_acquire);
            e = epoch.load(std::memory_order_acquire);
        }
        seen = e;
        const Phase p = phase;
        if (p == Phase::Stop)
            return;
        doPhase(p, w);
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            pending.notify_one();
    }
}

void
ParallelCore::runPhase(Phase p)
{
    phase = p;
    pending.store(nThreads - 1, std::memory_order_relaxed);
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
    doPhase(p, 0);
    uint32_t left = pending.load(std::memory_order_acquire);
    while (left != 0) {
        pending.wait(left, std::memory_order_acquire);
        left = pending.load(std::memory_order_acquire);
    }
}

void
ParallelCore::doPhase(Phase p, uint32_t w)
{
    Worker &wk = workers[w];
    const uint32_t ncpu = uint32_t(m.cpus.size());
    if (p == Phase::Probe) {
        for (CpuId c = w; c < ncpu; c += nThreads)
            probeCpu(c, wk, probes[c]);
        return;
    }
    // Commit: previous window's captures were already replayed, so
    // the arena backing them can be recycled wholesale.
    wk.arena.reset();
    uint32_t slot = 0;
    for (CpuId c = w; c < ncpu; c += nThreads) {
        wk.caps[slot] = WindowCapture(wk.arena);
        commitCpu(c, wk, wk.caps[slot]);
        ++slot;
    }
}

void
ParallelCore::probeCpu(CpuId cpu, Worker &w, ProbeResult &out)
{
    Cpu &c = m.cpus[cpu];
    MemorySystem &mem = m.mem;
    const MachineConfig &cfg = m.cfg;
    CpuCaches &h = mem.caches(cpu);

    out.footprint.clear();
    out.writeSet.clear();
    out.committed = 0;

    const Addr lineMask = ~Addr(cfg.lineBytes - 1);
    const uint64_t ownBit = uint64_t(1) << cpu;
    const Cycle lineExec = m.lineExecCycles;

    auto &touched = w.touchedSets;
    auto &changed = w.stateChanged;
    touched.clear();
    changed.clear();

    Cycle t = c.busyUntil;
    uint32_t foot = 0;

    const auto addFoot = [&](Addr line) {
        out.footprint.push_back(line);
        ++foot;
    };
    const auto addWrite = [&](Addr line) {
        out.writeSet.push_back(line);
        ++foot;
    };
    /** Every line the probed fill could displace from the L2 set: its
     *  sharers byte is cleared on eviction, so it is a potential
     *  write. Lines filled earlier in the window (the other possible
     *  victims) are already in the write set. */
    const auto addVictims = [&](Addr line) {
        h.l2d.forEachInSet(h.l2d.setOf(line),
                           [&](Addr v) { addWrite(v); });
    };

    /** Data reference; false = the window must cut before it.
     *  prefetch: the CPU charge is exactly one cycle regardless of
     *  the outcome, so the duration is exact even when the
     *  classification is conservative. */
    const auto dataRef = [&](Addr pa, bool is_store,
                             bool prefetch) -> bool {
        const Addr line = pa & lineMask;
        const uint64_t l1k = kL1 | h.l1d.setOf(line);
        const uint64_t l2k = kL2 | h.l2d.setOf(line);
        const uint64_t remote = mem.sharersMask(line) & ~ownBit;
        if (changed.count(line) || touched.count(l1k) ||
            touched.count(l2k)) {
            // An earlier probed fill may have changed what this
            // reference hits. Duration: hit lower bound. Side
            // effects: everything a miss could do.
            if (remote)
                return false;
            addWrite(line);
            addVictims(line);
            touched.insert(l1k);
            touched.insert(l2k);
            changed.insert(line);
            t += 1;
            return true;
        }
        const bool l1hit = h.l1d.contains(line);
        const bool l2hit = l1hit || h.l2d.contains(line);
        if (!l2hit) {
            // Fill: reads the sharers mask, sets our bit, may evict.
            if (remote)
                return false;
            addFoot(line);
            addWrite(line);
            addVictims(line);
            touched.insert(l1k);
            touched.insert(l2k);
            changed.insert(line);
            t += prefetch ? 1 : 1 + cfg.busMissStall;
            return true;
        }
        Cycle dur = 1;
        if (!l1hit) {
            dur += cfg.l2HitStall;
            touched.insert(l1k); // L1 fill displaces locally
        }
        if (is_store) {
            if (h.getState(line) == Coh::Shared) {
                // Upgrade: with remote copies it invalidates them;
                // without, it is a lone captured bus record.
                if (remote)
                    return false;
                dur += cfg.busMissStall;
            }
            addWrite(line); // sharers |= ownBit and the state write
            changed.insert(line);
        }
        // Load hits read no shared metadata: no footprint entry.
        t += prefetch ? 1 : dur;
        return true;
    };

    /** Instruction-line fetch; false = cut. */
    const auto ifetchRef = [&](Addr pa) -> bool {
        const Addr line = pa & lineMask;
        const uint64_t ick = kIc | h.icache.setOf(line);
        const bool unknown = touched.count(ick) != 0;
        if (!unknown && h.icache.contains(line)) {
            t += lineExec;
            return true;
        }
        // Miss (or cannot tell): snoopRead reads the sharers mask and
        // would downgrade remote D-copies -- only safe with none.
        if (mem.sharersMask(line) & ~ownBit)
            return false;
        addFoot(line);
        touched.insert(ick); // the fill displaces an I-line (local)
        t += unknown ? lineExec : lineExec + cfg.busMissStall;
        return true;
    };

    /** Probe-time translation; false = a fault would cut here. The
     *  TLB cannot change inside a window (kernel paths are cut), so
     *  the commit-time translation provably agrees. */
    const auto vtranslate = [&](Addr vaddr, bool is_store,
                                Addr &pa) -> bool {
        const TlbEntry *e =
            c.tlb.lookup(c.ctx.pid, vaddr >> m.pageShift);
        if (!e || (is_store && !e->writable))
            return false;
        pa = (e->ppage << m.pageShift) | (vaddr & m.pageMask);
        return true;
    };

    const uint64_t n = c.script.size();
    uint64_t i = 0;
    for (;
         t < probeLimit && i < n && i < maxProbeItems &&
         foot < maxFootprintLines;
         ++i) {
        const ScriptItem &it = c.script.at(i);
        Addr pa = it.addr;
        bool safe = false;
        switch (it.kind) {
          case ItemKind::Think:
            t += it.addr;
            safe = true;
            break;
          case ItemKind::IFetchLine:
            if (it.space != AddrSpace::Virtual ||
                vtranslate(it.addr, false, pa))
                safe = ifetchRef(pa);
            break;
          case ItemKind::Load:
          case ItemKind::Store: {
            const bool st_ = it.kind == ItemKind::Store;
            if (it.space != AddrSpace::Virtual ||
                vtranslate(it.addr, st_, pa))
                safe = dataRef(pa, st_, false);
            break;
          }
          case ItemKind::PrefetchLoad:
          case ItemKind::PrefetchStore: {
            const bool st_ = it.kind == ItemKind::PrefetchStore;
            if (it.space != AddrSpace::Virtual ||
                vtranslate(it.addr, st_, pa))
                safe = dataRef(pa, st_, true);
            break;
          }
          default:
            // Marker, uncached, bypass: executor / device / snoop
            // interaction -- always a window cut.
            safe = false;
            break;
        }
        if (!safe)
            break;
    }
    out.cutAt = t;
}

void
ParallelCore::commitCpu(CpuId cpu, Worker &w, WindowCapture &cap)
{
    (void)w;
    Cpu &c = m.cpus[cpu];
    const Cycle wend = windowEnd;
    uint64_t items = 0;

    MemorySystem::setWindowCapture(&cap);
    while (c.busyUntil < wend) {
        // The lockstep scheduler activates a CPU exactly when the
        // global cycle reaches its busyUntil (jump targets are
        // sampled minima, and nothing inside a window charges a
        // foreign CPU), so committing at now = busyUntil replicates
        // the serial activation times and event stamps bit for bit.
        const Cycle now = c.busyUntil;
        if (now >= c.nextPollAt) {
            // The window is capped at the executor's nextEventAt()
            // for every poll-eligible CPU, making the poll itself a
            // provable no-op; only the schedule advance remains.
            c.nextPollAt = now + Machine::pollPeriod;
        }
        if (c.script.empty())
            util::panic("parallel window ran past its probed script");
        const ItemKind k = c.script.front().kind;
        if (k == ItemKind::Marker || k == ItemKind::UncachedLoad ||
            k == ItemKind::UncachedStore || k == ItemKind::BypassLoad ||
            k == ItemKind::BypassStore)
            util::panic("parallel window reached an unprobed item kind");
        if (!m.step(c, now))
            util::panic("parallel window hit a fault the probe missed");
        ++items;
    }
    MemorySystem::setWindowCapture(nullptr);
    probes[cpu].committed = items;
}

void
ParallelCore::mergeAndReplay()
{
    // K-way merge of the per-CPU captures by (cycle, cpu): the serial
    // scheduler delivers same-cycle activations in ascending CPU id,
    // and each capture is already in that CPU's issue order.
    struct Cursor
    {
        const WindowCapture *cap;
        size_t i;
        CpuId cpu;
    };
    Cursor curs[64];
    uint32_t ncur = 0;
    for (uint32_t w = 0; w < nThreads; ++w) {
        uint32_t slot = 0;
        for (CpuId c = w; c < uint32_t(m.cpus.size()); c += nThreads) {
            const WindowCapture &cap = workers[w].caps[slot++];
            if (!cap.events.empty())
                curs[ncur++] = {&cap, 0, c};
        }
    }
    while (ncur) {
        uint32_t best = 0;
        for (uint32_t k = 1; k < ncur; ++k) {
            const auto &a = curs[k].cap->events[curs[k].i].rec;
            const auto &b = curs[best].cap->events[curs[best].i].rec;
            if (a.cycle < b.cycle ||
                (a.cycle == b.cycle && curs[k].cpu < curs[best].cpu))
                best = k;
        }
        const WindowCapture::Event &ev =
            curs[best].cap->events[curs[best].i];
        if (ev.isEvict)
            m.mem.replayEvict(ev);
        else
            m.mem.replayBus(ev.rec);
        if (++curs[best].i == curs[best].cap->events.size())
            curs[best] = curs[--ncur];
    }
}

bool
ParallelCore::tryWindow(Cycle target)
{
    const Cycle start = m.currentCycle;
    Cycle limit = std::min(target, start + epochCycles);
    for (Cpu &c : m.cpus) {
        // Cap at the next point an interrupt poll could act, so every
        // poll inside the window is a no-op. Kernel-mode or
        // interrupt-disabled CPUs never poll (and cannot change
        // eligibility inside a window: that takes a marker, which
        // cuts).
        if (c.intrDisable == 0 && c.ctx.mode != ExecMode::Kernel)
            limit = std::min(limit, m.exec->nextEventAt(c.id));
    }
    if (limit < start + minWindowCycles)
        return false;

    probeLimit = limit;
    runPhase(Phase::Probe);

    Cycle wend = limit;
    for (const ProbeResult &p : probes)
        wend = std::min(wend, p.cutAt);
    if (wend < start + minWindowCycles) {
        ++st.shortAborts;
        return false;
    }

    // Ordered conflict rule: a window is only safe if no CPU writes a
    // line's shared metadata (sharers byte, coherence state) that any
    // other CPU reads or writes. Concurrent read-hits on a line are
    // fine; the E->M "silent" upgrade is not silent to the sharers
    // byte, which is why every store line is in its write set.
    accessMap.clear();
    for (CpuId c = 0; c < uint32_t(m.cpus.size()); ++c) {
        const uint64_t bit = uint64_t(1) << c;
        for (Addr line : probes[c].footprint)
            accessMap[line].first |= bit;
        for (Addr line : probes[c].writeSet) {
            auto &e = accessMap[line];
            e.first |= bit;
            e.second |= bit;
        }
    }
    for (const auto &kv : accessMap) {
        const uint64_t readers = kv.second.first;
        const uint64_t writers = kv.second.second;
        if (!writers)
            continue;
        if ((writers & (writers - 1)) || (readers & ~writers)) {
            ++st.conflictAborts;
            return false;
        }
    }

    windowEnd = wend;
    runPhase(Phase::Commit);
    mergeAndReplay();

    Cycle next = target;
    for (Cpu &c : m.cpus)
        next = std::min(next, c.busyUntil);
    m.currentCycle = next;

    ++st.windows;
    st.windowCycles += next - start;
    for (const ProbeResult &p : probes)
        st.windowItems += p.committed;
    return true;
}

void
ParallelCore::run(Cycle target)
{
    while (m.currentCycle < target) {
        if (tryWindow(target)) {
            serialChunk = minSerialChunk;
            continue;
        }
        // Contended or short window: fall back to the lockstep fast
        // path for an adaptively growing chunk so repeated failures
        // do not pay the probe overhead every kilocycle.
        ++st.serialChunks;
        m.runFast(std::min(target, m.currentCycle + serialChunk));
        if (serialChunk < maxSerialChunk)
            serialChunk *= 2;
    }
}

} // namespace mpos::sim
