/**
 * @file
 * Forward-progress watchdog for the simulated machine.
 *
 * The paper's subject -- spinlock contention in a multiprocessor OS --
 * has an exact analogue inside the simulator: a livelocked or
 * deadlocked simulated kernel spins its CPUs forever and the host
 * process hangs. The watchdog turns that hang into a typed,
 * diagnosable failure.
 *
 * Progress is defined as work that can eventually unblock someone
 * else: a CPU retiring a memory reference, or a sync-transport
 * acquire succeeding / lock being released. Think items, markers and
 * failed acquire polls are *not* progress -- so a pure spin deadlock
 * trips, while the idle loop (which fetches instructions) never does.
 * If no progress lands for `budget` cycles, poll() throws
 * util::SimError(WatchdogTrip) carrying a structured dump: per-CPU
 * mode/op/routine/pid, the kernel's lock table (via an installed
 * diagnostic provider -- the sim layer knows nothing about lock
 * formats), and the last N monitor events.
 *
 * Zero-cost when off: producers hold a Watchdog pointer that is null
 * unless MachineConfig::watchdogCycles (or MPOS_WATCHDOG) is set, so
 * every hook is one predictable branch -- the checker discipline.
 */

#ifndef MPOS_SIM_FAULT_WATCHDOG_HH
#define MPOS_SIM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/monitor.hh"
#include "sim/types.hh"

namespace mpos::sim
{

class Machine;

/** The forward-progress watchdog. One per Machine, owned by it. */
class Watchdog : public MonitorObserver
{
  public:
    Watchdog(const MachineConfig &cfg, Cycle budget_cycles);

    /** A CPU retired a memory reference / a lock handed over. */
    void noteProgress() { progressed = true; }

    /**
     * Install the kernel's lock-table describer; its text is embedded
     * verbatim in the dump. The sim layer has no lock vocabulary.
     */
    void
    setDiagnosticProvider(std::function<std::string()> provider)
    {
        diagProvider = std::move(provider);
    }

    /** Schedule a synthetic trip (fault injection). 0 cancels. */
    void forceTripAt(Cycle cycle) { tripAt = cycle; }

    /**
     * Called by the schedulers once per simulated time step. Throws
     * util::SimError(WatchdogTrip) when the budget is exhausted or a
     * synthetic trip is due.
     */
    void poll(const Machine &m, Cycle now);

    Cycle budget() const { return budgetCycles; }
    Cycle lastProgress() const { return lastProgressCycle; }

    /** The structured diagnostic dump (also thrown on a trip). */
    std::string dump(const Machine &m, Cycle now,
                     const char *reason) const;

    /// @name MonitorObserver: bus settles are progress; everything
    /// observed feeds the last-events ring in the dump.
    /// @{
    void busTransaction(const BusRecord &rec) override;
    void evict(CpuId cpu, CacheKind kind, Addr line,
               const MonitorContext &by) override;
    void invalSharing(CpuId cpu, CacheKind kind, Addr line) override;
    void osEnter(Cycle cycle, CpuId cpu, OsOp op) override;
    void osExit(Cycle cycle, CpuId cpu, OsOp op) override;
    void contextSwitch(Cycle cycle, CpuId cpu, Pid from,
                       Pid to) override;
    /// @}

  private:
    enum class EvKind : uint8_t
    {
        Bus, Evict, InvalSharing, OsEnter, OsExit, ContextSwitch,
    };

    struct RingEvent
    {
        EvKind kind;
        Cycle cycle;
        CpuId cpu;
        Addr addr;
        uint64_t a; ///< BusOp / CacheKind / OsOp / from-pid.
        uint64_t b; ///< CacheKind / to-pid.
    };

    void
    record(const RingEvent &ev)
    {
        ring[ringNext % ringSize] = ev;
        ++ringNext;
    }

    static constexpr uint32_t ringSize = 32;

    MachineConfig cfg;
    Cycle budgetCycles;
    Cycle lastProgressCycle = 0;
    Cycle tripAt = 0;
    bool progressed = false;
    std::function<std::string()> diagProvider;
    RingEvent ring[ringSize] = {};
    uint64_t ringNext = 0;
};

} // namespace mpos::sim

#endif // MPOS_SIM_FAULT_WATCHDOG_HH
