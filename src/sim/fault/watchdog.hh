/**
 * @file
 * Forward-progress watchdog for the simulated machine.
 *
 * The paper's subject -- spinlock contention in a multiprocessor OS --
 * has an exact analogue inside the simulator: a livelocked or
 * deadlocked simulated kernel spins its CPUs forever and the host
 * process hangs. The watchdog turns that hang into a typed,
 * diagnosable failure.
 *
 * Progress is defined as work that can eventually unblock someone
 * else: a CPU retiring a memory reference, or a sync-transport
 * acquire succeeding / lock being released. Think items, markers and
 * failed acquire polls are *not* progress -- so a pure spin deadlock
 * trips, while the idle loop (which fetches instructions) never does.
 * If no progress lands for `budget` cycles, poll() throws
 * util::SimError(WatchdogTrip) carrying a structured dump: per-CPU
 * mode/op/routine/pid, the kernel's lock table (via an installed
 * diagnostic provider -- the sim layer knows nothing about lock
 * formats), and the tail of the shared monitor-event ring (the same
 * trace::EventRing the trace exporter fills, so a dump and a trace of
 * the same run can never disagree about the final events).
 *
 * Zero-cost when off: producers hold a Watchdog pointer that is null
 * unless MachineConfig::watchdogCycles (or MPOS_WATCHDOG) is set, so
 * every hook is one predictable branch -- the checker discipline.
 */

#ifndef MPOS_SIM_FAULT_WATCHDOG_HH
#define MPOS_SIM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/monitor.hh"
#include "sim/trace/ring.hh"
#include "sim/types.hh"

namespace mpos::sim
{

class Machine;

/** The forward-progress watchdog. One per Machine, owned by it. */
class Watchdog : public MonitorObserver
{
  public:
    Watchdog(const MachineConfig &cfg, Cycle budget_cycles);

    /** A CPU retired a memory reference / a lock handed over. */
    void noteProgress() { progressed = true; }

    /**
     * Install the kernel's lock-table describer; its text is embedded
     * verbatim in the dump. The sim layer has no lock vocabulary.
     */
    void
    setDiagnosticProvider(std::function<std::string()> provider)
    {
        diagProvider = std::move(provider);
    }

    /**
     * Install the shared monitor-event ring (owned by the machine's
     * Tracer). The dump renders its most recent entries.
     */
    void setEventRing(const trace::EventRing *ring) { events = ring; }

    /** Schedule a synthetic trip (fault injection). 0 cancels. */
    void forceTripAt(Cycle cycle) { tripAt = cycle; }

    /**
     * Called by the schedulers once per simulated time step. Throws
     * util::SimError(WatchdogTrip) when the budget is exhausted or a
     * synthetic trip is due.
     */
    void poll(const Machine &m, Cycle now);

    Cycle budget() const { return budgetCycles; }
    Cycle lastProgress() const { return lastProgressCycle; }

    /** The structured diagnostic dump (also thrown on a trip). */
    std::string dump(const Machine &m, Cycle now,
                     const char *reason) const;

    /// @name MonitorObserver: bus settles are progress. Event history
    /// for the dump comes from the shared ring, not a private copy.
    /// @{
    void busTransaction(const BusRecord &rec) override;
    /// @}

  private:
    /** Most recent ring entries rendered into a dump. */
    static constexpr uint64_t dumpEvents = 32;

    MachineConfig cfg;
    Cycle budgetCycles;
    Cycle lastProgressCycle = 0;
    Cycle tripAt = 0;
    bool progressed = false;
    std::function<std::string()> diagProvider;
    const trace::EventRing *events = nullptr;
};

} // namespace mpos::sim

#endif // MPOS_SIM_FAULT_WATCHDOG_HH
