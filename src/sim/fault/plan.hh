/**
 * @file
 * Deterministic fault-injection schedule.
 *
 * A FaultPlan decides, entirely at construction time and entirely from
 * a 64-bit seed, which faults a run will suffer and when: forced
 * process-slot / shared-memory / user-lock-slot exhaustion, workload
 * script truncation, perturbed kernel lock hold times, and a synthetic
 * watchdog trip. No wall clock, no runtime randomness: firing is pure
 * counting against the (already deterministic) simulated call
 * sequences, so the same seed always produces the same fault schedule,
 * the same failure, and the same diagnostic dump -- the property the
 * `mpos_fuzz --faults` campaign asserts by running every seed twice.
 *
 * Producers hold a FaultPlan pointer that is null unless
 * MachineConfig::faultSeed (or MPOS_FAULTS) is set: the same zero-cost
 * null-pointer-gate discipline as the checker and the watchdog.
 */

#ifndef MPOS_SIM_FAULT_PLAN_HH
#define MPOS_SIM_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

/// @name Deterministic process-crash points
/// Service-level fault injection for the crash-recovery tests: a
/// named point in the code (journal append, snapshot write, analysis
/// record) calls crashPoint(name), and when the environment selects
/// that point -- MPOS_CRASH="<name>" or "<name>:<n>" (die on the n-th
/// hit, default 1) -- the process dies with _exit(137), exactly as a
/// kill -9 would look to the journal. Unset MPOS_CRASH costs one
/// getenv at first use and an early-out string compare per hit.
/// @{

/**
 * True when this hit of the named point is the scheduled fatal one.
 * For torn-write experiments: the caller commits its partial bytes,
 * then calls crashNow(). Plain call sites use crashPoint() instead.
 */
bool crashPointArmed(const char *name);

/** Die with _exit(137) if this hit of the point is the scheduled one. */
void crashPoint(const char *name);

/** Announce the injected crash on stderr and _exit(137). */
[[noreturn]] void crashNow(const char *name);
/// @}

/** One seeded, pre-drawn fault schedule. Owned by the Machine. */
class FaultPlan
{
  public:
    FaultPlan(uint64_t seed, Cycle horizon);

    /// @name Static schedule (drawn once from the seed; public so
    /// tests and describe() can introspect it).
    /// @{
    /** The Nth process-slot allocation fails; 0 = never. */
    uint32_t slotExhaustAfter = 0;
    /** The Nth kernel shared-memory allocation fails; 0 = never. */
    uint32_t shmExhaustAfter = 0;
    /** The Nth user-lock-slot allocation fails; 0 = never. */
    uint32_t userLockExhaustAfter = 0;
    /** Lock ids whose (id % 32) bit is set get extra hold time. */
    uint32_t perturbLockMask = 0;
    /** Extra cycles charged while holding a perturbed lock. */
    Cycle lockHoldExtra = 0;
    /** Every Nth generated chunk/script is truncated; 0 = never. */
    uint32_t truncateEvery = 0;
    /** Percentage of a truncated chunk that survives. */
    uint32_t truncateKeepPct = 100;
    /** Cycle of a forced synthetic watchdog trip; 0 = none. */
    Cycle syntheticTripAt = 0;
    /// @}

    /// @name Runtime firing: pure counters, no randomness.
    /// @{
    /** True if this process-slot allocation must fail. */
    bool fireSlotAlloc()
    {
        return ++slotAllocs == slotExhaustAfter && countFired();
    }

    /** True if this kernel shmAlloc must fail. */
    bool fireShmAlloc()
    {
        return ++shmAllocs == shmExhaustAfter && countFired();
    }

    /** True if this user-lock-slot allocation must fail. */
    bool fireUserLockAlloc()
    {
        return ++lockAllocs == userLockExhaustAfter && countFired();
    }

    /** Extra hold cycles for a lock acquire (0 = unperturbed). */
    Cycle
    holdExtra(uint32_t lock_id) const
    {
        return (perturbLockMask >> (lock_id % 32)) & 1 ? lockHoldExtra
                                                       : 0;
    }

    /**
     * Length the caller should keep of the next generated chunk or
     * script (always >= 1 and <= len). The caller is responsible for
     * picking a cut point that preserves its own pairing invariants.
     */
    uint64_t truncatedLen(uint64_t len);
    /// @}

    uint64_t seed() const { return seed_; }
    Cycle horizon() const { return horizon_; }
    /** Faults that actually fired so far (exhaustions, truncations). */
    uint32_t faultsFired() const { return fired; }

    /** Human-readable schedule, one line per active fault category. */
    std::string describe() const;

    /**
     * First seed >= from whose plan schedules a synthetic watchdog
     * trip: a guaranteed, workload-independent failure. Used by the
     * retry tests and `mpos_bench --fault-job`.
     */
    static uint64_t firstTrippingSeed(uint64_t from, Cycle horizon);

    /// @name Snapshot save/restore
    /// Only the runtime counters travel; the static schedule is
    /// redrawn from the seed (which the config hash covers).
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        w.u32(slotAllocs);
        w.u32(shmAllocs);
        w.u32(lockAllocs);
        w.u64(chunks);
        w.u32(fired);
    }

    void
    restoreState(util::ByteReader &r)
    {
        slotAllocs = r.u32();
        shmAllocs = r.u32();
        lockAllocs = r.u32();
        chunks = r.u64();
        fired = r.u32();
    }
    /// @}

  private:
    bool countFired() { ++fired; return true; }

    uint64_t seed_;
    Cycle horizon_;
    uint32_t slotAllocs = 0;
    uint32_t shmAllocs = 0;
    uint32_t lockAllocs = 0;
    uint64_t chunks = 0;
    uint32_t fired = 0;
};

} // namespace mpos::sim

#endif // MPOS_SIM_FAULT_PLAN_HH
