#include "sim/fault/plan.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/rng.hh"

namespace mpos::sim
{

namespace
{

/** Parsed MPOS_CRASH: which point dies, and on which hit. */
struct CrashSchedule
{
    std::string point;  ///< Empty = no crash scheduled.
    uint64_t hit = 1;   ///< 1-based hit count that dies.
};

const CrashSchedule &
crashSchedule()
{
    static const CrashSchedule sched = [] {
        CrashSchedule s;
        const char *env = std::getenv("MPOS_CRASH");
        if (!env || !*env)
            return s;
        const char *colon = std::strrchr(env, ':');
        if (colon && colon != env) {
            char *end = nullptr;
            const unsigned long long n =
                std::strtoull(colon + 1, &end, 10);
            if (end != colon + 1 && *end == '\0' && n >= 1) {
                s.point.assign(env, size_t(colon - env));
                s.hit = n;
                return s;
            }
        }
        s.point = env;
        return s;
    }();
    return sched;
}

/** Hits of the scheduled point so far (other points are not counted). */
std::atomic<uint64_t> crashHits{0};

} // namespace

bool
crashPointArmed(const char *name)
{
    const CrashSchedule &s = crashSchedule();
    if (s.point.empty() || s.point != name)
        return false;
    return crashHits.fetch_add(1, std::memory_order_relaxed) + 1 ==
           s.hit;
}

void
crashPoint(const char *name)
{
    if (crashPointArmed(name))
        crashNow(name);
}

void
crashNow(const char *name)
{
    std::fprintf(stderr, "[fault] injected crash at %s\n", name);
    std::fflush(stderr);
    // _exit, not exit: no atexit handlers, no stream flushing beyond
    // what the call site already forced -- the closest stand-in for a
    // kill -9 that still leaves a deterministic exit status (137, the
    // shell's code for SIGKILL) for the test harness to assert.
    _exit(137);
}

FaultPlan::FaultPlan(uint64_t seed, Cycle horizon)
    : seed_(seed), horizon_(horizon)
{
    // Decorrelate from the workload generators, which are seeded with
    // small integers too.
    util::Rng rng(seed ^ 0xfa17a11edeed5eedULL);

    if (rng.chance(0.5))
        slotExhaustAfter = uint32_t(rng.range(1, 6));
    if (rng.chance(0.35))
        shmExhaustAfter = uint32_t(rng.range(1, 8));
    if (rng.chance(0.35))
        userLockExhaustAfter = uint32_t(rng.range(1, 4));
    if (rng.chance(0.5)) {
        perturbLockMask = uint32_t(rng.next());
        lockHoldExtra = rng.range(20, 400);
    }
    if (rng.chance(0.5)) {
        truncateEvery = uint32_t(rng.range(3, 9));
        truncateKeepPct = uint32_t(rng.range(30, 90));
    }
    if (horizon_ >= 2 && rng.chance(0.5))
        syntheticTripAt = rng.range(horizon_ / 2, horizon_ - 1);

    // A plan with nothing scheduled would make its campaign run a
    // no-op; guarantee at least one observable fault per seed.
    if (!slotExhaustAfter && !shmExhaustAfter &&
        !userLockExhaustAfter && !perturbLockMask && !truncateEvery &&
        !syntheticTripAt && horizon_ >= 2)
        syntheticTripAt = rng.range(horizon_ / 2, horizon_ - 1);
}

uint64_t
FaultPlan::truncatedLen(uint64_t len)
{
    ++chunks;
    if (!truncateEvery || len <= 1 || chunks % truncateEvery != 0)
        return len;
    ++fired;
    const uint64_t keep = len * truncateKeepPct / 100;
    return keep ? keep : 1;
}

std::string
FaultPlan::describe() const
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "fault plan seed=%llu horizon=%llu\n",
                  (unsigned long long)seed_,
                  (unsigned long long)horizon_);
    out += buf;
    if (slotExhaustAfter) {
        std::snprintf(buf, sizeof buf,
                      "  slot-exhaust after %u allocations\n",
                      slotExhaustAfter);
        out += buf;
    }
    if (shmExhaustAfter) {
        std::snprintf(buf, sizeof buf,
                      "  shm-exhaust after %u allocations\n",
                      shmExhaustAfter);
        out += buf;
    }
    if (userLockExhaustAfter) {
        std::snprintf(buf, sizeof buf,
                      "  user-lock-exhaust after %u allocations\n",
                      userLockExhaustAfter);
        out += buf;
    }
    if (perturbLockMask) {
        std::snprintf(buf, sizeof buf,
                      "  lock-hold +%llu cycles, mask=0x%08x\n",
                      (unsigned long long)lockHoldExtra,
                      perturbLockMask);
        out += buf;
    }
    if (truncateEvery) {
        std::snprintf(buf, sizeof buf,
                      "  truncate every %u-th chunk to %u%%\n",
                      truncateEvery, truncateKeepPct);
        out += buf;
    }
    if (syntheticTripAt) {
        std::snprintf(buf, sizeof buf,
                      "  synthetic watchdog trip at cycle %llu\n",
                      (unsigned long long)syntheticTripAt);
        out += buf;
    }
    return out;
}

uint64_t
FaultPlan::firstTrippingSeed(uint64_t from, Cycle horizon)
{
    // chance(0.5) per seed: the expected search length is 2 and the
    // loop is bounded in practice; the plan constructor is cheap.
    for (uint64_t seed = from ? from : 1;; ++seed) {
        if (FaultPlan(seed, horizon).syntheticTripAt)
            return seed;
    }
}

} // namespace mpos::sim
