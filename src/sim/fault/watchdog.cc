#include "sim/fault/watchdog.hh"

#include <cstdio>

#include "sim/machine.hh"
#include "util/error.hh"

namespace mpos::sim
{

Watchdog::Watchdog(const MachineConfig &config, Cycle budget_cycles)
    : cfg(config), budgetCycles(budget_cycles)
{
}

void
Watchdog::poll(const Machine &m, Cycle now)
{
    if (progressed) {
        progressed = false;
        lastProgressCycle = now;
    }
    if (tripAt && now >= tripAt) {
        // One-shot: a caller that catches the error and resumes the
        // machine should not re-trip on the same schedule entry.
        tripAt = 0;
        throw util::SimError(
            util::ErrCode::WatchdogTrip,
            dump(m, now, "synthetic trip (fault injection)"));
    }
    if (now - lastProgressCycle >= budgetCycles)
        throw util::SimError(util::ErrCode::WatchdogTrip,
                             dump(m, now, "no forward progress"));
}

namespace
{

const char *
cacheKindName(uint64_t kind)
{
    return CacheKind(kind) == CacheKind::Instr ? "I" : "D";
}

} // namespace

std::string
Watchdog::dump(const Machine &m, Cycle now, const char *reason) const
{
    char buf[256];
    std::string out;

    std::snprintf(buf, sizeof buf,
                  "watchdog: %s at cycle %llu (budget %llu, last "
                  "progress at %llu)\n",
                  reason, (unsigned long long)now,
                  (unsigned long long)budgetCycles,
                  (unsigned long long)lastProgressCycle);
    out += buf;

    for (CpuId c = 0; c < m.numCpus(); ++c) {
        const Cpu &cpu = m.cpu(c);
        std::snprintf(
            buf, sizeof buf,
            "  cpu%u: mode=%s op=%s routine=%u pid=%d "
            "busyUntil=%llu intrDisable=%u queued=%llu\n",
            c, execModeName(cpu.ctx.mode), osOpName(cpu.ctx.op),
            unsigned(cpu.ctx.routine), int(cpu.ctx.pid),
            (unsigned long long)cpu.busyUntil,
            unsigned(cpu.intrDisable),
            (unsigned long long)cpu.script.size());
        out += buf;
    }

    if (diagProvider)
        out += diagProvider();

    const uint64_t size = events ? events->size() : 0;
    const uint64_t have = size < dumpEvents ? size : dumpEvents;
    if (have) {
        std::snprintf(buf, sizeof buf, "  last %llu monitor events:\n",
                      (unsigned long long)have);
        out += buf;
        for (uint64_t i = size - have; i < size; ++i) {
            const trace::TraceEvent &ev = events->tail(i);
            switch (ev.kind) {
            case trace::TraceEventKind::Bus:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u bus %s %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    busOpName(BusOp(ev.a)), cacheKindName(ev.b),
                    (unsigned long long)ev.addr);
                break;
            case trace::TraceEventKind::Evict:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u evict %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    cacheKindName(ev.a),
                    (unsigned long long)ev.addr);
                break;
            case trace::TraceEventKind::InvalSharing:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u inval %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    cacheKindName(ev.a),
                    (unsigned long long)ev.addr);
                break;
            case trace::TraceEventKind::InvalPageRealloc:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u inval-realloc line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    (unsigned long long)ev.addr);
                break;
            case trace::TraceEventKind::FlushPage:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u flush-page page=0x%llx bytes=%llu\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    (unsigned long long)ev.addr,
                    (unsigned long long)ev.a);
                break;
            case trace::TraceEventKind::OsEnter:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u osEnter %s\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              osOpName(OsOp(ev.a)));
                break;
            case trace::TraceEventKind::OsExit:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u osExit %s\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              osOpName(OsOp(ev.a)));
                break;
            case trace::TraceEventKind::ContextSwitch:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u switch pid%d -> pid%d\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              int(int64_t(ev.a)), int(int64_t(ev.b)));
                break;
            }
            out += buf;
        }
    }
    return out;
}

void
Watchdog::busTransaction(const BusRecord &)
{
    // A settled bus transaction means a reference completed somewhere;
    // this also covers progress made inside kernel paths between the
    // scheduler's explicit noteProgress() hooks.
    progressed = true;
}

} // namespace mpos::sim
