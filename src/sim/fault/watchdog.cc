#include "sim/fault/watchdog.hh"

#include <cstdio>

#include "sim/machine.hh"
#include "util/error.hh"

namespace mpos::sim
{

namespace
{

const char *
modeName(ExecMode mode)
{
    switch (mode) {
    case ExecMode::User: return "user";
    case ExecMode::Kernel: return "kernel";
    case ExecMode::Idle: return "idle";
    }
    return "?";
}

const char *
busOpName(BusOp op)
{
    switch (op) {
    case BusOp::Read: return "Read";
    case BusOp::ReadEx: return "ReadEx";
    case BusOp::Upgrade: return "Upgrade";
    case BusOp::Writeback: return "Writeback";
    case BusOp::UncachedRead: return "UncachedRead";
    case BusOp::UncachedWrite: return "UncachedWrite";
    }
    return "?";
}

} // namespace

Watchdog::Watchdog(const MachineConfig &config, Cycle budget_cycles)
    : cfg(config), budgetCycles(budget_cycles)
{
}

void
Watchdog::poll(const Machine &m, Cycle now)
{
    if (progressed) {
        progressed = false;
        lastProgressCycle = now;
    }
    if (tripAt && now >= tripAt) {
        // One-shot: a caller that catches the error and resumes the
        // machine should not re-trip on the same schedule entry.
        tripAt = 0;
        throw util::SimError(
            util::ErrCode::WatchdogTrip,
            dump(m, now, "synthetic trip (fault injection)"));
    }
    if (now - lastProgressCycle >= budgetCycles)
        throw util::SimError(util::ErrCode::WatchdogTrip,
                             dump(m, now, "no forward progress"));
}

std::string
Watchdog::dump(const Machine &m, Cycle now, const char *reason) const
{
    char buf[256];
    std::string out;

    std::snprintf(buf, sizeof buf,
                  "watchdog: %s at cycle %llu (budget %llu, last "
                  "progress at %llu)\n",
                  reason, (unsigned long long)now,
                  (unsigned long long)budgetCycles,
                  (unsigned long long)lastProgressCycle);
    out += buf;

    for (CpuId c = 0; c < m.numCpus(); ++c) {
        const Cpu &cpu = m.cpu(c);
        std::snprintf(
            buf, sizeof buf,
            "  cpu%u: mode=%s op=%s routine=%u pid=%d "
            "busyUntil=%llu intrDisable=%u queued=%llu\n",
            c, modeName(cpu.ctx.mode), osOpName(cpu.ctx.op),
            unsigned(cpu.ctx.routine), int(cpu.ctx.pid),
            (unsigned long long)cpu.busyUntil,
            unsigned(cpu.intrDisable),
            (unsigned long long)cpu.script.size());
        out += buf;
    }

    if (diagProvider)
        out += diagProvider();

    const uint64_t have = ringNext < ringSize ? ringNext : ringSize;
    if (have) {
        std::snprintf(buf, sizeof buf, "  last %llu monitor events:\n",
                      (unsigned long long)have);
        out += buf;
        for (uint64_t i = ringNext - have; i < ringNext; ++i) {
            const RingEvent &ev = ring[i % ringSize];
            switch (ev.kind) {
            case EvKind::Bus:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u bus %s %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    busOpName(BusOp(ev.a)),
                    CacheKind(ev.b) == CacheKind::Instr ? "I" : "D",
                    (unsigned long long)ev.addr);
                break;
            case EvKind::Evict:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u evict %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    CacheKind(ev.a) == CacheKind::Instr ? "I" : "D",
                    (unsigned long long)ev.addr);
                break;
            case EvKind::InvalSharing:
                std::snprintf(
                    buf, sizeof buf,
                    "    %llu cpu%u inval %s line=0x%llx\n",
                    (unsigned long long)ev.cycle, ev.cpu,
                    CacheKind(ev.a) == CacheKind::Instr ? "I" : "D",
                    (unsigned long long)ev.addr);
                break;
            case EvKind::OsEnter:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u osEnter %s\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              osOpName(OsOp(ev.a)));
                break;
            case EvKind::OsExit:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u osExit %s\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              osOpName(OsOp(ev.a)));
                break;
            case EvKind::ContextSwitch:
                std::snprintf(buf, sizeof buf,
                              "    %llu cpu%u switch pid%d -> pid%d\n",
                              (unsigned long long)ev.cycle, ev.cpu,
                              int(int64_t(ev.a)), int(int64_t(ev.b)));
                break;
            }
            out += buf;
        }
    }
    return out;
}

void
Watchdog::busTransaction(const BusRecord &rec)
{
    // A settled bus transaction means a reference completed somewhere;
    // this also covers progress made inside kernel paths between the
    // scheduler's explicit noteProgress() hooks.
    progressed = true;
    record({EvKind::Bus, rec.cycle, rec.cpu, rec.lineAddr,
            uint64_t(rec.op), uint64_t(rec.cache)});
}

void
Watchdog::evict(CpuId cpu, CacheKind kind, Addr line,
                const MonitorContext &)
{
    record({EvKind::Evict, 0, cpu, line, uint64_t(kind), 0});
}

void
Watchdog::invalSharing(CpuId cpu, CacheKind kind, Addr line)
{
    record({EvKind::InvalSharing, 0, cpu, line, uint64_t(kind), 0});
}

void
Watchdog::osEnter(Cycle cycle, CpuId cpu, OsOp op)
{
    record({EvKind::OsEnter, cycle, cpu, 0, uint64_t(op), 0});
}

void
Watchdog::osExit(Cycle cycle, CpuId cpu, OsOp op)
{
    record({EvKind::OsExit, cycle, cpu, 0, uint64_t(op), 0});
}

void
Watchdog::contextSwitch(Cycle cycle, CpuId cpu, Pid from, Pid to)
{
    record({EvKind::ContextSwitch, cycle, cpu, 0, uint64_t(int64_t(from)),
            uint64_t(int64_t(to))});
}

} // namespace mpos::sim
