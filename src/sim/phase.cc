#include "sim/phase.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "util/error.hh"

namespace mpos::sim
{

void
runPhase(Machine &m, Cycle cycles, const PhaseDeadline &dl)
{
    if (dl.budgetSeconds <= 0) {
        m.run(cycles);
        return;
    }
    const Cycle slice = std::max<Cycle>(cycles / 64, 1);
    Cycle left = cycles;
    while (left) {
        const Cycle step = std::min(slice, left);
        m.run(step);
        left -= step;
        if (left && std::chrono::steady_clock::now() >= dl.deadline) {
            util::raise(util::ErrCode::Timeout,
                        "experiment timed out after %.3f s "
                        "(%llu of %llu cycles)",
                        dl.budgetSeconds,
                        static_cast<unsigned long long>(
                            dl.doneBefore + cycles - left),
                        static_cast<unsigned long long>(
                            dl.totalCycles));
        }
    }
}

} // namespace mpos::sim
