/**
 * @file
 * The parallel epoch/barrier simulation core.
 *
 * Partitions the simulated CPUs across host worker threads and runs
 * them speculatively through *windows* -- bounded stretches of
 * simulated cycles in which the snoop filter proves the CPUs cannot
 * interact. Each window is three phases around two barriers:
 *
 *   PROBE  (parallel, read-only): each worker dry-runs its CPUs'
 *          scripts from their busyUntil, classifying every reference
 *          against the caches without mutating them. The probe
 *          produces, per CPU, a conservative *cut time* (the first
 *          item that could interact: a marker, an uncached/bypass
 *          access, a TLB fault, or any miss/upgrade whose line has
 *          remote sharers) plus the line *footprint* it reads shared
 *          metadata of and the *write set* of lines whose sharers
 *          byte or coherence state it may touch (stores, fills, and
 *          every potential victim of an affected L2 set).
 *
 *   COMMIT (parallel): if no CPU's write set intersects another's
 *          footprint, each worker really executes its CPUs through
 *          the window [start, windowEnd) -- windowEnd being the
 *          minimum cut time, further capped at the executor's
 *          nextEventAt() so every interrupt poll inside the window
 *          is a provable no-op. Monitor-visible events are buffered
 *          into arena-backed per-CPU captures (MemorySystem's
 *          thread-local WindowCapture).
 *
 *   MERGE  (serial): the captures are merged by (cycle, cpu, issue
 *          order) -- exactly the order the lockstep scheduler
 *          delivers them -- and replayed through the monitor, with
 *          the deferred bus-transaction counts applied.
 *
 * Contended or trivially short windows fall back to the existing
 * lockstep runFast loop for an adaptively growing chunk of cycles,
 * so event order is preserved exactly in every case. The result is
 * event-identical to the serial fast path by construction; the
 * differential fuzzer and the epoch-equivalence matrix assert it.
 */

#ifndef MPOS_SIM_PARALLEL_HH
#define MPOS_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/memsys.hh"
#include "sim/types.hh"
#include "util/arena.hh"

namespace mpos::sim
{

class Machine;

/** The parallel core; owned by Machine, engaged from Machine::run. */
class ParallelCore
{
  public:
    /** Counters for reports and the parallel-core bench entries. */
    struct Stats
    {
        uint64_t windows = 0;          ///< Windows committed.
        uint64_t windowCycles = 0;     ///< Simulated cycles in them.
        uint64_t windowItems = 0;      ///< Script items in them.
        uint64_t conflictAborts = 0;   ///< Windows with intersecting sets.
        uint64_t shortAborts = 0;      ///< Windows below the floor.
        uint64_t serialChunks = 0;     ///< Lockstep fallback chunks.
    };

    /**
     * @param machine     The machine to drive (friend access).
     * @param num_threads Host threads, already clamped to [2, numCpus].
     */
    ParallelCore(Machine &machine, uint32_t num_threads);
    ~ParallelCore();

    /** Advance the machine to target, window by window. */
    void run(Cycle target);

    const Stats &stats() const { return st; }
    uint32_t threads() const { return nThreads; }

  private:
    /** Probe outcome for one CPU (committed filled in by commit). */
    struct ProbeResult
    {
        Cycle cutAt = 0;    ///< Lower bound on the first unsafe cycle.
        uint64_t committed = 0; ///< Items really executed this window.
        std::vector<Addr> footprint; ///< Lines whose shared metadata
                                     ///< the CPU reads.
        std::vector<Addr> writeSet;  ///< Lines it may write metadata of.
    };

    /** Per-worker state, cache-line separated. */
    struct alignas(64) Worker
    {
        util::Arena arena{64 * 1024};
        std::vector<WindowCapture> caps; ///< One per owned CPU.
        /** Probe scratch, reused across windows. */
        std::unordered_set<uint64_t> touchedSets;
        std::unordered_set<Addr> stateChanged;
    };

    enum class Phase : uint8_t { Probe, Commit, Stop };

    void workerMain(uint32_t w);
    /** Publish a phase, work worker 0's share, wait for the rest. */
    void runPhase(Phase p);
    void doPhase(Phase p, uint32_t w);

    void probeCpu(CpuId c, Worker &w, ProbeResult &out);
    void commitCpu(CpuId c, Worker &w, WindowCapture &cap);

    /** One speculative window; false = nothing committed. */
    bool tryWindow(Cycle target);
    void mergeAndReplay();

    Machine &m;
    const uint32_t nThreads;

    std::vector<Worker> workers;
    std::vector<ProbeResult> probes; ///< Indexed by CPU.
    std::vector<std::thread> gang;   ///< nThreads - 1 helpers.
    /** Conflict-check scratch: line -> (reader mask, writer mask). */
    std::unordered_map<Addr, std::pair<uint64_t, uint64_t>> accessMap;

    /** Window parameters, written by the coordinator before the
     *  phase is published (release) and read by workers after it
     *  (acquire). */
    Cycle windowEnd = 0;
    Cycle probeLimit = 0;

    /** Phase barrier: epoch counts published phases; pending counts
     *  workers still in the current one. */
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint32_t> pending{0};
    Phase phase = Phase::Probe;

    /** Adaptive lockstep fallback chunk (cycles). */
    Cycle serialChunk;
    static constexpr Cycle minSerialChunk = 1024;
    static constexpr Cycle maxSerialChunk = 65536;
    /** Window sizing. */
    static constexpr Cycle epochCycles = 16384;
    /** Commit floor: user chunks end in a kernel-path marker every
     *  few dozen cycles, so the min cut across CPUs is small; windows
     *  below this are not worth two barriers and fall back. */
    static constexpr Cycle minWindowCycles = 16;
    static constexpr uint32_t maxProbeItems = 2048;
    static constexpr uint32_t maxFootprintLines = 512;

    Stats st;
};

} // namespace mpos::sim

#endif // MPOS_SIM_PARALLEL_HH
