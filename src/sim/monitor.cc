#include "sim/monitor.hh"

#include <algorithm>
#include <cstring>

namespace mpos::sim
{

void
Monitor::detach(MonitorObserver *obs)
{
    observers.erase(std::remove(observers.begin(), observers.end(), obs),
                    observers.end());
}

const char *
osOpName(OsOp op)
{
    switch (op) {
      case OsOp::None: return "none";
      case OsOp::UtlbFault: return "utlb-fault";
      case OsOp::CheapTlbFault: return "cheap-tlb-fault";
      case OsOp::ExpensiveTlbFault: return "expensive-tlb-fault";
      case OsOp::IoSyscall: return "io-syscall";
      case OsOp::Sginap: return "sginap";
      case OsOp::OtherSyscall: return "other-syscall";
      case OsOp::Interrupt: return "interrupt";
      case OsOp::IdleLoop: return "idle-loop";
    }
    return "?";
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::User: return "user";
      case ExecMode::Kernel: return "kernel";
      case ExecMode::Idle: return "idle";
    }
    return "?";
}

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::Mesi: return "mesi";
      case Protocol::Msi: return "msi";
      case Protocol::Mi: return "mi";
    }
    return "?";
}

const char *
lockPolicyName(LockPolicy p)
{
    switch (p) {
      case LockPolicy::TestAndSet: return "tas";
      case LockPolicy::Ticket: return "ticket";
      case LockPolicy::Mcs: return "mcs";
      case LockPolicy::Futex: return "futex";
      case LockPolicy::Rcu: return "rcu";
    }
    return "?";
}

bool
parseLockPolicy(const char *name, LockPolicy &out)
{
    if (!std::strcmp(name, "tas")) {
        out = LockPolicy::TestAndSet;
        return true;
    }
    if (!std::strcmp(name, "ticket")) {
        out = LockPolicy::Ticket;
        return true;
    }
    if (!std::strcmp(name, "mcs")) {
        out = LockPolicy::Mcs;
        return true;
    }
    if (!std::strcmp(name, "futex")) {
        out = LockPolicy::Futex;
        return true;
    }
    if (!std::strcmp(name, "rcu")) {
        out = LockPolicy::Rcu;
        return true;
    }
    return false;
}

bool
parseProtocol(const char *name, Protocol &out)
{
    if (!std::strcmp(name, "mesi")) {
        out = Protocol::Mesi;
        return true;
    }
    if (!std::strcmp(name, "msi")) {
        out = Protocol::Msi;
        return true;
    }
    if (!std::strcmp(name, "mi")) {
        out = Protocol::Mi;
        return true;
    }
    return false;
}

const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::Read: return "Read";
      case BusOp::ReadEx: return "ReadEx";
      case BusOp::Upgrade: return "Upgrade";
      case BusOp::Writeback: return "Writeback";
      case BusOp::UncachedRead: return "UncachedRead";
      case BusOp::UncachedWrite: return "UncachedWrite";
    }
    return "?";
}

} // namespace mpos::sim
