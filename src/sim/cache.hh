/**
 * @file
 * Generic physically-addressed set-associative cache tag model.
 *
 * Only tags and line state are modeled (no data): every quantity the
 * paper measures is a function of which physical line is present in
 * which cache. Direct-mapped caches are assoc = 1, matching all three
 * caches of the 4D/340; higher associativity is used by the Figure 6
 * re-simulation and the ablation benches.
 */

#ifndef MPOS_SIM_CACHE_HH
#define MPOS_SIM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "util/binio.hh"

namespace mpos::sim
{

/** Result of a fill: the displaced line, if any. */
struct Victim
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;
};

/** Set-associative cache of 16-byte lines with true-LRU replacement. */
class Cache
{
  public:
    /**
     * @param name       For diagnostics.
     * @param bytes      Total capacity; must be a multiple of
     *                   line_bytes * assoc.
     * @param assoc      Associativity (1 = direct-mapped).
     * @param line_bytes Line size (16 on the 4D/340).
     */
    Cache(std::string name, uint64_t bytes, uint32_t assoc,
          uint32_t line_bytes);

    /** True if the line holding addr is present (no LRU update). */
    bool contains(Addr addr) const;

    /**
     * Access for read/fetch: returns hit and updates LRU. Inline with
     * a direct-mapped short circuit: the one way either matches or
     * does not, and its LRU rank is always already 0, so the probe is
     * a single indexed compare (all three 4D/340 caches are assoc 1).
     */
    bool
    touch(Addr addr)
    {
        const Addr line = lineAddr(addr);
        if (assoc_ == 1) {
            // valid && tag == line, as a single load and compare on
            // the packed word (the dirty bit is masked out).
            return (ways[setIndex(line)].tv & ~uint64_t(2)) ==
                   (line | 1);
        }
        return touchAssoc(line);
    }

    /**
     * Install the line holding addr, evicting the LRU way if the set is
     * full. Returns the victim (valid = false if an empty way was used
     * or the line was already present).
     */
    Victim fill(Addr addr, bool dirty = false);

    /** Mark the line dirty; returns false if not present. */
    bool markDirty(Addr addr);

    /** True if present and dirty. */
    bool isDirty(Addr addr) const;

    /** Remove the line; returns true if it was present. */
    bool
    invalidate(Addr addr)
    {
        const Addr line = lineAddr(addr);
        if (assoc_ == 1) {
            Way &w = ways[setIndex(line)];
            if ((w.tv & ~uint64_t(2)) != (line | 1))
                return false;
            w.tv = 0;
            return true;
        }
        return invalidateAssoc(line);
    }

    /**
     * Invalidate every resident line with address in [lo, hi) and call
     * cb for each one removed. Takes the callback as a template so the
     * call inlines instead of going through a std::function thunk.
     */
    template <typename Fn>
    void
    invalidateRange(Addr lo, Addr hi, Fn &&cb)
    {
        for (uint64_t i = 0; i < ways.size(); ++i) {
            Way &w = ways[i];
            const Addr tag = w.tag();
            if (w.valid() && tag >= lo && tag < hi) {
                if (assoc_ > 1)
                    compactRanks(i / assoc_, w.lru);
                w.tv = 0;
                w.lru = 0;
                cb(tag);
            }
        }
    }

    /** Drop everything (power-on state). */
    void reset();

    /** Call fn(lineAddr, dirty) for every resident line. */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (const auto &w : ways) {
            if (w.valid())
                fn(w.tag(), w.dirty());
        }
    }

    /** The set index the line holding addr maps to. */
    uint64_t setOf(Addr addr) const { return setIndex(lineAddr(addr)); }

    /** Call fn(lineAddr) for every resident line of one set (the
     *  parallel core's conflict probe collects potential victims). */
    template <typename Fn>
    void
    forEachInSet(uint64_t set, Fn &&fn) const
    {
        const Way *base = &ways[set * assoc_];
        for (uint32_t i = 0; i < assoc_; ++i) {
            if (base[i].valid())
                fn(base[i].tag());
        }
    }

    /**
     * Structural self-check of the packed tag array: every valid way's
     * packed word is line-aligned and lives in the set its line maps
     * to, no line is resident twice in one set, invalidated ways are
     * fully cleared, and the LRU ranks of a set's valid ways are
     * distinct and in range. Calls report(description) once per
     * violation; returns the violation count.
     */
    uint32_t checkIntegrity(
        const std::function<void(const std::string &)> &report) const;

    uint64_t capacityBytes() const { return uint64_t(numSets) * assoc_ *
                                            lineBytes_; }
    uint32_t assoc() const { return assoc_; }
    uint32_t lineBytes() const { return lineBytes_; }
    uint64_t sets() const { return numSets; }

    /** Number of currently valid lines. */
    uint64_t residentLines() const;

    const std::string &name() const { return label; }

    /// @name Snapshot save/restore
    /// The packed tag/valid/dirty words and LRU ranks are the whole
    /// mutable state; geometry comes from the constructor and is
    /// validated on restore.
    /// @{
    void
    saveState(util::ByteWriter &w) const
    {
        w.u64(uint64_t(ways.size()));
        for (const Way &way : ways) {
            w.u64(way.tv);
            w.u32(way.lru);
        }
    }

    void
    restoreState(util::ByteReader &r)
    {
        const uint64_t n = r.u64();
        if (n != ways.size())
            util::raise(util::ErrCode::SnapshotCorrupt,
                        "cache %s: snapshot has %llu ways, machine "
                        "has %zu",
                        label.c_str(), (unsigned long long)n,
                        ways.size());
        for (Way &way : ways) {
            way.tv = r.u64();
            way.lru = r.u32();
        }
    }
    /// @}

  private:
    struct Way
    {
        /**
         * Tag and flags packed into one word: bit 0 = valid, bit 1 =
         * dirty, the rest the full line address (line sizes are >= 4,
         * so those bits are free in a line-aligned address). The
         * direct-mapped hit probe -- the hottest operation in the
         * simulator -- is then a single load and masked compare.
         */
        uint64_t tv = 0;
        uint32_t lru = 0;   // lower = more recently used

        Addr tag() const { return Addr(tv & ~uint64_t(3)); }
        bool valid() const { return tv & 1; }
        bool dirty() const { return tv & 2; }
        void
        set(Addr line, bool valid_, bool dirty_)
        {
            tv = line | uint64_t(valid_) | (uint64_t(dirty_) << 1);
        }
    };

    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineBytes_ - 1); }
    uint64_t setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets - 1);
    }

    /** touch() for the associative case: probe ways, update LRU. */
    bool touchAssoc(Addr line);

    /** invalidate() for the associative case. */
    bool invalidateAssoc(Addr line);

    /** Re-densify a set's LRU ranks after the way holding rank
     *  `removed` was invalidated. */
    void compactRanks(uint64_t set, uint32_t removed);

    Way *findWay(Addr line);
    const Way *findWay(Addr line) const;
    void promote(uint64_t set, Way &way);

    std::string label;
    uint32_t assoc_;
    uint32_t lineBytes_;
    uint32_t lineShift_; // log2(lineBytes_)
    uint64_t numSets;
    std::vector<Way> ways; // numSets * assoc_, set-major
};

} // namespace mpos::sim

#endif // MPOS_SIM_CACHE_HH
