/**
 * @file
 * trace_dump: the paper's hardware monitor as a tool. Attaches a
 * bounded trace buffer (the monitor's 2M-entry buffer held ~0.5-4 s of
 * bus transactions) to a running workload and dumps the captured bus
 * trace as CSV: cycle, cpu, address, operation, I/D, mode, OS
 * operation, kernel routine, pid. Useful for offline analysis with
 * external tools, exactly as the paper's postprocessing worked.
 *
 * Usage: trace_dump [pmake|multpgm|oracle] [max_records] > trace.csv
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hh"

using namespace mpos;
using sim::BusOp;
using sim::BusRecord;

namespace
{

const char *
opName(BusOp op)
{
    switch (op) {
      case BusOp::Read: return "read";
      case BusOp::ReadEx: return "readex";
      case BusOp::Upgrade: return "upgrade";
      case BusOp::Writeback: return "writeback";
      case BusOp::UncachedRead: return "uncached-read";
      case BusOp::UncachedWrite: return "uncached-write";
    }
    return "?";
}

/** Bounded in-memory trace buffer, like the monitor's. */
class TraceBuffer : public sim::MonitorObserver
{
  public:
    explicit TraceBuffer(size_t capacity) { buf.reserve(capacity); }

    void
    busTransaction(const BusRecord &rec) override
    {
        if (buf.size() < buf.capacity())
            buf.push_back(rec);
    }

    bool full() const { return buf.size() == buf.capacity(); }
    const std::vector<BusRecord> &records() const { return buf; }

  private:
    std::vector<BusRecord> buf;
};

} // namespace

int
main(int argc, char **argv)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "multpgm"))
            cfg.kind = workload::WorkloadKind::Multpgm;
        else if (!std::strcmp(argv[1], "oracle"))
            cfg.kind = workload::WorkloadKind::Oracle;
    }
    const size_t max_records =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    cfg.warmupCycles = 3000000;
    cfg.measureCycles = 0; // we drive the machine manually below
    cfg.collectMisses = false;

    core::Experiment exp(cfg);
    exp.run();

    TraceBuffer trace(max_records);
    exp.machine().monitor().attach(&trace);
    // Fill the buffer, as the monitor did, in slices of machine time.
    while (!trace.full())
        exp.machine().run(100000);
    exp.machine().monitor().detach(&trace);

    const auto &layout = exp.kern().layout();
    std::printf("cycle,cpu,line_addr,op,cache,mode,os_op,routine,"
                "pid,structure\n");
    for (const auto &r : trace.records()) {
        const char *mode =
            r.ctx.mode == sim::ExecMode::User
                ? "user"
                : (r.ctx.mode == sim::ExecMode::Kernel ? "kernel"
                                                       : "idle");
        std::string routine = "-";
        if (r.ctx.routine != kernel::invalidRoutine &&
            r.ctx.routine < layout.numRoutines()) {
            routine = layout
                          .routineInfo(
                              kernel::RoutineId(r.ctx.routine))
                          .name;
        }
        std::printf("%llu,%u,0x%llx,%s,%c,%s,%s,%s,%d,%s\n",
                    static_cast<unsigned long long>(r.cycle), r.cpu,
                    static_cast<unsigned long long>(r.lineAddr),
                    opName(r.op),
                    r.cache == sim::CacheKind::Instr ? 'I' : 'D', mode,
                    sim::osOpName(r.ctx.op), routine.c_str(),
                    int(r.ctx.pid),
                    kernel::kstructName(
                        layout.structAt(r.lineAddr)));
    }
    std::fprintf(stderr, "dumped %zu bus records\n",
                 trace.records().size());
    return 0;
}
