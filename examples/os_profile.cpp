/**
 * @file
 * os_profile: the library as a profiling tool. Runs one workload and
 * prints the complete OS cache/sync profile -- miss classes, data
 * structures, functional breakdown, invocation pattern, and lock
 * behavior. Usage:
 *
 *   os_profile [pmake|multpgm|oracle] [measure_cycles]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/experiment.hh"
#include "core/migration.hh"
#include "core/report.hh"
#include "util/table.hh"

using namespace mpos;

int
main(int argc, char **argv)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "multpgm"))
            cfg.kind = workload::WorkloadKind::Multpgm;
        else if (!std::strcmp(argv[1], "oracle"))
            cfg.kind = workload::WorkloadKind::Oracle;
        else if (std::strcmp(argv[1], "pmake") != 0) {
            std::fprintf(stderr,
                         "usage: %s [pmake|multpgm|oracle] [cycles]\n",
                         argv[0]);
            return 1;
        }
    }
    cfg.measureCycles =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000000;
    if (argc > 3)
        cfg.warmupCycles = std::strtoull(argv[3], nullptr, 10);

    core::Experiment exp(cfg);
    exp.run();

    const auto acct = exp.account();
    const auto &mc = exp.misses();
    const auto t1 = exp.table1();

    std::printf("=== %s: %llu cycles/CPU measured ===\n",
                exp.load().name().c_str(),
                static_cast<unsigned long long>(exp.elapsed()));
    std::printf("time: user %.1f%% sys %.1f%% idle %.1f%% | "
                "stalls: all %.1f%% os %.1f%% os+ind %.1f%%\n",
                t1.userPct, t1.sysPct, t1.idlePct, t1.allMissStallPct,
                t1.osMissStallPct, t1.osPlusInducedStallPct);
    std::printf("OS miss share: %.1f%%  (os %llu, app %llu, "
                "writebacks %llu)\n\n",
                t1.osMissFracPct,
                static_cast<unsigned long long>(mc.osTotal()),
                static_cast<unsigned long long>(mc.appTotal()),
                static_cast<unsigned long long>(
                    exp.classifier_().writebacks()));

    // Miss classes, normalized to all OS misses = 100 (Figs. 4/7).
    const double osAll = double(mc.osTotal());
    std::printf("OS miss classes (%% of all OS misses; I / D):\n");
    for (uint32_t c = 0; c < core::numMissClasses; ++c) {
        std::printf("  %-9s %6.2f / %6.2f\n",
                    core::missClassName(core::MissClass(c)),
                    osAll ? 100.0 * double(mc.osI[c]) / osAll : 0.0,
                    osAll ? 100.0 * double(mc.osD[c]) / osAll : 0.0);
    }
    std::printf("  I-misses total: %.1f%%  Dispossame(I): %llu\n\n",
                osAll ? 100.0 * double(mc.osITotal()) / osAll : 0.0,
                static_cast<unsigned long long>(mc.osDispossameI));

    // Functional classes (Fig. 9 / Fig. 2).
    std::printf("OS operations (count; I-miss / D-miss):\n");
    for (uint32_t o = 0; o < sim::numOsOps; ++o) {
        const auto op = sim::OsOp(o);
        std::printf("  %-19s %9llu  %8llu / %8llu\n", sim::osOpName(op),
                    static_cast<unsigned long long>(exp.osOpCount(op)),
                    static_cast<unsigned long long>(
                        exp.functional().iMisses(op)),
                    static_cast<unsigned long long>(
                        exp.functional().dMisses(op)));
    }

    // Invocation pattern (Fig. 1).
    const auto &inv = exp.invocations();
    std::printf("\nInvocation pattern:\n");
    std::printf("  OS invocations: %llu  mean %0.f cyc, "
                "%.1f I-miss, %.1f D-miss\n",
                static_cast<unsigned long long>(
                    inv.osInvocations().count),
                inv.osInvocations().meanCycles(),
                inv.osInvocations().meanI(), inv.osInvocations().meanD());
    std::printf("  UTLB faults:    %llu  mean %.0f cyc, %.3f misses\n",
                static_cast<unsigned long long>(inv.utlbFaults().count),
                inv.utlbFaults().meanCycles(),
                inv.utlbFaults().meanI() + inv.utlbFaults().meanD());
    std::printf("  app invocation: mean %.0f cyc, %.1f utlb faults\n",
                inv.appInvocations().meanCycles(),
                inv.utlbPerAppInvocation());
    std::printf("  OS invoked every %.2f ms per CPU\n",
                inv.cyclesBetweenOsInvocations(exp.elapsed()) / 33000.0);

    // Sharing misses by structure (Fig. 8).
    const auto &sh = exp.attribution().sharing();
    std::printf("\nSharing D-misses by structure (total %llu):\n",
                static_cast<unsigned long long>(sh.total));
    for (uint32_t i = 0; i < kernel::numKStructs; ++i) {
        if (!sh.count[i])
            continue;
        std::printf("  %-22s %6.1f%%\n",
                    kernel::kstructName(kernel::KStruct(i)),
                    100.0 * double(sh.count[i]) / double(sh.total));
    }

    // Migration and block ops (Tables 4/5/6).
    const auto mig = core::computeMigration(exp.attribution(), mc,
                                            acct);
    const auto migOps = core::computeMigrationOps(exp.attribution());
    const auto bo = exp.blockOpReport();
    std::printf("\nMigration: %.1f%% of OS D-misses, stall %.1f%%; "
                "ops: runq %.1f%% lowlevel %.1f%% rdwr %.1f%%\n",
                mig.totalPctOfOsD, mig.stallPctNonIdle,
                migOps.runQueuePct, migOps.lowLevelPct,
                migOps.rdwrSetupPct);
    std::printf("Block ops: copy %.1f%% clear %.1f%% traverse %.1f%% "
                "of OS D-misses, stall %.1f%%\n",
                bo.copyPctOfOsD, bo.clearPctOfOsD, bo.traversePctOfOsD,
                bo.stallPctNonIdle);

    // Per-process CPU accounting.
    std::printf("\nProcesses (state/dispatches/cycles):\n");
    for (uint32_t i = 0; i < exp.kern().maxProcs(); ++i) {
        const auto &pr = exp.kern().process(sim::Pid(i));
        if (!pr.everRan && pr.state == kernel::ProcState::Free)
            continue;
        std::printf("  %-10s st%u  disp %6llu  ran %10llu\n",
                    pr.name.c_str(), unsigned(pr.state),
                    static_cast<unsigned long long>(pr.dispatches),
                    static_cast<unsigned long long>(pr.totalRan));
    }

    // Lock profiles (Table 12 raw material).
    std::printf("\nLocks (acquires/failEp/interval/locality/waiters):\n");
    for (uint32_t l = 0; l < exp.kern().numLocks(); ++l) {
        const auto &lp = exp.lockStats().profile(l);
        if (lp.acquires < 50)
            continue;
        std::printf("  %-12s %9llu %7llu %9.0f %6.1f%% %5.2f\n",
                    kernel::lockName(l, exp.kern().numUserLocks())
                        .c_str(),
                    static_cast<unsigned long long>(lp.acquires),
                    static_cast<unsigned long long>(lp.failEpisodes),
                    lp.acquireInterval(),
                    100.0 * lp.sameCpuFraction(), lp.waitersIfAny());
    }

    // Sync (Table 10) and kernel counters.
    const auto sy = exp.syncStallReport();
    std::printf("Sync stall: %.2f%% sync-bus, %.2f%% cached-RMW\n",
                sy.uncachedPct, sy.cachedPct);
    std::printf("\nKernel: ctxsw %llu migr %llu forks %llu exits %llu "
                "utlb %llu reclaims %llu recycles %llu disk %llu strands %llu\n",
                static_cast<unsigned long long>(
                    exp.kern().contextSwitches()),
                static_cast<unsigned long long>(exp.kern().migrations()),
                static_cast<unsigned long long>(exp.kern().forks()),
                static_cast<unsigned long long>(exp.kern().exits()),
                static_cast<unsigned long long>(exp.kern().utlbFaults()),
                static_cast<unsigned long long>(
                    exp.kern().pageReclaims()),
                static_cast<unsigned long long>(
                    exp.kern().codePageRecycles()),
                static_cast<unsigned long long>(
                    exp.kern().diskRequests()),
                static_cast<unsigned long long>(
                    exp.kern().lockHolderPreemptions()));
    std::printf("Progress: jobs %llu txns %llu mp3d-steps %llu\n",
                static_cast<unsigned long long>(
                    exp.load().pmakeJobsCompleted()),
                static_cast<unsigned long long>(
                    exp.load().oracleTransactions()),
                static_cast<unsigned long long>(exp.load().mp3dSteps()));
    return 0;
}
