/**
 * @file
 * Quickstart: build the 4-CPU SGI 4D/340 model, boot the synthetic
 * IRIX kernel, run the Pmake workload for a few simulated seconds of
 * machine time, and print the headline numbers of the paper: where
 * time goes, how many misses the OS causes, and what they cost.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace mpos;

int
main()
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 2000000;
    cfg.measureCycles = 10000000;

    core::Experiment exp(cfg);
    exp.run();

    const auto acct = exp.account();
    const auto t1 = exp.table1();
    const auto &mc = exp.misses();

    std::printf("Pmake on the modeled 4D/340 "
                "(%llu measured cycles per CPU):\n",
                static_cast<unsigned long long>(exp.elapsed()));
    std::printf("  time:   user %.1f%%  system %.1f%%  idle %.1f%%\n",
                t1.userPct, t1.sysPct, t1.idlePct);
    std::printf("  misses: OS %llu  app %llu  (OS share %.1f%%)\n",
                static_cast<unsigned long long>(mc.osTotal()),
                static_cast<unsigned long long>(mc.appTotal()),
                t1.osMissFracPct);
    std::printf("  stall:  all %.1f%%  OS-only %.1f%%  "
                "OS+induced %.1f%% of non-idle time\n",
                t1.allMissStallPct, t1.osMissStallPct,
                t1.osPlusInducedStallPct);
    std::printf("  kernel: %llu ctx switches, %llu migrations, "
                "%llu forks, %llu exits, %llu jobs built\n",
                static_cast<unsigned long long>(
                    exp.kern().contextSwitches()),
                static_cast<unsigned long long>(
                    exp.kern().migrations()),
                static_cast<unsigned long long>(exp.kern().forks()),
                static_cast<unsigned long long>(exp.kern().exits()),
                static_cast<unsigned long long>(
                    exp.load().pmakeJobsCompleted()));
    std::printf("  idle account: %llu cycles (disk requests: %llu)\n",
                static_cast<unsigned long long>(acct.idle()),
                static_cast<unsigned long long>(
                    exp.kern().diskRequests()));
    return 0;
}
