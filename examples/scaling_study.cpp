/**
 * @file
 * scaling_study: Section 6 of the paper asks what happens on larger
 * machines. This example scales the modeled machine from 1 to 8 CPUs
 * under Multpgm and watches the two quantities the paper flags:
 * run-queue lock contention (Figure 11) and process migration.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "util/table.hh"

using namespace mpos;

int
main()
{
    util::TextTable t("Multpgm scaled across machine sizes");
    t.header({"CPUs", "Runqlk fails/ms", "migrations/Mcycle",
              "sginaps", "sys %"});

    for (uint32_t ncpu : {1u, 2u, 4u, 8u}) {
        core::ExperimentConfig cfg;
        cfg.kind = workload::WorkloadKind::Multpgm;
        cfg.machine.numCpus = ncpu;
        cfg.measureCycles = 10000000;
        cfg.collectMisses = false; // scheduler/lock behavior only
        core::Experiment exp(cfg);
        std::printf("running %u CPUs...\n", ncpu);
        exp.run();

        const auto t1 = exp.table1();
        t.row({std::to_string(ncpu),
               core::fmt2(exp.lockStats().failsPerMs(
                   kernel::Runqlk, exp.elapsed())),
               core::fmt2(double(exp.kern().migrations()) * 1e6 /
                          double(exp.elapsed())),
               std::to_string(exp.osOpCount(sim::OsOp::Sginap)),
               core::fmt1(t1.sysPct)});
    }
    t.print();

    std::printf("\nThe paper's Section 6 predictions: contention for "
                "the run queue lock grows\nwith CPU count (argue for "
                "distributed run queues), and migration grows with\n"
                "it (argue for affinity and clustered scheduling).\n");
    return 0;
}
