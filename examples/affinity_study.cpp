/**
 * @file
 * affinity_study: evaluates the paper's Section 4.2.2 proposal --
 * cache-affinity scheduling -- against the default IRIX-style global
 * run queue on the Multpgm workload. Affinity scheduling keeps
 * processes on the CPU whose caches hold their state, trading a
 * little load balance for fewer migration misses.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/migration.hh"
#include "util/table.hh"

using namespace mpos;

namespace
{

struct Outcome
{
    uint64_t migrations;
    uint64_t ctxsw;
    double migrationPctOfOsD;
    double migrationStallPct;
    double osStallPct;
};

Outcome
run(bool affinity)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Multpgm;
    cfg.measureCycles = 15000000;
    cfg.kernelCfg.affinitySched = affinity;
    core::Experiment exp(cfg);
    exp.run();

    const auto mig = core::computeMigration(
        exp.attribution(), exp.misses(), exp.account());
    return {exp.kern().migrations(), exp.kern().contextSwitches(),
            mig.totalPctOfOsD, mig.stallPctNonIdle,
            exp.table1().osMissStallPct};
}

} // namespace

int
main()
{
    std::printf("Evaluating cache-affinity scheduling on Multpgm "
                "(paper Sec. 4.2.2)...\n\n");
    const Outcome base = run(false);
    const Outcome aff = run(true);

    util::TextTable t("Global run queue vs cache-affinity");
    t.header({"", "migrations", "ctx switches", "migr %of OS D-miss",
              "migr stall %", "OS stall %"});
    t.row({"global queue", std::to_string(base.migrations),
           std::to_string(base.ctxsw),
           core::fmt1(base.migrationPctOfOsD),
           core::fmt1(base.migrationStallPct),
           core::fmt1(base.osStallPct)});
    t.row({"affinity", std::to_string(aff.migrations),
           std::to_string(aff.ctxsw),
           core::fmt1(aff.migrationPctOfOsD),
           core::fmt1(aff.migrationStallPct),
           core::fmt1(aff.osStallPct)});
    t.print();

    std::printf("\nAs the paper argues, affinity cannot eliminate "
                "migration entirely (load\nbalance still forces some "
                "moves), but it removes a sizable share of the\n"
                "Sharing misses on per-process kernel state.\n");
    return 0;
}
