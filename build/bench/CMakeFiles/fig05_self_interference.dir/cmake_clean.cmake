file(REMOVE_RECURSE
  "CMakeFiles/fig05_self_interference.dir/fig05_self_interference.cc.o"
  "CMakeFiles/fig05_self_interference.dir/fig05_self_interference.cc.o.d"
  "fig05_self_interference"
  "fig05_self_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_self_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
