file(REMOVE_RECURSE
  "CMakeFiles/table10_sync_stall.dir/table10_sync_stall.cc.o"
  "CMakeFiles/table10_sync_stall.dir/table10_sync_stall.cc.o.d"
  "table10_sync_stall"
  "table10_sync_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_sync_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
