# Empty compiler generated dependencies file for table10_sync_stall.
# This may be replaced when dependencies are built.
