file(REMOVE_RECURSE
  "CMakeFiles/fig08_sharing_structs.dir/fig08_sharing_structs.cc.o"
  "CMakeFiles/fig08_sharing_structs.dir/fig08_sharing_structs.cc.o.d"
  "fig08_sharing_structs"
  "fig08_sharing_structs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sharing_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
