# Empty compiler generated dependencies file for fig08_sharing_structs.
# This may be replaced when dependencies are built.
