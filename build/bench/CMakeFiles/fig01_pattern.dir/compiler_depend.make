# Empty compiler generated dependencies file for fig01_pattern.
# This may be replaced when dependencies are built.
