file(REMOVE_RECURSE
  "CMakeFiles/fig01_pattern.dir/fig01_pattern.cc.o"
  "CMakeFiles/fig01_pattern.dir/fig01_pattern.cc.o.d"
  "fig01_pattern"
  "fig01_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
