# Empty compiler generated dependencies file for table01_workloads.
# This may be replaced when dependencies are built.
