file(REMOVE_RECURSE
  "CMakeFiles/table01_workloads.dir/table01_workloads.cc.o"
  "CMakeFiles/table01_workloads.dir/table01_workloads.cc.o.d"
  "table01_workloads"
  "table01_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
