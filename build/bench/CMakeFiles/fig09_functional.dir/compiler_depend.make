# Empty compiler generated dependencies file for fig09_functional.
# This may be replaced when dependencies are built.
