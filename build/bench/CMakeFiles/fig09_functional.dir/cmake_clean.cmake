file(REMOVE_RECURSE
  "CMakeFiles/fig09_functional.dir/fig09_functional.cc.o"
  "CMakeFiles/fig09_functional.dir/fig09_functional.cc.o.d"
  "fig09_functional"
  "fig09_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
