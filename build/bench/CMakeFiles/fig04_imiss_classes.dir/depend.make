# Empty dependencies file for fig04_imiss_classes.
# This may be replaced when dependencies are built.
