file(REMOVE_RECURSE
  "CMakeFiles/fig04_imiss_classes.dir/fig04_imiss_classes.cc.o"
  "CMakeFiles/fig04_imiss_classes.dir/fig04_imiss_classes.cc.o.d"
  "fig04_imiss_classes"
  "fig04_imiss_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_imiss_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
