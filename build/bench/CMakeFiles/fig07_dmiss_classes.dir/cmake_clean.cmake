file(REMOVE_RECURSE
  "CMakeFiles/fig07_dmiss_classes.dir/fig07_dmiss_classes.cc.o"
  "CMakeFiles/fig07_dmiss_classes.dir/fig07_dmiss_classes.cc.o.d"
  "fig07_dmiss_classes"
  "fig07_dmiss_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dmiss_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
