
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_dmiss_classes.cc" "bench/CMakeFiles/fig07_dmiss_classes.dir/fig07_dmiss_classes.cc.o" "gcc" "bench/CMakeFiles/fig07_dmiss_classes.dir/fig07_dmiss_classes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mpos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/mpos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
