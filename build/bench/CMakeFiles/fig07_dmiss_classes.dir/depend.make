# Empty dependencies file for fig07_dmiss_classes.
# This may be replaced when dependencies are built.
