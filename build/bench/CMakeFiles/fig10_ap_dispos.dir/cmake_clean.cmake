file(REMOVE_RECURSE
  "CMakeFiles/fig10_ap_dispos.dir/fig10_ap_dispos.cc.o"
  "CMakeFiles/fig10_ap_dispos.dir/fig10_ap_dispos.cc.o.d"
  "fig10_ap_dispos"
  "fig10_ap_dispos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ap_dispos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
