# Empty compiler generated dependencies file for fig10_ap_dispos.
# This may be replaced when dependencies are built.
