file(REMOVE_RECURSE
  "CMakeFiles/table04_migration.dir/table04_migration.cc.o"
  "CMakeFiles/table04_migration.dir/table04_migration.cc.o.d"
  "table04_migration"
  "table04_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
