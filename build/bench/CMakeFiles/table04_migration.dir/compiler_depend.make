# Empty compiler generated dependencies file for table04_migration.
# This may be replaced when dependencies are built.
