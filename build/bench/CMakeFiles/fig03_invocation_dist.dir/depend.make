# Empty dependencies file for fig03_invocation_dist.
# This may be replaced when dependencies are built.
