file(REMOVE_RECURSE
  "CMakeFiles/fig03_invocation_dist.dir/fig03_invocation_dist.cc.o"
  "CMakeFiles/fig03_invocation_dist.dir/fig03_invocation_dist.cc.o.d"
  "fig03_invocation_dist"
  "fig03_invocation_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_invocation_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
