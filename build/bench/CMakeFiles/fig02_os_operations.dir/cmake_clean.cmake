file(REMOVE_RECURSE
  "CMakeFiles/fig02_os_operations.dir/fig02_os_operations.cc.o"
  "CMakeFiles/fig02_os_operations.dir/fig02_os_operations.cc.o.d"
  "fig02_os_operations"
  "fig02_os_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_os_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
