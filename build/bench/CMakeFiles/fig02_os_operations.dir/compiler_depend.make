# Empty compiler generated dependencies file for fig02_os_operations.
# This may be replaced when dependencies are built.
