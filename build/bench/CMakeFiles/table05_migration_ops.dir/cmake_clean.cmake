file(REMOVE_RECURSE
  "CMakeFiles/table05_migration_ops.dir/table05_migration_ops.cc.o"
  "CMakeFiles/table05_migration_ops.dir/table05_migration_ops.cc.o.d"
  "table05_migration_ops"
  "table05_migration_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_migration_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
