# Empty compiler generated dependencies file for table05_migration_ops.
# This may be replaced when dependencies are built.
