# Empty dependencies file for table07_block_sizes.
# This may be replaced when dependencies are built.
