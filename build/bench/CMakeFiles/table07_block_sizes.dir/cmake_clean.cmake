file(REMOVE_RECURSE
  "CMakeFiles/table07_block_sizes.dir/table07_block_sizes.cc.o"
  "CMakeFiles/table07_block_sizes.dir/table07_block_sizes.cc.o.d"
  "table07_block_sizes"
  "table07_block_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_block_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
