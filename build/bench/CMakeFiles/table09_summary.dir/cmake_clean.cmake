file(REMOVE_RECURSE
  "CMakeFiles/table09_summary.dir/table09_summary.cc.o"
  "CMakeFiles/table09_summary.dir/table09_summary.cc.o.d"
  "table09_summary"
  "table09_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
