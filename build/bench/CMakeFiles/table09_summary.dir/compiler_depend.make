# Empty compiler generated dependencies file for table09_summary.
# This may be replaced when dependencies are built.
