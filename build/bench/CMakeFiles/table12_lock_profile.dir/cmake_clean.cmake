file(REMOVE_RECURSE
  "CMakeFiles/table12_lock_profile.dir/table12_lock_profile.cc.o"
  "CMakeFiles/table12_lock_profile.dir/table12_lock_profile.cc.o.d"
  "table12_lock_profile"
  "table12_lock_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_lock_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
