# Empty compiler generated dependencies file for table12_lock_profile.
# This may be replaced when dependencies are built.
