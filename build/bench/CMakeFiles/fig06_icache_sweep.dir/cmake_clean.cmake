file(REMOVE_RECURSE
  "CMakeFiles/fig06_icache_sweep.dir/fig06_icache_sweep.cc.o"
  "CMakeFiles/fig06_icache_sweep.dir/fig06_icache_sweep.cc.o.d"
  "fig06_icache_sweep"
  "fig06_icache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_icache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
