# Empty dependencies file for fig06_icache_sweep.
# This may be replaced when dependencies are built.
