file(REMOVE_RECURSE
  "CMakeFiles/table06_blockops.dir/table06_blockops.cc.o"
  "CMakeFiles/table06_blockops.dir/table06_blockops.cc.o.d"
  "table06_blockops"
  "table06_blockops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_blockops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
