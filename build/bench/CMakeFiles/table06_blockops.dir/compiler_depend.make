# Empty compiler generated dependencies file for table06_blockops.
# This may be replaced when dependencies are built.
