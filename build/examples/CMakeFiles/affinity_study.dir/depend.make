# Empty dependencies file for affinity_study.
# This may be replaced when dependencies are built.
