file(REMOVE_RECURSE
  "CMakeFiles/affinity_study.dir/affinity_study.cpp.o"
  "CMakeFiles/affinity_study.dir/affinity_study.cpp.o.d"
  "affinity_study"
  "affinity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affinity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
