file(REMOVE_RECURSE
  "CMakeFiles/os_profile.dir/os_profile.cpp.o"
  "CMakeFiles/os_profile.dir/os_profile.cpp.o.d"
  "os_profile"
  "os_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
