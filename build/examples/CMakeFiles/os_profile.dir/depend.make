# Empty dependencies file for os_profile.
# This may be replaced when dependencies are built.
