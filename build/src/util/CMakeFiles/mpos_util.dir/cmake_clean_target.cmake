file(REMOVE_RECURSE
  "libmpos_util.a"
)
