# Empty compiler generated dependencies file for mpos_util.
# This may be replaced when dependencies are built.
