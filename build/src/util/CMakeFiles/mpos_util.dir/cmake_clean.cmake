file(REMOVE_RECURSE
  "CMakeFiles/mpos_util.dir/histogram.cc.o"
  "CMakeFiles/mpos_util.dir/histogram.cc.o.d"
  "CMakeFiles/mpos_util.dir/stats.cc.o"
  "CMakeFiles/mpos_util.dir/stats.cc.o.d"
  "CMakeFiles/mpos_util.dir/table.cc.o"
  "CMakeFiles/mpos_util.dir/table.cc.o.d"
  "libmpos_util.a"
  "libmpos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
