file(REMOVE_RECURSE
  "CMakeFiles/mpos_workload.dir/app_model.cc.o"
  "CMakeFiles/mpos_workload.dir/app_model.cc.o.d"
  "CMakeFiles/mpos_workload.dir/edit.cc.o"
  "CMakeFiles/mpos_workload.dir/edit.cc.o.d"
  "CMakeFiles/mpos_workload.dir/mp3d.cc.o"
  "CMakeFiles/mpos_workload.dir/mp3d.cc.o.d"
  "CMakeFiles/mpos_workload.dir/multpgm.cc.o"
  "CMakeFiles/mpos_workload.dir/multpgm.cc.o.d"
  "CMakeFiles/mpos_workload.dir/oracle.cc.o"
  "CMakeFiles/mpos_workload.dir/oracle.cc.o.d"
  "CMakeFiles/mpos_workload.dir/pmake.cc.o"
  "CMakeFiles/mpos_workload.dir/pmake.cc.o.d"
  "CMakeFiles/mpos_workload.dir/workload.cc.o"
  "CMakeFiles/mpos_workload.dir/workload.cc.o.d"
  "libmpos_workload.a"
  "libmpos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
