
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_model.cc" "src/workload/CMakeFiles/mpos_workload.dir/app_model.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/app_model.cc.o.d"
  "/root/repo/src/workload/edit.cc" "src/workload/CMakeFiles/mpos_workload.dir/edit.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/edit.cc.o.d"
  "/root/repo/src/workload/mp3d.cc" "src/workload/CMakeFiles/mpos_workload.dir/mp3d.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/mp3d.cc.o.d"
  "/root/repo/src/workload/multpgm.cc" "src/workload/CMakeFiles/mpos_workload.dir/multpgm.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/multpgm.cc.o.d"
  "/root/repo/src/workload/oracle.cc" "src/workload/CMakeFiles/mpos_workload.dir/oracle.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/oracle.cc.o.d"
  "/root/repo/src/workload/pmake.cc" "src/workload/CMakeFiles/mpos_workload.dir/pmake.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/pmake.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/mpos_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/mpos_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/mpos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
