file(REMOVE_RECURSE
  "libmpos_workload.a"
)
