# Empty dependencies file for mpos_workload.
# This may be replaced when dependencies are built.
