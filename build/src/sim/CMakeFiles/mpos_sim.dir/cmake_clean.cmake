file(REMOVE_RECURSE
  "CMakeFiles/mpos_sim.dir/cache.cc.o"
  "CMakeFiles/mpos_sim.dir/cache.cc.o.d"
  "CMakeFiles/mpos_sim.dir/machine.cc.o"
  "CMakeFiles/mpos_sim.dir/machine.cc.o.d"
  "CMakeFiles/mpos_sim.dir/memsys.cc.o"
  "CMakeFiles/mpos_sim.dir/memsys.cc.o.d"
  "CMakeFiles/mpos_sim.dir/monitor.cc.o"
  "CMakeFiles/mpos_sim.dir/monitor.cc.o.d"
  "CMakeFiles/mpos_sim.dir/syncbus.cc.o"
  "CMakeFiles/mpos_sim.dir/syncbus.cc.o.d"
  "CMakeFiles/mpos_sim.dir/tlb.cc.o"
  "CMakeFiles/mpos_sim.dir/tlb.cc.o.d"
  "libmpos_sim.a"
  "libmpos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
