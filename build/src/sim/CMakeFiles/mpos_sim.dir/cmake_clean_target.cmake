file(REMOVE_RECURSE
  "libmpos_sim.a"
)
