# Empty compiler generated dependencies file for mpos_sim.
# This may be replaced when dependencies are built.
