file(REMOVE_RECURSE
  "CMakeFiles/mpos_core.dir/ap_dispos.cc.o"
  "CMakeFiles/mpos_core.dir/ap_dispos.cc.o.d"
  "CMakeFiles/mpos_core.dir/attribution.cc.o"
  "CMakeFiles/mpos_core.dir/attribution.cc.o.d"
  "CMakeFiles/mpos_core.dir/blockop_stats.cc.o"
  "CMakeFiles/mpos_core.dir/blockop_stats.cc.o.d"
  "CMakeFiles/mpos_core.dir/experiment.cc.o"
  "CMakeFiles/mpos_core.dir/experiment.cc.o.d"
  "CMakeFiles/mpos_core.dir/functional_class.cc.o"
  "CMakeFiles/mpos_core.dir/functional_class.cc.o.d"
  "CMakeFiles/mpos_core.dir/invocation_stats.cc.o"
  "CMakeFiles/mpos_core.dir/invocation_stats.cc.o.d"
  "CMakeFiles/mpos_core.dir/lock_stats.cc.o"
  "CMakeFiles/mpos_core.dir/lock_stats.cc.o.d"
  "CMakeFiles/mpos_core.dir/migration.cc.o"
  "CMakeFiles/mpos_core.dir/migration.cc.o.d"
  "CMakeFiles/mpos_core.dir/miss_classify.cc.o"
  "CMakeFiles/mpos_core.dir/miss_classify.cc.o.d"
  "CMakeFiles/mpos_core.dir/report.cc.o"
  "CMakeFiles/mpos_core.dir/report.cc.o.d"
  "CMakeFiles/mpos_core.dir/resim.cc.o"
  "CMakeFiles/mpos_core.dir/resim.cc.o.d"
  "CMakeFiles/mpos_core.dir/stall.cc.o"
  "CMakeFiles/mpos_core.dir/stall.cc.o.d"
  "libmpos_core.a"
  "libmpos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
