# Empty dependencies file for mpos_core.
# This may be replaced when dependencies are built.
