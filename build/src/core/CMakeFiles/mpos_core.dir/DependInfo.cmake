
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap_dispos.cc" "src/core/CMakeFiles/mpos_core.dir/ap_dispos.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/ap_dispos.cc.o.d"
  "/root/repo/src/core/attribution.cc" "src/core/CMakeFiles/mpos_core.dir/attribution.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/attribution.cc.o.d"
  "/root/repo/src/core/blockop_stats.cc" "src/core/CMakeFiles/mpos_core.dir/blockop_stats.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/blockop_stats.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/mpos_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/functional_class.cc" "src/core/CMakeFiles/mpos_core.dir/functional_class.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/functional_class.cc.o.d"
  "/root/repo/src/core/invocation_stats.cc" "src/core/CMakeFiles/mpos_core.dir/invocation_stats.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/invocation_stats.cc.o.d"
  "/root/repo/src/core/lock_stats.cc" "src/core/CMakeFiles/mpos_core.dir/lock_stats.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/lock_stats.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/core/CMakeFiles/mpos_core.dir/migration.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/migration.cc.o.d"
  "/root/repo/src/core/miss_classify.cc" "src/core/CMakeFiles/mpos_core.dir/miss_classify.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/miss_classify.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/mpos_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/report.cc.o.d"
  "/root/repo/src/core/resim.cc" "src/core/CMakeFiles/mpos_core.dir/resim.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/resim.cc.o.d"
  "/root/repo/src/core/stall.cc" "src/core/CMakeFiles/mpos_core.dir/stall.cc.o" "gcc" "src/core/CMakeFiles/mpos_core.dir/stall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mpos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/mpos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
