file(REMOVE_RECURSE
  "libmpos_core.a"
)
