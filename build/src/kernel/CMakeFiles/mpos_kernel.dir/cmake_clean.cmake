file(REMOVE_RECURSE
  "CMakeFiles/mpos_kernel.dir/fs.cc.o"
  "CMakeFiles/mpos_kernel.dir/fs.cc.o.d"
  "CMakeFiles/mpos_kernel.dir/kernel.cc.o"
  "CMakeFiles/mpos_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/mpos_kernel.dir/layout.cc.o"
  "CMakeFiles/mpos_kernel.dir/layout.cc.o.d"
  "CMakeFiles/mpos_kernel.dir/locks.cc.o"
  "CMakeFiles/mpos_kernel.dir/locks.cc.o.d"
  "CMakeFiles/mpos_kernel.dir/paths.cc.o"
  "CMakeFiles/mpos_kernel.dir/paths.cc.o.d"
  "libmpos_kernel.a"
  "libmpos_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpos_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
