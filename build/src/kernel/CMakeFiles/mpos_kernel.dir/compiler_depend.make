# Empty compiler generated dependencies file for mpos_kernel.
# This may be replaced when dependencies are built.
