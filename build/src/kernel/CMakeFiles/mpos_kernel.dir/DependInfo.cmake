
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/fs.cc" "src/kernel/CMakeFiles/mpos_kernel.dir/fs.cc.o" "gcc" "src/kernel/CMakeFiles/mpos_kernel.dir/fs.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/mpos_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/mpos_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/layout.cc" "src/kernel/CMakeFiles/mpos_kernel.dir/layout.cc.o" "gcc" "src/kernel/CMakeFiles/mpos_kernel.dir/layout.cc.o.d"
  "/root/repo/src/kernel/locks.cc" "src/kernel/CMakeFiles/mpos_kernel.dir/locks.cc.o" "gcc" "src/kernel/CMakeFiles/mpos_kernel.dir/locks.cc.o.d"
  "/root/repo/src/kernel/paths.cc" "src/kernel/CMakeFiles/mpos_kernel.dir/paths.cc.o" "gcc" "src/kernel/CMakeFiles/mpos_kernel.dir/paths.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
