file(REMOVE_RECURSE
  "libmpos_kernel.a"
)
