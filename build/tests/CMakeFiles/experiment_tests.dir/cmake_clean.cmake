file(REMOVE_RECURSE
  "CMakeFiles/experiment_tests.dir/core/experiment_test.cc.o"
  "CMakeFiles/experiment_tests.dir/core/experiment_test.cc.o.d"
  "experiment_tests"
  "experiment_tests.pdb"
  "experiment_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
