# Empty compiler generated dependencies file for experiment_tests.
# This may be replaced when dependencies are built.
