file(REMOVE_RECURSE
  "CMakeFiles/kernel_tests.dir/kernel/fs_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/fs_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/kernel_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/kernel_test.cc.o.d"
  "CMakeFiles/kernel_tests.dir/kernel/layout_test.cc.o"
  "CMakeFiles/kernel_tests.dir/kernel/layout_test.cc.o.d"
  "kernel_tests"
  "kernel_tests.pdb"
  "kernel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
