
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cache_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/cache_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/cache_test.cc.o.d"
  "/root/repo/tests/sim/machine_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cc.o.d"
  "/root/repo/tests/sim/memsys_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/memsys_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/memsys_test.cc.o.d"
  "/root/repo/tests/sim/syncbus_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/syncbus_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/syncbus_test.cc.o.d"
  "/root/repo/tests/sim/tlb_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/tlb_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/tlb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mpos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/mpos_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
