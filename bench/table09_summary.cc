/**
 * @file
 * Table 9: components of the stall time directly caused by OS misses
 * -- total, instruction misses, migration data misses, block-op data
 * misses, rest. Shape: instruction misses ~10% dwarf the other
 * components; no single dominant fix.
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
struct PaperRow
{
    const char *name;
    double total, instr, migr, block, rest;
};
const PaperRow paper[4] = {
    {"Pmake", 21.0, 10.9, 1.0, 6.2, 2.9},
    {"Multpgm", 21.5, 9.2, 4.2, 4.7, 3.4},
    {"Oracle", 16.6, 10.6, 2.6, 0.6, 2.8},
    {"AVERAGE", 19.7, 10.2, 2.6, 3.8, 3.0},
};
} // namespace

void
mpos::bench::run_table09(BenchContext &ctx)
{
    core::banner("Table 9: OS miss stall decomposition "
                 "(% of non-idle time)");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Total", "Instr", "Migration",
              "Block ops", "Rest"});
    core::Table9Row sum{};
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = exp.table9();
        const auto &p = paper[i];
        t.row({p.name, "paper", core::fmt1(p.total),
               core::fmt1(p.instr), core::fmt1(p.migr),
               core::fmt1(p.block), core::fmt1(p.rest)});
        t.row({"", "measured", core::fmt1(r.totalPct),
               core::fmt1(r.instrPct), core::fmt1(r.migrationPct),
               core::fmt1(r.blockOpPct), core::fmt1(r.restPct)});
        t.rule();
        sum.totalPct += r.totalPct / 3;
        sum.instrPct += r.instrPct / 3;
        sum.migrationPct += r.migrationPct / 3;
        sum.blockOpPct += r.blockOpPct / 3;
        sum.restPct += r.restPct / 3;
    }
    t.row({"AVERAGE", "paper", core::fmt1(paper[3].total),
           core::fmt1(paper[3].instr), core::fmt1(paper[3].migr),
           core::fmt1(paper[3].block), core::fmt1(paper[3].rest)});
    t.row({"", "measured", core::fmt1(sum.totalPct),
           core::fmt1(sum.instrPct), core::fmt1(sum.migrationPct),
           core::fmt1(sum.blockOpPct), core::fmt1(sum.restPct)});
    t.print();
}
