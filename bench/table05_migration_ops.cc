/**
 * @file
 * Table 5: the fraction of migration misses incurred in run-queue
 * management, low-level exception handling, and read/write system
 * call recognition/setup -- together 25-50% in the paper.
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
struct PaperRow
{
    const char *name;
    double runq, lowlevel, rdwr, total;
};
const PaperRow paper[3] = {
    {"Pmake", 11.5, 7.3, 6.4, 25.2},
    {"Multpgm", 20.5, 12.9, 13.2, 46.6},
    {"Oracle", 14.3, 14.5, 20.7, 49.5},
};
} // namespace

void
mpos::bench::run_table05(BenchContext &ctx)
{
    core::banner("Table 5: migration misses by operation");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Run queue", "Low-level exc.",
              "R/W setup", "Total"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = core::computeMigrationOps(exp.attribution());
        const auto &p = paper[i];
        t.row({p.name, "paper", core::fmt1(p.runq),
               core::fmt1(p.lowlevel), core::fmt1(p.rdwr),
               core::fmt1(p.total)});
        t.row({"", "measured", core::fmt1(r.runQueuePct),
               core::fmt1(r.lowLevelPct), core::fmt1(r.rdwrSetupPct),
               core::fmt1(r.totalPct)});
        t.rule();
    }
    t.print();
}
