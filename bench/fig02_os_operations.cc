/**
 * @file
 * Figure 2: relative frequency of the operations executed by the OS
 * in Multpgm -- about half sginap, ~20% TLB faults, ~20% I/O system
 * calls, ~5% clock interrupts.
 */

#include "bench/analyses.hh"

using namespace mpos;
using sim::OsOp;

void
mpos::bench::run_fig02(BenchContext &ctx)
{
    core::banner("Figure 2: OS operation frequency in Multpgm");
    core::shapeNote();

    auto &exp = ctx.standard(workload::WorkloadKind::Multpgm);

    const uint64_t sginap = exp.osOpCount(OsOp::Sginap);
    const uint64_t tlb = exp.osOpCount(OsOp::CheapTlbFault) +
                         exp.osOpCount(OsOp::ExpensiveTlbFault);
    const uint64_t io = exp.osOpCount(OsOp::IoSyscall);
    const uint64_t other = exp.osOpCount(OsOp::OtherSyscall);
    const uint64_t intr = exp.osOpCount(OsOp::Interrupt);
    const uint64_t total = sginap + tlb + io + other + intr;

    auto pct = [&](uint64_t v) {
        return total ? 100.0 * double(v) / double(total) : 0.0;
    };

    util::TextTable t;
    t.header({"Operation", "paper %", "measured %"});
    t.row({"sginap syscalls", "~50", core::fmt1(pct(sginap))});
    t.row({"TLB faults (non-UTLB)", "~20", core::fmt1(pct(tlb))});
    t.row({"I/O system calls", "~20", core::fmt1(pct(io))});
    t.row({"other syscalls + interrupts", "~10",
           core::fmt1(pct(other + intr))});
    t.print();

    std::printf("%s", util::barChart(
        "\nMeasured operation mix (%):",
        {{"sginap", pct(sginap)},
         {"tlb-faults", pct(tlb)},
         {"io-syscalls", pct(io)},
         {"other-syscalls", pct(other)},
         {"interrupts", pct(intr)}}).c_str());
    std::printf("\n(UTLB spikes, shown separately in Figure 1: %llu)\n",
                static_cast<unsigned long long>(
                    exp.osOpCount(OsOp::UtlbFault)));
}
