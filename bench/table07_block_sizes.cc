/**
 * @file
 * Table 7: characterization of the sizes of blocks copied or cleared
 * in Pmake. Shape: ~half of copies operate on a full page or a
 * regular page fragment; ~70% of clears are full pages.
 */

#include "bench/analyses.hh"

using namespace mpos;
using kernel::BlockKind;

void
mpos::bench::run_table07(BenchContext &ctx)
{
    core::banner("Table 7: block sizes copied/cleared in Pmake");
    core::shapeNote();

    auto &exp = ctx.standard(workload::WorkloadKind::Pmake);
    const auto ops = exp.blockOps();
    const auto copies = core::blockSizes(ops, BlockKind::Copy);
    const auto clears = core::blockSizes(ops, BlockKind::Clear);

    util::TextTable t;
    t.header({"Operation", "", "Full page %", "Regular fragment %",
              "Irregular %", "invocations"});
    t.row({"Copy", "paper", "5", "45", "50", "-"});
    t.row({"", "measured", core::fmt1(copies.fullPagePct),
           core::fmt1(copies.regularFragmentPct),
           core::fmt1(copies.irregularPct),
           core::fmtCount(copies.invocations)});
    t.rule();
    t.row({"Clear", "paper", "70", "-", "30", "-"});
    t.row({"", "measured", core::fmt1(clears.fullPagePct),
           core::fmt1(clears.regularFragmentPct),
           core::fmt1(clears.irregularPct),
           core::fmtCount(clears.invocations)});
    t.print();

    std::printf("\nExamples (as in the paper): full-page copies are "
                "COW updates; regular\nfragments are buffer-cache "
                "transfers; irregular chunks are string and\nsyscall-"
                "parameter copies and kernel-heap initialization.\n");
}
