/**
 * @file
 * Figure 7: classification of OS data misses (normalized to all OS
 * misses = 100). Shape: Sharing is the dominant data-miss class; the
 * rest is displacement and cold misses, largely from block
 * operations.
 */

#include "bench/analyses.hh"

using namespace mpos;
using core::MissClass;

void
mpos::bench::run_fig07(BenchContext &ctx)
{
    core::banner("Figure 7: OS data-miss classes "
                 "(% of all OS misses)");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Cold", "Dispos", "Dispap", "Sharing",
              "Uncached", "D total"});
    // Approximate values read from Figure 7 of the paper.
    const char *paperRows[3][7] = {
        {"Pmake", "12", "8", "7", "18", "3", "~48"},
        {"Multpgm", "10", "6", "6", "19", "3", "~44"},
        {"Oracle", "12", "9", "12", "19", "3", "~55"},
    };

    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto &mc = exp.misses();
        const double all = double(mc.osTotal());
        auto pc = [&](MissClass c) {
            return all ? 100.0 * double(mc.osD[unsigned(c)]) / all
                       : 0.0;
        };
        t.row({paperRows[i][0], "paper", paperRows[i][1],
               paperRows[i][2], paperRows[i][3], paperRows[i][4],
               paperRows[i][5], paperRows[i][6]});
        t.row({"", "measured", core::fmt1(pc(MissClass::Cold)),
               core::fmt1(pc(MissClass::Dispos)),
               core::fmt1(pc(MissClass::Dispap)),
               core::fmt1(pc(MissClass::Sharing)),
               core::fmt1(pc(MissClass::Uncached)),
               core::fmt1(all ? 100.0 * double(mc.osDTotal()) / all
                              : 0.0)});
        t.rule();
    }
    t.print();
}
