/**
 * @file
 * `mpos_trace`: offline companion of the trace exporter.
 *
 *   mpos_trace jsonl <trace> <out.jsonl>   convert a binary trace
 *   mpos_trace validate <file.json>        check a JSON report parses
 *
 * The converter resolves kernel-routine ids through the symbol table
 * embedded in the trace, so it needs nothing but the file. The
 * validator is the same minimal syntax checker the tests use to keep
 * the hand-written report JSON honest.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/trace/trace.hh"
#include "util/json.hh"

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: mpos_trace jsonl <trace> <out.jsonl>\n"
                 "       mpos_trace validate <file.json>\n");
    return 2;
}

int
doJsonl(const char *in, const char *out)
{
    std::string err;
    if (!mpos::sim::trace::convertToJsonl(in, out, &err)) {
        std::fprintf(stderr, "mpos_trace: %s\n", err.c_str());
        return 1;
    }
    return 0;
}

int
doValidate(const char *path)
{
    FILE *f = std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "mpos_trace: cannot open %s\n", path);
        return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    size_t at = 0;
    std::string err;
    if (!mpos::util::jsonValidate(text, &at, &err)) {
        std::fprintf(stderr, "mpos_trace: %s: invalid JSON at byte "
                             "%zu: %s\n",
                     path, at, err.c_str());
        return 1;
    }
    std::printf("%s: valid JSON (%zu bytes)\n", path, text.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 4 && std::strcmp(argv[1], "jsonl") == 0)
        return doJsonl(argv[2], argv[3]);
    if (argc == 3 && std::strcmp(argv[1], "validate") == 0)
        return doValidate(argv[2]);
    return usage();
}
