/**
 * @file
 * Figure 1: the basic repeating execution pattern -- application
 * stretches interrupted by nearly miss-free UTLB spikes and by full
 * OS invocations that each replace only a small fraction of the
 * caches.
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{

struct PaperRow
{
    const char *name;
    double osIMiss, osDMiss;   ///< Mean misses per OS invocation.
    double intervalMs;         ///< Mean ms between OS invocations.
    double utlbMisses;         ///< Mean misses per UTLB fault.
};

// Figure 1 values (Pmake shown in full in the paper; intervals given
// in the text for all three).
const PaperRow paper[3] = {
    {"Pmake", 154, 141, 1.9, 0.1},
    {"Multpgm", -1, -1, 0.4, 0.1},
    {"Oracle", -1, -1, 0.7, 0.1},
};

std::string
opt(double v, const std::string &s)
{
    return v < 0 ? "n/a" : s;
}

} // namespace

void
mpos::bench::run_fig01(BenchContext &ctx)
{
    core::banner("Figure 1: the repeating OS/application pattern");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "I-miss/inv", "D-miss/inv",
              "OS every (ms)", "UTLB miss/flt", "UTLB cyc",
              "UTLB/app-inv"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto &inv = exp.invocations();
        const auto &p = paper[i];
        t.row({p.name, "paper", opt(p.osIMiss, core::fmt1(p.osIMiss)),
               opt(p.osDMiss, core::fmt1(p.osDMiss)),
               core::fmt2(p.intervalMs), "<0.1", "~40", "-"});
        t.row({"", "measured",
               core::fmt1(inv.osInvocations().meanI()),
               core::fmt1(inv.osInvocations().meanD()),
               core::fmt2(inv.cyclesBetweenOsInvocations(
                              exp.elapsed()) /
                          33000.0),
               core::fmt2(inv.utlbFaults().meanI() +
                          inv.utlbFaults().meanD()),
               core::fmt1(inv.utlbFaults().meanCycles()),
               core::fmt1(inv.utlbPerAppInvocation())});
        t.rule();
    }
    t.print();
    std::printf("\nShape checks: UTLB spikes are frequent but almost "
                "miss-free; Multpgm has the\nshortest interval "
                "between OS invocations; one invocation replaces only "
                "a small\nfraction of the 4096-line caches.\n");
}
