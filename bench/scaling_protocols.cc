/**
 * @file
 * Scaling study: MSI vs MESI at 8-64 CPUs (Section 6 extrapolation).
 * For each protocol x CPU count the table reports lock contention
 * (Runqlk failed acquires per ms, the paper's Figure 11 metric),
 * OS misses per 1k non-idle cycles, the Sharing share of OS misses,
 * and the kernel stall fraction. Shape: contention and sharing
 * misses grow superlinearly with CPUs; MESI's exclusive state trims
 * upgrade traffic on private lines, so its stall fraction stays
 * slightly below MSI's at every machine size.
 */

#include "bench/analyses.hh"

using namespace mpos;
using core::MissClass;
using sim::Protocol;

namespace
{

constexpr uint32_t cpuCounts[] = {8, 16, 32, 64};
constexpr Protocol protocols[] = {Protocol::Mesi, Protocol::Msi};

std::string
jobName(Protocol p, uint32_t ncpu)
{
    return std::string("scaling/") + sim::protocolName(p) + "/cpus" +
           std::to_string(ncpu);
}

} // namespace

void
mpos::bench::prepare_scaling(BenchContext &ctx)
{
    for (const Protocol p : protocols) {
        for (const uint32_t ncpu : cpuCounts) {
            auto cfg = standardConfig(workload::WorkloadKind::Multpgm);
            scaleToCpus(cfg, ncpu);
            cfg.machine.protocol = p;
            // A quarter of the standard budget per cell keeps the
            // 8-cell sweep close to one standard run's cost.
            cfg.measureCycles = envOr("MPOS_CYCLES", 20000000) / 4;
            ctx.submit(jobName(p, ncpu), cfg);
        }
    }
}

void
mpos::bench::run_scaling(BenchContext &ctx)
{
    prepare_scaling(ctx);

    core::banner("Scaling study: MSI vs MESI at 8-64 CPUs "
                 "(Multpgm)");
    core::shapeNote();

    util::TextTable t;
    t.header({"Protocol", "CPUs", "Runqlk fails/ms",
              "OS miss/1k cyc", "Sharing %", "Kstall %"});

    for (const Protocol p : protocols) {
        for (const uint32_t ncpu : cpuCounts) {
            auto &exp = ctx.get(jobName(p, ncpu));
            const auto &mc = exp.misses();
            const double osAll = double(mc.osTotal());
            const double sharingPct =
                osAll ? 100.0 *
                            double(mc.osD[unsigned(
                                MissClass::Sharing)]) /
                            osAll
                      : 0.0;
            const auto acct = exp.account();
            const double nonIdle = double(acct.nonIdle());
            const double missPerK =
                nonIdle ? 1000.0 * osAll / nonIdle : 0.0;
            const double kstallPct =
                acct.kernel()
                    ? 100.0 *
                          double(acct.stall[unsigned(
                              sim::ExecMode::Kernel)]) /
                          double(acct.kernel())
                    : 0.0;
            t.row({sim::protocolName(p), std::to_string(ncpu),
                   core::fmt2(exp.lockStats().failsPerMs(
                       kernel::Runqlk, exp.elapsed())),
                   core::fmt2(missPerK), core::fmt1(sharingPct),
                   core::fmt1(kstallPct)});
        }
        t.rule();
    }
    t.print();
    std::printf("\nPaper shape: lock contention and kernel stall "
                "grow with CPU count\nuntil the run queue saturates; "
                "MESI avoids upgrade traffic on\nunshared lines, so "
                "it tracks at or below MSI in kernel stall,\nwith "
                "the gap largest at small CPU counts where private "
                "lines\ndominate.\n");
}
