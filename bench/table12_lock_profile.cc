/**
 * @file
 * Table 12: characteristics of the most frequently acquired kernel
 * locks in Pmake -- acquire interval, failed-acquire fraction,
 * waiters at release, same-CPU locality, and the cached/uncached
 * bus-operation ratio. Shape: low contention everywhere except
 * Runqlk; waiters ~1; locality mostly >75% with Calock (and to a
 * lesser degree Runqlk) the exceptions; caching slashes bus traffic.
 */

#include <cstring>

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
struct PaperRow
{
    const char *lock;
    double kcycles, failPct, waiters, samePct, cachedPct;
};
const PaperRow paper[6] = {
    {"Memlock", 9.5, 2.2, 1.02, 79.9, 12},
    {"Runqlk", 16.5, 13.7, 1.29, 36.9, 43},
    {"Ifree", 16.7, 0.8, 1.00, 91.4, 5},
    {"Dfbmaplk", 19.4, 0.0, 1.00, 99.0, 0},
    {"Bfreelock", 22.5, 1.5, 1.00, 72.6, 15},
    {"Calock", 35.1, 0.3, 1.00, 11.4, 45},
};

uint32_t
lockIdOf(const char *name)
{
    using namespace mpos::kernel;
    if (!strcmp(name, "Memlock")) return Memlock;
    if (!strcmp(name, "Runqlk")) return Runqlk;
    if (!strcmp(name, "Ifree")) return Ifree;
    if (!strcmp(name, "Dfbmaplk")) return Dfbmaplk;
    if (!strcmp(name, "Bfreelock")) return Bfreelock;
    return Calock;
}
} // namespace

void
mpos::bench::run_table12(BenchContext &ctx)
{
    core::banner("Table 12: most frequently acquired locks (Pmake)");
    core::shapeNote();

    auto &exp = ctx.standard(workload::WorkloadKind::Pmake);

    util::TextTable t;
    t.header({"Lock", "", "kcyc between acq", "failed %", "waiters",
              "same-CPU %", "cached/uncached ops %"});
    for (const auto &p : paper) {
        const uint32_t id = lockIdOf(p.lock);
        const auto &lp = exp.lockStats().profile(id);
        const auto &ops = exp.machine().sync().counts(id);
        const double ratio =
            ops.uncachedOps ? 100.0 * double(ops.cachedOps) /
                                  double(ops.uncachedOps)
                            : 0.0;
        t.row({p.lock, "paper", core::fmt1(p.kcycles),
               core::fmt1(p.failPct), core::fmt2(p.waiters),
               core::fmt1(p.samePct), core::fmt1(p.cachedPct)});
        t.row({"", "measured",
               core::fmt1(lp.acquireInterval() / 1000.0),
               core::fmt1(100.0 * lp.failedFraction()),
               core::fmt2(lp.waitersIfAny() == 0.0
                              ? 1.0
                              : lp.waitersIfAny()),
               core::fmt1(100.0 * lp.sameCpuFraction()),
               core::fmt1(ratio)});
        t.rule();
    }
    t.print();
}
