/**
 * @file
 * Shared helpers for the bench binaries: standard experiment
 * configuration (overridable through environment variables), and the
 * paper-vs-measured table conventions.
 *
 * Environment knobs:
 *   MPOS_CYCLES   - measured cycles per CPU (default 20,000,000)
 *   MPOS_WARMUP   - warmup cycles (default 8,000,000)
 *   MPOS_SEED     - workload seed (default 7)
 *   MPOS_JOBS     - host threads for parallel experiment jobs
 *   MPOS_PROTOCOL - coherence protocol: mesi (default), msi, mi
 *   MPOS_LOCK_PROTO - lock primitive: tas (default), ticket, mcs,
 *                     futex, rcu
 *   MPOS_ASSOC    - D-cache associativity (L1 and L2; default 1)
 *   MPOS_CPUS     - simulated CPU count (default 4)
 */

#ifndef MPOS_BENCH_COMMON_HH
#define MPOS_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "core/migration.hh"
#include "core/report.hh"
#include "util/table.hh"

namespace mpos::bench
{

inline uint64_t
envOr(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : def;
}

/**
 * Retarget an experiment at an N-CPU machine: CPU count, a
 * proportionally bigger workload, and a process table wide enough
 * for the extra jobs. Identity at the measured machine's size
 * (<= 4 CPUs), so default goldens are unaffected.
 */
inline void
scaleToCpus(core::ExperimentConfig &cfg, uint32_t ncpus)
{
    cfg.machine.numCpus = ncpus;
    cfg.options = workload::scaledOptions(cfg.options, ncpus);
    if (ncpus <= 4)
        return;
    const uint32_t f = ncpus / 4;
    cfg.kernelCfg.layout.maxProcs = std::min<uint32_t>(256, 64 * f);
    // Keep the 4-CPU runs' page-pool pressure ratio: the pool grows
    // with the process count (scaledOptions tops out near 10x), and
    // physical memory doubles on the biggest machines so the larger
    // pool still fits beside the kernel image. The kernel clamps the
    // request to the pages the layout actually has, so an oversized
    // ask degrades to "no pressure cap" rather than failing.
    cfg.useRecommendedPool = false;
    cfg.kernelCfg.userPoolPages =
        workload::Workload::recommendedPoolPages(cfg.kind) *
        std::min<uint32_t>(f, 10);
    if (ncpus >= 32)
        cfg.machine.memBytes *= 2;
}

/** Standard experiment configuration for a workload. */
inline core::ExperimentConfig
standardConfig(workload::WorkloadKind kind)
{
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.measureCycles = envOr("MPOS_CYCLES", 20000000);
    cfg.warmupCycles = envOr("MPOS_WARMUP", 8000000);
    cfg.options.seed = envOr("MPOS_SEED", 7);
    if (const char *p = std::getenv("MPOS_PROTOCOL")) {
        if (!sim::parseProtocol(p, cfg.machine.protocol)) {
            std::fprintf(stderr,
                         "mpos_bench: unknown MPOS_PROTOCOL '%s' "
                         "(mesi, msi or mi)\n", p);
            std::exit(2);
        }
    }
    if (const char *p = std::getenv("MPOS_LOCK_PROTO")) {
        if (!sim::parseLockPolicy(p, cfg.machine.lockPolicy)) {
            std::fprintf(stderr,
                         "mpos_bench: unknown MPOS_LOCK_PROTO '%s' "
                         "(tas, ticket, mcs, futex or rcu)\n", p);
            std::exit(2);
        }
    }
    if (const uint64_t assoc = envOr("MPOS_ASSOC", 0)) {
        cfg.machine.l1dAssoc = uint32_t(assoc);
        cfg.machine.l2dAssoc = uint32_t(assoc);
    }
    if (const uint64_t ncpus = envOr("MPOS_CPUS", 0))
        scaleToCpus(cfg, uint32_t(ncpus));
    return cfg;
}

/** Run one workload with the standard configuration. */
inline std::unique_ptr<core::Experiment>
runWorkload(workload::WorkloadKind kind)
{
    auto cfg = standardConfig(kind);
    auto exp = std::make_unique<core::Experiment>(cfg);
    std::fprintf(stderr, "[bench] running %s for %llu cycles...\n",
                 workload::workloadName(kind),
                 static_cast<unsigned long long>(cfg.measureCycles));
    exp->run();
    return exp;
}

/** The three paper workloads, in paper order. */
inline const workload::WorkloadKind allWorkloads[3] = {
    workload::WorkloadKind::Pmake,
    workload::WorkloadKind::Multpgm,
    workload::WorkloadKind::Oracle,
};

} // namespace mpos::bench

#endif // MPOS_BENCH_COMMON_HH
