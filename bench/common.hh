/**
 * @file
 * Shared helpers for the bench binaries: standard experiment
 * configuration (overridable through environment variables), and the
 * paper-vs-measured table conventions.
 *
 * Environment knobs:
 *   MPOS_CYCLES  - measured cycles per CPU (default 20,000,000)
 *   MPOS_WARMUP  - warmup cycles (default 8,000,000)
 *   MPOS_SEED    - workload seed (default 7)
 *   MPOS_JOBS    - host threads for parallel experiment jobs
 */

#ifndef MPOS_BENCH_COMMON_HH
#define MPOS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "core/migration.hh"
#include "core/report.hh"
#include "util/table.hh"

namespace mpos::bench
{

inline uint64_t
envOr(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : def;
}

/** Standard experiment configuration for a workload. */
inline core::ExperimentConfig
standardConfig(workload::WorkloadKind kind)
{
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.measureCycles = envOr("MPOS_CYCLES", 20000000);
    cfg.warmupCycles = envOr("MPOS_WARMUP", 8000000);
    cfg.options.seed = envOr("MPOS_SEED", 7);
    return cfg;
}

/** Run one workload with the standard configuration. */
inline std::unique_ptr<core::Experiment>
runWorkload(workload::WorkloadKind kind)
{
    auto cfg = standardConfig(kind);
    auto exp = std::make_unique<core::Experiment>(cfg);
    std::fprintf(stderr, "[bench] running %s for %llu cycles...\n",
                 workload::workloadName(kind),
                 static_cast<unsigned long long>(cfg.measureCycles));
    exp->run();
    return exp;
}

/** The three paper workloads, in paper order. */
inline const workload::WorkloadKind allWorkloads[3] = {
    workload::WorkloadKind::Pmake,
    workload::WorkloadKind::Multpgm,
    workload::WorkloadKind::Oracle,
};

} // namespace mpos::bench

#endif // MPOS_BENCH_COMMON_HH
