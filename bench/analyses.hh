/**
 * @file
 * The per-figure analysis functions (one translation unit each, named
 * after the figure/table they regenerate). Each prints exactly what
 * the historical standalone binary printed; registry.cc wires them
 * into the unified driver.
 */

#ifndef MPOS_BENCH_ANALYSES_HH
#define MPOS_BENCH_ANALYSES_HH

#include "bench/registry.hh"

namespace mpos::bench
{

void run_table01(BenchContext &ctx);
void run_fig01(BenchContext &ctx);
void run_fig02(BenchContext &ctx);
void run_fig03(BenchContext &ctx);
void run_fig04(BenchContext &ctx);
void run_fig05(BenchContext &ctx);
void run_fig06(BenchContext &ctx);
void run_fig07(BenchContext &ctx);
void run_fig08(BenchContext &ctx);
void run_table04(BenchContext &ctx);
void run_table05(BenchContext &ctx);
void run_table06(BenchContext &ctx);
void run_table07(BenchContext &ctx);
void run_fig09(BenchContext &ctx);
void run_table09(BenchContext &ctx);
void run_fig10(BenchContext &ctx);
void run_table10(BenchContext &ctx);
void run_table12(BenchContext &ctx);
void prepare_fig11(BenchContext &ctx);
void run_fig11(BenchContext &ctx);
void prepare_ablation(BenchContext &ctx);
void run_ablation(BenchContext &ctx);
void prepare_scaling(BenchContext &ctx);
void run_scaling(BenchContext &ctx);
void prepare_lockproto(BenchContext &ctx);
void run_lockproto(BenchContext &ctx);

} // namespace mpos::bench

#endif // MPOS_BENCH_ANALYSES_HH
