/**
 * @file
 * Figure 9: OS misses classified by the high-level operation in
 * progress (Table 8 classes). Shape: I/O system calls and TLB faults
 * cause most data misses; I/O system calls dominate instruction
 * misses; interrupts are relatively I-heavy; sginap matters only in
 * Multpgm.
 */

#include "bench/analyses.hh"

using namespace mpos;
using sim::OsOp;

void
mpos::bench::run_fig09(BenchContext &ctx)
{
    core::banner("Figure 9: OS misses by high-level operation "
                 "(% of OS I/D misses)");
    core::shapeNote();

    for (auto kind : bench::allWorkloads) {
        auto &exp = ctx.standard(kind);
        const auto &f = exp.functional();
        const double ti = double(f.totalI());
        const double td = double(f.totalD());

        util::TextTable t(workload::workloadName(kind));
        t.header({"Operation", "D-miss %", "I-miss %"});
        auto row = [&](const char *name, uint64_t d, uint64_t i) {
            t.row({name, core::fmt1(td ? 100.0 * double(d) / td : 0),
                   core::fmt1(ti ? 100.0 * double(i) / ti : 0)});
        };
        row("expensive TLB faults",
            f.dMisses(OsOp::ExpensiveTlbFault),
            f.iMisses(OsOp::ExpensiveTlbFault));
        row("cheap TLB faults (incl. UTLB)", f.cheapTlbD(),
            f.cheapTlbI());
        row("I/O system calls", f.dMisses(OsOp::IoSyscall),
            f.iMisses(OsOp::IoSyscall));
        row("sginap", f.dMisses(OsOp::Sginap),
            f.iMisses(OsOp::Sginap));
        row("other system calls", f.dMisses(OsOp::OtherSyscall),
            f.iMisses(OsOp::OtherSyscall));
        row("interrupts", f.dMisses(OsOp::Interrupt),
            f.iMisses(OsOp::Interrupt));
        t.print();
        std::printf("\n");
    }
}
