/**
 * @file
 * Figure 5: OS self-interference (Dispos) instruction misses by the
 * physical address of the routine where they occur, X axis in
 * multiples of the 64 KB I-cache. The paper's observation: thin
 * spikes -- a few routines collect most of the self-interference.
 */

#include <algorithm>
#include <vector>

#include "bench/analyses.hh"

using namespace mpos;

void
mpos::bench::run_fig05(BenchContext &ctx)
{
    core::banner("Figure 5: Dispos I-misses vs. routine address "
                 "(Pmake)");
    core::shapeNote();

    auto &exp = ctx.standard(workload::WorkloadKind::Pmake);
    const auto &layout = exp.kern().layout();
    const auto &attr = exp.attribution();

    struct Row
    {
        std::string name;
        double cacheUnits;
        uint64_t misses;
    };
    std::vector<Row> rows;
    uint64_t total = 0;
    for (uint32_t r = 0; r < layout.numRoutines(); ++r) {
        const uint64_t m = attr.disposMissesOfRoutine(
            kernel::RoutineId(r));
        total += m;
        if (m == 0)
            continue;
        const auto &info = layout.routineInfo(kernel::RoutineId(r));
        rows.push_back({info.name,
                        double(info.textBase) / (64.0 * 1024.0), m});
    }

    std::printf("Dispos I-misses by routine (address in I-cache "
                "multiples):\n");
    for (const auto &r : rows) {
        std::printf("  %5.2f  %-16s %8llu  %5.1f%%\n", r.cacheUnits,
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.misses),
                    100.0 * double(r.misses) / double(total));
    }

    // Spike concentration: the top 5 routines' share.
    std::vector<Row> sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [](const Row &a, const Row &b) {
                  return a.misses > b.misses;
              });
    uint64_t top5 = 0;
    for (size_t i = 0; i < sorted.size() && i < 5; ++i)
        top5 += sorted[i].misses;
    std::printf("\nTop-5 routines collect %.1f%% of self-interference "
                "misses\n(paper: misses concentrated in thin spikes "
                "-- a few routines).\n",
                total ? 100.0 * double(top5) / double(total) : 0.0);
}
