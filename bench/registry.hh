/**
 * @file
 * The unified bench driver's registry: every figure/table of the
 * paper is an *analysis* over shared experiment results, not a
 * binary that re-simulates them.
 *
 * The three standard workload runs (Pmake/Multpgm/Oracle, standard
 * configuration, resim recording on) are simulated once each --
 * concurrently, on the MPOS_JOBS thread pool -- and every analysis
 * reads from them; true sweeps (Figure 6 cache sizes are replays of
 * the recorded stream, Figure 11 CPU counts and the ablations are
 * extra machine configurations) fan out as additional parallel jobs.
 * Results are consumed in submission order, so the printed tables are
 * byte-identical no matter how many host threads ran the sweep.
 *
 * `mpos_bench` runs every analysis; the historical per-figure
 * binaries are two-line wrappers that run exactly one.
 */

#ifndef MPOS_BENCH_REGISTRY_HH
#define MPOS_BENCH_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "bench/common.hh"
#include "core/journal.hh"
#include "core/runner.hh"

namespace mpos::bench
{

/** Observability switches applied to every simulation job. */
struct ObsOptions
{
    bool trace = false;   ///< Binary trace per job (--trace).
    bool metrics = false; ///< Time-sliced metrics (--metrics).
    bool profile = false; ///< Routine profiler (--profile).
    std::string dir;      ///< Output directory for traces/profiles.

    bool any() const { return trace || metrics || profile; }
};

/** Obs-output path stem for a job ("std/pmake" -> dir/std_pmake). */
std::string obsFileBase(const std::string &dir, const std::string &job);

/** Shared state handed to every analysis. */
class BenchContext
{
  public:
    /** @param jobs Worker threads; 0 means MPOS_JOBS/default. */
    explicit BenchContext(unsigned jobs = 0);

    /** Full resilience policy (timeouts, retries). */
    explicit BenchContext(const core::RunnerOptions &opt);

    /**
     * Arrange for the named job to fail: when it is submitted, its
     * config gets a fault seed guaranteed (via
     * sim::FaultPlan::firstTrippingSeed) to trip the watchdog within
     * the run. For exercising --keep-going and the failure paths of
     * the JSON report.
     */
    void setFaultJob(const std::string &name) { faultJob_ = name; }

    /**
     * Enable the observability layer on every subsequently submitted
     * job: per-job binary traces under o.dir, the time-sliced metrics
     * engine, and/or the routine profiler.
     */
    void setObservability(const ObsOptions &o) { obs_ = o; }
    const ObsOptions &observability() const { return obs_; }

    /**
     * Host threads for each job's parallel epoch/barrier core
     * (MachineConfig::simThreads on every subsequently submitted
     * job). The driver composes this with the job pool: it clamps
     * the pool so jobs * simThreads stays within the hardware.
     */
    void setSimThreads(uint32_t n) { simThreads_ = n ? n : 1; }
    uint32_t simThreads() const { return simThreads_; }

    /** Queue the standard run for a workload without waiting. */
    void prepareStandard(workload::WorkloadKind kind);

    /** The shared standard run (submits on first request, waits). */
    core::Experiment &standard(workload::WorkloadKind kind);

    /** Queue a named sweep/ablation job; no-op if already queued. */
    void submit(const std::string &name,
                const core::ExperimentConfig &cfg);

    /** Wait for a previously submitted job and return it. */
    core::Experiment &get(const std::string &name);

    core::ExperimentRunner &runner() { return runner_; }

    /**
     * Journal every submission (a write-ahead Plan record per job;
     * the runner adds JobStart/JobEnd via RunnerOptions::journal).
     */
    void setJournal(core::SweepJournal *j) { journal_ = j; }

    /**
     * Plan-only mode (--dry-run): submitJob records the planned job
     * but never simulates. Analyses must not be run in this mode.
     */
    void setPlanOnly(bool on) { planOnly_ = on; }

    /** Every job planned this run, in submission order. */
    const std::vector<std::pair<std::string, core::ExperimentConfig>> &
    planned() const
    {
        return planned_;
    }

  private:
    void submitJob(const std::string &name,
                   core::ExperimentConfig cfg);

    core::ExperimentRunner runner_;
    std::string faultJob_; ///< Job to sabotage; empty = none.
    ObsOptions obs_;       ///< Applied to every submitted job.
    uint32_t simThreads_ = 1; ///< Parallel-core threads per job.
    core::SweepJournal *journal_ = nullptr;
    bool planOnly_ = false;
    std::vector<std::pair<std::string, core::ExperimentConfig>>
        planned_;
};

/// @name Standard-workload requirement bits (allWorkloads order)
/// @{
inline constexpr uint32_t NeedsNone = 0;
inline constexpr uint32_t NeedsPmake = 1;
inline constexpr uint32_t NeedsMultpgm = 2;
inline constexpr uint32_t NeedsOracle = 4;
inline constexpr uint32_t NeedsAll = 7;
/// @}

/** One registered figure/table analysis. */
struct BenchEntry
{
    const char *name;  ///< Registry + binary name ("fig01_pattern").
    const char *title; ///< One-line description for --list.
    uint32_t standardMask; ///< Standard runs the analysis consumes.
    /** Queues extra sweep jobs (nullptr if none). Idempotent. */
    void (*prepare)(BenchContext &);
    /** Prints the figure/table from completed results. */
    void (*run)(BenchContext &);
};

/** All analyses, in the paper's presentation order. */
const std::vector<BenchEntry> &benchRegistry();

/** Lookup by name; nullptr if unknown. */
const BenchEntry *findBench(std::string_view name);

/** Job name of the shared standard run for a workload. */
std::string standardJobName(workload::WorkloadKind kind);

/** Entry point of the unified `mpos_bench` driver. */
int benchMain(int argc, char **argv);

/** Entry point of the historical single-figure wrapper binaries. */
int singleBenchMain(const char *name);

} // namespace mpos::bench

#endif // MPOS_BENCH_REGISTRY_HH
