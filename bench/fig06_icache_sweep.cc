/**
 * @file
 * Figure 6: effect of I-cache size and associativity on the OS
 * instruction miss rate, relative to the measured 64 KB direct-mapped
 * machine. Replays the recorded miss stream through larger caches,
 * with a no-invalidation variant exposing the Inval floor.
 *
 * Shape: 2-way < direct-mapped at each size; Pmake and Multpgm
 * saturate near 256 KB on the Inval floor; Oracle keeps dropping
 * toward 1 MB.
 */

#include "bench/analyses.hh"

using namespace mpos;

void
mpos::bench::run_fig06(BenchContext &ctx)
{
    core::banner("Figure 6: I-cache size/associativity sweep "
                 "(relative OS I-miss rate)");
    core::shapeNote();

    const uint64_t sizesKb[] = {64, 128, 256, 512, 1024};

    for (auto kind : bench::allWorkloads) {
        // The shared standard runs record the replay stream, so the
        // sweep is pure replay -- no re-simulation of the workload.
        auto &rs = ctx.standard(kind).resim();

        util::TextTable t(std::string("  ") +
                          workload::workloadName(kind));
        t.header({"I-cache", "direct", "2-way", "direct, no Inval"});
        for (const uint64_t kb : sizesKb) {
            // One replay yields both direct-mapped curves.
            const auto pair = rs.simulateDirectPair(kb * 1024);
            std::string twoway = "-";
            if (kb > 64) {
                // Like the paper, the filtered stream cannot support
                // a 2-way cache at the measured size itself.
                twoway = core::fmt2(
                    rs.simulate(kb * 1024, 2, true)
                        .relativeOsMissRate);
            }
            t.row({std::to_string(kb) + " KB",
                   core::fmt2(pair.withInval.relativeOsMissRate),
                   twoway,
                   core::fmt2(pair.noInval.relativeOsMissRate)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Shape: the gap between 'direct' and 'direct, no "
                "Inval' at large sizes is the\ninvalidation floor "
                "that limits Pmake/Multpgm; Oracle's curve keeps "
                "falling.\n");
}
