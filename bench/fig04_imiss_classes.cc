/**
 * @file
 * Figure 4: classification of OS instruction misses (normalized to
 * all OS misses = 100), plus the Dispossame component of Dispos.
 * Shape: I-misses are 40-65% of all OS misses; Dispos is sizable;
 * Dispap dominates in Oracle.
 */

#include "bench/analyses.hh"

using namespace mpos;
using core::MissClass;

void
mpos::bench::run_fig04(BenchContext &ctx)
{
    core::banner("Figure 4: OS instruction-miss classes "
                 "(% of all OS misses)");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Cold", "Dispos", "Dispap", "Inval",
              "Uncached", "I total", "Dispossame/Dispos"});
    // Approximate values read from Figure 4 of the paper.
    const char *paperRows[3][8] = {
        {"Pmake", "3", "20", "12", "13", "4", "~52", "~35%"},
        {"Multpgm", "5", "17", "16", "13", "5", "~56", "~20%"},
        {"Oracle", "4", "8", "28", "2", "3", "~45", "~25%"},
    };

    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto &mc = exp.misses();
        const double all = double(mc.osTotal());
        auto pc = [&](MissClass c) {
            return all ? 100.0 * double(mc.osI[unsigned(c)]) / all
                       : 0.0;
        };
        const double dispos = double(
            mc.osI[unsigned(MissClass::Dispos)]);
        t.row({paperRows[i][0], "paper", paperRows[i][1],
               paperRows[i][2], paperRows[i][3], paperRows[i][4],
               paperRows[i][5], paperRows[i][6], paperRows[i][7]});
        t.row({"", "measured", core::fmt1(pc(MissClass::Cold)),
               core::fmt1(pc(MissClass::Dispos)),
               core::fmt1(pc(MissClass::Dispap)),
               core::fmt1(pc(MissClass::Inval)),
               core::fmt1(pc(MissClass::Uncached)),
               core::fmt1(all ? 100.0 * double(mc.osITotal()) / all
                              : 0.0),
               core::fmt1(dispos > 0
                              ? 100.0 * double(mc.osDispossameI) /
                                    dispos
                              : 0.0) + "%"});
        t.rule();
    }
    t.print();
}
