/**
 * @file
 * Table 4: conservative estimate of data misses and stall time caused
 * by process migration (Sharing misses on the kernel stack, user
 * structure, and process table).
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
struct PaperRow
{
    const char *name;
    double kstack, ustruct, proctab, total, stall;
};
const PaperRow paper[3] = {
    {"Pmake", 4.8, 2.5, 2.6, 9.9, 1.0},
    {"Multpgm", 14.4, 11.6, 7.8, 33.8, 4.2},
    {"Oracle", 18.0, 19.0, 7.1, 44.1, 2.6},
};
} // namespace

void
mpos::bench::run_table04(BenchContext &ctx)
{
    core::banner("Table 4: data misses and stall from process "
                 "migration");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "KStack %D", "UStruct %D", "ProcTab %D",
              "Total %D", "Stall %"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = core::computeMigration(
            exp.attribution(), exp.misses(), exp.account(),
            exp.config().machine.busMissStall);
        const auto &p = paper[i];
        t.row({p.name, "paper", core::fmt1(p.kstack),
               core::fmt1(p.ustruct), core::fmt1(p.proctab),
               core::fmt1(p.total), core::fmt1(p.stall)});
        t.row({"", "measured", core::fmt1(r.kernelStackPctOfOsD),
               core::fmt1(r.userStructPctOfOsD),
               core::fmt1(r.procTablePctOfOsD),
               core::fmt1(r.totalPctOfOsD),
               core::fmt1(r.stallPctNonIdle)});
        t.rule();
    }
    t.print();
}
