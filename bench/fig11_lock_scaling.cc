/**
 * @file
 * Figure 11: lock contention as the number of CPUs grows, measured
 * as failed acquire episodes per millisecond for the most contended
 * locks in Multpgm. Shape: contention grows with CPU count and
 * Runqlk grows fastest, foreshadowing its bottleneck on larger
 * machines (Section 6).
 */

#include "bench/analyses.hh"

using namespace mpos;
using kernel::Memlock;
using kernel::Runqlk;

namespace
{

constexpr uint32_t cpuCounts[] = {1, 2, 4, 6, 8};

std::string
jobName(uint32_t ncpu)
{
    return "fig11/cpus" + std::to_string(ncpu);
}

} // namespace

void
mpos::bench::prepare_fig11(BenchContext &ctx)
{
    for (const uint32_t ncpu : cpuCounts) {
        auto cfg = standardConfig(workload::WorkloadKind::Multpgm);
        cfg.machine.numCpus = ncpu;
        cfg.collectMisses = false; // only lock stats needed
        cfg.measureCycles = envOr("MPOS_CYCLES", 20000000) / 2;
        ctx.submit(jobName(ncpu), cfg);
    }
}

void
mpos::bench::run_fig11(BenchContext &ctx)
{
    prepare_fig11(ctx);

    core::banner("Figure 11: failed lock acquires per ms vs CPUs "
                 "(Multpgm)");
    core::shapeNote();

    util::TextTable t;
    t.header({"CPUs", "Runqlk fails/ms", "Memlock fails/ms",
              "Bfreelock fails/ms"});

    for (const uint32_t ncpu : cpuCounts) {
        auto &exp = ctx.get(jobName(ncpu));
        const auto &ls = exp.lockStats();
        t.row({std::to_string(ncpu),
               core::fmt2(ls.failsPerMs(Runqlk, exp.elapsed())),
               core::fmt2(ls.failsPerMs(Memlock, exp.elapsed())),
               core::fmt2(ls.failsPerMs(kernel::Bfreelock,
                                        exp.elapsed()))});
    }
    t.print();
    std::printf("\nPaper shape: failed acquires/ms rise steadily "
                "with CPU count; Runqlk steepest\n(its contention "
                "'will be significant for machines with more "
                "CPUs').\n");
}
