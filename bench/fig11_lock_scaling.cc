/**
 * @file
 * Figure 11: lock contention as the number of CPUs grows, measured
 * as failed acquire episodes per millisecond for the most contended
 * locks in Multpgm. Shape: contention grows with CPU count and
 * Runqlk grows fastest, foreshadowing its bottleneck on larger
 * machines (Section 6).
 */

#include "bench/common.hh"

using namespace mpos;
using kernel::Memlock;
using kernel::Runqlk;

int
main()
{
    core::banner("Figure 11: failed lock acquires per ms vs CPUs "
                 "(Multpgm)");
    core::shapeNote();

    util::TextTable t;
    t.header({"CPUs", "Runqlk fails/ms", "Memlock fails/ms",
              "Bfreelock fails/ms"});

    for (uint32_t ncpu : {1u, 2u, 4u, 6u, 8u}) {
        auto cfg = bench::standardConfig(
            workload::WorkloadKind::Multpgm);
        cfg.machine.numCpus = ncpu;
        cfg.collectMisses = false; // only lock stats needed
        cfg.measureCycles = bench::envOr("MPOS_CYCLES", 20000000) / 2;
        core::Experiment exp(cfg);
        std::fprintf(stderr, "[bench] Multpgm with %u CPUs...\n",
                     ncpu);
        exp.run();
        const auto &ls = exp.lockStats();
        t.row({std::to_string(ncpu),
               core::fmt2(ls.failsPerMs(Runqlk, exp.elapsed())),
               core::fmt2(ls.failsPerMs(Memlock, exp.elapsed())),
               core::fmt2(ls.failsPerMs(kernel::Bfreelock,
                                        exp.elapsed()))});
    }
    t.print();
    std::printf("\nPaper shape: failed acquires/ms rise steadily "
                "with CPU count; Runqlk steepest\n(its contention "
                "'will be significant for machines with more "
                "CPUs').\n");
    return 0;
}
