/**
 * @file
 * Table 6: data misses and stall caused by the three block
 * operations (block copy, block clear, pfdat traversal). Shape:
 * Pmake suffers far more than Oracle; stall up to ~6%.
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
struct PaperRow
{
    const char *name;
    double copy, clear, traverse, total, stall;
};
const PaperRow paper[3] = {
    {"Pmake", 17.6, 23.7, 19.7, 61.0, 6.2},
    {"Multpgm", 15.1, 7.2, 15.7, 38.0, 4.7},
    {"Oracle", 8.6, 1.0, 1.0, 10.6, 0.6},
};
} // namespace

void
mpos::bench::run_table06(BenchContext &ctx)
{
    core::banner("Table 6: data misses and stall from block "
                 "operations");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Copy %D", "Clear %D", "Traverse %D",
              "Total %D", "Stall %"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = exp.blockOpReport();
        const auto &p = paper[i];
        t.row({p.name, "paper", core::fmt1(p.copy),
               core::fmt1(p.clear), core::fmt1(p.traverse),
               core::fmt1(p.total), core::fmt1(p.stall)});
        t.row({"", "measured", core::fmt1(r.copyPctOfOsD),
               core::fmt1(r.clearPctOfOsD),
               core::fmt1(r.traversePctOfOsD),
               core::fmt1(r.totalPctOfOsD),
               core::fmt1(r.stallPctNonIdle)});
        t.rule();
    }
    t.print();
}
