/**
 * @file
 * `mpos_bench`: the unified run-once/analyze-many driver. One sweep
 * simulates each standard workload once (plus the Figure 11 and
 * ablation configurations) on a host thread pool and regenerates
 * every figure/table of the paper, with a JSON results file next to
 * the text tables. See registry.hh for the architecture.
 */

#include "bench/registry.hh"

int
main(int argc, char **argv)
{
    return mpos::bench::benchMain(argc, argv);
}
