/**
 * @file
 * Table 10: CPU stall caused by OS synchronization accesses under the
 * real machine's dedicated synchronization bus (no atomic RMW) versus
 * the simulated cached LL/SC protocol on the main bus. Shape: ~4-5%
 * collapses to ~1%.
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{
const double paperUncached[3] = {4.2, 4.6, 4.7};
const double paperCached[3] = {0.7, 0.8, 1.1};
} // namespace

void
mpos::bench::run_table10(BenchContext &ctx)
{
    core::banner("Table 10: OS synchronization stall, sync bus vs "
                 "cached atomic RMW");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "Sync bus (current) %",
              "Atomic RMW + caches %"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = exp.syncStallReport();
        t.row({workload::workloadName(bench::allWorkloads[i]),
               "paper", core::fmt1(paperUncached[i]),
               core::fmt1(paperCached[i])});
        t.row({"", "measured", core::fmt2(r.uncachedPct),
               core::fmt2(r.cachedPct)});
        t.rule();
    }
    t.print();
    std::printf("\nBoth columns come from one run: the transport "
                "counts bus operations under\nboth protocols "
                "simultaneously over the same lock-access trace, as "
                "the paper's\nSection 5.1 simulation does.\n");
}
