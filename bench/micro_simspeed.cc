/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * cache probe/fill, coherent data access, TLB translation, and
 * whole-machine cycles per second on a live workload.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "sim/cache.hh"
#include "sim/memsys.hh"
#include "util/rng.hh"

using namespace mpos;
using namespace mpos::sim;

static void
BM_CacheTouch(benchmark::State &state)
{
    Cache c("bm", 64 * 1024, uint32_t(state.range(0)), 16);
    util::Rng rng(1);
    for (Addr a = 0; a < 64 * 1024; a += 16)
        c.fill(a);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.touch(a));
        a = (a + 16) & (64 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheTouch)->Arg(1)->Arg(2)->Arg(4);

static void
BM_CoherentDataAccess(benchmark::State &state)
{
    MachineConfig cfg;
    Monitor mon;
    MemorySystem mem(cfg, mon);
    MonitorContext ctx;
    util::Rng rng(2);
    Cycle now = 0;
    for (auto _ : state) {
        const CpuId cpu = CpuId(rng.below(4));
        const Addr a = rng.below(16384) * 16;
        benchmark::DoNotOptimize(
            mem.dataAccess(cpu, a, rng.chance(0.3), ++now, ctx));
    }
}
BENCHMARK(BM_CoherentDataAccess);

static void
BM_TlbTranslate(benchmark::State &state)
{
    Tlb tlb(64);
    for (uint32_t i = 0; i < 64; ++i)
        tlb.insert(1, i, i, true);
    uint64_t page = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.translate(1, page));
        page = (page + 1) & 63;
    }
}
BENCHMARK(BM_TlbTranslate);

static void
BM_MachineCyclesPmake(benchmark::State &state)
{
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.warmupCycles = 1000000;
    cfg.measureCycles = 0;
    cfg.collectMisses = false;
    core::Experiment exp(cfg);
    exp.run();
    for (auto _ : state)
        exp.machine().run(100000);
    state.SetItemsProcessed(int64_t(state.iterations()) * 100000);
}
// Fixed iteration count: every iteration advances the *same* machine,
// so with the adaptive loop the measured window would depend on how
// many calibration iterations already drained the workload. Pinning
// the count measures cycles 1M..11M -- the busy phase -- every run,
// which makes before/after comparisons meaningful.
BENCHMARK(BM_MachineCyclesPmake)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(100);

static void
BM_MachineCyclesPmake8(benchmark::State &state)
{
    // The parallel-core headliner: an 8-CPU Pmake (maxJobs keeps all
    // CPUs busy) driven with Arg(0) host sim-threads; Arg(0) == 1 is
    // the serial baseline the speedup is measured against.
    core::ExperimentConfig cfg;
    cfg.kind = workload::WorkloadKind::Pmake;
    cfg.machine.numCpus = 8;
    cfg.machine.simThreads = uint32_t(state.range(0));
    cfg.warmupCycles = 1000000;
    cfg.measureCycles = 0;
    cfg.collectMisses = false;
    core::Experiment exp(cfg);
    exp.run();
    for (auto _ : state)
        exp.machine().run(100000);
    state.SetItemsProcessed(int64_t(state.iterations()) * 100000);
}
BENCHMARK(BM_MachineCyclesPmake8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(100)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

BENCHMARK_MAIN();
