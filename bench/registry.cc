#include "bench/registry.hh"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>

#include "bench/analyses.hh"
#include "core/service.hh"
#include "core/warmcache.hh"
#include "sim/trace/trace.hh"
#include "util/json.hh"

namespace mpos::bench
{

// ---------------------------------------------------------------- //
// Context                                                          //
// ---------------------------------------------------------------- //

BenchContext::BenchContext(unsigned jobs)
    : runner_(jobs)
{
}

BenchContext::BenchContext(const core::RunnerOptions &opt)
    : runner_(opt)
{
}

std::string
obsFileBase(const std::string &dir, const std::string &job)
{
    std::string base;
    for (char c : job)
        base += (c == '/' || c == ' ') ? '_' : c;
    return dir + "/" + base;
}

void
BenchContext::submitJob(const std::string &name,
                        core::ExperimentConfig cfg)
{
    if (obs_.trace) {
        cfg.machine.trace = true;
        cfg.machine.traceFile = obsFileBase(obs_.dir, name) + ".trace";
        // Streaming mode: the file holds everything, so the in-memory
        // ring (also serving the watchdog dump) can stay small.
        cfg.machine.traceRingEntries = 64 * 1024;
    }
    if (obs_.metrics)
        cfg.machine.metrics = true;
    if (obs_.profile)
        cfg.machine.profile = true;
    cfg.machine.simThreads = simThreads_;
    if (!faultJob_.empty() && name == faultJob_) {
        // Guaranteed failure: pick the first seed whose fault plan
        // carries a synthetic watchdog trip inside this job's run.
        cfg.machine.faultHorizon =
            cfg.warmupCycles + cfg.measureCycles;
        cfg.machine.faultSeed = sim::FaultPlan::firstTrippingSeed(
            1, cfg.machine.faultHorizon);
        std::fprintf(stderr,
                     "[bench] fault-job %s: fault seed %llu, horizon "
                     "%llu\n",
                     name.c_str(),
                     (unsigned long long)cfg.machine.faultSeed,
                     (unsigned long long)cfg.machine.faultHorizon);
    }
    planned_.emplace_back(name, cfg);
    if (planOnly_)
        return;
    if (journal_) {
        // Write-ahead: the plan record is durable before the job can
        // run, so a resumed sweep rebuilds the report in submission
        // order no matter where a kill landed.
        journal_->appendPlan(name,
                             core::SweepJournal::jobConfigHash(cfg));
    }
    runner_.submit(name, cfg);
}

std::string
standardJobName(workload::WorkloadKind kind)
{
    return std::string("std/") + workload::workloadName(kind);
}

void
BenchContext::prepareStandard(workload::WorkloadKind kind)
{
    const std::string name = standardJobName(kind);
    for (const auto &[n, c] : planned_)
        if (n == name)
            return;
    // Resim recording is always on for the shared runs: the recorder
    // is a passive monitor observer (it cannot perturb simulated
    // events), and having the stream lets Figure 6 replay the same
    // run every other analysis reads.
    auto cfg = standardConfig(kind);
    cfg.collectResim = true;
    submitJob(name, cfg);
}

core::Experiment &
BenchContext::standard(workload::WorkloadKind kind)
{
    prepareStandard(kind);
    return runner_.get(standardJobName(kind));
}

void
BenchContext::submit(const std::string &name,
                     const core::ExperimentConfig &cfg)
{
    for (const auto &[n, c] : planned_)
        if (n == name)
            return;
    submitJob(name, cfg);
}

core::Experiment &
BenchContext::get(const std::string &name)
{
    return runner_.get(name);
}

// ---------------------------------------------------------------- //
// Registry                                                         //
// ---------------------------------------------------------------- //

const std::vector<BenchEntry> &
benchRegistry()
{
    // Paper presentation order; names match the wrapper binaries.
    static const std::vector<BenchEntry> entries = {
        {"table01_workloads", "Table 1: workload characteristics",
         NeedsAll, nullptr, run_table01},
        {"fig01_pattern", "Figure 1: repeating OS/app pattern",
         NeedsAll, nullptr, run_fig01},
        {"fig02_os_operations", "Figure 2: OS operation mix (Multpgm)",
         NeedsMultpgm, nullptr, run_fig02},
        {"fig03_invocation_dist",
         "Figure 3: per-invocation distributions (Pmake)", NeedsPmake,
         nullptr, run_fig03},
        {"fig04_imiss_classes", "Figure 4: OS I-miss classes",
         NeedsAll, nullptr, run_fig04},
        {"fig05_self_interference",
         "Figure 5: Dispos misses by routine (Pmake)", NeedsPmake,
         nullptr, run_fig05},
        {"fig06_icache_sweep",
         "Figure 6: I-cache size/associativity sweep", NeedsAll,
         nullptr, run_fig06},
        {"fig07_dmiss_classes", "Figure 7: OS D-miss classes",
         NeedsAll, nullptr, run_fig07},
        {"fig08_sharing_structs",
         "Figure 8: Sharing misses by data structure", NeedsAll,
         nullptr, run_fig08},
        {"table04_migration", "Table 4: migration misses and stall",
         NeedsAll, nullptr, run_table04},
        {"table05_migration_ops",
         "Table 5: migration misses by operation", NeedsAll, nullptr,
         run_table05},
        {"table06_blockops", "Table 6: block-operation misses",
         NeedsAll, nullptr, run_table06},
        {"table07_block_sizes", "Table 7: block sizes (Pmake)",
         NeedsPmake, nullptr, run_table07},
        {"fig09_functional", "Figure 9: misses by OS operation",
         NeedsAll, nullptr, run_fig09},
        {"table09_summary", "Table 9: stall decomposition", NeedsAll,
         nullptr, run_table09},
        {"fig10_ap_dispos", "Figure 10: OS-induced app misses",
         NeedsAll, nullptr, run_fig10},
        {"table10_sync_stall", "Table 10: synchronization stall",
         NeedsAll, nullptr, run_table10},
        {"table12_lock_profile", "Table 12: lock profile (Pmake)",
         NeedsPmake, nullptr, run_table12},
        {"fig11_lock_scaling",
         "Figure 11: lock contention vs CPU count", NeedsNone,
         prepare_fig11, run_fig11},
        {"ablation_optimizations", "Ablations: Sec. 4.2 proposals",
         NeedsNone, prepare_ablation, run_ablation},
        {"scaling_protocols",
         "Scaling: MSI vs MESI at 8-64 CPUs", NeedsNone,
         prepare_scaling, run_scaling},
        {"scaling_lockproto",
         "Lock primitives: tas/ticket/mcs/futex/rcu at 4-64 CPUs",
         NeedsNone, prepare_lockproto, run_lockproto},
    };
    return entries;
}

const BenchEntry *
findBench(std::string_view name)
{
    for (const auto &e : benchRegistry()) {
        if (name == e.name)
            return &e;
    }
    return nullptr;
}

// ---------------------------------------------------------------- //
// Drivers                                                          //
// ---------------------------------------------------------------- //

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct AnalysisRecord
{
    const char *name;
    bool ok = true;
    std::string error;
    double wallSeconds = 0;
};

/**
 * Redirect stdout into a temp file for the duration of one analysis
 * so its exact printed output can be stored as a golden file. The
 * captured text is re-printed to the real stdout afterwards, so a
 * --golden-dir run still shows everything.
 */
class StdoutCapture
{
  public:
    StdoutCapture()
    {
        std::fflush(stdout);
        tmp = std::tmpfile();
        savedFd = dup(fileno(stdout));
        if (!tmp || savedFd < 0 ||
            dup2(fileno(tmp), fileno(stdout)) < 0) {
            std::fprintf(stderr,
                         "mpos_bench: stdout capture failed\n");
            std::exit(2);
        }
    }

    /** Restore stdout and return (and echo) everything captured. */
    std::string
    finish()
    {
        std::fflush(stdout);
        dup2(savedFd, fileno(stdout));
        close(savedFd);
        std::string text;
        std::rewind(tmp);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0)
            text.append(buf, n);
        std::fclose(tmp);
        std::fwrite(text.data(), 1, text.size(), stdout);
        std::fflush(stdout);
        return text;
    }

  private:
    FILE *tmp = nullptr;
    int savedFd = -1;
};


// Full RFC 8259 escaping: error strings routinely carry watchdog
// dumps with tabs and other control characters the old ad-hoc
// escaper passed through raw, corrupting the report.
using util::jsonEscape;

/** Write one analysis's captured output as a golden JSON file. */
void
writeGolden(const std::string &dir, const char *name, bool ok,
            const std::string &output)
{
    const std::string path = dir + "/" + name + ".json";
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "mpos_bench: cannot write %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::fprintf(f, "{\n  \"analysis\": \"%s\",\n  \"status\": \"%s\","
                    "\n  \"output\": [\n",
                 name, ok ? "ok" : "error");
    std::string line;
    std::vector<std::string> lines;
    for (char c : output) {
        if (c == '\n') {
            lines.push_back(line);
            line.clear();
        } else {
            line += c;
        }
    }
    if (!line.empty())
        lines.push_back(line);
    for (size_t i = 0; i < lines.size(); ++i) {
        std::fprintf(f, "    \"%s\"%s\n", jsonEscape(lines[i]).c_str(),
                     i + 1 < lines.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** Per-job metrics windows as a JSON object (already indented). */
void
writeJobMetrics(FILE *f, const sim::trace::Metrics &mx)
{
    std::fprintf(f, ", \"metrics\": {\"window_cycles\": %llu, ",
                 (unsigned long long)mx.windowCycles());
    std::fprintf(f, "\"phases\": [");
    const auto &phases = mx.phases();
    for (size_t i = 0; i < phases.size(); ++i) {
        std::fprintf(f, "{\"name\": \"%s\", \"start_cycle\": %llu}%s",
                     jsonEscape(phases[i].name).c_str(),
                     (unsigned long long)phases[i].startCycle,
                     i + 1 < phases.size() ? ", " : "");
    }
    std::fprintf(f, "], \"windows\": [");
    const auto &ws = mx.windows();
    for (size_t i = 0; i < ws.size(); ++i) {
        const auto &w = ws[i];
        std::fprintf(
            f,
            "{\"start_cycle\": %llu, \"bus_total\": %llu, "
            "\"os_bus_ops\": %llu, \"i_fills\": %llu, "
            "\"d_fills\": %llu, \"inval_sharing\": %llu, "
            "\"inval_realloc\": %llu, \"evictions\": %llu, "
            "\"os_enters\": %llu, \"lock_acquires\": %llu, "
            "\"lock_handoffs\": %llu, \"lock_fails\": %llu}%s",
            (unsigned long long)w.startCycle,
            (unsigned long long)w.busTotal(),
            (unsigned long long)w.osBusOps,
            (unsigned long long)w.iFills,
            (unsigned long long)w.dFills,
            (unsigned long long)w.invalSharing,
            (unsigned long long)w.invalRealloc,
            (unsigned long long)w.evictions,
            (unsigned long long)w.osEnters,
            (unsigned long long)w.lockAcquires,
            (unsigned long long)w.lockHandoffs,
            (unsigned long long)w.lockFails,
            i + 1 < ws.size() ? ", " : "");
    }
    std::fprintf(f, "]}");
}

/** Per-job profile summary (the full folded profile goes to a file). */
void
writeJobProfile(FILE *f, const sim::trace::Profiler &pf)
{
    const auto entries = pf.entries();
    uint64_t busTx = 0;
    uint64_t stall = 0;
    for (const auto &e : entries) {
        busTx += e.busTx;
        stall += e.stallEst;
    }
    std::fprintf(f,
                 ", \"profile\": {\"total_cycles\": %llu, "
                 "\"keys\": %zu, \"bus_tx\": %llu, "
                 "\"stall_estimate\": %llu}",
                 (unsigned long long)pf.totalCycles(), entries.size(),
                 (unsigned long long)busTx, (unsigned long long)stall);
}

void
writeJson(const std::string &path, bool smoke, unsigned jobs,
          uint32_t sim_threads, const ObsOptions &obs,
          const core::WarmStartCache *warm_cache,
          core::ExperimentRunner &runner,
          const std::vector<AnalysisRecord> &analyses,
          double totalWall)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "mpos_bench: cannot write %s\n",
                     path.c_str());
        return;
    }
    sim::Protocol proto = sim::Protocol::Mesi;
    if (const char *p = std::getenv("MPOS_PROTOCOL"))
        sim::parseProtocol(p, proto);
    std::fprintf(f, "{\n  \"driver\": \"mpos_bench\",\n");
    std::fprintf(f,
                 "  \"config\": {\"measure_cycles\": %llu, "
                 "\"warmup_cycles\": %llu, \"seed\": %llu, "
                 "\"jobs\": %u, \"sim_threads\": %u, "
                 "\"protocol\": \"%s\", \"assoc\": %llu, "
                 "\"cpus\": %llu, \"smoke\": %s, "
                 "\"trace\": %s, "
                 "\"metrics\": %s, \"profile\": %s},\n",
                 (unsigned long long)envOr("MPOS_CYCLES", 20000000),
                 (unsigned long long)envOr("MPOS_WARMUP", 8000000),
                 (unsigned long long)envOr("MPOS_SEED", 7), jobs,
                 sim_threads, sim::protocolName(proto),
                 (unsigned long long)envOr("MPOS_ASSOC", 1),
                 (unsigned long long)envOr("MPOS_CPUS", 4),
                 smoke ? "true" : "false", obs.trace ? "true" : "false",
                 obs.metrics ? "true" : "false",
                 obs.profile ? "true" : "false");

    std::fprintf(f, "  \"jobs\": [\n");
    double simSeconds = 0;
    uint64_t monitorEvents = 0;
    for (size_t i = 0; i < runner.size(); ++i) {
        // result() never throws: failures are recorded in the slot.
        const auto &r = runner.result(i);
        simSeconds += r.wallSeconds;
        monitorEvents += r.monitorTransactions;
        // Host self-profiling: how fast the simulator chewed through
        // monitor-visible events, per job.
        const double evps =
            r.wallSeconds > 0
                ? double(r.monitorTransactions) / r.wallSeconds
                : 0.0;
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"workload\": \"%s\", "
            "\"cpus\": %u, \"measure_cycles\": %llu, "
            "\"wall_seconds\": %.3f, \"invariant_checks\": %llu, "
            "\"monitor_events\": %llu, \"events_per_second\": %.0f, "
            "\"status\": \"%s\", \"attempts\": %u, "
            "\"error\": \"%s\", \"ok\": %s",
            jsonEscape(r.name).c_str(),
            workload::workloadName(r.cfg.kind), r.cfg.machine.numCpus,
            (unsigned long long)r.cfg.measureCycles, r.wallSeconds,
            (unsigned long long)r.invariantChecks,
            (unsigned long long)r.monitorTransactions, evps,
            core::jobStatusName(r.status), r.attempts,
            jsonEscape(r.error).c_str(), r.ok() ? "true" : "false");
        if (r.ok() && r.exp) {
            if (const sim::trace::Metrics *mx =
                    r.exp->machine().metrics())
                writeJobMetrics(f, *mx);
            if (const sim::trace::Profiler *pf =
                    r.exp->machine().profiler())
                writeJobProfile(f, *pf);
            if (const sim::trace::Tracer *tr =
                    r.exp->machine().tracer()) {
                if (obs.trace) {
                    std::fprintf(
                        f,
                        ", \"trace_file\": \"%s\", "
                        "\"trace_events\": %llu",
                        jsonEscape(obsFileBase(obs.dir, r.name) +
                                   ".trace")
                            .c_str(),
                        (unsigned long long)tr->totalEvents());
                }
            }
        }
        std::fprintf(f, "}%s\n", i + 1 < runner.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    std::fprintf(f, "  \"analyses\": [\n");
    for (size_t i = 0; i < analyses.size(); ++i) {
        const auto &a = analyses[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"status\": \"%s\", "
                     "\"error\": \"%s\", \"wall_seconds\": %.3f}%s\n",
                     a.name, a.ok ? "ok" : "error",
                     jsonEscape(a.error).c_str(), a.wallSeconds,
                     i + 1 < analyses.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (warm_cache) {
        // Host self-profile: how much warmup simulation the warm-start
        // cache saved (or banked) this invocation.
        const core::WarmCacheStats ws = warm_cache->stats();
        std::fprintf(
            f,
            "  \"snapshot_cache\": {\"dir\": \"%s\", "
            "\"hits\": %llu, \"misses\": %llu, \"stores\": %llu, "
            "\"bytes_read\": %llu, \"bytes_written\": %llu},\n",
            jsonEscape(warm_cache->directory()).c_str(),
            (unsigned long long)ws.hits,
            (unsigned long long)ws.misses,
            (unsigned long long)ws.stores,
            (unsigned long long)ws.bytesRead,
            (unsigned long long)ws.bytesWritten);
    }
    std::fprintf(f,
                 "  \"monitor_events_total\": %llu,\n"
                 "  \"events_per_second\": %.0f,\n"
                 "  \"simulation_seconds\": %.3f,\n"
                 "  \"total_wall_seconds\": %.3f\n}\n",
                 (unsigned long long)monitorEvents,
                 simSeconds > 0 ? double(monitorEvents) / simSeconds
                                : 0.0,
                 simSeconds, totalWall);
    std::fclose(f);
}

/**
 * One job row of the deterministic (journal-mode) report, built
 * either from a live runner slot or from a replayed JobEnd record.
 */
struct MergedJobRow
{
    std::string name;
    std::string workload;
    uint32_t cpus = 0;
    uint64_t measureCycles = 0;
    uint64_t invariantChecks = 0;
    uint64_t monitorTransactions = 0;
    std::string status = "pending";
    std::string error;
    uint32_t attempts = 0;
    bool ok = false;
};

/**
 * Journal-mode report: the same shape as writeJson, but every
 * wall-clock-derived field is zeroed and the rows come from the
 * merged plan -- so a sweep that was killed and resumed writes a
 * byte-identical file to one that ran uninterrupted (the
 * crash-recovery matrix diffs exactly this).
 */
void
writeJsonJournal(const std::string &path, bool smoke, unsigned jobs,
                 uint32_t sim_threads, const std::string &cache_dir,
                 bool have_cache,
                 const std::vector<MergedJobRow> &rows,
                 const std::vector<AnalysisRecord> &analyses)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "mpos_bench: cannot write %s\n",
                     path.c_str());
        return;
    }
    sim::Protocol proto = sim::Protocol::Mesi;
    if (const char *p = std::getenv("MPOS_PROTOCOL"))
        sim::parseProtocol(p, proto);
    std::fprintf(f, "{\n  \"driver\": \"mpos_bench\",\n");
    std::fprintf(f,
                 "  \"config\": {\"measure_cycles\": %llu, "
                 "\"warmup_cycles\": %llu, \"seed\": %llu, "
                 "\"jobs\": %u, \"sim_threads\": %u, "
                 "\"protocol\": \"%s\", \"assoc\": %llu, "
                 "\"cpus\": %llu, \"smoke\": %s, "
                 "\"journal\": true},\n",
                 (unsigned long long)envOr("MPOS_CYCLES", 20000000),
                 (unsigned long long)envOr("MPOS_WARMUP", 8000000),
                 (unsigned long long)envOr("MPOS_SEED", 7), jobs,
                 sim_threads, sim::protocolName(proto),
                 (unsigned long long)envOr("MPOS_ASSOC", 1),
                 (unsigned long long)envOr("MPOS_CPUS", 4),
                 smoke ? "true" : "false");

    std::fprintf(f, "  \"jobs\": [\n");
    uint64_t monitorEvents = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        const MergedJobRow &r = rows[i];
        monitorEvents += r.monitorTransactions;
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"workload\": \"%s\", "
            "\"cpus\": %u, \"measure_cycles\": %llu, "
            "\"invariant_checks\": %llu, "
            "\"monitor_events\": %llu, "
            "\"status\": \"%s\", \"attempts\": %u, "
            "\"error\": \"%s\", \"ok\": %s}%s\n",
            jsonEscape(r.name).c_str(), r.workload.c_str(), r.cpus,
            (unsigned long long)r.measureCycles,
            (unsigned long long)r.invariantChecks,
            (unsigned long long)r.monitorTransactions,
            r.status.c_str(), r.attempts, jsonEscape(r.error).c_str(),
            r.ok ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    std::fprintf(f, "  \"analyses\": [\n");
    for (size_t i = 0; i < analyses.size(); ++i) {
        const auto &a = analyses[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"status\": \"%s\", "
                     "\"error\": \"%s\"}%s\n",
                     a.name, a.ok ? "ok" : "error",
                     jsonEscape(a.error).c_str(),
                     i + 1 < analyses.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (have_cache) {
        std::fprintf(f,
                     "  \"snapshot_cache\": {\"dir\": \"%s\"},\n",
                     jsonEscape(cache_dir).c_str());
    }
    std::fprintf(f,
                 "  \"monitor_events_total\": %llu\n}\n",
                 (unsigned long long)monitorEvents);
    std::fclose(f);
}

void
usage()
{
    std::printf(
        "mpos_bench -- regenerate every figure/table of the paper "
        "from shared parallel runs\n\n"
        "  --list          list registered analyses and exit\n"
        "  --only NAME     run one analysis (repeatable); default "
        "all\n"
        "  --jobs N        worker threads (default: MPOS_JOBS or all "
        "cores)\n"
        "  --sim-threads N host threads per job's parallel "
        "epoch/barrier core\n"
        "                  (default: MPOS_SIM_THREADS or 1 = serial). "
        "Composes with\n"
        "                  --jobs: the pool is clamped so jobs x "
        "sim-threads stays\n"
        "                  within the hardware threads (floor of one "
        "job)\n"
        "  --json PATH     machine-readable results (default "
        "mpos_bench_results.json)\n"
        "  --smoke         tiny-run smoke mode: sets "
        "MPOS_CYCLES/MPOS_WARMUP to small\n"
        "                  values unless already set; exit 1 if any "
        "analysis throws\n"
        "  --check         run with the coherence/TLB/monitor "
        "invariant checkers on\n"
        "                  (slower; any violation aborts)\n"
        "  --protocol P    coherence protocol for every job: mesi "
        "(default), msi, mi\n"
        "                  (sets MPOS_PROTOCOL)\n"
        "  --lock-proto P  lock primitive for every job: tas "
        "(default), ticket,\n"
        "                  mcs, futex, rcu (sets MPOS_LOCK_PROTO)\n"
        "  --assoc N       D-cache associativity for every job (L1 "
        "and L2; sets\n"
        "                  MPOS_ASSOC; default 1 = direct-mapped)\n"
        "  --cpus N        simulated CPU count for every job (sets "
        "MPOS_CPUS;\n"
        "                  workload parallelism scales with it)\n"
        "  --golden-dir D  write each analysis's exact output to "
        "D/<name>.json\n"
        "                  (the golden-regression corpus)\n"
        "  --keep-going    on an analysis failure, keep running the "
        "remaining analyses\n"
        "                  (default: stop after the first failure; "
        "either way the JSON\n"
        "                  report is written and the exit code is "
        "non-zero)\n"
        "  --job-timeout S per-attempt wall-clock budget for each "
        "simulation job\n"
        "  --snapshot-dir D warm-start cache: jobs sharing a warm "
        "prefix (machine\n"
        "                  geometry + workload + seed + warmup) fork "
        "from one memoized\n"
        "                  end-of-warmup snapshot, in-process and via "
        "D across\n"
        "                  invocations (also: MPOS_SNAPSHOT_DIR). "
        "Measured output is\n"
        "                  byte-identical with or without the cache\n"
        "  --retries N     attempts per job; retries reseed "
        "deterministically\n"
        "  --fault-job J   inject a guaranteed watchdog trip into job "
        "J (e.g.\n"
        "                  std/pmake) to exercise the failure paths\n"
        "  --trace         export a binary monitor trace per job (plus "
        "a JSONL\n"
        "                  conversion) into the --obs-dir\n"
        "  --metrics       time-sliced metrics windows per job, "
        "embedded in the\n"
        "                  JSON report\n"
        "  --profile       kernel-routine profiler per job; collapsed "
        "stacks\n"
        "                  (flamegraph format) written to --obs-dir\n"
        "  --obs-dir D     output directory for traces/profiles "
        "(default\n"
        "                  mpos_bench_obs)\n"
        "  --journal D     crash-recoverable sweep: write-ahead "
        "journal in\n"
        "                  D/sweep.mpj; the JSON report becomes "
        "deterministic\n"
        "                  (wall-clock fields dropped) so kill+resume "
        "is\n"
        "                  byte-identical to an uninterrupted run\n"
        "  --resume        replay the journal first: completed "
        "analyses re-emit\n"
        "                  their journaled output, only unfinished "
        "work re-runs\n"
        "                  (requires --journal; incompatible with "
        "--trace/\n"
        "                  --metrics/--profile, as is --journal)\n"
        "  --dry-run       print the planned job list (validated "
        "JSON) and exit\n"
        "                  without simulating\n"
        "  --serve PATH    persistent daemon on a Unix socket: "
        "newline-delimited\n"
        "                  JSON requests, admission control, journal "
        "recovery\n"
        "  --queue N       --serve admission bound: reject run "
        "requests beyond\n"
        "                  N in flight (default 8; 0 rejects all)\n"
        "  --help          this text\n\n"
        "Environment: MPOS_CYCLES, MPOS_WARMUP, MPOS_SEED, "
        "MPOS_JOBS, MPOS_CHECK,\n"
        "MPOS_PROTOCOL, MPOS_LOCK_PROTO, MPOS_ASSOC, MPOS_CPUS, "
        "MPOS_WATCHDOG (forward-progress budget in cycles),\n"
        "MPOS_FAULTS (fault seed), "
        "MPOS_SNAPSHOT_DIR (same as --snapshot-dir).\n");
}

} // namespace

int
benchMain(int argc, char **argv)
{
    std::string jsonPath = "mpos_bench_results.json";
    std::string goldenDir;
    std::string faultJob;
    std::vector<std::string> only;
    bool smoke = false;
    bool list = false;
    bool check = false;
    bool keepGoing = false;
    unsigned jobs = 0;
    uint32_t simThreads = sim::simThreadsForced();
    if (!simThreads)
        simThreads = 1;
    uint32_t retries = 1;
    double jobTimeout = 0;
    std::string snapshotDir;
    if (const char *env = std::getenv("MPOS_SNAPSHOT_DIR"))
        snapshotDir = env;
    std::string journalDir;
    std::string servePath;
    bool resume = false;
    bool dryRun = false;
    unsigned queueMax = 8;
    ObsOptions obs;
    obs.dir = "mpos_bench_obs";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mpos_bench: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--protocol") {
            // Like --check: an env var, so it reaches every machine
            // constructed by any job (validated in standardConfig).
            setenv("MPOS_PROTOCOL", value("--protocol"), 1);
        } else if (arg == "--lock-proto") {
            setenv("MPOS_LOCK_PROTO", value("--lock-proto"), 1);
        } else if (arg == "--assoc") {
            setenv("MPOS_ASSOC", value("--assoc"), 1);
        } else if (arg == "--cpus") {
            setenv("MPOS_CPUS", value("--cpus"), 1);
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            jsonPath = value("--json");
        } else if (arg == "--golden-dir") {
            goldenDir = value("--golden-dir");
        } else if (arg == "--only") {
            only.push_back(value("--only"));
        } else if (arg == "--jobs") {
            jobs = unsigned(std::strtoul(value("--jobs"), nullptr, 10));
        } else if (arg == "--sim-threads") {
            simThreads = uint32_t(
                std::strtoul(value("--sim-threads"), nullptr, 10));
            if (!simThreads)
                simThreads = 1;
        } else if (arg == "--keep-going") {
            keepGoing = true;
        } else if (arg == "--job-timeout") {
            jobTimeout = std::strtod(value("--job-timeout"), nullptr);
        } else if (arg == "--snapshot-dir") {
            snapshotDir = value("--snapshot-dir");
        } else if (arg == "--retries") {
            retries = uint32_t(
                std::strtoul(value("--retries"), nullptr, 10));
        } else if (arg == "--fault-job") {
            faultJob = value("--fault-job");
        } else if (arg == "--trace") {
            obs.trace = true;
        } else if (arg == "--metrics") {
            obs.metrics = true;
        } else if (arg == "--profile") {
            obs.profile = true;
        } else if (arg == "--obs-dir") {
            obs.dir = value("--obs-dir");
        } else if (arg == "--journal") {
            journalDir = value("--journal");
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--dry-run") {
            dryRun = true;
        } else if (arg == "--serve") {
            servePath = value("--serve");
        } else if (arg == "--queue") {
            queueMax = unsigned(
                std::strtoul(value("--queue"), nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "mpos_bench: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (list) {
        for (const auto &e : benchRegistry())
            std::printf("%-24s %s\n", e.name, e.title);
        return 0;
    }

    if (smoke) {
        // Tiny runs unless the caller already pinned the lengths.
        setenv("MPOS_CYCLES", "300000", 0);
        setenv("MPOS_WARMUP", "150000", 0);
    }
    if (check) {
        // Before any Machine is constructed: every machine in every
        // job gets the invariant checkers.
        setenv("MPOS_CHECK", "1", 1);
    }
    if (!goldenDir.empty())
        std::filesystem::create_directories(goldenDir);
    if (obs.any())
        std::filesystem::create_directories(obs.dir);

    std::vector<const BenchEntry *> sel;
    if (only.empty()) {
        for (const auto &e : benchRegistry())
            sel.push_back(&e);
    } else {
        for (const auto &name : only) {
            const BenchEntry *e = findBench(name);
            if (!e) {
                std::fprintf(stderr,
                             "mpos_bench: unknown analysis '%s' "
                             "(--list shows all)\n",
                             name.c_str());
                return 2;
            }
            sel.push_back(e);
        }
    }

    // --sim-threads composes with the job pool: each job's machine
    // may spin up simThreads host threads of its own, so the product
    // is what actually lands on the cores. Clamp the pool so
    // jobs * simThreads stays within the hardware (floor of one job;
    // a single job wider than the machine is the user's call).
    if (simThreads > 1) {
        const unsigned eff_jobs =
            jobs ? jobs : util::ThreadPool::defaultThreads();
        unsigned hw = std::thread::hardware_concurrency();
        if (!hw)
            hw = 1;
        if (eff_jobs * simThreads > hw) {
            const unsigned clamped =
                hw / simThreads ? hw / simThreads : 1;
            if (clamped < eff_jobs) {
                std::fprintf(stderr,
                             "[bench] clamping jobs %u -> %u: %u "
                             "sim-threads per job on %u hardware "
                             "thread(s)\n",
                             eff_jobs, clamped, simThreads, hw);
                jobs = clamped;
            }
        }
    }

    // Journal/resume/serve sanity: the observability layer writes
    // per-job side files and wall-clock-dependent report sections,
    // which can never be byte-identical across a kill+resume.
    if (resume && journalDir.empty()) {
        std::fprintf(stderr,
                     "mpos_bench: --resume requires --journal\n");
        return 2;
    }
    if (!journalDir.empty() && obs.any()) {
        std::fprintf(stderr,
                     "mpos_bench: --journal/--resume cannot be "
                     "combined with --trace/--metrics/--profile\n");
        return 2;
    }
    if (dryRun && !servePath.empty()) {
        std::fprintf(stderr,
                     "mpos_bench: --dry-run and --serve are "
                     "mutually exclusive\n");
        return 2;
    }

    core::RunnerOptions ropt;
    ropt.jobs = jobs;
    ropt.maxAttempts = retries ? retries : 1;
    ropt.jobTimeoutSec = jobTimeout;
    // The warm-start cache outlives the runner (jobs hold a raw
    // pointer); null when disabled, so the default path is untouched.
    std::unique_ptr<core::WarmStartCache> warmCache;
    if (!snapshotDir.empty()) {
        std::filesystem::create_directories(snapshotDir);
        warmCache =
            std::make_unique<core::WarmStartCache>(snapshotDir);
        ropt.warmCache = warmCache.get();
    }
    std::unique_ptr<core::SweepJournal> journal;
    if (!journalDir.empty() && !dryRun) {
        std::filesystem::create_directories(journalDir);
        journal = std::make_unique<core::SweepJournal>();
        // A daemon always resumes its journal: restart recovery is
        // the point of running one.
        journal->open(journalDir, resume || !servePath.empty());
        ropt.journal = journal.get();
        if (warmCache) {
            // Re-quarantine before any job can look up a warm image:
            // a failed seed's image must stay dead across restarts.
            for (uint64_t key : journal->state().poisonedKeys)
                warmCache->poison(key);
        }
        if (journal->state().records) {
            std::fprintf(
                stderr,
                "[journal] replayed %zu record(s): %zu planned "
                "job(s), %zu settled, %zu completed analyses%s\n",
                journal->state().records, journal->state().plan.size(),
                journal->state().jobs.size(),
                journal->state().analyses.size(),
                journal->state().truncatedTail ? " (torn tail dropped)"
                                               : "");
        }
    }

    if (!servePath.empty()) {
        core::ServiceOptions sopt;
        sopt.socketPath = servePath;
        sopt.maxQueue = queueMax;
        sopt.runner = ropt;
        core::SweepService service(sopt);
        return service.serve();
    }

    BenchContext ctx(ropt);
    ctx.setSimThreads(simThreads);
    if (!faultJob.empty())
        ctx.setFaultJob(faultJob);
    if (obs.any())
        ctx.setObservability(obs);
    if (journal)
        ctx.setJournal(journal.get());

    // Analyses whose output is already journaled (ok only): their
    // jobs are not re-queued and their output replays byte-identical.
    auto journaledAnalysis =
        [&](const char *name) -> const core::JournalAnalysis * {
        if (!journal || !resume)
            return nullptr;
        auto it = journal->state().analyses.find(name);
        if (it != journal->state().analyses.end() && it->second.ok)
            return &it->second;
        return nullptr;
    };

    if (dryRun) {
        // Plan-only: queue nothing, print the validated job plan.
        ctx.setPlanOnly(true);
        uint32_t mask = 0;
        for (const auto *e : sel)
            mask |= e->standardMask;
        for (int i = 0; i < 3; ++i) {
            if (mask & (1u << i))
                ctx.prepareStandard(allWorkloads[i]);
        }
        for (const auto *e : sel) {
            if (e->prepare)
                e->prepare(ctx);
        }
        std::string out = "{\"driver\": \"mpos_bench\", "
                          "\"dry_run\": true, \"jobs\": [";
        const auto &plan = ctx.planned();
        for (size_t i = 0; i < plan.size(); ++i) {
            const auto &[name, cfg] = plan[i];
            char buf[256];
            std::snprintf(
                buf, sizeof buf,
                "\"cpus\": %u, \"seed\": %llu, "
                "\"warmup_cycles\": %llu, \"measure_cycles\": %llu, "
                "\"config_hash\": \"%016llx\"}",
                cfg.machine.numCpus,
                (unsigned long long)cfg.options.seed,
                (unsigned long long)cfg.warmupCycles,
                (unsigned long long)cfg.measureCycles,
                (unsigned long long)core::SweepJournal::jobConfigHash(
                    cfg));
            out += std::string(i ? ", " : "") + "{\"name\": " +
                   util::jsonString(name) + ", \"workload\": \"" +
                   workload::workloadName(cfg.kind) + "\", " + buf;
        }
        out += "], \"analyses\": [";
        for (size_t i = 0; i < sel.size(); ++i) {
            out += std::string(i ? ", " : "") + "\"" + sel[i]->name +
                   "\"";
        }
        out += "]}";
        std::string verr;
        if (!util::jsonValidate(out, nullptr, &verr)) {
            std::fprintf(stderr,
                         "mpos_bench: internal error: dry-run plan "
                         "is not valid JSON: %s\n",
                         verr.c_str());
            return 2;
        }
        std::printf("%s\n", out.c_str());
        return 0;
    }

    core::banner("mpos_bench: the paper's figures/tables from shared "
                 "parallel runs");
    std::printf("Config: measure %llu cycles/CPU after %llu warmup, "
                "seed %llu, %u host jobs, %u sim-thread(s)/job%s\n",
                (unsigned long long)envOr("MPOS_CYCLES", 20000000),
                (unsigned long long)envOr("MPOS_WARMUP", 8000000),
                (unsigned long long)envOr("MPOS_SEED", 7),
                ctx.runner().jobs(), simThreads,
                smoke ? " [smoke]" : "");

    const auto t0 = std::chrono::steady_clock::now();

    // Queue everything up front so the pool stays full: the three
    // shared standard runs first, then every sweep/ablation job --
    // skipping jobs only needed by analyses the journal already
    // settled.
    uint32_t mask = 0;
    for (const auto *e : sel) {
        if (!journaledAnalysis(e->name))
            mask |= e->standardMask;
    }
    for (int i = 0; i < 3; ++i) {
        if (mask & (1u << i))
            ctx.prepareStandard(allWorkloads[i]);
    }
    for (const auto *e : sel) {
        if (e->prepare && !journaledAnalysis(e->name))
            e->prepare(ctx);
    }

    // Analyses print in registry order regardless of which job
    // finishes first.
    std::vector<AnalysisRecord> records;
    for (const auto *e : sel) {
        AnalysisRecord rec;
        rec.name = e->name;
        if (const core::JournalAnalysis *ja =
                journaledAnalysis(e->name)) {
            // Resume fast path: the journaled output IS the analysis
            // output (the experiments are deterministic), re-emitted
            // byte-for-byte to stdout and the golden corpus.
            std::fwrite(ja->output.data(), 1, ja->output.size(),
                        stdout);
            std::fflush(stdout);
            if (!goldenDir.empty())
                writeGolden(goldenDir, e->name, true, ja->output);
            std::fprintf(stderr,
                         "[journal] %s: replayed from journal\n",
                         e->name);
            records.push_back(std::move(rec));
            continue;
        }
        const auto a0 = std::chrono::steady_clock::now();
        std::unique_ptr<StdoutCapture> capture;
        // Journal mode always captures: the exact output is what a
        // resumed run must be able to re-emit.
        if (!goldenDir.empty() || journal)
            capture = std::make_unique<StdoutCapture>();
        try {
            e->run(ctx);
        } catch (const std::exception &ex) {
            rec.ok = false;
            rec.error = ex.what();
        } catch (...) {
            rec.ok = false;
            rec.error = "unknown exception";
        }
        if (capture) {
            const std::string output = capture->finish();
            if (!goldenDir.empty())
                writeGolden(goldenDir, e->name, rec.ok, output);
            if (journal)
                journal->appendAnalysisEnd(e->name, rec.ok, rec.error,
                                           output);
        }
        rec.wallSeconds = secondsSince(a0);
        const bool failed_now = !rec.ok;
        if (failed_now) {
            std::fprintf(stderr, "[mpos_bench] FAILED %s: %s\n",
                         e->name, rec.error.c_str());
        }
        records.push_back(std::move(rec));
        if (failed_now && !keepGoing) {
            std::fprintf(stderr,
                         "[mpos_bench] stopping after first failure "
                         "(use --keep-going to finish the rest)\n");
            break;
        }
    }

    // Observability post-pass: convert each job's binary trace to
    // JSONL and write its collapsed (flamegraph) profile.
    size_t obsFailures = 0;
    if (obs.any()) {
        for (const auto &r : ctx.runner().results()) {
            if (!r.ok() || !r.exp)
                continue;
            const std::string base = obsFileBase(obs.dir, r.name);
            if (obs.trace) {
                std::string err;
                if (!sim::trace::convertToJsonl(base + ".trace",
                                                base + ".jsonl",
                                                &err)) {
                    std::fprintf(stderr,
                                 "[mpos_bench] trace conversion %s: "
                                 "%s\n",
                                 r.name.c_str(), err.c_str());
                    ++obsFailures;
                }
            }
            if (obs.profile) {
                if (const sim::trace::Profiler *pf =
                        r.exp->machine().profiler()) {
                    const std::string folded = base + ".folded";
                    FILE *ff = std::fopen(folded.c_str(), "w");
                    if (!ff) {
                        std::fprintf(stderr,
                                     "[mpos_bench] cannot write %s\n",
                                     folded.c_str());
                        ++obsFailures;
                    } else {
                        const std::string text = pf->collapsed();
                        std::fwrite(text.data(), 1, text.size(), ff);
                        std::fclose(ff);
                    }
                }
            }
        }
    }

    const double totalWall = secondsSince(t0);
    size_t journalFailedJobs = 0;
    if (journal) {
        // Deterministic report from the merged plan: replayed plan
        // order first (the killed run's submissions), then anything
        // this run planned beyond it. Fresh runner slots win over
        // journaled rows (they re-ran deterministically); journaled
        // rows serve the jobs this run skipped.
        std::vector<std::pair<std::string, uint64_t>> order =
            journal->state().plan;
        for (const auto &[name, cfg] : ctx.planned()) {
            bool seen = false;
            for (const auto &[n, h] : order)
                if (n == name)
                    seen = true;
            if (!seen)
                order.emplace_back(
                    name, core::SweepJournal::jobConfigHash(cfg));
        }
        std::vector<MergedJobRow> rows;
        for (const auto &[name, hash] : order) {
            MergedJobRow row;
            row.name = name;
            const size_t idx = ctx.runner().find(name);
            if (idx != core::ExperimentRunner::npos) {
                const auto &r = ctx.runner().result(idx);
                row.workload = workload::workloadName(r.cfg.kind);
                row.cpus = r.cfg.machine.numCpus;
                row.measureCycles = r.cfg.measureCycles;
                row.invariantChecks = r.invariantChecks;
                row.monitorTransactions = r.monitorTransactions;
                row.status = core::jobStatusName(r.status);
                row.error = r.error;
                row.attempts = r.attempts;
                row.ok = r.ok();
            } else {
                auto it = journal->state().jobs.find(name);
                if (it != journal->state().jobs.end() &&
                    it->second.configHash == hash) {
                    const core::JournalJobRow &j = it->second;
                    row.workload = workload::workloadName(
                        workload::WorkloadKind(j.kind));
                    row.cpus = j.cpus;
                    row.measureCycles = j.measureCycles;
                    row.invariantChecks = j.invariantChecks;
                    row.monitorTransactions = j.monitorTransactions;
                    row.status = core::jobStatusName(
                        core::JobStatus(j.status));
                    row.error = j.error;
                    row.attempts = j.attempts;
                    row.ok = core::JobStatus(j.status) ==
                             core::JobStatus::Ok;
                } else {
                    row.workload = "?";
                }
            }
            if (!row.ok)
                ++journalFailedJobs;
            rows.push_back(std::move(row));
        }
        writeJsonJournal(jsonPath, smoke, ctx.runner().jobs(),
                         simThreads, snapshotDir,
                         warmCache != nullptr, rows, records);
    } else {
        writeJson(jsonPath, smoke, ctx.runner().jobs(), simThreads,
                  obs, warmCache.get(), ctx.runner(), records,
                  totalWall);
    }
    if (warmCache) {
        const core::WarmCacheStats ws = warmCache->stats();
        std::fprintf(stderr,
                     "[mpos_bench] snapshot cache: %llu hit(s), %llu "
                     "miss(es), %llu store(s), %llu B read, %llu B "
                     "written (%s)\n",
                     (unsigned long long)ws.hits,
                     (unsigned long long)ws.misses,
                     (unsigned long long)ws.stores,
                     (unsigned long long)ws.bytesRead,
                     (unsigned long long)ws.bytesWritten,
                     snapshotDir.c_str());
    }

    size_t failed = 0;
    for (const auto &r : records)
        failed += !r.ok;
    size_t failedJobs =
        journal ? journalFailedJobs : ctx.runner().failedCount();
    if (!faultJob.empty() &&
        ctx.runner().find(faultJob) == core::ExperimentRunner::npos) {
        // A fault job that never matched a submitted name would make
        // the sabotage a silent no-op; fail loudly instead.
        std::fprintf(stderr,
                     "[mpos_bench] --fault-job %s matched no submitted "
                     "job\n",
                     faultJob.c_str());
        ++failedJobs;
    }
    if (ctx.runner().failedCount()) {
        for (const auto &r : ctx.runner().results()) {
            if (!r.ok()) {
                std::fprintf(stderr,
                             "[mpos_bench] job %s: %s after %u "
                             "attempt(s): %s\n",
                             r.name.c_str(),
                             core::jobStatusName(r.status), r.attempts,
                             r.error.c_str());
            }
        }
    }
    std::fprintf(stderr,
                 "[mpos_bench] %zu analyses (%zu failed), %zu "
                 "simulation jobs (%zu failed), %.1fs wall on %u "
                 "threads; results in %s\n",
                 records.size(), failed, ctx.runner().size(),
                 failedJobs, totalWall, ctx.runner().jobs(),
                 jsonPath.c_str());
    return failed || failedJobs || obsFailures ? 1 : 0;
}

int
singleBenchMain(const char *name)
{
    const BenchEntry *e = findBench(name);
    if (!e) {
        std::fprintf(stderr, "unknown bench entry '%s'\n", name);
        return 2;
    }
    BenchContext ctx;
    for (int i = 0; i < 3; ++i) {
        if (e->standardMask & (1u << i))
            ctx.prepareStandard(allWorkloads[i]);
    }
    if (e->prepare)
        e->prepare(ctx);
    e->run(ctx);
    return 0;
}

} // namespace mpos::bench
