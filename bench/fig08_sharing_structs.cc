/**
 * @file
 * Figure 8: OS Sharing misses by responsible data structure. Shape:
 * spread over many structures, with the per-process state (kernel
 * stack, user structure, process table) accounting for 40-65%.
 */

#include "bench/analyses.hh"

using namespace mpos;
using kernel::KStruct;

void
mpos::bench::run_fig08(BenchContext &ctx)
{
    core::banner("Figure 8: Sharing misses by data structure");
    core::shapeNote();

    for (auto kind : bench::allWorkloads) {
        auto &exp = ctx.standard(kind);
        const auto &sh = exp.attribution().sharing();
        const double total = double(sh.total);

        std::vector<std::pair<std::string, double>> data;
        for (uint32_t i = 0; i < kernel::numKStructs; ++i) {
            if (!sh.count[i])
                continue;
            data.emplace_back(kernel::kstructName(KStruct(i)),
                              total ? 100.0 * double(sh.count[i]) /
                                          total
                                    : 0.0);
        }
        data.emplace_back("Bcopy",
                          total ? 100.0 * double(sh.bcopyPages) /
                                      total
                                : 0.0);
        data.emplace_back("Bclear",
                          total ? 100.0 * double(sh.bclearPages) /
                                      total
                                : 0.0);
        std::printf("%s", util::barChart(
            std::string(workload::workloadName(kind)) +
                " (share of Sharing misses, %):",
            data, 40).c_str());

        const double perProc =
            total ? 100.0 *
                        double(sh.count[unsigned(
                                   KStruct::KernelStack)] +
                               sh.count[unsigned(KStruct::Pcb)] +
                               sh.count[unsigned(KStruct::Eframe)] +
                               sh.count[unsigned(KStruct::URest)] +
                               sh.count[unsigned(
                                   KStruct::ProcTable)]) /
                        total
                  : 0.0;
        std::printf("  -> per-process state share: %.1f%% "
                    "(paper: 40-65%%)\n\n",
                    perProc);
    }
}
