/**
 * @file
 * Figure 3: distributions of I-misses, D-misses, and cycles per OS
 * invocation in Pmake -- strongly right-skewed, with the typical
 * invocation touching far fewer lines than the caches hold.
 */

#include "bench/analyses.hh"

using namespace mpos;

void
mpos::bench::run_fig03(BenchContext &ctx)
{
    core::banner("Figure 3: per-invocation distributions (Pmake)");
    core::shapeNote();

    auto &exp = ctx.standard(workload::WorkloadKind::Pmake);
    const auto &inv = exp.invocations();

    std::printf("%s\n",
                inv.osInvIMissHist()
                    .render("I-misses per OS invocation").c_str());
    std::printf("%s\n",
                inv.osInvDMissHist()
                    .render("D-misses per OS invocation").c_str());
    std::printf("%s\n",
                inv.osInvCycleHist()
                    .render("Cycles per OS invocation").c_str());

    std::printf("Medians: %llu I-misses, %llu D-misses, %llu cycles "
                "(caches hold 4096/16384 lines).\n",
                static_cast<unsigned long long>(
                    inv.osInvIMissHist().percentile(0.5)),
                static_cast<unsigned long long>(
                    inv.osInvDMissHist().percentile(0.5)),
                static_cast<unsigned long long>(
                    inv.osInvCycleHist().percentile(0.5)));
}
