/**
 * @file
 * Ablations of the optimizations the paper proposes in Section 4.2:
 *
 *  - cache-affinity scheduling against migration misses,
 *  - cache-bypassing block operations against block-op displacement,
 *  - prefetched block operations against block-op stall,
 *  - a 2-way I-cache against OS instruction misses (via Figure 6's
 *    re-simulation, run live here as a machine configuration).
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{

using WK = workload::WorkloadKind;
using BM = kernel::BlockOpMode;

struct Result
{
    double migrPctD;
    double blockStall;
    double osStall;
    uint64_t migrations;
    double osIMissShare;
    uint64_t disposI;
    uint64_t dispossameI;
};

core::ExperimentConfig
variantConfig(WK kind, bool affinity, BM mode, uint32_t iassoc,
              bool optimized_layout = false)
{
    auto cfg = bench::standardConfig(kind);
    cfg.measureCycles = bench::envOr("MPOS_CYCLES", 20000000) / 2;
    cfg.kernelCfg.affinitySched = affinity;
    cfg.kernelCfg.blockOpMode = mode;
    cfg.kernelCfg.layout.optimizedTextLayout = optimized_layout;
    cfg.machine.icacheAssoc = iassoc;
    return cfg;
}

/** The seven §4.2 variants, each one parallel job. */
struct Variant
{
    const char *name;
    core::ExperimentConfig cfg;
};

std::vector<Variant>
variants()
{
    return {
        {"ablation/multpgm-base",
         variantConfig(WK::Multpgm, false, BM::Normal, 1)},
        {"ablation/affinity",
         variantConfig(WK::Multpgm, true, BM::Normal, 1)},
        {"ablation/pmake-base",
         variantConfig(WK::Pmake, false, BM::Normal, 1)},
        {"ablation/bypass",
         variantConfig(WK::Pmake, false, BM::Bypass, 1)},
        {"ablation/prefetch",
         variantConfig(WK::Pmake, false, BM::Prefetch, 1)},
        {"ablation/twoway",
         variantConfig(WK::Pmake, false, BM::Normal, 2)},
        {"ablation/layout",
         variantConfig(WK::Pmake, false, BM::Normal, 1, true)},
    };
}

Result
measure(core::Experiment &exp)
{
    Result r;
    const auto mig = core::computeMigration(
        exp.attribution(), exp.misses(), exp.account());
    r.migrPctD = mig.totalPctOfOsD;
    r.blockStall = exp.blockOpReport().stallPctNonIdle;
    r.osStall = exp.table1().osMissStallPct;
    r.migrations = exp.kern().migrations();
    const auto &mc = exp.misses();
    r.osIMissShare = mc.osTotal()
        ? 100.0 * double(mc.osITotal()) / double(mc.osTotal())
        : 0.0;
    r.disposI = mc.osI[unsigned(core::MissClass::Dispos)];
    r.dispossameI = mc.osDispossameI;
    return r;
}

} // namespace

void
mpos::bench::prepare_ablation(BenchContext &ctx)
{
    for (const auto &v : variants())
        ctx.submit(v.name, v.cfg);
}

void
mpos::bench::run_ablation(BenchContext &ctx)
{
    prepare_ablation(ctx);

    core::banner("Ablations: the paper's proposed optimizations");
    core::shapeNote();

    const auto base = measure(ctx.get("ablation/multpgm-base"));
    const auto aff = measure(ctx.get("ablation/affinity"));
    util::TextTable t1("Cache-affinity scheduling (Multpgm)");
    t1.header({"", "migrations", "migration %D", "OS stall %"});
    t1.row({"baseline", core::fmtCount(base.migrations),
            core::fmt1(base.migrPctD), core::fmt1(base.osStall)});
    t1.row({"affinity", core::fmtCount(aff.migrations),
            core::fmt1(aff.migrPctD), core::fmt1(aff.osStall)});
    t1.print();

    const auto pbase = measure(ctx.get("ablation/pmake-base"));
    const auto bypass = measure(ctx.get("ablation/bypass"));
    const auto prefetch = measure(ctx.get("ablation/prefetch"));
    util::TextTable t2("\nBlock-operation handling (Pmake)");
    t2.header({"", "block-op stall %", "OS stall %"});
    t2.row({"through caches", core::fmt1(pbase.blockStall),
            core::fmt1(pbase.osStall)});
    t2.row({"cache bypass", core::fmt1(bypass.blockStall),
            core::fmt1(bypass.osStall)});
    t2.row({"prefetched", core::fmt1(prefetch.blockStall),
            core::fmt1(prefetch.osStall)});
    t2.print();

    const auto twoway = measure(ctx.get("ablation/twoway"));
    util::TextTable t3("\nI-cache associativity (Pmake)");
    t3.header({"", "OS I-miss share %", "OS stall %"});
    t3.row({"direct-mapped", core::fmt1(pbase.osIMissShare),
            core::fmt1(pbase.osStall)});
    t3.row({"2-way", core::fmt1(twoway.osIMissShare),
            core::fmt1(twoway.osStall)});
    t3.print();

    // Code layout optimization: the paper suggests placing OS basic
    // blocks to avoid conflicts; we reorder whole routines so the hot
    // paths pack into the bottom 64 KB of kernel text.
    const auto layout = measure(ctx.get("ablation/layout"));
    util::TextTable t4("\nKernel code layout (Pmake)");
    t4.header({"", "Dispos I-misses", "Dispossame", "OS stall %"});
    t4.row({"link order", core::fmtCount(pbase.disposI),
            core::fmtCount(pbase.dispossameI),
            core::fmt1(pbase.osStall)});
    t4.row({"hot-packed", core::fmtCount(layout.disposI),
            core::fmtCount(layout.dispossameI),
            core::fmt1(layout.osStall)});
    t4.print();

    std::printf("\nExpected shapes: affinity cuts migrations and "
                "migration misses; prefetch hides\nblock-op latency; "
                "associativity and hot-packed code layout cut OS\n"
                "instruction misses (the paper's Sec. 4.2 "
                "proposals).\n");
}
