/**
 * @file
 * Table 1: Characteristics of the workloads -- execution-time split,
 * fraction of misses caused by the OS, and the stall-time estimates
 * that are the headline result of the paper (OS misses stall CPUs for
 * 17-21% of non-idle time; 25% counting OS-induced application
 * misses).
 */

#include "bench/analyses.hh"

using namespace mpos;

namespace
{

struct PaperRow
{
    const char *name;
    double user, sys, idle, osFrac, allStall, osStall, osInduced;
};

const PaperRow paper[3] = {
    {"Pmake", 49.4, 31.1, 19.5, 52.6, 39.9, 21.0, 25.8},
    {"Multpgm", 53.2, 46.7, 0.1, 46.3, 46.5, 21.5, 24.9},
    {"Oracle", 62.4, 29.4, 8.2, 26.6, 62.5, 16.6, 26.8},
};

} // namespace

void
mpos::bench::run_table01(BenchContext &ctx)
{
    core::banner("Table 1: Characteristics of the workloads");
    core::shapeNote();

    util::TextTable t;
    t.header({"Workload", "", "User%", "Sys%", "Idle%",
              "OSMiss/Tot%", "All stall%", "OS stall%",
              "OS+induced%"});

    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = exp.table1();
        const auto &p = paper[i];
        t.row({p.name, "paper", core::fmt1(p.user), core::fmt1(p.sys),
               core::fmt1(p.idle), core::fmt1(p.osFrac),
               core::fmt1(p.allStall), core::fmt1(p.osStall),
               core::fmt1(p.osInduced)});
        t.row({"", "measured", core::fmt1(r.userPct),
               core::fmt1(r.sysPct), core::fmt1(r.idlePct),
               core::fmt1(r.osMissFracPct),
               core::fmt1(r.allMissStallPct),
               core::fmt1(r.osMissStallPct),
               core::fmt1(r.osPlusInducedStallPct)});
        t.rule();
    }
    t.print();
}
