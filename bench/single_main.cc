/**
 * @file
 * Shared main() of the historical per-figure binaries: each is this
 * file compiled with -DMPOS_BENCH_ENTRY="<registry name>", running
 * exactly one analysis through the shared orchestration layer (so
 * even a single figure's workload runs execute concurrently).
 */

#include "bench/registry.hh"

int
main()
{
    return mpos::bench::singleBenchMain(MPOS_BENCH_ENTRY);
}
