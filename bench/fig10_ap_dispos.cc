/**
 * @file
 * Figure 10: the fraction of application misses induced by OS
 * interference in the caches (Ap_dispos). Shape: 22-27% across all
 * three workloads, split into I and D components.
 */

#include "bench/analyses.hh"

using namespace mpos;

void
mpos::bench::run_fig10(BenchContext &ctx)
{
    core::banner("Figure 10: OS-induced application misses "
                 "(Ap_dispos)");
    core::shapeNote();

    const double paperTotal[3] = {25.0, 27.0, 22.0}; // approx

    util::TextTable t;
    t.header({"Workload", "", "Ap_dispos % of app misses", "I share",
              "D share"});
    for (int i = 0; i < 3; ++i) {
        auto &exp = ctx.standard(bench::allWorkloads[i]);
        const auto r = exp.apDispos();
        t.row({workload::workloadName(bench::allWorkloads[i]),
               "paper", core::fmt1(paperTotal[i]) + " (22-27)", "-",
               "-"});
        t.row({"", "measured", core::fmt1(r.fracOfAppPct),
               core::fmt1(r.iShareOfAppPct),
               core::fmt1(r.dShareOfAppPct)});
        t.rule();
    }
    t.print();
}
