/**
 * @file
 * Lock-primitive study: the paper's Section 5 lock figures re-measured
 * under each selectable kernel lock policy (test-and-set, ticket, MCS,
 * futex, RCU read path) at 4-64 CPUs. For each primitive x CPU count
 * the first table reports run-queue contention (failed-acquire
 * episodes per ms), the Runqlk wait-time distribution's mean and max,
 * the contended-release hand-off latency, and total sync-transport
 * operations under both lock-access models per 1k non-idle cycles.
 * The second table breaks the 16-CPU wait-time distribution into
 * log2-bucket bands. Shape: ticket and MCS trade a slightly higher
 * uncontended cost for bounded waiting (lower max wait); MCS cuts
 * cached-model bus ops under contention by spinning on a local queue
 * node; the futex policy only changes user locks (kernel locks cannot
 * sleep); RCU removes read-side sync ops on the inode tables entirely.
 */

#include "bench/analyses.hh"

using namespace mpos;
using sim::LockPolicy;

namespace
{

constexpr uint32_t cpuCounts[] = {4, 8, 16, 32, 64};
constexpr LockPolicy policies[] = {
    LockPolicy::TestAndSet, LockPolicy::Ticket, LockPolicy::Mcs,
    LockPolicy::Futex, LockPolicy::Rcu,
};

std::string
jobName(LockPolicy p, uint32_t ncpu)
{
    return std::string("lockproto/") + sim::lockPolicyName(p) +
           "/cpus" + std::to_string(ncpu);
}

/** Share of wait samples whose log2 bucket lies in [lo, hi]. */
double
bandPct(const core::LockProfile &p, unsigned lo, unsigned hi)
{
    if (!p.waitCount)
        return 0.0;
    uint64_t n = 0;
    for (unsigned b = lo; b <= hi && b < 32; ++b)
        n += p.waitHist[b];
    return 100.0 * double(n) / double(p.waitCount);
}

} // namespace

void
mpos::bench::prepare_lockproto(BenchContext &ctx)
{
    for (const LockPolicy p : policies) {
        for (const uint32_t ncpu : cpuCounts) {
            auto cfg = standardConfig(workload::WorkloadKind::Multpgm);
            scaleToCpus(cfg, ncpu);
            cfg.machine.lockPolicy = p;
            // An eighth of the standard budget per cell keeps the
            // 25-cell sweep close to three standard runs' cost.
            cfg.measureCycles = envOr("MPOS_CYCLES", 20000000) / 8;
            ctx.submit(jobName(p, ncpu), cfg);
        }
    }
}

void
mpos::bench::run_lockproto(BenchContext &ctx)
{
    prepare_lockproto(ctx);

    core::banner("Lock primitives: wait time, hand-off and sync ops "
                 "at 4-64 CPUs (Multpgm)");
    core::shapeNote();

    util::TextTable t;
    t.header({"Primitive", "CPUs", "Runqlk fails/ms", "Mean wait",
              "Max wait", "Hand-off", "Sync ops/1k", "Cached ops/1k"});

    for (const LockPolicy p : policies) {
        for (const uint32_t ncpu : cpuCounts) {
            auto &exp = ctx.get(jobName(p, ncpu));
            const auto &rq = exp.lockStats().profile(kernel::Runqlk);
            const auto &st = exp.machine().sync();
            const auto ops = st.sumOps(st.numLocks());
            const double nonIdle = double(exp.account().nonIdle());
            const double uncPerK =
                nonIdle ? 1000.0 * double(ops.uncachedOps) / nonIdle
                        : 0.0;
            const double cacPerK =
                nonIdle ? 1000.0 * double(ops.cachedOps) / nonIdle
                        : 0.0;
            t.row({sim::lockPolicyName(p), std::to_string(ncpu),
                   core::fmt2(exp.lockStats().failsPerMs(
                       kernel::Runqlk, exp.elapsed())),
                   core::fmt1(rq.meanWait()),
                   std::to_string(
                       static_cast<unsigned long long>(rq.waitMax)),
                   core::fmt1(rq.meanHandoff()), core::fmt2(uncPerK),
                   core::fmt2(cacPerK)});
        }
        t.rule();
    }
    t.print();

    std::printf("\nRunqlk wait-time distribution at 16 CPUs "
                "(%% of contended acquires):\n");
    util::TextTable d;
    d.header({"Primitive", "<256 cyc", "256-4k", "4k-64k", ">64k"});
    for (const LockPolicy p : policies) {
        auto &exp = ctx.get(jobName(p, 16));
        const auto &rq = exp.lockStats().profile(kernel::Runqlk);
        d.row({sim::lockPolicyName(p), core::fmt1(bandPct(rq, 0, 7)),
               core::fmt1(bandPct(rq, 8, 11)),
               core::fmt1(bandPct(rq, 12, 15)),
               core::fmt1(bandPct(rq, 16, 31))});
    }
    d.print();

    std::printf("\nShape: test-and-set's wait distribution grows a "
                "heavy tail as CPUs\nare added (unfair hand-off); "
                "ticket and MCS bound the tail at the\ncost of "
                "slightly higher uncontended traffic, and MCS's local "
                "queue-\nnode spin cuts cached-model ops under "
                "contention. The futex policy\nchanges only user "
                "locks (kernel locks spin: they cannot sleep),\nand "
                "the RCU read path removes inode-table read "
                "synchronization\nentirely, so both track "
                "test-and-set on Runqlk.\n");
}
