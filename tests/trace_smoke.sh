#!/usr/bin/env bash
# Observability smoke: the full analysis sweep with tracing, metrics
# and profiling all on must still pass, produce a binary trace, a
# JSONL conversion and a collapsed-stack profile per standard job, and
# the JSON report (including the per-window metrics and profile
# objects) must be machine-parseable.
#
# Usage: trace_smoke.sh <mpos_bench binary> <mpos_trace binary>

set -u

bench="${1:?usage: trace_smoke.sh <mpos_bench> <mpos_trace>}"
trace_tool="${2:?usage: trace_smoke.sh <mpos_bench> <mpos_trace>}"

export MPOS_CYCLES=300000
export MPOS_WARMUP=150000
export MPOS_SEED=7

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if ! "$bench" --smoke --trace --metrics --profile \
        --obs-dir "$tmp/obs" --json "$tmp/report.json" \
        > "$tmp/stdout.log" 2> "$tmp/stderr.log"; then
    echo "FAIL: mpos_bench --smoke with observability exited non-zero"
    tail -n 40 "$tmp/stderr.log"
    exit 1
fi

fail=0

# The report must be valid JSON, with the obs flags recorded.
if ! "$trace_tool" validate "$tmp/report.json"; then
    fail=1
fi
for key in '"metrics":' '"profile":' '"trace_file":' \
           '"events_per_second":'; do
    if ! grep -q "$key" "$tmp/report.json"; then
        echo "FAIL: report.json carries no $key object"
        fail=1
    fi
done

# Every standard job leaves a trace + JSONL + folded profile triple.
for wl in Pmake Multpgm Oracle; do
    base="$tmp/obs/std_$wl"
    for ext in trace jsonl folded; do
        if [ ! -s "$base.$ext" ]; then
            echo "FAIL: missing or empty $base.$ext"
            fail=1
        fi
    done
    # Round-trip: the converter re-derives the JSONL from the trace.
    if [ -s "$base.trace" ]; then
        if ! "$trace_tool" jsonl "$base.trace" "$tmp/rt.jsonl"; then
            echo "FAIL: mpos_trace jsonl rejected $base.trace"
            fail=1
        elif ! cmp -s "$tmp/rt.jsonl" "$base.jsonl"; then
            echo "FAIL: offline JSONL differs from bench's for $wl"
            fail=1
        fi
    fi
    # Collapsed stacks: "frame[;frame...] <cycles>" lines only.
    if [ -s "$base.folded" ] &&
       grep -qvE '^[^ ]+( [0-9]+)$' "$base.folded"; then
        echo "FAIL: malformed collapsed-stack line in $base.folded"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "observability smoke FAILED"
    exit 1
fi

echo "observability smoke OK"
