/** @file Tests for the synthetic application model. */

#include <gtest/gtest.h>

#include "workload/app_model.hh"

using namespace mpos;
using namespace mpos::workload;
using kernel::Process;
using kernel::UserScript;
using sim::AddrSpace;
using sim::ItemKind;
using sim::ScriptItem;

namespace
{

std::vector<ScriptItem>
collect(SyntheticApp &app, uint32_t instrs)
{
    std::vector<ScriptItem> items;
    UserScript s(items);
    app.emitWork(s, instrs);
    return items;
}

} // namespace

TEST(AppModel, EmitsRequestedInstructionVolume)
{
    AppParams prm;
    prm.seed = 3;
    SyntheticApp app(prm);
    const auto items = collect(app, 400);
    uint32_t ifetches = 0;
    for (const auto &it : items)
        ifetches += it.kind == ItemKind::IFetchLine;
    // 4 instructions per line.
    EXPECT_NEAR(double(ifetches), 100.0, 2.0);
}

TEST(AppModel, AllRefsVirtualAndInBounds)
{
    AppParams prm;
    prm.codeBytes = 32 * 1024;
    prm.dataBytes = 16 * 1024;
    prm.seed = 5;
    SyntheticApp app(prm);
    for (int round = 0; round < 20; ++round) {
        for (const auto &it : collect(app, 512)) {
            if (it.kind == ItemKind::Think)
                continue;
            EXPECT_EQ(it.space, AddrSpace::Virtual);
            if (it.kind == ItemKind::IFetchLine) {
                EXPECT_GE(it.addr, VaMap::textBase);
                EXPECT_LT(it.addr, VaMap::textBase + prm.codeBytes);
            } else {
                EXPECT_GE(it.addr, VaMap::dataBase);
                EXPECT_LT(it.addr, VaMap::dataBase + prm.dataBytes);
            }
        }
    }
}

TEST(AppModel, SharedRefsLandInSharedRegion)
{
    AppParams prm;
    prm.sharedBytes = 64 * 1024;
    prm.sharedBase = VaMap::sharedBase;
    prm.sharedRefProb = 1.0; // every data ref is shared
    prm.seed = 7;
    SyntheticApp app(prm);
    bool saw_shared = false;
    for (const auto &it : collect(app, 2000)) {
        if (it.kind == ItemKind::Load || it.kind == ItemKind::Store) {
            EXPECT_GE(it.addr, VaMap::sharedBase);
            EXPECT_LT(it.addr, VaMap::sharedBase + prm.sharedBytes);
            saw_shared = true;
        }
    }
    EXPECT_TRUE(saw_shared);
}

TEST(AppModel, DataRefDensityTracksProbability)
{
    AppParams prm;
    prm.dataRefProb = 0.5;
    prm.seed = 9;
    SyntheticApp app(prm);
    uint32_t data = 0, instr = 0;
    for (const auto &it : collect(app, 20000)) {
        if (it.kind == ItemKind::IFetchLine)
            instr += 4;
        else if (it.kind == ItemKind::Load ||
                 it.kind == ItemKind::Store)
            ++data;
    }
    EXPECT_NEAR(double(data) / double(instr), 0.5, 0.05);
}

TEST(AppModel, StoreFractionRespected)
{
    AppParams prm;
    prm.storeFrac = 0.25;
    prm.seed = 11;
    SyntheticApp app(prm);
    uint32_t loads = 0, stores = 0;
    for (const auto &it : collect(app, 40000)) {
        loads += it.kind == ItemKind::Load;
        stores += it.kind == ItemKind::Store;
    }
    EXPECT_NEAR(double(stores) / double(loads + stores), 0.25, 0.04);
}

TEST(AppModel, DeterministicForSameSeed)
{
    AppParams prm;
    prm.seed = 13;
    SyntheticApp a(prm), b(prm);
    const auto ia = collect(a, 1000);
    const auto ib = collect(b, 1000);
    ASSERT_EQ(ia.size(), ib.size());
    for (size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].addr, ib[i].addr);
        EXPECT_EQ(int(ia[i].kind), int(ib[i].kind));
    }
}

TEST(AppModel, HotCodeConcentration)
{
    AppParams prm;
    prm.codeBytes = 128 * 1024;
    prm.hotCodeFrac = 0.1;
    prm.hotCodeProb = 0.95;
    prm.jumpProb = 0.2; // jump a lot so the preference shows
    prm.seed = 15;
    SyntheticApp app(prm);
    uint64_t hot = 0, total = 0;
    for (const auto &it : collect(app, 60000)) {
        if (it.kind != ItemKind::IFetchLine)
            continue;
        ++total;
        hot += (it.addr - VaMap::textBase) <
               uint64_t(0.1 * 128 * 1024);
    }
    // Far more than 10% of fetches hit the 10% hot region.
    EXPECT_GT(double(hot) / double(total), 0.4);
}

TEST(AppModel, ResetCursorsRestartsCode)
{
    AppParams prm;
    prm.seed = 17;
    SyntheticApp app(prm);
    collect(app, 512);
    app.resetCursors();
    const auto items = collect(app, 4);
    ASSERT_FALSE(items.empty());
    EXPECT_EQ(items[0].addr, VaMap::textBase);
}

TEST(AppModel, SweepAdvancesSequentially)
{
    AppParams prm;
    prm.sharedBytes = 1024 * 1024;
    prm.sharedRefProb = 1.0;
    prm.sharedSweepProb = 1.0;
    prm.dataRefProb = 1.0;
    prm.seed = 19;
    SyntheticApp app(prm);
    std::vector<sim::Addr> addrs;
    for (const auto &it : collect(app, 64))
        if (it.kind == ItemKind::Load || it.kind == ItemKind::Store)
            addrs.push_back(it.addr);
    ASSERT_GT(addrs.size(), 4u);
    for (size_t i = 1; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], addrs[i - 1] + 16);
}
