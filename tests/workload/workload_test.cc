/** @file Integration tests of the three paper workloads. */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "sim/machine.hh"
#include "workload/workload.hh"

using namespace mpos;
using workload::Workload;
using workload::WorkloadKind;
using workload::WorkloadOptions;

namespace
{

struct Rig
{
    explicit Rig(WorkloadKind kind, uint64_t pool = 0)
    {
        m = std::make_unique<sim::Machine>(
            mcfg, kernel::numKernelLocks + 32);
        kcfg.userPoolPages =
            pool ? pool : Workload::recommendedPoolPages(kind);
        k = std::make_unique<kernel::Kernel>(*m, kcfg);
        w = Workload::create(kind, *k);
    }

    sim::MachineConfig mcfg;
    kernel::KernelConfig kcfg;
    std::unique_ptr<sim::Machine> m;
    std::unique_ptr<kernel::Kernel> k;
    std::unique_ptr<Workload> w;
};

} // namespace

TEST(WorkloadPmake, BuildsDriverAndProgresses)
{
    Rig r(WorkloadKind::Pmake);
    r.m->run(15000000);
    EXPECT_GT(r.k->forks(), 5u);
    EXPECT_GT(r.k->exits(), 2u);
    EXPECT_GT(r.w->pmakeJobsCompleted(), 2u);
    EXPECT_GT(r.k->diskRequests(), 10u);
}

TEST(WorkloadPmake, JobsExecThroughPipeline)
{
    Rig r(WorkloadKind::Pmake);
    r.m->run(15000000);
    // cpp -> cc1 -> as means at least two execs per completed job.
    EXPECT_GT(r.k->osOpCounts()
                  .count[unsigned(sim::OsOp::OtherSyscall)],
              3u);
    EXPECT_GT(r.k->osOpCounts().count[unsigned(sim::OsOp::IoSyscall)],
              20u);
}

TEST(WorkloadPmake, MaxJobsRespected)
{
    Rig r(WorkloadKind::Pmake);
    for (int step = 0; step < 30; ++step) {
        r.m->run(500000);
        uint32_t jobs = 0;
        for (uint32_t i = 0; i < r.k->maxProcs(); ++i) {
            const auto &p = r.k->process(sim::Pid(i));
            if (p.state != kernel::ProcState::Free &&
                p.name.find('+') != std::string::npos)
                ++jobs;
        }
        EXPECT_LE(jobs, 8u + 1); // -J 8, one may be a zombie in limbo
    }
}

TEST(WorkloadMultpgm, AllComponentsPresent)
{
    Rig r(WorkloadKind::Multpgm);
    uint32_t mp3d = 0, eds = 0, make = 0;
    for (uint32_t i = 0; i < r.k->maxProcs(); ++i) {
        const auto &p = r.k->process(sim::Pid(i));
        if (p.state == kernel::ProcState::Free)
            continue;
        mp3d += p.name.find("mp3d") == 0;
        eds += p.name.find("ed") == 0;
        make += p.name == "make";
    }
    EXPECT_EQ(mp3d, 4u);  // paper: 4 Mp3d processes
    EXPECT_EQ(eds, 5u);   // paper: 5 edit sessions
    EXPECT_EQ(make, 1u);
}

TEST(WorkloadMultpgm, SginapStormsAppear)
{
    Rig r(WorkloadKind::Multpgm);
    r.m->run(25000000);
    // The signature of the paper's Multpgm: sginap is a major OS
    // operation (Figure 2).
    EXPECT_GT(r.k->osOpCounts().count[unsigned(sim::OsOp::Sginap)],
              100u);
    EXPECT_GT(r.w->mp3dSteps(), 0u);
}

TEST(WorkloadMultpgm, KeepsCpusBusy)
{
    Rig r(WorkloadKind::Multpgm);
    r.m->run(15000000);
    const auto acct = r.m->totalAccount();
    // Paper: 0.1% idle.
    EXPECT_LT(double(acct.idle()) / double(acct.all()), 0.03);
}

TEST(WorkloadOracle, TransactionsCommitWithLogWrites)
{
    Rig r(WorkloadKind::Oracle);
    r.m->run(15000000);
    EXPECT_GT(r.w->oracleTransactions(), 10u);
    EXPECT_GT(r.k->diskRequests(), 10u); // redo log forces
    EXPECT_GT(r.k->osOpCounts().count[unsigned(sim::OsOp::IoSyscall)],
              10u);
}

TEST(WorkloadOracle, NoForksSteadyServerPool)
{
    Rig r(WorkloadKind::Oracle);
    r.m->run(10000000);
    EXPECT_EQ(r.k->forks(), 0u);
    EXPECT_EQ(r.k->exits(), 0u);
}

TEST(Workload, NamesAndPools)
{
    EXPECT_STREQ(workload::workloadName(WorkloadKind::Pmake), "Pmake");
    EXPECT_STREQ(workload::workloadName(WorkloadKind::Multpgm),
                 "Multpgm");
    EXPECT_STREQ(workload::workloadName(WorkloadKind::Oracle),
                 "Oracle");
    EXPECT_GT(Workload::recommendedPoolPages(WorkloadKind::Oracle),
              Workload::recommendedPoolPages(WorkloadKind::Pmake));
}

TEST(Workload, DeterministicAcrossRuns)
{
    uint64_t jobs[2], txns[2];
    for (int i = 0; i < 2; ++i) {
        Rig r(WorkloadKind::Pmake);
        r.m->run(8000000);
        jobs[i] = r.w->pmakeJobsCompleted();
        txns[i] = r.k->contextSwitches();
    }
    EXPECT_EQ(jobs[0], jobs[1]);
    EXPECT_EQ(txns[0], txns[1]);
}

TEST(Workload, SeedChangesSchedule)
{
    WorkloadOptions o1, o2;
    o2.seed = 1234;
    sim::MachineConfig mcfg;
    uint64_t sw[2];
    int i = 0;
    for (const auto &o : {o1, o2}) {
        sim::Machine m(mcfg, kernel::numKernelLocks + 32);
        kernel::KernelConfig kcfg;
        kcfg.userPoolPages =
            Workload::recommendedPoolPages(WorkloadKind::Pmake);
        kernel::Kernel k(m, kcfg);
        auto w = Workload::create(WorkloadKind::Pmake, k, o);
        m.run(6000000);
        sw[i++] = m.monitor().transactions();
    }
    EXPECT_NE(sw[0], sw[1]);
}

TEST(Workload, ScaledOptionsIdentityAtFourCpus)
{
    const WorkloadOptions base;
    for (uint32_t n : {1u, 2u, 4u}) {
        const WorkloadOptions s = workload::scaledOptions(base, n);
        EXPECT_EQ(s.pmakeFiles, base.pmakeFiles) << n;
        EXPECT_EQ(s.pmakeMaxJobs, base.pmakeMaxJobs) << n;
        EXPECT_EQ(s.editSessions, base.editSessions) << n;
        EXPECT_EQ(s.oracleServers, base.oracleServers) << n;
        EXPECT_EQ(s.mp3dProcs, base.mp3dProcs) << n;
    }
}

TEST(Workload, ScaledOptionsGrowWithCpus)
{
    const WorkloadOptions base;
    const WorkloadOptions s8 = workload::scaledOptions(base, 8);
    EXPECT_EQ(s8.pmakeFiles, base.pmakeFiles * 2);
    EXPECT_EQ(s8.pmakeMaxJobs, 8u);
    EXPECT_EQ(s8.editSessions, base.editSessions * 2);
    EXPECT_EQ(s8.mp3dProcs, 8u);

    // The biggest machine: process-level knobs are capped so a full
    // Multpgm mix fits the kernel's widest process table.
    const WorkloadOptions s64 = workload::scaledOptions(base, 64);
    EXPECT_EQ(s64.pmakeMaxJobs, 64u);
    EXPECT_EQ(s64.editSessions, 40u);
    EXPECT_EQ(s64.oracleServers, 48u);
    EXPECT_EQ(s64.mp3dProcs, 64u);
}
