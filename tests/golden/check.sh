#!/usr/bin/env bash
# Golden regression for every paper figure/table.
#
# Reruns mpos_bench --smoke with the invariant checkers on and pinned
# run lengths/seed, capturing each analysis's exact output, then
# diffs the fresh corpus against the committed tests/golden/*.json
# field by field. Any difference -- changed output, a missing golden,
# an analysis that vanished, or a stale committed file -- is a hard
# failure, never a skip. Regenerate intentionally with update.sh.
#
# Usage: check.sh <mpos_bench binary> [golden dir]

set -u

bench="${1:?usage: check.sh <mpos_bench binary> [golden dir]}"
golden="${2:-$(cd "$(dirname "$0")" && pwd)}"

if [ ! -x "$bench" ]; then
    echo "FAIL: mpos_bench binary '$bench' not found or not executable"
    exit 1
fi

# The corpus must exist: a missing corpus is a broken checkout or a
# forgotten update.sh, not a reason to skip.
if ! ls "$golden"/*.json >/dev/null 2>&1; then
    echo "FAIL: no golden files in $golden (run update.sh and commit)"
    exit 1
fi

# Pin everything that shapes the simulated runs so the comparison is
# meaningful regardless of the caller's environment.
export MPOS_CYCLES=300000
export MPOS_WARMUP=150000
export MPOS_SEED=7

# Optional machine overrides for the non-default golden corpora (the
# 8-CPU MESI smoke corpus in smoke8/ pins both).
if [ -n "${MPOS_GOLDEN_CPUS:-}" ]; then
    export MPOS_CPUS="$MPOS_GOLDEN_CPUS"
fi
if [ -n "${MPOS_GOLDEN_PROTOCOL:-}" ]; then
    export MPOS_PROTOCOL="$MPOS_GOLDEN_PROTOCOL"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if ! "$bench" --smoke --check --golden-dir "$tmp/fresh" \
        --json "$tmp/results.json" > "$tmp/stdout.log" 2> "$tmp/stderr.log"
then
    echo "FAIL: mpos_bench --smoke --check exited non-zero"
    tail -n 40 "$tmp/stderr.log"
    exit 1
fi

fail=0

for want in "$golden"/*.json; do
    name="$(basename "$want")"
    got="$tmp/fresh/$name"
    if [ ! -f "$got" ]; then
        echo "FAIL: analysis ${name%.json} produced no output (golden" \
             "$name has no fresh counterpart)"
        fail=1
        continue
    fi
    if ! diff -u "$want" "$got" > "$tmp/diff"; then
        echo "FAIL: ${name%.json} output differs from the golden file:"
        sed -n '1,60p' "$tmp/diff"
        fail=1
    fi
done

# Fresh analyses with no committed golden mean the corpus is stale.
for got in "$tmp/fresh"/*.json; do
    name="$(basename "$got")"
    if [ ! -f "$golden/$name" ]; then
        echo "FAIL: analysis ${name%.json} has no committed golden" \
             "file (run update.sh and commit $name)"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "golden regression FAILED (regenerate with" \
         "tests/golden/update.sh only if the change is intended)"
    exit 1
fi

echo "golden regression OK: $(ls "$golden"/*.json | wc -l) analyses" \
     "match"
