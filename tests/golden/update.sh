#!/usr/bin/env bash
# Regenerate the committed golden corpus in tests/golden/ from a fresh
# mpos_bench --smoke run (same pinned configuration as check.sh).
# Review the resulting diff before committing: every changed line is a
# claimed intentional change to a paper figure/table.
#
# Usage: update.sh <mpos_bench binary> [sim_tests binary]
#
# When the sim_tests binary is also given, the pinned trace golden
# (trace_smoke.trace / trace_smoke.jsonl) is regenerated as well.

set -eu

bench="${1:?usage: update.sh <mpos_bench binary> [sim_tests binary]}"
sim_tests="${2:-}"
# MPOS_GOLDEN_DIR regenerates an alternate corpus (e.g. smoke8/);
# combine with MPOS_GOLDEN_CPUS/MPOS_GOLDEN_PROTOCOL, as in check.sh.
golden="${MPOS_GOLDEN_DIR:-$(cd "$(dirname "$0")" && pwd)}"
mkdir -p "$golden"

export MPOS_CYCLES=300000
export MPOS_WARMUP=150000
export MPOS_SEED=7
if [ -n "${MPOS_GOLDEN_CPUS:-}" ]; then
    export MPOS_CPUS="$MPOS_GOLDEN_CPUS"
fi
if [ -n "${MPOS_GOLDEN_PROTOCOL:-}" ]; then
    export MPOS_PROTOCOL="$MPOS_GOLDEN_PROTOCOL"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bench" --smoke --check --golden-dir "$tmp/fresh" \
    --json "$tmp/results.json" > /dev/null

# Replace the corpus wholesale so removed analyses don't leave stale
# golden files behind.
rm -f "$golden"/*.json
cp "$tmp/fresh"/*.json "$golden"/

echo "golden corpus updated: $(ls "$golden"/*.json | wc -l) files in" \
     "$golden"

if [ -n "$sim_tests" ]; then
    MPOS_UPDATE_GOLDEN=1 "$sim_tests" \
        --gtest_filter='Trace.GoldenByteIdentical' > /dev/null
    echo "trace golden updated: trace_smoke.trace + trace_smoke.jsonl"
fi
