/** @file Behavioral tests of the synthetic kernel. */

#include <functional>
#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "sim/machine.hh"

using namespace mpos;
using namespace mpos::kernel;
using sim::ExecMode;
using sim::MarkerOp;
using sim::OsOp;
using sim::ScriptItem;

namespace
{

/** Behavior driven by a lambda. */
struct ScriptedApp : AppBehavior
{
    using Fn = std::function<void(Process &, UserScript &)>;
    explicit ScriptedApp(Fn f) : fn(std::move(f)) {}
    void chunk(Process &p, UserScript &s) override { fn(p, s); }
    Fn fn;
};

/** Default user work: touch a little code and data. */
ScriptedApp::Fn
busyLoop()
{
    return [](Process &, UserScript &s) {
        for (int i = 0; i < 8; ++i)
            s.ifetch(VaMap::textBase + i * 16);
        s.load(VaMap::dataBase);
        s.think(32);
    };
}

struct Client : KernelClient
{
    ScriptedApp::Fn childFn = busyLoop();
    int forks = 0, exits = 0;

    void
    onFork(Process &, Process &child) override
    {
        ++forks;
        child.behavior = std::make_unique<ScriptedApp>(childFn);
    }
    void onProcExit(Process &) override { ++exits; }
};

struct KernelTest : ::testing::Test
{
    KernelTest()
    {
        mcfg.numCpus = 2;
        m = std::make_unique<sim::Machine>(mcfg, 128);
        kcfg.layout.maxProcs = 16;
        kcfg.userPoolPages = 600;
        k = std::make_unique<Kernel>(*m, kcfg);
        k->setClient(&client);
        img = k->registerImage("app", 32 * 1024);
    }

    Pid
    spawn(ScriptedApp::Fn fn, const std::string &name = "t")
    {
        return k->spawn(std::make_unique<ScriptedApp>(std::move(fn)),
                        img, name);
    }

    sim::MachineConfig mcfg;
    KernelConfig kcfg;
    std::unique_ptr<sim::Machine> m;
    std::unique_ptr<Kernel> k;
    Client client;
    uint32_t img = 0;
};

} // namespace

TEST_F(KernelTest, IdleMachineStaysInIdleLoop)
{
    m->run(100000);
    const auto acct = m->totalAccount();
    EXPECT_EQ(acct.nonIdle(), 0u);
    EXPECT_GT(acct.idle(), 0u);
}

TEST_F(KernelTest, SpawnedProcessRunsUserCode)
{
    spawn(busyLoop());
    m->run(300000);
    const auto acct = m->totalAccount();
    EXPECT_GT(acct.user(), 0u);
    EXPECT_GT(acct.kernel(), 0u); // faults at least
}

TEST_F(KernelTest, FirstTouchAllocatesPages)
{
    const uint64_t before = k->freePageCount();
    spawn(busyLoop());
    m->run(300000);
    EXPECT_LT(k->freePageCount(), before);
}

TEST_F(KernelTest, UtlbFaultsAfterWarmMapping)
{
    // Touch many pages so TLB capacity misses occur on mapped pages.
    spawn([](Process &, UserScript &s) {
        static uint32_t page = 0;
        for (int i = 0; i < 4; ++i) {
            s.load(VaMap::dataBase + (page % 128) * 4096);
            ++page;
        }
        s.think(16);
    });
    m->run(3000000);
    EXPECT_GT(k->utlbFaults(), 100u);
}

TEST_F(KernelTest, ReadSyscallDoesDiskThenBufferCacheHit)
{
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 0) {
            s.syscall(Sys::Read, ioPayload(42, 4096, 0));
            s.syscall(Sys::Read, ioPayload(42, 4096, 0));
        }
        s.think(64);
    });
    m->run(2000000);
    // First read goes to disk; the second hits the buffer cache.
    EXPECT_EQ(k->diskRequests(), 1u);
    EXPECT_GT(k->osOpCounts().count[unsigned(OsOp::IoSyscall)], 1u);
}

TEST_F(KernelTest, SyncWriteSleepsOnDisk)
{
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 0)
            s.syscall(Sys::Write, ioPayload(43, 2048, 0, true));
        s.think(64);
    });
    m->run(2000000);
    EXPECT_GE(k->diskRequests(), 1u);
    EXPECT_GT(m->totalAccount().idle(), 0u); // CPU idled while waiting
}

TEST_F(KernelTest, ForkCreatesRunnableChildWithCow)
{
    const Pid parent = spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 2)
            s.syscall(Sys::Fork);
        s.store(VaMap::dataBase); // private writable page
        s.think(32);
    });
    m->run(2000000);
    EXPECT_EQ(client.forks, 1);
    EXPECT_GE(k->forks(), 1u);
    // The parent's private page became COW at fork and must have been
    // broken by a later store.
    Process &pp = k->process(parent);
    Pte *pte = pp.findPte(VaMap::dataBase / 4096);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->cow);
    EXPECT_TRUE(pte->writable);
}

TEST_F(KernelTest, ExitMakesSlotReusable)
{
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 1) {
            s.syscall(Sys::Exit);
            return;
        }
        s.think(32);
    });
    m->run(1000000);
    EXPECT_EQ(k->exits(), 1u);
    EXPECT_EQ(client.exits, 1);
    // All slots free again (zombie reaped at its final resched).
    uint32_t busy = 0;
    for (uint32_t i = 0; i < k->maxProcs(); ++i)
        busy += k->process(Pid(i)).state != ProcState::Free;
    EXPECT_EQ(busy, 0u);
}

TEST_F(KernelTest, WaitBlocksUntilChildExits)
{
    client.childFn = [](Process &p, UserScript &s) {
        if (p.userChunks == 3) {
            s.syscall(Sys::Exit);
            return;
        }
        s.think(64);
    };
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 0) {
            s.syscall(Sys::Fork);
            s.syscall(Sys::Wait);
        }
        s.think(32);
    });
    m->run(2000000);
    EXPECT_EQ(k->exits(), 1u);
    // Parent survived the wait and kept running.
    EXPECT_GT(m->totalAccount().user(), 0u);
}

TEST_F(KernelTest, ExecSwitchesImageAndFreesPages)
{
    const uint32_t img2 = k->registerImage("other", 16 * 1024);
    const Pid pid = spawn([img2](Process &p, UserScript &s) {
        if (p.userChunks == 2) {
            s.syscall(Sys::Exec, img2);
            return;
        }
        s.store(VaMap::dataBase + (p.userChunks % 8) * 4096);
        s.think(32);
    });
    m->run(2000000);
    EXPECT_EQ(k->process(pid).imageId, img2);
}

TEST_F(KernelTest, KernelLockContentionSpinsAndResolves)
{
    // Drive the lock markers directly on both CPUs.
    m->cpu(0).push(ScriptItem::mark(MarkerOp::LockAcquire, Memlock));
    m->cpu(0).push(ScriptItem::think(500));
    m->cpu(0).push(ScriptItem::mark(MarkerOp::LockRelease, Memlock));
    m->cpu(1).push(ScriptItem::mark(MarkerOp::LockAcquire, Memlock));
    m->cpu(1).push(ScriptItem::think(10));
    m->cpu(1).push(ScriptItem::mark(MarkerOp::LockRelease, Memlock));
    m->run(2000);
    EXPECT_EQ(k->lockState(Memlock).heldByCpu, -1);
    EXPECT_EQ(k->lockState(Memlock).spinMask, 0u);
}

TEST_F(KernelTest, TtyReadBlocksUntilTypistBurst)
{
    kcfg.layout.maxProcs = 16;
    const uint32_t tty = k->registerTty(50000);
    spawn([tty](Process &, UserScript &s) {
        s.syscall(Sys::Read,
                  ioPayload(Kernel::ttyFileId(tty), 64, 1));
        s.think(128);
    });
    m->run(1000000);
    // The reader made progress only because tty interrupts woke it.
    EXPECT_GT(m->totalAccount().user(), 0u);
    EXPECT_GT(k->osOpCounts().count[unsigned(OsOp::Interrupt)], 2u);
}

TEST_F(KernelTest, ClockInterruptsTickEvenWhenIdle)
{
    m->run(mcfg.clockTickCycles * 3);
    EXPECT_GT(k->osOpCounts().count[unsigned(OsOp::Interrupt)], 2u);
}

TEST_F(KernelTest, QuantumPreemptionRotatesHogs)
{
    spawn(busyLoop(), "hog1");
    spawn(busyLoop(), "hog2");
    spawn(busyLoop(), "hog3"); // 3 hogs, 2 CPUs
    m->run(mcfg.clockTickCycles * 8);
    EXPECT_GT(k->contextSwitches(), 2u);
    // Every hog made progress.
    for (Pid pid = 0; pid < 3; ++pid)
        EXPECT_GT(k->process(pid).totalRan, 0u);
}

TEST_F(KernelTest, BlockOpsAreRecorded)
{
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks == 0)
            s.syscall(Sys::Read, ioPayload(77, 8192, 0));
        s.store(VaMap::dataBase + (p.userChunks % 4) * 4096);
        s.think(32);
    });
    m->run(2000000);
    const auto &bo = k->blockOps();
    EXPECT_GT(bo.totalInvocations(BlockKind::Copy), 0u);
    EXPECT_GT(bo.totalInvocations(BlockKind::Clear), 0u);
}

TEST_F(KernelTest, PageRefcountConservation)
{
    // Fork/exit churn with COW must neither leak nor double-free.
    client.childFn = [](Process &p, UserScript &s) {
        s.store(VaMap::dataBase + (p.userChunks % 3) * 4096);
        if (p.userChunks == 4) {
            s.syscall(Sys::Exit);
            return;
        }
        s.think(16);
    };
    spawn([](Process &p, UserScript &s) {
        if (p.userChunks % 8 == 3)
            s.syscall(Sys::Fork);
        s.store(VaMap::dataBase + (p.userChunks % 3) * 4096);
        s.think(16);
    });
    m->run(4000000);
    EXPECT_GT(k->forks(), 3u);
    EXPECT_GT(k->exits(), 2u);
    EXPECT_GT(k->freePageCount(), 0u);
}

TEST_F(KernelTest, MigrationHappensAcrossCpus)
{
    for (int i = 0; i < 5; ++i)
        spawn(busyLoop());
    m->run(mcfg.clockTickCycles * 10);
    EXPECT_GT(k->migrations(), 0u);
}

TEST_F(KernelTest, InterruptsDeferredWhileKernelLockHeld)
{
    // While a CPU holds a kernel lock it is in kernel mode, so event
    // polls never interleave an interrupt path into the middle of a
    // critical section; verify the lock survives several clock ticks.
    m->cpu(0).ctx.mode = ExecMode::Kernel;
    m->cpu(0).push(ScriptItem::mark(MarkerOp::LockAcquire, Runqlk));
    m->cpu(0).push(ScriptItem::think(mcfg.clockTickCycles * 2));
    m->cpu(0).push(ScriptItem::mark(MarkerOp::LockRelease, Runqlk));
    m->run(mcfg.clockTickCycles * 2 + 1000);
    EXPECT_EQ(k->lockState(Runqlk).heldByCpu, -1);
}
