/** @file Tests that the kernel image matches the paper's Table 3. */

#include <gtest/gtest.h>

#include "kernel/layout.hh"

using namespace mpos::kernel;

namespace
{
LayoutConfig
defaultCfg()
{
    return LayoutConfig{};
}
} // namespace

TEST(Layout, Table3Sizes)
{
    KernelLayout l(defaultCfg());
    // Paper Table 3 sizes, in bytes.
    EXPECT_EQ(l.procTableBytes(), 46080u);
    EXPECT_EQ(l.bufHeadersBytes(), 17408u);
    EXPECT_EQ(l.inodeTableBytes(), 68608u);
    // Pfdat: paper reports 210944 B (25.75 B x 8192 pages); we use
    // 26-byte descriptors.
    EXPECT_NEAR(double(l.pfdatBytes()), 210944.0, 4096.0);
}

TEST(Layout, PerProcessStructureSizes)
{
    KernelLayout l(defaultCfg());
    // Kernel stack 4096, PCB 240, Eframe 172, rest 3684 (Table 3).
    EXPECT_EQ(l.pcbAddr(0) - l.kernelStackAddr(0), 4096u);
    EXPECT_EQ(l.eframeAddr(0) - l.pcbAddr(0), 240u);
    EXPECT_EQ(l.uRestAddr(0) - l.eframeAddr(0), 172u);
    EXPECT_EQ(l.kernelStackAddr(1) - l.uRestAddr(0), 3684u);
}

TEST(Layout, StructAtRoundTrip)
{
    KernelLayout l(defaultCfg());
    EXPECT_EQ(l.structAt(l.runQueueAddr()), KStruct::RunQueue);
    EXPECT_EQ(l.structAt(l.hiNdprocAddr()), KStruct::HiNdproc);
    EXPECT_EQ(l.structAt(l.freePgBuckAddr(5)), KStruct::FreePgBuck);
    EXPECT_EQ(l.structAt(l.procTableAddr(3)), KStruct::ProcTable);
    EXPECT_EQ(l.structAt(l.pfdatAddr(100)), KStruct::Pfdat);
    EXPECT_EQ(l.structAt(l.bufHeaderAddr(10)), KStruct::Buffer);
    EXPECT_EQ(l.structAt(l.inodeAddr(7)), KStruct::Inode);
    EXPECT_EQ(l.structAt(l.calloutAddr(1)), KStruct::Callout);
    EXPECT_EQ(l.structAt(l.kernelStackAddr(2) + 100),
              KStruct::KernelStack);
    EXPECT_EQ(l.structAt(l.pcbAddr(2) + 10), KStruct::Pcb);
    EXPECT_EQ(l.structAt(l.eframeAddr(2) + 10), KStruct::Eframe);
    EXPECT_EQ(l.structAt(l.uRestAddr(2) + 10), KStruct::URest);
    EXPECT_EQ(l.structAt(l.pageTableAddr(2)), KStruct::PageTableHeap);
    EXPECT_EQ(l.structAt(l.bufDataAddr(0)), KStruct::BufData);
    EXPECT_EQ(l.structAt(0), KStruct::KernelText);
    EXPECT_EQ(l.structAt(l.firstUserPage() * 4096 + 64),
              KStruct::UserPage);
}

TEST(Layout, RoutineLookupByNameAndAddress)
{
    KernelLayout l(defaultCfg());
    const RoutineId swtch = l.routine("swtch");
    const Routine &info = l.routineInfo(swtch);
    EXPECT_EQ(info.name, "swtch");
    EXPECT_EQ(l.routineAt(info.textBase), swtch);
    EXPECT_EQ(l.routineAt(info.textBase + info.textBytes - 1), swtch);
    EXPECT_NE(l.routineAt(info.textBase + info.textBytes), swtch);
}

TEST(Layout, RoutineAtBeyondTextIsInvalid)
{
    KernelLayout l(defaultCfg());
    EXPECT_EQ(l.routineAt(l.textEnd()), invalidRoutine);
    EXPECT_EQ(l.routineAt(~0ULL), invalidRoutine);
}

TEST(Layout, RoutinesAreContiguousAndOrdered)
{
    KernelLayout l(defaultCfg());
    mpos::sim::Addr expect = 0;
    for (uint32_t i = 0; i < l.numRoutines(); ++i) {
        const Routine &r = l.routineInfo(RoutineId(i));
        EXPECT_EQ(r.textBase, expect);
        EXPECT_GT(r.textBytes, 0u);
        EXPECT_EQ(r.textBytes % 16, 0u);
        expect += r.textBytes;
    }
    EXPECT_EQ(expect, l.textEnd());
}

TEST(Layout, RunQueueGroupHasSevenRoutines)
{
    // "the seven routines that form the core of the run queue
    // management" (paper Table 5).
    KernelLayout l(defaultCfg());
    int n = 0;
    for (uint32_t i = 0; i < l.numRoutines(); ++i)
        if (l.routineInfo(RoutineId(i)).group ==
            RoutineGroup::RunQueueMgmt)
            ++n;
    EXPECT_EQ(n, 7);
}

TEST(Layout, HotKernelTextExceedsICache)
{
    // The paper's premise: OS code paths overflow and conflict in the
    // 64 KB I-cache. The non-driver kernel text must exceed it.
    KernelLayout l(defaultCfg());
    uint64_t hot = 0;
    for (uint32_t i = 0; i < l.numRoutines(); ++i) {
        const Routine &r = l.routineInfo(RoutineId(i));
        if (r.group != RoutineGroup::Driver)
            hot += r.textBytes;
    }
    EXPECT_GT(hot, 64u * 1024);
}

TEST(Layout, UserPoolNonEmptyAndDisjoint)
{
    KernelLayout l(defaultCfg());
    EXPECT_GT(l.userPoolPages(), 1000u);
    EXPECT_EQ(l.structAt(l.firstUserPage() * 4096), KStruct::UserPage);
    EXPECT_NE(l.structAt((l.firstUserPage() - 1) * 4096),
              KStruct::UserPage);
}

TEST(Layout, AddressWrappingIsSafe)
{
    KernelLayout l(defaultCfg());
    // Out-of-range indices wrap instead of escaping the structure.
    EXPECT_EQ(l.structAt(l.procTableAddr(1000)), KStruct::ProcTable);
    EXPECT_EQ(l.structAt(l.inodeAddr(100000)), KStruct::Inode);
    EXPECT_EQ(l.structAt(l.bufHeaderAddr(99999)), KStruct::Buffer);
}
