/** @file Per-primitive lock litmus tests.
 *
 *  Small, surgical contention scenarios driven straight through the
 *  kernel's lock markers, one per selectable lock primitive: the
 *  acquire/release/contention state machine of each policy must
 *  resolve, hand off in the order the primitive promises, and leave
 *  the LockState fields clean. The default test-and-set primitive is
 *  asserted to keep every policy field at its default, which is what
 *  keeps the golden corpus byte-identical.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "kernel/kernel.hh"
#include "sim/machine.hh"

using namespace mpos;
using namespace mpos::kernel;
using sim::LockEvent;
using sim::LockPolicy;
using sim::MarkerOp;
using sim::ScriptItem;

namespace
{

/** Records the order of logical lock events on one lock id. */
struct OrderListener : LockListener
{
    uint32_t watched;
    std::vector<sim::CpuId> wins;
    uint32_t fails = 0;
    uint32_t releases = 0;

    explicit OrderListener(uint32_t lock_id) : watched(lock_id) {}

    void
    lockEvent(sim::Cycle, sim::CpuId cpu, uint32_t lock_id,
              LockEvent ev, uint32_t) override
    {
        if (lock_id != watched)
            return;
        switch (ev) {
          case LockEvent::AcquireSuccess: wins.push_back(cpu); break;
          case LockEvent::AcquireFail: ++fails; break;
          case LockEvent::Release: ++releases; break;
          default: break;
        }
    }
};

/** A machine + kernel under one lock primitive. */
struct Rig
{
    sim::MachineConfig mcfg;
    KernelConfig kcfg;
    std::unique_ptr<sim::Machine> m;
    std::unique_ptr<Kernel> k;

    explicit Rig(LockPolicy policy, uint32_t ncpus = 2)
    {
        mcfg.numCpus = ncpus;
        mcfg.lockPolicy = policy;
        m = std::make_unique<sim::Machine>(mcfg, 128);
        kcfg.layout.maxProcs = 16;
        kcfg.userPoolPages = 600;
        k = std::make_unique<Kernel>(*m, kcfg);
    }

    /** CPU `c` waits `delay`, takes `lock`, holds `hold`, releases. */
    void
    contender(sim::CpuId c, uint32_t lock, sim::Cycle delay,
              sim::Cycle hold)
    {
        if (delay)
            m->cpu(c).push(ScriptItem::think(delay));
        m->cpu(c).push(ScriptItem::mark(MarkerOp::LockAcquire, lock));
        m->cpu(c).push(ScriptItem::think(hold));
        m->cpu(c).push(ScriptItem::mark(MarkerOp::LockRelease, lock));
    }
};

/** Behavior driven by a lambda (same shape as kernel_test.cc). */
struct ScriptedApp : AppBehavior
{
    using Fn = std::function<void(Process &, UserScript &)>;
    explicit ScriptedApp(Fn f) : fn(std::move(f)) {}
    void chunk(Process &p, UserScript &s) override { fn(p, s); }
    Fn fn;
};

} // namespace

TEST(LockLitmus, TasContentionResolvesAndPolicyFieldsStayDefault)
{
    Rig r(LockPolicy::TestAndSet);
    OrderListener ol(Memlock);
    r.k->setLockListener(&ol);
    r.contender(0, Memlock, 0, 500);
    r.contender(1, Memlock, 50, 10);
    r.m->run(3000);
    const LockState &l = r.k->lockState(Memlock);
    EXPECT_EQ(l.heldByCpu, -1);
    EXPECT_EQ(l.spinMask, 0u);
    // The modern-policy fields never move under the default primitive
    // (this is what keeps default-run goldens byte-identical).
    EXPECT_EQ(l.nextTicket, 0u);
    EXPECT_EQ(l.nowServing, 0u);
    EXPECT_EQ(l.grantedTo, -1);
    EXPECT_TRUE(l.waitQueue.empty());
    EXPECT_EQ(l.rcuReaders, 0u);
    ASSERT_EQ(ol.wins.size(), 2u);
    EXPECT_GE(ol.fails, 1u); // CPU 1 found it held at least once
    EXPECT_EQ(ol.releases, 2u);
}

TEST(LockLitmus, TicketGrantsInTakeOrder)
{
    Rig r(LockPolicy::Ticket, 3);
    OrderListener ol(Memlock);
    r.k->setLockListener(&ol);
    r.contender(0, Memlock, 0, 800);
    r.contender(1, Memlock, 100, 300);
    r.contender(2, Memlock, 200, 10);
    r.m->run(6000);
    const LockState &l = r.k->lockState(Memlock);
    EXPECT_EQ(l.heldByCpu, -1);
    EXPECT_EQ(l.spinMask, 0u);
    // Every ticket handed out was served.
    EXPECT_EQ(l.nextTicket, l.nowServing);
    EXPECT_EQ(l.nextTicket, 3u);
    // FIFO by ticket number: strict arrival order, no barging.
    ASSERT_EQ(ol.wins.size(), 3u);
    EXPECT_EQ(ol.wins[0], 0u);
    EXPECT_EQ(ol.wins[1], 1u);
    EXPECT_EQ(ol.wins[2], 2u);
}

TEST(LockLitmus, McsGrantsFifoAndLeavesCleanState)
{
    Rig r(LockPolicy::Mcs, 3);
    OrderListener ol(Memlock);
    r.k->setLockListener(&ol);
    r.contender(0, Memlock, 0, 800);
    r.contender(1, Memlock, 100, 300);
    r.contender(2, Memlock, 200, 10);
    r.m->run(6000);
    const LockState &l = r.k->lockState(Memlock);
    EXPECT_EQ(l.heldByCpu, -1);
    EXPECT_EQ(l.spinMask, 0u);
    EXPECT_EQ(l.grantedTo, -1);
    EXPECT_TRUE(l.waitQueue.empty());
    // Queue order is hand-off order.
    ASSERT_EQ(ol.wins.size(), 3u);
    EXPECT_EQ(ol.wins[0], 0u);
    EXPECT_EQ(ol.wins[1], 1u);
    EXPECT_EQ(ol.wins[2], 2u);
    // The waiters spun on locally cached queue nodes. Retired node
    // lines legitimately stay cached at their owners after the win;
    // only CPUs that actually enqueued can own one (CPU 0 took the
    // lock uncontended and never allocated a node).
    EXPECT_EQ(r.m->sync().qnodeAtMask(Memlock) & 1u, 0u);
}

TEST(LockLitmus, FutexKernelLocksDegradeToTestAndSet)
{
    // Kernel spinlocks cannot sleep (they are held at raised spl), so
    // the futex policy must leave them on the spin path.
    Rig r(LockPolicy::Futex);
    OrderListener ol(Memlock);
    r.k->setLockListener(&ol);
    r.contender(0, Memlock, 0, 500);
    r.contender(1, Memlock, 50, 10);
    r.m->run(3000);
    const LockState &l = r.k->lockState(Memlock);
    EXPECT_EQ(l.heldByCpu, -1);
    EXPECT_EQ(l.spinMask, 0u);
    EXPECT_EQ(l.napWaiters, 0u);
    EXPECT_TRUE(l.waitQueue.empty());
    ASSERT_EQ(ol.wins.size(), 2u);
    EXPECT_GE(ol.fails, 1u);
}

TEST(LockLitmus, FutexUserLockBlocksWaiterAndHandsOff)
{
    Rig r(LockPolicy::Futex);
    const uint32_t ul = r.k->allocUserLock();
    OrderListener ol(ul);
    r.k->setLockListener(&ol);
    const uint32_t img = r.k->registerImage("app", 32 * 1024);

    // Holder grabs the lock in its first chunk and sits on it long
    // enough that the second process must lose its CAS and block.
    r.k->spawn(std::make_unique<ScriptedApp>(
                   [ul](Process &p, UserScript &s) {
                       if (p.userChunks == 0) {
                           s.userLock(ul);
                           s.think(60000);
                           s.userUnlock(ul);
                       }
                       s.think(64);
                   }),
               img, "holder");
    r.k->spawn(std::make_unique<ScriptedApp>(
                   [ul](Process &p, UserScript &s) {
                       if (p.userChunks == 0) {
                           s.think(2000); // lose the race decisively
                           s.userLock(ul);
                           s.think(100);
                           s.userUnlock(ul);
                       }
                       s.think(64);
                   }),
               img, "waiter");
    r.m->run(2000000);

    const LockState &l = r.k->lockState(ul);
    EXPECT_EQ(l.heldByCpu, -1);
    EXPECT_EQ(l.napWaiters, 0u);
    EXPECT_EQ(l.grantedTo, -1);
    EXPECT_TRUE(l.waitQueue.empty());
    // Both processes held the lock; the waiter lost at least one CAS
    // (the FutexWait that sent it into the kernel to sleep).
    EXPECT_EQ(ol.wins.size(), 2u);
    EXPECT_GE(ol.fails, 1u);
    EXPECT_EQ(ol.releases, 2u);
    // A blocked futex waiter generates no steady-state lock traffic:
    // the whole episode is a handful of transport ops, not thousands
    // of spin polls.
    EXPECT_LT(r.m->sync().counts(ul).uncachedOps, 64u);
}

TEST(LockLitmus, RcuReadersCountAndWritersPayTheGracePeriod)
{
    Rig r(LockPolicy::Rcu);
    OrderListener ol(Ifree);
    r.k->setLockListener(&ol);
    // CPU 0: a long read-side section on the free-inode list.
    r.m->cpu(0).push(
        ScriptItem::mark(MarkerOp::LockAcquireShared, Ifree));
    r.m->cpu(0).push(ScriptItem::think(1000));
    r.m->cpu(0).push(
        ScriptItem::mark(MarkerOp::LockReleaseShared, Ifree));
    // CPU 1: a writer updating the list inside the read section.
    r.contender(1, Ifree, 100, 50);
    r.m->run(5000);

    const LockState &l = r.k->lockState(Ifree);
    EXPECT_EQ(l.rcuReaders, 0u);
    EXPECT_EQ(l.heldByCpu, -1);
    // The reader never excluded the writer and nobody ever spun.
    EXPECT_EQ(ol.fails, 0u);
    EXPECT_EQ(ol.wins.size(), 2u);
    // Transport accounting: the read side is free; the writer paid a
    // TAS acquire, a release, and one grace-period round-trip per
    // other CPU.
    EXPECT_EQ(r.m->sync().counts(Ifree).uncachedOps,
              r.mcfg.syncOpsPerAcquire + 1 + (r.mcfg.numCpus - 1));
}

TEST(LockLitmus, SharedMarkersActExclusiveOutsideRcu)
{
    // Under every non-RCU policy the shared markers must behave
    // exactly like the exclusive ones (that equivalence is what keeps
    // the instrumented kernel paths policy-independent).
    Rig r(LockPolicy::TestAndSet);
    r.m->cpu(0).push(
        ScriptItem::mark(MarkerOp::LockAcquireShared, Ifree));
    r.m->cpu(0).push(ScriptItem::think(200));
    r.m->cpu(0).push(
        ScriptItem::mark(MarkerOp::LockReleaseShared, Ifree));
    r.m->run(50);
    EXPECT_EQ(r.k->lockState(Ifree).heldByCpu, 0);
    EXPECT_EQ(r.k->lockState(Ifree).rcuReaders, 0u);
    r.m->run(1000);
    EXPECT_EQ(r.k->lockState(Ifree).heldByCpu, -1);
}

TEST(LockLitmus, RcuLeavesUnmanagedLocksOnTheSpinPath)
{
    // Runqlk is not a read-mostly table: under the RCU policy it must
    // keep the plain TAS machine, including contention.
    Rig r(LockPolicy::Rcu);
    OrderListener ol(Runqlk);
    r.k->setLockListener(&ol);
    r.contender(0, Runqlk, 0, 500);
    r.contender(1, Runqlk, 50, 10);
    r.m->run(3000);
    EXPECT_EQ(r.k->lockState(Runqlk).heldByCpu, -1);
    ASSERT_EQ(ol.wins.size(), 2u);
    EXPECT_GE(ol.fails, 1u);
    // No grace period on release of an unmanaged lock: each acquire
    // cost the TAS ops, each release one op, each fail one op.
    EXPECT_EQ(r.m->sync().counts(Runqlk).uncachedOps,
              2 * r.mcfg.syncOpsPerAcquire + 2 + ol.fails);
}
