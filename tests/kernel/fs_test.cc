/** @file Tests for the file-system substrate and misc kernel types. */

#include <gtest/gtest.h>

#include "kernel/fs.hh"
#include "kernel/layout.hh"
#include "kernel/locks.hh"
#include "kernel/process.hh"

using namespace mpos::kernel;

TEST(BufferCache, LookupMissThenBind)
{
    BufferCache bc(8);
    EXPECT_EQ(bc.lookup(42), -1);
    const auto g = bc.getVictim(42);
    EXPECT_FALSE(g.wasDirty);
    EXPECT_EQ(g.oldBlkno, -1);
    EXPECT_EQ(bc.lookup(42), int32_t(g.index));
}

TEST(BufferCache, LruVictimSelection)
{
    BufferCache bc(2);
    const auto a = bc.getVictim(1);
    const auto b = bc.getVictim(2);
    bc.touchUse(a.index); // block 1 is now MRU
    const auto c = bc.getVictim(3); // must evict block 2
    EXPECT_EQ(c.index, b.index);
    EXPECT_EQ(c.oldBlkno, 2);
    EXPECT_EQ(bc.lookup(2), -1);
    EXPECT_NE(bc.lookup(1), -1);
}

TEST(BufferCache, DirtyVictimReported)
{
    BufferCache bc(1);
    const auto a = bc.getVictim(7);
    bc.markDirty(a.index);
    const auto b = bc.getVictim(8);
    EXPECT_TRUE(b.wasDirty);
    EXPECT_EQ(b.oldBlkno, 7);
    bc.clean(b.index);
    const auto c = bc.getVictim(9);
    EXPECT_FALSE(c.wasDirty);
}

TEST(BufferCache, ChainLengthBounded)
{
    BufferCache bc(64);
    for (int i = 0; i < 32; ++i)
        bc.getVictim(i * 64); // all hash to the same chain
    EXPECT_GE(bc.chainLength(0), 1u);
    EXPECT_LE(bc.chainLength(0), 4u);
    EXPECT_EQ(bc.chainLength(1), 1u); // empty chain reads as 1 probe
}

TEST(Disk, FifoSerialization)
{
    Disk d(100, 10);
    const auto t1 = d.schedule(0, 1);   // 0..110
    EXPECT_EQ(t1, 110u);
    const auto t2 = d.schedule(50, 2);  // queues behind t1
    EXPECT_EQ(t2, 110u + 100 + 20);
    EXPECT_EQ(d.requests, 2u);
    // An idle disk starts immediately.
    const auto t3 = d.schedule(10000, 1);
    EXPECT_EQ(t3, 10110u);
}

TEST(IoPayload, RoundTrip)
{
    const uint64_t p = ioPayload(0x123456, 8192, 77, true);
    EXPECT_EQ(ioFile(p), 0x123456u);
    EXPECT_EQ(ioBytes(p), 8192u);
    EXPECT_EQ(ioStartBlock(p), 77u);
    EXPECT_TRUE(ioSync(p));
    const uint64_t q = ioPayload(1, 4096);
    EXPECT_FALSE(ioSync(q));
    EXPECT_EQ(ioStartBlock(q), 0u);
}

TEST(LockNames, StaticAndArrayLocks)
{
    EXPECT_EQ(lockName(Memlock, 0), "Memlock");
    EXPECT_EQ(lockName(Runqlk, 0), "Runqlk");
    EXPECT_EQ(lockName(Semlock, 0), "Semlock");
    EXPECT_EQ(lockName(ShrBase + 3, 0), "Shr_3");
    EXPECT_EQ(lockName(StreamsBase + 1, 0), "Streams_1");
    EXPECT_EQ(lockName(InoBase + 7, 0), "Ino_7");
    EXPECT_EQ(lockName(numKernelLocks + 2, 8), "UserLock_2");
}

TEST(LockNames, FullIdSpaceNamesEveryLock)
{
    // Every kernel id must resolve to a real name regardless of the
    // user-lock count, and never to the Lock_N fallback.
    for (uint32_t id = 0; id < numKernelLocks; ++id) {
        const std::string n = lockName(id, 0);
        EXPECT_EQ(n.rfind("Lock_", 0), std::string::npos)
            << "kernel id " << id << " fell through to " << n;
        EXPECT_EQ(n, lockName(id, 16))
            << "kernel name must not depend on the user-lock count";
    }
    // User ids resolve to UserLock_i exactly while i is within the
    // table the kernel was built with; past it they are foreign ids
    // and keep the raw Lock_N spelling (the historical bug named
    // every user lock that way by defaulting the count to 0).
    const uint32_t nUser = 16;
    for (uint32_t i = 0; i < nUser; ++i) {
        EXPECT_EQ(lockName(numKernelLocks + i, nUser),
                  "UserLock_" + std::to_string(i));
        EXPECT_EQ(lockName(numKernelLocks + i, 0),
                  "Lock_" + std::to_string(numKernelLocks + i));
    }
    EXPECT_EQ(lockName(numKernelLocks + nUser, nUser),
              "Lock_" + std::to_string(numKernelLocks + nUser));
}

TEST(LockNames, SelectorsStayInRange)
{
    for (uint32_t i = 0; i < 100; ++i) {
        EXPECT_GE(shrLock(i), uint32_t(ShrBase));
        EXPECT_LT(shrLock(i), uint32_t(StreamsBase));
        EXPECT_GE(streamsLock(i), uint32_t(StreamsBase));
        EXPECT_LT(streamsLock(i), uint32_t(InoBase));
        EXPECT_GE(inoLock(i), uint32_t(InoBase));
        EXPECT_LT(inoLock(i), uint32_t(numKernelLocks));
    }
}

TEST(Process, ResetForReuseClearsState)
{
    Process p;
    p.state = ProcState::Zombie;
    p.pageTable[5] = Pte{1, true, true, false, false, false};
    p.savedScript.push_back(mpos::sim::ScriptItem::think(1));
    p.pendingChildExits = 3;
    p.cpuShare = 999;
    p.resetForReuse();
    EXPECT_EQ(int(p.state), int(ProcState::Free));
    EXPECT_TRUE(p.pageTable.empty());
    EXPECT_TRUE(p.savedScript.empty());
    EXPECT_EQ(p.pendingChildExits, 0u);
    EXPECT_EQ(p.cpuShare, 0u);
    EXPECT_EQ(p.findPte(5), nullptr);
}

TEST(Process, FindPte)
{
    Process p;
    p.pageTable[7] = Pte{42, true, false, true, false, false};
    Pte *e = p.findPte(7);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ppage, 42u);
    EXPECT_TRUE(e->cow);
    EXPECT_EQ(p.findPte(8), nullptr);
}

TEST(OptimizedLayout, SameRoutinesDifferentPlacement)
{
    LayoutConfig plain, opt;
    opt.optimizedTextLayout = true;
    KernelLayout a(plain), b(opt);
    EXPECT_EQ(a.numRoutines(), b.numRoutines());
    // Every routine exists in both layouts (same sizes), but hot ones
    // move: in the optimized image the whole hot syscall path sits in
    // the first 64 KB.
    for (const char *name :
         {"read_sys", "write_sys", "vfault", "swtch", "clock_intr"}) {
        const auto &ra = a.routineInfo(a.routine(name));
        const auto &rb = b.routineInfo(b.routine(name));
        EXPECT_EQ(ra.textBytes, rb.textBytes) << name;
        EXPECT_LT(rb.textBase + rb.textBytes, 64u * 1024) << name;
    }
    // And the big driver no longer shadows the vectors' cache sets
    // with hot code between them.
    const auto &scsi = b.routineInfo(b.routine("scsi_driver"));
    EXPECT_GT(scsi.textBase, 128u * 1024);
}
