/** @file Unit tests for CounterSet and formatting helpers. */

#include <gtest/gtest.h>

#include "util/stats.hh"
#include "util/table.hh"

using mpos::util::barChart;
using mpos::util::CounterSet;
using mpos::util::TextTable;

TEST(CounterSet, AddAndGet)
{
    CounterSet c;
    c.add("a");
    c.add("a", 4);
    c.add("b", 10);
    EXPECT_EQ(c.get("a"), 5u);
    EXPECT_EQ(c.get("b"), 10u);
    EXPECT_EQ(c.get("missing"), 0u);
    EXPECT_EQ(c.total(), 15u);
}

TEST(CounterSet, FractionOfTotal)
{
    CounterSet c;
    c.add("x", 25);
    c.add("y", 75);
    EXPECT_DOUBLE_EQ(c.fractionOfTotal("x"), 0.25);
}

TEST(CounterSet, EmptyFractionIsZero)
{
    CounterSet c;
    EXPECT_DOUBLE_EQ(c.fractionOfTotal("x"), 0.0);
}

TEST(CounterSet, InsertionOrderPreserved)
{
    CounterSet c;
    c.add("z");
    c.add("a");
    c.add("m");
    ASSERT_EQ(c.entries().size(), 3u);
    EXPECT_EQ(c.entries()[0].first, "z");
    EXPECT_EQ(c.entries()[2].first, "m");
}

TEST(CounterSet, ClearKeepsNames)
{
    CounterSet c;
    c.add("a", 5);
    c.clear();
    EXPECT_EQ(c.get("a"), 0u);
    EXPECT_EQ(c.entries().size(), 1u);
}

TEST(Pct, Formatting)
{
    EXPECT_EQ(mpos::util::pct(0.5), "50.0");
    EXPECT_EQ(mpos::util::pctOf(1, 4), "25.0");
    EXPECT_EQ(mpos::util::pctOf(1, 0), "-");
}

TEST(TextTable, RenderContainsCellsAndRules)
{
    TextTable t("Title");
    t.header({"A", "B"});
    t.row({"hello", "world"});
    t.rule();
    t.row({"x", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("hello"), std::string::npos);
    EXPECT_NE(out.find("world"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.header({"A", "B", "C"});
    t.row({"only-one"});
    EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(BarChart, ScalesToMax)
{
    const std::string out =
        barChart("chart", {{"big", 100.0}, {"small", 1.0}}, 10);
    EXPECT_NE(out.find("big"), std::string::npos);
    // The big bar should render its full width of hashes.
    EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(BarChart, EmptyDataSafe)
{
    EXPECT_NO_THROW(barChart("empty", {}, 10));
}
