/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/rng.hh"

using mpos::util::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits, 3000, 300);
}

TEST(Rng, BurstBounds)
{
    Rng r(19);
    for (int i = 0; i < 1000; ++i) {
        const uint32_t b = r.burst(0.5, 15);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 15u);
    }
}

TEST(Rng, BurstDegenerate)
{
    Rng r(21);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.burst(0.0, 15), 1u);
}

TEST(Rng, SaveRestoreRoundTrip)
{
    Rng r(123);
    for (int i = 0; i < 57; ++i)
        r.next();

    const std::array<uint64_t, 4> mid = r.saveState();
    std::vector<uint64_t> expect;
    for (int i = 0; i < 100; ++i)
        expect.push_back(r.next());

    // Restoring rewinds to exactly the save point; the stream
    // continues identically, including the non-next() draws.
    Rng other(999);
    other.restoreState(mid);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(other.next(), expect[size_t(i)]);

    r.restoreState(mid);
    Rng twin(777);
    twin.restoreState(mid);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(r.below(1000), twin.below(1000));
        EXPECT_EQ(r.real(), twin.real());
        EXPECT_EQ(r.burst(0.4, 9), twin.burst(0.4, 9));
    }

    // The saved array is the full generator state: a round trip
    // through save gives back the same words.
    EXPECT_EQ(r.saveState(), twin.saveState());
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngSeedSweep, MeanOfBelowIsCentered)
{
    Rng r(GetParam());
    const uint64_t bound = 1000;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(r.below(bound));
    EXPECT_NEAR(sum / n, 499.5, 25.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1234, 99999,
                                           0xdeadbeef));
