/** @file Unit tests for the binary serialization primitives. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/binio.hh"
#include "util/error.hh"

using mpos::util::ByteReader;
using mpos::util::ByteWriter;
using mpos::util::ErrCode;
using mpos::util::SimError;

TEST(BinIo, RoundTripEveryType)
{
    ByteWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.b(true);
    w.b(false);
    w.f64(3.14159);
    w.str("hello");
    w.str("");
    const uint8_t blob[3] = {1, 2, 3};
    w.raw(blob, sizeof blob);

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    uint8_t out[3] = {};
    r.raw(out, sizeof out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinIo, LittleEndianOnTheWire)
{
    ByteWriter w;
    w.u32(0x11223344);
    const std::vector<uint8_t> &b = w.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0x44);
    EXPECT_EQ(b[1], 0x33);
    EXPECT_EQ(b[2], 0x22);
    EXPECT_EQ(b[3], 0x11);
}

TEST(BinIo, DoublesRoundTripBitExactly)
{
    const double vals[] = {0.0, -0.0, 1.0 / 3.0, 1e-300,
                           std::nan("")};
    ByteWriter w;
    for (double v : vals)
        w.f64(v);
    ByteReader r(w.bytes());
    for (double v : vals) {
        const double got = r.f64();
        EXPECT_EQ(std::bit_cast<uint64_t>(got),
                  std::bit_cast<uint64_t>(v));
    }
}

TEST(BinIo, TruncatedReadRaisesSnapshotCorrupt)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.bytes());
    r.u16();
    EXPECT_THROW(r.u32(), SimError);
    try {
        ByteReader r2(w.bytes());
        r2.u64();
        FAIL() << "u64 from 4 bytes must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrCode::SnapshotCorrupt);
    }
}

TEST(BinIo, TruncatedStringRaises)
{
    ByteWriter w;
    w.u32(100); // length prefix promising more than exists
    w.u8('x');
    ByteReader r(w.bytes());
    EXPECT_THROW(r.str(), SimError);
}

TEST(BinIo, BadBoolByteRaises)
{
    ByteWriter w;
    w.u8(2);
    ByteReader r(w.bytes());
    EXPECT_THROW(r.b(), SimError);
}

TEST(BinIo, SkipAndSubReader)
{
    ByteWriter w;
    w.u32(1);
    w.u32(2);
    w.u32(3);
    ByteReader r(w.bytes());
    r.skip(4);
    ByteReader inner = r.sub(4);
    EXPECT_EQ(inner.u32(), 2u);
    EXPECT_TRUE(inner.atEnd());
    EXPECT_EQ(r.u32(), 3u);
    EXPECT_THROW(r.skip(1), SimError);
}

TEST(BinIo, PatchU32BackfillsLength)
{
    ByteWriter w;
    const size_t at = w.size();
    w.u32(0); // placeholder
    w.str("payload");
    w.patchU32(at, uint32_t(w.size()));
    ByteReader r(w.bytes());
    EXPECT_EQ(r.u32(), w.size());
    EXPECT_THROW(w.patchU32(w.size() - 2, 1), SimError);
}
