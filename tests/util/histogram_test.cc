/** @file Unit tests for histogram utilities. */

#include <gtest/gtest.h>

#include "util/histogram.hh"

using mpos::util::LinearHistogram;
using mpos::util::Log2Histogram;

TEST(LinearHistogram, BasicCounts)
{
    LinearHistogram h(10, 5);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(49);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(4), 0.25);
}

TEST(LinearHistogram, OverflowBucket)
{
    LinearHistogram h(10, 3);
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 1.0); // overflow slot
}

TEST(LinearHistogram, Mean)
{
    LinearHistogram h(1, 100);
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LinearHistogram, EmptyMeanIsZero)
{
    LinearHistogram h(1, 10);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LinearHistogram, Percentile)
{
    LinearHistogram h(10, 10);
    for (int i = 0; i < 100; ++i)
        h.add(uint64_t(i));
    EXPECT_EQ(h.percentile(0.5), 40u);
    EXPECT_EQ(h.percentile(1.0), 90u);
}

TEST(LinearHistogram, PercentileRankIsCeilNotTruncate)
{
    // One sample per bucket at 0, 10, ..., 90. percentile(0.7) asks
    // for the rank-7 sample (7 of 10 samples <= it), which lives at
    // 60. The old rank computation cast 0.7 * 10 = 6.999... down to 6
    // and answered one bucket early.
    LinearHistogram h(10, 10);
    for (int i = 0; i < 10; ++i)
        h.add(uint64_t(i) * 10);
    EXPECT_EQ(h.percentile(0.7), 60u);
    EXPECT_EQ(h.percentile(0.3), 20u);
}

TEST(LinearHistogram, PercentileEdgeFractions)
{
    LinearHistogram h(10, 10);
    for (int i = 0; i < 10; ++i)
        h.add(uint64_t(i) * 10);
    EXPECT_EQ(h.percentile(0.0), 0u);   // clamps to the first sample
    EXPECT_EQ(h.percentile(0.001), 0u);
    EXPECT_EQ(h.percentile(1.0), 90u);  // the last sample, not past it
    EXPECT_EQ(h.percentile(0.999), 90u);
}

TEST(LinearHistogram, PercentileSingleSample)
{
    LinearHistogram h(10, 4);
    h.add(25);
    EXPECT_EQ(h.percentile(0.0), 20u);
    EXPECT_EQ(h.percentile(0.5), 20u);
    EXPECT_EQ(h.percentile(1.0), 20u);
}

TEST(LinearHistogram, PercentileMatchesBruteForceSmallN)
{
    // Exhaustive check against the definition ("smallest v such that
    // at least frac of samples are <= v") for every N up to 20 and
    // every exact fraction k/N, plus the halfway points between them.
    for (int n = 1; n <= 20; ++n) {
        LinearHistogram h(10, 32);
        for (int i = 0; i < n; ++i)
            h.add(uint64_t(i) * 10);
        for (int k = 1; k <= n; ++k) {
            const double exact = double(k) / double(n);
            EXPECT_EQ(h.percentile(exact), uint64_t(k - 1) * 10)
                << "n=" << n << " k=" << k;
            // A fraction strictly between (k-1)/n and k/n needs k
            // samples, the same rank as k/n itself.
            const double between = (double(k) - 0.5) / double(n);
            EXPECT_EQ(h.percentile(between), uint64_t(k - 1) * 10)
                << "n=" << n << " between-rank " << k;
        }
    }
}

TEST(Log2Histogram, PercentileRankIsCeilNotTruncate)
{
    // Buckets 1 (value 2) .. 10 (value 1024), one sample each.
    Log2Histogram h(16);
    for (int i = 1; i <= 10; ++i)
        h.add(1ULL << i);
    EXPECT_EQ(h.percentile(0.7), 1ULL << 7);
    EXPECT_EQ(h.percentile(1.0), 1ULL << 10);
    EXPECT_EQ(h.percentile(0.0), 2u);
}

TEST(Log2Histogram, EmptyPercentileIsZero)
{
    Log2Histogram h(8);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LinearHistogram, Merge)
{
    LinearHistogram a(10, 5), b(10, 5);
    a.add(5);
    b.add(15);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(a.fraction(1), 0.5);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram h(16);
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4); // 0 and 1
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.4); // 2 and 3
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.2); // 4
}

TEST(Log2Histogram, LargeValuesClampToLastBucket)
{
    Log2Histogram h(4);
    h.add(1ULL << 40);
    EXPECT_DOUBLE_EQ(h.fraction(3), 1.0);
}

TEST(Log2Histogram, MeanTracksInput)
{
    Log2Histogram h;
    h.add(100);
    h.add(300);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Log2Histogram, RenderMentionsCountAndBars)
{
    Log2Histogram h;
    for (int i = 0; i < 64; ++i)
        h.add(8);
    const std::string out = h.render("test");
    EXPECT_NE(out.find("n=64"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a(8), b(8);
    a.add(2);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Log2Histogram, PercentileMonotone)
{
    Log2Histogram h;
    for (uint64_t v = 1; v < 5000; v *= 3)
        h.add(v);
    EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}
