/** @file Unit tests for histogram utilities. */

#include <gtest/gtest.h>

#include "util/histogram.hh"

using mpos::util::LinearHistogram;
using mpos::util::Log2Histogram;

TEST(LinearHistogram, BasicCounts)
{
    LinearHistogram h(10, 5);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(49);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(4), 0.25);
}

TEST(LinearHistogram, OverflowBucket)
{
    LinearHistogram h(10, 3);
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 1.0); // overflow slot
}

TEST(LinearHistogram, Mean)
{
    LinearHistogram h(1, 100);
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LinearHistogram, EmptyMeanIsZero)
{
    LinearHistogram h(1, 10);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LinearHistogram, Percentile)
{
    LinearHistogram h(10, 10);
    for (int i = 0; i < 100; ++i)
        h.add(uint64_t(i));
    EXPECT_EQ(h.percentile(0.5), 40u);
    EXPECT_EQ(h.percentile(1.0), 90u);
}

TEST(LinearHistogram, Merge)
{
    LinearHistogram a(10, 5), b(10, 5);
    a.add(5);
    b.add(15);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(a.fraction(1), 0.5);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram h(16);
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4); // 0 and 1
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.4); // 2 and 3
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.2); // 4
}

TEST(Log2Histogram, LargeValuesClampToLastBucket)
{
    Log2Histogram h(4);
    h.add(1ULL << 40);
    EXPECT_DOUBLE_EQ(h.fraction(3), 1.0);
}

TEST(Log2Histogram, MeanTracksInput)
{
    Log2Histogram h;
    h.add(100);
    h.add(300);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Log2Histogram, RenderMentionsCountAndBars)
{
    Log2Histogram h;
    for (int i = 0; i < 64; ++i)
        h.add(8);
    const std::string out = h.render("test");
    EXPECT_NE(out.find("n=64"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a(8), b(8);
    a.add(2);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Log2Histogram, PercentileMonotone)
{
    Log2Histogram h;
    for (uint64_t v = 1; v < 5000; v *= 3)
        h.add(v);
    EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}
