/** @file Host thread-pool tests: future delivery, FIFO draining,
 *  exception propagation, degenerate single-thread operation, and the
 *  MPOS_JOBS sizing knob. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/threadpool.hh"

using mpos::util::ThreadPool;

TEST(ThreadPool, DeliversResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[size_t(i)].get(), i * i);
}

TEST(ThreadPool, SingleThreadRunsInSubmissionOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 16; ++i)
        futs.push_back(pool.submit([i, &order] { order.push_back(i); }));
    for (auto &f : futs)
        f.get();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[size_t(i)], i); // FIFO on one worker
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 42; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    EXPECT_EQ(good.get(), 42); // pool survives a throwing task
}

TEST(ThreadPool, RunsTasksConcurrently)
{
    // All four tasks block until all four have started; this can only
    // complete if four workers really run at once (even on one CPU,
    // the OS interleaves blocked threads).
    ThreadPool pool(4);
    std::mutex m;
    std::condition_variable cv;
    int started = 0;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 4; ++i) {
        futs.push_back(pool.submit([&] {
            std::unique_lock<std::mutex> lock(m);
            ++started;
            cv.notify_all();
            cv.wait(lock, [&] { return started == 4; });
        }));
    }
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(started, 4);
}

TEST(ThreadPool, ThrowingJobKeepsWorkerAndOrderAlive)
{
    // One worker, a throwing job in the middle of the queue: the
    // exception must land in the thrower's future only, the worker
    // must survive to run everything behind it, and the later
    // futures' submission-order slots must be intact.
    ThreadPool pool(1);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(pool.submit([i] { return i; }));
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("mid-queue boom"); });
    for (int i = 4; i < 8; ++i)
        futs.push_back(pool.submit([i] { return i; }));

    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(futs[size_t(i)].get(), i);
    try {
        bad.get();
        FAIL() << "throwing job lost its exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "mid-queue boom");
    }
    // The pool is still a working pool.
    EXPECT_EQ(pool.submit([] { return 99; }).get(), 99);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ++ran; });
        // No get(): destruction must still run everything queued.
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, DefaultThreadsHonorsMposJobs)
{
    setenv("MPOS_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ThreadPool pool; // nthreads = 0 -> env knob
    EXPECT_EQ(pool.threads(), 3u);

    setenv("MPOS_JOBS", "0", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 1u); // clamped up

    unsetenv("MPOS_JOBS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPool, DestructionDrainsTasksStillQueuedBehindABlocker)
{
    // Stronger than DestructorDrainsQueue: a gate guarantees the
    // later tasks are queued-but-unstarted when the destructor
    // begins, and a helper thread only opens the gate after the
    // destructor is already draining.
    std::atomic<int> ran{0};
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::thread releaser;
    {
        ThreadPool pool(1);
        pool.submit([open] { open.wait(); });
        for (int i = 0; i < 8; ++i)
            pool.submit([&ran] { ++ran; });
        EXPECT_EQ(ran.load(), 0); // all 8 still queued behind the gate
        releaser = std::thread([&gate] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            gate.set_value();
        });
        // ~ThreadPool runs here with the queue still full.
    }
    releaser.join();
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, TasksThrowingDuringDestructionAreContained)
{
    // Tasks that throw while the pool is being torn down must deliver
    // their exceptions through their futures -- not escape into the
    // destructor (which would terminate) and not get dropped.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::vector<std::future<void>> futs;
    std::thread releaser;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 6; ++i)
            futs.push_back(pool.submit([open] {
                open.wait();
                throw std::runtime_error("destruction boom");
            }));
        releaser = std::thread([&gate] {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            gate.set_value();
        });
        // ~ThreadPool drains the six throwing tasks.
    }
    releaser.join();
    for (auto &f : futs) {
        try {
            f.get();
            FAIL() << "a task destroyed with the pool lost its "
                      "exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "destruction boom");
        }
    }
}
