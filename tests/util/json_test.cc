/** @file JSON escaping and validation tests.
 *
 *  The report path used to hand-roll string escaping and missed the
 *  \r, \t and raw-control-character cases, producing unparseable
 *  reports for workload names or error text containing them. The
 *  contract now: jsonEscape covers every RFC 8259 escape, and
 *  jsonValidate accepts exactly the well-formed texts (it is the
 *  checker mpos_trace and the CI smoke run apply to every report).
 */

#include <gtest/gtest.h>

#include "util/json.hh"

using mpos::util::jsonEscape;
using mpos::util::jsonString;
using mpos::util::jsonValidate;

namespace
{

bool
valid(const std::string &text)
{
    return jsonValidate(text, nullptr, nullptr);
}

} // namespace

TEST(JsonEscape, CoversEveryEscapeClass)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb"); // the old escaper's gap
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\bb"), "a\\bb");
    EXPECT_EQ(jsonEscape("a\fb"), "a\\fb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscape, EscapedStringsAlwaysValidate)
{
    std::string nasty;
    for (int c = 0; c < 128; ++c)
        nasty += char(c);
    const std::string doc = "{\"k\": " + jsonString(nasty) + "}";
    size_t at = 0;
    std::string err;
    EXPECT_TRUE(jsonValidate(doc, &at, &err))
        << "at byte " << at << ": " << err;
}

TEST(JsonValidate, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(valid("{}"));
    EXPECT_TRUE(valid("[]"));
    EXPECT_TRUE(valid("null"));
    EXPECT_TRUE(valid("true"));
    EXPECT_TRUE(valid("-12.5e+3"));
    EXPECT_TRUE(valid("\"x\""));
    EXPECT_TRUE(valid("  {\n\"a\": [1, 2, {\"b\": null}],"
                      " \"c\": \"\\u00e9\\n\"\n} "));
}

TEST(JsonValidate, RejectsMalformedDocuments)
{
    EXPECT_FALSE(valid(""));
    EXPECT_FALSE(valid("{"));
    EXPECT_FALSE(valid("{\"a\": }"));
    EXPECT_FALSE(valid("{\"a\": 1,}"));
    EXPECT_FALSE(valid("[1, 2,]"));
    EXPECT_FALSE(valid("{'a': 1}"));
    EXPECT_FALSE(valid("\"unterminated"));
    EXPECT_FALSE(valid("\"bad \\x escape\""));
    EXPECT_FALSE(valid("\"raw \n newline\""));
    EXPECT_FALSE(valid("01")); // leading zeros are not JSON
    EXPECT_FALSE(valid("{} {}"));
    EXPECT_FALSE(valid("nul"));
    EXPECT_FALSE(valid("\"half \\u12 escape\""));
}

TEST(JsonValidate, ReportsErrorPosition)
{
    size_t at = 0;
    std::string err;
    EXPECT_FALSE(jsonValidate("{\"a\": 1, \"b\": }", &at, &err));
    EXPECT_EQ(at, 14u);
    EXPECT_FALSE(err.empty());
}

TEST(JsonValidate, DeepNestingIsBounded)
{
    std::string deep(400, '[');
    deep += std::string(400, ']');
    EXPECT_FALSE(valid(deep)); // depth cap, not a stack overflow
    std::string ok(100, '[');
    ok += std::string(100, ']');
    EXPECT_TRUE(valid(ok));
}
