/**
 * @file
 * Tests for the bump-pointer arena and the arena-backed vector that
 * carry the parallel core's per-window capture records.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hh"

using mpos::util::Arena;
using mpos::util::ArenaVector;

TEST(Arena, AllocationsAreDisjointAndAligned)
{
    Arena a(256);
    char *p1 = static_cast<char *>(a.allocate(100));
    char *p2 = static_cast<char *>(a.allocate(100));
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    // Writing one allocation must not disturb the other.
    std::memset(p1, 0xaa, 100);
    std::memset(p2, 0xbb, 100);
    EXPECT_EQ(uint8_t(p1[99]), 0xaa);
    EXPECT_EQ(uint8_t(p2[0]), 0xbb);

    void *p3 = a.allocate(1, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p3) % 64, 0u);
}

TEST(Arena, GrowsAcrossChunks)
{
    Arena a(64); // tiny first chunk forces refills immediately
    for (int i = 0; i < 100; ++i) {
        void *p = a.allocate(48);
        ASSERT_NE(p, nullptr);
        std::memset(p, i, 48); // must be writable storage
    }
    EXPECT_GE(a.capacityBytes(), 100u * 48u);
    EXPECT_EQ(a.allocatedBytes(), 100u * 48u);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk)
{
    Arena a(64);
    void *p = a.allocate(10000);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xcd, 10000);
    EXPECT_GE(a.capacityBytes(), 10000u);
}

TEST(Arena, ResetRecyclesWithoutReleasingChunks)
{
    Arena a(128);
    for (int i = 0; i < 50; ++i)
        a.allocate(64);
    const size_t cap = a.capacityBytes();
    EXPECT_GT(cap, 0u);

    a.reset();
    EXPECT_EQ(a.allocatedBytes(), 0u);
    EXPECT_EQ(a.capacityBytes(), cap) << "reset must retain chunks";

    // Steady state: the same volume fits in the retained chunks.
    for (int i = 0; i < 50; ++i)
        a.allocate(64);
    EXPECT_EQ(a.capacityBytes(), cap) << "no new chunk in steady state";
}

TEST(Arena, MakeConstructsInPlace)
{
    struct Rec
    {
        uint64_t a;
        uint32_t b;
    };
    Arena ar;
    Rec *r = ar.make<Rec>(Rec{7, 9});
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->a, 7u);
    EXPECT_EQ(r->b, 9u);

    int *xs = ar.makeArray<int>(10);
    for (int i = 0; i < 10; ++i)
        xs[i] = i * i;
    EXPECT_EQ(xs[9], 81);
}

TEST(ArenaVector, PushBackPreservesOrderAcrossGrowth)
{
    Arena ar(64);
    ArenaVector<uint64_t> v(ar);
    EXPECT_TRUE(v.empty());
    // Push well past several doublings (initial capacity is 64).
    for (uint64_t i = 0; i < 1000; ++i)
        v.push_back(i * 3);
    ASSERT_EQ(v.size(), 1000u);
    for (uint64_t i = 0; i < 1000; ++i)
        ASSERT_EQ(v[size_t(i)], i * 3) << "index " << i;

    // Range iteration sees the same sequence.
    uint64_t expect = 0;
    for (uint64_t x : v) {
        ASSERT_EQ(x, expect * 3);
        ++expect;
    }
    EXPECT_EQ(expect, 1000u);

    v.clear();
    EXPECT_TRUE(v.empty());
    v.push_back(42);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 42u);
}
